package repro

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (Section 6), plus ablation benches for the
// design choices DESIGN.md calls out. Each benchmark runs the relevant
// experiment on a reduced instruction budget (so `go test -bench=.`
// completes in minutes) and reports the figure's headline series through
// b.ReportMetric; `cmd/replaysim` prints the full-budget versions.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cycleprof"
	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/reuse"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/workload"
)

// benchInsts is the per-trace budget for benchmark runs.
const benchInsts = 60_000

// benchOpts returns the reduced-budget simulation options.
func benchOpts() sim.Options { return sim.Options{MaxInsts: benchInsts} }

// reportPct reports a percentage metric.
func reportPct(b *testing.B, name string, v float64) {
	b.ReportMetric(v, name)
}

// BenchmarkSweepReuse measures the capture+memo layer on the shape of
// `replaysim -experiment all`: fig6, both breakdowns, table3 and fig9
// over a workload subset, back to back. The sub-benchmarks share code and
// differ only in sim.Options.DisableCache, so their ns/op ratio is the
// sweep-level speedup from interpreting each trace once and memoizing the
// repeated RP/RPO runs.
func BenchmarkSweepReuse(b *testing.B) {
	profiles := make([]workload.Profile, 0, 4)
	for _, n := range []string{"bzip2", "gzip", "vortex", "access"} {
		p, err := workload.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	sweep := func(b *testing.B, o sim.Options) {
		if _, err := sim.Fig6(context.Background(), profiles, o); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.CycleBreakdown(context.Background(), profiles[:2], o); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.CycleBreakdown(context.Background(), profiles[2:], o); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Table3(context.Background(), profiles, o); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Fig9(context.Background(), profiles, o); err != nil {
			b.Fatal(err)
		}
	}
	for _, disable := range []bool{true, false} {
		disable := disable
		name := "cached"
		if disable {
			name = "cold"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim.ResetCaches()
				sweep(b, sim.Options{MaxInsts: 30_000, DisableCache: disable})
			}
		})
	}
	sim.ResetCaches()
}

// BenchmarkTable1Workloads regenerates the workload set: per class, the
// trace capture rate and the stream shape (Table 1 plus the 1.4 micro-op
// ratio of Section 5.1.1).
func BenchmarkTable1Workloads(b *testing.B) {
	for _, p := range workload.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var insts, loads, uops int
			for i := 0; i < b.N; i++ {
				prog, err := workload.Generate(p, 0)
				if err != nil {
					b.Fatal(err)
				}
				tr, err := prog.Capture(20_000)
				if err != nil {
					b.Fatal(err)
				}
				s := tr.ComputeStats()
				insts, loads = s.Insts, s.Loads
				dec := sim.NewDecodeCounter(tr)
				uops = dec.TotalUOps()
			}
			b.ReportMetric(float64(uops)/float64(insts), "uops/x86inst")
			b.ReportMetric(1000*float64(loads)/float64(insts), "loads/kinst")
		})
	}
}

// BenchmarkFig6IPC regenerates Figure 6: x86 IPC under IC, TC, RP and RPO
// for every application, reporting the RPO-over-RP gain.
func BenchmarkFig6IPC(b *testing.B) {
	for _, p := range workload.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var rows []sim.Fig6Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = sim.Fig6(context.Background(), []workload.Profile{p}, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
			}
			r := rows[0]
			b.ReportMetric(r.IPC[0], "IPC-IC")
			b.ReportMetric(r.IPC[1], "IPC-TC")
			b.ReportMetric(r.IPC[2], "IPC-RP")
			b.ReportMetric(r.IPC[3], "IPC-RPO")
			reportPct(b, "%dIPC", r.Gain)
		})
	}
}

// benchBreakdown shares Figures 7 and 8: per-benchmark execution cycles
// classified by fetch event, RP vs RPO.
func benchBreakdown(b *testing.B, profiles []workload.Profile) {
	for _, p := range profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var rows []sim.BreakdownRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = sim.CycleBreakdown(context.Background(), []workload.Profile{p}, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
			}
			r := rows[0]
			b.ReportMetric(float64(r.RP.Cycles), "cycles-RP")
			b.ReportMetric(float64(r.RPO.Cycles), "cycles-RPO")
			for bin := pipeline.Bin(0); bin < pipeline.NumBins; bin++ {
				b.ReportMetric(float64(r.RPO.Bins[bin]), "RPO-"+bin.String())
			}
			// The paper's headline: the net reduction in Frame cycles.
			if r.RP.Bins[pipeline.BinFrame] > 0 {
				reportPct(b, "%frame-cycle-reduction",
					100*(1-float64(r.RPO.Bins[pipeline.BinFrame])/float64(r.RP.Bins[pipeline.BinFrame])))
			}
		})
	}
}

// BenchmarkFig7CycleBreakdownSPEC regenerates Figure 7 (SPEC).
func BenchmarkFig7CycleBreakdownSPEC(b *testing.B) {
	benchBreakdown(b, workload.SPECProfiles())
}

// BenchmarkFig8CycleBreakdownDesktop regenerates Figure 8 (desktop).
func BenchmarkFig8CycleBreakdownDesktop(b *testing.B) {
	benchBreakdown(b, workload.DesktopProfiles())
}

// BenchmarkTable3Removal regenerates Table 3: percent micro-ops removed,
// percent loads removed, and the IPC increase, per application.
func BenchmarkTable3Removal(b *testing.B) {
	for _, p := range workload.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var rows []sim.Table3Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = sim.Table3(context.Background(), []workload.Profile{p}, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
			}
			r := rows[0]
			reportPct(b, "%uops-removed", r.UOpsRemoved)
			reportPct(b, "%loads-removed", r.LoadsRemoved)
			reportPct(b, "%dIPC", r.IPCIncrease)
			reportPct(b, "%coverage", 100*r.FrameCoverage)
		})
	}
}

// BenchmarkFig9Scope regenerates Figure 9: intra-block versus frame-level
// optimization gains over RP.
func BenchmarkFig9Scope(b *testing.B) {
	for _, p := range workload.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var rows []sim.Fig9Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = sim.Fig9(context.Background(), []workload.Profile{p}, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
			}
			reportPct(b, "%block", rows[0].Block)
			reportPct(b, "%frame", rows[0].Frame)
		})
	}
}

// BenchmarkFig10Ablation regenerates Figure 10: relative IPC with each
// optimization disabled, on the paper's five applications.
func BenchmarkFig10Ablation(b *testing.B) {
	var rows []sim.Fig10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.Fig10(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		for v, variant := range sim.Fig10Variants {
			name := strings.ReplaceAll(variant.Name, " ", "-")
			b.ReportMetric(r.Relative[v], r.Workload+"/"+name)
		}
	}
}

// BenchmarkAblationOptimizerLatency sweeps the optimization engine's
// per-micro-op latency (the paper's Section 4 design point: 10 cycles per
// micro-op, pipeline depth 3 "is sufficient").
func BenchmarkAblationOptimizerLatency(b *testing.B) {
	p, _ := workload.ByName("vortex")
	for _, lat := range []int{1, 10, 40, 160} {
		lat := lat
		b.Run(fmt.Sprintf("cyc%d", lat), func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				var err error
				o := benchOpts()
				o.ConfigMod = func(c *pipeline.Config) { c.OptCyclesPerUOp = lat }
				r, err = sim.RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, o)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.IPC(), "IPC")
			reportPct(b, "%coverage", 100*r.Stats.FrameCoverage())
		})
	}
}

// BenchmarkAblationFrameSize sweeps the frame size limit (paper: 8-256).
func BenchmarkAblationFrameSize(b *testing.B) {
	p, _ := workload.ByName("bzip2")
	for _, max := range []int{32, 64, 128, 256} {
		max := max
		b.Run(fmt.Sprintf("max%d", max), func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				var err error
				o := benchOpts()
				o.ConfigMod = func(c *pipeline.Config) { c.FrameCfg.MaxUOps = max }
				r, err = sim.RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, o)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.IPC(), "IPC")
			reportPct(b, "%uops-removed", 100*r.Stats.UOpReduction())
		})
	}
}

// BenchmarkAblationBiasThreshold sweeps the constructor's branch-bias
// promotion threshold.
func BenchmarkAblationBiasThreshold(b *testing.B) {
	p, _ := workload.ByName("crafty")
	for _, th := range []int{4, 16, 64} {
		th := th
		b.Run(fmt.Sprintf("bias%d", th), func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				var err error
				o := benchOpts()
				o.ConfigMod = func(c *pipeline.Config) { c.FrameCfg.BiasThreshold = th }
				r, err = sim.RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, o)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.IPC(), "IPC")
			reportPct(b, "%coverage", 100*r.Stats.FrameCoverage())
		})
	}
}

// BenchmarkAblationSpeculation compares speculative memory optimization
// against the conservative variant on the aliasing-heavy workload.
func BenchmarkAblationSpeculation(b *testing.B) {
	p, _ := workload.ByName("excel")
	for _, spec := range []bool{true, false} {
		spec := spec
		name := "speculative"
		if !spec {
			name = "conservative"
		}
		b.Run(name, func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				var err error
				o := benchOpts()
				o.ConfigMod = func(c *pipeline.Config) { c.OptOptions.Speculative = spec }
				r, err = sim.RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, o)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.IPC(), "IPC")
			reportPct(b, "%loads-removed", 100*r.Stats.LoadReduction())
			reportPct(b, "%abort-rate", 100*float64(r.Stats.FrameAborts)/float64(r.Stats.FrameFetches+1))
		})
	}
}

// BenchmarkOptimizerThroughput measures the optimizer itself (software
// passes, not the modeled hardware latency): frames optimized per second.
func BenchmarkOptimizerThroughput(b *testing.B) {
	p, _ := workload.ByName("vortex")
	frames := sim.CollectFrames(p, 30_000, 64)
	if len(frames) == 0 {
		b.Fatal("no frames")
	}
	b.ResetTimer()
	uops := 0
	for i := 0; i < b.N; i++ {
		f := frames[i%len(frames)]
		of := opt.Remap(f, opt.ScopeFrame)
		st := opt.Optimize(of, opt.AllOptions())
		uops += st.UOpsIn
	}
	b.ReportMetric(float64(uops)/float64(b.N), "uops/frame")
}

// BenchmarkTelemetryOverhead pins the cost of the telemetry layer when
// it is wired into every engine but disabled, against no telemetry at
// all. Both sub-benchmarks disable the capture and memo caches so each
// iteration executes the identical full simulation; the "disabled"
// variant attaches a fully configured collector (histograms,
// attribution, trace ring) with the atomic enabled gate off. The
// acceptance bar is <2% ns/op between "disabled" and "off" — the
// disabled path pays only nil checks and one atomic load per recording
// site.
func BenchmarkTelemetryOverhead(b *testing.B) {
	p, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, tel *telemetry.Collector) {
		for i := 0; i < b.N; i++ {
			o := sim.Options{MaxInsts: 30_000, DisableCache: true, Telemetry: tel}
			if _, err := sim.RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, o); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("disabled", func(b *testing.B) {
		tel := telemetry.New(telemetry.Config{
			Hist:        telemetry.NewHistogramSet(),
			Attribution: true,
			TraceEvents: 1 << 12,
		})
		tel.SetEnabled(false)
		run(b, tel)
	})
}

// BenchmarkReuseOverhead pins the cost of the reuse-attribution probe,
// mirroring BenchmarkTelemetryOverhead's shape. The probe has no
// enabled/disabled gate: detached (Options.Reuse nil, the default for
// every non-reuse run) costs exactly one nil check on the retirement
// path, which is the <2% "off" bar; "attached" runs the full streaming
// loop detector for reference on what the reuse experiment pays.
func BenchmarkReuseOverhead(b *testing.B) {
	p, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, col *reuse.Collector) {
		for i := 0; i < b.N; i++ {
			o := sim.Options{MaxInsts: 30_000, DisableCache: true, Reuse: col}
			if _, err := sim.RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, o); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("attached", func(b *testing.B) { run(b, reuse.NewCollector()) })
}

// BenchmarkCycleProfOverhead pins the cost of the guest-cycle profiler,
// mirroring BenchmarkReuseOverhead's shape. Detached (Options.CycleProf
// nil, the default for every non-cycles run) the fetch stage pays one
// nil check per charged cycle — the "off" bar, which must stay within
// noise of the un-instrumented pipeline. "Attached" runs the full
// per-PC attribution plus the embedded loop detector, the price of the
// cycles experiment itself.
func BenchmarkCycleProfOverhead(b *testing.B) {
	p, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, col *cycleprof.Collector) {
		for i := 0; i < b.N; i++ {
			o := sim.Options{MaxInsts: 30_000, DisableCache: true, CycleProf: col}
			if _, err := sim.RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, o); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("attached", func(b *testing.B) { run(b, cycleprof.NewCollector()) })
}

// BenchmarkTracingOverhead pins the cost of the span-tracing
// instrumentation in sim and pipeline (internal/tracing), mirroring
// BenchmarkTelemetryOverhead's shape. The instrumentation is always
// compiled in, so the variants differ only in what the context carries:
//
//   - off: plain context — every tracing.Start site does one context
//     lookup, misses, and propagates a nil span whose methods no-op.
//   - disabled: the context passed through a gated-off Tracer's
//     StartRoot, which refuses the root — the path a request takes when
//     tracing is administratively off. Must be indistinguishable from
//     "off": the <2% acceptance bar is between these two.
//   - traced: a live root span from an enabled tracer, full span
//     assembly and tail-sampler offer (which drops the trace), for
//     reference on what enabling costs.
func BenchmarkTracingOverhead(b *testing.B) {
	p, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, ctx context.Context) {
		for i := 0; i < b.N; i++ {
			o := sim.Options{MaxInsts: 30_000, DisableCache: true}
			if _, err := sim.RunWorkload(ctx, p, pipeline.ModeRePLayOpt, o); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, context.Background()) })
	b.Run("disabled", func(b *testing.B) {
		tr := tracing.NewTracer(nil)
		tr.SetEnabled(false)
		ctx, span := tr.StartRoot(context.Background(), "bench", nil)
		span.End()
		run(b, ctx)
	})
	b.Run("traced", func(b *testing.B) {
		store := tracing.NewStore(tracing.StoreConfig{
			Capacity:      4,
			SlowThreshold: time.Hour,
			SampleRate:    -1, // sampler drops every healthy trace: steady-state memory
		})
		tr := tracing.NewTracer(store)
		for i := 0; i < b.N; i++ {
			ctx, span := tr.StartRoot(context.Background(), "bench", nil)
			o := sim.Options{MaxInsts: 30_000, DisableCache: true}
			if _, err := sim.RunWorkload(ctx, p, pipeline.ModeRePLayOpt, o); err != nil {
				b.Fatal(err)
			}
			span.End()
		}
	})
}

// BenchmarkAblationReschedule compares buffer-order frames against the
// Section 4 position-field rescheduling (critical-path-first issue).
func BenchmarkAblationReschedule(b *testing.B) {
	p, _ := workload.ByName("photo") // chain-heavy: scheduling-sensitive
	for _, resched := range []bool{false, true} {
		resched := resched
		name := "buffer-order"
		if resched {
			name = "rescheduled"
		}
		b.Run(name, func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				var err error
				o := benchOpts()
				o.ConfigMod = func(c *pipeline.Config) { c.OptReschedule = resched }
				r, err = sim.RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, o)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.IPC(), "IPC")
		})
	}
}
