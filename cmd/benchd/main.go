// Command benchd is the performance-regression harness: it runs the
// standardized benchmark suite (simulator wall time, engine and
// optimizer throughput, replayd end-to-end request latency), repeats
// each benchmark N times, and writes a schema-versioned BENCH_<n>.json
// report — the repo's recorded performance trajectory. In compare mode
// it diffs two reports and exits non-zero when any metric regresses
// beyond the noise threshold, so CI can catch a slowed hot path that
// tier-1 tests would pass silently.
//
// Usage:
//
//	benchd [-quick] [-repeats N] [-insts N] [-run regex] [-out file.json]
//	benchd -compare OLD.json NEW.json [-threshold 0.25]
//	benchd -list
//
// Without -out, the report continues the BENCH_<n>.json sequence in the
// current directory (BENCH_1.json, BENCH_2.json, ...).
//
// -quick additionally narrows the per-workload sim-wall benchmarks to
// the reuse-selected representative subset (see internal/reuse): a
// short attribution pass ranks the suite workloads by covered reuse
// mass per simulated instruction and only the ranked picks run. Metric
// names are unchanged, so quick and full reports stay comparable on
// the shared subset.
//
// -log-format/-log-level control structured diagnostics on stderr; the
// default level is warn so a clean run prints only progress lines and
// the report path. The embedded replayd benchmark logs through the same
// logger, so -log-level debug exposes its per-job lifecycle lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/benchmark"
	"repro/internal/logflag"
)

func main() {
	quick := flag.Bool("quick", false, "reduced budget and repeats (CI smoke mode)")
	repeats := flag.Int("repeats", 0, "override repetitions per benchmark")
	insts := flag.Int("insts", 0, "override per-trace instruction budget")
	run := flag.String("run", "", "only run benchmarks matching this regexp")
	out := flag.String("out", "", "report path (default: next BENCH_<n>.json in the current directory)")
	compare := flag.Bool("compare", false, "compare two reports: benchd -compare OLD.json NEW.json")
	threshold := flag.Float64("threshold", 0.25, "relative worsening that counts as a regression in -compare")
	list := flag.Bool("list", false, "list the suite's benchmarks and exit")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "warn", "minimum log level: debug, info, warn, error")
	flag.Parse()

	logger, err := logflag.New(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two report paths, got %d", flag.NArg()))
		}
		os.Exit(compareReports(flag.Arg(0), flag.Arg(1), *threshold))
	}

	specs := benchmark.Suite()
	if *list {
		for _, s := range specs {
			fmt.Printf("%-28s %-8s better=%s\n", s.Name, s.Unit, s.Better)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *quick {
		// Quick mode trades coverage for wall time by running only the
		// reuse-selected representative workloads: a short attribution
		// pass ranks the suite profiles by covered reuse mass per
		// simulated instruction, and the sim-wall benchmarks shrink to
		// that subset (metric names stay full-suite-compatible).
		qspecs, picks, qerr := benchmark.QuickSuite(ctx)
		if qerr != nil {
			fatal(qerr)
		}
		specs = qspecs
		for _, p := range picks {
			fmt.Fprintf(os.Stderr, "benchd: subset rank %d: %s (coverage %.1f%%, cost share %.1f%%)\n",
				p.Rank, p.Name, 100*p.Coverage, 100*p.CostFrac)
		}
	}
	specs, err = benchmark.Filter(specs, *run)
	if err != nil {
		fatal(err)
	}
	if len(specs) == 0 {
		fatal(fmt.Errorf("no benchmarks match -run %q", *run))
	}

	settings := benchmark.DefaultSettings()
	if *quick {
		settings = benchmark.QuickSettings()
	}
	if *repeats > 0 {
		settings.Repeats = *repeats
	}
	if *insts > 0 {
		settings.Insts = *insts
	}
	settings.Logger = logger

	path := *out
	if path == "" {
		if path, err = benchmark.NextReportPath("."); err != nil {
			fatal(err)
		}
	}
	rep, err := benchmark.RunSuite(ctx, specs, settings, func(line string) {
		fmt.Fprintln(os.Stderr, "benchd:", line)
	})
	if err != nil {
		fatal(err)
	}
	if err := benchmark.WriteReport(path, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("benchd: wrote %s (%d metrics, %d repeats, %d insts)\n",
		path, len(rep.Metrics), settings.Repeats, settings.Insts)
}

func compareReports(oldPath, newPath string, threshold float64) int {
	old, err := benchmark.ReadReport(oldPath)
	if err != nil {
		fatal(err)
	}
	cur, err := benchmark.ReadReport(newPath)
	if err != nil {
		fatal(err)
	}
	c := benchmark.Compare(old, cur, threshold)
	c.WriteText(os.Stdout)
	if c.Regressions() > 0 {
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchd:", err)
	os.Exit(1)
}
