// Command replayctl is the replayd client and load generator: it
// submits experiment requests (optionally many identical ones in
// parallel, to exercise the daemon's coalescing), watches job progress,
// and scrapes metrics.
//
// Usage:
//
//	replayctl -experiment fig6 [-workloads a,b] [-insts N] [-mode RPO]
//	          [-n 8] [-async] [-json] [-job-trace out.json]
//	replayctl -upload trace.xut
//	replayctl -run-trace <id> [-mode RPO] [-insts N]
//	replayctl -watch job-000001
//	replayctl -metrics [-raw]
//	replayctl -traces
//	replayctl -trace 0af7651916cd43dd8448eb211c80319c
//	replayctl -reuse job-000001
//	replayctl -reuse trace:<id> [-workloads a,b]
//	replayctl -profile job-000002 [-pprof-out guest.pb.gz]
//	replayctl -diff job-000003
//
// -upload sends an external uop-trace file (tracegen -export) to the
// daemon's POST /v1/traces spool and prints its content-addressed ID;
// -run-trace simulates a spooled trace by that ID through the normal
// job queue (coalescing, memoization, and -n/-async/-json all apply).
//
// Every request carries a fresh W3C traceparent header, so the daemon's
// span trace continues from a client root; the job line prints the
// trace ID, and -trace <id> fetches that span trace back from
// /debug/traces/{id} as a flame-style text view (-json for the raw
// spans). -traces lists what the daemon's tail sampler kept.
//
// -reuse fetches a finished reuse job's report from /debug/reuse?job=ID
// and renders the loop-depth decomposition, heaviest loops, and the
// ranked representative workload subset (-json for the raw report).
// -reuse trace:<id> instead decomposes a spooled external trace and
// ranks it alongside any -workloads, so an upload can audition for the
// representative subset; the "-reuse -trace <id>" spelling is accepted
// as an alias.
//
// -diff fetches a finished diff job's comparison from /debug/diff?job=ID
// and renders it side by side: significance-gated top-line metrics with
// the ±2×SEM bound each verdict cleared (or didn't), per-pass removal
// deltas, and the heaviest per-loop deltas as signed bars. Submit a
// comparison with POST /v1/diff (two run specs or two finished job IDs).
//
// -profile fetches a finished cycles job's guest-cycle profile from
// /debug/profile?job=ID and renders the per-bin cycle split and the
// top-N loop and PC hotspots (-json for the raw report); -pprof-out
// saves the gzipped pprof export alongside, for `go tool pprof`.
//
// -metrics renders the daemon's Prometheus exposition as tables and
// per-bucket histogram bars, with OpenMetrics exemplars (the trace IDs
// sampled into histogram buckets) listed under each histogram; -raw
// prints the exposition verbatim. -job-trace saves a frame-lifecycle
// Chrome trace_event file — the micro-op-level view, distinct from the
// request-level span traces.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/diff"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracing"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "replayd base URL")
	experiment := flag.String("experiment", "summary", "experiment to request (fig6..fig10, table3, summary, cell)")
	workloads := flag.String("workloads", "", "comma-separated workload subset")
	insts := flag.Int("insts", 0, "per-trace instruction budget override")
	warmup := flag.Float64("warmup", 0, "warmup fraction override")
	mode := flag.String("mode", "", "processor mode for cell runs (IC, TC, RP, RPO)")
	scope := flag.String("scope", "", "optimizer scope override (block, inter, frame)")
	disable := flag.String("disable", "", "comma-separated optimizations to disable (asst,cp,cse,nop,ra,sf,spec)")
	n := flag.Int("n", 1, "number of identical concurrent requests (coalescing load test)")
	async := flag.Bool("async", false, "enqueue without waiting (POST /v1/jobs)")
	jsonOut := flag.Bool("json", false, "print the raw result JSON only")
	watch := flag.String("watch", "", "stream progress events of a job ID and exit")
	metrics := flag.Bool("metrics", false, "pretty-print the daemon's /metrics and exit")
	raw := flag.Bool("raw", false, "with -metrics, print the Prometheus exposition verbatim instead of tables")
	traceOut := flag.String("job-trace", "", "request a frame-lifecycle trace and save the Chrome trace_event JSON to this file")
	traceID := flag.String("trace", "", "fetch one span trace by ID from /debug/traces and print its flame view (-json for the raw spans)")
	traces := flag.Bool("traces", false, "list the span traces kept by the daemon's tail sampler and exit")
	reuseJob := flag.String("reuse", "", "fetch a finished reuse job's report from /debug/reuse and render it; trace:<id> decomposes a spooled trace instead (alongside any -workloads)")
	diffJob := flag.String("diff", "", "fetch a finished diff job's comparison from /debug/diff and render it side by side")
	profileJob := flag.String("profile", "", "fetch a finished cycles job's guest-cycle profile from /debug/profile and render it")
	pprofOut := flag.String("pprof-out", "", "with -profile, also save the gzipped pprof export to this file")
	upload := flag.String("upload", "", "upload an external uop-trace file to the daemon's spool and exit")
	runTrace := flag.String("run-trace", "", "run a spooled external trace by content ID")
	timeout := flag.Duration("timeout", 10*time.Minute, "per-request HTTP timeout")
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*addr, "/")

	switch {
	case *upload != "":
		if err := uploadTrace(client, base, *upload, *jsonOut); err != nil {
			fatal(err)
		}
	case *runTrace != "":
		req := api.RunRequest{
			XTrace:     *runTrace,
			Mode:       *mode,
			Insts:      *insts,
			WarmupFrac: *warmup,
		}
		if err := run(client, base, req, *n, *async, *jsonOut, ""); err != nil {
			fatal(err)
		}
	case *traces:
		if err := listTraces(client, base); err != nil {
			fatal(err)
		}
	case *reuseJob != "":
		// Two trace spellings reach the same job: the canonical
		// -reuse trace:<id>, and the natural-but-wrong -reuse -trace <id>
		// (the flag package eats "-trace" as -reuse's value and leaves the
		// ID positional).
		id := *reuseJob
		if id == "-trace" && flag.NArg() == 1 {
			id = "trace:" + flag.Arg(0)
		}
		if tid, ok := strings.CutPrefix(id, "trace:"); ok {
			if err := runReuseTrace(client, base, tid, *workloads, *insts, *jsonOut); err != nil {
				fatal(err)
			}
			break
		}
		if err := showReuse(client, base, id, *jsonOut); err != nil {
			fatal(err)
		}
	case *diffJob != "":
		if err := showDiff(client, base, *diffJob, *jsonOut); err != nil {
			fatal(err)
		}
	case *profileJob != "":
		if err := showProfile(client, base, *profileJob, *pprofOut, *jsonOut); err != nil {
			fatal(err)
		}
	case *traceID != "":
		format := "text"
		if *jsonOut {
			format = "json"
		}
		if err := get(client, base+"/debug/traces/"+*traceID+"?format="+format, os.Stdout); err != nil {
			fatal(err)
		}
	case *metrics:
		if *raw {
			if err := get(client, base+"/metrics", os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		var buf bytes.Buffer
		if err := get(client, base+"/metrics", &buf); err != nil {
			fatal(err)
		}
		if err := printMetrics(&buf, os.Stdout); err != nil {
			fatal(err)
		}
	case *watch != "":
		if err := watchJob(base, *watch); err != nil {
			fatal(err)
		}
	default:
		req := api.RunRequest{
			Experiment: *experiment,
			Insts:      *insts,
			WarmupFrac: *warmup,
			Mode:       *mode,
		}
		if *workloads != "" {
			req.Workloads = strings.Split(*workloads, ",")
		}
		if *scope != "" || *disable != "" {
			cfg := &api.ConfigOverrides{OptScope: *scope}
			if *disable != "" {
				cfg.DisableOpts = strings.Split(*disable, ",")
			}
			req.Config = cfg
		}
		req.Trace = *traceOut != ""
		if err := run(client, base, req, *n, *async, *jsonOut, *traceOut); err != nil {
			fatal(err)
		}
	}
}

// printMetrics renders a Prometheus exposition readably: counters and
// gauges as one table, each histogram as per-bucket bars.
func printMetrics(r io.Reader, w io.Writer) error {
	fams, err := stats.ParseProm(r)
	if err != nil {
		return err
	}
	t := stats.NewTable("Metric", "Type", "Value")
	var hists, summaries, labeled []stats.PromFamily
	for _, f := range fams {
		switch f.Type {
		case "histogram":
			hists = append(hists, f)
			continue
		case "summary":
			summaries = append(summaries, f)
			continue
		}
		if len(f.Labeled) > 0 {
			labeled = append(labeled, f)
		}
		t.Row(f.Name, f.Type, strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", f.Value), "0"), "."))
	}
	t.Write(w)
	// Labeled families (one counter per bin/bucket) get a bar breakdown:
	// the table row above shows their sum.
	for _, f := range labeled {
		fmt.Fprintf(w, "\n%s by label:\n", f.Name)
		maxV := 1.0
		for _, s := range f.Labeled {
			if s.Value > maxV {
				maxV = s.Value
			}
		}
		for _, s := range f.Labeled {
			stats.Bar(w, s.Labels, s.Value, maxV, 40, "%.0f")
		}
	}
	for _, s := range summaries {
		fmt.Fprintf(w, "\n%s (summary): %.0f samples", s.Name, s.Count)
		for _, q := range s.Quantiles {
			fmt.Fprintf(w, "  p%g=%.4g", q.Q*100, q.V)
		}
		fmt.Fprintln(w)
	}
	for _, h := range hists {
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / h.Count
		}
		fmt.Fprintf(w, "\n%s (histogram): %.0f samples, mean %.1f\n", h.Name, h.Count, mean)
		// Exposition buckets are cumulative; diff them back into
		// per-bucket counts for the bars.
		prev, maxN := 0.0, 1.0
		counts := make([]float64, len(h.Buckets))
		for i, b := range h.Buckets {
			counts[i] = b.Count - prev
			prev = b.Count
			if counts[i] > maxN {
				maxN = counts[i]
			}
		}
		for i, b := range h.Buckets {
			label := "+Inf"
			if !math.IsInf(b.Le, 1) {
				label = strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.1f", b.Le), "0"), ".")
			}
			stats.Bar(w, "le="+label, counts[i], maxN, 40, "%.0f")
		}
		for _, b := range h.Buckets {
			if b.Exemplar == nil || b.Exemplar.TraceID == "" {
				continue
			}
			label := "+Inf"
			if !math.IsInf(b.Le, 1) {
				label = strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", b.Le), "0"), ".")
			}
			fmt.Fprintf(w, "  exemplar le=%s: trace=%s value=%.4g\n",
				label, b.Exemplar.TraceID, b.Exemplar.Value)
		}
	}
	return nil
}

// uploadTrace streams one external trace file to POST /v1/traces and
// prints the spool's view of it. Rejections surface the daemon's
// structured error (kind, limit) rather than a bare status line.
func uploadTrace(client *http.Client, base, path string, jsonOut bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	resp, err := client.Post(base+"/v1/traces", "application/octet-stream", f)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		var e struct {
			Error string `json:"error"`
			Kind  string `json:"kind"`
			Limit int64  `json:"limit_bytes"`
		}
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			if e.Limit > 0 {
				return fmt.Errorf("%s: %s (%s, limit %d bytes)", resp.Status, e.Error, e.Kind, e.Limit)
			}
			return fmt.Errorf("%s: %s (%s)", resp.Status, e.Error, e.Kind)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	if jsonOut {
		os.Stdout.Write(append(bytes.TrimSpace(b), '\n'))
		return nil
	}
	var info struct {
		ID        string `json:"id"`
		Name      string `json:"name"`
		Records   uint64 `json:"records"`
		Insts     uint32 `json:"insts"`
		Bytes     int64  `json:"bytes"`
		Duplicate bool   `json:"duplicate"`
	}
	if err := json.Unmarshal(b, &info); err != nil {
		return fmt.Errorf("decoding upload response: %w", err)
	}
	verb := "uploaded"
	if info.Duplicate {
		verb = "already spooled"
	}
	fmt.Printf("%s %s: id %s (%d records, %d insts, %d bytes)\n",
		verb, path, info.ID, info.Records, info.Insts, info.Bytes)
	fmt.Printf("run it with: replayctl -run-trace %s\n", info.ID)
	return nil
}

// showReuse fetches a finished reuse job's report and renders the
// per-workload loop-depth decomposition, each workload's heaviest
// loops, and the ranked representative subset — the client-side twin of
// replaysim's -experiment reuse table.
func showReuse(client *http.Client, base, jobID string, jsonOut bool) error {
	var buf bytes.Buffer
	if err := get(client, base+"/debug/reuse?job="+jobID, &buf); err != nil {
		return err
	}
	if jsonOut {
		os.Stdout.Write(append(bytes.TrimRight(buf.Bytes(), "\n"), '\n'))
		return nil
	}
	var rep sim.ReuseReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		return fmt.Errorf("decoding reuse report: %w", err)
	}
	renderReuse(&rep, fmt.Sprintf("reuse report for %s", jobID))
	return nil
}

// runReuseTrace submits a reuse job against a spooled trace (optionally
// ranking it alongside explicitly listed workloads) and renders the
// resulting decomposition — the upload-side twin of -reuse <job>.
func runReuseTrace(client *http.Client, base, traceID, workloads string, insts int, jsonOut bool) error {
	req := api.RunRequest{Experiment: api.ExpReuse, XTrace: traceID, Insts: insts}
	if workloads != "" {
		req.Workloads = strings.Split(workloads, ",")
	}
	j, err := post(client, base+"/v1/run", req)
	if err != nil {
		return err
	}
	if j.Error != "" {
		return fmt.Errorf("job %s: %s", j.ID, j.Error)
	}
	if j.Result == nil || j.Result.Reuse == nil {
		return fmt.Errorf("job %s returned no reuse report", j.ID)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(j.Result)
	}
	renderReuse(j.Result.Reuse, fmt.Sprintf("reuse decomposition of trace %s (job %s)", traceID, j.ID))
	return nil
}

// renderReuse prints one reuse report: the per-workload loop-depth
// decomposition, each workload's heaviest loops, and the ranked
// representative subset.
func renderReuse(rep *sim.ReuseReport, heading string) {
	fmt.Printf("%s (%d workloads)\n\n", heading, len(rep.Rows))
	t := stats.NewTable("Workload", "Loops", "Loop uops", "Straight", "d1", "d2", "d3+", "Hits/loop", "Evict")
	for i := range rep.Rows {
		r := &rep.Rows[i]
		var loopHits, evicts uint64
		for b := 0; b < len(r.Report.Buckets); b++ {
			evicts += r.Report.Buckets[b].Evictions
			if b > 0 {
				loopHits += r.Report.Buckets[b].FrameHits
			}
		}
		pct := func(b int) string {
			if r.Report.TotalUOps == 0 {
				return "0%"
			}
			return fmt.Sprintf("%.0f%%", 100*float64(r.Report.Bucket(b).UOps)/float64(r.Report.TotalUOps))
		}
		t.Row(r.Workload, r.Report.Loops,
			fmt.Sprintf("%.0f%%", 100*r.Report.LoopFrac()),
			pct(0), pct(1), pct(2), pct(3), loopHits, evicts)
	}
	t.Write(os.Stdout)

	for i := range rep.Rows {
		r := &rep.Rows[i]
		if len(r.Report.TopLoops) == 0 {
			continue
		}
		fmt.Printf("\n%s heaviest loops:\n", r.Workload)
		lt := stats.NewTable("Trace", "Header", "Tail", "Nest", "Trips", "uops")
		for _, l := range r.Report.TopLoops {
			lt.Row(l.Trace, fmt.Sprintf("0x%x", l.Header), fmt.Sprintf("0x%x", l.Tail),
				l.Nest, fmt.Sprintf("%.1f", l.TripCount()), l.UOps)
		}
		lt.Write(os.Stdout)
	}

	if len(rep.Subset) > 0 {
		fmt.Println("\nrepresentative subset (greedy, covered reuse mass per simulated instruction):")
		st := stats.NewTable("Rank", "Workload", "Gain", "Coverage", "Cost share")
		for _, p := range rep.Subset {
			st.Row(p.Rank, p.Name,
				fmt.Sprintf("%.3f", p.Gain),
				fmt.Sprintf("%.1f%%", 100*p.Coverage),
				fmt.Sprintf("%.1f%%", 100*p.CostFrac))
		}
		st.Write(os.Stdout)
	}
}

// showDiff fetches a finished diff job's comparison report and renders
// it side by side — per workload, the gated top-line metrics, per-pass
// removal deltas, and the heaviest per-loop deltas with signed bars —
// the client-side twin of replaysim's -experiment diff output.
func showDiff(client *http.Client, base, jobID string, jsonOut bool) error {
	var buf bytes.Buffer
	if err := get(client, base+"/debug/diff?job="+jobID, &buf); err != nil {
		return err
	}
	if jsonOut {
		os.Stdout.Write(append(bytes.TrimRight(buf.Bytes(), "\n"), '\n'))
		return nil
	}
	var rep sim.DiffReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		return fmt.Errorf("decoding diff report: %w", err)
	}
	fmt.Printf("ablation diff for %s: %s vs %s (%d workloads)\n\n",
		jobID, rep.Baseline, rep.Variant, len(rep.Rows))
	for i := range rep.Rows {
		r := &rep.Rows[i]
		if i > 0 {
			fmt.Println()
		}
		diff.WriteReport(os.Stdout, r.Workload, r.Class, &r.Report)
	}
	fmt.Printf("\n%d loops compared; %d significant regressions, %d significant improvements\n",
		rep.LoopsCompared(), rep.SignificantRegressions(), rep.SignificantImprovements())
	return nil
}

// showProfile fetches a finished cycles job's guest-cycle profile and
// renders the per-workload bin split and the top loop and PC hotspots —
// the client-side twin of replaysim's -experiment cycles table. With
// pprofOut it also fetches the format=pprof export and saves it for
// `go tool pprof`.
func showProfile(client *http.Client, base, jobID, pprofOut string, jsonOut bool) error {
	var buf bytes.Buffer
	if err := get(client, base+"/debug/profile?job="+jobID, &buf); err != nil {
		return err
	}
	if pprofOut != "" {
		var pb bytes.Buffer
		if err := get(client, base+"/debug/profile?job="+jobID+"&format=pprof", &pb); err != nil {
			return err
		}
		if err := os.WriteFile(pprofOut, pb.Bytes(), 0o644); err != nil {
			return err
		}
	}
	if jsonOut {
		os.Stdout.Write(append(bytes.TrimRight(buf.Bytes(), "\n"), '\n'))
		return nil
	}
	var rep sim.CycleReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		return fmt.Errorf("decoding cycle profile: %w", err)
	}
	fmt.Printf("guest-cycle profile for %s (%d workloads)\n\n", jobID, len(rep.Rows))
	order := []pipeline.Bin{pipeline.BinAssert, pipeline.BinMispred, pipeline.BinMiss,
		pipeline.BinStall, pipeline.BinWait, pipeline.BinFrame, pipeline.BinICache}
	t := stats.NewTable("Workload", "IPC", "Cycles", "PCs", "Loops",
		"assert", "mispred", "miss", "stall", "wait", "frame", "icache")
	for i := range rep.Rows {
		r := &rep.Rows[i]
		cells := []interface{}{r.Workload, fmt.Sprintf("%.3f", r.IPC),
			r.Report.Cycles, len(r.Report.PCs), len(r.Report.Loops)}
		for _, b := range order {
			cells = append(cells, fmt.Sprintf("%.0f%%", 100*r.Report.BinFrac(b)))
		}
		t.Row(cells...)
	}
	t.Write(os.Stdout)

	for i := range rep.Rows {
		r := &rep.Rows[i]
		total := r.Report.Cycles
		if total == 0 {
			total = 1
		}
		if len(r.Report.Loops) > 0 {
			fmt.Printf("\n%s hottest loops:\n", r.Workload)
			lt := stats.NewTable("Loop", "Nest", "Trips", "Cycles", "% of run", "IPC", "mispred", "cover")
			loops := r.Report.Loops
			if len(loops) > 8 {
				loops = loops[:8]
			}
			for j := range loops {
				l := &loops[j]
				lt.Row(fmt.Sprintf("t%d:0x%04x-0x%04x", l.Trace, l.Header, l.Tail),
					l.Nest, fmt.Sprintf("%.1f", l.Trips), l.Cycles,
					fmt.Sprintf("%.1f%%", 100*float64(l.Cycles)/float64(total)),
					fmt.Sprintf("%.3f", l.IPC()),
					fmt.Sprintf("%.0f%%", 100*l.BinFrac(pipeline.BinMispred)),
					fmt.Sprintf("%.0f%%", 100*l.CoverFrac()))
			}
			lt.Write(os.Stdout)
		}
		fmt.Printf("\n%s hottest PCs:\n", r.Workload)
		pt := stats.NewTable("PC", "Cycles", "% of run", "x86", "uops")
		for _, p := range r.Report.TopPCs(8) {
			pt.Row(fmt.Sprintf("t%d:0x%04x", p.Trace, p.PC), p.Cycles,
				fmt.Sprintf("%.1f%%", 100*float64(p.Cycles)/float64(total)),
				p.X86, p.UOps)
		}
		pt.Write(os.Stdout)
	}
	if pprofOut != "" {
		fmt.Printf("\npprof export saved to %s (inspect with: go tool pprof -top %s)\n", pprofOut, pprofOut)
	}
	return nil
}

// listTraces renders /debug/traces — the span traces the daemon's tail
// sampler kept — as a table, newest first.
func listTraces(client *http.Client, base string) error {
	var buf bytes.Buffer
	if err := get(client, base+"/debug/traces", &buf); err != nil {
		return err
	}
	var sums []struct {
		TraceID  string        `json:"trace_id"`
		Root     string        `json:"root"`
		Start    time.Time     `json:"start"`
		Duration time.Duration `json:"duration_ns"`
		Spans    int           `json:"spans"`
		Error    bool          `json:"error"`
		Reason   string        `json:"reason"`
	}
	if err := json.Unmarshal(buf.Bytes(), &sums); err != nil {
		return fmt.Errorf("decoding trace list: %w", err)
	}
	if len(sums) == 0 {
		fmt.Println("no traces stored (evicted or sampled out)")
		return nil
	}
	t := stats.NewTable("Trace", "Root", "Start", "Duration", "Spans", "Kept as")
	for _, s := range sums {
		kept := s.Reason
		if s.Error {
			kept += " (error)"
		}
		t.Row(s.TraceID, s.Root, s.Start.Format("15:04:05.000"),
			s.Duration.Round(time.Microsecond).String(), s.Spans, kept)
	}
	t.Write(os.Stdout)
	fmt.Println("\nfetch one with: replayctl -trace <id>")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replayctl:", err)
	os.Exit(1)
}

func get(client *http.Client, url string, w io.Writer) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(b)))
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// post sends the request to path with a fresh client traceparent (so
// the daemon's span trace roots under a client span) and decodes the
// job it returns.
func post(client *http.Client, url string, req api.RunRequest) (api.Job, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return api.Job{}, err
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return api.Job{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	tp := tracing.Traceparent{
		Trace: tracing.NewTraceID(),
		Span:  tracing.NewSpanID(),
		Flags: tracing.FlagSampled,
	}
	hreq.Header.Set(tracing.TraceparentHeader, tp.String())
	resp, err := client.Do(hreq)
	if err != nil {
		return api.Job{}, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return api.Job{}, err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			return api.Job{}, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return api.Job{}, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	var j api.Job
	if err := json.Unmarshal(b, &j); err != nil {
		return api.Job{}, fmt.Errorf("decoding job: %w", err)
	}
	return j, nil
}

// run fires n identical requests concurrently and reports what the
// daemon did with them (how many coalesced, wall time, result).
func run(client *http.Client, base string, req api.RunRequest, n int, async, jsonOut bool, traceOut string) error {
	path := base + "/v1/run"
	if async {
		path = base + "/v1/jobs"
	}
	if n < 1 {
		n = 1
	}
	jobs := make([]api.Job, n)
	errs := make([]error, n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i], errs[i] = post(client, path, req)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	coalesced := 0
	ids := map[string]bool{}
	for _, j := range jobs {
		if j.Coalesced {
			coalesced++
		}
		ids[j.ID] = true
	}
	final := jobs[0]
	for _, j := range jobs {
		if j.Result != nil {
			final = j
			break
		}
	}

	if traceOut != "" && !async {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		err = get(client, base+"/debug/trace?job="+final.ID, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("fetching trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", traceOut)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if final.Result != nil {
			return enc.Encode(final.Result)
		}
		return enc.Encode(final)
	}
	if n > 1 {
		fmt.Printf("%d requests -> %d distinct job(s), %d coalesced, wall %s\n",
			n, len(ids), coalesced, wall.Round(time.Millisecond))
	}
	fmt.Printf("job %s  state=%s  key=%s", final.ID, final.State, final.Key)
	if final.TraceID != "" {
		fmt.Printf("  trace=%s", final.TraceID)
	}
	fmt.Println()
	if final.Error != "" {
		fmt.Printf("error: %s\n", final.Error)
	}
	if final.Result != nil {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(final.Result)
	}
	return nil
}

// watchJob tails the NDJSON event stream of one job. It uses an
// untimed client: streams outlive the normal request timeout.
func watchJob(base, id string) error {
	c := &http.Client{}
	resp, err := c.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e api.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return err
		}
		switch {
		case e.Msg != "" && e.Total > 0:
			fmt.Printf("[%3d/%3d] %s\n", e.Done, e.Total, e.Msg)
		case e.Msg != "":
			fmt.Println(e.Msg)
		default:
			fmt.Printf("state: %s\n", e.State)
		}
	}
	return sc.Err()
}
