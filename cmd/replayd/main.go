// Command replayd serves the paper's experiments as a long-lived HTTP
// JSON service with a bounded job queue, request coalescing, live
// metrics, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	replayd [-addr :8080] [-workers 2] [-queue 64] [-max-insts N]
//	        [-memo-entries N] [-capture-entries N] [-capture-bytes N]
//	        [-drain-timeout 30s] [-pprof addr] [-trace-events N]
//	        [-trace-store N] [-trace-slow 1s] [-trace-sample 1.0]
//	        [-spool-dir DIR] [-spool-bytes N] [-max-upload N]
//	        [-log-format text|json] [-log-level debug|info|warn|error]
//
// Every job lifecycle line (accepted, coalesced, started, finished,
// rejected) is structured and carries the job ID and coalescing key;
// -log-format json emits machine-parseable records for log shippers,
// -log-level debug adds a per-request HTTP access log.
//
// Every /v1/* request opens a span trace (continuing the client's W3C
// traceparent header when one is sent) covering the queue wait, the
// simulation, and each optimizer pass; completed traces pass a
// tail-based sampler (errors and slow traces always kept, the rest
// gated by -trace-sample) into a bounded store queryable at
// /debug/traces. The -trace-* flags size the store.
//
// Endpoints:
//
//	POST /v1/run             run an experiment, wait for the result
//	                         (?trace=<id> runs a spooled external trace)
//	POST /v1/jobs            enqueue asynchronously, returns the job
//	POST /v1/traces          upload an external uop trace into the spool
//	GET  /v1/traces          list spooled traces and occupancy
//	GET  /v1/traces/{id}      describe one spooled trace
//	GET  /v1/jobs            list jobs
//	GET  /v1/jobs/{id}        job status and result
//	GET  /v1/jobs/{id}/events NDJSON progress stream
//	GET  /v1/workloads       the Table 1 workload set
//	GET  /metrics            Prometheus text metrics (includes the
//	                         frame-lifecycle histograms, with trace-ID
//	                         exemplars on the latency histogram)
//	GET  /debug/trace?job=ID Chrome trace_event JSON for a job
//	                         submitted with "trace": true
//	GET  /debug/traces       span traces kept by the tail sampler
//	GET  /debug/traces/{id}  one trace (?format=json|chrome|text)
//	GET  /healthz            liveness (503 while draining)
//
// The trace spool (external uop traces accepted at POST /v1/traces and
// run via ?trace=<id> or the xtrace request field) lives under
// -spool-dir, bounded by -spool-bytes with LRU eviction; -max-upload
// caps one upload's body. -spool-dir "" disables the upload front end
// (those endpoints answer 503).
//
// -pprof serves net/http/pprof on its own listener (for example
// -pprof localhost:6060), kept off the public mux so profiling
// endpoints are never exposed alongside the API.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/logflag"
	"repro/internal/server"
	"repro/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent jobs (each job parallelizes across CPUs internally)")
	queue := flag.Int("queue", 64, "bound on jobs accepted but not yet running")
	maxInsts := flag.Int("max-insts", 0, "cap on a request's per-trace instruction budget (0 = none)")
	memoEntries := flag.Int("memo-entries", sim.DefaultMemoEntries, "run-memo entry budget")
	captureEntries := flag.Int("capture-entries", sim.DefaultCaptureEntries, "capture-cache entry budget")
	captureBytes := flag.Int64("capture-bytes", sim.DefaultCaptureBytes, "capture-cache byte budget")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables")
	traceEvents := flag.Int("trace-events", 0, "per-job trace ring size for requests with \"trace\": true (0 = default 65536)")
	traceStore := flag.Int("trace-store", 0, "span traces kept queryable at /debug/traces (0 = default 256)")
	traceSlow := flag.Duration("trace-slow", 0, "tail sampler's slow-trace cutoff: traces at least this long are always kept (0 = default 1s)")
	traceSample := flag.Float64("trace-sample", 0, "probability a trace that is neither errored nor slow is kept (0 = keep all)")
	spoolDir := flag.String("spool-dir", filepath.Join(os.TempDir(), "replayd-spool"),
		"directory for uploaded external traces (empty disables the upload front end)")
	spoolBytes := flag.Int64("spool-bytes", 0, "byte budget of the trace spool, LRU-evicted (0 = default 256 MiB)")
	maxUpload := flag.Int64("max-upload", 0, "cap on one trace upload's body (0 = default 64 MiB)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()

	logger, err := logflag.New(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		log.Fatalf("replayd: %v", err)
	}
	slog.SetDefault(logger)

	sim.SetMemoLimit(*memoEntries)
	sim.SetCaptureLimits(*captureEntries, *captureBytes)

	if *pprofAddr != "" {
		// pprof gets its own mux and listener: registering the handlers
		// explicitly (instead of importing the package for its side
		// effect on http.DefaultServeMux) keeps the profiling surface off
		// the public API socket entirely.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", httppprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				logger.Error("pprof server failed", "error", err)
			}
		}()
	}

	core := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxInsts:       *maxInsts,
		TraceEvents:    *traceEvents,
		TraceStore:     *traceStore,
		TraceSlow:      *traceSlow,
		TraceSample:    *traceSample,
		SpoolDir:       *spoolDir,
		SpoolBytes:     *spoolBytes,
		MaxUploadBytes: *maxUpload,
		Logger:         logger,
	})
	hs := &http.Server{Addr: *addr, Handler: core.Handler()}

	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		got := <-sig
		logger.Info("signal received, draining", "signal", got.String(), "timeout", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain the job queue first so synchronous waiters get their
		// results, then stop the listener (which waits for handlers).
		if err := core.Shutdown(ctx); err != nil {
			logger.Warn("job drain incomplete", "error", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			logger.Warn("http shutdown", "error", err)
		}
		close(idle)
	}()

	logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue, "log_format", *logFormat)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("replayd: %v", err)
	}
	<-idle
	logger.Info("drained, exiting")
}
