// Command replayd serves the paper's experiments as a long-lived HTTP
// JSON service with a bounded job queue, request coalescing, live
// metrics, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	replayd [-addr :8080] [-workers 2] [-queue 64] [-max-insts N]
//	        [-memo-entries N] [-capture-entries N] [-capture-bytes N]
//	        [-drain-timeout 30s] [-pprof addr] [-trace-events N]
//	        [-log-format text|json] [-log-level debug|info|warn|error]
//
// Every job lifecycle line (accepted, coalesced, started, finished,
// rejected) is structured and carries the job ID and coalescing key;
// -log-format json emits machine-parseable records for log shippers,
// -log-level debug adds a per-request HTTP access log.
//
// Endpoints:
//
//	POST /v1/run             run an experiment, wait for the result
//	POST /v1/jobs            enqueue asynchronously, returns the job
//	GET  /v1/jobs            list jobs
//	GET  /v1/jobs/{id}        job status and result
//	GET  /v1/jobs/{id}/events NDJSON progress stream
//	GET  /v1/workloads       the Table 1 workload set
//	GET  /metrics            Prometheus text metrics (includes the
//	                         frame-lifecycle histograms)
//	GET  /debug/trace?job=ID Chrome trace_event JSON for a job
//	                         submitted with "trace": true
//	GET  /healthz            liveness (503 while draining)
//
// -pprof serves net/http/pprof on its own listener (for example
// -pprof localhost:6060), kept off the public mux so profiling
// endpoints are never exposed alongside the API.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
)

// newLogger builds the daemon's structured logger from the -log-format
// and -log-level flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent jobs (each job parallelizes across CPUs internally)")
	queue := flag.Int("queue", 64, "bound on jobs accepted but not yet running")
	maxInsts := flag.Int("max-insts", 0, "cap on a request's per-trace instruction budget (0 = none)")
	memoEntries := flag.Int("memo-entries", sim.DefaultMemoEntries, "run-memo entry budget")
	captureEntries := flag.Int("capture-entries", sim.DefaultCaptureEntries, "capture-cache entry budget")
	captureBytes := flag.Int64("capture-bytes", sim.DefaultCaptureBytes, "capture-cache byte budget")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables")
	traceEvents := flag.Int("trace-events", 0, "per-job trace ring size for requests with \"trace\": true (0 = default 65536)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		log.Fatalf("replayd: %v", err)
	}
	slog.SetDefault(logger)

	sim.SetMemoLimit(*memoEntries)
	sim.SetCaptureLimits(*captureEntries, *captureBytes)

	if *pprofAddr != "" {
		// pprof gets its own mux and listener: registering the handlers
		// explicitly (instead of importing the package for its side
		// effect on http.DefaultServeMux) keeps the profiling surface off
		// the public API socket entirely.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", httppprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				logger.Error("pprof server failed", "error", err)
			}
		}()
	}

	core := server.New(server.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		MaxInsts:    *maxInsts,
		TraceEvents: *traceEvents,
		Logger:      logger,
	})
	hs := &http.Server{Addr: *addr, Handler: core.Handler()}

	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		got := <-sig
		logger.Info("signal received, draining", "signal", got.String(), "timeout", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain the job queue first so synchronous waiters get their
		// results, then stop the listener (which waits for handlers).
		if err := core.Shutdown(ctx); err != nil {
			logger.Warn("job drain incomplete", "error", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			logger.Warn("http shutdown", "error", err)
		}
		close(idle)
	}()

	logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue, "log_format", *logFormat)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("replayd: %v", err)
	}
	<-idle
	logger.Info("drained, exiting")
}
