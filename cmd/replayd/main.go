// Command replayd serves the paper's experiments as a long-lived HTTP
// JSON service with a bounded job queue, request coalescing, live
// metrics, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	replayd [-addr :8080] [-workers 2] [-queue 64] [-max-insts N]
//	        [-memo-entries N] [-capture-entries N] [-capture-bytes N]
//	        [-drain-timeout 30s]
//
// Endpoints:
//
//	POST /v1/run             run an experiment, wait for the result
//	POST /v1/jobs            enqueue asynchronously, returns the job
//	GET  /v1/jobs            list jobs
//	GET  /v1/jobs/{id}        job status and result
//	GET  /v1/jobs/{id}/events NDJSON progress stream
//	GET  /v1/workloads       the Table 1 workload set
//	GET  /metrics            Prometheus text metrics
//	GET  /healthz            liveness (503 while draining)
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent jobs (each job parallelizes across CPUs internally)")
	queue := flag.Int("queue", 64, "bound on jobs accepted but not yet running")
	maxInsts := flag.Int("max-insts", 0, "cap on a request's per-trace instruction budget (0 = none)")
	memoEntries := flag.Int("memo-entries", sim.DefaultMemoEntries, "run-memo entry budget")
	captureEntries := flag.Int("capture-entries", sim.DefaultCaptureEntries, "capture-cache entry budget")
	captureBytes := flag.Int64("capture-bytes", sim.DefaultCaptureBytes, "capture-cache byte budget")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	flag.Parse()

	sim.SetMemoLimit(*memoEntries)
	sim.SetCaptureLimits(*captureEntries, *captureBytes)

	core := server.New(server.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		MaxInsts:   *maxInsts,
	})
	hs := &http.Server{Addr: *addr, Handler: core.Handler()}

	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		got := <-sig
		log.Printf("replayd: %s received, draining (timeout %s)", got, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain the job queue first so synchronous waiters get their
		// results, then stop the listener (which waits for handlers).
		if err := core.Shutdown(ctx); err != nil {
			log.Printf("replayd: job drain incomplete: %v", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("replayd: http shutdown: %v", err)
		}
		close(idle)
	}()

	log.Printf("replayd: listening on %s (%d workers, queue %d)", *addr, *workers, *queue)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("replayd: %v", err)
	}
	<-idle
	log.Printf("replayd: drained, exiting")
}
