// Command replaysim runs the paper's experiments and prints each table
// and figure of the evaluation section.
//
// Usage:
//
//	replaysim -experiment fig6 [-insts N] [-workloads a,b,c]
//	replaysim -load trace.xut [-mode RPO] [-insts N] [-json]
//
// Experiments: table1, table2, fig6, fig7, fig8, table3, fig9, fig10,
// summary (a compact calibration view), attr (per-pass optimization
// attribution), reuse (loop-structure reuse attribution and the
// representative workload subset), cycles (guest-cycle profiler:
// per-PC fetch-cycle attribution with loop-joined hotspots; -pprof
// additionally writes a gzipped pprof profile for `go tool pprof`),
// diff (ablation diff engine: the RPO baseline against the -vs variant
// spec, joined per loop and per optimizer pass with significance-gated
// verdicts, e.g. -experiment diff -vs cse,sf,repeats=3), all.
//
// -load replays an external uop trace (tracegen -export, binary or
// NDJSON, auto-detected) through one processor mode and prints the
// cell; with -json the output is the replayd wire format, so a loaded
// file and an uploaded trace report identically.
//
// -attr appends the attribution table to any experiment; -trace out.json
// records frame-lifecycle events as Chrome trace_event JSON (open in
// chrome://tracing or Perfetto).
//
// -log-format/-log-level control structured diagnostics on stderr; the
// default level is warn so tables stay the only output of a clean run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"repro"
	"repro/internal/api"
	"repro/internal/cycleprof"
	"repro/internal/diff"
	"repro/internal/logflag"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/xtrace"
)

func main() {
	experiment := flag.String("experiment", "summary", "which experiment to run")
	load := flag.String("load", "", "replay an external uop trace file instead of running an experiment")
	mode := flag.String("mode", "RPO", "processor mode for -load: IC, TC, RP or RPO")
	insts := flag.Int("insts", 0, "override the per-trace x86 instruction budget")
	workloads := flag.String("workloads", "", "comma-separated workload subset")
	cache := flag.Bool("cache", true,
		"share slot-stream captures across modes and memoize repeated runs (identical output, much faster -experiment all)")
	jsonOut := flag.Bool("json", false,
		"emit each experiment's rows as JSON in the replayd wire format (fig6..fig10, table3, summary; one object per line with -experiment all)")
	attr := flag.Bool("attr", false,
		"append the per-pass optimization attribution table (which optimizer pass killed/rewrote how many micro-ops, per workload)")
	traceOut := flag.String("trace", "",
		"record frame-lifecycle events and write Chrome trace_event JSON to this file (forces execution: the run memo is bypassed)")
	pprofOut := flag.String("pprof", "",
		"with -experiment cycles: write the guest-cycle profile as gzipped pprof protobuf to this file (inspect with `go tool pprof`)")
	vs := flag.String("vs", "",
		"with -experiment diff: the variant spec to compare against the RPO baseline — comma-separated tokens: pass names to disable (nop,cp,ra,cse,sf,asst,spec), scope=block|inter|frame, mode=IC|TC|RP|RPO, repeats=N")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "warn", "minimum log level: debug, info, warn, error")
	flag.Parse()

	// A batch tool's stdout is its report; structured logs default to
	// warn so they only surface problems unless asked for more.
	logger, lerr := logflag.New(os.Stderr, *logFormat, *logLevel)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "replaysim:", lerr)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	if *load != "" {
		if err := loadAndRun(*load, *mode, *insts, !*cache, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "replaysim:", err)
			os.Exit(1)
		}
		return
	}

	opts := repro.ExpOptions{InstructionBudget: *insts, DisableCache: !*cache}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	if *traceOut != "" {
		opts.Telemetry = telemetry.New(telemetry.Config{
			TraceEvents: 1 << 16,
			Label:       "replaysim -experiment " + *experiment,
		})
	}

	var err error
	switch *experiment {
	case "table1":
		table1()
	case "table2":
		table2()
	case "fig6":
		err = fig6(opts, *jsonOut)
	case "fig7":
		err = breakdown(opts, true, *jsonOut)
	case "fig8":
		err = breakdown(opts, false, *jsonOut)
	case "table3":
		err = table3(opts, *jsonOut)
	case "fig9":
		err = fig9(opts, *jsonOut)
	case "fig10":
		err = fig10(opts, *jsonOut)
	case "summary":
		err = summary(opts, *jsonOut)
	case "attr":
		err = attrTable(opts, *jsonOut)
	case "reuse":
		err = reuseTable(opts, *jsonOut)
	case "cycles":
		err = cyclesTable(opts, *jsonOut, *pprofOut)
	case "diff":
		err = diffTable(opts, *vs, *jsonOut)
	case "all":
		if !*jsonOut {
			table1()
			table2()
		}
		for _, f := range []func() error{
			func() error { return fig6(opts, *jsonOut) },
			func() error { return breakdown(opts, true, *jsonOut) },
			func() error { return breakdown(opts, false, *jsonOut) },
			func() error { return table3(opts, *jsonOut) },
			func() error { return fig9(opts, *jsonOut) },
			func() error { return fig10(opts, *jsonOut) },
		} {
			if err = f(); err != nil {
				break
			}
		}
	default:
		err = fmt.Errorf("unknown experiment %q", *experiment)
	}
	if err == nil && *attr && *experiment != "attr" {
		err = attrTable(opts, *jsonOut)
	}
	if err == nil && *traceOut != "" {
		err = writeTraceFile(opts.Telemetry, *traceOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "replaysim:", err)
		os.Exit(1)
	}
}

// loadAndRun decodes an external uop trace and simulates it through one
// processor mode, printing a single cell in either the table or the
// replayd wire format. The run memoizes on the trace's content ID, so
// re-running the same file under the same configuration is free.
func loadAndRun(path, modeName string, insts int, noCache, jsonOut bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	xt, err := xtrace.Decode(f, xtrace.Limits{})
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	slots, err := xt.Slots()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	mode, err := api.ParseMode(modeName)
	if err != nil {
		return err
	}
	name := xt.Header.Name
	if name == "" {
		name = path
	}
	res, err := sim.RunExternal(context.Background(), sim.ExternalRun{
		Name:        name,
		Fingerprint: xtrace.TraceID(xt),
		Slots:       slots,
		Insts:       int(xt.Header.Insts),
	}, mode, sim.Options{MaxInsts: insts, DisableCache: noCache})
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(api.RunResponse{Experiment: api.ExpCell, Cells: []api.Cell{{
			Workload: res.Workload,
			Class:    res.Class,
			Mode:     mode.String(),
			IPC:      res.IPC(),
			Stats:    res.Stats,
		}}})
	}
	fmt.Printf("== External trace %s (%s) ==\n", path, name)
	t := stats.NewTable("Mode", "IPC", "Cycles", "x86 insts", "uops", "uops base", "mispred")
	t.Row(mode.String(), fmt.Sprintf("%.3f", res.IPC()), res.Stats.Cycles,
		res.Stats.X86Retired, res.Stats.UOpsRetired, res.Stats.UOpsBaseline,
		res.Stats.Mispredicts)
	t.Write(os.Stdout)
	return nil
}

// writeTraceFile dumps the collector's event ring as Chrome trace_event
// JSON.
func writeTraceFile(tel *telemetry.Collector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tel.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// attrTable runs the RPO configuration with per-pass attribution and
// prints, per workload, the micro-ops each optimizer pass killed or
// rewrote. The killed column sums to the optimizer's aggregate removal
// count (the conservation invariant pinned by the attribution tests).
func attrTable(opts repro.ExpOptions, jsonOut bool) error {
	rows, err := repro.AttributionData(opts)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(api.RunResponse{Experiment: api.ExpAttr, Attr: rows})
	}
	fmt.Println("== Per-pass optimization attribution (RPO) ==")
	for _, r := range rows {
		removed := r.Opt.Removed()
		fmt.Printf("%s (%s): %d of %d micro-ops removed\n",
			r.Workload, r.Class, removed, r.Opt.UOpsIn)
		t := stats.NewTable("Pass", "Calls", "Killed", "Rewritten", "% of removed")
		for _, ps := range r.Passes {
			pct := ""
			if removed > 0 {
				pct = fmt.Sprintf("%.1f%%", 100*float64(ps.Killed)/float64(removed))
			}
			t.Row(ps.Pass, ps.Calls, ps.Killed, ps.Rewritten, pct)
		}
		t.Write(os.Stdout)
		fmt.Println()
	}
	return nil
}

// reuseTable runs the RPO configuration with loop-structure reuse
// attribution and prints, per workload, the depth-bucket decomposition
// of retired work and frame-lifecycle events, the heaviest loops, and
// the ranked representative workload subset. The bucket sums equal the
// pipeline's own retired totals (the conservation invariant pinned by
// the reuse tests).
func reuseTable(opts repro.ExpOptions, jsonOut bool) error {
	rep, err := repro.ReuseData(opts)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(api.RunResponse{Experiment: api.ExpReuse, Reuse: rep})
	}
	fmt.Println("== Loop-structure reuse attribution (RPO) ==")
	t := stats.NewTable("Workload", "Loops", "Loop uops", "Straight", "d1", "d2", "d3+", "Top trip", "Hit/d1+")
	for i := range rep.Rows {
		r := &rep.Rows[i]
		var topTrip float64
		if len(r.Report.TopLoops) > 0 {
			topTrip = r.Report.TopLoops[0].TripCount()
		}
		var loopHits uint64
		for b := 1; b < len(r.Report.Buckets); b++ {
			loopHits += r.Report.Buckets[b].FrameHits
		}
		pct := func(b int) string {
			if r.Report.TotalUOps == 0 {
				return "0%"
			}
			return fmt.Sprintf("%.0f%%", 100*float64(r.Report.Bucket(b).UOps)/float64(r.Report.TotalUOps))
		}
		t.Row(r.Workload, r.Report.Loops,
			fmt.Sprintf("%.0f%%", 100*r.Report.LoopFrac()),
			pct(0), pct(1), pct(2), pct(3),
			fmt.Sprintf("%.1f", topTrip), loopHits)
	}
	t.Write(os.Stdout)

	fmt.Println("\nreuse-mass fraction (baseline uops retired inside loops):")
	for i := range rep.Rows {
		stats.Bar(os.Stdout, rep.Rows[i].Workload, rep.Rows[i].Report.LoopFrac(), 1.0, 50, "%.2f")
	}

	fmt.Println("\n== Representative subset (greedy, covered reuse mass per simulated instruction) ==")
	st := stats.NewTable("Rank", "Workload", "Gain", "Coverage", "Cost share")
	for _, p := range rep.Subset {
		st.Row(p.Rank, p.Name,
			fmt.Sprintf("%.3f", p.Gain),
			fmt.Sprintf("%.1f%%", 100*p.Coverage),
			fmt.Sprintf("%.1f%%", 100*p.CostFrac))
	}
	st.Write(os.Stdout)
	fmt.Println()
	return nil
}

// cyclesTable runs the RPO configuration with the guest-cycle profiler
// and prints, per workload, where the simulated machine's cycles went:
// the per-bin split of attributed fetch cycles (which sums to the
// measured cycle count exactly — the profiler's conservation
// invariant), the loop-joined hotspots with per-loop IPC and frame
// coverage, and the heaviest individual PCs. With pprofOut the same
// data is also written as a gzipped pprof profile.
func cyclesTable(opts repro.ExpOptions, jsonOut bool, pprofOut string) error {
	rep, err := repro.CycleProfData(opts)
	if err != nil {
		return err
	}
	if pprofOut != "" {
		data, perr := cycleprof.Profile(rep.Profiles())
		if perr != nil {
			return perr
		}
		if werr := os.WriteFile(pprofOut, data, 0o644); werr != nil {
			return werr
		}
	}
	if jsonOut {
		return emitJSON(api.RunResponse{Experiment: api.ExpCycles, Cycles: rep})
	}
	order := []pipeline.Bin{pipeline.BinAssert, pipeline.BinMispred, pipeline.BinMiss,
		pipeline.BinStall, pipeline.BinWait, pipeline.BinFrame, pipeline.BinICache}

	fmt.Println("== Guest-cycle profile (RPO): per-PC fetch-cycle attribution ==")
	t := stats.NewTable("Workload", "IPC", "Cycles", "PCs", "Loops",
		"assert", "mispred", "miss", "stall", "wait", "frame", "icache")
	for i := range rep.Rows {
		r := &rep.Rows[i]
		cells := []interface{}{r.Workload, fmt.Sprintf("%.3f", r.IPC),
			r.Report.Cycles, len(r.Report.PCs), len(r.Report.Loops)}
		for _, b := range order {
			cells = append(cells, fmt.Sprintf("%.0f%%", 100*r.Report.BinFrac(b)))
		}
		t.Row(cells...)
	}
	t.Write(os.Stdout)

	fmt.Println("\nstacked composition (a=assert m=mispred M=miss s=stall w=wait F=frame I=icache):")
	runes := []rune{'a', 'm', 'M', 's', 'w', 'F', 'I'}
	var maxCycles float64
	for i := range rep.Rows {
		if c := float64(rep.Rows[i].Report.Cycles); c > maxCycles {
			maxCycles = c
		}
	}
	for i := range rep.Rows {
		r := &rep.Rows[i]
		segs := make([]float64, len(order))
		for j, b := range order {
			segs[j] = float64(r.Report.Bins[b])
		}
		stats.StackedBar(os.Stdout, r.Workload, segs, runes, maxCycles, 70)
	}

	for i := range rep.Rows {
		r := &rep.Rows[i]
		fmt.Printf("\n%s (%s): hottest loops\n", r.Workload, r.Class)
		lt := stats.NewTable("Loop", "Nest", "Trips", "Cycles", "% of run", "IPC", "mispred", "frame", "cover")
		loops := r.Report.Loops
		if len(loops) > 8 {
			loops = loops[:8]
		}
		for j := range loops {
			l := &loops[j]
			lt.Row(fmt.Sprintf("t%d:0x%04x-0x%04x", l.Trace, l.Header, l.Tail),
				l.Nest, fmt.Sprintf("%.1f", l.Trips), l.Cycles,
				fmt.Sprintf("%.1f%%", 100*float64(l.Cycles)/float64(max(r.Report.Cycles, 1))),
				fmt.Sprintf("%.3f", l.IPC()),
				fmt.Sprintf("%.0f%%", 100*l.BinFrac(pipeline.BinMispred)),
				fmt.Sprintf("%.0f%%", 100*l.BinFrac(pipeline.BinFrame)),
				fmt.Sprintf("%.0f%%", 100*l.CoverFrac()))
		}
		lt.Write(os.Stdout)

		fmt.Printf("\n%s: hottest PCs\n", r.Workload)
		pt := stats.NewTable("PC", "Cycles", "% of run", "x86", "uops")
		for _, p := range r.Report.TopPCs(8) {
			pt.Row(fmt.Sprintf("t%d:0x%04x", p.Trace, p.PC), p.Cycles,
				fmt.Sprintf("%.1f%%", 100*float64(p.Cycles)/float64(max(r.Report.Cycles, 1))),
				p.X86, p.UOps)
		}
		pt.Write(os.Stdout)
	}
	fmt.Println()
	return nil
}

// diffTable runs the ablation diff engine: each workload runs under the
// RPO baseline and under the -vs variant, both probed, and the joined
// per-loop × per-pass delta report prints with its significance-gated
// top-line verdicts. The report's residuals are the conservation check:
// zero means every removed micro-op and every cycle delta was pinned to
// a loop and a pass.
func diffTable(opts repro.ExpOptions, vs string, jsonOut bool) error {
	if vs == "" {
		return fmt.Errorf("-experiment diff needs -vs <spec> (e.g. -vs cse,sf or -vs mode=RP)")
	}
	spec, err := api.ParseDiffSpec(vs)
	if err != nil {
		return err
	}
	rep, err := repro.DiffData(opts, spec)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(api.RunResponse{Experiment: api.ExpDiff, Diff: rep})
	}
	fmt.Printf("== Ablation diff: %s vs %s ==\n", rep.Baseline, rep.Variant)
	for i := range rep.Rows {
		r := &rep.Rows[i]
		if i > 0 {
			fmt.Println()
		}
		diff.WriteReport(os.Stdout, r.Workload, r.Class, &r.Report)
	}
	fmt.Printf("\n%d loops compared; %d significant regressions, %d significant improvements\n\n",
		rep.LoopsCompared(), rep.SignificantRegressions(), rep.SignificantImprovements())
	return nil
}

func table1() {
	fmt.Println("== Table 1: Experimental Workload ==")
	t := stats.NewTable("Name", "Type of App.", "x86 Insts (scaled)", "Traces")
	for _, w := range repro.Workloads() {
		t.Row(w.Name, w.Class, w.Insts*w.Traces, w.Traces)
	}
	t.Write(os.Stdout)
	fmt.Println()
}

func table2() {
	cfg := repro.ProcessorConfig(repro.RPO)
	fmt.Println("== Table 2: Configuration of Processor ==")
	t := stats.NewTable("Parameter", "Value")
	t.Row("Pipeline", fmt.Sprintf("%d-wide fetch/issue/retire", cfg.Width))
	t.Row("x86 decoders", fmt.Sprintf("%d per cycle", cfg.DecodeWidth))
	t.Row("BR resolution (min)", fmt.Sprintf("%d cycles", cfg.MinBranchResolve))
	t.Row("Predictor", fmt.Sprintf("%d-bit gshare", cfg.GshareBits))
	t.Row("Inst window", fmt.Sprintf("%d micro-ops", cfg.WindowSize))
	t.Row("Exe units", fmt.Sprintf("%d simple ALU, %d complex ALU, %d FPU, %d LSU",
		cfg.SimpleALUs, cfg.ComplexALUs, cfg.FPUs, cfg.LSUs))
	t.Row("Frame/Trace cache", fmt.Sprintf("%dk micro-ops", cfg.FrameCacheUOps/1024))
	t.Row("L1 DCache", fmt.Sprintf("%dkB, %d cycle hit", cfg.L1DBytes/1024, cfg.L1DLat))
	t.Row("L2", fmt.Sprintf("%dkB, %d cycle hit", cfg.L2Bytes/1024, cfg.L2Lat))
	t.Row("Memory", fmt.Sprintf("%d cycles", cfg.MemLat))
	t.Row("Optimizer", fmt.Sprintf("%d cycles/micro-op, depth %d", cfg.OptCyclesPerUOp, cfg.OptPipeDepth))
	t.Write(os.Stdout)
	fmt.Println()
}

// emitJSON prints one experiment response in the replayd wire format,
// so scripted consumers parse CLI and daemon output identically.
func emitJSON(res api.RunResponse) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	return enc.Encode(res)
}

func fig6(opts repro.ExpOptions, jsonOut bool) error {
	rows, err := repro.Figure6(opts)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(api.RunResponse{Experiment: api.ExpFig6, Fig6: rows})
	}
	fmt.Println("== Figure 6: x86 Instructions Retired Per Cycle (IC / TC / RP / RPO) ==")
	t := stats.NewTable("Workload", "IC", "TC", "RP", "RPO", "RPO vs RP")
	var gain float64
	for _, r := range rows {
		t.Row(r.Workload, r.IPC[0], r.IPC[1], r.IPC[2], r.IPC[3], fmt.Sprintf("%+.0f%%", r.Gain))
		gain += r.Gain
	}
	t.Write(os.Stdout)
	fmt.Printf("mean IPC increase from optimization: %+.1f%%\n\n", gain/float64(len(rows)))

	fmt.Println("RPO IPC:")
	for _, r := range rows {
		stats.Bar(os.Stdout, r.Workload, r.IPC[3], 5.0, 50, "%.2f")
	}
	fmt.Println()
	return nil
}

func breakdown(opts repro.ExpOptions, spec bool, jsonOut bool) error {
	var rows []repro.BreakdownRow
	var err error
	exp := api.ExpFig8
	if spec {
		exp = api.ExpFig7
		rows, err = repro.Figure7(opts)
	} else {
		rows, err = repro.Figure8(opts)
	}
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(api.RunResponse{Experiment: exp, Breakdown: rows})
	}
	if spec {
		fmt.Println("== Figure 7: Execution cycles by fetch event (SPEC), RP vs RPO ==")
	} else {
		fmt.Println("== Figure 8: Execution cycles by fetch event (desktop), RP vs RPO ==")
	}
	t := stats.NewTable("Workload", "Cfg", "Cycles", "assert", "mispred", "miss", "stall", "wait", "frame", "icache")
	var maxCycles float64
	for _, r := range rows {
		if c := float64(r.RP.Cycles); c > maxCycles {
			maxCycles = c
		}
	}
	order := []pipeline.Bin{pipeline.BinAssert, pipeline.BinMispred, pipeline.BinMiss,
		pipeline.BinStall, pipeline.BinWait, pipeline.BinFrame, pipeline.BinICache}
	for _, r := range rows {
		for cfgIdx, s := range []pipeline.Stats{r.RP, r.RPO} {
			name := "RP"
			if cfgIdx == 1 {
				name = "RPO"
			}
			cells := []interface{}{r.Workload, name, s.Cycles}
			for _, b := range order {
				cells = append(cells, s.Bins[b])
			}
			t.Row(cells...)
		}
	}
	t.Write(os.Stdout)
	fmt.Println("\nstacked composition (a=assert m=mispred M=miss s=stall w=wait F=frame I=icache):")
	runes := []rune{'a', 'm', 'M', 's', 'w', 'F', 'I'}
	for _, r := range rows {
		for cfgIdx, s := range []pipeline.Stats{r.RP, r.RPO} {
			label := r.Workload + "/RP"
			if cfgIdx == 1 {
				label = r.Workload + "/RPO"
			}
			segs := make([]float64, len(order))
			for i, b := range order {
				segs[i] = float64(s.Bins[b])
			}
			stats.StackedBar(os.Stdout, label, segs, runes, maxCycles, 70)
		}
	}
	fmt.Println()
	return nil
}

func table3(opts repro.ExpOptions, jsonOut bool) error {
	rows, err := repro.Table3Data(opts)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(api.RunResponse{Experiment: api.ExpTable3, Table3: rows})
	}
	fmt.Println("== Table 3: Micro-ops and LOADs removed by the rePLay optimizer ==")
	t := stats.NewTable("Application", "Micro-ops Removed", "Loads Removed", "Increase in IPC", "Coverage", "Abort rate")
	var u, l, i float64
	for _, r := range rows {
		t.Row(r.Workload,
			fmt.Sprintf("%.0f%%", r.UOpsRemoved),
			fmt.Sprintf("%.0f%%", r.LoadsRemoved),
			fmt.Sprintf("%.0f%%", r.IPCIncrease),
			fmt.Sprintf("%.0f%%", 100*r.FrameCoverage),
			fmt.Sprintf("%.1f%%", 100*r.AssertRate))
		u += r.UOpsRemoved
		l += r.LoadsRemoved
		i += r.IPCIncrease
	}
	n := float64(len(rows))
	t.Row("Average", fmt.Sprintf("%.0f%%", u/n), fmt.Sprintf("%.0f%%", l/n), fmt.Sprintf("%.0f%%", i/n), "", "")
	t.Write(os.Stdout)
	fmt.Println()
	return nil
}

func fig9(opts repro.ExpOptions, jsonOut bool) error {
	rows, err := repro.Figure9(opts)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(api.RunResponse{Experiment: api.ExpFig9, Fig9: rows})
	}
	fmt.Println("== Figure 9: % IPC speedup, intra-block vs frame-level optimization ==")
	t := stats.NewTable("Workload", "Block", "Frame")
	for _, r := range rows {
		t.Row(r.Workload, fmt.Sprintf("%+.1f%%", r.Block), fmt.Sprintf("%+.1f%%", r.Frame))
	}
	t.Write(os.Stdout)
	fmt.Println()
	return nil
}

func fig10(opts repro.ExpOptions, jsonOut bool) error {
	rows, err := repro.Figure10(opts)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(api.RunResponse{Experiment: api.ExpFig10, Fig10: rows})
	}
	fmt.Println("== Figure 10: Relative IPC with individual optimizations disabled ==")
	fmt.Println("(0 = RP, 1 = RPO with all optimizations)")
	header := []string{"Workload"}
	for _, v := range []string{"no ASST", "no CP", "no CSE", "no NOP", "no RA", "no SF"} {
		header = append(header, v)
	}
	header = append(header, "RP IPC", "RPO IPC")
	t := stats.NewTable(header...)
	for _, r := range rows {
		cells := []interface{}{r.Workload}
		for _, v := range r.Relative {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		cells = append(cells, r.RPIPC, r.RPOIPC)
		t.Row(cells...)
	}
	t.Write(os.Stdout)
	fmt.Println()
	return nil
}

func summary(opts repro.ExpOptions, jsonOut bool) error {
	rows, err := repro.Figure6(opts)
	if err != nil {
		return err
	}
	t3, err := repro.Table3Data(opts)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(api.RunResponse{Experiment: api.ExpSummary, Fig6: rows, Table3: t3})
	}
	fmt.Println("== Summary (calibration view) ==")
	t := stats.NewTable("Workload", "IC", "TC", "RP", "RPO", "dIPC", "uops-", "loads-", "cover", "abort")
	for i, r := range rows {
		t.Row(r.Workload, r.IPC[0], r.IPC[1], r.IPC[2], r.IPC[3],
			fmt.Sprintf("%+.0f%%", r.Gain),
			fmt.Sprintf("%.0f%%", t3[i].UOpsRemoved),
			fmt.Sprintf("%.0f%%", t3[i].LoadsRemoved),
			fmt.Sprintf("%.0f%%", 100*t3[i].FrameCoverage),
			fmt.Sprintf("%.1f%%", 100*t3[i].AssertRate))
	}
	t.Write(os.Stdout)
	return nil
}
