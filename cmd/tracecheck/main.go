// Command tracecheck validates a Chrome trace_event JSON file as
// produced by replaysim -trace or replayd's /debug/trace endpoint:
// well-formed JSON, every event named and phased, and timestamps
// non-decreasing within each (pid, tid) lane — the shape
// chrome://tracing and Perfetto expect. CI uses it to smoke-test the
// trace exporter; exit status is nonzero on the first invalid file.
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [more.json ...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		if err := telemetry.ValidateTrace(data); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", path)
	}
}
