// Command tracecheck validates trace files before they reach a viewer
// or a daemon.
//
// Its default mode checks Chrome trace_event JSON as produced by
// replaysim -trace or replayd's /debug/trace endpoint: well-formed
// JSON, every event named and phased, and timestamps non-decreasing
// within each (pid, tid) lane — the shape chrome://tracing and Perfetto
// expect.
//
// -xtrace checks external uop-trace files (tracegen -export, binary or
// NDJSON, auto-detected) instead: header and record validation with the
// same strict decoder replayd applies at upload, plus the slot
// adaptation the simulator performs, so a file that passes here will be
// accepted by POST /v1/traces and replaysim -load. On success it prints
// the trace's content ID and shape.
//
// CI uses both modes to smoke-test the exporters; exit status is
// nonzero on the first invalid file.
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
//	tracecheck -xtrace trace.xut [more.xut ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/telemetry"
	"repro/internal/xtrace"
)

func main() {
	xt := flag.Bool("xtrace", false, "validate external uop-trace files instead of Chrome trace_event JSON")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-xtrace] file [more ...]")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		var err error
		if *xt {
			err = checkXTrace(path)
		} else {
			err = checkChrome(path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

func checkChrome(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := telemetry.ValidateTrace(data); err != nil {
		return err
	}
	fmt.Printf("%s: ok\n", path)
	return nil
}

func checkXTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := xtrace.Decode(f, xtrace.Limits{})
	if err != nil {
		return err
	}
	slots, err := t.Slots()
	if err != nil {
		return fmt.Errorf("adapting to slots: %w", err)
	}
	code := "synthesized"
	if t.Header.HasCode() {
		code = fmt.Sprintf("%d-byte code image", len(t.Code))
	}
	fmt.Printf("%s: ok: id %s, %d records, %d slots (budget %d), %s\n",
		path, xtrace.TraceID(t), len(t.Records), len(slots), t.Header.Insts, code)
	return nil
}
