// Command tracegen generates, saves, loads, and summarizes workload
// traces — the reproduction's stand-in for the paper's hardware-captured
// x86 trace files.
//
// Usage:
//
//	tracegen -workload bzip2 [-trace 0] [-insts N] [-o file]   generate
//	tracegen -stat file                                        summarize
//	tracegen -list                                             list workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	name := flag.String("workload", "", "workload profile to capture")
	traceIdx := flag.Int("trace", 0, "hot-spot trace index")
	insts := flag.Int("insts", 0, "x86 instruction budget (default: profile budget)")
	out := flag.String("o", "", "write the captured trace to this file")
	stat := flag.String("stat", "", "summarize an existing trace file")
	list := flag.Bool("list", false, "list the workload set (Table 1)")
	flag.Parse()

	if err := run(*name, *traceIdx, *insts, *out, *stat, *list); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(name string, traceIdx, insts int, out, stat string, list bool) error {
	switch {
	case list:
		t := stats.NewTable("Name", "Class", "Traces", "Insts/trace")
		for _, p := range workload.Profiles {
			t.Row(p.Name, p.Class, p.Traces, p.XInsts)
		}
		t.Write(os.Stdout)
		return nil

	case stat != "":
		f, err := os.Open(stat)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return err
		}
		printStats(tr)
		return nil

	case name != "":
		p, err := workload.ByName(name)
		if err != nil {
			return err
		}
		if insts == 0 {
			insts = p.XInsts
		}
		prog, err := workload.Generate(p, traceIdx)
		if err != nil {
			return err
		}
		tr, err := prog.Capture(insts)
		if err != nil {
			return err
		}
		printStats(tr)
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := tr.Write(f); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
		return nil
	}
	return fmt.Errorf("nothing to do; see -h")
}

func printStats(tr *trace.Trace) {
	s := tr.ComputeStats()
	fmt.Printf("trace %s: code %d bytes at %#x\n", tr.Name, len(tr.Code), tr.CodeBase)
	t := stats.NewTable("Metric", "Value", "Per kinst")
	per := func(n int) string { return fmt.Sprintf("%.1f", 1000*float64(n)/float64(s.Insts)) }
	t.Row("x86 instructions", s.Insts, "")
	t.Row("loads", s.Loads, per(s.Loads))
	t.Row("stores", s.Stores, per(s.Stores))
	t.Row("taken transfers", s.Branches, per(s.Branches))
	t.Write(os.Stdout)
}
