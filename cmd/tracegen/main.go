// Command tracegen generates, saves, loads, and summarizes workload
// traces — the reproduction's stand-in for the paper's hardware-captured
// x86 trace files.
//
// Usage:
//
//	tracegen -workload bzip2 [-trace 0] [-insts N] [-o file]      generate
//	tracegen -workload bzip2 [-trace 0] [-insts N] -slots file    capture retired slot stream
//	tracegen -workload bzip2 [-insts N] -export file [-format f]  export a portable uop trace
//	tracegen -stat file                                           summarize a trace file
//	tracegen -slotstat file                                       summarize a slot-stream file
//	tracegen -list                                                list workloads
//
// -export writes the versioned external uop-trace format (see
// internal/xtrace): -format binary (default) or ndjson. Exported files
// replay through replaysim -load or a replayd trace upload with
// bit-identical statistics to the direct run at the same budget.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xtrace"
)

func main() {
	name := flag.String("workload", "", "workload profile to capture")
	traceIdx := flag.Int("trace", 0, "hot-spot trace index")
	insts := flag.Int("insts", 0, "x86 instruction budget (default: profile budget)")
	out := flag.String("o", "", "write the captured trace to this file")
	slots := flag.String("slots", "", "write the retired slot stream (replay capture) to this file")
	export := flag.String("export", "", "write the portable external uop trace to this file")
	format := flag.String("format", "binary", "external trace encoding: binary or ndjson")
	stat := flag.String("stat", "", "summarize an existing trace file")
	slotStat := flag.String("slotstat", "", "summarize an existing slot-stream file")
	list := flag.Bool("list", false, "list the workload set (Table 1)")
	flag.Parse()

	if err := run(*name, *traceIdx, *insts, *out, *slots, *export, *format, *stat, *slotStat, *list); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// exportTrace captures the workload's retired slot stream (with replay
// slack past the budget, so loaders can stream the same window the
// replay pipeline sees) and writes it in the external format.
func exportTrace(name string, traceIdx, insts int, path, format string) error {
	p, err := workload.ByName(name)
	if err != nil {
		return err
	}
	if insts == 0 {
		insts = p.XInsts
	}
	ss, err := sim.CaptureSlotStream(p, traceIdx, insts+sim.ReplaySlack)
	if err != nil {
		return err
	}
	xt, err := xtrace.FromSlotStream(ss, insts)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "binary":
		err = xtrace.WriteBinary(f, xt)
	case "ndjson":
		err = xtrace.WriteNDJSON(f, xt)
	default:
		return fmt.Errorf("unknown -format %q (want binary or ndjson)", format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s format, %d records, %d insts, id %s\n",
		path, format, len(xt.Records), xt.Header.Insts, xtrace.TraceID(xt))
	return nil
}

func run(name string, traceIdx, insts int, out, slots, export, format, stat, slotStat string, list bool) error {
	switch {
	case list:
		t := stats.NewTable("Name", "Class", "Traces", "Insts/trace")
		for _, p := range workload.Profiles {
			t.Row(p.Name, p.Class, p.Traces, p.XInsts)
		}
		t.Write(os.Stdout)
		return nil

	case stat != "":
		f, err := os.Open(stat)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return err
		}
		printStats(tr)
		return nil

	case slotStat != "":
		f, err := os.Open(slotStat)
		if err != nil {
			return err
		}
		defer f.Close()
		ss, err := trace.ReadSlots(f)
		if err != nil {
			return err
		}
		return printSlotStats(ss)

	case name != "" && export != "":
		return exportTrace(name, traceIdx, insts, export, format)

	case name != "" && slots != "":
		p, err := workload.ByName(name)
		if err != nil {
			return err
		}
		if insts == 0 {
			insts = p.XInsts
		}
		ss, err := sim.CaptureSlotStream(p, traceIdx, insts)
		if err != nil {
			return err
		}
		f, err := os.Create(slots)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ss.Write(f); err != nil {
			return err
		}
		if err := printSlotStats(ss); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", slots)
		return nil

	case name != "":
		p, err := workload.ByName(name)
		if err != nil {
			return err
		}
		if insts == 0 {
			insts = p.XInsts
		}
		prog, err := workload.Generate(p, traceIdx)
		if err != nil {
			return err
		}
		tr, err := prog.Capture(insts)
		if err != nil {
			return err
		}
		printStats(tr)
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := tr.Write(f); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
		return nil
	}
	return fmt.Errorf("nothing to do; see -h")
}

// printSlotStats summarizes a retired slot stream: length, code image,
// PC footprint, and the micro-op expansion of the retired mix.
func printSlotStats(ss *trace.SlotStream) error {
	slots, err := sim.SlotsFromRecorded(ss)
	if err != nil {
		return err
	}
	pcs := make(map[uint32]bool)
	var uops, memops, transfers int
	for i := range slots {
		s := &slots[i]
		pcs[s.PC] = true
		uops += len(s.UOps)
		memops += len(s.MemAddrs)
		if s.NextPC != s.PC+uint32(s.Inst.Len) {
			transfers++
		}
	}
	n := len(slots)
	fmt.Printf("slot stream %s: code %d bytes at %#x\n", ss.Name, len(ss.Code), ss.CodeBase)
	t := stats.NewTable("Metric", "Value", "Per kinst")
	per := func(v int) string { return fmt.Sprintf("%.1f", 1000*float64(v)/float64(n)) }
	t.Row("retired slots (x86 insts)", n, "")
	t.Row("unique PCs", len(pcs), "")
	t.Row("micro-ops", uops, per(uops))
	t.Row("memory accesses", memops, per(memops))
	t.Row("taken transfers", transfers, per(transfers))
	t.Write(os.Stdout)
	return nil
}

func printStats(tr *trace.Trace) {
	s := tr.ComputeStats()
	fmt.Printf("trace %s: code %d bytes at %#x\n", tr.Name, len(tr.Code), tr.CodeBase)
	t := stats.NewTable("Metric", "Value", "Per kinst")
	per := func(n int) string { return fmt.Sprintf("%.1f", 1000*float64(n)/float64(s.Insts)) }
	t.Row("x86 instructions", s.Insts, "")
	t.Row("loads", s.Loads, per(s.Loads))
	t.Row("stores", s.Stores, per(s.Stores))
	t.Row("taken transfers", s.Branches, per(s.Branches))
	t.Write(os.Stdout)
}
