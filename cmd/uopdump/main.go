// Command uopdump shows the reproduction's decode and optimization
// machinery on real bytes: it disassembles IA-32 machine code, prints
// each instruction's micro-op flow, and (with -optimize) builds the
// sequence into a frame and shows the optimizer's before/after — the
// Figure 2 view for arbitrary code.
//
// Usage:
//
//	uopdump -hex "55 8bec 83ec40"          decode + translate hex bytes
//	uopdump -figure2                       the paper's running example
//	uopdump -figure2 -optimize [-scope s]  ... optimized (s: block|inter|frame)
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/frame"
	"repro/internal/opt"
	"repro/internal/translate"
	"repro/internal/uop"
	"repro/internal/x86"
)

func main() {
	hexStr := flag.String("hex", "", "IA-32 machine code as hex bytes")
	fig2 := flag.Bool("figure2", false, "use the paper's Figure 2 fragment")
	optimize := flag.Bool("optimize", false, "build a frame and run the optimizer")
	scopeStr := flag.String("scope", "frame", "optimization scope: block, inter, frame")
	base := flag.Uint("base", 0x401000, "code base address")
	flag.Parse()

	if err := run(*hexStr, *fig2, *optimize, *scopeStr, uint32(*base)); err != nil {
		fmt.Fprintln(os.Stderr, "uopdump:", err)
		os.Exit(1)
	}
}

// figure2Code assembles the paper's crafty fragment.
func figure2Code() []byte {
	insts := []x86.Inst{
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP)},
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX), Src: x86.Mem(x86.ESP, 0x0C)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX), Src: x86.Mem(x86.ESP, 0x10)},
		{Op: x86.OpXOR, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EAX)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EDX), Src: x86.RegOp(x86.ECX)},
		{Op: x86.OpOR, Cond: x86.CondNone, Dst: x86.RegOp(x86.EDX), Src: x86.RegOp(x86.EBX)},
		{Op: x86.OpJCC, Cond: x86.CondE, Dst: x86.ImmOp(3)},
		{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)},
		{Op: x86.OpPOP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)},
		{Op: x86.OpPOP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP)},
		{Op: x86.OpRET, Cond: x86.CondNone},
	}
	var code []byte
	for _, in := range insts {
		enc, err := x86.Encode(in)
		if err != nil {
			panic(err)
		}
		code = append(code, enc...)
	}
	return code
}

func run(hexStr string, fig2, optimize bool, scopeStr string, base uint32) error {
	var code []byte
	switch {
	case fig2:
		code = figure2Code()
	case hexStr != "":
		clean := strings.Map(func(r rune) rune {
			if r == ' ' || r == '\t' || r == '\n' {
				return -1
			}
			return r
		}, hexStr)
		var err error
		code, err = hex.DecodeString(clean)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("provide -hex bytes or -figure2")
	}

	scope := opt.ScopeFrame
	switch scopeStr {
	case "block":
		scope = opt.ScopeIntraBlock
	case "inter":
		scope = opt.ScopeInterBlock
	case "frame":
	default:
		return fmt.Errorf("unknown scope %q", scopeStr)
	}

	// Decode and translate.
	cfg := frame.DefaultConfig()
	cfg.BiasThreshold = 1
	cfg.TargetThreshold = 1
	cfg.MinUOps = 1
	var frames []*frame.Frame
	cons := frame.NewConstructor(cfg, func(f *frame.Frame) { frames = append(frames, f) })

	pc := base
	total := 0
	for int(pc-base) < len(code) {
		in, err := x86.Decode(code[pc-base:])
		if err != nil {
			return fmt.Errorf("decode at %#x: %w", pc, err)
		}
		uops, err := translate.UOps(in, pc)
		if err != nil {
			return err
		}
		fmt.Printf("%08x  %-28s", pc, in.String())
		for i, u := range uops {
			if i > 0 {
				fmt.Printf("%38s", "")
			}
			fmt.Printf("  %s\n", u)
		}
		if len(uops) == 0 {
			fmt.Println()
		}
		total += len(uops)

		// Feed the constructor along the fall-through/taken path: taken
		// branches follow their target when it stays inside the buffer.
		next := pc + uint32(in.Len)
		if in.Op == x86.OpJCC || (in.Op == x86.OpJMP && in.Dst.Kind == x86.KindImm) {
			tgt := in.TargetPC(pc)
			if tgt >= base && tgt < base+uint32(len(code)) {
				next = tgt
			}
		}
		if in.Op == x86.OpRET {
			cons.Retire(pc, in, uops, base+uint32(len(code)), nil)
			break
		}
		cons.Retire(pc, in, uops, next, nil)
		pc = next
	}
	cons.Flush()
	fmt.Printf("\n%d micro-ops total\n", total)

	if !optimize {
		return nil
	}
	if len(frames) == 0 {
		return fmt.Errorf("no frame constructed")
	}
	f := frames[0]
	of := opt.Remap(f, scope)
	st := opt.Optimize(of, opt.AllOptions())
	fmt.Printf("\noptimized at %s scope: %d -> %d micro-ops (loads %d -> %d)\n",
		scope, st.UOpsIn, st.UOpsOut, st.LoadsIn, st.LoadsOut)
	fmt.Printf("passes: nop=%d cp=%d ra=%d cse=%d cseload=%d sf=%d asst=%d dce=%d\n\n",
		st.RemovedNOP, st.FoldedCP, st.Reassoc, st.CSEVals, st.CSELoads, st.SFLoads,
		st.FusedAsserts, st.RemovedDCE)
	for i := range of.Ops {
		o := &of.Ops[i]
		if o.Valid {
			fmt.Printf("  %2d  %s\n", i, renderOp(o))
		}
	}
	return nil
}

func renderOp(o *opt.FrameOp) string {
	s := o.String()
	if o.Op == uop.LOAD || o.Op == uop.STORE {
		s += " (mem)"
	}
	return s
}
