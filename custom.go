package repro

import (
	"context"

	"repro/internal/sim"
	"repro/internal/workload"
)

// WorkloadSpec defines a custom synthetic workload: a program generator
// profile in the same parameter space as the built-in Table 1 set. Zero
// values get sensible defaults.
type WorkloadSpec struct {
	Name string
	Seed int64

	Insts  int // x86 instruction budget (default 100k)
	Traces int // hot-spot trace count (default 1)

	Funcs     int // hot functions (default 6)
	BodyStmts int // statements per loop body (default 12)
	LoopTrip  int // inner loop trip count (default 100)

	// Stream-shape knobs, all in [0,1] unless noted. See the DESIGN.md
	// substitution table for what each knob reproduces.
	LoadRedundancy float64 // spill/reload + repeated-load density
	ALURedundancy  float64 // recomputed-expression density
	ChainLen       int     // dependence chain length (default 2)
	BranchBias     float64 // biased-branch taken probability (default 0.995)
	HardBranches   float64 // near-50/50 branch density
	AliasRate      float64 // pointer stores aliasing stack locals
	LeafCalls      float64 // leaf procedure call density
	IndirectCalls  float64 // indirect call density
	WorkingSet     int     // global data bytes (default 64kB)
}

func (w WorkloadSpec) profile() workload.Profile {
	p := workload.Profile{
		Name:          w.Name,
		Class:         "Custom",
		Seed:          w.Seed,
		XInsts:        w.Insts,
		Traces:        w.Traces,
		Funcs:         w.Funcs,
		BodyStmts:     w.BodyStmts,
		LoopTrip:      w.LoopTrip,
		RedLoads:      w.LoadRedundancy,
		RedALU:        w.ALURedundancy,
		ChainLen:      w.ChainLen,
		InnerBias:     w.BranchBias,
		HardBranches:  w.HardBranches,
		AliasRate:     w.AliasRate,
		LeafCalls:     w.LeafCalls,
		IndirectCalls: w.IndirectCalls,
		WorkingSet:    w.WorkingSet,
	}
	if p.Name == "" {
		p.Name = "custom"
	}
	if p.XInsts == 0 {
		p.XInsts = 100_000
	}
	if p.Traces == 0 {
		p.Traces = 1
	}
	if p.Funcs == 0 {
		p.Funcs = 6
	}
	if p.BodyStmts == 0 {
		p.BodyStmts = 12
	}
	if p.LoopTrip == 0 {
		p.LoopTrip = 100
	}
	if p.ChainLen == 0 {
		p.ChainLen = 2
	}
	if p.InnerBias == 0 {
		p.InnerBias = 0.995
	}
	if p.WorkingSet == 0 {
		p.WorkingSet = 64 << 10
	}
	return p
}

// RunCustom simulates a custom workload under the given configuration.
func RunCustom(spec WorkloadSpec, mode Mode, options ...Option) (Result, error) {
	var rc runConfig
	for _, o := range options {
		o(&rc)
	}
	r, err := sim.RunWorkload(context.Background(), spec.profile(), mode, rc.opts)
	if err != nil {
		return Result{}, err
	}
	return resultOf(r), nil
}
