// Ablation disables each of the paper's optimizations in turn on one
// workload (Figure 10 on a single application) and also compares
// speculative memory optimization against the conservative variant.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	workload := "excel" // the paper's aliasing-heavy case
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}
	if err := repro.Validate(workload); err != nil {
		log.Fatal(err)
	}

	rp, err := repro.Run(workload, repro.RP)
	if err != nil {
		log.Fatal(err)
	}
	rpo, err := repro.Run(workload, repro.RPO)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: RP %.2f IPC, RPO %.2f IPC\n\n", workload, rp.IPC, rpo.IPC)
	fmt.Println("relative IPC with one optimization disabled (0 = RP, 1 = RPO):")

	span := rpo.IPC - rp.IPC
	for _, o := range []struct{ label, name string }{
		{"no ASST (assertion fusion)", "asst"},
		{"no CP   (constant propagation)", "cp"},
		{"no CSE  (common subexpression)", "cse"},
		{"no NOP  (nop/jump removal)", "nop"},
		{"no RA   (reassociation)", "ra"},
		{"no SF   (store forwarding)", "sf"},
		{"no speculation (conservative memory)", "spec"},
	} {
		r, err := repro.Run(workload, repro.RPO, repro.WithoutOptimization(o.name))
		if err != nil {
			log.Fatal(err)
		}
		rel := 0.0
		if span != 0 {
			rel = (r.IPC - rp.IPC) / span
		}
		fmt.Printf("  %-38s IPC %.2f  relative %.2f  (aborts %.1f%%)\n",
			o.label, r.IPC, rel, 100*r.AssertRate)
	}
	fmt.Println("\nA relative value above 1 means the workload runs faster without")
	fmt.Println("that optimization — the paper observes this on Excel when store")
	fmt.Println("forwarding's speculative unsafe stores alias at runtime.")
}
