// Custombench defines a custom synthetic workload with the public
// WorkloadSpec API and runs the paper's four processor configurations
// over it — the way a downstream user would explore how their own code
// shape responds to micro-operation optimization.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A pointer-chasing, call-heavy workload with moderate redundancy:
	// somewhere between the paper's crafty and access.
	spec := repro.WorkloadSpec{
		Name:           "mydb",
		Seed:           42,
		Insts:          120_000,
		Funcs:          10,
		BodyStmts:      14,
		LoopTrip:       16,
		LoadRedundancy: 0.35,
		ALURedundancy:  0.25,
		ChainLen:       3,
		BranchBias:     0.995,
		HardBranches:   0.10,
		AliasRate:      0.05,
		LeafCalls:      0.30,
		IndirectCalls:  0.20,
		WorkingSet:     128 << 10,
	}

	fmt.Printf("custom workload %q under the four Figure 6 configurations:\n\n", spec.Name)
	var rpIPC float64
	for _, mode := range []repro.Mode{repro.IC, repro.TC, repro.RP, repro.RPO} {
		r, err := repro.RunCustom(spec, mode)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		switch mode {
		case repro.RP:
			rpIPC = r.IPC
		case repro.RPO:
			extra = fmt.Sprintf("  (%+.0f%% over RP; %.0f%% micro-ops removed, %.0f%% loads removed)",
				100*(r.IPC-rpIPC)/rpIPC, 100*r.UOpReduction, 100*r.LoadReduction)
		}
		fmt.Printf("  %-3v  %.2f x86 IPC%s\n", mode, r.IPC, extra)
	}

	// Sweep one knob: how does the optimizer's benefit scale with the
	// workload's load redundancy?
	fmt.Println("\nsweep: load redundancy vs optimizer benefit")
	for _, red := range []float64{0.0, 0.2, 0.4, 0.6, 0.8} {
		s := spec
		s.LoadRedundancy = red
		s.Insts = 60_000
		rp, err := repro.RunCustom(s, repro.RP)
		if err != nil {
			log.Fatal(err)
		}
		rpo, err := repro.RunCustom(s, repro.RPO)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  redundancy %.1f: loads removed %4.0f%%, IPC gain %+5.0f%%\n",
			red, 100*rpo.LoadReduction, 100*(rpo.IPC-rp.IPC)/rp.IPC)
	}
}
