// Optscope walks through the paper's running example (Figure 2): the
// two-basic-block procedure fragment from crafty, decoded to 17
// micro-operations, then optimized at intra-block, inter-block, and
// frame-level scope. The paper's counts — 13, 12, and 10 surviving
// micro-ops — reproduce exactly.
package main

import (
	"fmt"
	"log"

	"repro/internal/frame"
	"repro/internal/opt"
	"repro/internal/translate"
	"repro/internal/x86"
)

// The fragment of Figure 2, laid out at 0x1000. The JZ is dynamically
// biased taken (the paper: "jump is typically taken"); the RET's target
// is stable.
var insts = []x86.Inst{
	{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP)},
	{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)},
	{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX), Src: x86.Mem(x86.ESP, 0x0C)},
	{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX), Src: x86.Mem(x86.ESP, 0x10)},
	{Op: x86.OpXOR, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EAX)},
	{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EDX), Src: x86.RegOp(x86.ECX)},
	{Op: x86.OpOR, Cond: x86.CondNone, Dst: x86.RegOp(x86.EDX), Src: x86.RegOp(x86.EBX)},
	{Op: x86.OpJCC, Cond: x86.CondE, Dst: x86.ImmOp(3)},
	{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)}, // skipped
	{Op: x86.OpPOP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)},
	{Op: x86.OpPOP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP)},
	{Op: x86.OpRET, Cond: x86.CondNone},
}

const skipped = 8

func buildFrame() (*frame.Frame, error) {
	pc := uint32(0x1000)
	pcs := make([]uint32, len(insts))
	for i := range insts {
		enc, err := x86.Encode(insts[i])
		if err != nil {
			return nil, err
		}
		insts[i].Len = len(enc)
		pcs[i] = pc
		pc += uint32(len(enc))
	}

	const entrySP = uint32(0x8_0000)
	const retAddr = uint32(0x4000)

	cfg := frame.DefaultConfig()
	cfg.BiasThreshold = 1
	cfg.TargetThreshold = 1
	var out *frame.Frame
	cons := frame.NewConstructor(cfg, func(f *frame.Frame) { out = f })

	esp := entrySP
	for i, in := range insts {
		if i == skipped {
			continue
		}
		uops, err := translate.UOps(in, pcs[i])
		if err != nil {
			return nil, err
		}
		next := pcs[i] + uint32(in.Len)
		var addrs []uint32
		switch i {
		case 0, 1:
			addrs = []uint32{esp - 4}
			esp -= 4
		case 2:
			addrs = []uint32{esp + 0x0C}
		case 3:
			addrs = []uint32{esp + 0x10}
		case 7:
			next = in.TargetPC(pcs[i])
		case 9, 10, 11:
			addrs = []uint32{esp}
			esp += 4
			if i == 11 {
				next = retAddr
			}
		}
		cons.Retire(pcs[i], in, uops, next, addrs)
	}
	cons.Flush()
	return out, nil
}

func main() {
	f, err := buildFrame()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("unoptimized frame: %d micro-ops, %d loads (paper: 17, 5)\n\n", len(f.UOps), f.NumLoads())
	for i, u := range f.UOps {
		fmt.Printf("  %2d  %s\n", i+1, u)
	}

	for _, scope := range []opt.Scope{opt.ScopeIntraBlock, opt.ScopeInterBlock, opt.ScopeFrame} {
		g, err := buildFrame()
		if err != nil {
			log.Fatal(err)
		}
		of := opt.Remap(g, scope)
		st := opt.Optimize(of, opt.AllOptions())
		fmt.Printf("\n=== %s optimization: %d micro-ops, %d loads ===\n",
			scope, of.NumValid(), of.NumValidLoads())
		fmt.Printf("    (paper: intra-block 13, inter-block 12, frame-level 10)\n")
		fmt.Printf("    passes: ra=%d sf=%d cse=%d dce=%d\n", st.Reassoc, st.SFLoads, st.CSEVals+st.CSELoads, st.RemovedDCE)
		for i := range of.Ops {
			if of.Ops[i].Valid {
				fmt.Printf("  %2d  %s\n", i+1, &of.Ops[i])
			}
		}
	}
}
