// Quickstart: run one workload under basic rePLay (RP) and optimizing
// rePLay (RPO) and report what the micro-operation optimizer bought —
// the paper's headline comparison on a single application.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const workload = "bzip2"

	rp, err := repro.Run(workload, repro.RP)
	if err != nil {
		log.Fatal(err)
	}
	rpo, err := repro.Run(workload, repro.RPO)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n\n", workload)
	fmt.Printf("  rePLay (no optimization):   %.2f x86 IPC\n", rp.IPC)
	fmt.Printf("  rePLay + optimizer:         %.2f x86 IPC  (%+.0f%%)\n\n",
		rpo.IPC, 100*(rpo.IPC-rp.IPC)/rp.IPC)
	fmt.Printf("  micro-ops removed:  %.0f%%\n", 100*rpo.UOpReduction)
	fmt.Printf("  loads removed:      %.0f%%\n", 100*rpo.LoadReduction)
	fmt.Printf("  frame coverage:     %.0f%%\n", 100*rpo.FrameCoverage)
	fmt.Printf("  assert/abort rate:  %.1f%% of frame fetches\n", 100*rpo.AssertRate)

	fmt.Println("\ncycle breakdown (RPO):")
	for _, bin := range []string{"assert", "mispred", "miss", "stall", "wait", "frame", "icache"} {
		fmt.Printf("  %-8s %8d\n", bin, rpo.CycleBins[bin])
	}
}
