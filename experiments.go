package repro

import (
	"context"

	"repro/internal/api"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Experiment row types, re-exported from the driver.
type (
	// Fig6Row is one application's IPC under IC/TC/RP/RPO (Figure 6).
	Fig6Row = sim.Fig6Row
	// BreakdownRow is one application's RP/RPO cycle breakdown (Figs 7-8).
	BreakdownRow = sim.BreakdownRow
	// Table3Row is one application's optimizer-removal row (Table 3).
	Table3Row = sim.Table3Row
	// Fig9Row compares block- and frame-scope optimization (Figure 9).
	Fig9Row = sim.Fig9Row
	// Fig10Row is the leave-one-out optimization ablation (Figure 10).
	Fig10Row = sim.Fig10Row
	// AttrRow is one application's per-pass optimization attribution.
	AttrRow = sim.AttrRow
	// ReuseRow is one application's loop-structure reuse decomposition.
	ReuseRow = sim.ReuseRow
	// ReuseReport is the reuse decomposition plus the ranked
	// representative workload subset.
	ReuseReport = sim.ReuseReport
	// CycleRow is one application's guest-cycle profile: per-PC
	// fetch-cycle attribution joined against loop structure.
	CycleRow = sim.CycleRow
	// CycleReport is the guest-cycle profile sweep result.
	CycleReport = sim.CycleReport
	// DiffRow is one application's baseline-vs-variant comparison.
	DiffRow = sim.DiffRow
	// DiffReport is the ablation-diff sweep result: per application, a
	// conservation-exact per-loop × per-pass delta report with
	// significance-gated top-line verdicts.
	DiffReport = sim.DiffReport
)

// ExpOptions configures an experiment sweep.
type ExpOptions struct {
	// Workloads restricts the sweep (nil = all 14 applications).
	Workloads []string
	// InstructionBudget overrides each profile's per-trace budget.
	InstructionBudget int
	// DisableCache turns off the shared slot-stream capture and the run
	// memoization that let figures sharing RP/RPO runs reuse them.
	// Results are identical either way; the sweep just re-executes
	// everything. See sim.Options.DisableCache.
	DisableCache bool
	// Context, when non-nil, cancels the sweep early: in-flight
	// simulations stop at the next fetch-group boundary and the sweep
	// returns the context's error.
	Context context.Context
	// Telemetry, when non-nil, receives frame-lifecycle events from every
	// engine the sweep creates (see sim.Options.Telemetry for the memo
	// interaction: trace/attribution collectors force execution).
	Telemetry *telemetry.Collector
}

func (o ExpOptions) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o ExpOptions) profiles() ([]workload.Profile, error) {
	if o.Workloads == nil {
		return workload.Profiles, nil
	}
	var ps []workload.Profile
	for _, n := range o.Workloads {
		p, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}

func (o ExpOptions) simOptions() sim.Options {
	return sim.Options{MaxInsts: o.InstructionBudget, DisableCache: o.DisableCache,
		Telemetry: o.Telemetry}
}

// Figure6 regenerates Figure 6: x86 IPC under the four configurations.
func Figure6(o ExpOptions) ([]Fig6Row, error) {
	ps, err := o.profiles()
	if err != nil {
		return nil, err
	}
	return sim.Fig6(o.ctx(), ps, o.simOptions())
}

// Figure7 regenerates Figure 7: the per-SPEC-benchmark cycle breakdown.
func Figure7(o ExpOptions) ([]BreakdownRow, error) {
	if o.Workloads == nil {
		o.Workloads = ByClass("SPECint")
	}
	ps, err := o.profiles()
	if err != nil {
		return nil, err
	}
	return sim.CycleBreakdown(o.ctx(), ps, o.simOptions())
}

// Figure8 regenerates Figure 8: the desktop-application cycle breakdown.
func Figure8(o ExpOptions) ([]BreakdownRow, error) {
	if o.Workloads == nil {
		var names []string
		names = append(names, ByClass("Business")...)
		names = append(names, ByClass("Content")...)
		o.Workloads = names
	}
	ps, err := o.profiles()
	if err != nil {
		return nil, err
	}
	return sim.CycleBreakdown(o.ctx(), ps, o.simOptions())
}

// Table3Data regenerates Table 3: micro-ops and loads removed, and the
// IPC increase.
func Table3Data(o ExpOptions) ([]Table3Row, error) {
	ps, err := o.profiles()
	if err != nil {
		return nil, err
	}
	return sim.Table3(o.ctx(), ps, o.simOptions())
}

// Figure9 regenerates Figure 9: intra-block versus frame-level
// optimization.
func Figure9(o ExpOptions) ([]Fig9Row, error) {
	ps, err := o.profiles()
	if err != nil {
		return nil, err
	}
	return sim.Fig9(o.ctx(), ps, o.simOptions())
}

// Figure10 regenerates Figure 10: performance with each optimization
// individually disabled, on the paper's five-application subset.
func Figure10(o ExpOptions) ([]Fig10Row, error) {
	return sim.Fig10(o.ctx(), o.simOptions())
}

// AttributionData runs the RPO configuration with per-pass attribution
// and returns, per application, how many micro-ops each optimizer pass
// killed or rewrote — the provenance behind Table 3's removal totals.
// Attribution forces execution, so the sweep ignores the run memo.
func AttributionData(o ExpOptions) ([]AttrRow, error) {
	ps, err := o.profiles()
	if err != nil {
		return nil, err
	}
	return sim.Attribution(o.ctx(), ps, o.simOptions())
}

// ReuseData runs the RPO configuration with loop-structure reuse
// attribution: per application, retired micro-ops and frame-lifecycle
// events split by {loop-depth bucket, instruction class}, the heaviest
// loops with trip counts, and the greedy representative workload
// subset ranked by covered reuse mass per unit simulated cost. Reuse
// attribution forces execution, so the sweep ignores the run memo.
func ReuseData(o ExpOptions) (*ReuseReport, error) {
	ps, err := o.profiles()
	if err != nil {
		return nil, err
	}
	return sim.Reuse(o.ctx(), ps, o.simOptions())
}

// DiffData runs the ablation diff engine: every selected workload runs
// under the RPO baseline and under the variant the spec describes
// (a disabled optimizer subset, a narrowed scope, another mode), both
// sides probed, and the two per-loop × per-pass partitions join into a
// delta report whose sums match the Stats-counter deltas exactly
// (residuals zero). Repeats > 1 in the spec feeds the 2×SEM
// significance gate behind each top-line verdict. Diff probing forces
// execution, so the sweep ignores the run memo.
func DiffData(o ExpOptions, spec *api.DiffSpec) (*DiffReport, error) {
	ps, err := o.profiles()
	if err != nil {
		return nil, err
	}
	varMode, err := api.ParseMode(spec.Mode)
	if err != nil {
		return nil, err
	}
	base := sim.DiffVariant{Label: "baseline", Mode: pipeline.ModeRePLayOpt, HasMode: true}
	vs := sim.DiffVariant{Label: spec.Label, Mode: varMode, HasMode: true,
		ConfigMod: spec.Config.Mod(), Repeats: spec.Repeats}
	return sim.Diff(o.ctx(), ps, o.simOptions(), base, vs)
}

// CycleProfData runs the RPO configuration with the guest-cycle
// profiler attached: per application, every fetch-stage cycle
// attributed to the responsible guest PC and fetch bin (the per-PC and
// per-bin sums equal the pipeline's own cycle count exactly), joined
// against detected loop structure into per-loop hotspot rows. Cycle
// profiling forces execution, so the sweep ignores the run memo.
func CycleProfData(o ExpOptions) (*CycleReport, error) {
	ps, err := o.profiles()
	if err != nil {
		return nil, err
	}
	return sim.CycleProf(o.ctx(), ps, o.simOptions())
}
