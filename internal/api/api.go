// Package api defines the wire types of the replayd HTTP JSON API: the
// experiment request, its canonical (coalescing) form, job status and
// progress events, and the response rows. The rows reuse the driver's
// experiment types directly, so replayd responses, replayctl output and
// replaysim -json all serialize identically.
package api

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// Experiment names accepted by RunRequest.Experiment.
const (
	ExpFig6    = "fig6"
	ExpFig7    = "fig7"
	ExpFig8    = "fig8"
	ExpFig9    = "fig9"
	ExpFig10   = "fig10"
	ExpTable3  = "table3"
	ExpSummary = "summary"
	// ExpCell runs raw (workload, mode) simulation cells instead of a
	// whole figure: one cell per requested workload under Mode.
	ExpCell = "cell"
	// ExpAttr runs the RPO configuration with per-pass optimization
	// attribution: which optimizer pass killed or rewrote how many
	// micro-ops, per workload.
	ExpAttr = "attr"
	// ExpReuse runs the RPO configuration with loop-structure reuse
	// attribution: retired work and frame-lifecycle events per
	// {loop-depth bucket, instruction class}, trip-counted loops, and
	// the ranked representative workload subset.
	ExpReuse = "reuse"
	// ExpCycles runs the RPO configuration with the guest-cycle
	// profiler: every charged fetch cycle attributed to a guest PC and
	// fetch bin, joined against detected loop structure, per workload.
	// The resulting profile is also exportable as pprof/flame-text via
	// GET /debug/profile.
	ExpCycles = "cycles"
	// ExpDiff runs the ablation diff engine: baseline and variant
	// configurations both run probed, and their per-loop × per-pass
	// partitions join into a conservation-exact delta report with
	// significance-gated top-line verdicts. The request's own
	// Mode/Config/XTrace describe the baseline side; the Diff spec
	// describes the variant.
	ExpDiff = "diff"
)

// Experiments lists every accepted experiment name.
var Experiments = []string{ExpFig6, ExpFig7, ExpFig8, ExpFig9, ExpFig10, ExpTable3, ExpSummary, ExpCell, ExpAttr, ExpReuse, ExpCycles, ExpDiff}

// ConfigOverrides carries the per-request Table 2 edits the service
// accepts. Zero fields keep the mode's default; the names mirror
// pipeline.Config.
type ConfigOverrides struct {
	// OptScope: "block", "inter" or "frame".
	OptScope string `json:"opt_scope,omitempty"`
	// DisableOpts disables optimizations by name:
	// asst, cp, cse, nop, ra, sf, spec.
	DisableOpts []string `json:"disable_opts,omitempty"`

	Width           int `json:"width,omitempty"`
	WindowSize      int `json:"window_size,omitempty"`
	FrameCacheUOps  int `json:"frame_cache_uops,omitempty"`
	MaxFrameUOps    int `json:"max_frame_uops,omitempty"`
	OptCyclesPerUOp int `json:"opt_cycles_per_uop,omitempty"`
	OptPipeDepth    int `json:"opt_pipe_depth,omitempty"`
}

// RunRequest asks the service for one experiment over the workload set.
type RunRequest struct {
	// Experiment is one of the Experiments names.
	Experiment string `json:"experiment"`
	// Workloads restricts the sweep; empty means the experiment's
	// default set (all 14 applications, or the paper's subset for
	// fig7/fig8/fig10).
	Workloads []string `json:"workloads,omitempty"`
	// Insts overrides the per-trace x86 instruction budget when > 0.
	Insts int `json:"insts,omitempty"`
	// WarmupFrac overrides the warmup fraction when > 0.
	WarmupFrac float64 `json:"warmup_frac,omitempty"`
	// Mode selects the processor configuration for cell runs:
	// IC, TC, RP or RPO (default RPO).
	Mode string `json:"mode,omitempty"`
	// Config applies Table 2 overrides before the run.
	Config *ConfigOverrides `json:"config,omitempty"`
	// Trace records frame-lifecycle events for the job and makes them
	// retrievable as Chrome trace_event JSON from /debug/trace?job=ID.
	// Tracing forces execution (no run-memo hits) and deliberately splits
	// the coalescing key, so a traced job never attaches to an untraced
	// one that would produce no events.
	Trace bool `json:"trace,omitempty"`
	// XTrace runs an uploaded external trace (POST /v1/traces) instead
	// of a built-in workload: it names the trace by content ID. Valid
	// with the cell experiment (the default when set), with reuse (the
	// trace decomposes and ranks alongside any listed workloads), and
	// with diff (the trace is the baseline side). Being part of the
	// canonical form, it participates in coalescing and run memoization
	// like any workload name.
	XTrace string `json:"xtrace,omitempty"`
	// Diff describes the variant side of a diff experiment; required
	// with (and only valid with) ExpDiff.
	Diff *DiffSpec `json:"diff,omitempty"`
}

// DiffSpec is the variant side of a diff request. The baseline side is
// the request's own Mode/Config/XTrace/Workloads; the variant inherits
// the baseline's workload source unless XTrace redirects it.
type DiffSpec struct {
	// Label names the variant in reports (defaults to a rendering of
	// the spec).
	Label string `json:"label,omitempty"`
	// Mode overrides the variant's fetch engine (IC, TC, RP, RPO);
	// empty inherits the baseline's.
	Mode string `json:"mode,omitempty"`
	// Config applies Table 2 overrides to the variant side only. The
	// variant does NOT inherit the baseline's Config; each side's
	// overrides are spelled out in full.
	Config *ConfigOverrides `json:"config,omitempty"`
	// XTrace makes the variant replay an uploaded trace instead of the
	// baseline's source, e.g. to compare an upload against its synthetic
	// clone. The baseline must then be a single source (an xtrace or
	// exactly one workload).
	XTrace string `json:"xtrace,omitempty"`
	// Repeats is how many runs per side feed the significance gate
	// (default 1; the first run of each side carries the diff probe).
	Repeats int `json:"repeats,omitempty"`
}

// Canonical returns the request in canonical form: names are trimmed
// and case-folded, defaults that affect identity are filled in, and the
// optimization-disable list is sorted and deduplicated. Two requests
// for the same underlying work canonicalize equal.
func (r RunRequest) Canonical() RunRequest {
	c := r
	c.Experiment = strings.ToLower(strings.TrimSpace(r.Experiment))
	c.Mode = strings.ToUpper(strings.TrimSpace(r.Mode))
	c.XTrace = strings.ToLower(strings.TrimSpace(r.XTrace))
	if c.XTrace != "" && c.Experiment == "" {
		c.Experiment = ExpCell
	}
	switch c.Experiment {
	case ExpCell, ExpDiff:
		// Mode names the (baseline) fetch engine for cell and diff runs.
		if c.Mode == "" {
			c.Mode = "RPO"
		}
	default:
		c.Mode = ""
	}
	if c.Experiment == ExpFig10 {
		// Figure 10 runs the paper's fixed five-application subset; a
		// workload list would be silently ignored, so it must not split
		// the coalescing key.
		r.Workloads = nil
	}
	if len(r.Workloads) > 0 {
		ws := make([]string, 0, len(r.Workloads))
		for _, w := range r.Workloads {
			if w = strings.ToLower(strings.TrimSpace(w)); w != "" {
				ws = append(ws, w)
			}
		}
		c.Workloads = ws
	} else {
		c.Workloads = nil
	}
	c.Config = canonicalConfig(r.Config)
	if c.Experiment == ExpDiff {
		var d DiffSpec
		if r.Diff != nil {
			d = *r.Diff
		}
		d.Label = strings.TrimSpace(d.Label)
		d.Mode = strings.ToUpper(strings.TrimSpace(d.Mode))
		d.XTrace = strings.ToLower(strings.TrimSpace(d.XTrace))
		d.Config = canonicalConfig(d.Config)
		if d.Repeats < 1 {
			d.Repeats = 1
		}
		c.Diff = &d
	} else {
		c.Diff = nil
	}
	return c
}

func canonicalConfig(in *ConfigOverrides) *ConfigOverrides {
	if in == nil {
		return nil
	}
	cfg := *in
	cfg.OptScope = strings.ToLower(strings.TrimSpace(cfg.OptScope))
	if len(cfg.DisableOpts) > 0 {
		ds := make([]string, 0, len(cfg.DisableOpts))
		for _, d := range cfg.DisableOpts {
			if d = strings.ToLower(strings.TrimSpace(d)); d != "" {
				ds = append(ds, d)
			}
		}
		sort.Strings(ds)
		cfg.DisableOpts = dedupe(ds)
	}
	if cfg.isZero() {
		return nil
	}
	return &cfg
}

// isZero reports whether the overrides carry no edits, so an explicit
// empty config coalesces with an absent one.
func (c ConfigOverrides) isZero() bool {
	return c.OptScope == "" && len(c.DisableOpts) == 0 &&
		c.Width == 0 && c.WindowSize == 0 && c.FrameCacheUOps == 0 &&
		c.MaxFrameUOps == 0 && c.OptCyclesPerUOp == 0 && c.OptPipeDepth == 0
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Key is the coalescing identity of the request: the JSON encoding of
// its canonical form. Concurrent submissions with equal keys share one
// execution.
func (r RunRequest) Key() string {
	b, err := json.Marshal(r.Canonical())
	if err != nil {
		// Every field is a plain value type; Marshal cannot fail.
		panic("api: marshal canonical request: " + err.Error())
	}
	return string(b)
}

// Validate rejects unknown experiment or mode names up front, before
// the request is queued.
func (r RunRequest) Validate() error {
	c := r.Canonical()
	known := false
	for _, e := range Experiments {
		if c.Experiment == e {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q (want one of %s)", r.Experiment, strings.Join(Experiments, ", "))
	}
	if c.Experiment == ExpCell || c.Experiment == ExpDiff {
		if _, err := ParseMode(c.Mode); err != nil {
			return err
		}
	}
	if c.XTrace != "" {
		switch c.Experiment {
		case ExpCell, ExpDiff:
			if len(c.Workloads) > 0 {
				return fmt.Errorf("xtrace and workloads are mutually exclusive")
			}
		case ExpReuse:
			// The trace decomposes alongside any listed workloads.
		default:
			return fmt.Errorf("xtrace runs only support the cell, reuse and diff experiments, not %q", c.Experiment)
		}
	}
	if err := validateConfig(c.Config); err != nil {
		return err
	}
	if r.Diff != nil && c.Experiment != ExpDiff {
		return fmt.Errorf("diff spec is only valid with the diff experiment, not %q", c.Experiment)
	}
	if c.Experiment == ExpDiff {
		if r.Diff == nil {
			return fmt.Errorf("diff experiment needs a diff spec (the variant side)")
		}
		d := c.Diff
		if d.Mode != "" {
			if _, err := ParseMode(d.Mode); err != nil {
				return err
			}
		}
		if err := validateConfig(d.Config); err != nil {
			return err
		}
		if d.XTrace != "" && c.XTrace == "" && len(c.Workloads) != 1 {
			return fmt.Errorf("a trace-variant diff needs a single-source baseline (an xtrace or exactly one workload)")
		}
	}
	return nil
}

func validateConfig(c *ConfigOverrides) error {
	if c == nil {
		return nil
	}
	switch c.OptScope {
	case "", "block", "inter", "frame":
	default:
		return fmt.Errorf("unknown opt_scope %q (want block, inter or frame)", c.OptScope)
	}
	for _, d := range c.DisableOpts {
		switch d {
		case "asst", "cp", "cse", "nop", "ra", "sf", "spec":
		default:
			return fmt.Errorf("unknown optimization %q in disable_opts", d)
		}
	}
	return nil
}

// ParseDiffSpec parses the compact variant notation the CLIs accept
// for -vs: a comma-separated token list where a bare token disables
// that optimization on the variant side (asst, cp, cse, nop, ra, sf,
// spec), "scope=block|inter|frame" narrows the optimizer scope,
// "mode=IC|TC|RP|RPO" switches the fetch engine, "repeats=N" sets the
// significance repeat count, and "xtrace=ID" replays an uploaded trace
// as the variant. The spec's label defaults to the input string.
func ParseDiffSpec(s string) (*DiffSpec, error) {
	d := &DiffSpec{Label: strings.TrimSpace(s)}
	var disable []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, isKV := strings.Cut(tok, "=")
		if !isKV {
			disable = append(disable, strings.ToLower(key))
			continue
		}
		val = strings.TrimSpace(val)
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "scope":
			if d.Config == nil {
				d.Config = &ConfigOverrides{}
			}
			d.Config.OptScope = strings.ToLower(val)
		case "mode":
			d.Mode = strings.ToUpper(val)
		case "repeats":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad repeats %q in diff spec", val)
			}
			d.Repeats = n
		case "xtrace":
			d.XTrace = strings.ToLower(val)
		default:
			return nil, fmt.Errorf("unknown token %q in diff spec (want an optimization name, scope=, mode=, repeats= or xtrace=)", tok)
		}
	}
	if len(disable) > 0 {
		if d.Config == nil {
			d.Config = &ConfigOverrides{}
		}
		d.Config.DisableOpts = disable
	}
	// Round-trip through a throwaway request to reuse the canonical
	// validation of names.
	probe := RunRequest{Experiment: ExpDiff, Diff: d}
	if d.XTrace != "" {
		probe.XTrace = d.XTrace // stand-in single-source baseline
	}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Mod translates the overrides into a Table 2 config edit (nil receiver
// means no edit). Both replayd and the CLIs apply wire overrides through
// this one translation, so a spec means the same machine everywhere.
func (o *ConfigOverrides) Mod() func(*pipeline.Config) {
	if o == nil {
		return nil
	}
	ov := *o
	return func(c *pipeline.Config) {
		switch ov.OptScope {
		case "block":
			c.OptScope = opt.ScopeIntraBlock
		case "inter":
			c.OptScope = opt.ScopeInterBlock
		case "frame":
			c.OptScope = opt.ScopeFrame
		}
		for _, d := range ov.DisableOpts {
			switch d {
			case "asst":
				c.OptOptions.Assert = false
			case "cp":
				c.OptOptions.CP = false
			case "cse":
				c.OptOptions.CSE = false
			case "nop":
				c.OptOptions.NOP = false
			case "ra":
				c.OptOptions.RA = false
			case "sf":
				c.OptOptions.SF = false
			case "spec":
				c.OptOptions.Speculative = false
			}
		}
		if ov.Width > 0 {
			c.Width = ov.Width
		}
		if ov.WindowSize > 0 {
			c.WindowSize = ov.WindowSize
		}
		if ov.FrameCacheUOps > 0 {
			c.FrameCacheUOps = ov.FrameCacheUOps
		}
		if ov.MaxFrameUOps > 0 {
			c.FrameCfg.MaxUOps = ov.MaxFrameUOps
		}
		if ov.OptCyclesPerUOp > 0 {
			c.OptCyclesPerUOp = ov.OptCyclesPerUOp
		}
		if ov.OptPipeDepth > 0 {
			c.OptPipeDepth = ov.OptPipeDepth
		}
	}
}

// ParseMode maps a wire mode name to the pipeline configuration.
func ParseMode(s string) (pipeline.Mode, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "IC":
		return pipeline.ModeICache, nil
	case "TC":
		return pipeline.ModeTraceCache, nil
	case "RP":
		return pipeline.ModeRePLay, nil
	case "", "RPO":
		return pipeline.ModeRePLayOpt, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want IC, TC, RP or RPO)", s)
}

// Cell is one raw (workload, mode) simulation result.
type Cell struct {
	Workload string         `json:"workload"`
	Class    string         `json:"class"`
	Mode     string         `json:"mode"`
	IPC      float64        `json:"ipc"`
	Stats    pipeline.Stats `json:"stats"`
}

// RunResponse carries an experiment's rows. Exactly the fields the
// experiment produces are set: fig7/fig8 fill Breakdown, summary fills
// Fig6 and Table3 together, cell fills Cells.
type RunResponse struct {
	Experiment string             `json:"experiment"`
	Fig6       []sim.Fig6Row      `json:"fig6,omitempty"`
	Breakdown  []sim.BreakdownRow `json:"breakdown,omitempty"`
	Table3     []sim.Table3Row    `json:"table3,omitempty"`
	Fig9       []sim.Fig9Row      `json:"fig9,omitempty"`
	Fig10      []sim.Fig10Row     `json:"fig10,omitempty"`
	Cells      []Cell             `json:"cells,omitempty"`
	Attr       []sim.AttrRow      `json:"attr,omitempty"`
	Reuse      *sim.ReuseReport   `json:"reuse,omitempty"`
	Cycles     *sim.CycleReport   `json:"cycles,omitempty"`
	Diff       *sim.DiffReport    `json:"diff,omitempty"`
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is the wire view of one queued/running/finished job.
type Job struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"`
	// TraceID names the span trace the job's execution records into
	// (the submitting request's trace, continued from its traceparent
	// header when one was sent). Fetch it from /debug/traces/{id} once
	// the job finishes. Empty when the server's tracer is disabled.
	TraceID string `json:"trace_id,omitempty"`
	// Coalesced is set on submission responses when the request
	// attached to an already in-flight job instead of enqueuing a new
	// one.
	Coalesced bool         `json:"coalesced,omitempty"`
	Error     string       `json:"error,omitempty"`
	Result    *RunResponse `json:"result,omitempty"`
	QueuedAt  time.Time    `json:"queued_at"`
	StartedAt time.Time    `json:"started_at"`
	DoneAt    time.Time    `json:"done_at"`
}

// Event is one line of a job's progress stream.
type Event struct {
	Seq int `json:"seq"`
	// JobID names the job the event belongs to; it matches the job_id
	// attribute on the daemon's structured log lines, so a log line and
	// a progress stream can be joined on it.
	JobID string `json:"job,omitempty"`
	State string `json:"state,omitempty"`
	// Msg describes the completed step, e.g. "bzip2/RPO done".
	Msg string `json:"msg,omitempty"`
	// Done/Total count completed simulation runs when known.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}
