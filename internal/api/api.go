// Package api defines the wire types of the replayd HTTP JSON API: the
// experiment request, its canonical (coalescing) form, job status and
// progress events, and the response rows. The rows reuse the driver's
// experiment types directly, so replayd responses, replayctl output and
// replaysim -json all serialize identically.
package api

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/pipeline"
	"repro/internal/sim"
)

// Experiment names accepted by RunRequest.Experiment.
const (
	ExpFig6    = "fig6"
	ExpFig7    = "fig7"
	ExpFig8    = "fig8"
	ExpFig9    = "fig9"
	ExpFig10   = "fig10"
	ExpTable3  = "table3"
	ExpSummary = "summary"
	// ExpCell runs raw (workload, mode) simulation cells instead of a
	// whole figure: one cell per requested workload under Mode.
	ExpCell = "cell"
	// ExpAttr runs the RPO configuration with per-pass optimization
	// attribution: which optimizer pass killed or rewrote how many
	// micro-ops, per workload.
	ExpAttr = "attr"
	// ExpReuse runs the RPO configuration with loop-structure reuse
	// attribution: retired work and frame-lifecycle events per
	// {loop-depth bucket, instruction class}, trip-counted loops, and
	// the ranked representative workload subset.
	ExpReuse = "reuse"
	// ExpCycles runs the RPO configuration with the guest-cycle
	// profiler: every charged fetch cycle attributed to a guest PC and
	// fetch bin, joined against detected loop structure, per workload.
	// The resulting profile is also exportable as pprof/flame-text via
	// GET /debug/profile.
	ExpCycles = "cycles"
)

// Experiments lists every accepted experiment name.
var Experiments = []string{ExpFig6, ExpFig7, ExpFig8, ExpFig9, ExpFig10, ExpTable3, ExpSummary, ExpCell, ExpAttr, ExpReuse, ExpCycles}

// ConfigOverrides carries the per-request Table 2 edits the service
// accepts. Zero fields keep the mode's default; the names mirror
// pipeline.Config.
type ConfigOverrides struct {
	// OptScope: "block", "inter" or "frame".
	OptScope string `json:"opt_scope,omitempty"`
	// DisableOpts disables optimizations by name:
	// asst, cp, cse, nop, ra, sf, spec.
	DisableOpts []string `json:"disable_opts,omitempty"`

	Width           int `json:"width,omitempty"`
	WindowSize      int `json:"window_size,omitempty"`
	FrameCacheUOps  int `json:"frame_cache_uops,omitempty"`
	MaxFrameUOps    int `json:"max_frame_uops,omitempty"`
	OptCyclesPerUOp int `json:"opt_cycles_per_uop,omitempty"`
	OptPipeDepth    int `json:"opt_pipe_depth,omitempty"`
}

// RunRequest asks the service for one experiment over the workload set.
type RunRequest struct {
	// Experiment is one of the Experiments names.
	Experiment string `json:"experiment"`
	// Workloads restricts the sweep; empty means the experiment's
	// default set (all 14 applications, or the paper's subset for
	// fig7/fig8/fig10).
	Workloads []string `json:"workloads,omitempty"`
	// Insts overrides the per-trace x86 instruction budget when > 0.
	Insts int `json:"insts,omitempty"`
	// WarmupFrac overrides the warmup fraction when > 0.
	WarmupFrac float64 `json:"warmup_frac,omitempty"`
	// Mode selects the processor configuration for cell runs:
	// IC, TC, RP or RPO (default RPO).
	Mode string `json:"mode,omitempty"`
	// Config applies Table 2 overrides before the run.
	Config *ConfigOverrides `json:"config,omitempty"`
	// Trace records frame-lifecycle events for the job and makes them
	// retrievable as Chrome trace_event JSON from /debug/trace?job=ID.
	// Tracing forces execution (no run-memo hits) and deliberately splits
	// the coalescing key, so a traced job never attaches to an untraced
	// one that would produce no events.
	Trace bool `json:"trace,omitempty"`
	// XTrace runs an uploaded external trace (POST /v1/traces) instead
	// of a built-in workload: it names the trace by content ID. Only
	// valid with the cell experiment (the default when set) and an empty
	// workload list. Being part of the canonical form, it participates in
	// coalescing and run memoization like any workload name.
	XTrace string `json:"xtrace,omitempty"`
}

// Canonical returns the request in canonical form: names are trimmed
// and case-folded, defaults that affect identity are filled in, and the
// optimization-disable list is sorted and deduplicated. Two requests
// for the same underlying work canonicalize equal.
func (r RunRequest) Canonical() RunRequest {
	c := r
	c.Experiment = strings.ToLower(strings.TrimSpace(r.Experiment))
	c.Mode = strings.ToUpper(strings.TrimSpace(r.Mode))
	c.XTrace = strings.ToLower(strings.TrimSpace(r.XTrace))
	if c.XTrace != "" && c.Experiment == "" {
		c.Experiment = ExpCell
	}
	if c.Experiment == ExpCell && c.Mode == "" {
		c.Mode = "RPO"
	}
	if c.Experiment != ExpCell {
		c.Mode = ""
	}
	if c.Experiment == ExpFig10 {
		// Figure 10 runs the paper's fixed five-application subset; a
		// workload list would be silently ignored, so it must not split
		// the coalescing key.
		r.Workloads = nil
	}
	if len(r.Workloads) > 0 {
		ws := make([]string, 0, len(r.Workloads))
		for _, w := range r.Workloads {
			if w = strings.ToLower(strings.TrimSpace(w)); w != "" {
				ws = append(ws, w)
			}
		}
		c.Workloads = ws
	} else {
		c.Workloads = nil
	}
	if r.Config != nil {
		cfg := *r.Config
		cfg.OptScope = strings.ToLower(strings.TrimSpace(cfg.OptScope))
		if len(cfg.DisableOpts) > 0 {
			ds := make([]string, 0, len(cfg.DisableOpts))
			for _, d := range cfg.DisableOpts {
				if d = strings.ToLower(strings.TrimSpace(d)); d != "" {
					ds = append(ds, d)
				}
			}
			sort.Strings(ds)
			ds = dedupe(ds)
			cfg.DisableOpts = ds
		}
		if cfg.isZero() {
			c.Config = nil
		} else {
			c.Config = &cfg
		}
	}
	return c
}

// isZero reports whether the overrides carry no edits, so an explicit
// empty config coalesces with an absent one.
func (c ConfigOverrides) isZero() bool {
	return c.OptScope == "" && len(c.DisableOpts) == 0 &&
		c.Width == 0 && c.WindowSize == 0 && c.FrameCacheUOps == 0 &&
		c.MaxFrameUOps == 0 && c.OptCyclesPerUOp == 0 && c.OptPipeDepth == 0
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Key is the coalescing identity of the request: the JSON encoding of
// its canonical form. Concurrent submissions with equal keys share one
// execution.
func (r RunRequest) Key() string {
	b, err := json.Marshal(r.Canonical())
	if err != nil {
		// Every field is a plain value type; Marshal cannot fail.
		panic("api: marshal canonical request: " + err.Error())
	}
	return string(b)
}

// Validate rejects unknown experiment or mode names up front, before
// the request is queued.
func (r RunRequest) Validate() error {
	c := r.Canonical()
	known := false
	for _, e := range Experiments {
		if c.Experiment == e {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q (want one of %s)", r.Experiment, strings.Join(Experiments, ", "))
	}
	if c.Experiment == ExpCell {
		if _, err := ParseMode(c.Mode); err != nil {
			return err
		}
	}
	if c.XTrace != "" {
		if c.Experiment != ExpCell {
			return fmt.Errorf("xtrace runs only support the cell experiment, not %q", c.Experiment)
		}
		if len(c.Workloads) > 0 {
			return fmt.Errorf("xtrace and workloads are mutually exclusive")
		}
	}
	if c.Config != nil {
		switch c.Config.OptScope {
		case "", "block", "inter", "frame":
		default:
			return fmt.Errorf("unknown opt_scope %q (want block, inter or frame)", c.Config.OptScope)
		}
		for _, d := range c.Config.DisableOpts {
			switch d {
			case "asst", "cp", "cse", "nop", "ra", "sf", "spec":
			default:
				return fmt.Errorf("unknown optimization %q in disable_opts", d)
			}
		}
	}
	return nil
}

// ParseMode maps a wire mode name to the pipeline configuration.
func ParseMode(s string) (pipeline.Mode, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "IC":
		return pipeline.ModeICache, nil
	case "TC":
		return pipeline.ModeTraceCache, nil
	case "RP":
		return pipeline.ModeRePLay, nil
	case "", "RPO":
		return pipeline.ModeRePLayOpt, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want IC, TC, RP or RPO)", s)
}

// Cell is one raw (workload, mode) simulation result.
type Cell struct {
	Workload string         `json:"workload"`
	Class    string         `json:"class"`
	Mode     string         `json:"mode"`
	IPC      float64        `json:"ipc"`
	Stats    pipeline.Stats `json:"stats"`
}

// RunResponse carries an experiment's rows. Exactly the fields the
// experiment produces are set: fig7/fig8 fill Breakdown, summary fills
// Fig6 and Table3 together, cell fills Cells.
type RunResponse struct {
	Experiment string             `json:"experiment"`
	Fig6       []sim.Fig6Row      `json:"fig6,omitempty"`
	Breakdown  []sim.BreakdownRow `json:"breakdown,omitempty"`
	Table3     []sim.Table3Row    `json:"table3,omitempty"`
	Fig9       []sim.Fig9Row      `json:"fig9,omitempty"`
	Fig10      []sim.Fig10Row     `json:"fig10,omitempty"`
	Cells      []Cell             `json:"cells,omitempty"`
	Attr       []sim.AttrRow      `json:"attr,omitempty"`
	Reuse      *sim.ReuseReport   `json:"reuse,omitempty"`
	Cycles     *sim.CycleReport   `json:"cycles,omitempty"`
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is the wire view of one queued/running/finished job.
type Job struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"`
	// TraceID names the span trace the job's execution records into
	// (the submitting request's trace, continued from its traceparent
	// header when one was sent). Fetch it from /debug/traces/{id} once
	// the job finishes. Empty when the server's tracer is disabled.
	TraceID string `json:"trace_id,omitempty"`
	// Coalesced is set on submission responses when the request
	// attached to an already in-flight job instead of enqueuing a new
	// one.
	Coalesced bool         `json:"coalesced,omitempty"`
	Error     string       `json:"error,omitempty"`
	Result    *RunResponse `json:"result,omitempty"`
	QueuedAt  time.Time    `json:"queued_at"`
	StartedAt time.Time    `json:"started_at"`
	DoneAt    time.Time    `json:"done_at"`
}

// Event is one line of a job's progress stream.
type Event struct {
	Seq int `json:"seq"`
	// JobID names the job the event belongs to; it matches the job_id
	// attribute on the daemon's structured log lines, so a log line and
	// a progress stream can be joined on it.
	JobID string `json:"job,omitempty"`
	State string `json:"state,omitempty"`
	// Msg describes the completed step, e.g. "bzip2/RPO done".
	Msg string `json:"msg,omitempty"`
	// Done/Total count completed simulation runs when known.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}
