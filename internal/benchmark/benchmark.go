// Package benchmark is the performance-regression observatory: a
// standardized suite of wall-clock benchmarks over the simulator, the
// pipeline engine, the optimizer, and the replayd serving path, run N
// times each and summarized as mean/stddev/min/p50/p95. Reports are
// schema-versioned JSON (the BENCH_<n>.json trajectory at the repo
// root) and machine-diffable: Compare flags direction-aware regressions
// beyond a noise threshold, so a PR that slows a hot path fails loudly
// instead of passing tier-1 tests silently.
package benchmark

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"time"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump it on any
// field change that would make old reports incomparable.
const SchemaVersion = 1

// Direction says which way a metric should move.
type Direction string

const (
	// Lower marks latency-style metrics (wall milliseconds).
	Lower Direction = "lower"
	// Higher marks throughput-style metrics (uops per second).
	Higher Direction = "higher"
)

// Settings sizes one suite run.
type Settings struct {
	// Insts is the per-trace instruction budget each benchmark
	// simulates or captures.
	Insts int `json:"insts"`
	// Repeats is how many measured repetitions feed each metric.
	Repeats int `json:"repeats"`
	// Quick records that the reduced CI budget was used; quick reports
	// still compare (the schema is identical) but the flag makes the
	// provenance visible.
	Quick bool `json:"quick"`
	// Logger, when set, receives structured diagnostics from benchmarks
	// that embed logging components (the replayd serving benchmark); nil
	// discards them. Excluded from reports: it is runtime wiring, not a
	// measurement parameter.
	Logger *slog.Logger `json:"-"`
}

// DefaultSettings is the baseline configuration BENCH_*.json files are
// recorded with.
func DefaultSettings() Settings { return Settings{Insts: 200_000, Repeats: 10} }

// QuickSettings is the CI smoke configuration: small budget, few
// repeats, finishes in seconds.
func QuickSettings() Settings { return Settings{Insts: 40_000, Repeats: 3, Quick: true} }

// Spec is one benchmark: Setup (optional) prepares shared state and
// returns a teardown; Run executes one repetition and returns the
// measured value. Run does its own timing so per-repetition preparation
// (remapping frames, rebuilding streams) stays out of the measurement.
type Spec struct {
	Name   string
	Unit   string
	Better Direction
	Setup  func(ctx context.Context, s Settings) (teardown func(), err error)
	Run    func(ctx context.Context, s Settings) (float64, error)
}

// Metric is one benchmark's summarized samples as serialized into the
// report.
type Metric struct {
	Name   string `json:"name"`
	Unit   string `json:"unit"`
	Better string `json:"better"`

	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`

	// Samples are the raw per-repetition values, kept for noise
	// inspection; Compare reads only the summary fields.
	Samples []float64 `json:"samples,omitempty"`
}

// Report is one BENCH_<n>.json file.
type Report struct {
	Schema    int       `json:"schema_version"`
	CreatedAt time.Time `json:"created_at"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`
	Settings  Settings  `json:"settings"`
	Metrics   []Metric  `json:"metrics"`
}

// Metric returns the named metric, or nil.
func (r *Report) Metric(name string) *Metric {
	for i := range r.Metrics {
		if r.Metrics[i].Name == name {
			return &r.Metrics[i]
		}
	}
	return nil
}

// Summarize reduces raw samples to a Metric.
func Summarize(name, unit string, better Direction, samples []float64) Metric {
	m := Metric{
		Name:    name,
		Unit:    unit,
		Better:  string(better),
		N:       len(samples),
		Samples: samples,
	}
	if len(samples) == 0 {
		return m
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	m.Min = sorted[0]
	m.P50 = Percentile(sorted, 0.50)
	m.P95 = Percentile(sorted, 0.95)
	var sum float64
	for _, v := range samples {
		sum += v
	}
	m.Mean = sum / float64(len(samples))
	var ss float64
	for _, v := range samples {
		d := v - m.Mean
		ss += d * d
	}
	if len(samples) > 1 {
		m.Stddev = math.Sqrt(ss / float64(len(samples)-1))
	}
	return m
}

// Percentile interpolates the q-th quantile (0..1) of an ascending
// sorted slice.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RunSuite executes each spec Repeats times and assembles the report.
// progress, when non-nil, receives one line per benchmark as it starts
// and finishes. A spec whose Setup or Run fails aborts the whole suite:
// a partial report would silently narrow regression coverage.
func RunSuite(ctx context.Context, specs []Spec, s Settings, progress func(string)) (*Report, error) {
	if s.Insts <= 0 || s.Repeats <= 0 {
		return nil, fmt.Errorf("benchmark: settings need positive insts and repeats (got %+v)", s)
	}
	say := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	rep := &Report{
		Schema:    SchemaVersion,
		CreatedAt: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Settings:  s,
	}
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		say("%s: %d repetitions...", spec.Name, s.Repeats)
		samples, err := runSpec(ctx, spec, s)
		if err != nil {
			return nil, fmt.Errorf("benchmark %s: %w", spec.Name, err)
		}
		m := Summarize(spec.Name, spec.Unit, spec.Better, samples)
		say("%s: mean %.3f %s (stddev %.3f, min %.3f, p95 %.3f)",
			m.Name, m.Mean, m.Unit, m.Stddev, m.Min, m.P95)
		rep.Metrics = append(rep.Metrics, m)
	}
	return rep, nil
}

func runSpec(ctx context.Context, spec Spec, s Settings) ([]float64, error) {
	if spec.Setup != nil {
		teardown, err := spec.Setup(ctx, s)
		if err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
		if teardown != nil {
			defer teardown()
		}
	}
	samples := make([]float64, 0, s.Repeats)
	for i := 0; i < s.Repeats; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := spec.Run(ctx, s)
		if err != nil {
			return nil, fmt.Errorf("repetition %d: %w", i+1, err)
		}
		samples = append(samples, v)
	}
	return samples, nil
}

// Filter returns the specs whose names match the regular expression.
func Filter(specs []Spec, pattern string) ([]Spec, error) {
	if pattern == "" {
		return specs, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("benchmark: bad -run pattern: %w", err)
	}
	var out []Spec
	for _, s := range specs {
		if re.MatchString(s.Name) {
			out = append(out, s)
		}
	}
	return out, nil
}

// WriteReport writes the report as indented JSON.
func WriteReport(path string, r *Report) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport loads and schema-checks a report.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema_version %d, this binary speaks %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// NextReportPath returns the first unused BENCH_<n>.json in dir,
// continuing the recorded trajectory (BENCH_1.json, BENCH_2.json, ...).
func NextReportPath(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	max := 0
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "BENCH_%d.json", &n); err == nil && n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", max+1)), nil
}
