package benchmark

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func approx(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

func TestSummarize(t *testing.T) {
	m := Summarize("wall", "ms", Lower, []float64{4, 1, 3, 2})
	if m.N != 4 {
		t.Fatalf("N = %d, want 4", m.N)
	}
	approx(t, "mean", m.Mean, 2.5)
	approx(t, "min", m.Min, 1)
	approx(t, "p50", m.P50, 2.5)
	// p95 of [1,2,3,4]: pos 2.85 -> 3*(0.15) + 4*(0.85)
	approx(t, "p95", m.P95, 3.85)
	// sample stddev of 1..4
	approx(t, "stddev", m.Stddev, math.Sqrt(5.0/3.0))
	if m.Better != string(Lower) {
		t.Errorf("better = %q", m.Better)
	}

	empty := Summarize("none", "ms", Lower, nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	one := Summarize("one", "ms", Lower, []float64{7})
	if one.Stddev != 0 || one.Mean != 7 || one.P95 != 7 {
		t.Errorf("single-sample summary = %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	approx(t, "p0", Percentile(sorted, 0), 10)
	approx(t, "p100", Percentile(sorted, 1), 50)
	approx(t, "p50", Percentile(sorted, 0.5), 30)
	approx(t, "p25", Percentile(sorted, 0.25), 20)
	// pos 3.6 -> between 40 and 50
	approx(t, "p90", Percentile(sorted, 0.9), 46)
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile not 0")
	}
}

func TestReportRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	rep := &Report{
		Schema:   SchemaVersion,
		Settings: DefaultSettings(),
		Metrics: []Metric{
			Summarize("a", "ms", Lower, []float64{1, 2, 3}),
		},
	}
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	m := got.Metric("a")
	if m == nil {
		t.Fatal("metric a missing after roundtrip")
	}
	approx(t, "mean", m.Mean, 2)
	if got.Metric("missing") != nil {
		t.Error("lookup of absent metric returned non-nil")
	}

	// A future schema must be refused, not misread.
	rep.Schema = SchemaVersion + 1
	bad := filepath.Join(dir, "future.json")
	if err := WriteReport(bad, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(bad); err == nil {
		t.Error("future schema_version accepted")
	}
}

func TestNextReportPath(t *testing.T) {
	dir := t.TempDir()
	p, err := NextReportPath(dir)
	if err != nil || filepath.Base(p) != "BENCH_1.json" {
		t.Fatalf("empty dir -> %q, %v", p, err)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_3.json", "BENCH_x.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = NextReportPath(dir)
	if err != nil || filepath.Base(p) != "BENCH_4.json" {
		t.Fatalf("sequenced dir -> %q, %v", p, err)
	}
}

func TestRunSuite(t *testing.T) {
	setupCalls, teardownCalls := 0, 0
	specs := []Spec{
		{
			Name: "constant", Unit: "ms", Better: Lower,
			Setup: func(ctx context.Context, s Settings) (func(), error) {
				setupCalls++
				return func() { teardownCalls++ }, nil
			},
			Run: func(ctx context.Context, s Settings) (float64, error) { return 5, nil },
		},
		{
			Name: "counting", Unit: "ops", Better: Higher,
			Run: func(ctx context.Context, s Settings) (float64, error) { return float64(s.Insts), nil },
		},
	}
	var lines []string
	rep, err := RunSuite(context.Background(), specs, Settings{Insts: 100, Repeats: 3}, func(l string) {
		lines = append(lines, l)
	})
	if err != nil {
		t.Fatal(err)
	}
	if setupCalls != 1 || teardownCalls != 1 {
		t.Errorf("setup/teardown ran %d/%d times, want 1/1", setupCalls, teardownCalls)
	}
	if rep.Schema != SchemaVersion || len(rep.Metrics) != 2 {
		t.Fatalf("report %+v", rep)
	}
	if m := rep.Metric("constant"); m == nil || m.N != 3 || m.Mean != 5 {
		t.Errorf("constant metric %+v", m)
	}
	if m := rep.Metric("counting"); m == nil || m.Mean != 100 {
		t.Errorf("counting metric %+v", m)
	}
	if len(lines) == 0 {
		t.Error("no progress lines emitted")
	}

	// A failing spec aborts the suite rather than narrowing coverage.
	boom := errors.New("boom")
	specs[1].Run = func(ctx context.Context, s Settings) (float64, error) { return 0, boom }
	if _, err := RunSuite(context.Background(), specs, Settings{Insts: 100, Repeats: 2}, nil); !errors.Is(err, boom) {
		t.Errorf("failing spec: err = %v, want wrapped boom", err)
	}

	if _, err := RunSuite(context.Background(), specs, Settings{}, nil); err == nil {
		t.Error("zero settings accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSuite(ctx, specs[:1], Settings{Insts: 1, Repeats: 1}, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: err = %v", err)
	}
}

func TestFilter(t *testing.T) {
	specs := []Spec{{Name: "sim_wall_ms/gzip"}, {Name: "engine_uops_per_sec"}, {Name: "sim_wall_ms/photo"}}
	got, err := Filter(specs, "sim_wall")
	if err != nil || len(got) != 2 {
		t.Fatalf("filter -> %d specs, %v", len(got), err)
	}
	all, err := Filter(specs, "")
	if err != nil || len(all) != 3 {
		t.Fatalf("empty pattern -> %d specs, %v", len(all), err)
	}
	if _, err := Filter(specs, "("); err == nil {
		t.Error("bad regexp accepted")
	}
}
