package benchmark

import (
	"fmt"
	"io"
	"math"

	"repro/internal/noise"
)

// Delta is one metric's old-vs-new comparison. Worse is the
// direction-adjusted relative change: positive means the metric moved
// the wrong way (slower for Lower metrics, less throughput for Higher),
// so a Worse of 0.20 reads "20% worse" regardless of direction.
type Delta struct {
	Name    string  `json:"name"`
	Unit    string  `json:"unit"`
	Better  string  `json:"better"`
	OldMean float64 `json:"old_mean"`
	NewMean float64 `json:"new_mean"`
	Worse   float64 `json:"worse"`

	// Noise is the 2×SEM significance bound the comparison gated on, in
	// the metric's own unit (0 when neither side carried repeat spread).
	// WithinNoise records that the means differed by less than it, so a
	// non-flagged delta is distinguishable from a sub-threshold one.
	Noise       float64 `json:"noise"`
	WithinNoise bool    `json:"within_noise,omitempty"`

	// Regression: worse beyond the threshold AND beyond the noise gate.
	// Improvement: the same test in the other direction.
	Regression  bool `json:"regression"`
	Improvement bool `json:"improvement"`
}

// Comparison is the full old-vs-new verdict.
type Comparison struct {
	Threshold float64  `json:"threshold"`
	Deltas    []Delta  `json:"deltas"`
	OnlyOld   []string `json:"only_old,omitempty"`
	OnlyNew   []string `json:"only_new,omitempty"`
}

// Regressions counts metrics flagged as regressed.
func (c *Comparison) Regressions() int {
	n := 0
	for _, d := range c.Deltas {
		if d.Regression {
			n++
		}
	}
	return n
}

// Compare diffs two reports metric by metric. threshold is the relative
// worsening (0.25 = 25%) above which a metric regresses; on top of it a
// noise gate requires the means to differ by more than twice the
// combined standard error, so a jittery benchmark whose mean wobbles
// within its own spread never flags. Metrics present in only one report
// are listed informationally, never flagged — renames should not fail
// CI retroactively.
func Compare(old, new *Report, threshold float64) *Comparison {
	c := &Comparison{Threshold: threshold}
	for _, om := range old.Metrics {
		nm := new.Metric(om.Name)
		if nm == nil {
			c.OnlyOld = append(c.OnlyOld, om.Name)
			continue
		}
		c.Deltas = append(c.Deltas, diff(om, *nm, threshold))
	}
	for _, nm := range new.Metrics {
		if old.Metric(nm.Name) == nil {
			c.OnlyNew = append(c.OnlyNew, nm.Name)
		}
	}
	return c
}

func diff(om, nm Metric, threshold float64) Delta {
	os, ns := summaryOf(om), summaryOf(nm)
	d := Delta{
		Name:        om.Name,
		Unit:        om.Unit,
		Better:      om.Better,
		OldMean:     om.Mean,
		NewMean:     nm.Mean,
		Noise:       noise.Bound(os, ns),
		WithinNoise: !noise.Beyond(os, ns),
	}
	if om.Mean == 0 {
		return d // nothing meaningful to ratio against
	}
	rel := (nm.Mean - om.Mean) / om.Mean
	if Direction(om.Better) == Higher {
		rel = -rel
	}
	d.Worse = rel
	if math.Abs(rel) <= threshold || d.WithinNoise {
		return d
	}
	if rel > 0 {
		d.Regression = true
	} else {
		d.Improvement = true
	}
	return d
}

// summaryOf adapts a metric's summary fields for the shared noise gate
// (the same 2×SEM rule the ablation diff engine applies to run deltas).
func summaryOf(m Metric) noise.Summary {
	return noise.Summary{N: m.N, Mean: m.Mean, Stddev: m.Stddev}
}

// WriteText renders the comparison as an aligned human-readable table,
// including the per-metric 2×SEM bound each verdict was gated on — the
// same ±noise column the ablation diff reports print, so "how much
// spread hid this delta" reads identically from benchd and replayctl.
func (c *Comparison) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%-28s %14s %14s %9s %12s  %s\n", "metric", "old", "new", "change", "±noise", "verdict")
	for _, d := range c.Deltas {
		verdict := "ok"
		switch {
		case d.Regression:
			verdict = "REGRESSION"
		case d.Improvement:
			verdict = "improvement"
		case d.WithinNoise && d.OldMean != d.NewMean:
			verdict = "ok (within noise)"
		}
		fmt.Fprintf(w, "%-28s %14.3f %14.3f %+8.1f%% %12.4g  %s\n",
			d.Name, d.OldMean, d.NewMean, signedWorse(d), d.Noise, verdict)
	}
	for _, name := range c.OnlyOld {
		fmt.Fprintf(w, "%-28s only in old report\n", name)
	}
	for _, name := range c.OnlyNew {
		fmt.Fprintf(w, "%-28s only in new report\n", name)
	}
	if n := c.Regressions(); n > 0 {
		fmt.Fprintf(w, "\n%d regression(s) beyond the %.0f%% threshold\n", n, c.Threshold*100)
	} else {
		fmt.Fprintf(w, "\nno regressions beyond the %.0f%% threshold\n", c.Threshold*100)
	}
}

// signedWorse renders the raw relative change with its natural sign
// (positive = value went up), which reads better in a table than the
// direction-adjusted Worse.
func signedWorse(d Delta) float64 {
	if d.OldMean == 0 {
		return 0
	}
	return (d.NewMean - d.OldMean) / d.OldMean * 100
}
