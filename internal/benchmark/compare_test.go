package benchmark

import (
	"strings"
	"testing"

	"repro/internal/noise"
)

func report(metrics ...Metric) *Report {
	return &Report{Schema: SchemaVersion, Metrics: metrics}
}

func steady(name string, better Direction, mean float64) Metric {
	// Ten identical samples: zero stddev, so any mean shift clears the
	// noise gate and the verdict depends on the threshold alone.
	samples := make([]float64, 10)
	for i := range samples {
		samples[i] = mean
	}
	return Summarize(name, "ms", better, samples)
}

// TestCompareSelfIsClean is the acceptance criterion: comparing a
// report against itself must report zero regressions.
func TestCompareSelfIsClean(t *testing.T) {
	rep := report(steady("wall", Lower, 100), steady("tput", Higher, 5000))
	c := Compare(rep, rep, 0.25)
	if n := c.Regressions(); n != 0 {
		t.Fatalf("self-compare found %d regressions", n)
	}
	for _, d := range c.Deltas {
		if d.Worse != 0 || d.Regression || d.Improvement {
			t.Errorf("self-compare delta %+v", d)
		}
	}
}

// TestCompareFlagsSlowdown is the other acceptance criterion: a 2x
// slowdown injected into one metric must flag exactly that metric.
func TestCompareFlagsSlowdown(t *testing.T) {
	old := report(steady("wall", Lower, 100), steady("tput", Higher, 5000))
	new := report(steady("wall", Lower, 200), steady("tput", Higher, 5000))
	c := Compare(old, new, 0.25)
	if n := c.Regressions(); n != 1 {
		t.Fatalf("found %d regressions, want 1", n)
	}
	d := c.Deltas[0]
	if d.Name != "wall" || !d.Regression {
		t.Fatalf("flagged delta %+v, want wall regression", d)
	}
	if d.Worse != 1.0 {
		t.Errorf("worse = %v, want 1.0 (100%% slower)", d.Worse)
	}
}

func TestCompareDirectionAware(t *testing.T) {
	// Throughput halving is a regression; latency halving is an
	// improvement. Same raw ratio, opposite verdicts.
	old := report(steady("tput", Higher, 5000), steady("wall", Lower, 100))
	new := report(steady("tput", Higher, 2500), steady("wall", Lower, 50))
	c := Compare(old, new, 0.25)
	if n := c.Regressions(); n != 1 {
		t.Fatalf("found %d regressions, want 1 (tput)", n)
	}
	for _, d := range c.Deltas {
		switch d.Name {
		case "tput":
			if !d.Regression {
				t.Errorf("halved throughput not flagged: %+v", d)
			}
		case "wall":
			if !d.Improvement || d.Regression {
				t.Errorf("halved latency not an improvement: %+v", d)
			}
		}
	}
}

func TestCompareNoiseGate(t *testing.T) {
	// Means 30% apart, but both reports are so jittery that the shift is
	// within twice the combined standard error: threshold exceeded, noise
	// gate not, so no flag.
	old := report(Summarize("wall", "ms", Lower, []float64{50, 100, 150}))
	new := report(Summarize("wall", "ms", Lower, []float64{65, 130, 195}))
	c := Compare(old, new, 0.25)
	if n := c.Regressions(); n != 0 {
		t.Fatalf("noisy 30%% shift flagged as regression")
	}
	d := c.Deltas[0]
	if d.Worse <= 0.25 {
		t.Fatalf("test premise broken: worse = %v should exceed threshold", d.Worse)
	}
	// The delta records the bound it was gated on: the shared 2×SEM rule,
	// and the fact that the shift fell inside it.
	os, ns := summaryOf(*old.Metric("wall")), summaryOf(*new.Metric("wall"))
	if want := noise.Bound(os, ns); d.Noise != want || want == 0 {
		t.Errorf("Noise = %v, want %v (non-zero)", d.Noise, want)
	}
	if !d.WithinNoise {
		t.Error("gated delta not marked WithinNoise")
	}
	var sb strings.Builder
	c.WriteText(&sb)
	if out := sb.String(); !strings.Contains(out, "±noise") || !strings.Contains(out, "within noise") {
		t.Errorf("WriteText missing the noise bound column:\n%s", out)
	}

	// Single-repeat reports carry no spread information and must still
	// flag — otherwise quick mode could never fail.
	old = report(Summarize("wall", "ms", Lower, []float64{100}))
	new = report(Summarize("wall", "ms", Lower, []float64{200}))
	c = Compare(old, new, 0.25)
	if n := c.Regressions(); n != 1 {
		t.Errorf("single-repeat 2x slowdown found %d regressions, want 1", n)
	}
	if d := c.Deltas[0]; d.Noise != 0 || d.WithinNoise {
		t.Errorf("single-repeat delta carries spread: %+v", d)
	}
}

func TestCompareDisjointMetrics(t *testing.T) {
	old := report(steady("gone", Lower, 1), steady("kept", Lower, 1))
	new := report(steady("kept", Lower, 1), steady("added", Lower, 1))
	c := Compare(old, new, 0.25)
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "gone" {
		t.Errorf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "added" {
		t.Errorf("OnlyNew = %v", c.OnlyNew)
	}
	if c.Regressions() != 0 {
		t.Error("renamed metrics counted as regressions")
	}

	var sb strings.Builder
	c.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"only in old report", "only in new report", "no regressions"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q in:\n%s", want, out)
		}
	}
}

func TestCompareZeroOldMean(t *testing.T) {
	old := report(Summarize("wall", "ms", Lower, []float64{0, 0}))
	new := report(Summarize("wall", "ms", Lower, []float64{10, 10}))
	c := Compare(old, new, 0.25)
	if c.Regressions() != 0 {
		t.Error("zero old mean produced a regression verdict")
	}
}

func TestWriteTextVerdicts(t *testing.T) {
	old := report(steady("wall", Lower, 100))
	new := report(steady("wall", Lower, 300))
	c := Compare(old, new, 0.25)
	var sb strings.Builder
	c.WriteText(&sb)
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "1 regression(s)") {
		t.Errorf("WriteText output:\n%s", out)
	}
}
