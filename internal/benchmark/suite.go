package benchmark

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/frame"
	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/reuse"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// suiteProfiles are the workloads the standardized suite measures: one
// per class so a regression that only hits, say, the content-creation
// frame shapes still shows up.
var suiteProfiles = []string{"gzip", "access", "photo"}

// Suite returns the standardized benchmark set, in run order:
//
//   - sim_wall_ms/<p>: end-to-end RunWorkload wall time under RPO with
//     the capture/memo layers disabled, so every repetition interprets
//     and simulates for real.
//   - engine_uops_per_sec: retired-uop throughput of pipeline.Engine
//     alone over a pre-captured slot stream (no interpreter cost).
//   - opt_uops_per_sec: optimizer throughput over pre-constructed
//     frames, measured through OptimizeTraced with a live attribution
//     collector — the hook path replayd's per-pass tables use.
//   - replayd_request_ms: end-to-end POST /v1/run latency against an
//     in-process replayd core with a warmed run memo, i.e. the serving
//     overhead (routing, coalescing, queueing, JSON) around a hot job.
func Suite() []Spec {
	return suiteFor(suiteProfiles)
}

func suiteFor(profiles []string) []Spec {
	var specs []Spec
	for _, name := range profiles {
		specs = append(specs, simWallSpec(name))
	}
	specs = append(specs, engineSpec(), optSpec(), replaydSpec())
	return specs
}

// selectInsts is the per-trace budget of the quick suite's subset-
// selection pass: enough retirement for stable loop signatures, small
// enough that selection stays a fraction of one benchmark repetition.
const selectInsts = 20_000

// QuickSuite returns the reduced suite benchd -quick runs: a short
// reuse-attribution pass over the suite profiles picks the greedy
// representative subset (workloads covering reuse.DefaultCoverage of
// the suite's reuse mass at the least simulated cost), and only those
// workloads keep their sim_wall_ms benchmarks. The non-per-profile
// specs (engine, optimizer, replayd serving) always run. Metric names
// are unchanged from the full suite, so quick and full reports compare
// metric-for-metric on the shared subset.
func QuickSuite(ctx context.Context) ([]Spec, []reuse.SubsetPick, error) {
	profiles := make([]workload.Profile, len(suiteProfiles))
	for i, name := range suiteProfiles {
		profiles[i] = mustProfile(name)
	}
	rep, err := sim.Reuse(ctx, profiles, sim.Options{MaxInsts: selectInsts})
	if err != nil {
		return nil, nil, fmt.Errorf("subset selection: %w", err)
	}
	selected := make(map[string]bool, len(rep.Subset))
	for _, p := range rep.Subset {
		selected[p.Name] = true
	}
	var keep []string
	for _, name := range suiteProfiles {
		if selected[name] {
			keep = append(keep, name)
		}
	}
	if len(keep) == 0 {
		// Degenerate selection (e.g. zero reuse mass everywhere): fall
		// back to the full profile set rather than an empty suite.
		keep = suiteProfiles
	}
	return suiteFor(keep), rep.Subset, nil
}

func simWallSpec(profile string) Spec {
	return Spec{
		Name:   "sim_wall_ms/" + profile,
		Unit:   "ms",
		Better: Lower,
		Run: func(ctx context.Context, s Settings) (float64, error) {
			p, err := workload.ByName(profile)
			if err != nil {
				return 0, err
			}
			start := time.Now()
			_, err = sim.RunWorkload(ctx, p, pipeline.ModeRePLayOpt,
				sim.Options{MaxInsts: s.Insts, DisableCache: true})
			if err != nil {
				return 0, err
			}
			return float64(time.Since(start)) / float64(time.Millisecond), nil
		},
	}
}

func engineSpec() Spec {
	var slots []pipeline.Slot
	return Spec{
		Name:   "engine_uops_per_sec",
		Unit:   "uops/s",
		Better: Higher,
		Setup: func(ctx context.Context, s Settings) (func(), error) {
			p, err := workload.ByName("gzip")
			if err != nil {
				return nil, err
			}
			ss, err := sim.CaptureSlotStream(p, 0, s.Insts)
			if err != nil {
				return nil, err
			}
			slots, err = sim.SlotsFromRecorded(ss)
			return func() { slots = nil }, err
		},
		Run: func(ctx context.Context, s Settings) (float64, error) {
			mode := pipeline.ModeRePLayOpt
			eng := pipeline.New(pipeline.DefaultConfig(mode), mode, sim.NewSlotStream(slots))
			start := time.Now()
			eng.Run(uint64(s.Insts))
			elapsed := time.Since(start).Seconds()
			st := eng.Stats()
			if st.UOpsRetired == 0 {
				return 0, fmt.Errorf("engine retired no uops")
			}
			return float64(st.UOpsRetired) / elapsed, nil
		},
	}
}

func optSpec() Spec {
	const maxFrames = 256
	var frames []*frame.Frame // constructed once; repetitions remap fresh
	return Spec{
		Name:   "opt_uops_per_sec",
		Unit:   "uops/s",
		Better: Higher,
		Setup: func(ctx context.Context, s Settings) (func(), error) {
			frames = sim.CollectFrames(mustProfile("gzip"), s.Insts, maxFrames)
			if len(frames) == 0 {
				return nil, fmt.Errorf("no frames constructed from gzip at %d insts", s.Insts)
			}
			return func() { frames = nil }, nil
		},
		Run: func(ctx context.Context, s Settings) (float64, error) {
			// Remap outside the timed region: Optimize mutates the frame in
			// place, so each repetition needs fresh renamed copies.
			fresh := make([]*opt.OptFrame, len(frames))
			for i, f := range frames {
				fresh[i] = opt.Remap(f, opt.ScopeFrame)
			}
			rec := telemetry.New(telemetry.Config{Attribution: true})
			uops := 0
			start := time.Now()
			for _, of := range fresh {
				st := opt.OptimizeTraced(of, opt.AllOptions(), rec)
				uops += st.UOpsIn
			}
			elapsed := time.Since(start).Seconds()
			if uops == 0 {
				return 0, fmt.Errorf("optimizer saw no uops")
			}
			return float64(uops) / elapsed, nil
		},
	}
}

func replaydSpec() Spec {
	var (
		core *server.Server
		ts   *httptest.Server
	)
	body := func(s Settings) []byte {
		return []byte(fmt.Sprintf(
			`{"experiment":"cell","workloads":["gzip"],"insts":%d}`, s.Insts))
	}
	post := func(ctx context.Context, s Settings) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/run", bytes.NewReader(body(s)))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := ts.Client().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /v1/run: %s", resp.Status)
		}
		return nil
	}
	return Spec{
		Name:   "replayd_request_ms",
		Unit:   "ms",
		Better: Lower,
		Setup: func(ctx context.Context, s Settings) (func(), error) {
			logger := s.Logger
			if logger == nil {
				logger = slog.New(slog.DiscardHandler)
			}
			core = server.New(server.Config{
				Workers: 2,
				Logger:  logger,
			})
			ts = httptest.NewServer(core.Handler())
			// One untimed request warms the capture cache and run memo, so
			// the measured repetitions isolate serving overhead instead of
			// re-measuring the simulator (sim_wall_ms already covers that).
			if err := post(ctx, s); err != nil {
				ts.Close()
				_ = core.Shutdown(context.Background())
				return nil, err
			}
			return func() {
				ts.Close()
				sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_ = core.Shutdown(sctx)
			}, nil
		},
		Run: func(ctx context.Context, s Settings) (float64, error) {
			start := time.Now()
			if err := post(ctx, s); err != nil {
				return 0, err
			}
			return float64(time.Since(start)) / float64(time.Millisecond), nil
		},
	}
}

func mustProfile(name string) workload.Profile {
	p, err := workload.ByName(name)
	if err != nil {
		panic("benchmark: unknown suite profile " + name)
	}
	return p
}
