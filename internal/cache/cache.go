// Package cache implements the memory-side timing structures of the
// Table 2 configuration: generic set-associative caches with LRU
// replacement (instruction cache, L1 data cache, L2), plus the
// micro-op-capacity frame cache and trace cache.
package cache

// Cache is a set-associative cache with true-LRU replacement. It models
// hit/miss behaviour only (contents are tags, not data).
type Cache struct {
	lineShift uint
	setMask   uint32
	ways      int
	tags      [][]uint32
	valid     [][]bool
	lruSeq    [][]uint64
	clock     uint64

	// Accesses/Misses count lookups.
	Accesses uint64
	Misses   uint64
}

// New returns a cache of the given total size, line size and
// associativity. The set count is rounded down to a power of two when
// the size/line/way combination does not yield one: the set index is a
// mask, and masking with a non-power-of-two count silently skips sets
// and aliases lines (shrinking the effective capacity unpredictably).
func New(sizeBytes, lineBytes, ways int) *Cache {
	sets := sizeBytes / lineBytes / ways
	if sets < 1 {
		sets = 1
	}
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	c := &Cache{ways: ways, setMask: uint32(sets - 1)}
	for lineBytes > 1 {
		lineBytes >>= 1
		c.lineShift++
	}
	c.tags = make([][]uint32, sets)
	c.valid = make([][]bool, sets)
	c.lruSeq = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint32, ways)
		c.valid[i] = make([]bool, ways)
		c.lruSeq[i] = make([]uint64, ways)
	}
	return c
}

// Access looks up addr, filling the line on a miss. Returns true on hit.
func (c *Cache) Access(addr uint32) bool {
	c.clock++
	c.Accesses++
	line := addr >> c.lineShift
	set := line & c.setMask
	tag := line
	ways := c.tags[set]
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && ways[w] == tag {
			c.lruSeq[set][w] = c.clock
			return true
		}
	}
	c.Misses++
	// Fill the LRU way.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lruSeq[set][w] < c.lruSeq[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lruSeq[set][victim] = c.clock
	return false
}

// Contains reports whether addr currently hits without updating state.
func (c *Cache) Contains(addr uint32) bool {
	line := addr >> c.lineShift
	set := line & c.setMask
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == line {
			return true
		}
	}
	return false
}
