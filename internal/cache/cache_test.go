package cache

import (
	"testing"
	"testing/quick"
)

func TestCacheBasics(t *testing.T) {
	c := New(1024, 64, 2) // 8 sets x 2 ways
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("warm access missed")
	}
	if !c.Access(0x103F) {
		t.Error("same-line access missed")
	}
	if c.Access(0x1040) {
		t.Error("next line hit")
	}
}

func TestCacheLRU(t *testing.T) {
	c := New(128, 64, 2) // 1 set, 2 ways
	c.Access(0x0000)     // A
	c.Access(0x1000)     // B
	c.Access(0x0000)     // touch A
	c.Access(0x2000)     // C evicts B (LRU)
	if !c.Contains(0x0000) {
		t.Error("A evicted")
	}
	if c.Contains(0x1000) {
		t.Error("B not evicted")
	}
	if !c.Contains(0x2000) {
		t.Error("C missing")
	}
}

func TestCacheCounters(t *testing.T) {
	c := New(256, 64, 1)
	c.Access(0)
	c.Access(0)
	c.Access(64)
	if c.Accesses != 3 || c.Misses != 2 {
		t.Errorf("accesses=%d misses=%d", c.Accesses, c.Misses)
	}
}

// TestCacheNeverExceedsWays: property — a direct-mapped cache holds at
// most one line per set; conflicting lines evict each other.
func TestCacheConflict(t *testing.T) {
	c := New(256, 64, 1) // 4 sets
	f := func(a, b uint8) bool {
		addr1 := uint32(a) << 6
		addr2 := addr1 + 4*256 // same set, different tag
		_ = b
		c.Access(addr1)
		c.Access(addr2)
		return !c.Contains(addr1) && c.Contains(addr2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCacheNonPowerOfTwoSets: a size/line/way combination with a
// non-power-of-two set count rounds down to a power of two. The pre-fix
// code masked with sets-1 anyway, silently skipping sets and aliasing
// lines.
func TestCacheNonPowerOfTwoSets(t *testing.T) {
	// 48kB / 64B lines / 4 ways = 192 sets -> rounds down to 128.
	c := New(48<<10, 64, 4)
	if got := int(c.setMask) + 1; got != 128 {
		t.Fatalf("set count = %d, want 128", got)
	}
	// Functional check: 128 sets x 4 ways hold exactly 512 distinct
	// sequential lines with no conflict evictions.
	for i := uint32(0); i < 512; i++ {
		c.Access(i * 64)
	}
	for i := uint32(0); i < 512; i++ {
		if !c.Contains(i * 64) {
			t.Fatalf("line %d evicted during a fill that exactly fits", i)
		}
	}
	// Power-of-two geometries are untouched by the rounding.
	if got := int(New(8<<10, 64, 2).setMask) + 1; got != 64 {
		t.Errorf("8kB/64B/2w set count = %d, want 64", got)
	}
}

func TestUOpCacheInsertLookup(t *testing.T) {
	c := NewUOpCache[string](100)
	if !c.Insert(0x1000, 40, "a") {
		t.Fatal("insert failed")
	}
	v, ok := c.Lookup(0x1000)
	if !ok || v != "a" {
		t.Fatalf("lookup = %q, %v", v, ok)
	}
	if _, ok := c.Lookup(0x2000); ok {
		t.Error("phantom hit")
	}
}

func TestUOpCacheCapacityEviction(t *testing.T) {
	c := NewUOpCache[int](100)
	c.Insert(1, 40, 1)
	c.Insert(2, 40, 2)
	c.Lookup(1)        // promote 1
	c.Insert(3, 40, 3) // must evict 2
	if c.Used() > 100 {
		t.Errorf("over capacity: %d", c.Used())
	}
	if c.Contains(2) {
		t.Error("LRU entry 2 not evicted")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Error("wrong eviction victim")
	}
}

func TestUOpCacheReplaceSamePC(t *testing.T) {
	c := NewUOpCache[int](100)
	c.Insert(1, 60, 1)
	c.Insert(1, 30, 2)
	if c.Used() != 30 || c.Len() != 1 {
		t.Errorf("used=%d len=%d", c.Used(), c.Len())
	}
	v, _ := c.Lookup(1)
	if v != 2 {
		t.Errorf("value = %d", v)
	}
}

func TestUOpCacheOversized(t *testing.T) {
	c := NewUOpCache[int](100)
	if c.Insert(1, 200, 1) {
		t.Error("oversized insert accepted")
	}
}

func TestUOpCacheInvalidate(t *testing.T) {
	c := NewUOpCache[int](100)
	c.Insert(1, 50, 1)
	c.Invalidate(1)
	if c.Contains(1) || c.Used() != 0 {
		t.Error("invalidate failed")
	}
	c.Invalidate(99) // no-op
}

// TestUOpCachePropertyOccupancy: occupancy never exceeds capacity under
// random insert/invalidate sequences.
func TestUOpCachePropertyOccupancy(t *testing.T) {
	c := NewUOpCache[int](500)
	f := func(pc uint16, size uint8) bool {
		if size == 0 {
			c.Invalidate(uint32(pc))
			return c.Used() >= 0
		}
		c.Insert(uint32(pc), int(size), int(pc))
		return c.Used() <= 500
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
