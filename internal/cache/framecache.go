package cache

import "container/list"

// UOpCache is a micro-op-capacity cache of code regions keyed by start
// PC, with LRU replacement by total micro-op count — the storage model
// shared by the rePLay frame cache and the trace cache (16k micro-ops in
// the paper's configuration, approximately a 64kB ICache).
type UOpCache[T any] struct {
	capacity int
	used     int
	entries  map[uint32]*list.Element
	lru      *list.List // front = most recent

	// Insertions/Evictions/Hits/Lookups count activity.
	Insertions uint64
	Evictions  uint64
	Hits       uint64
	Lookups    uint64

	// OnInsert/OnEvict/OnHit, when set, observe cache activity (the
	// pipeline's telemetry wiring). A same-PC replacement reports the
	// displaced region through OnEvict before the insert.
	OnInsert func(pc uint32, size int)
	OnEvict  func(pc uint32, size int)
	OnHit    func(pc uint32)

	// Recycle, when set, receives every displaced value — capacity
	// eviction, same-PC replacement, and invalidation — after the
	// OnEvict observation. The pipeline uses it to return frame buffers
	// to their pools; the cache itself holds no reference afterwards.
	Recycle func(value T)
}

type entry[T any] struct {
	pc    uint32
	size  int
	value T
}

// NewUOpCache returns a cache holding at most capacity micro-ops.
func NewUOpCache[T any](capacity int) *UOpCache[T] {
	return &UOpCache[T]{
		capacity: capacity,
		entries:  make(map[uint32]*list.Element),
		lru:      list.New(),
	}
}

// Lookup returns the region starting at pc, promoting it to most
// recently used.
func (c *UOpCache[T]) Lookup(pc uint32) (T, bool) {
	c.Lookups++
	el, ok := c.entries[pc]
	if !ok {
		var zero T
		return zero, false
	}
	c.Hits++
	c.lru.MoveToFront(el)
	if c.OnHit != nil {
		c.OnHit(pc)
	}
	return el.Value.(*entry[T]).value, true
}

// Contains reports presence without promoting.
func (c *UOpCache[T]) Contains(pc uint32) bool {
	_, ok := c.entries[pc]
	return ok
}

// Insert stores a region of the given micro-op size, evicting LRU
// regions until it fits. A region larger than the whole cache is
// rejected. An existing region at the same PC is replaced.
func (c *UOpCache[T]) Insert(pc uint32, size int, value T) bool {
	if size > c.capacity {
		return false
	}
	if el, ok := c.entries[pc]; ok {
		old := el.Value.(*entry[T])
		c.used -= old.size
		c.lru.Remove(el)
		delete(c.entries, pc)
		if c.OnEvict != nil {
			c.OnEvict(pc, old.size)
		}
	}
	for c.used+size > c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry[T])
		c.used -= e.size
		delete(c.entries, e.pc)
		c.lru.Remove(back)
		c.Evictions++
		if c.OnEvict != nil {
			c.OnEvict(e.pc, e.size)
		}
		if c.Recycle != nil {
			c.Recycle(e.value)
		}
	}
	c.entries[pc] = c.lru.PushFront(&entry[T]{pc: pc, size: size, value: value})
	c.used += size
	c.Insertions++
	if c.OnInsert != nil {
		c.OnInsert(pc, size)
	}
	return true
}

// Invalidate removes the region at pc if present.
func (c *UOpCache[T]) Invalidate(pc uint32) {
	if el, ok := c.entries[pc]; ok {
		old := el.Value.(*entry[T])
		c.used -= old.size
		c.lru.Remove(el)
		delete(c.entries, pc)
		if c.OnEvict != nil {
			c.OnEvict(pc, old.size)
		}
		if c.Recycle != nil {
			c.Recycle(old.value)
		}
	}
}

// Used returns the current micro-op occupancy.
func (c *UOpCache[T]) Used() int { return c.used }

// Len returns the number of cached regions.
func (c *UOpCache[T]) Len() int { return len(c.entries) }
