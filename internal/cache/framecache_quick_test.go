package cache

import (
	"testing"
	"testing/quick"
)

// TestUOpCacheQuickReplacementAccounting model-checks the UOpCache's
// occupancy accounting under random Insert/Invalidate sequences over a
// deliberately tiny PC domain, so the same PC is re-inserted with a
// different size constantly (the frame-growth pattern: a cached frame is
// replaced by a larger rebuild of the same start PC). Invariants after
// every operation:
//
//   - Used() equals the sum of the sizes of the regions present
//   - Len() equals the number of regions present
//   - Used() never exceeds the capacity
//   - a successful Insert leaves its own region resident
func TestUOpCacheQuickReplacementAccounting(t *testing.T) {
	const capacity = 256
	c := NewUOpCache[uint32](capacity)
	model := map[uint32]int{} // pc -> size of regions currently cached

	sync := func() {
		// Inserts evict LRU victims; drop them from the model too.
		for pc := range model {
			if !c.Contains(pc) {
				delete(model, pc)
			}
		}
	}
	check := func() bool {
		sum := 0
		for _, s := range model {
			sum += s
		}
		return c.Used() == sum && c.Len() == len(model) && c.Used() <= capacity
	}

	op := func(pcRaw, sizeRaw uint8, invalidate bool) bool {
		pc := uint32(pcRaw % 8)
		size := int(sizeRaw)%96 + 1
		if invalidate {
			c.Invalidate(pc)
			delete(model, pc)
			return check()
		}
		if !c.Insert(pc, size, pc) {
			t.Errorf("Insert(%d, %d) rejected below capacity", pc, size)
			return false
		}
		model[pc] = size
		sync()
		if !c.Contains(pc) {
			t.Errorf("Insert(%d, %d) did not leave the region resident", pc, size)
			return false
		}
		v, ok := c.Lookup(pc)
		if !ok || v != pc {
			t.Errorf("Lookup(%d) = %v, %v after insert", pc, v, ok)
			return false
		}
		return check()
	}
	if err := quick.Check(op, &quick.Config{MaxCount: 10_000}); err != nil {
		t.Error(err)
	}
}
