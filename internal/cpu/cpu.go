package cpu

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/trace"
	"repro/internal/x86"
)

// ErrHalted is returned by Step once the CPU has executed HLT.
var ErrHalted = errors.New("cpu: halted")

// CPU is the architectural state of the functional interpreter.
type CPU struct {
	Regs  [8]uint32
	Flags x86.Flags
	PC    uint32
	Mem   *Memory

	Halted bool

	// StepCount counts executed instructions.
	StepCount uint64

	// decoded caches decoded instructions by PC. The model does not
	// support self-modifying code, so the cache never invalidates.
	decoded map[uint32]x86.Inst

	// eff is the per-step effect accumulator, owned by the CPU so the
	// hot stepping paths reuse one buffer instead of allocating per
	// instruction. Step copies out of it before returning.
	eff stepEffects
}

// New returns a CPU with zeroed registers over the given memory.
func New(mem *Memory) *CPU {
	return &CPU{Mem: mem, decoded: make(map[uint32]x86.Inst)}
}

// Reg returns the value of a GPR.
func (c *CPU) Reg(r x86.Reg) uint32 { return c.Regs[r] }

// SetReg writes a GPR.
func (c *CPU) SetReg(r x86.Reg, v uint32) { c.Regs[r] = v }

// effAddr computes the effective address of a memory reference.
func (c *CPU) effAddr(m x86.MemRef) uint32 {
	addr := uint32(m.Disp)
	if m.Base != x86.RegNone {
		addr += c.Regs[m.Base]
	}
	if m.Index != x86.RegNone {
		addr += c.Regs[m.Index] * uint32(m.Scale)
	}
	return addr
}

// stepEffects accumulates the trace-visible effects of one instruction.
type stepEffects struct {
	memOps []trace.MemOp
}

func (c *CPU) load(e *stepEffects, addr uint32) uint32 {
	v := c.Mem.Load32(addr)
	e.memOps = append(e.memOps, trace.MemOp{Addr: addr, Data: v})
	return v
}

func (c *CPU) store(e *stepEffects, addr uint32, v uint32) {
	c.Mem.Store32(addr, v)
	e.memOps = append(e.memOps, trace.MemOp{Addr: addr, Data: v, IsStore: true})
}

// readOperand fetches the value of a reg/imm/mem operand.
func (c *CPU) readOperand(e *stepEffects, o x86.Operand) uint32 {
	switch o.Kind {
	case x86.KindReg:
		return c.Regs[o.Reg]
	case x86.KindImm:
		return uint32(o.Imm)
	case x86.KindMem:
		return c.load(e, c.effAddr(o.Mem))
	}
	panic("cpu: bad operand")
}

// writeOperand writes a value to a reg/mem operand.
func (c *CPU) writeOperand(e *stepEffects, o x86.Operand, v uint32) {
	switch o.Kind {
	case x86.KindReg:
		c.Regs[o.Reg] = v
	case x86.KindMem:
		c.store(e, c.effAddr(o.Mem), v)
	default:
		panic("cpu: write to bad operand")
	}
}

// Flag computation. Written against the documented reproduction spec,
// independently of internal/uop.

func even8(v uint32) bool { return bits.OnesCount32(v&0xFF)&1 == 0 }

func (c *CPU) setSZP(r uint32) {
	c.Flags &^= x86.FlagZ | x86.FlagS | x86.FlagP
	if r == 0 {
		c.Flags |= x86.FlagZ
	}
	if int32(r) < 0 {
		c.Flags |= x86.FlagS
	}
	if even8(r) {
		c.Flags |= x86.FlagP
	}
}

func (c *CPU) flagsAdd(a, b, carry uint32) uint32 {
	sum := uint64(a) + uint64(b) + uint64(carry)
	r := uint32(sum)
	c.Flags = 0
	if sum > 0xFFFFFFFF {
		c.Flags |= x86.FlagC
	}
	// Signed overflow: operands agree in sign, result disagrees.
	if int32(a) >= 0 == (int32(b) >= 0) && (int32(a) >= 0) != (int32(r) >= 0) {
		c.Flags |= x86.FlagO
	}
	c.setSZP(r)
	return r
}

func (c *CPU) flagsSub(a, b, borrow uint32) uint32 {
	diff := uint64(a) - uint64(b) - uint64(borrow)
	r := uint32(diff)
	c.Flags = 0
	if diff > 0xFFFFFFFF { // wrapped: borrow out
		c.Flags |= x86.FlagC
	}
	if (int32(a) >= 0) != (int32(b) >= 0) && (int32(a) >= 0) != (int32(r) >= 0) {
		c.Flags |= x86.FlagO
	}
	c.setSZP(r)
	return r
}

func (c *CPU) flagsLogic(r uint32) uint32 {
	c.Flags = 0
	c.setSZP(r)
	return r
}

// stepExec decodes and executes one instruction at PC, accumulating its
// memory effects in c.eff. On success it advances PC and StepCount and
// returns the decoded instruction and the dynamic successor; on error
// the architectural position is unchanged.
func (c *CPU) stepExec() (x86.Inst, uint32, error) {
	in, ok := c.decoded[c.PC]
	if !ok {
		code := c.Mem.ReadBytes(c.PC, 15)
		var err error
		in, err = x86.Decode(code)
		if err != nil {
			return in, 0, fmt.Errorf("cpu: at %#x: %w", c.PC, err)
		}
		c.decoded[c.PC] = in
	}

	c.eff.memOps = c.eff.memOps[:0]
	nextPC := c.PC + uint32(in.Len)
	if err := c.exec(in, &c.eff, &nextPC); err != nil {
		return in, 0, fmt.Errorf("cpu: at %#x (%s): %w", c.PC, in, err)
	}
	c.PC = nextPC
	c.StepCount++
	return in, nextPC, nil
}

// Step decodes and executes one instruction at PC, returning its trace
// record. Once halted, Step returns ErrHalted.
func (c *CPU) Step() (trace.Record, error) {
	if c.Halted {
		return trace.Record{}, ErrHalted
	}
	pc := c.PC
	before := c.Regs
	flagsBefore := c.Flags
	in, nextPC, err := c.stepExec()
	if err != nil {
		return trace.Record{}, err
	}

	rec := trace.Record{PC: pc, Len: uint8(in.Len), NextPC: nextPC}
	if n := len(c.eff.memOps); n > 0 {
		rec.MemOps = make([]trace.MemOp, n)
		copy(rec.MemOps, c.eff.memOps)
	}
	for r := uint8(0); r < 8; r++ {
		if c.Regs[r] != before[r] {
			rec.SetReg(r, c.Regs[r])
		}
	}
	if c.Flags != flagsBefore {
		rec.SetFlagsChanged()
		rec.Flags = uint32(c.Flags)
	}
	return rec, nil
}

// StepAddrs executes one instruction like Step but reports only the
// memory addresses it touched, appended to addrs, plus the dynamic
// successor PC. It is the allocation-free fast path for the timing
// model's correct-path stream, which needs no register/value trace.
func (c *CPU) StepAddrs(addrs []uint32) ([]uint32, uint32, error) {
	if c.Halted {
		return addrs, 0, ErrHalted
	}
	_, nextPC, err := c.stepExec()
	if err != nil {
		return addrs, 0, err
	}
	for i := range c.eff.memOps {
		addrs = append(addrs, c.eff.memOps[i].Addr)
	}
	return addrs, nextPC, nil
}

const wordSize = 4

func (c *CPU) push(e *stepEffects, v uint32) {
	c.store(e, c.Regs[x86.ESP]-wordSize, v)
	c.Regs[x86.ESP] -= wordSize
}

func (c *CPU) pop(e *stepEffects) uint32 {
	v := c.load(e, c.Regs[x86.ESP])
	c.Regs[x86.ESP] += wordSize
	return v
}

func (c *CPU) exec(in x86.Inst, e *stepEffects, nextPC *uint32) error {
	switch in.Op {
	case x86.OpNOP:
	case x86.OpHLT:
		c.Halted = true

	case x86.OpMOV:
		c.writeOperand(e, in.Dst, c.readOperand(e, in.Src))
	case x86.OpLEA:
		c.Regs[in.Dst.Reg] = c.effAddr(in.Src.Mem)
	case x86.OpXCHG:
		a := c.readOperand(e, in.Dst)
		b := c.Regs[in.Src.Reg]
		c.writeOperand(e, in.Dst, b)
		c.Regs[in.Src.Reg] = a
	case x86.OpCMOV:
		v := c.readOperand(e, in.Src)
		if in.Cond.Eval(c.Flags) {
			c.Regs[in.Dst.Reg] = v
		}

	case x86.OpADD:
		a, b := c.readOperand(e, in.Dst), c.readOperand(e, in.Src)
		c.writeOperand(e, in.Dst, c.flagsAdd(a, b, 0))
	case x86.OpADC:
		a, b := c.readOperand(e, in.Dst), c.readOperand(e, in.Src)
		carry := uint32(0)
		if c.Flags&x86.FlagC != 0 {
			carry = 1
		}
		c.writeOperand(e, in.Dst, c.flagsAdd(a, b, carry))
	case x86.OpSUB:
		a, b := c.readOperand(e, in.Dst), c.readOperand(e, in.Src)
		c.writeOperand(e, in.Dst, c.flagsSub(a, b, 0))
	case x86.OpSBB:
		a, b := c.readOperand(e, in.Dst), c.readOperand(e, in.Src)
		borrow := uint32(0)
		if c.Flags&x86.FlagC != 0 {
			borrow = 1
		}
		c.writeOperand(e, in.Dst, c.flagsSub(a, b, borrow))
	case x86.OpCMP:
		a, b := c.readOperand(e, in.Dst), c.readOperand(e, in.Src)
		c.flagsSub(a, b, 0)
	case x86.OpAND:
		a, b := c.readOperand(e, in.Dst), c.readOperand(e, in.Src)
		c.writeOperand(e, in.Dst, c.flagsLogic(a&b))
	case x86.OpTEST:
		a, b := c.readOperand(e, in.Dst), c.readOperand(e, in.Src)
		c.flagsLogic(a & b)
	case x86.OpOR:
		a, b := c.readOperand(e, in.Dst), c.readOperand(e, in.Src)
		c.writeOperand(e, in.Dst, c.flagsLogic(a|b))
	case x86.OpXOR:
		a, b := c.readOperand(e, in.Dst), c.readOperand(e, in.Src)
		c.writeOperand(e, in.Dst, c.flagsLogic(a^b))

	case x86.OpINC, x86.OpDEC:
		a := c.readOperand(e, in.Dst)
		savedCF := c.Flags & x86.FlagC
		var r uint32
		if in.Op == x86.OpINC {
			r = c.flagsAdd(a, 1, 0)
		} else {
			r = c.flagsSub(a, 1, 0)
		}
		c.Flags = (c.Flags &^ x86.FlagC) | savedCF
		c.writeOperand(e, in.Dst, r)
	case x86.OpNEG:
		a := c.readOperand(e, in.Dst)
		c.writeOperand(e, in.Dst, c.flagsSub(0, a, 0))
	case x86.OpNOT:
		a := c.readOperand(e, in.Dst)
		c.writeOperand(e, in.Dst, ^a) // NOT does not affect flags

	case x86.OpSHL, x86.OpSHR, x86.OpSAR:
		a := c.readOperand(e, in.Dst)
		n := c.readOperand(e, in.Src) & 31
		if n == 0 {
			// Count 0: result and flags unchanged; re-write for mem dst
			// symmetry with the micro-op flow (load+op+store still stores).
			c.writeOperand(e, in.Dst, a)
			break
		}
		var r uint32
		carry := false
		overflow := false
		switch in.Op {
		case x86.OpSHL:
			r = a << n
			carry = a&(1<<(32-n)) != 0
			overflow = (int32(r) < 0) != carry
		case x86.OpSHR:
			r = a >> n
			carry = a&(1<<(n-1)) != 0
			overflow = int32(a) < 0
		case x86.OpSAR:
			r = uint32(int32(a) >> n)
			carry = a&(1<<(n-1)) != 0
		}
		c.Flags = 0
		if carry {
			c.Flags |= x86.FlagC
		}
		if overflow {
			c.Flags |= x86.FlagO
		}
		c.setSZP(r)
		c.writeOperand(e, in.Dst, r)

	case x86.OpIMUL:
		// Per the reproduction spec, multiplies leave flags unchanged.
		switch {
		case in.Src.Kind == x86.KindNone:
			v := c.readOperand(e, in.Dst)
			p := int64(int32(c.Regs[x86.EAX])) * int64(int32(v))
			c.Regs[x86.EAX] = uint32(p)
			c.Regs[x86.EDX] = uint32(uint64(p) >> 32)
		case in.Imm3 != 0:
			v := c.readOperand(e, in.Src)
			c.Regs[in.Dst.Reg] = v * uint32(in.Imm3)
		default:
			v := c.readOperand(e, in.Src)
			c.Regs[in.Dst.Reg] *= v
		}
	case x86.OpMUL:
		v := c.readOperand(e, in.Dst)
		hi, lo := bits.Mul32(c.Regs[x86.EAX], v)
		c.Regs[x86.EAX] = lo
		c.Regs[x86.EDX] = hi
	case x86.OpDIV:
		v := c.readOperand(e, in.Dst)
		if v == 0 {
			return errors.New("divide by zero")
		}
		a := c.Regs[x86.EAX]
		c.Regs[x86.EAX] = a / v
		c.Regs[x86.EDX] = a % v
	case x86.OpIDIV:
		v := c.readOperand(e, in.Dst)
		if v == 0 {
			return errors.New("divide by zero")
		}
		a := int32(c.Regs[x86.EAX])
		c.Regs[x86.EAX] = uint32(a / int32(v))
		c.Regs[x86.EDX] = uint32(a % int32(v))
	case x86.OpCDQ:
		c.Regs[x86.EDX] = uint32(int32(c.Regs[x86.EAX]) >> 31)

	case x86.OpPUSH:
		c.push(e, c.readOperand(e, in.Dst))
	case x86.OpPOP:
		v := c.pop(e)
		if in.Dst.Kind == x86.KindReg && in.Dst.Reg == x86.ESP {
			c.Regs[x86.ESP] = v
		} else {
			c.writeOperand(e, in.Dst, v)
		}
	case x86.OpLEAVE:
		c.Regs[x86.ESP] = c.Regs[x86.EBP]
		c.Regs[x86.EBP] = c.pop(e)

	case x86.OpJMP:
		if in.Dst.Kind == x86.KindImm {
			*nextPC = in.TargetPC(c.PC)
		} else {
			*nextPC = c.readOperand(e, in.Dst)
		}
	case x86.OpJCC:
		if in.Cond.Eval(c.Flags) {
			*nextPC = in.TargetPC(c.PC)
		}
	case x86.OpCALL:
		c.push(e, c.PC+uint32(in.Len))
		if in.Dst.Kind == x86.KindImm {
			*nextPC = in.TargetPC(c.PC)
		} else {
			*nextPC = c.readOperand(e, in.Dst)
		}
	case x86.OpRET:
		*nextPC = c.pop(e)
		if in.Dst.Kind == x86.KindImm {
			c.Regs[x86.ESP] += uint32(in.Dst.Imm)
		}

	default:
		return fmt.Errorf("unsupported op %s", in.Op)
	}
	return nil
}

// Run executes instructions until HLT or limit steps, appending a record
// per instruction to the returned slice.
func (c *CPU) Run(limit int) ([]trace.Record, error) {
	records := make([]trace.Record, 0, 1024)
	for i := 0; i < limit && !c.Halted; i++ {
		rec, err := c.Step()
		if err != nil {
			return records, err
		}
		records = append(records, rec)
	}
	return records, nil
}
