package cpu

import (
	"testing"

	"repro/internal/x86"
)

// assemble encodes a program and loads it at base, returning a ready CPU.
func assemble(t *testing.T, base uint32, prog []x86.Inst) *CPU {
	t.Helper()
	mem := NewMemory()
	addr := base
	for _, in := range prog {
		enc, err := x86.Encode(in)
		if err != nil {
			t.Fatalf("encode %s: %v", in, err)
		}
		mem.WriteBytes(addr, enc)
		addr += uint32(len(enc))
	}
	c := New(mem)
	c.PC = base
	c.Regs[x86.ESP] = 0x0010_0000
	return c
}

func run(t *testing.T, c *CPU, limit int) {
	t.Helper()
	if _, err := c.Run(limit); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !c.Halted {
		t.Fatal("program did not halt")
	}
}

func TestMemorySparse(t *testing.T) {
	m := NewMemory()
	if m.Load32(0x1234) != 0 {
		t.Error("untouched memory not zero")
	}
	m.Store32(0x1000, 0xDEADBEEF)
	if m.Load32(0x1000) != 0xDEADBEEF {
		t.Error("store/load mismatch")
	}
	if m.LoadByte(0x1000) != 0xEF || m.LoadByte(0x1003) != 0xDE {
		t.Error("little-endian layout wrong")
	}
	// Page-crossing word.
	m.Store32(0x1FFE, 0x11223344)
	if m.Load32(0x1FFE) != 0x11223344 {
		t.Error("page-crossing access wrong")
	}
	// Unaligned.
	m.Store32(0x2001, 0xA5A5A5A5)
	if m.Load32(0x2001) != 0xA5A5A5A5 {
		t.Error("unaligned access wrong")
	}
}

func TestStraightLine(t *testing.T) {
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(10)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX), Src: x86.ImmOp(32)},
		{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EBX)},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	run(t, c, 100)
	if c.Regs[x86.EAX] != 42 {
		t.Errorf("EAX = %d, want 42", c.Regs[x86.EAX])
	}
}

func TestStackOps(t *testing.T) {
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(0x111)},
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX)},
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.ImmOp(0x222)},
		{Op: x86.OpPOP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)},
		{Op: x86.OpPOP, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX)},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	sp0 := c.Regs[x86.ESP]
	run(t, c, 100)
	if c.Regs[x86.EBX] != 0x222 || c.Regs[x86.ECX] != 0x111 {
		t.Errorf("popped %#x, %#x", c.Regs[x86.EBX], c.Regs[x86.ECX])
	}
	if c.Regs[x86.ESP] != sp0 {
		t.Errorf("ESP not balanced: %#x vs %#x", c.Regs[x86.ESP], sp0)
	}
}

// TestLoop runs a counted loop and checks both the result and the branch
// records.
func TestLoop(t *testing.T) {
	// ECX = 5; EAX = 0; loop: ADD EAX, ECX; DEC ECX; JNZ loop; HLT
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX), Src: x86.ImmOp(5)},
		{Op: x86.OpXOR, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EAX)},
		{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.ECX)}, // loop head at 0x1000+5+2
		{Op: x86.OpDEC, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX)},
		{Op: x86.OpJCC, Cond: x86.CondNE, Dst: x86.ImmOp(-6)}, // back to ADD (2+1+2 bytes... computed below)
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	// Fix the backward displacement: ADD(2) + DEC(1) + JCC(2) = 5 bytes back
	// from the end of JCC. The ImmOp(-6) above was a guess; re-assemble with
	// the exact value.
	c = assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX), Src: x86.ImmOp(5)},
		{Op: x86.OpXOR, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EAX)},
		{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.ECX)},
		{Op: x86.OpDEC, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX)},
		{Op: x86.OpJCC, Cond: x86.CondNE, Dst: x86.ImmOp(-5)},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	recs, err := c.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs[x86.EAX] != 5+4+3+2+1 {
		t.Errorf("EAX = %d, want 15", c.Regs[x86.EAX])
	}
	taken := 0
	for _, r := range recs {
		if r.Taken() {
			taken++
		}
	}
	if taken != 4 { // JNZ taken 4 times, falls through once
		t.Errorf("taken branches = %d, want 4", taken)
	}
}

func TestCallRet(t *testing.T) {
	// main: PUSH 7; CALL f; ADD ESP,4; HLT
	// f:    PUSH EBP; MOV EBP,ESP; MOV EAX,[EBP+8]; ADD EAX,1; POP EBP; RET
	main := []x86.Inst{
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.ImmOp(7)},
		{Op: x86.OpCALL, Cond: x86.CondNone, Dst: x86.ImmOp(0)}, // patched below
		{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.ESP), Src: x86.ImmOp(4)},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	}
	fn := []x86.Inst{
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP), Src: x86.RegOp(x86.ESP)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.Mem(x86.EBP, 8)},
		{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)},
		{Op: x86.OpPOP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP)},
		{Op: x86.OpRET, Cond: x86.CondNone},
	}
	// Lay out main at 0x1000, fn right after; compute CALL displacement.
	mainLen := 0
	for _, in := range main {
		enc, _ := x86.Encode(in)
		mainLen += len(enc)
	}
	// CALL is the second instruction: PUSH imm8 (2 bytes) + CALL (5 bytes).
	callEnd := uint32(0x1000 + 2 + 5)
	fnStart := uint32(0x1000 + mainLen)
	main[1].Dst = x86.ImmOp(int32(fnStart - callEnd))
	c := assemble(t, 0x1000, append(main, fn...))
	run(t, c, 100)
	if c.Regs[x86.EAX] != 8 {
		t.Errorf("EAX = %d, want 8", c.Regs[x86.EAX])
	}
}

func TestRecordContents(t *testing.T) {
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(0x55)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.Mem(x86.ESP, -8), Src: x86.RegOp(x86.EAX)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX), Src: x86.Mem(x86.ESP, -8)},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	sp := c.Regs[x86.ESP]
	recs, err := c.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records", len(recs))
	}
	// Record 0: EAX changed to 0x55, no memops.
	found := false
	recs[0].ChangedRegs(func(reg uint8, val uint32) {
		if reg == uint8(x86.EAX) && val == 0x55 {
			found = true
		}
	})
	if !found || len(recs[0].MemOps) != 0 {
		t.Errorf("record 0 wrong: %+v", recs[0])
	}
	// Record 1: store of 0x55 at ESP-8.
	if len(recs[1].MemOps) != 1 || !recs[1].MemOps[0].IsStore ||
		recs[1].MemOps[0].Addr != sp-8 || recs[1].MemOps[0].Data != 0x55 {
		t.Errorf("record 1 memops wrong: %+v", recs[1].MemOps)
	}
	// Record 2: load of the same value.
	if len(recs[2].MemOps) != 1 || recs[2].MemOps[0].IsStore ||
		recs[2].MemOps[0].Data != 0x55 {
		t.Errorf("record 2 memops wrong: %+v", recs[2].MemOps)
	}
	if c.Regs[x86.EBX] != 0x55 {
		t.Errorf("EBX = %#x", c.Regs[x86.EBX])
	}
}

func TestFlagBehaviour(t *testing.T) {
	// INC must preserve CF; CMP sets borrow.
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)},
		{Op: x86.OpCMP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(2)}, // sets CF
		{Op: x86.OpINC, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX)},                    // must keep CF
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	run(t, c, 100)
	if c.Flags&x86.FlagC == 0 {
		t.Error("INC clobbered CF")
	}
	if c.Regs[x86.EAX] != 2 {
		t.Errorf("EAX = %d", c.Regs[x86.EAX])
	}
}

func TestDivIdiom(t *testing.T) {
	// The compiler idiom: XOR EDX,EDX; DIV EBX and CDQ; IDIV EBX.
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(17)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX), Src: x86.ImmOp(5)},
		{Op: x86.OpXOR, Cond: x86.CondNone, Dst: x86.RegOp(x86.EDX), Src: x86.RegOp(x86.EDX)},
		{Op: x86.OpDIV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	run(t, c, 100)
	if c.Regs[x86.EAX] != 3 || c.Regs[x86.EDX] != 2 {
		t.Errorf("DIV: q=%d r=%d, want 3,2", c.Regs[x86.EAX], c.Regs[x86.EDX])
	}
	c = assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(-17)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX), Src: x86.ImmOp(5)},
		{Op: x86.OpCDQ, Cond: x86.CondNone},
		{Op: x86.OpIDIV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	run(t, c, 100)
	if int32(c.Regs[x86.EAX]) != -3 || int32(c.Regs[x86.EDX]) != -2 {
		t.Errorf("IDIV: q=%d r=%d, want -3,-2", int32(c.Regs[x86.EAX]), int32(c.Regs[x86.EDX]))
	}
	if c.Regs[x86.EDX+0]&0 != 0 {
		t.Error("unreachable")
	}
}

func TestLeave(t *testing.T) {
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP), Src: x86.RegOp(x86.ESP)},
		{Op: x86.OpSUB, Cond: x86.CondNone, Dst: x86.RegOp(x86.ESP), Src: x86.ImmOp(0x20)},
		{Op: x86.OpLEAVE, Cond: x86.CondNone},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	c.Regs[x86.EBP] = 0xABCD
	sp0 := c.Regs[x86.ESP]
	run(t, c, 100)
	if c.Regs[x86.EBP] != 0xABCD {
		t.Errorf("EBP not restored: %#x", c.Regs[x86.EBP])
	}
	if c.Regs[x86.ESP] != sp0 {
		t.Errorf("ESP not restored: %#x vs %#x", c.Regs[x86.ESP], sp0)
	}
}

func TestHaltedStep(t *testing.T) {
	c := assemble(t, 0x1000, []x86.Inst{{Op: x86.OpHLT, Cond: x86.CondNone}})
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(); err != ErrHalted {
		t.Errorf("second step after HLT: %v", err)
	}
}
