package cpu

import (
	"testing"

	"repro/internal/x86"
)

func TestShiftByCL(t *testing.T) {
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX), Src: x86.ImmOp(36)}, // masked to 4
		{Op: x86.OpSHL, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.ECX)},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	run(t, c, 100)
	if c.Regs[x86.EAX] != 16 {
		t.Errorf("SHL by CL=36 (masked 4): %d, want 16", c.Regs[x86.EAX])
	}
}

func TestCMOV(t *testing.T) {
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX), Src: x86.ImmOp(99)},
		{Op: x86.OpCMP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)},
		{Op: x86.OpCMOV, Cond: x86.CondE, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EBX)},
		{Op: x86.OpCMOV, Cond: x86.CondNE, Dst: x86.RegOp(x86.EBX), Src: x86.RegOp(x86.EAX)},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	run(t, c, 100)
	if c.Regs[x86.EAX] != 99 {
		t.Errorf("taken CMOV: EAX = %d, want 99", c.Regs[x86.EAX])
	}
	if c.Regs[x86.EBX] != 99 {
		t.Errorf("not-taken CMOV clobbered EBX: %d", c.Regs[x86.EBX])
	}
}

func TestXCHGMem(t *testing.T) {
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(0x11)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.Mem(x86.ESP, -8), Src: x86.ImmOp(0x22)},
		{Op: x86.OpXCHG, Cond: x86.CondNone, Dst: x86.Mem(x86.ESP, -8), Src: x86.RegOp(x86.EAX)},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	sp := c.Regs[x86.ESP]
	run(t, c, 100)
	if c.Regs[x86.EAX] != 0x22 {
		t.Errorf("EAX = %#x, want 0x22", c.Regs[x86.EAX])
	}
	if got := c.Mem.Load32(sp - 8); got != 0x11 {
		t.Errorf("mem = %#x, want 0x11", got)
	}
}

func TestIMULForms(t *testing.T) {
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(-3)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX), Src: x86.ImmOp(5)},
		{Op: x86.OpIMUL, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)}, // EDX:EAX = EAX*EBX
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	run(t, c, 100)
	if int32(c.Regs[x86.EAX]) != -15 || int32(c.Regs[x86.EDX]) != -1 {
		t.Errorf("one-op IMUL: EAX=%d EDX=%d", int32(c.Regs[x86.EAX]), int32(c.Regs[x86.EDX]))
	}
	c = assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX), Src: x86.ImmOp(6)},
		{Op: x86.OpIMUL, Cond: x86.CondNone, Dst: x86.RegOp(x86.EDX), Src: x86.RegOp(x86.ECX), Imm3: 7},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	run(t, c, 100)
	if c.Regs[x86.EDX] != 42 {
		t.Errorf("three-op IMUL: %d, want 42", c.Regs[x86.EDX])
	}
}

func TestIndirectJmpAndCall(t *testing.T) {
	// MOV EAX, target; JMP EAX — target holds HLT.
	target := uint32(0x1000 + 5 + 2 + 1) // MOV(5) + JMP(2) + INC(1)
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(int32(target))},
		{Op: x86.OpJMP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX)},
		{Op: x86.OpINC, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)}, // skipped
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	run(t, c, 100)
	if c.Regs[x86.EBX] != 0 {
		t.Error("indirect JMP fell through")
	}
}

func TestRetImm(t *testing.T) {
	// Simulate CALL by hand: push return addr, then RET 8 pops and drops
	// two argument words.
	// Layout: three imm32 pushes (5 bytes each) + RET imm16 (3 bytes)
	// put the HLT at 0x1000+18; the pushed return address targets it.
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.ImmOp(0x111)},       // arg2
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.ImmOp(0x222)},       // arg1
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.ImmOp(0x1000 + 18)}, // return address
		{Op: x86.OpRET, Cond: x86.CondNone, Dst: x86.ImmOp(8)},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	sp0 := c.Regs[x86.ESP]
	run(t, c, 100)
	if c.Regs[x86.ESP] != sp0 {
		t.Errorf("RET 8 did not rebalance: ESP %#x vs %#x", c.Regs[x86.ESP], sp0)
	}
}

func TestNegNotMem(t *testing.T) {
	c := assemble(t, 0x1000, []x86.Inst{
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.Mem(x86.ESP, -4), Src: x86.ImmOp(5)},
		{Op: x86.OpNEG, Cond: x86.CondNone, Dst: x86.Mem(x86.ESP, -4)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.Mem(x86.ESP, -8), Src: x86.ImmOp(0)},
		{Op: x86.OpNOT, Cond: x86.CondNone, Dst: x86.Mem(x86.ESP, -8)},
		{Op: x86.OpHLT, Cond: x86.CondNone},
	})
	sp := c.Regs[x86.ESP]
	run(t, c, 100)
	if got := int32(c.Mem.Load32(sp - 4)); got != -5 {
		t.Errorf("NEG mem = %d", got)
	}
	if got := c.Mem.Load32(sp - 8); got != 0xFFFFFFFF {
		t.Errorf("NOT mem = %#x", got)
	}
}
