// Package cpu implements a functional IA-32 interpreter over sparse paged
// memory. It executes workload programs instruction by instruction and
// captures trace records (register deltas, flags, memory transactions) —
// the reproduction's stand-in for the paper's hardware trace capture.
//
// The interpreter is written independently of the micro-op evaluator
// (internal/uop) against the same documented semantics spec (DESIGN.md);
// the differential tests in internal/verify compare the two.
package cpu

import "encoding/binary"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]byte

// Memory is a sparse, byte-addressable 32-bit memory.
type Memory struct {
	pages map[uint32]*page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*page)}
}

func (m *Memory) pageFor(addr uint32, create bool) *page {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new(page)
		m.pages[pn] = p
	}
	return p
}

// LoadByte returns the byte at addr (zero if never written).
func (m *Memory) LoadByte(addr uint32) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte writes the byte at addr.
func (m *Memory) StoreByte(addr uint32, v byte) {
	m.pageFor(addr, true)[addr&pageMask] = v
}

// Load32 returns the little-endian word at addr; unaligned and
// page-crossing accesses are supported.
func (m *Memory) Load32(addr uint32) uint32 {
	if addr&pageMask <= pageSize-4 {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		off := addr & pageMask
		return binary.LittleEndian.Uint32(p[off : off+4])
	}
	var b [4]byte
	for i := range b {
		b[i] = m.LoadByte(addr + uint32(i))
	}
	return binary.LittleEndian.Uint32(b[:])
}

// Store32 writes the little-endian word at addr.
func (m *Memory) Store32(addr uint32, v uint32) {
	if addr&pageMask <= pageSize-4 {
		p := m.pageFor(addr, true)
		off := addr & pageMask
		binary.LittleEndian.PutUint32(p[off:off+4], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	for i := range b {
		m.StoreByte(addr+uint32(i), b[i])
	}
}

// WriteBytes copies a byte slice into memory at addr (used to load code
// images).
func (m *Memory) WriteBytes(addr uint32, data []byte) {
	for i, b := range data {
		m.StoreByte(addr+uint32(i), b)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint32(i))
	}
	return out
}
