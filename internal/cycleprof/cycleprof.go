// Package cycleprof is the guest-cycle profiler: it attributes every
// fetch-stage cycle the pipeline charges (the paper's Figure 7/8 bins)
// to the guest PC responsible, joins the per-PC table against the loop
// structure internal/reuse detects, and exports the result as tables,
// pprof protobuf, and flame-text.
//
// Attribution is conservation-exact by construction: the engine's only
// two cycle-charging paths (Engine.tick and Engine.stallUntil) invoke
// the probe, so the per-PC × per-bin sums equal Stats.Cycles and
// Stats.Bins exactly over the attached window — there is no separate
// bookkeeping that could drift. The conservation test in internal/sim
// pins this for every profile and optimizer subset.
//
// The responsible PC is the fetch-group leader: the instruction heading
// an ICache fetch group or a frame dispatch group owns the group's
// switch-turnaround, window-stall, miss, and fetch cycles, while
// mispredict-recovery and assert-recovery stalls are re-attributed to
// the branch (or aborting frame head) that caused them. That is the
// same "who do I blame" convention hardware cycle accounting uses, and
// it keeps the join against loop intervals meaningful.
package cycleprof

import (
	"sort"
	"sync"

	"repro/internal/pipeline"
	"repro/internal/reuse"
)

// pcCell is the per-guest-PC accumulation cell.
type pcCell struct {
	bins    [pipeline.NumBins]uint64
	cycles  uint64
	x86     uint64 // retired x86 instructions at this PC
	uops    uint64 // decoded (baseline) micro-ops at this PC
	covered uint64 // baseline micro-ops retired through frames
}

func (c *pcCell) add(o *pcCell) {
	for i := range c.bins {
		c.bins[i] += o.bins[i]
	}
	c.cycles += o.cycles
	c.x86 += o.x86
	c.uops += o.uops
	c.covered += o.covered
}

// Detector is the per-engine streaming profiler. It implements both
// pipeline.CycleProbe (per-PC cycle attribution) and, via the embedded
// reuse.Detector, pipeline.ReuseProbe (loop structure plus per-PC
// retired-work counts for IPC and coverage). Single-goroutine, like the
// engine that drives it.
type Detector struct {
	reuse.Detector
	pcs   map[uint32]*pcCell
	order []uint32 // insertion order, for deterministic folds
}

// NewDetector returns an empty detector.
func NewDetector() *Detector {
	return &Detector{Detector: *reuse.NewDetector(), pcs: make(map[uint32]*pcCell)}
}

func (d *Detector) cell(pc uint32) *pcCell {
	c := d.pcs[pc]
	if c == nil {
		c = &pcCell{}
		d.pcs[pc] = c
		d.order = append(d.order, pc)
	}
	return c
}

// CycleCharge implements pipeline.CycleProbe.
func (d *Detector) CycleCharge(pc uint32, bin pipeline.Bin, n uint64) {
	c := d.cell(pc)
	c.bins[bin] += n
	c.cycles += n
}

// ReuseSlot feeds one retired instruction: the embedded loop detector
// maintains its loop stack, and the per-PC cell counts retired work so
// loop rollups can report IPC and frame coverage.
func (d *Detector) ReuseSlot(s pipeline.Slot, fromFrame bool, uopsExecuted int) {
	d.Detector.ReuseSlot(s, fromFrame, uopsExecuted)
	c := d.cell(s.PC)
	c.x86++
	n := uint64(len(s.UOps))
	c.uops += n
	if fromFrame {
		c.covered += n
	}
}

// pcKey identifies a PC across traces (traces are independent address
// spaces, so the same PC in two traces is two different locations).
type pcKey struct {
	trace int
	pc    uint32
}

// Collector aggregates per-engine detectors into one workload profile.
// Like reuse.Collector it is handed to the simulation via sim.Options
// and attached per engine after warmup; each trace gets its own Probe
// (single-goroutine, like the engine), and Close folds the probe's
// tables in under the collector's lock.
type Collector struct {
	mu    sync.Mutex
	pcs   map[pcKey]*pcCell
	order []pcKey
	loops []reuse.Loop
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{pcs: make(map[pcKey]*pcCell)} }

// Probe is the per-engine observer: a Detector plus the fold-back link.
type Probe struct {
	Detector
	c     *Collector
	trace int
}

// Attach returns a fresh probe for one engine run over the given trace
// index. Close it once the run finishes.
func (c *Collector) Attach(trace int) *Probe {
	return &Probe{Detector: *NewDetector(), c: c, trace: trace}
}

// Close folds the probe's tables into its collector. Idempotent calls
// would double-count; call exactly once, after the engine's last run.
func (p *Probe) Close() {
	if p.c == nil {
		return
	}
	c := p.c
	p.c = nil
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, pc := range p.order {
		k := pcKey{trace: p.trace, pc: pc}
		cell := c.pcs[k]
		if cell == nil {
			cell = &pcCell{}
			c.pcs[k] = cell
			c.order = append(c.order, k)
		}
		cell.add(p.pcs[pc])
	}
	for _, l := range p.Loops() {
		l.Trace = p.trace
		c.loops = append(c.loops, l)
	}
}

// PCStat is one guest PC's share of the measured window.
type PCStat struct {
	Trace  int    `json:"trace"`
	PC     uint32 `json:"pc"`
	Cycles uint64 `json:"cycles"`
	// Bins splits Cycles by fetch bin, indexed by pipeline.Bin.
	Bins [pipeline.NumBins]uint64 `json:"bins"`
	// X86/UOps/Covered are the retired work observed at this PC (zero
	// for PCs that only absorbed charge, e.g. a frame head blamed for a
	// recovery stall after divergence).
	X86     uint64 `json:"x86,omitempty"`
	UOps    uint64 `json:"uops,omitempty"`
	Covered uint64 `json:"covered,omitempty"`
}

// LoopCycles is a detected loop joined with the cycle table: every
// per-PC cell whose PC falls inside the loop's body interval
// [Header, Tail] in the same trace rolls up here. Nested loops overlap
// by design — an outer loop's rollup includes its inner loops, the same
// inclusive semantics a pprof call tree gives a non-leaf frame.
type LoopCycles struct {
	Trace  int     `json:"trace"`
	Header uint32  `json:"header"`
	Tail   uint32  `json:"tail"`
	Nest   int     `json:"nest"`
	Trips  float64 `json:"trips"`
	Cycles uint64  `json:"cycles"`
	// Bins splits Cycles by fetch bin, indexed by pipeline.Bin.
	Bins    [pipeline.NumBins]uint64 `json:"bins"`
	X86     uint64                   `json:"x86"`
	UOps    uint64                   `json:"uops"`
	Covered uint64                   `json:"covered"`
}

// IPC is the loop's retired x86 instructions per attributed cycle.
func (l *LoopCycles) IPC() float64 {
	if l.Cycles == 0 {
		return 0
	}
	return float64(l.X86) / float64(l.Cycles)
}

// BinFrac is the fraction of the loop's cycles charged to bin b.
func (l *LoopCycles) BinFrac(b pipeline.Bin) float64 {
	if l.Cycles == 0 {
		return 0
	}
	return float64(l.Bins[b]) / float64(l.Cycles)
}

// CoverFrac is the fraction of the loop's baseline micro-ops retired
// through frames (frame coverage of the loop body).
func (l *LoopCycles) CoverFrac() float64 {
	if l.UOps == 0 {
		return 0
	}
	return float64(l.Covered) / float64(l.UOps)
}

// Report is one workload's guest-cycle profile: totals, the full per-PC
// table, and the loop-joined rollups.
type Report struct {
	// Cycles and Bins are the attributed totals; the conservation
	// invariant makes them equal the measured window's Stats.Cycles and
	// Stats.Bins exactly.
	Cycles uint64                   `json:"cycles"`
	Bins   [pipeline.NumBins]uint64 `json:"bins"`
	X86    uint64                   `json:"x86"`
	UOps   uint64                   `json:"uops"`
	// PCs is the full attribution table, sorted by (trace, pc) for
	// deterministic output.
	PCs []PCStat `json:"pcs"`
	// Loops is sorted by cycles descending (heaviest hotspot first).
	Loops []LoopCycles `json:"loops,omitempty"`
}

// BinFrac is the fraction of all cycles charged to bin b.
func (r *Report) BinFrac(b pipeline.Bin) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Bins[b]) / float64(r.Cycles)
}

// TopPCs returns the n heaviest PCs by cycles (ties broken by trace
// then PC, so the order is deterministic).
func (r *Report) TopPCs(n int) []PCStat {
	top := make([]PCStat, len(r.PCs))
	copy(top, r.PCs)
	sort.SliceStable(top, func(i, j int) bool { return top[i].Cycles > top[j].Cycles })
	if len(top) > n {
		top = top[:n]
	}
	return top
}

// Snapshot assembles the report accumulated so far: the per-PC table in
// (trace, pc) order and the loop join.
func (c *Collector) Snapshot() Report {
	c.mu.Lock()
	defer c.mu.Unlock()

	keys := make([]pcKey, len(c.order))
	copy(keys, c.order)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].trace != keys[j].trace {
			return keys[i].trace < keys[j].trace
		}
		return keys[i].pc < keys[j].pc
	})

	r := Report{PCs: make([]PCStat, 0, len(keys))}
	for _, k := range keys {
		cell := c.pcs[k]
		r.PCs = append(r.PCs, PCStat{
			Trace: k.trace, PC: k.pc,
			Cycles: cell.cycles, Bins: cell.bins,
			X86: cell.x86, UOps: cell.uops, Covered: cell.covered,
		})
		r.Cycles += cell.cycles
		r.X86 += cell.x86
		r.UOps += cell.uops
		for i := range cell.bins {
			r.Bins[i] += cell.bins[i]
		}
	}

	// Loop join: PCs are sorted per trace, so each loop's body interval
	// is a contiguous slice found by binary search.
	r.Loops = make([]LoopCycles, 0, len(c.loops))
	for _, l := range c.loops {
		lc := LoopCycles{
			Trace: l.Trace, Header: l.Header, Tail: l.Tail,
			Nest: l.Nest, Trips: l.TripCount(),
		}
		lo := sort.Search(len(r.PCs), func(i int) bool {
			p := &r.PCs[i]
			return p.Trace > l.Trace || (p.Trace == l.Trace && p.PC >= l.Header)
		})
		for i := lo; i < len(r.PCs) && r.PCs[i].Trace == l.Trace && r.PCs[i].PC <= l.Tail; i++ {
			p := &r.PCs[i]
			lc.Cycles += p.Cycles
			for b := range p.Bins {
				lc.Bins[b] += p.Bins[b]
			}
			lc.X86 += p.X86
			lc.UOps += p.UOps
			lc.Covered += p.Covered
		}
		r.Loops = append(r.Loops, lc)
	}
	sort.SliceStable(r.Loops, func(i, j int) bool {
		if r.Loops[i].Cycles != r.Loops[j].Cycles {
			return r.Loops[i].Cycles > r.Loops[j].Cycles
		}
		if r.Loops[i].Trace != r.Loops[j].Trace {
			return r.Loops[i].Trace < r.Loops[j].Trace
		}
		return r.Loops[i].Header < r.Loops[j].Header
	})
	return r
}
