package cycleprof

import (
	"bytes"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/x86"
)

// slot fabricates a retired-instruction record: a 2-byte JCC at pc
// jumping to next (taken if next != pc+2).
func slot(pc, next uint32) pipeline.Slot {
	return pipeline.Slot{PC: pc, NextPC: next, Inst: x86.Inst{Op: x86.OpJCC, Len: 2}}
}

func TestCollectorFoldAndTotals(t *testing.T) {
	c := NewCollector()
	p0 := c.Attach(0)
	p0.CycleCharge(0x10, pipeline.BinICache, 3)
	p0.CycleCharge(0x10, pipeline.BinMispred, 5)
	p0.CycleCharge(0x20, pipeline.BinICache, 2)
	p0.Close()
	p1 := c.Attach(1)
	p1.CycleCharge(0x10, pipeline.BinFrame, 7)
	p1.Close()
	p1.Close() // idempotent: a second close must not double-count

	r := c.Snapshot()
	if r.Cycles != 17 {
		t.Fatalf("total cycles = %d, want 17", r.Cycles)
	}
	if r.Bins[pipeline.BinICache] != 5 || r.Bins[pipeline.BinMispred] != 5 || r.Bins[pipeline.BinFrame] != 7 {
		t.Fatalf("bin totals = %v", r.Bins)
	}
	if len(r.PCs) != 3 {
		t.Fatalf("PC rows = %d, want 3 (same PC in two traces stays distinct)", len(r.PCs))
	}
	// Sorted by (trace, pc).
	want := []struct {
		trace int
		pc    uint32
	}{{0, 0x10}, {0, 0x20}, {1, 0x10}}
	for i, w := range want {
		if r.PCs[i].Trace != w.trace || r.PCs[i].PC != w.pc {
			t.Fatalf("row %d = t%d:%#x, want t%d:%#x", i, r.PCs[i].Trace, r.PCs[i].PC, w.trace, w.pc)
		}
	}
	var sum uint64
	for i := range r.PCs {
		sum += r.PCs[i].Cycles
	}
	if sum != r.Cycles {
		t.Fatalf("per-PC sum %d != total %d", sum, r.Cycles)
	}
}

func TestLoopJoinInclusive(t *testing.T) {
	c := NewCollector()
	p := c.Attach(0)
	// Inner loop 0x20..0x28 nested in outer 0x10..0x30: two inner back
	// edges per outer iteration, two outer iterations.
	for outer := 0; outer < 2; outer++ {
		for inner := 0; inner < 2; inner++ {
			p.ReuseSlot(slot(0x28, 0x20), false, 1) // inner back edge
		}
		p.ReuseSlot(slot(0x30, 0x10), false, 1) // outer back edge
	}
	p.CycleCharge(0x24, pipeline.BinICache, 10) // inside both loops
	p.CycleCharge(0x12, pipeline.BinICache, 4)  // outer only
	p.CycleCharge(0x40, pipeline.BinICache, 1)  // outside both
	p.Close()

	r := c.Snapshot()
	if len(r.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(r.Loops))
	}
	byHeader := map[uint32]LoopCycles{}
	for _, l := range r.Loops {
		byHeader[l.Header] = l
	}
	outer, ok := byHeader[0x10]
	if !ok {
		t.Fatalf("no outer loop @0x10 in %+v", r.Loops)
	}
	inner, ok := byHeader[0x20]
	if !ok {
		t.Fatalf("no inner loop @0x20 in %+v", r.Loops)
	}
	// Inclusive semantics: the outer rollup contains the inner loop's
	// cycles; the stray PC at 0x40 lands in neither.
	if outer.Cycles != 14 {
		t.Fatalf("outer cycles = %d, want 14", outer.Cycles)
	}
	if inner.Cycles != 10 {
		t.Fatalf("inner cycles = %d, want 10", inner.Cycles)
	}
	// Heaviest loop first.
	if r.Loops[0].Header != 0x10 {
		t.Fatalf("loops not sorted by cycles desc: %+v", r.Loops)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	c := NewCollector()
	p := c.Attach(0)
	p.ReuseSlot(slot(0x28, 0x20), false, 1)
	p.CycleCharge(0x24, pipeline.BinICache, 100)
	p.CycleCharge(0x24, pipeline.BinMispred, 23)
	p.CycleCharge(0x50, pipeline.BinFrame, 7)
	p.Close()
	r := c.Snapshot()

	data, err := Profile([]NamedReport{{Name: "wl", Report: &r}})
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	samples, total, err := ProfileTotal(data)
	if err != nil {
		t.Fatalf("ProfileTotal: %v", err)
	}
	if total != r.Cycles {
		t.Fatalf("pprof total = %d, want %d (conservation at the export surface)", total, r.Cycles)
	}
	// One sample per nonzero (PC, bin) cell: 0x24 has two, 0x50 one,
	// and the back-edge PC 0x28 has none (retired work, no charge).
	if samples != 3 {
		t.Fatalf("samples = %d, want 3", samples)
	}

	// Deterministic output for identical input (map iteration must not
	// leak into the encoding).
	again, err := Profile([]NamedReport{{Name: "wl", Report: &r}})
	if err != nil {
		t.Fatalf("Profile again: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("profile encoding is not deterministic")
	}
}

func TestFlameText(t *testing.T) {
	c := NewCollector()
	p := c.Attach(0)
	p.ReuseSlot(slot(0x28, 0x20), false, 1) // loop 0x20..0x28
	p.CycleCharge(0x24, pipeline.BinICache, 9)
	p.CycleCharge(0x40, pipeline.BinStall, 2)
	p.Close()
	r := c.Snapshot()

	got := string(FlameText([]NamedReport{{Name: "wl", Report: &r}}))
	want := "wl;loop@t0:0x0020;t0:0x0024;icache 9\nwl;t0:0x0040;stall 2\n"
	if got != want {
		t.Fatalf("flame text:\n%q\nwant:\n%q", got, want)
	}
}

func TestReportHelpers(t *testing.T) {
	r := Report{Cycles: 10}
	r.Bins[pipeline.BinMispred] = 4
	if f := r.BinFrac(pipeline.BinMispred); f != 0.4 {
		t.Fatalf("BinFrac = %v, want 0.4", f)
	}
	l := LoopCycles{Cycles: 8, X86: 4, UOps: 10, Covered: 5}
	if l.IPC() != 0.5 {
		t.Fatalf("IPC = %v", l.IPC())
	}
	if l.CoverFrac() != 0.5 {
		t.Fatalf("CoverFrac = %v", l.CoverFrac())
	}
	r.PCs = []PCStat{
		{Trace: 0, PC: 1, Cycles: 1},
		{Trace: 0, PC: 2, Cycles: 9},
	}
	top := r.TopPCs(1)
	if len(top) != 1 || top[0].PC != 2 {
		t.Fatalf("TopPCs = %+v", top)
	}
}
