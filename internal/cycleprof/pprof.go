package cycleprof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"

	"repro/internal/pipeline"
)

// NamedReport tags a report with its workload name, so multi-workload
// exports (a replayd job profiles every requested workload) keep each
// sample attributable.
type NamedReport struct {
	Name   string
	Report *Report
}

// Profile encodes the reports as a gzipped pprof protobuf profile:
// one sample per (workload, PC, bin) cell with value = cycles, a "bin"
// string label, and a synthetic stack of
//
//	guest PC <- innermost loop <- ... <- outermost loop <- workload
//
// so `go tool pprof` renders guest hotspots as a call tree whose
// non-leaf frames are the detected loops. The protobuf is hand-encoded
// against the stable profile.proto field numbers — the repo takes no
// dependency on a protobuf runtime, same as its Chrome trace_event and
// Prometheus text encoders.
func Profile(reports []NamedReport) ([]byte, error) {
	b := newProfileBuilder()
	for _, nr := range reports {
		b.addReport(nr.Name, nr.Report)
	}
	raw := b.encode()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FlameText renders the reports as collapsed ("folded") stacks, one
// `frame;frame;...;frame cycles` line per sample — the format flame
// graph tools and speedscope ingest directly. Stack order is root
// first; the fetch bin is the leaf frame.
func FlameText(reports []NamedReport) []byte {
	var buf bytes.Buffer
	for _, nr := range reports {
		r := nr.Report
		for i := range r.PCs {
			p := &r.PCs[i]
			stack := loopStack(r, p.Trace, p.PC)
			for bin := 0; bin < int(pipeline.NumBins); bin++ {
				if p.Bins[bin] == 0 {
					continue
				}
				buf.WriteString(nr.Name)
				for j := len(stack) - 1; j >= 0; j-- {
					l := stack[j]
					fmt.Fprintf(&buf, ";loop@t%d:0x%04x", l.Trace, l.Header)
				}
				fmt.Fprintf(&buf, ";t%d:0x%04x;%s %d\n",
					p.Trace, p.PC, pipeline.Bin(bin), p.Bins[bin])
			}
		}
	}
	return buf.Bytes()
}

// loopStack returns the loops of the report containing (trace, pc),
// innermost first.
func loopStack(r *Report, trace int, pc uint32) []LoopCycles {
	var out []LoopCycles
	for i := range r.Loops {
		l := &r.Loops[i]
		if l.Trace == trace && pc >= l.Header && pc <= l.Tail {
			out = append(out, *l)
		}
	}
	// Innermost = smallest body interval; ties broken by later header.
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i].Tail-out[i].Header, out[j].Tail-out[j].Header
		if si != sj {
			return si < sj
		}
		return out[i].Header > out[j].Header
	})
	return out
}

// ProfileTotal decodes a gzipped pprof profile and returns its sample
// count and the sum of all sample values. Tests and smoke checks use it
// to assert cycle conservation at the export surface (total sample
// value == measured-window cycles) without a protobuf dependency.
func ProfileTotal(data []byte) (samples int, total uint64, err error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return 0, 0, fmt.Errorf("pprof gzip: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return 0, 0, fmt.Errorf("pprof gzip body: %w", err)
	}
	err = walkFields(raw, func(field, wire int, v uint64, body []byte) error {
		if field != profSample || wire != 2 {
			return nil
		}
		samples++
		return walkFields(body, func(field, wire int, v uint64, body []byte) error {
			if field != sampleValue {
				return nil
			}
			switch wire {
			case 0:
				total += v
			case 2: // packed repeated
				for len(body) > 0 {
					x, n := uvarint(body)
					if n <= 0 {
						return fmt.Errorf("bad packed sample value")
					}
					total += x
					body = body[n:]
				}
			}
			return nil
		})
	})
	return samples, total, err
}

// walkFields iterates a protobuf message's top-level fields. For wire
// type 0 fn receives the varint value; for wire type 2 the field body.
func walkFields(b []byte, fn func(field, wire int, v uint64, body []byte) error) error {
	for len(b) > 0 {
		tag, n := uvarint(b)
		if n <= 0 {
			return fmt.Errorf("bad field tag")
		}
		b = b[n:]
		field, wire := int(tag>>3), int(tag&7)
		var v uint64
		var body []byte
		switch wire {
		case 0:
			v, n = uvarint(b)
			if n <= 0 {
				return fmt.Errorf("bad varint in field %d", field)
			}
			b = b[n:]
		case 1:
			if len(b) < 8 {
				return fmt.Errorf("short fixed64 in field %d", field)
			}
			b = b[8:]
		case 2:
			l, n := uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				return fmt.Errorf("bad length in field %d", field)
			}
			body = b[n : n+int(l)]
			b = b[n+int(l):]
		case 5:
			if len(b) < 4 {
				return fmt.Errorf("short fixed32 in field %d", field)
			}
			b = b[4:]
		default:
			return fmt.Errorf("unsupported wire type %d in field %d", wire, field)
		}
		if err := fn(field, wire, v, body); err != nil {
			return err
		}
	}
	return nil
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// profile.proto field numbers (the format is stable; see
// github.com/google/pprof/proto/profile.proto).
const (
	profSampleType   = 1
	profSample       = 2
	profMapping      = 3
	profLocation     = 4
	profFunction     = 5
	profStringTable  = 6
	profPeriodType   = 11
	profPeriod       = 12
	valueTypeType    = 1
	valueTypeUnit    = 2
	sampleLocationID = 1
	sampleValue      = 2
	sampleLabel      = 3
	labelKey         = 1
	labelStr         = 2
	mappingID        = 1
	mappingStart     = 2
	mappingLimit     = 3
	mappingFilename  = 5
	mappingHasFuncs  = 7
	locationID       = 1
	locationMapping  = 2
	locationAddress  = 3
	locationLine     = 4
	lineFunctionID   = 1
	functionID       = 1
	functionName     = 2
	functionSysName  = 3
	functionFilename = 4
)

// pbuf is a minimal protobuf wire-format writer.
type pbuf struct{ b []byte }

func (p *pbuf) uvarint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) tag(field, wire int) { p.uvarint(uint64(field)<<3 | uint64(wire)) }

// varint emits a varint-typed field (wire type 0).
func (p *pbuf) varint(field int, v uint64) {
	if v == 0 {
		return // proto3 default, omitted
	}
	p.tag(field, 0)
	p.uvarint(v)
}

// bytes emits a length-delimited field (wire type 2).
func (p *pbuf) bytes(field int, b []byte) {
	p.tag(field, 2)
	p.uvarint(uint64(len(b)))
	p.b = append(p.b, b...)
}

type profileBuilder struct {
	strings map[string]uint64
	strtab  []string

	funcs     map[string]uint64 // frame name -> function id
	funcNames []string

	locs     map[string]uint64 // frame name -> location id
	locAddrs []uint64          // by location id - 1
	locFuncs []uint64          // by location id - 1

	samples []sampleRec
}

type sampleRec struct {
	locs   []uint64 // leaf first
	value  uint64
	labels [][2]uint64 // (key idx, str idx) pairs
}

func newProfileBuilder() *profileBuilder {
	b := &profileBuilder{
		strings: make(map[string]uint64),
		funcs:   make(map[string]uint64),
		locs:    make(map[string]uint64),
	}
	b.str("") // index 0 must be the empty string
	return b
}

func (b *profileBuilder) str(s string) uint64 {
	if i, ok := b.strings[s]; ok {
		return i
	}
	i := uint64(len(b.strtab))
	b.strings[s] = i
	b.strtab = append(b.strtab, s)
	return i
}

// loc interns a synthetic frame, returning its location id.
func (b *profileBuilder) loc(name string, addr uint64) uint64 {
	if id, ok := b.locs[name]; ok {
		return id
	}
	fid, ok := b.funcs[name]
	if !ok {
		fid = uint64(len(b.funcNames)) + 1
		b.funcs[name] = fid
		b.funcNames = append(b.funcNames, name)
	}
	id := uint64(len(b.locAddrs)) + 1
	b.locs[name] = id
	b.locAddrs = append(b.locAddrs, addr)
	b.locFuncs = append(b.locFuncs, fid)
	return id
}

func (b *profileBuilder) addReport(name string, r *Report) {
	rootLoc := b.loc(name, 0)
	binKey := b.str("bin")
	wlKey := b.str("workload")
	wlVal := b.str(name)
	for i := range r.PCs {
		p := &r.PCs[i]
		stack := loopStack(r, p.Trace, p.PC)
		// Leaf first: guest PC, then loops innermost -> outermost, then
		// the workload root.
		locs := make([]uint64, 0, len(stack)+2)
		// Synthetic address space: traces (and workloads) never share
		// PCs, so offset each trace into its own 4GiB window.
		addr := uint64(p.Trace)<<32 | uint64(p.PC)
		locs = append(locs, b.loc(fmt.Sprintf("%s/t%d:0x%04x", name, p.Trace, p.PC), addr))
		for _, l := range stack {
			locs = append(locs, b.loc(fmt.Sprintf("%s/loop@t%d:0x%04x", name, l.Trace, l.Header), 0))
		}
		locs = append(locs, rootLoc)
		for bin := 0; bin < int(pipeline.NumBins); bin++ {
			if p.Bins[bin] == 0 {
				continue
			}
			b.samples = append(b.samples, sampleRec{
				locs:  locs,
				value: p.Bins[bin],
				labels: [][2]uint64{
					{binKey, b.str(pipeline.Bin(bin).String())},
					{wlKey, wlVal},
				},
			})
		}
	}
}

func (b *profileBuilder) encode() []byte {
	var p pbuf

	// sample_type + period_type: cycles/count.
	cyclesIdx, countIdx := b.str("cycles"), b.str("count")
	var vt pbuf
	vt.varint(valueTypeType, cyclesIdx)
	vt.varint(valueTypeUnit, countIdx)
	p.bytes(profSampleType, vt.b)

	for _, s := range b.samples {
		var sp pbuf
		for _, l := range s.locs {
			sp.varint(sampleLocationID, l)
		}
		sp.varint(sampleValue, s.value)
		for _, kv := range s.labels {
			var lp pbuf
			lp.varint(labelKey, kv[0])
			lp.varint(labelStr, kv[1])
			sp.bytes(sampleLabel, lp.b)
		}
		p.bytes(profSample, sp.b)
	}

	// One mapping spanning the synthetic guest address space.
	var mp pbuf
	mp.varint(mappingID, 1)
	mp.varint(mappingStart, 0)
	mp.varint(mappingLimit, 1<<48)
	mp.varint(mappingFilename, b.str("[guest]"))
	mp.varint(mappingHasFuncs, 1)
	p.bytes(profMapping, mp.b)

	for i := range b.locAddrs {
		var lp pbuf
		lp.varint(locationID, uint64(i)+1)
		lp.varint(locationMapping, 1)
		lp.varint(locationAddress, b.locAddrs[i])
		var ln pbuf
		ln.varint(lineFunctionID, b.locFuncs[i])
		lp.bytes(locationLine, ln.b)
		p.bytes(profLocation, lp.b)
	}

	guestIdx := b.str("guest")
	for i, name := range b.funcNames {
		var fp pbuf
		fp.varint(functionID, uint64(i)+1)
		nameIdx := b.str(name)
		fp.varint(functionName, nameIdx)
		fp.varint(functionSysName, nameIdx)
		fp.varint(functionFilename, guestIdx)
		p.bytes(profFunction, fp.b)
	}

	for _, s := range b.strtab {
		p.bytes(profStringTable, []byte(s))
	}

	var pt pbuf
	pt.varint(valueTypeType, cyclesIdx)
	pt.varint(valueTypeUnit, countIdx)
	p.bytes(profPeriodType, pt.b)
	p.varint(profPeriod, 1)

	return p.b
}
