package diff

import (
	"sort"

	"repro/internal/noise"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// RunSide bundles everything one side of a comparison contributes: a
// label for reports, the loop-partitioned profile of the probed run,
// and the measured-window Stats of every repeat (Runs[0] is the run the
// profile was attached to; additional repeats only feed the
// significance gate).
type RunSide struct {
	Label   string
	Profile Profile
	Runs    []pipeline.Stats
}

// PassDelta is one optimizer pass's baseline-vs-variant change, either
// within one loop row or totalled across the run.
type PassDelta struct {
	Pass          string `json:"pass"`
	BaseKilled    uint64 `json:"base_killed"`
	VarKilled     uint64 `json:"var_killed"`
	DKilled       int64  `json:"d_killed"` // variant − baseline
	BaseRewritten uint64 `json:"base_rewritten,omitempty"`
	VarRewritten  uint64 `json:"var_rewritten,omitempty"`
	DRewritten    int64  `json:"d_rewritten,omitempty"`
}

// LoopDelta joins one loop's two rows: for this loop, what each pass
// removed on each side and what the fetch cycles did. Rows missing on
// one side are zero-filled, so the delta list covers the union of both
// partitions and its sums remain exact.
type LoopDelta struct {
	Trace    int    `json:"trace"`
	Header   uint32 `json:"header"`
	Tail     uint32 `json:"tail"`
	Straight bool   `json:"straight,omitempty"`
	Nest     int    `json:"nest,omitempty"`

	BaseCycles      uint64      `json:"base_cycles"`
	VarCycles       uint64      `json:"var_cycles"`
	DCycles         int64       `json:"d_cycles"`
	BaseOptRemoved  uint64      `json:"base_opt_removed"`
	VarOptRemoved   uint64      `json:"var_opt_removed"`
	DOptRemoved     int64       `json:"d_opt_removed"`
	BaseUOpsRetired uint64      `json:"base_uops_retired"`
	VarUOpsRetired  uint64      `json:"var_uops_retired"`
	DUOpsRetired    int64       `json:"d_uops_retired"`
	DCovered        int64       `json:"d_covered"`
	DFrameHits      int64       `json:"d_frame_hits"`
	Passes          []PassDelta `json:"passes,omitempty"`
}

// SideSummary is the top-line view of one side.
type SideSummary struct {
	Label       string  `json:"label"`
	IPC         float64 `json:"ipc"`
	Cycles      uint64  `json:"cycles"`
	X86         uint64  `json:"x86"`
	UOpsRetired uint64  `json:"uops_retired"`
	UOpsRemoved uint64  `json:"uops_removed"`
	Coverage    float64 `json:"coverage"`
	Loops       int     `json:"loops"`
}

// MetricDelta is one significance-gated top-line metric: the two means,
// the raw delta, the 2×SEM bound it was gated on, and the
// direction-aware verdict (improved / regressed / noise).
type MetricDelta struct {
	Name    string  `json:"name"`
	Unit    string  `json:"unit"`
	Better  string  `json:"better"` // "higher" or "lower"
	Base    float64 `json:"base"`
	Var     float64 `json:"var"`
	Delta   float64 `json:"delta"` // variant − baseline
	Noise   float64 `json:"noise"` // the 2×SEM significance bound
	Verdict string  `json:"verdict"`
}

// Report is the full comparison: per-loop × per-pass deltas, per-pass
// totals, significance-gated metric verdicts, and the conservation
// residuals (pinned to zero by construction; computed honestly here so
// tests can pin them).
type Report struct {
	Baseline SideSummary `json:"baseline"`
	Variant  SideSummary `json:"variant"`
	Repeats  int         `json:"repeats"`

	// Loops is sorted by |DCycles| descending (the loop whose cycle
	// count moved most first); ties break on (trace, header) so the
	// order is deterministic.
	Loops []LoopDelta `json:"loops"`
	// Passes totals the per-loop pass deltas across the run, in
	// canonical pass order.
	Passes []PassDelta `json:"passes,omitempty"`
	// Metrics carries the gated top-line verdicts.
	Metrics []MetricDelta `json:"metrics"`

	// ResidualUOpsRemoved is Δ(Stats.Opt.Removed) − Σ per-loop
	// DOptRemoved; ResidualCycles is Δ(Stats.Cycles) − Σ per-loop
	// DCycles. Both are zero whenever the probes' conservation holds.
	ResidualUOpsRemoved int64 `json:"residual_uops_removed"`
	ResidualCycles      int64 `json:"residual_cycles"`

	// SignificantRegressions / SignificantImprovements count metric
	// verdicts that cleared the noise gate in each direction.
	SignificantRegressions  int `json:"significant_regressions"`
	SignificantImprovements int `json:"significant_improvements"`
}

// Significant reports whether any metric cleared the noise gate.
func (r *Report) Significant() bool {
	return r.SignificantRegressions > 0 || r.SignificantImprovements > 0
}

// metricSpec defines one gated top-line metric.
type metricSpec struct {
	name, unit string
	higher     bool
	get        func(*pipeline.Stats) float64
}

var metricSpecs = []metricSpec{
	{"ipc", "x86/cycle", true, func(s *pipeline.Stats) float64 { return s.IPC() }},
	{"cycles", "cycles", false, func(s *pipeline.Stats) float64 { return float64(s.Cycles) }},
	{"uops_retired", "uops", false, func(s *pipeline.Stats) float64 { return float64(s.UOpsRetired) }},
	{"uops_removed", "uops", true, func(s *pipeline.Stats) float64 { return float64(s.Opt.Removed()) }},
	{"frame_coverage", "frac", true, func(s *pipeline.Stats) float64 { return s.FrameCoverage() }},
}

// Compare joins two sides into the delta report. Both sides must carry
// at least one run; the profile of Runs[0] is the partition compared.
func Compare(base, vari RunSide) *Report {
	r := &Report{
		Baseline: summarize(base),
		Variant:  summarize(vari),
		Repeats:  min(len(base.Runs), len(vari.Runs)),
	}

	// Join the two partitions on (trace, straight, header), zero-filling
	// rows present on one side only.
	type joined struct{ b, v *Row }
	cells := map[rowKey]*joined{}
	var order []rowKey
	index := func(rows []Row, pick func(*joined, *Row)) {
		for i := range rows {
			row := &rows[i]
			k := rowKey{trace: row.Trace, header: row.Header, straight: row.Straight}
			j := cells[k]
			if j == nil {
				j = &joined{}
				cells[k] = j
				order = append(order, k)
			}
			pick(j, row)
		}
	}
	index(base.Profile.Rows, func(j *joined, row *Row) { j.b = row })
	index(vari.Profile.Rows, func(j *joined, row *Row) { j.v = row })

	var zero Row
	for _, k := range order {
		j := cells[k]
		b, v := j.b, j.v
		if b == nil {
			b = &zero
		}
		if v == nil {
			v = &zero
		}
		ld := LoopDelta{
			Trace: k.trace, Header: k.header, Straight: k.straight,
			Tail: maxU32(b.Tail, v.Tail), Nest: max(b.Nest, v.Nest),
			BaseCycles: b.Cycles, VarCycles: v.Cycles,
			DCycles:        int64(v.Cycles) - int64(b.Cycles),
			BaseOptRemoved: b.OptRemoved, VarOptRemoved: v.OptRemoved,
			DOptRemoved:     int64(v.OptRemoved) - int64(b.OptRemoved),
			BaseUOpsRetired: b.UOpsRetired, VarUOpsRetired: v.UOpsRetired,
			DUOpsRetired: int64(v.UOpsRetired) - int64(b.UOpsRetired),
			DCovered:     int64(v.Covered) - int64(b.Covered),
			DFrameHits:   int64(v.FrameHits) - int64(b.FrameHits),
			Passes:       passDeltas(b.Passes, v.Passes),
		}
		r.Loops = append(r.Loops, ld)
	}
	sort.SliceStable(r.Loops, func(i, j int) bool {
		a, b := &r.Loops[i], &r.Loops[j]
		if da, db := absI64(a.DCycles), absI64(b.DCycles); da != db {
			return da > db
		}
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		return a.Header < b.Header
	})

	// Total per-pass deltas are re-summed from the rows (not taken from
	// the profile's own totals), so Passes and Loops can never disagree.
	r.Passes = passDeltas(sumPasses(base.Profile.Rows), sumPasses(vari.Profile.Rows))
	r.Metrics = metricDeltas(base.Runs, vari.Runs)
	for _, m := range r.Metrics {
		switch m.Verdict {
		case noise.VerdictRegressed:
			r.SignificantRegressions++
		case noise.VerdictImproved:
			r.SignificantImprovements++
		}
	}

	// The honest residual: the Stats-counter deltas minus the summed
	// per-loop deltas. Zero whenever both probes' conservation held.
	var dRemoved, dCycles int64
	for i := range r.Loops {
		dRemoved += r.Loops[i].DOptRemoved
		dCycles += r.Loops[i].DCycles
	}
	bs, vs := &base.Runs[0], &vari.Runs[0]
	r.ResidualUOpsRemoved = (int64(vs.Opt.Removed()) - int64(bs.Opt.Removed())) - dRemoved
	r.ResidualCycles = (int64(vs.Cycles) - int64(bs.Cycles)) - dCycles
	return r
}

func summarize(s RunSide) SideSummary {
	st := &s.Runs[0]
	return SideSummary{
		Label:       s.Label,
		IPC:         st.IPC(),
		Cycles:      st.Cycles,
		X86:         st.X86Retired,
		UOpsRetired: st.UOpsRetired,
		UOpsRemoved: uint64(st.Opt.Removed()),
		Coverage:    st.FrameCoverage(),
		Loops:       len(s.Profile.Rows),
	}
}

// sumPasses folds the rows' per-pass counts into one total map.
func sumPasses(rows []Row) map[string]PassCount {
	var out map[string]PassCount
	for i := range rows {
		for name, pc := range rows[i].Passes {
			if out == nil {
				out = make(map[string]PassCount)
			}
			cur := out[name]
			cur.add(pc)
			out[name] = cur
		}
	}
	return out
}

// passDeltas joins two per-pass maps into ordered deltas (canonical
// pass order first, then alphabetically for unknown names), dropping
// passes absent on both sides.
func passDeltas(b, v map[string]PassCount) []PassDelta {
	names := make(map[string]bool, len(b)+len(v))
	for n := range b {
		names[n] = true
	}
	for n := range v {
		names[n] = true
	}
	if len(names) == 0 {
		return nil
	}
	ordered := make([]string, 0, len(names))
	for _, n := range telemetry.PassOrder {
		if names[n] {
			ordered = append(ordered, n)
			delete(names, n)
		}
	}
	rest := make([]string, 0, len(names))
	for n := range names {
		rest = append(rest, n)
	}
	sort.Strings(rest)
	ordered = append(ordered, rest...)

	out := make([]PassDelta, 0, len(ordered))
	for _, n := range ordered {
		bp, vp := b[n], v[n]
		out = append(out, PassDelta{
			Pass:       n,
			BaseKilled: bp.Killed, VarKilled: vp.Killed,
			DKilled:       int64(vp.Killed) - int64(bp.Killed),
			BaseRewritten: bp.Rewritten, VarRewritten: vp.Rewritten,
			DRewritten: int64(vp.Rewritten) - int64(bp.Rewritten),
		})
	}
	return out
}

// metricDeltas gates the top-line metrics on the shared 2×SEM rule.
func metricDeltas(base, vari []pipeline.Stats) []MetricDelta {
	out := make([]MetricDelta, 0, len(metricSpecs))
	for _, spec := range metricSpecs {
		bs := noise.Summarize(samples(base, spec.get))
		vs := noise.Summarize(samples(vari, spec.get))
		verdict, delta, bound := noise.Verdict(bs, vs, spec.higher)
		better := "lower"
		if spec.higher {
			better = "higher"
		}
		out = append(out, MetricDelta{
			Name: spec.name, Unit: spec.unit, Better: better,
			Base: bs.Mean, Var: vs.Mean,
			Delta: delta, Noise: bound, Verdict: verdict,
		})
	}
	return out
}

func samples(runs []pipeline.Stats, get func(*pipeline.Stats) float64) []float64 {
	out := make([]float64, len(runs))
	for i := range runs {
		out[i] = get(&runs[i])
	}
	return out
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
