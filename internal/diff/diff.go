// Package diff is the ablation diff engine: it observes two runs of
// the simulator — baseline and variant — with a probe that partitions
// every observable the other probes report (retired work from
// internal/reuse's loop detector, per-pass optimizer removals from the
// PassRecorder feed, charged fetch cycles from the cycle-probe feed)
// over the detected loops, then joins the two partitions into a
// conservation-exact delta report: for each loop, which pass removed
// how many micro-ops and how many fetch cycles that bought.
//
// Unlike internal/cycleprof's loop join — an inclusive interval rollup
// where an outer loop's row contains its inner loops — the diff
// detector attributes each event to the innermost active loop at event
// time, so the rows form an exact partition: every retired micro-op,
// every pass kill, and every charged cycle lands in exactly one row
// (straight-line code gets a pseudo-row per trace). Per side, the row
// sums therefore equal the measured window's Stats counters, and per
// comparison the per-row deltas sum exactly to the difference of the
// two runs' counters — the residual ("unattributed delta") is zero by
// construction, and the report computes it honestly so tests can pin
// it.
package diff

import (
	"sort"
	"sync"

	"repro/internal/pipeline"
	"repro/internal/reuse"
)

// PassCount is what one optimizer pass did inside one loop row.
type PassCount struct {
	Calls     uint64 `json:"calls"`
	Killed    uint64 `json:"killed"`
	Rewritten uint64 `json:"rewritten"`
}

func (p *PassCount) add(o PassCount) {
	p.Calls += o.Calls
	p.Killed += o.Killed
	p.Rewritten += o.Rewritten
}

// Row is one side's accumulation cell for a single loop (or the
// straight-line pseudo-row of one trace): the retired work, the
// optimizer activity, and the fetch cycles observed while that loop
// was the innermost active one.
type Row struct {
	Trace  int    `json:"trace"`
	Header uint32 `json:"header"`
	Tail   uint32 `json:"tail"`
	// Straight marks the pseudo-row collecting everything observed
	// outside any detected loop.
	Straight bool `json:"straight,omitempty"`
	Nest     int  `json:"nest,omitempty"`

	X86         uint64 `json:"x86"`
	UOps        uint64 `json:"uops"` // decoded (baseline) micro-ops
	UOpsRetired uint64 `json:"uops_retired"`
	Covered     uint64 `json:"covered"`
	FrameHits   uint64 `json:"frame_hits"`
	// OptRemoved is the net micro-op removal of optimizer runs that
	// fired in this row's context; by the opt invariant it equals the
	// summed Killed of the row's Passes.
	OptRemoved uint64                   `json:"opt_removed"`
	Cycles     uint64                   `json:"cycles"`
	Bins       [pipeline.NumBins]uint64 `json:"bins"`
	Passes     map[string]PassCount     `json:"passes,omitempty"`
}

func (r *Row) addPass(pass string, killed, rewritten int) {
	if r.Passes == nil {
		r.Passes = make(map[string]PassCount)
	}
	pc := r.Passes[pass]
	pc.Calls++
	pc.Killed += uint64(killed)
	pc.Rewritten += uint64(rewritten)
	r.Passes[pass] = pc
}

func (r *Row) add(o *Row) {
	r.X86 += o.X86
	r.UOps += o.UOps
	r.UOpsRetired += o.UOpsRetired
	r.Covered += o.Covered
	r.FrameHits += o.FrameHits
	r.OptRemoved += o.OptRemoved
	r.Cycles += o.Cycles
	for i := range r.Bins {
		r.Bins[i] += o.Bins[i]
	}
	if o.Tail > r.Tail {
		r.Tail = o.Tail
	}
	if o.Nest > r.Nest {
		r.Nest = o.Nest
	}
	for name, pc := range o.Passes {
		if r.Passes == nil {
			r.Passes = make(map[string]PassCount)
		}
		cur := r.Passes[name]
		cur.add(pc)
		r.Passes[name] = cur
	}
}

// Detector is the per-engine diff probe. It embeds the streaming loop
// detector from internal/reuse for loop identification and overrides
// the probe callbacks to additionally bin every event into the
// innermost active loop's row. It implements pipeline.ReuseProbe,
// pipeline.ReusePassProbe, and pipeline.CycleProbe; single-goroutine,
// like the engine that drives it.
type Detector struct {
	reuse.Detector
	rows     map[uint32]*Row // keyed by loop header PC
	order    []uint32        // header insertion order, for deterministic folds
	straight Row
}

// NewDetector returns an empty detector.
func NewDetector() *Detector {
	return &Detector{Detector: *reuse.NewDetector(), rows: make(map[uint32]*Row),
		straight: Row{Straight: true}}
}

// row returns the accumulation cell for the current innermost active
// loop (the straight-line pseudo-row outside any loop).
func (d *Detector) row() *Row {
	h, ok := d.Active()
	if !ok {
		return &d.straight
	}
	r := d.rows[h]
	if r == nil {
		r = &Row{Header: h}
		d.rows[h] = r
		d.order = append(d.order, h)
	}
	return r
}

// ReuseSlot feeds one retired instruction: the embedded detector
// maintains the loop stack (including the back-edge control effects of
// this very instruction), then the slot's work is attributed to the
// loop active after those effects — a back edge's closing branch counts
// toward the loop it closes.
func (d *Detector) ReuseSlot(s pipeline.Slot, fromFrame bool, uopsExecuted int) {
	d.Detector.ReuseSlot(s, fromFrame, uopsExecuted)
	r := d.row()
	r.X86++
	n := uint64(len(s.UOps))
	r.UOps += n
	r.UOpsRetired += uint64(uopsExecuted)
	if fromFrame {
		r.Covered += n
	}
}

// ReuseFrameHit attributes a frame-cache fetch to the active loop.
func (d *Detector) ReuseFrameHit() {
	d.Detector.ReuseFrameHit()
	d.row().FrameHits++
}

// ReuseFrameRetired attributes a committed frame's optimized body.
func (d *Detector) ReuseFrameRetired(uops int) {
	d.Detector.ReuseFrameRetired(uops)
	d.row().UOpsRetired += uint64(uops)
}

// ReuseOptRemoved attributes an optimizer run's net removal. It fires
// at the same call site as the per-pass feed (ReusePass), so per row
// the two agree: OptRemoved equals the summed Killed of Passes.
func (d *Detector) ReuseOptRemoved(removed int) {
	d.Detector.ReuseOptRemoved(removed)
	d.row().OptRemoved += uint64(removed)
}

// ReusePass implements pipeline.ReusePassProbe: one changed optimizer
// pass invocation, attributed to the active loop.
func (d *Detector) ReusePass(pass string, killed, rewritten int) {
	d.row().addPass(pass, killed, rewritten)
}

// CycleCharge implements pipeline.CycleProbe: n fetch cycles charged to
// bin while the active loop ran. The engine's only two cycle-charging
// paths call this, so the row sums equal Stats.Cycles/Bins exactly.
func (d *Detector) CycleCharge(pc uint32, bin pipeline.Bin, n uint64) {
	r := d.row()
	r.Cycles += n
	r.Bins[bin] += n
}

// rowKey identifies a row across traces.
type rowKey struct {
	trace    int
	header   uint32
	straight bool
}

// Collector aggregates per-engine detectors into one run profile. Like
// the reuse and cycleprof collectors it is handed to the simulation via
// sim.Options and attached per engine after warmup; each trace gets its
// own Probe, and Close folds the probe's rows in under the lock.
type Collector struct {
	mu    sync.Mutex
	rows  map[rowKey]*Row
	order []rowKey
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{rows: make(map[rowKey]*Row)} }

// Probe is the per-engine observer: a Detector plus the fold-back link.
type Probe struct {
	Detector
	c     *Collector
	trace int
}

// Attach returns a fresh probe for one engine run over the given trace
// index. Close it once the run finishes.
func (c *Collector) Attach(trace int) *Probe {
	return &Probe{Detector: *NewDetector(), c: c, trace: trace}
}

// Close folds the probe's rows into its collector. Call exactly once,
// after the engine's last run.
func (p *Probe) Close() {
	if p.c == nil {
		return
	}
	c := p.c
	p.c = nil

	// Stamp loop geometry (tail, nesting) from the embedded detector
	// before folding.
	for _, l := range p.Loops() {
		if r := p.rows[l.Header]; r != nil {
			r.Tail = l.Tail
			r.Nest = l.Nest
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	fold := func(k rowKey, src *Row) {
		dst := c.rows[k]
		if dst == nil {
			dst = &Row{Trace: k.trace, Header: k.header, Straight: k.straight}
			c.rows[k] = dst
			c.order = append(c.order, k)
		}
		dst.add(src)
	}
	if s := &p.straight; s.X86 > 0 || s.Cycles > 0 || s.UOps > 0 || s.OptRemoved > 0 ||
		s.FrameHits > 0 || s.UOpsRetired > 0 || len(s.Passes) > 0 {
		fold(rowKey{trace: p.trace, straight: true}, s)
	}
	for _, h := range p.order {
		fold(rowKey{trace: p.trace, header: h}, p.rows[h])
	}
}

// Profile is one side's complete partition: the per-loop rows plus
// their re-summed totals. The conservation invariant makes the totals
// equal the measured window's Stats counters exactly.
type Profile struct {
	Rows []Row `json:"rows"`

	X86         uint64                   `json:"x86"`
	UOps        uint64                   `json:"uops"`
	UOpsRetired uint64                   `json:"uops_retired"`
	Covered     uint64                   `json:"covered"`
	FrameHits   uint64                   `json:"frame_hits"`
	OptRemoved  uint64                   `json:"opt_removed"`
	Cycles      uint64                   `json:"cycles"`
	Bins        [pipeline.NumBins]uint64 `json:"bins"`
	// Passes is the per-pass total across all rows.
	Passes map[string]PassCount `json:"passes,omitempty"`
}

// Snapshot assembles the profile accumulated so far: rows sorted by
// (trace, straight-first, header) and totals re-summed from them.
func (c *Collector) Snapshot() Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]rowKey, len(c.order))
	copy(keys, c.order)
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.trace != b.trace {
			return a.trace < b.trace
		}
		if a.straight != b.straight {
			return a.straight
		}
		return a.header < b.header
	})
	p := Profile{Rows: make([]Row, 0, len(keys))}
	for _, k := range keys {
		r := *c.rows[k]
		if len(r.Passes) > 0 {
			cp := make(map[string]PassCount, len(r.Passes))
			for name, pc := range r.Passes {
				cp[name] = pc
			}
			r.Passes = cp
		}
		p.Rows = append(p.Rows, r)
		p.X86 += r.X86
		p.UOps += r.UOps
		p.UOpsRetired += r.UOpsRetired
		p.Covered += r.Covered
		p.FrameHits += r.FrameHits
		p.OptRemoved += r.OptRemoved
		p.Cycles += r.Cycles
		for i := range r.Bins {
			p.Bins[i] += r.Bins[i]
		}
		for name, pc := range r.Passes {
			if p.Passes == nil {
				p.Passes = make(map[string]PassCount)
			}
			cur := p.Passes[name]
			cur.add(pc)
			p.Passes[name] = cur
		}
	}
	return p
}
