package diff

import (
	"testing"

	"repro/internal/noise"
	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/uop"
	"repro/internal/x86"
)

// slot builds one synthetic retired instruction: a 4-byte instruction
// at pc with dynamic successor next and the given micro-op flow.
func slot(pc, next uint32, op x86.Op, uops ...uop.Op) pipeline.Slot {
	us := make([]uop.UOp, len(uops))
	for i, o := range uops {
		us[i] = uop.UOp{Op: o}
	}
	return pipeline.Slot{PC: pc, Inst: x86.Inst{Op: op, Len: 4}, NextPC: next, UOps: us}
}

// loopStream is 2 straight instructions, then trips executions of a
// 3-instruction loop body at 0x10..0x18, then 2 straight instructions.
func loopStream(trips int) []pipeline.Slot {
	var slots []pipeline.Slot
	slots = append(slots,
		slot(0x0, 0x4, x86.OpADD, uop.ADD),
		slot(0x4, 0x10, x86.OpADD, uop.ADD))
	for t := 0; t < trips; t++ {
		next := uint32(0x10)
		if t == trips-1 {
			next = 0x1c
		}
		slots = append(slots,
			slot(0x10, 0x14, x86.OpADD, uop.ADD),
			slot(0x14, 0x18, x86.OpMOV, uop.LOAD),
			slot(0x18, next, x86.OpJCC, uop.BR))
	}
	slots = append(slots,
		slot(0x1c, 0x20, x86.OpADD, uop.ADD),
		slot(0x20, 0x24, x86.OpADD, uop.ADD))
	return slots
}

// TestDetectorPartition pins the exact-partition property on a
// synthetic stream: every retired instruction, charged cycle, and pass
// invocation lands in exactly one row, so the folded rows re-sum to
// the fed totals, and events observed while the loop is active land in
// the loop's row rather than the straight pseudo-row.
func TestDetectorPartition(t *testing.T) {
	c := NewCollector()
	p := c.Attach(0)
	slots := loopStream(5)
	var inLoop bool
	for i := range slots {
		p.ReuseSlot(slots[i], false, len(slots[i].UOps))
		// One cycle charged per instruction; one pass invocation fired
		// mid-loop and one in the straight epilogue.
		p.CycleCharge(slots[i].PC, pipeline.BinFrame, 1)
		if _, ok := p.Active(); ok && !inLoop {
			inLoop = true
			p.ReusePass("dce", 3, 1)
			p.ReuseOptRemoved(3)
		}
	}
	p.ReusePass("nop", 2, 0)
	p.ReuseOptRemoved(2)
	p.Close()

	prof := c.Snapshot()
	total := uint64(len(slots))
	if prof.X86 != total || prof.UOps != total || prof.Cycles != total {
		t.Fatalf("totals x86=%d uops=%d cycles=%d, want all %d",
			prof.X86, prof.UOps, prof.Cycles, total)
	}
	if prof.OptRemoved != 5 || prof.Passes["dce"].Killed != 3 || prof.Passes["nop"].Killed != 2 {
		t.Fatalf("pass totals: removed=%d passes=%+v", prof.OptRemoved, prof.Passes)
	}

	var loopRow, straightRow *Row
	var sum Row
	for i := range prof.Rows {
		r := &prof.Rows[i]
		sum.add(r)
		switch {
		case r.Straight:
			straightRow = r
		case r.Header == 0x10:
			loopRow = r
		default:
			t.Fatalf("unexpected row %+v", r)
		}
	}
	if loopRow == nil || straightRow == nil {
		t.Fatalf("expected a loop row and a straight row, got %+v", prof.Rows)
	}
	// Rows partition the stream: their sums equal the totals exactly.
	if sum.X86 != prof.X86 || sum.Cycles != prof.Cycles || sum.OptRemoved != prof.OptRemoved {
		t.Fatalf("row sums (%d, %d, %d) != totals (%d, %d, %d)",
			sum.X86, sum.Cycles, sum.OptRemoved, prof.X86, prof.Cycles, prof.OptRemoved)
	}
	// The mid-loop pass landed in the loop row, the epilogue pass in the
	// straight row; per row the opt invariant holds.
	if loopRow.Passes["dce"].Killed != 3 || loopRow.OptRemoved != 3 {
		t.Errorf("loop row: %+v", loopRow)
	}
	if straightRow.Passes["nop"].Killed != 2 || straightRow.OptRemoved != 2 {
		t.Errorf("straight row: %+v", straightRow)
	}
	if loopRow.Tail != 0x18 {
		t.Errorf("loop tail = %#x, want 0x18", loopRow.Tail)
	}
	// The loop was active for trips 2..5 (detection fires at the first
	// back edge), so its row holds a strict, nonzero subset.
	if loopRow.X86 == 0 || loopRow.X86 >= total {
		t.Errorf("loop row x86 = %d, want in (0, %d)", loopRow.X86, total)
	}
}

// mkStats builds a pipeline.Stats whose diffed counters match a profile.
func mkStats(cycles, removed uint64) pipeline.Stats {
	var s pipeline.Stats
	s.Cycles = cycles
	s.Opt = opt.Stats{UOpsIn: int(removed), UOpsOut: 0}
	return s
}

// TestCompareJoinAndResiduals: rows present on only one side zero-fill
// into the union join, per-loop deltas sum exactly to the Stats-counter
// deltas (residual zero), and a counter drift shows up as a nonzero
// residual rather than being silently absorbed.
func TestCompareJoinAndResiduals(t *testing.T) {
	base := RunSide{Label: "base", Runs: []pipeline.Stats{mkStats(100, 10)}, Profile: Profile{
		Rows: []Row{
			{Trace: 0, Header: 0x10, Cycles: 60, OptRemoved: 10,
				Passes: map[string]PassCount{"dce": {Calls: 1, Killed: 10}}},
			{Trace: 0, Straight: true, Cycles: 40},
		},
	}}
	vari := RunSide{Label: "var", Runs: []pipeline.Stats{mkStats(80, 4)}, Profile: Profile{
		Rows: []Row{
			{Trace: 0, Header: 0x10, Cycles: 30, OptRemoved: 4,
				Passes: map[string]PassCount{"dce": {Calls: 1, Killed: 4}}},
			{Trace: 0, Header: 0x40, Cycles: 10},
			{Trace: 0, Straight: true, Cycles: 40},
		},
	}}
	r := Compare(base, vari)
	if r.ResidualCycles != 0 || r.ResidualUOpsRemoved != 0 {
		t.Fatalf("residuals (%d, %d), want (0, 0)", r.ResidualCycles, r.ResidualUOpsRemoved)
	}
	if len(r.Loops) != 3 {
		t.Fatalf("joined %d rows, want 3 (union)", len(r.Loops))
	}
	// Sorted by |DCycles| desc: 0x10 moved 30, 0x40 moved 10, straight 0.
	if r.Loops[0].Header != 0x10 || r.Loops[1].Header != 0x40 || !r.Loops[2].Straight {
		t.Fatalf("loop order: %+v", r.Loops)
	}
	if r.Loops[1].BaseCycles != 0 || r.Loops[1].DCycles != 10 {
		t.Errorf("one-sided row not zero-filled: %+v", r.Loops[1])
	}
	if len(r.Passes) != 1 || r.Passes[0].Pass != "dce" || r.Passes[0].DKilled != -6 {
		t.Errorf("pass deltas: %+v", r.Passes)
	}
	if r.Baseline.Cycles != 100 || r.Variant.Cycles != 80 {
		t.Errorf("summaries: %+v / %+v", r.Baseline, r.Variant)
	}

	// Drift: claim the variant run used 81 cycles while its rows still
	// sum to 80 — the residual must expose the missing cycle.
	vari.Runs[0].Cycles = 81
	r = Compare(base, vari)
	if r.ResidualCycles != 1 {
		t.Fatalf("drifted residual = %d, want 1", r.ResidualCycles)
	}
}

// TestCompareVerdicts: the significance gate is direction-aware and
// the 2×SEM bound suppresses within-noise deltas.
func TestCompareVerdicts(t *testing.T) {
	mk := func(cycles ...uint64) []pipeline.Stats {
		out := make([]pipeline.Stats, len(cycles))
		for i, c := range cycles {
			out[i] = mkStats(c, 0)
			out[i].X86Retired = 1000 // nonzero IPC denominatorless metric
		}
		return out
	}
	find := func(r *Report, name string) MetricDelta {
		for _, m := range r.Metrics {
			if m.Name == name {
				return m
			}
		}
		t.Fatalf("metric %s missing", name)
		return MetricDelta{}
	}

	// Tight repeats, big separation: cycles (lower-better) regressed.
	r := Compare(
		RunSide{Runs: mk(100, 101, 99)},
		RunSide{Runs: mk(200, 201, 199)},
	)
	if m := find(r, "cycles"); m.Verdict != noise.VerdictRegressed || m.Noise <= 0 {
		t.Errorf("cycles verdict %+v, want regressed with bound", m)
	}
	if r.SignificantRegressions == 0 {
		t.Errorf("no significant regressions counted: %+v", r.Metrics)
	}

	// Overlapping noisy repeats: the same mean shift gates to noise.
	r = Compare(
		RunSide{Runs: mk(100, 300, 200)},
		RunSide{Runs: mk(150, 350, 250)},
	)
	if m := find(r, "cycles"); m.Verdict != noise.VerdictNoise {
		t.Errorf("noisy cycles verdict %+v, want noise", m)
	}

	// Improvement direction: fewer cycles is better.
	r = Compare(
		RunSide{Runs: mk(200, 201, 199)},
		RunSide{Runs: mk(100, 101, 99)},
	)
	if m := find(r, "cycles"); m.Verdict != noise.VerdictImproved {
		t.Errorf("cycles verdict %+v, want improved", m)
	}
	if r.SignificantImprovements == 0 {
		t.Errorf("no significant improvements counted")
	}
}
