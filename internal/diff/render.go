package diff

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// WriteReport renders one workload's comparison as text: the
// significance-gated top-line metrics (with the ±2×SEM bound each
// verdict was gated on), the per-pass removal deltas, the heaviest
// per-loop deltas with signed delta bars, and the conservation
// residuals. Both replaysim and replayctl render through this one
// function, so a diff reads identically from either surface.
func WriteReport(w io.Writer, workload, class string, r *Report) {
	fmt.Fprintf(w, "%s (%s): %s vs %s", workload, class, r.Baseline.Label, r.Variant.Label)
	if r.Repeats > 1 {
		fmt.Fprintf(w, " (%d repeats/side)", r.Repeats)
	}
	fmt.Fprintln(w)

	t := stats.NewTable("Metric", r.Baseline.Label, r.Variant.Label, "Delta", "±noise", "Verdict")
	for _, m := range r.Metrics {
		t.Row(m.Name,
			fmt.Sprintf("%.4g", m.Base),
			fmt.Sprintf("%.4g", m.Var),
			fmt.Sprintf("%+.4g", m.Delta),
			fmt.Sprintf("%.3g", m.Noise),
			m.Verdict)
	}
	t.Write(w)

	if len(r.Passes) > 0 {
		fmt.Fprintln(w, "\nper-pass removal delta (variant − baseline):")
		pt := stats.NewTable("Pass", "Killed (base)", "Killed (var)", "ΔKilled", "ΔRewritten")
		for _, p := range r.Passes {
			pt.Row(p.Pass, p.BaseKilled, p.VarKilled,
				fmt.Sprintf("%+d", p.DKilled), fmt.Sprintf("%+d", p.DRewritten))
		}
		pt.Write(w)
	}

	loops := r.Loops
	const maxLoops = 10
	if len(loops) > maxLoops {
		loops = loops[:maxLoops]
	}
	if len(loops) > 0 {
		fmt.Fprintln(w, "\nheaviest per-loop deltas (variant − baseline, by |Δcycles|):")
		lt := stats.NewTable("Loop", "Nest", "ΔCycles", "ΔUops removed", "ΔUops retired", "ΔFrame hits", "Top pass")
		for i := range loops {
			l := &loops[i]
			lt.Row(loopLabel(l), l.Nest,
				fmt.Sprintf("%+d", l.DCycles),
				fmt.Sprintf("%+d", l.DOptRemoved),
				fmt.Sprintf("%+d", l.DUOpsRetired),
				fmt.Sprintf("%+d", l.DFrameHits),
				topPass(l))
		}
		lt.Write(w)

		var maxAbs int64
		for i := range loops {
			if a := absI64(loops[i].DCycles); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs > 0 {
			fmt.Fprintln(w, "\nΔcycles per loop (◄ fewer cycles than baseline, ► more):")
			for i := range loops {
				deltaBar(w, loopLabel(&loops[i]), loops[i].DCycles, maxAbs)
			}
		}
	}

	if r.ResidualUOpsRemoved == 0 && r.ResidualCycles == 0 {
		fmt.Fprintln(w, "\nconservation: all removed micro-ops and cycle deltas attributed (residual 0)")
	} else {
		fmt.Fprintf(w, "\nWARNING: unattributed delta: uops_removed=%d cycles=%d\n",
			r.ResidualUOpsRemoved, r.ResidualCycles)
	}
}

// loopLabel names one joined row the way the cycle profiler does.
func loopLabel(l *LoopDelta) string {
	if l.Straight {
		return fmt.Sprintf("t%d:straight", l.Trace)
	}
	return fmt.Sprintf("t%d:0x%04x-0x%04x", l.Trace, l.Header, l.Tail)
}

// topPass names the pass whose kill count moved the most in this loop.
func topPass(l *LoopDelta) string {
	best, bestVal := "", int64(0)
	for _, p := range l.Passes {
		if absI64(p.DKilled) > absI64(bestVal) {
			best, bestVal = p.Pass, p.DKilled
		}
	}
	if best == "" {
		return "-"
	}
	return fmt.Sprintf("%s (%+d)", best, bestVal)
}

// deltaBar draws one signed magnitude bar: improvements (negative cycle
// deltas) grow left from the axis, regressions right.
func deltaBar(w io.Writer, label string, delta, maxAbs int64) {
	const half = 30
	n := int(absI64(delta) * half / maxAbs)
	if n == 0 && delta != 0 {
		n = 1
	}
	left, right := "", ""
	if delta < 0 {
		left = strings.Repeat("◄", n)
	} else if delta > 0 {
		right = strings.Repeat("►", n)
	}
	fmt.Fprintf(w, "%24s %*s|%-*s %+d\n", label, half, left, half, right, delta)
}
