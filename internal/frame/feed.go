package frame

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/translate"
	"repro/internal/uop"
	"repro/internal/x86"
)

// Decoder caches x86 decode and micro-op translation per PC — the
// Micro-Op Injector's decode stage.
type Decoder struct {
	tr    *trace.Trace
	insts map[uint32]x86.Inst
	uops  map[uint32][]uop.UOp

	// decodes counts cache misses (distinct PCs actually decoded);
	// hits counts cached lookups.
	decodes uint64
	hits    uint64
}

// Decodes returns the number of distinct PCs decoded (cache misses).
func (d *Decoder) Decodes() uint64 { return d.decodes }

// Hits returns the number of lookups served from the decode cache.
func (d *Decoder) Hits() uint64 { return d.hits }

// NewDecoder returns a decoder over the trace's code image.
func NewDecoder(tr *trace.Trace) *Decoder {
	return &Decoder{
		tr:    tr,
		insts: make(map[uint32]x86.Inst),
		uops:  make(map[uint32][]uop.UOp),
	}
}

// At returns the decoded instruction and micro-op flow at pc.
func (d *Decoder) At(pc uint32) (x86.Inst, []uop.UOp, error) {
	if in, ok := d.insts[pc]; ok {
		d.hits++
		return in, d.uops[pc], nil
	}
	d.decodes++
	bts := d.tr.InstBytes(pc)
	if bts == nil {
		return x86.Inst{}, nil, fmt.Errorf("frame: PC %#x outside code image", pc)
	}
	in, err := x86.Decode(bts)
	if err != nil {
		return x86.Inst{}, nil, fmt.Errorf("frame: decode at %#x: %w", pc, err)
	}
	us, err := translate.UOps(in, pc)
	if err != nil {
		return x86.Inst{}, nil, err
	}
	d.insts[pc] = in
	d.uops[pc] = us
	return in, us, nil
}

// FeedTrace replays a captured trace through the constructor: every
// retired x86 instruction is decoded, translated, and offered with its
// dynamic outcome and memory addresses. The pending frame is flushed at
// the end.
func FeedTrace(c *Constructor, tr *trace.Trace) error {
	d := NewDecoder(tr)
	start := c.clock()
	addrs := make([]uint32, 0, 4)
	for i := range tr.Records {
		r := &tr.Records[i]
		in, uops, err := d.At(r.PC)
		if err != nil {
			return err
		}
		addrs = addrs[:0]
		for _, m := range r.MemOps {
			addrs = append(addrs, m.Addr)
		}
		c.Retire(r.PC, in, uops, r.NextPC, addrs)
	}
	c.Flush()
	c.Tel.FeedSpan(c.TelRun, start, c.clock(), len(tr.Records), int(d.Decodes()))
	return nil
}
