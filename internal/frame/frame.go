// Package frame implements rePLay frame construction (Section 2 and [13]):
// the hardware component that watches the retired instruction stream,
// converts dynamically biased branches into assertions, and merges the
// resulting mutually control-independent code into atomic frames of 8-256
// micro-operations.
package frame

import (
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/uop"
	"repro/internal/x86"
)

// Frame is an atomic optimization region: a single-entry, single-exit
// sequence of micro-operations in which every internal control decision
// has been converted to an assertion. Either the whole frame commits or
// none of it does.
type Frame struct {
	// ID is a unique construction ordinal (diagnostics).
	ID uint64
	// StartPC is the frame's entry point (its frame-cache key).
	StartPC uint32
	// ExitPC is the statically known successor once the frame commits.
	ExitPC uint32

	// UOps is the frame body. Converted branches appear as ASSERT or
	// CASSERT micro-ops; internal direct jumps appear as JMP micro-ops
	// (removable by the optimizer's NOP pass, occupying slots otherwise).
	UOps []uop.UOp
	// InstIdx maps each micro-op to the ordinal of its originating x86
	// instruction within the frame.
	InstIdx []int32
	// MemSub maps each memory micro-op to its position among the
	// originating instruction's memory transactions (-1 for non-memory
	// micro-ops). Together with InstIdx it lets the simulator recover a
	// micro-op's runtime address from the reference execution.
	MemSub []int8
	// NumX86 is the number of original x86 instructions merged.
	NumX86 int
	// PCs lists the frame's x86 instruction path (one entry per original
	// instruction). Divergence of the reference execution from this path
	// is exactly an assertion firing.
	PCs []uint32
	// NextPCs lists each path instruction's dynamic successor at
	// construction time; NextPCs[len-1] == ExitPC.
	NextPCs []uint32

	// MemAddr holds the dynamic address each memory micro-op touched
	// during the construction execution (zero for non-memory micro-ops) —
	// the aliasing profile passed to the optimizer for speculative memory
	// optimization.
	MemAddr []uint32

	// BlockEnd marks micro-op indexes that terminate a basic block of the
	// original code (positions of converted control). Used by the
	// optimizer's intra-/inter-block scope restrictions.
	BlockEnd []int
}

// NumLoads counts LOAD micro-ops in the frame body.
func (f *Frame) NumLoads() int {
	n := 0
	for _, u := range f.UOps {
		if u.Op == uop.LOAD {
			n++
		}
	}
	return n
}

// Config holds frame-construction parameters.
type Config struct {
	// MinUOps/MaxUOps bound deposited frame sizes (paper: 8-256).
	MinUOps int
	MaxUOps int
	// BiasThreshold is the number of consecutive same-direction outcomes
	// before a conditional branch is considered biased.
	BiasThreshold int
	// TargetThreshold is the number of consecutive same-target outcomes
	// before an indirect transfer is considered stable.
	TargetThreshold int
}

// DefaultConfig matches the paper's rePLay configuration.
func DefaultConfig() Config {
	return Config{MinUOps: 8, MaxUOps: 256, BiasThreshold: 16, TargetThreshold: 16}
}

type biasEntry struct {
	dir   bool // last observed direction
	count int  // consecutive observations of dir
}

type targetEntry struct {
	target uint32
	count  int
}

// Constructor synthesizes frames from the retired instruction stream.
type Constructor struct {
	cfg     Config
	bias    map[uint32]*biasEntry
	targets map[uint32]*targetEntry

	pending  *Frame
	nextID   uint64
	lastNext uint32 // dynamic successor of the last included instruction

	// Deposit receives each completed frame.
	Deposit func(*Frame)

	// Tel, when set, receives a FrameConstructed event (and the frame
	// length histogram sample) for every deposited frame, stamped with
	// TelRun and the cycle from Now. Now may be nil, in which case the
	// retire ordinal serves as the clock (standalone construction has no
	// cycle counter).
	Tel    *telemetry.Collector
	TelRun int
	Now    func() uint64

	// retired counts Retire calls — the fallback clock.
	retired uint64

	// Constructed counts frames deposited.
	Constructed uint64

	// End-reason counters (diagnostics for coverage analysis).
	EndUnbiased  uint64 // pending ended at an unbiased conditional
	EndUnstable  uint64 // pending ended at an unstable indirect
	EndMaxSize   uint64 // pending ended at the size limit
	DroppedSmall uint64 // pending discarded below MinUOps
}

// NewConstructor returns a Constructor with the given configuration.
func NewConstructor(cfg Config, deposit func(*Frame)) *Constructor {
	return &Constructor{
		cfg:     cfg,
		bias:    make(map[uint32]*biasEntry),
		targets: make(map[uint32]*targetEntry),
		Deposit: deposit,
	}
}

// controlKind classifies an instruction's effect on frame construction.
type controlKind int

const (
	ctlNone controlKind = iota
	ctlCond
	ctlDirect   // direct JMP or CALL
	ctlIndirect // RET, indirect JMP/CALL
	ctlHalt
)

func classify(in x86.Inst) controlKind {
	switch in.Op {
	case x86.OpJCC:
		return ctlCond
	case x86.OpJMP, x86.OpCALL:
		if in.Dst.Kind == x86.KindImm {
			return ctlDirect
		}
		return ctlIndirect
	case x86.OpRET:
		return ctlIndirect
	case x86.OpHLT:
		return ctlHalt
	}
	return ctlNone
}

// Retire feeds one retired x86 instruction: its decoded form, translated
// micro-ops, dynamic outcome (taken, nextPC) and the dynamic addresses of
// its memory micro-ops, in flow order.
func (c *Constructor) Retire(pc uint32, in x86.Inst, uops []uop.UOp, nextPC uint32, memAddrs []uint32) {
	c.retired++
	kind := classify(in)
	taken := nextPC != pc+uint32(in.Len)

	switch kind {
	case ctlHalt:
		c.finish()
		return
	case ctlCond:
		e := c.bias[pc]
		if e == nil {
			e = &biasEntry{}
			c.bias[pc] = e
		}
		// Decaying bias counter: an occasional contrary outcome weakens
		// confidence without discarding it, so strongly biased branches
		// stay promoted through rare flips.
		if e.count > 0 && e.dir == taken {
			if e.count < 4*c.cfg.BiasThreshold {
				e.count++
			}
		} else {
			e.count -= c.cfg.BiasThreshold / 2
			if e.count <= 0 {
				e.dir, e.count = taken, 1
			}
		}
		if e.count < c.cfg.BiasThreshold || e.dir != taken {
			// Unbiased, or the rare direction: the branch ends the frame
			// and is not included.
			c.EndUnbiased++
			c.finish()
			c.startAt(nextPC)
			return
		}
	case ctlIndirect:
		e := c.targets[pc]
		if e == nil {
			e = &targetEntry{}
			c.targets[pc] = e
		}
		if e.count > 0 && e.target == nextPC {
			if e.count < 4*c.cfg.TargetThreshold {
				e.count++
			}
		} else {
			e.count -= c.cfg.TargetThreshold / 2
			if e.count <= 0 {
				e.target, e.count = nextPC, 1
			}
		}
		if e.count < c.cfg.TargetThreshold || e.target != nextPC {
			c.EndUnstable++
			c.finish()
			c.startAt(nextPC)
			return
		}
	}

	// Room check: close the pending frame at a clean boundary first.
	if c.pending != nil && len(c.pending.UOps)+len(uops) > c.cfg.MaxUOps {
		c.EndMaxSize++
		c.finishAligned()
	}
	if c.pending == nil {
		c.startAt(pc)
	}
	f := c.pending
	instIdx := int32(f.NumX86)
	f.NumX86++
	f.PCs = append(f.PCs, pc)
	f.NextPCs = append(f.NextPCs, nextPC)

	mi := 0
	for _, u := range uops {
		conv := u
		switch {
		case u.Op == uop.BR:
			// Convert to an assertion of the biased direction.
			cond := u.Cond
			if !taken {
				cond = cond.Negate()
			}
			conv = uop.UOp{Op: uop.ASSERT, Cond: cond}
		case u.Op == uop.JR:
			// Stable indirect: assert the profiled target.
			conv = uop.UOp{Op: uop.CASSERT, Cond: x86.CondE, SrcA: u.SrcA, SrcB: uop.RegNone, Imm: int32(nextPC)}
		case u.Op == uop.JMP:
			// Internal direct jump: kept as a slot-occupying micro-op; the
			// optimizer's NOP pass removes it.
		}
		f.UOps = append(f.UOps, conv)
		f.InstIdx = append(f.InstIdx, instIdx)
		addr := uint32(0)
		sub := int8(-1)
		if u.Op.IsMem() {
			if mi < len(memAddrs) {
				addr = memAddrs[mi]
			}
			sub = int8(mi)
			mi++
		}
		f.MemAddr = append(f.MemAddr, addr)
		f.MemSub = append(f.MemSub, sub)
	}
	if kind != ctlNone {
		f.BlockEnd = append(f.BlockEnd, len(f.UOps)-1)
	}
	c.lastNext = nextPC

	// Loop-head alignment: a backward edge that does not return to this
	// frame's own start ends the frame, so the next frame begins exactly
	// at the loop head. All entries into a hot loop then converge on one
	// canonical self-chaining frame instead of a precessing family of
	// shifted tilings.
	if kind != ctlNone && nextPC <= pc && nextPC != f.StartPC {
		c.finish()
		c.startAt(nextPC)
		return
	}

	if len(f.UOps) >= c.cfg.MaxUOps {
		c.finishAligned()
	}
}

// Flush deposits any pending frame (end of stream).
func (c *Constructor) Flush() { c.finish() }

// Reset discards the pending frame without depositing it (used when the
// sequencer fetched a cached frame over the same instructions: the region
// is already covered, and rebuilding it from a different alignment would
// endlessly churn overlapping tilings). Bias tables are kept.
func (c *Constructor) Reset() {
	PutFrame(c.pending)
	c.pending = nil
}

// RetireFrame informs the constructor that a cached frame's instructions
// retired through a frame-cache fetch. The frame's already-converted
// content extends the pending frame, letting frames grow across commits
// toward the size limit and absorb newly biased branches between them —
// rePLay's frame promotion. memAddr, when non-nil, refreshes the
// per-micro-op aliasing profile with this execution's addresses.
func (c *Constructor) RetireFrame(f *Frame, memAddr []uint32) {
	if c.pending != nil && len(c.pending.UOps)+len(f.UOps) > c.cfg.MaxUOps {
		c.EndMaxSize++
		c.finishAligned()
	}
	if len(f.UOps) > c.cfg.MaxUOps/2 {
		// Already near capacity: growing would immediately overflow, so
		// leave construction idle until fetch exits to uncovered code.
		PutFrame(c.pending)
		c.pending = nil
		c.lastNext = f.ExitPC
		return
	}
	if c.pending == nil {
		c.startAt(f.StartPC)
	}
	p := c.pending
	off := int32(p.NumX86)
	base := len(p.UOps)
	p.UOps = append(p.UOps, f.UOps...)
	for _, ii := range f.InstIdx {
		p.InstIdx = append(p.InstIdx, ii+off)
	}
	p.MemSub = append(p.MemSub, f.MemSub...)
	if memAddr != nil {
		p.MemAddr = append(p.MemAddr, memAddr...)
	} else {
		p.MemAddr = append(p.MemAddr, f.MemAddr...)
	}
	p.PCs = append(p.PCs, f.PCs...)
	p.NextPCs = append(p.NextPCs, f.NextPCs...)
	for _, be := range f.BlockEnd {
		p.BlockEnd = append(p.BlockEnd, be+base)
	}
	p.NumX86 += f.NumX86
	c.lastNext = f.ExitPC
	if len(p.UOps) >= c.cfg.MaxUOps {
		c.EndMaxSize++
		c.finishAligned()
	}
}

// startAt begins a new pending frame at the given PC.
func (c *Constructor) startAt(pc uint32) {
	f := getFrame()
	f.ID = c.nextID
	f.StartPC = pc
	c.pending = f
	c.nextID++
}

// clock returns the construction-time timestamp for telemetry: the
// engine's cycle when wired in, the retire ordinal otherwise.
func (c *Constructor) clock() uint64 {
	if c.Now != nil {
		return c.Now()
	}
	return c.retired
}

// deposit hands a finished frame downstream and reports it to
// telemetry. Both finish paths funnel through here. The telemetry
// fields are captured before the callback: Deposit transfers ownership,
// and a receiver that drops the frame may recycle it immediately.
func (c *Constructor) deposit(f *Frame) {
	c.Constructed++
	id, pc, uops := f.ID, f.StartPC, len(f.UOps)
	if c.Deposit != nil {
		c.Deposit(f)
	}
	c.Tel.FrameConstructed(c.TelRun, c.clock(), id, pc, uops)
}

// finishAligned deposits the pending frame, preferring to cut it at the
// last point where control returned to the frame's own start. A frame
// whose exit equals its entry chains to itself in the frame cache, so hot
// loops are covered by one stable frame instead of an ever-precessing
// family of overlapping tilings.
func (c *Constructor) finishAligned() {
	f := c.pending
	c.pending = nil
	if f == nil {
		return
	}
	if len(f.UOps) < c.cfg.MinUOps {
		c.DroppedSmall++
		PutFrame(f)
		return
	}
	cutInst := -1
	for i := f.NumX86 - 1; i >= 0; i-- {
		if f.NextPCs[i] == f.StartPC {
			cutInst = i
			break
		}
	}
	if cutInst >= 0 {
		n := 0
		for i := range f.UOps {
			if int(f.InstIdx[i]) <= cutInst {
				n++
			}
		}
		if n >= c.cfg.MinUOps {
			if g := f.Truncate(n); g != nil {
				f = g
			}
		}
	}
	f.ExitPC = f.NextPCs[f.NumX86-1]
	c.deposit(f)
}

// finish deposits the pending frame if it meets the size minimum.
func (c *Constructor) finish() {
	f := c.pending
	c.pending = nil
	if f == nil {
		return
	}
	if len(f.UOps) < c.cfg.MinUOps {
		c.DroppedSmall++
		PutFrame(f)
		return
	}
	f.ExitPC = c.lastNext
	c.deposit(f)
}

// Truncate returns the largest prefix of the frame ending at an
// instruction boundary with at most maxUOps micro-ops, or nil if no
// instruction fits. Any such prefix is itself a valid frame: its internal
// control is asserted and its exit is the last instruction's successor.
func (f *Frame) Truncate(maxUOps int) *Frame {
	if len(f.UOps) <= maxUOps {
		return f
	}
	cut := 0 // micro-ops kept
	for i := 1; i <= len(f.UOps) && i <= maxUOps; i++ {
		if i == len(f.UOps) || f.InstIdx[i] != f.InstIdx[i-1] {
			cut = i
		}
	}
	if cut == 0 {
		return nil
	}
	insts := int(f.InstIdx[cut-1]) + 1
	out := &Frame{
		ID:      f.ID,
		StartPC: f.StartPC,
		ExitPC:  f.NextPCs[insts-1],
		UOps:    f.UOps[:cut],
		InstIdx: f.InstIdx[:cut],
		MemSub:  f.MemSub[:cut],
		MemAddr: f.MemAddr[:cut],
		NumX86:  insts,
		PCs:     f.PCs[:insts],
		NextPCs: f.NextPCs[:insts],
	}
	for _, be := range f.BlockEnd {
		if be < cut {
			out.BlockEnd = append(out.BlockEnd, be)
		}
	}
	return out
}

// String summarizes a frame.
func (f *Frame) String() string {
	return fmt.Sprintf("frame#%d pc=%#x exit=%#x uops=%d x86=%d",
		f.ID, f.StartPC, f.ExitPC, len(f.UOps), f.NumX86)
}
