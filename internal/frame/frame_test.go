package frame

import (
	"testing"

	"repro/internal/uop"
	"repro/internal/workload"
	"repro/internal/x86"
)

func collect(cfg Config) (*Constructor, *[]*Frame) {
	frames := &[]*Frame{}
	c := NewConstructor(cfg, func(f *Frame) { *frames = append(*frames, f) })
	return c, frames
}

// feedProfile captures a workload trace and runs it through a constructor.
func feedProfile(t *testing.T, name string, insts int, cfg Config) []*Frame {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := prog.Capture(insts)
	if err != nil {
		t.Fatal(err)
	}
	c, frames := collect(cfg)
	if err := FeedTrace(c, tr); err != nil {
		t.Fatal(err)
	}
	return *frames
}

func TestConstructorBasics(t *testing.T) {
	frames := feedProfile(t, "bzip2", 30_000, DefaultConfig())
	if len(frames) == 0 {
		t.Fatal("no frames constructed")
	}
	for _, f := range frames {
		if len(f.UOps) < 8 || len(f.UOps) > 256 {
			t.Errorf("%s: size out of bounds", f)
		}
		if len(f.UOps) != len(f.InstIdx) || len(f.UOps) != len(f.MemAddr) || len(f.UOps) != len(f.MemSub) {
			t.Errorf("%s: parallel slices inconsistent", f)
		}
		if len(f.PCs) != f.NumX86 || len(f.NextPCs) != f.NumX86 {
			t.Errorf("%s: path length %d != NumX86 %d", f, len(f.PCs), f.NumX86)
		}
		if f.PCs[0] != f.StartPC {
			t.Errorf("%s: path starts at %#x", f, f.PCs[0])
		}
		if f.NextPCs[f.NumX86-1] != f.ExitPC {
			t.Errorf("%s: exit mismatch", f)
		}
		// Frames contain no unconverted control flow.
		for i, u := range f.UOps {
			switch u.Op {
			case uop.BR, uop.JR:
				t.Errorf("%s: unconverted %s at %d", f, u.Op, i)
			}
		}
		// Path is contiguous: each instruction's successor is the next
		// path entry.
		for k := 0; k+1 < f.NumX86; k++ {
			if f.NextPCs[k] != f.PCs[k+1] {
				t.Errorf("%s: path discontinuity at %d", f, k)
			}
		}
	}
}

// TestBiasPromotion: an unbiased branch must terminate frames; once the
// bias threshold is reached it must be converted to an assertion.
func TestBiasPromotion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BiasThreshold = 4
	c, frames := collect(cfg)

	// Synthetic feed: a compare + always-taken branch, looped.
	cmp := x86.Inst{Op: x86.OpCMP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(0), Len: 3}
	br := x86.Inst{Op: x86.OpJCC, Cond: x86.CondE, Dst: x86.ImmOp(-5), Len: 2}
	add := x86.Inst{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX), Src: x86.ImmOp(1), Len: 3}
	cmpU := []uop.UOp{{Op: uop.SUB, Dest: uop.RegNone, SrcA: uop.EAX, SrcB: uop.RegNone, Imm: 0, WritesFlags: true}}
	brU := []uop.UOp{{Op: uop.BR, Cond: x86.CondE, Imm: 0x1000}}
	addU := []uop.UOp{{Op: uop.ADD, Dest: uop.EBX, SrcA: uop.EBX, SrcB: uop.RegNone, Imm: 1, WritesFlags: true, KeepCF: true}}

	for i := 0; i < 20; i++ {
		c.Retire(0x1000, add, addU, 0x1003, nil)
		c.Retire(0x1003, cmp, cmpU, 0x1006, nil)
		c.Retire(0x1006, br, brU, 0x1000, nil) // taken every time
	}
	c.Flush()

	if len(*frames) == 0 {
		t.Fatal("no frames")
	}
	// Early iterations end frames at the unbiased branch; later frames
	// must contain ASSERT conversions.
	var sawAssert bool
	for _, f := range *frames {
		for _, u := range f.UOps {
			if u.Op == uop.ASSERT {
				sawAssert = true
				if u.Cond != x86.CondE {
					t.Errorf("assert condition %s, want E", u.Cond)
				}
			}
		}
	}
	if !sawAssert {
		t.Error("biased branch never converted to assertion")
	}
}

// TestIndirectStability: stable indirect targets become CASSERTs; unstable
// ones terminate frames.
func TestIndirectStability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetThreshold = 3
	c, frames := collect(cfg)

	add := x86.Inst{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX), Src: x86.ImmOp(1), Len: 3}
	addU := []uop.UOp{{Op: uop.ADD, Dest: uop.EBX, SrcA: uop.EBX, SrcB: uop.RegNone, Imm: 1}}
	jr := x86.Inst{Op: x86.OpJMP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EDX), Len: 2}
	jrU := []uop.UOp{{Op: uop.JR, SrcA: uop.EDX}}

	for i := 0; i < 12; i++ {
		for k := 0; k < 4; k++ {
			c.Retire(0x2000+uint32(3*k), add, addU, 0x2000+uint32(3*k)+3, nil)
		}
		c.Retire(0x200C, jr, jrU, 0x2000, nil) // always the same target
	}
	c.Flush()

	var sawCassert bool
	for _, f := range *frames {
		for _, u := range f.UOps {
			if u.Op == uop.CASSERT {
				sawCassert = true
				if uint32(u.Imm) != 0x2000 {
					t.Errorf("CASSERT target %#x", uint32(u.Imm))
				}
				if u.SrcA != uop.EDX {
					t.Errorf("CASSERT source %s", u.SrcA)
				}
			}
		}
	}
	if !sawCassert {
		t.Error("stable indirect never converted to CASSERT")
	}
}

// TestMaxSize: frames never exceed the maximum and split at instruction
// boundaries.
func TestMaxSize(t *testing.T) {
	cfg := Config{MinUOps: 8, MaxUOps: 32, BiasThreshold: 1, TargetThreshold: 1}
	frames := feedProfile(t, "bzip2", 20_000, cfg)
	for _, f := range frames {
		if len(f.UOps) > 32 {
			t.Errorf("%s exceeds max size", f)
		}
	}
}

// TestCoverage: with default parameters, a healthy fraction of retired
// micro-ops should land in frames for a SPEC-like workload.
func TestCoverage(t *testing.T) {
	frames := feedProfile(t, "vortex", 50_000, DefaultConfig())
	total := 0
	for _, f := range frames {
		total += len(f.UOps)
	}
	if total == 0 {
		t.Fatal("no frame coverage at all")
	}
}

// TestLoopUnrolling: a biased loop back-edge lets frames span multiple
// iterations (the paper's source of redundant loads in frames).
func TestLoopUnrolling(t *testing.T) {
	frames := feedProfile(t, "bzip2", 50_000, DefaultConfig())
	maxInsts := 0
	for _, f := range frames {
		if f.NumX86 > maxInsts {
			maxInsts = f.NumX86
		}
	}
	// bzip2's hot loop body is ~50 instructions; frames up to 256 uops
	// should span more than one iteration worth of code.
	if maxInsts < 30 {
		t.Errorf("largest frame only %d x86 instructions; unrolling not happening", maxInsts)
	}
}
