package frame

import (
	"testing"

	"repro/internal/uop"
	"repro/internal/x86"
)

// smallFrame builds a loop-shaped frame of n single-uop instructions at
// 4-byte spacing, exiting back to its own start.
func smallFrame(start uint32, n int) *Frame {
	f := &Frame{StartPC: start, ExitPC: start, NumX86: n}
	for i := 0; i < n; i++ {
		pc := start + uint32(4*i)
		next := pc + 4
		if i == n-1 {
			next = start
		}
		f.UOps = append(f.UOps, uop.UOp{Op: uop.ADD, Dest: uop.EAX, SrcA: uop.EAX, SrcB: uop.RegNone, Imm: 1})
		f.InstIdx = append(f.InstIdx, int32(i))
		f.MemSub = append(f.MemSub, -1)
		f.MemAddr = append(f.MemAddr, 0)
		f.PCs = append(f.PCs, pc)
		f.NextPCs = append(f.NextPCs, next)
	}
	return f
}

func TestTruncate(t *testing.T) {
	f := smallFrame(0x1000, 20)
	g := f.Truncate(7)
	if g == nil {
		t.Fatal("truncate returned nil")
	}
	if len(g.UOps) != 7 || g.NumX86 != 7 {
		t.Fatalf("truncated to %d uops / %d insts", len(g.UOps), g.NumX86)
	}
	if g.ExitPC != f.PCs[7] {
		t.Errorf("exit = %#x, want %#x", g.ExitPC, f.PCs[7])
	}
	if len(g.PCs) != 7 || len(g.NextPCs) != 7 || len(g.MemSub) != 7 {
		t.Error("parallel slices inconsistent after truncation")
	}
	// No-op when it already fits.
	if h := f.Truncate(100); h != f {
		t.Error("truncate of fitting frame should return the frame itself")
	}
}

// TestTruncateMultiUOpBoundary: the cut lands on an instruction boundary
// even when instructions have several micro-ops.
func TestTruncateMultiUOpBoundary(t *testing.T) {
	f := &Frame{StartPC: 0x100, ExitPC: 0x200, NumX86: 3}
	// Three instructions of 2, 3, 2 micro-ops.
	shape := []int{2, 3, 2}
	pc := uint32(0x100)
	for i, n := range shape {
		for k := 0; k < n; k++ {
			f.UOps = append(f.UOps, uop.UOp{Op: uop.NOP})
			f.InstIdx = append(f.InstIdx, int32(i))
			f.MemSub = append(f.MemSub, -1)
			f.MemAddr = append(f.MemAddr, 0)
		}
		f.PCs = append(f.PCs, pc)
		f.NextPCs = append(f.NextPCs, pc+4)
		pc += 4
	}
	g := f.Truncate(4) // cuts inside instruction 1 -> keep only inst 0
	if g == nil || g.NumX86 != 1 || len(g.UOps) != 2 {
		t.Fatalf("truncate(4) = %+v", g)
	}
	g = f.Truncate(5) // exactly insts 0+1
	if g == nil || g.NumX86 != 2 || len(g.UOps) != 5 {
		t.Fatalf("truncate(5) = %+v", g)
	}
	if f.Truncate(1) != nil {
		t.Error("truncate below the first instruction should return nil")
	}
}

// TestRetireFrameGrowth: committed frames extend the pending frame until
// the size limit, then deposit one grown frame keyed at the first start.
func TestRetireFrameGrowth(t *testing.T) {
	cfg := DefaultConfig()
	var deposited []*Frame
	c := NewConstructor(cfg, func(f *Frame) { deposited = append(deposited, f) })

	f := smallFrame(0x1000, 20) // 20 uops, self-looping
	for i := 0; i < 30; i++ {
		c.RetireFrame(f, nil)
	}
	if len(deposited) == 0 {
		t.Fatal("growth never deposited")
	}
	g := deposited[0]
	if g.StartPC != 0x1000 {
		t.Errorf("grown frame starts at %#x", g.StartPC)
	}
	if len(g.UOps) <= len(f.UOps) {
		t.Errorf("no growth: %d uops", len(g.UOps))
	}
	if len(g.UOps) > cfg.MaxUOps {
		t.Errorf("grown frame exceeds limit: %d", len(g.UOps))
	}
	// Path bookkeeping remains consistent.
	if len(g.PCs) != g.NumX86 || g.NextPCs[g.NumX86-1] != g.ExitPC {
		t.Error("grown frame path inconsistent")
	}
	for k := 0; k+1 < g.NumX86; k++ {
		if g.NextPCs[k] != g.PCs[k+1] {
			t.Fatalf("grown path discontinuity at %d", k)
		}
	}
}

// TestRetireFrameLargeFrameIdles: a frame already over half the limit
// does not grow (it would overflow immediately).
func TestRetireFrameLargeFrameIdles(t *testing.T) {
	cfg := DefaultConfig()
	var deposited []*Frame
	c := NewConstructor(cfg, func(f *Frame) { deposited = append(deposited, f) })
	big := smallFrame(0x2000, cfg.MaxUOps/2+10)
	for i := 0; i < 10; i++ {
		c.RetireFrame(big, nil)
	}
	if len(deposited) != 0 {
		t.Errorf("near-capacity frame grew: %d deposits", len(deposited))
	}
}

// TestFinishAlignedCutsAtLoopClosure: an overflowing pending frame is cut
// at the last return to its own start.
func TestFinishAlignedCutsAtLoopClosure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinUOps = 4
	var deposited []*Frame
	c := NewConstructor(cfg, func(f *Frame) { deposited = append(deposited, f) })

	// Feed a 10-instruction loop three and a half times via Retire.
	loop := smallFrame(0x3000, 10)
	add := x86.Inst{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1), Len: 4}
	uops := []uop.UOp{{Op: uop.ADD, Dest: uop.EAX, SrcA: uop.EAX, SrcB: uop.RegNone, Imm: 1}}
	total := 0
	for total < cfg.MaxUOps+5 {
		for k := 0; k < loop.NumX86; k++ {
			c.Retire(loop.PCs[k], add, uops, loop.NextPCs[k], nil)
			total++
		}
	}
	if len(deposited) == 0 {
		t.Fatal("no deposit at size limit")
	}
	g := deposited[0]
	if g.ExitPC != g.StartPC {
		t.Errorf("size-limited loop frame not cut at loop closure: start %#x exit %#x",
			g.StartPC, g.ExitPC)
	}
}
