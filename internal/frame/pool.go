package frame

import (
	"sync"

	"repro/internal/uop"
)

// Frame pooling. The constructor allocates a Frame — and grows seven
// slices — for every pending region it opens, and most of those frames
// die young: dropped below the size minimum, displaced by a cached
// fetch, deduplicated against an already-cached region, or evicted
// from the frame cache. Recycling the shells plus their slice backings
// removes the dominant allocation source on the frame-construction hot
// path. The µop body itself cycles through the shared buffer pool in
// internal/uop; the auxiliary per-µop and per-instruction slices ride
// along with the shell.
//
// Ownership discipline (the -race suite pins it): PutFrame requires
// the caller to hold the frame's only live reference. Two cases
// therefore never recycle:
//
//   - a frame handed to a Deposit callback or DepositHook that may
//     retain it (engines only recycle when no hook is attached);
//   - the donor of a Truncate, whose slices alias the surviving
//     truncated frame — the donor is simply left to the GC.
var framePool = sync.Pool{
	New: func() any { return new(Frame) },
}

// getFrame returns an empty frame with recycled slice capacity.
func getFrame() *Frame {
	f := framePool.Get().(*Frame)
	f.UOps = uop.GetBuf()
	return f
}

// PutFrame recycles a frame the caller exclusively owns. All content
// is cleared here (not in getFrame), so a pooled frame is ready to
// hand out immediately.
func PutFrame(f *Frame) {
	if f == nil {
		return
	}
	f.ID = 0
	f.StartPC, f.ExitPC = 0, 0
	f.NumX86 = 0
	uop.PutBuf(f.UOps)
	f.UOps = nil
	f.InstIdx = f.InstIdx[:0]
	f.MemSub = f.MemSub[:0]
	f.PCs = f.PCs[:0]
	f.NextPCs = f.NextPCs[:0]
	f.MemAddr = f.MemAddr[:0]
	f.BlockEnd = f.BlockEnd[:0]
	framePool.Put(f)
}
