// Package logflag builds structured loggers from the conventional
// -log-format/-log-level flag pair, so every command in the repo
// (replayd, replaysim, benchd) accepts the same logging knobs with the
// same spellings and error messages.
package logflag

import (
	"fmt"
	"io"
	"log/slog"
)

// ParseLevel maps a -log-level flag value to its slog level.
func ParseLevel(level string) (slog.Level, error) {
	switch level {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
}

// New builds a logger writing to w in the given format ("text" or
// "json") at the given minimum level ("debug", "info", "warn",
// "error").
func New(w io.Writer, format, level string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}
