package logflag

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestLevels(t *testing.T) {
	for level, want := range map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
	} {
		got, err := ParseLevel(level)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", level, got, err)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestFormatsAndFiltering(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("shown", "k", "v")
	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("want exactly one record, got %q", line)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("not JSON: %q (%v)", line, err)
	}
	if rec["msg"] != "shown" || rec["k"] != "v" {
		t.Errorf("bad record: %v", rec)
	}

	buf.Reset()
	l, err = New(&buf, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("fine")
	if !strings.Contains(buf.String(), "fine") {
		t.Errorf("text handler dropped a debug record: %q", buf.String())
	}

	if _, err := New(&buf, "xml", "info"); err == nil {
		t.Error("New accepted an unknown format")
	}
}
