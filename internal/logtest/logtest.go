// Package logtest provides a capturing slog.Handler for tests: records
// are kept in memory with their attributes flattened into a map, so a
// test can assert "every log line from this request carried job_id X"
// without parsing rendered text.
package logtest

import (
	"context"
	"log/slog"
	"sync"
)

// Record is one captured log call.
type Record struct {
	Level   slog.Level
	Message string
	Attrs   map[string]any
}

// Has reports whether the record carries the attribute with that value
// (compared via ==; values are what slog resolved them to).
func (r Record) Has(key string, value any) bool {
	v, ok := r.Attrs[key]
	return ok && v == value
}

// store is the record sink shared by a handler and every WithAttrs /
// WithGroup clone derived from it.
type store struct {
	mu   sync.Mutex
	recs []Record
}

// Handler is a slog.Handler test double, safe for concurrent logging.
// Use NewHandler; clones made by WithAttrs/WithGroup feed the same
// record list.
type Handler struct {
	st    *store
	attrs []slog.Attr
	group string
}

// NewHandler returns an empty capturing handler.
func NewHandler() *Handler {
	return &Handler{st: &store{}}
}

// Enabled captures everything down to Debug.
func (h *Handler) Enabled(context.Context, slog.Level) bool { return true }

// Handle records the entry.
func (h *Handler) Handle(_ context.Context, r slog.Record) error {
	rec := Record{Level: r.Level, Message: r.Message, Attrs: map[string]any{}}
	for _, a := range h.attrs {
		h.addAttr(rec.Attrs, a)
	}
	r.Attrs(func(a slog.Attr) bool {
		h.addAttr(rec.Attrs, a)
		return true
	})
	h.st.mu.Lock()
	h.st.recs = append(h.st.recs, rec)
	h.st.mu.Unlock()
	return nil
}

func (h *Handler) addAttr(into map[string]any, a slog.Attr) {
	key := a.Key
	if h.group != "" {
		key = h.group + "." + key
	}
	into[key] = a.Value.Resolve().Any()
}

// WithAttrs returns a clone that stamps the attributes on every record;
// captures still land in the parent's shared record list.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	clone := *h
	clone.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &clone
}

// WithGroup returns a clone that prefixes attribute keys with
// "name." (nested groups chain).
func (h *Handler) WithGroup(name string) slog.Handler {
	clone := *h
	if clone.group != "" {
		clone.group += "." + name
	} else {
		clone.group = name
	}
	return &clone
}

// Records returns a snapshot of everything captured so far.
func (h *Handler) Records() []Record {
	h.st.mu.Lock()
	defer h.st.mu.Unlock()
	return append([]Record(nil), h.st.recs...)
}

// ByMessage returns the captured records with that message.
func (h *Handler) ByMessage(msg string) []Record {
	var out []Record
	for _, r := range h.Records() {
		if r.Message == msg {
			out = append(out, r)
		}
	}
	return out
}
