package logtest

import (
	"log/slog"
	"sync"
	"testing"
)

func TestCapture(t *testing.T) {
	h := NewHandler()
	log := slog.New(h)
	log.Info("hello", "a", 1, "b", "two")
	log.Warn("trouble", "err", "nope")

	recs := h.Records()
	if len(recs) != 2 {
		t.Fatalf("captured %d records, want 2", len(recs))
	}
	if recs[0].Message != "hello" || recs[0].Level != slog.LevelInfo {
		t.Errorf("first record %+v", recs[0])
	}
	if !recs[0].Has("a", int64(1)) || !recs[0].Has("b", "two") {
		t.Errorf("first record attrs %v", recs[0].Attrs)
	}
	if got := h.ByMessage("trouble"); len(got) != 1 || got[0].Level != slog.LevelWarn {
		t.Errorf("ByMessage(trouble) = %+v", got)
	}
	if len(h.ByMessage("absent")) != 0 {
		t.Error("ByMessage matched a message never logged")
	}
}

func TestWithAttrsAndGroupShareStore(t *testing.T) {
	h := NewHandler()
	base := slog.New(h)
	scoped := base.With("job_id", "job-7")
	grouped := base.WithGroup("http")

	scoped.Info("scoped line", "extra", true)
	grouped.Info("grouped line", "status", 200)
	base.Info("plain line")

	if n := len(h.Records()); n != 3 {
		t.Fatalf("clones captured into %d records, want 3 in the shared store", n)
	}
	sc := h.ByMessage("scoped line")[0]
	if !sc.Has("job_id", "job-7") || !sc.Has("extra", true) {
		t.Errorf("scoped attrs %v", sc.Attrs)
	}
	gr := h.ByMessage("grouped line")[0]
	if !gr.Has("http.status", int64(200)) {
		t.Errorf("group prefix missing: %v", gr.Attrs)
	}
}

func TestConcurrentLogging(t *testing.T) {
	h := NewHandler()
	log := slog.New(h).With("worker", "w")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				log.Info("tick")
				_ = h.Records()
			}
		}()
	}
	wg.Wait()
	if n := len(h.Records()); n != 400 {
		t.Fatalf("captured %d records, want 400", n)
	}
}
