// Package noise is the shared statistical-significance gate: the 2×SEM
// rule internal/benchmark uses to keep jittery benchmarks from flagging
// regressions, factored into a leaf package so the ablation diff engine
// (internal/diff, below sim in the import graph) applies the identical
// gate to its run deltas. One implementation, two consumers — a diff
// report and a benchmark comparison can never disagree about what
// counts as signal.
package noise

import "math"

// Summary is the sufficient statistic of one metric's repeated samples.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev,omitempty"`
}

// Summarize reduces repeat samples to their summary. The standard
// deviation is the population form benchmark.Summarize uses, so bounds
// computed from either source agree.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	for _, v := range samples {
		s.Mean += v
	}
	s.Mean /= float64(s.N)
	var sq float64
	for _, v := range samples {
		d := v - s.Mean
		sq += d * d
	}
	s.Stddev = math.Sqrt(sq / float64(s.N))
	return s
}

// Bound returns the significance bound for comparing two summaries:
// twice the combined standard error of the two means. A side with a
// single repeat carries no spread information and contributes nothing;
// when neither side does, the bound is 0.
func Bound(a, b Summary) float64 {
	se := 0.0
	if a.N > 1 {
		se += a.Stddev * a.Stddev / float64(a.N)
	}
	if b.N > 1 {
		se += b.Stddev * b.Stddev / float64(b.N)
	}
	if se == 0 {
		return 0
	}
	return 2 * math.Sqrt(se)
}

// Beyond reports whether the two means differ by more than Bound.
// With no spread information (bound 0) any difference passes — a
// single-repeat comparison has nothing to gate on, matching the
// benchmark comparator's historical behaviour.
func Beyond(a, b Summary) bool {
	bd := Bound(a, b)
	if bd == 0 {
		return true
	}
	return math.Abs(b.Mean-a.Mean) > bd
}

// Direction-aware verdicts for a variant-vs-baseline delta.
const (
	VerdictImproved  = "improved"
	VerdictRegressed = "regressed"
	VerdictNoise     = "noise"
)

// Verdict classifies variant against baseline: the raw mean delta
// (variant − baseline), the significance bound it was gated on, and
// whether the change is an improvement, a regression, or noise given
// the metric's better-direction. A delta of exactly zero is noise
// regardless of the bound.
func Verdict(base, variant Summary, higherBetter bool) (verdict string, delta, bound float64) {
	delta = variant.Mean - base.Mean
	bound = Bound(base, variant)
	if delta == 0 || !Beyond(base, variant) {
		return VerdictNoise, delta, bound
	}
	improved := delta > 0
	if !higherBetter {
		improved = !improved
	}
	if improved {
		return VerdictImproved, delta, bound
	}
	return VerdictRegressed, delta, bound
}
