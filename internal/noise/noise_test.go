package noise

import (
	"math"
	"testing"
)

// TestSummarize pins the population-stddev form benchmark.Summarize
// uses, so the two packages' bounds stay interchangeable.
func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Stddev != 2 {
		t.Fatalf("Summarize = %+v, want {8 5 2}", s)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty Summarize = %+v", z)
	}
}

// TestBoundAndBeyond: single-repeat sides contribute no spread; with no
// spread at all any difference is beyond (nothing to gate on); with
// spread the gate is 2× the combined SEM.
func TestBoundAndBeyond(t *testing.T) {
	one := Summary{N: 1, Mean: 10}
	if Bound(one, Summary{N: 1, Mean: 20}) != 0 {
		t.Error("single-repeat bound should be 0")
	}
	if !Beyond(one, Summary{N: 1, Mean: 10.001}) {
		t.Error("zero bound must pass any difference")
	}

	a := Summarize([]float64{10, 10, 10, 10})
	b := Summarize([]float64{10.5, 10.5, 10.5, 10.5})
	// Both sides have zero stddev: bound 0, any delta passes.
	if !Beyond(a, b) {
		t.Error("zero-stddev sides must pass")
	}

	a = Summarize([]float64{9, 10, 11})
	b = Summarize([]float64{9.5, 10.5, 11.5})
	want := 2 * math.Sqrt(2*a.Stddev*a.Stddev/3)
	if got := Bound(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("Bound = %g, want %g", got, want)
	}
	if Beyond(a, b) {
		t.Error("0.5 shift inside a ~1.9 bound must gate to noise")
	}
	c := Summarize([]float64{19, 20, 21})
	if !Beyond(a, c) {
		t.Error("10 shift beyond the bound must pass")
	}
}

// TestVerdict covers the direction-aware classification.
func TestVerdict(t *testing.T) {
	lo := Summarize([]float64{9, 10, 11})
	hi := Summarize([]float64{19, 20, 21})
	cases := []struct {
		base, vari   Summary
		higherBetter bool
		want         string
	}{
		{lo, hi, true, VerdictImproved},
		{lo, hi, false, VerdictRegressed},
		{hi, lo, true, VerdictRegressed},
		{hi, lo, false, VerdictImproved},
		{lo, lo, true, VerdictNoise}, // delta exactly zero
		{Summarize([]float64{9, 10, 11}), Summarize([]float64{9.2, 10.2, 11.2}), true, VerdictNoise},
	}
	for i, c := range cases {
		got, _, _ := Verdict(c.base, c.vari, c.higherBetter)
		if got != c.want {
			t.Errorf("case %d: verdict %q, want %q", i, got, c.want)
		}
	}
}
