package opt

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/translate"
	"repro/internal/uop"
	"repro/internal/x86"
)

// buildCallFrame constructs a frame spanning a CALL, a tiny callee, and
// its RET — the paper's Section 3.3 scenario: "the load of the return
// address in micro-operation 15 is also eliminated ... constant
// propagation from the call site identifies the return jump in 17 as a
// constant target and removes it."
func buildCallFrame(t *testing.T) *frame.Frame {
	t.Helper()
	// 0x1000: CALL f          (5 bytes)
	// 0x1005: ADD EBX, 1      (return site; not part of this frame)
	// f:      ADD EAX, 7
	//         RET
	call := x86.Inst{Op: x86.OpCALL, Cond: x86.CondNone, Dst: x86.ImmOp(0)}
	enc, _ := x86.Encode(call)
	call.Len = len(enc) // 5

	fPC := uint32(0x1000 + 5 + 3) // after CALL and the ADD EBX,1 (3 bytes)
	call.Dst = x86.ImmOp(int32(fPC - 0x1005))
	addEAX := x86.Inst{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(7)}
	enc, _ = x86.Encode(addEAX)
	addEAX.Len = len(enc)
	ret := x86.Inst{Op: x86.OpRET, Cond: x86.CondNone}
	ret.Len = 1

	cfg := frame.DefaultConfig()
	cfg.BiasThreshold = 1
	cfg.TargetThreshold = 1
	cfg.MinUOps = 4
	var out *frame.Frame
	cons := frame.NewConstructor(cfg, func(f *frame.Frame) { out = f })

	const sp = uint32(0x9_0000)
	feed := func(in x86.Inst, pc, next uint32, addrs ...uint32) {
		uops, err := translate.UOps(in, pc)
		if err != nil {
			t.Fatal(err)
		}
		cons.Retire(pc, in, uops, next, addrs)
	}
	feed(call, 0x1000, fPC, sp-4)                   // pushes 0x1005
	feed(addEAX, fPC, fPC+uint32(addEAX.Len))       // callee body
	feed(ret, fPC+uint32(addEAX.Len), 0x1005, sp-4) // returns to 0x1005
	cons.Flush()
	if out == nil {
		t.Fatal("no frame")
	}
	return out
}

// TestCallReturnFolding: inside one frame, store forwarding feeds the
// pushed (constant) return address to the RET's load, and constant
// propagation discharges the return-target assertion — leaving no loads
// and no asserts.
func TestCallReturnFolding(t *testing.T) {
	f := buildCallFrame(t)
	of := Remap(f, ScopeFrame)
	st := Optimize(of, AllOptions())

	if n := of.NumValidLoads(); n != 0 {
		for i := range of.Ops {
			if of.Ops[i].Valid {
				t.Logf("  %s", &of.Ops[i])
			}
		}
		t.Errorf("return-address load not eliminated: %d loads (stats %+v)", n, st)
	}
	for i := range of.Ops {
		o := &of.Ops[i]
		if o.Valid && (o.Op == uop.ASSERT || o.Op == uop.CASSERT) {
			t.Errorf("return-target assertion not discharged: op %d %s", i, o)
		}
	}
	// The frame still performs the return-address store (stores are never
	// removed) and the callee's ADD.
	stores, adds := 0, 0
	for i := range of.Ops {
		o := &of.Ops[i]
		if !o.Valid {
			continue
		}
		switch o.Op {
		case uop.STORE:
			stores++
		case uop.ADD:
			adds++
		}
	}
	if stores != 1 {
		t.Errorf("stores = %d, want 1", stores)
	}
	if adds < 1 {
		t.Error("callee ADD missing")
	}

	// Semantics: EAX += 7, ESP unchanged net of call+ret, and the return
	// address was stored.
	regs := &uop.Regs{}
	regs.Set(uop.ESP, 0x9_0000)
	regs.Set(uop.EAX, 100)
	res, err := Execute(of, regs, uop.MapMemory{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("folded frame aborted")
	}
	if got := res.Regs.Get(uop.EAX); got != 107 {
		t.Errorf("EAX = %d, want 107", got)
	}
	if got := res.Regs.Get(uop.ESP); got != 0x9_0000 {
		t.Errorf("ESP = %#x, want %#x", got, 0x9_0000)
	}
	if len(res.Stores) != 1 || res.Stores[0].Val != 0x1005 {
		t.Errorf("stores = %+v, want return address 0x1005", res.Stores)
	}
}

// TestCallReturnKeptWithoutCP: without constant propagation the
// return-target assertion must survive (it cannot be discharged).
func TestCallReturnKeptWithoutCP(t *testing.T) {
	f := buildCallFrame(t)
	of := Remap(f, ScopeFrame)
	opts := AllOptions()
	opts.CP = false
	Optimize(of, opts)
	asserts := 0
	for i := range of.Ops {
		if of.Ops[i].Valid && of.Ops[i].Op.IsAssert() {
			asserts++
		}
	}
	if asserts == 0 {
		t.Error("assertion discharged without constant propagation")
	}
}
