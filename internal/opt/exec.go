package opt

import (
	"fmt"

	"repro/internal/uop"
	"repro/internal/x86"
)

// ReadMemory is the read-only memory view a frame executes against.
// Frame stores are buffered (frames are atomic) and only returned for
// commit; they never touch the underlying memory.
type ReadMemory interface {
	Load32(addr uint32) uint32
}

// MemWrite is one buffered store of a frame execution, in program order.
type MemWrite struct {
	Addr uint32
	Val  uint32
}

// ExecResult reports a functional frame execution.
type ExecResult struct {
	// Aborted is set when an assertion fired or an unsafe store
	// conflicted; AbortPos is the buffer index responsible and
	// UnsafeConflict distinguishes the cause.
	Aborted        bool
	AbortPos       int
	UnsafeConflict bool

	// Committed state (meaningful only when !Aborted).
	Regs   uop.Regs   // final architectural register state
	Stores []MemWrite // stores in program order
	Loads  int        // loads actually performed
}

// overlayMem layers the frame's buffered stores over the backing memory
// so later loads observe earlier in-frame stores without mutating it.
type overlayMem struct {
	base    ReadMemory
	written map[uint32]uint32
}

func (m *overlayMem) Load32(addr uint32) uint32 {
	if v, ok := m.written[addr]; ok {
		return v
	}
	return m.base.Load32(addr)
}

func (m *overlayMem) Store32(addr uint32, v uint32) { m.written[addr] = v }

// scratch register assignments used to funnel FrameOps through uop.Eval.
const (
	scrA = uop.Reg(0)
	scrB = uop.Reg(1)
	scrD = uop.Reg(2)
)

// Execute functionally evaluates the frame against an entry register
// state and memory — the dataflow semantics of the renamed form: each op
// reads its sources by reference, and "physical register m" is the value
// produced at buffer index m. Used by the state verifier and the frame
// tests.
func Execute(of *OptFrame, entry *uop.Regs, mem ReadMemory) (ExecResult, error) {
	n := len(of.Ops)
	values := make([]uint32, n)
	flags := make([]x86.Flags, n)
	res := ExecResult{}

	ov := &overlayMem{base: mem, written: make(map[uint32]uint32)}

	storeAddrs := make(map[int32]uint32)

	resolve := func(r Ref) uint32 {
		switch r.Kind {
		case RefLiveIn:
			return entry.Get(r.Arch)
		case RefOp:
			return values[r.Idx]
		}
		return 0
	}
	resolveF := func(r Ref) x86.Flags {
		switch r.Kind {
		case RefLiveIn:
			return entry.Flags()
		case RefOp:
			return flags[r.Idx]
		}
		return 0
	}

	execOne := func(i int, o *FrameOp) (bool, error) {
		var regs uop.Regs
		u := uop.UOp{
			Op: o.Op, Cond: o.Cond, Dest: scrD,
			SrcA: uop.RegNone, SrcB: uop.RegNone,
			Imm: o.Imm, Scale: o.Scale,
			WritesFlags: o.WritesFlags, KeepCF: o.KeepCF,
		}
		if o.SrcA.Kind != RefNone {
			u.SrcA = scrA
			regs.Set(scrA, resolve(o.SrcA))
		}
		if o.SrcB.Kind != RefNone {
			u.SrcB = scrB
			regs.Set(scrB, resolve(o.SrcB))
		}
		if o.SrcF.Kind != RefNone {
			regs.SetFlags(resolveF(o.SrcF))
		}
		// Memory ops use scrA as the base even when absolute (SrcA RefNone
		// resolves to zero and the immediate carries the address), matching
		// uop.Eval's addressing.
		out, err := uop.Eval(u, &regs, ov)
		if err != nil {
			return false, fmt.Errorf("opt: execute frame %#x op %d (%s): %w", of.StartPC, i, o.Op, err)
		}
		if out.AssertFired {
			res.Aborted, res.AbortPos = true, i
			return true, nil
		}
		if out.IsMem {
			if out.IsStore {
				if o.Unsafe {
					storeAddrs[int32(i)] = out.MemAddr
				}
				res.Stores = append(res.Stores, MemWrite{Addr: out.MemAddr, Val: out.StoreVal})
			} else {
				res.Loads++
			}
		}
		values[i] = regs.Get(scrD)
		if o.WritesFlags {
			flags[i] = regs.Flags()
		}
		return false, nil
	}
	var stop bool
	var execErr error
	of.Iterate(func(idx int32, o *FrameOp) {
		if stop || execErr != nil {
			return
		}
		stop, execErr = execOne(int(idx), o)
	})
	if execErr != nil {
		return res, execErr
	}
	if res.Aborted {
		return res, nil
	}

	// Unsafe-store conflict check: each speculated-across store must not
	// have touched the word its guarded (eliminated) load would have read.
	for _, g := range of.UnsafeGuards {
		sa, ok := storeAddrs[g.Store]
		if !ok {
			continue
		}
		addr := resolve(g.Base) + uint32(g.Imm)
		if g.Index.Kind != RefNone {
			addr += resolve(g.Index) * uint32(g.Scale)
		}
		d := int64(sa) - int64(addr)
		if d < 0 {
			d = -d
		}
		if d < 4 {
			res.Aborted, res.AbortPos, res.UnsafeConflict = true, int(g.Store), true
			return res, nil
		}
	}

	// Commit: the frame-end producers recorded by Remap deliver the final
	// architectural state. A removed final producer was an identity move,
	// so the entry value stands.
	res.Regs = *entry
	for r := 0; r < 8; r++ {
		if ref := of.Final[r]; ref.Kind == RefOp && of.Ops[ref.Idx].Valid {
			res.Regs.Set(uop.Reg(r), values[ref.Idx])
		}
	}
	if ref := of.FinalFlags; ref.Kind == RefOp && of.Ops[ref.Idx].Valid {
		res.Regs.SetFlags(flags[ref.Idx])
	}
	return res, nil
}
