// Package opt implements the rePLay optimization engine (Sections 3-4):
// the Remapper that renders frames into explicitly renamed form (every
// micro-op's destination is its buffer index), dependency traversal, the
// seven optimization passes, and the functional frame executor used by
// the state verifier.
package opt

import (
	"fmt"
	"sync"

	"repro/internal/frame"
	"repro/internal/uop"
	"repro/internal/x86"
)

// RefKind distinguishes micro-op operand sources in renamed form.
type RefKind uint8

// Operand source kinds.
const (
	// RefNone marks an absent operand (the immediate substitutes for an
	// absent SrcB; an absent memory base means absolute addressing).
	RefNone RefKind = iota
	// RefLiveIn names an architectural register live into the frame.
	RefLiveIn
	// RefOp names the micro-op at index Idx as the producer.
	RefOp
)

// Ref is a renamed operand source: nothing, a live-in architectural
// register, or the output of an earlier micro-op in the frame buffer.
type Ref struct {
	Kind RefKind
	Arch uop.Reg // for RefLiveIn
	Idx  int32   // for RefOp
}

func liveIn(r uop.Reg) Ref { return Ref{Kind: RefLiveIn, Arch: r} }
func opRef(i int32) Ref    { return Ref{Kind: RefOp, Idx: i} }

func (r Ref) String() string {
	switch r.Kind {
	case RefLiveIn:
		return r.Arch.String() + "^in"
	case RefOp:
		return fmt.Sprintf("p%d", r.Idx)
	}
	return "-"
}

// FrameOp is one micro-op in the optimizer's renamed form (the paper's
// Figure 4): explicit physical sources (Refs), architectural destination,
// and live-in/live-out marking. A FrameOp at buffer index m produces
// "physical register m".
type FrameOp struct {
	Valid bool
	Op    uop.Op
	Cond  x86.Cond

	SrcA, SrcB Ref // value sources
	SrcF       Ref // flags source, when the op reads flags
	Imm        int32
	Scale      uint8

	WritesFlags bool
	KeepCF      bool

	// ArchDest is the architectural destination register (RegNone if the
	// op produces no register value).
	ArchDest uop.Reg

	// LiveOut/FlagsLiveOut mark values the frame must deliver to
	// architectural state (scope-dependent; computed by Remap).
	LiveOut      bool
	FlagsLiveOut bool

	// InstIdx is the originating x86 instruction ordinal; MemSub is the
	// memory-transaction ordinal within that instruction (-1 if none).
	InstIdx int32
	MemSub  int8
	// ProfAddr is the dynamic address observed at construction (memory
	// ops; the aliasing profile).
	ProfAddr uint32
	// Block is the basic-block ordinal within the frame.
	Block int32

	// Unsafe marks stores that speculative memory optimization relies on
	// not aliasing; they are checked at runtime.
	Unsafe bool
}

// IsMem reports whether the op accesses memory.
func (o *FrameOp) IsMem() bool { return o.Op == uop.LOAD || o.Op == uop.STORE }

// HasImmB reports whether the second operand is the immediate.
func (o *FrameOp) HasImmB() bool { return o.SrcB.Kind == RefNone }

// Scope selects the optimization scope of Section 3.
type Scope int

// Scopes, in increasing power.
const (
	// ScopeIntraBlock optimizes each constituent basic block in
	// isolation (Figure 2 third column, Figure 9 "Block").
	ScopeIntraBlock Scope = iota
	// ScopeInterBlock assumes a single entry but allows exits at every
	// converted branch (the trace-cache model, Figure 2 fourth column).
	ScopeInterBlock
	// ScopeFrame treats the whole frame as one atomic block (Figure 2
	// fifth column; rePLay's model).
	ScopeFrame
)

func (s Scope) String() string {
	switch s {
	case ScopeIntraBlock:
		return "intra-block"
	case ScopeInterBlock:
		return "inter-block"
	default:
		return "frame"
	}
}

// OptFrame is a frame in renamed form, the unit the optimizer works on.
type OptFrame struct {
	Ops     []FrameOp
	StartPC uint32
	ExitPC  uint32
	NumX86  int
	Scope   Scope

	// UnsafeGuards records, for each unsafe store, the addressing of the
	// eliminated load it was speculated against. At runtime the store's
	// address is compared with the guard address; a match aborts the
	// frame. (Checking only the speculated-across pair, rather than every
	// prior transaction, keeps ordinary read-modify-write patterns from
	// self-aborting.)
	UnsafeGuards []UnsafeGuard

	// Order is the rescheduled issue order from Schedule (empty = buffer
	// order) — the paper's position field, realized by the Cleanup Logic.
	Order []int32

	// Final[r] is the frame-end producer of GPR r (live-in if untouched);
	// FinalFlags likewise for FLAGS. Commit consults these marks — if a
	// final producer was removed, it was an identity move and the entry
	// value stands.
	Final      [8]Ref
	FinalFlags Ref

	// source retains construction metadata (path PCs) for the simulator.
	Source *frame.Frame
}

// optFramePool recycles renamed frames between Remap and PutOptFrame.
// The Ops buffer is the optimizer's dominant allocation (one FrameOp
// per µop of every constructed frame); Remap overwrites every element
// it uses, so a recycled buffer needs no clearing.
var optFramePool = sync.Pool{
	New: func() any { return new(OptFrame) },
}

// PutOptFrame recycles a renamed frame the caller exclusively owns
// (typically on frame-cache eviction). The Source frame is NOT
// recycled here — its ownership is the caller's to settle separately.
func PutOptFrame(of *OptFrame) {
	if of == nil {
		return
	}
	of.Source = nil
	of.Ops = of.Ops[:0]
	of.Order = of.Order[:0]
	of.UnsafeGuards = of.UnsafeGuards[:0]
	optFramePool.Put(of)
}

// Remap renders a constructed frame into renamed form at the given scope:
// the paper's Remapper stage. Each micro-op's destination becomes its
// buffer index; sources become live-in or producer references; live-out
// marks are computed against the scope's exit points.
func Remap(f *frame.Frame, scope Scope) *OptFrame {
	of := optFramePool.Get().(*OptFrame)
	of.StartPC = f.StartPC
	of.ExitPC = f.ExitPC
	of.NumX86 = f.NumX86
	of.Scope = scope
	of.Source = f
	if n := len(f.UOps); cap(of.Ops) >= n {
		of.Ops = of.Ops[:n]
	} else {
		of.Ops = make([]FrameOp, n)
	}

	// last[r] is the current in-frame producer of architectural register
	// r, or a live-in reference.
	var last [uop.NumRegs]Ref
	for r := range last {
		last[r] = liveIn(uop.Reg(r))
	}

	blockEnds := f.BlockEnd
	block := int32(0)
	nextEnd := 0

	for i, u := range f.UOps {
		op := FrameOp{
			Valid:       true,
			Op:          u.Op,
			Cond:        u.Cond,
			Imm:         u.Imm,
			Scale:       u.Scale,
			WritesFlags: u.WritesFlags,
			KeepCF:      u.KeepCF,
			InstIdx:     f.InstIdx[i],
			MemSub:      f.MemSub[i],
			ProfAddr:    f.MemAddr[i],
			Block:       block,
		}
		op.ArchDest = u.DestReg()
		if u.UsesSrcA() {
			op.SrcA = last[u.SrcA]
		}
		if u.UsesSrcB() {
			op.SrcB = last[u.SrcB]
		}
		if u.ReadsFlags() {
			op.SrcF = last[uop.FLAGS]
		}
		of.Ops[i] = op

		if d := u.DestReg(); d != uop.RegNone {
			last[d] = opRef(int32(i))
		}
		if u.WritesFlags {
			last[uop.FLAGS] = opRef(int32(i))
		}

		// Liveness barrier at each block end for sub-frame scopes: every
		// current producer is live-out because control may exit here.
		if nextEnd < len(blockEnds) && blockEnds[nextEnd] == i {
			nextEnd++
			block++
			if scope != ScopeFrame {
				of.markLive(&last)
			}
		}
	}
	// Frame-end barrier applies at every scope, and records the final
	// producers for commit.
	of.markLive(&last)
	for r := uop.Reg(0); r < 8; r++ {
		of.Final[r] = last[r]
	}
	of.FinalFlags = last[uop.FLAGS]
	return of
}

// markLive marks the current producers of the eight GPRs and FLAGS as
// live-out. Translator temporaries are dead at instruction boundaries and
// are never live-out (DESIGN.md).
func (of *OptFrame) markLive(last *[uop.NumRegs]Ref) {
	for r := uop.Reg(0); r < 8; r++ {
		if ref := last[r]; ref.Kind == RefOp {
			of.Ops[ref.Idx].LiveOut = true
		}
	}
	if ref := last[uop.FLAGS]; ref.Kind == RefOp {
		of.Ops[ref.Idx].FlagsLiveOut = true
	}
}

// UnsafeGuard ties an unsafe store to the addressing of the load that was
// speculatively eliminated across it.
type UnsafeGuard struct {
	Store int32 // buffer index of the unsafe store
	Base  Ref   // eliminated load's base (post-reassociation)
	Index Ref   // eliminated load's index register ref (RefNone if none)
	Scale uint8
	Imm   int32
	// InstIdx/MemSub/ProfAddr locate the eliminated load's runtime address
	// in the reference execution (for the timing model's conflict check).
	InstIdx  int32
	MemSub   int8
	ProfAddr uint32
}

// sameRegion reports whether two op indexes may be combined under the
// frame's scope (intra-block optimization only matches within a block).
func (of *OptFrame) sameRegion(i, j int32) bool {
	if of.Scope != ScopeIntraBlock {
		return true
	}
	return of.Ops[i].Block == of.Ops[j].Block
}

// NumValid counts surviving micro-ops.
func (of *OptFrame) NumValid() int {
	n := 0
	for i := range of.Ops {
		if of.Ops[i].Valid {
			n++
		}
	}
	return n
}

// NumValidLoads counts surviving LOAD micro-ops.
func (of *OptFrame) NumValidLoads() int {
	n := 0
	for i := range of.Ops {
		if of.Ops[i].Valid && of.Ops[i].Op == uop.LOAD {
			n++
		}
	}
	return n
}

// Parents reports the producer indexes of an op's sources — the paper's
// Parent Logic. It returns up to three indexes (SrcA, SrcB, SrcF).
func (of *OptFrame) Parents(i int32) []int32 {
	var out []int32
	o := &of.Ops[i]
	for _, r := range []Ref{o.SrcA, o.SrcB, o.SrcF} {
		if r.Kind == RefOp {
			out = append(out, r.Idx)
		}
	}
	return out
}

// Children reports the consumer indexes of op i's value and flags — the
// paper's Dependency List / Next Child Logic.
func (of *OptFrame) Children(i int32) []int32 {
	var out []int32
	for j := range of.Ops {
		o := &of.Ops[j]
		if !o.Valid {
			continue
		}
		if (o.SrcA.Kind == RefOp && o.SrcA.Idx == i) ||
			(o.SrcB.Kind == RefOp && o.SrcB.Idx == i) ||
			(o.SrcF.Kind == RefOp && o.SrcF.Idx == i) {
			out = append(out, int32(j))
		}
	}
	return out
}

func (o *FrameOp) String() string {
	v := " "
	if !o.Valid {
		v = "x"
	}
	s := fmt.Sprintf("%s%-7s a=%s b=%s", v, o.Op, o.SrcA, o.SrcB)
	if o.SrcF.Kind != RefNone {
		s += " f=" + o.SrcF.String()
	}
	s += fmt.Sprintf(" imm=%#x dest=%s", uint32(o.Imm), o.ArchDest)
	if o.LiveOut {
		s += " out"
	}
	if o.Unsafe {
		s += " unsafe"
	}
	return s
}
