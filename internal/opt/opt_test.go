package opt

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/translate"
	"repro/internal/uop"
	"repro/internal/x86"
)

// buildFigure2Frame constructs the paper's running example (Figure 2): the
// crafty procedure fragment of two basic blocks, as a single frame with
// the JZ converted to an assertion and the RET to a target assertion.
//
//	PUSH EBP
//	PUSH EBX
//	MOV  ECX, [ESP+0CH]
//	MOV  EBX, [ESP+10H]
//	XOR  EAX, EAX
//	MOV  EDX, ECX
//	OR   EDX, EBX
//	JZ   Block2          ; biased taken
//	Block2: POP EBX
//	POP  EBP
//	RET                  ; stable return target
func buildFigure2Frame(t *testing.T) *frame.Frame {
	t.Helper()
	insts := []x86.Inst{
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP)},
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX), Src: x86.Mem(x86.ESP, 0x0C)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX), Src: x86.Mem(x86.ESP, 0x10)},
		{Op: x86.OpXOR, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EAX)},
		{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EDX), Src: x86.RegOp(x86.ECX)},
		{Op: x86.OpOR, Cond: x86.CondNone, Dst: x86.RegOp(x86.EDX), Src: x86.RegOp(x86.EBX)},
		{Op: x86.OpJCC, Cond: x86.CondE, Dst: x86.ImmOp(3)},                             // jumps over the ADD; typically taken
		{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)}, // rare path, skipped
		{Op: x86.OpPOP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)},
		{Op: x86.OpPOP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP)},
		{Op: x86.OpRET, Cond: x86.CondNone},
	}
	const skipped = 8 // index of the rare-path ADD
	// Lay out at 0x1000 with computed lengths.
	pc := uint32(0x1000)
	pcs := make([]uint32, len(insts))
	for i := range insts {
		enc, err := x86.Encode(insts[i])
		if err != nil {
			t.Fatal(err)
		}
		insts[i].Len = len(enc)
		pcs[i] = pc
		pc += uint32(len(enc))
	}

	// Dynamic execution context: entry ESP = S with return address K and
	// two zero arguments on the stack.
	const S = uint32(0x0008_0000)
	const K = uint32(0x0000_4000)

	cfg := frame.DefaultConfig()
	cfg.BiasThreshold = 1
	cfg.TargetThreshold = 1
	var frames []*frame.Frame
	c := frame.NewConstructor(cfg, func(f *frame.Frame) { frames = append(frames, f) })

	esp := S
	for i, in := range insts {
		if i == skipped {
			continue // the rare path does not retire
		}
		uops, err := translate.UOps(in, pcs[i])
		if err != nil {
			t.Fatal(err)
		}
		next := pcs[i] + uint32(in.Len)
		var addrs []uint32
		switch i {
		case 0: // PUSH EBP
			addrs = []uint32{esp - 4}
			esp -= 4
		case 1: // PUSH EBX
			addrs = []uint32{esp - 4}
			esp -= 4
		case 2:
			addrs = []uint32{esp + 0x0C}
		case 3:
			addrs = []uint32{esp + 0x10}
		case 7: // JZ taken over the rare path
			next = in.TargetPC(pcs[i])
		case 9, 10: // POPs
			addrs = []uint32{esp}
			esp += 4
		case 11: // RET
			addrs = []uint32{esp}
			esp += 4
			next = K
		}
		c.Retire(pcs[i], in, uops, next, addrs)
	}
	c.Flush()

	if len(frames) != 1 {
		t.Fatalf("expected 1 frame, got %d", len(frames))
	}
	return frames[0]
}

// figure2Entry builds the architectural entry state of the fragment.
func figure2Entry() (*uop.Regs, uop.MapMemory) {
	const S = uint32(0x0008_0000)
	const K = uint32(0x0000_4000)
	regs := &uop.Regs{}
	regs.Set(uop.ESP, S)
	regs.Set(uop.EBP, 0xAAAA)
	regs.Set(uop.EBX, 0xBBBB)
	regs.Set(uop.EAX, 0x1111)
	mem := uop.MapMemory{S: K, S + 4: 0, S + 8: 0}
	return regs, mem
}

func executeAndCheck(t *testing.T, of *OptFrame, label string) ExecResult {
	t.Helper()
	regs, mem := figure2Entry()
	res, err := Execute(of, regs, mem)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if res.Aborted {
		t.Fatalf("%s: unexpected abort at op %d", label, res.AbortPos)
	}
	const S = uint32(0x0008_0000)
	want := map[uop.Reg]uint32{
		uop.EAX: 0,      // XOR EAX,EAX
		uop.ECX: 0,      // zero argument
		uop.EDX: 0,      // OR of zero args
		uop.EBX: 0xBBBB, // restored by POP
		uop.EBP: 0xAAAA, // restored by POP
		uop.ESP: S + 4,  // net of pushes/pops/ret
	}
	for r, v := range want {
		if got := res.Regs.Get(r); got != v {
			t.Errorf("%s: %s = %#x, want %#x", label, r, got, v)
		}
	}
	// Stores are never removed: both saves must appear, in order.
	if len(res.Stores) != 2 ||
		res.Stores[0] != (MemWrite{Addr: S - 4, Val: 0xAAAA}) ||
		res.Stores[1] != (MemWrite{Addr: S - 8, Val: 0xBBBB}) {
		t.Errorf("%s: stores = %+v", label, res.Stores)
	}
	return res
}

// TestFigure2UnoptimizedCount: the fragment decodes to exactly the
// paper's 17 micro-operations with 5 loads.
func TestFigure2UnoptimizedCount(t *testing.T) {
	f := buildFigure2Frame(t)
	if got := len(f.UOps); got != 17 {
		for _, u := range f.UOps {
			t.Logf("  %s", u)
		}
		t.Fatalf("unoptimized uops = %d, want 17", got)
	}
	if got := f.NumLoads(); got != 5 {
		t.Fatalf("unoptimized loads = %d, want 5", got)
	}
	of := Remap(f, ScopeFrame)
	executeAndCheck(t, of, "unoptimized")
}

// TestFigure2Scopes reproduces the paper's scope comparison: 13 micro-ops
// intra-block, 12 inter-block, 10 at frame level (Figure 2 columns 3-5).
func TestFigure2Scopes(t *testing.T) {
	cases := []struct {
		scope     Scope
		wantUOps  int
		wantLoads int
	}{
		{ScopeIntraBlock, 13, 5},
		{ScopeInterBlock, 12, 4},
		{ScopeFrame, 10, 3},
	}
	for _, tt := range cases {
		t.Run(tt.scope.String(), func(t *testing.T) {
			f := buildFigure2Frame(t)
			of := Remap(f, tt.scope)
			s := Optimize(of, AllOptions())
			if got := of.NumValid(); got != tt.wantUOps {
				for i := range of.Ops {
					if of.Ops[i].Valid {
						t.Logf("  %2d %s", i, &of.Ops[i])
					}
				}
				t.Errorf("uops = %d, want %d (stats %+v)", got, tt.wantUOps, s)
			}
			if got := of.NumValidLoads(); got != tt.wantLoads {
				t.Errorf("loads = %d, want %d", got, tt.wantLoads)
			}
			executeAndCheck(t, of, tt.scope.String())
		})
	}
}

// TestFigure2TwoAddressFusion: the MOV EDX,ECX / OR EDX,EBX pair must
// fuse into a three-operand OR (micro-op 09' in the paper).
func TestFigure2TwoAddressFusion(t *testing.T) {
	f := buildFigure2Frame(t)
	of := Remap(f, ScopeFrame)
	Optimize(of, AllOptions())
	var or *FrameOp
	for i := range of.Ops {
		if of.Ops[i].Valid && of.Ops[i].Op == uop.OR {
			or = &of.Ops[i]
		}
	}
	if or == nil {
		t.Fatal("OR not found")
	}
	// Its first operand must reference ECX's producer (the parameter
	// load), not a surviving MOV.
	if or.SrcA.Kind != RefOp || of.Ops[or.SrcA.Idx].Op != uop.LOAD {
		t.Errorf("OR srcA = %s (op %v)", or.SrcA, of.Ops[or.SrcA.Idx].Op)
	}
}

// TestDCEKeepsStores: stores must never be removed even when dead.
func TestDCEKeepsStores(t *testing.T) {
	f := buildFigure2Frame(t)
	of := Remap(f, ScopeFrame)
	Optimize(of, AllOptions())
	stores := 0
	for i := range of.Ops {
		if of.Ops[i].Valid && of.Ops[i].Op == uop.STORE {
			stores++
		}
	}
	if stores != 2 {
		t.Errorf("stores = %d, want 2", stores)
	}
}

// TestOptimizeIdempotent: optimizing twice changes nothing further.
func TestOptimizeIdempotent(t *testing.T) {
	f := buildFigure2Frame(t)
	of := Remap(f, ScopeFrame)
	Optimize(of, AllOptions())
	n1 := of.NumValid()
	s := Optimize(of, AllOptions())
	if of.NumValid() != n1 || s.Removed() != 0 {
		t.Errorf("second optimization changed the frame: %+v", s)
	}
}

// TestDisabledPasses: with everything off except DCE, only truly dead ops
// disappear and the structure survives.
func TestDisabledPasses(t *testing.T) {
	f := buildFigure2Frame(t)
	of := Remap(f, ScopeFrame)
	s := Optimize(of, Options{})
	// Without copy propagation the MOV chain keeps everything alive
	// except nothing — the only dead op in the raw fragment is none.
	if of.NumValid() < 15 {
		t.Errorf("bare DCE removed too much: %d valid (stats %+v)", of.NumValid(), s)
	}
	executeAndCheck(t, of, "dce-only")
}

// TestNoSFLeavesLoads: disabling store forwarding must keep the POP loads.
func TestNoSFLeavesLoads(t *testing.T) {
	f := buildFigure2Frame(t)
	of := Remap(f, ScopeFrame)
	opts := AllOptions()
	opts.SF = false
	Optimize(of, opts)
	if got := of.NumValidLoads(); got != 5 {
		t.Errorf("loads with SF disabled = %d, want 5", got)
	}
	executeAndCheck(t, of, "no-sf")
}

// TestSpeculativeForwarding: a store through an unknown pointer between a
// store/load pair is speculated past (profile says no alias) and marked
// unsafe; at runtime an aliasing pointer aborts the frame.
func TestSpeculativeForwarding(t *testing.T) {
	// Build a tiny synthetic frame by hand:
	//   STORE [EBP-4] <- EAX        (profiled addr 0x7000-4)
	//   STORE [EDI]   <- ECX        (profiled addr 0x9000; may alias)
	//   LOAD  EDX <- [EBP-4]        (profiled addr 0x7000-4)
	f := &frame.Frame{
		StartPC: 0x100, ExitPC: 0x200, NumX86: 3,
		UOps: []uop.UOp{
			{Op: uop.STORE, SrcA: uop.EBP, SrcB: uop.EAX, Imm: -4},
			{Op: uop.STORE, SrcA: uop.EDI, SrcB: uop.ECX, Imm: 0},
			{Op: uop.LOAD, Dest: uop.EDX, SrcA: uop.EBP, SrcB: uop.RegNone, Imm: -4},
		},
		InstIdx: []int32{0, 1, 2},
		MemSub:  []int8{0, 0, 0},
		MemAddr: []uint32{0x7000 - 4, 0x9000, 0x7000 - 4},
		PCs:     []uint32{0x100, 0x110, 0x120},
		NextPCs: []uint32{0x110, 0x120, 0x200},
	}
	// Pad to the frame minimum with NOP-like ALU ops so the constructor
	// invariants don't matter here (we remap directly).
	of := Remap(f, ScopeFrame)
	s := Optimize(of, AllOptions())
	if s.SFLoads != 1 {
		t.Fatalf("SF loads = %d, want 1 (stats %+v)", s.SFLoads, s)
	}
	if s.UnsafeStores != 1 {
		t.Fatalf("unsafe stores = %d", s.UnsafeStores)
	}
	if !of.Ops[1].Unsafe {
		t.Fatal("intervening store not marked unsafe")
	}

	// Non-aliasing execution: EDX gets EAX's value, no abort.
	regs := &uop.Regs{}
	regs.Set(uop.EBP, 0x7000)
	regs.Set(uop.EDI, 0x9000)
	regs.Set(uop.EAX, 0x42)
	regs.Set(uop.ECX, 0x99)
	res, err := Execute(of, regs, uop.MapMemory{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("non-aliasing execution aborted")
	}
	if res.Regs.Get(uop.EDX) != 0x42 {
		t.Errorf("forwarded value = %#x", res.Regs.Get(uop.EDX))
	}

	// Aliasing execution: EDI points at EBP-4 -> unsafe conflict abort.
	regs2 := &uop.Regs{}
	regs2.Set(uop.EBP, 0x7000)
	regs2.Set(uop.EDI, 0x7000-4)
	res, err = Execute(of, regs2, uop.MapMemory{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || !res.UnsafeConflict {
		t.Errorf("aliasing execution did not abort: %+v", res)
	}
}

// TestConservativeNoSpeculation: with speculation off, the unknown store
// blocks forwarding.
func TestConservativeNoSpeculation(t *testing.T) {
	f := &frame.Frame{
		StartPC: 0x100, ExitPC: 0x200, NumX86: 3,
		UOps: []uop.UOp{
			{Op: uop.STORE, SrcA: uop.EBP, SrcB: uop.EAX, Imm: -4},
			{Op: uop.STORE, SrcA: uop.EDI, SrcB: uop.ECX, Imm: 0},
			{Op: uop.LOAD, Dest: uop.EDX, SrcA: uop.EBP, SrcB: uop.RegNone, Imm: -4},
		},
		InstIdx: []int32{0, 1, 2},
		MemSub:  []int8{0, 0, 0},
		MemAddr: []uint32{0x6FFC, 0x9000, 0x6FFC},
		PCs:     []uint32{0x100, 0x110, 0x120},
		NextPCs: []uint32{0x110, 0x120, 0x200},
	}
	of := Remap(f, ScopeFrame)
	opts := AllOptions()
	opts.Speculative = false
	s := Optimize(of, opts)
	if s.SFLoads != 0 || of.NumValidLoads() != 1 {
		t.Errorf("conservative mode forwarded anyway: %+v", s)
	}
}

// TestRedundantLoadCSE: two loads of the same address with a provably
// disjoint store between them common to one load.
func TestRedundantLoadCSE(t *testing.T) {
	f := &frame.Frame{
		StartPC: 0x100, ExitPC: 0x200, NumX86: 3,
		UOps: []uop.UOp{
			{Op: uop.LOAD, Dest: uop.EAX, SrcA: uop.EBP, SrcB: uop.RegNone, Imm: -8},
			{Op: uop.STORE, SrcA: uop.EBP, SrcB: uop.ECX, Imm: -16}, // same base, disjoint
			{Op: uop.LOAD, Dest: uop.EDX, SrcA: uop.EBP, SrcB: uop.RegNone, Imm: -8},
		},
		InstIdx: []int32{0, 1, 2},
		MemSub:  []int8{0, 0, 0},
		MemAddr: []uint32{0x7000 - 8, 0x7000 - 16, 0x7000 - 8},
		PCs:     []uint32{0x100, 0x110, 0x120},
		NextPCs: []uint32{0x110, 0x120, 0x200},
	}
	of := Remap(f, ScopeFrame)
	s := Optimize(of, AllOptions())
	if s.CSELoads != 1 {
		t.Fatalf("CSE loads = %d (stats %+v)", s.CSELoads, s)
	}
	if s.UnsafeStores != 0 {
		t.Error("disjoint store should not be unsafe")
	}
	regs := &uop.Regs{}
	regs.Set(uop.EBP, 0x7000)
	regs.Set(uop.ECX, 7)
	mem := uop.MapMemory{0x7000 - 8: 0x55}
	res, err := Execute(of, regs, mem)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs.Get(uop.EAX) != 0x55 || res.Regs.Get(uop.EDX) != 0x55 {
		t.Errorf("EAX=%#x EDX=%#x", res.Regs.Get(uop.EAX), res.Regs.Get(uop.EDX))
	}
	if res.Loads != 1 {
		t.Errorf("performed %d loads, want 1", res.Loads)
	}
}

// TestAssertFusion: CMP+assert fuses into CASSERT and the CMP dies.
func TestAssertFusion(t *testing.T) {
	f := &frame.Frame{
		StartPC: 0x100, ExitPC: 0x200, NumX86: 2,
		UOps: []uop.UOp{
			{Op: uop.SUB, Dest: uop.RegNone, SrcA: uop.EAX, SrcB: uop.RegNone, Imm: 5, WritesFlags: true},
			{Op: uop.ASSERT, Cond: x86.CondE},
			{Op: uop.ADD, Dest: uop.EBX, SrcA: uop.EBX, SrcB: uop.RegNone, Imm: 1},
		},
		InstIdx: []int32{0, 0, 1},
		MemSub:  []int8{-1, -1, -1},
		MemAddr: []uint32{0, 0, 0},
		PCs:     []uint32{0x100, 0x110},
		NextPCs: []uint32{0x110, 0x200},
	}
	of := Remap(f, ScopeFrame)
	s := Optimize(of, AllOptions())
	if s.FusedAsserts != 1 {
		t.Fatalf("fused = %d", s.FusedAsserts)
	}
	// The CMP's flags feed nothing else; the flag write is dead... but the
	// frame's last flag writer is live-out, so the SUB must survive as the
	// architectural flag producer? No: the fused CASSERT no longer reads
	// it, yet FLAGS is live-out of the frame, so it stays.
	var ops []uop.Op
	for i := range of.Ops {
		if of.Ops[i].Valid {
			ops = append(ops, of.Ops[i].Op)
		}
	}
	foundCassert := false
	for _, op := range ops {
		if op == uop.CASSERT {
			foundCassert = true
		}
		if op == uop.ASSERT {
			t.Error("unfused ASSERT survives")
		}
	}
	if !foundCassert {
		t.Errorf("no CASSERT after fusion: %v", ops)
	}

	// Execution: EAX == 5 passes, EAX != 5 fires.
	regs := &uop.Regs{}
	regs.Set(uop.EAX, 5)
	res, err := Execute(of, regs, uop.MapMemory{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Error("holding CASSERT aborted")
	}
	regs.Set(uop.EAX, 6)
	res, err = Execute(of, regs, uop.MapMemory{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Error("violated CASSERT did not abort")
	}
}

func chainFrame(writesFlags bool) *frame.Frame {
	return &frame.Frame{
		StartPC: 0x100, ExitPC: 0x200, NumX86: 4,
		UOps: []uop.UOp{
			{Op: uop.ADD, Dest: uop.EAX, SrcA: uop.EAX, SrcB: uop.RegNone, Imm: 1, WritesFlags: writesFlags},
			{Op: uop.ADD, Dest: uop.EAX, SrcA: uop.EAX, SrcB: uop.RegNone, Imm: 2, WritesFlags: writesFlags},
			{Op: uop.SUB, Dest: uop.EAX, SrcA: uop.EAX, SrcB: uop.RegNone, Imm: 7, WritesFlags: writesFlags},
			{Op: uop.ADD, Dest: uop.EAX, SrcA: uop.EAX, SrcB: uop.RegNone, Imm: 10, WritesFlags: writesFlags},
		},
		InstIdx: []int32{0, 1, 2, 3},
		MemSub:  []int8{-1, -1, -1, -1},
		MemAddr: []uint32{0, 0, 0, 0},
		PCs:     []uint32{0x100, 0x110, 0x120, 0x130},
		NextPCs: []uint32{0x110, 0x120, 0x130, 0x200},
	}
}

// TestReassociationChain: a chain of flag-free immediate adds (the stack
// pointer pattern) collapses to a single add from the live-in.
func TestReassociationChain(t *testing.T) {
	of := Remap(chainFrame(false), ScopeFrame)
	s := Optimize(of, AllOptions())
	if s.Reassoc == 0 {
		t.Fatalf("no reassociation: %+v", s)
	}
	if of.NumValid() != 1 {
		for i := range of.Ops {
			if of.Ops[i].Valid {
				t.Logf("  %s", &of.Ops[i])
			}
		}
		t.Fatalf("valid = %d, want 1", of.NumValid())
	}
	regs := &uop.Regs{}
	regs.Set(uop.EAX, 100)
	res, err := Execute(of, regs, uop.MapMemory{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs.Get(uop.EAX) != 106 {
		t.Errorf("EAX = %d, want 106", res.Regs.Get(uop.EAX))
	}
}

// TestReassociationPreservesLiveFlags: when the final add's flags are
// architecturally live, it must not be rewritten (CF/OF would change), so
// exactly two ops survive and the flag semantics are exact.
func TestReassociationPreservesLiveFlags(t *testing.T) {
	of := Remap(chainFrame(true), ScopeFrame)
	Optimize(of, AllOptions())
	if of.NumValid() != 2 {
		for i := range of.Ops {
			if of.Ops[i].Valid {
				t.Logf("  %s", &of.Ops[i])
			}
		}
		t.Fatalf("valid = %d, want 2", of.NumValid())
	}
	// The surviving final op must read its true parent, and its flags must
	// match an exact sequential evaluation.
	regs := &uop.Regs{}
	regs.Set(uop.EAX, 0xFFFFFFFB) // exercises carry behaviour
	res, err := Execute(of, regs, uop.MapMemory{})
	if err != nil {
		t.Fatal(err)
	}
	ref := &uop.Regs{}
	ref.Set(uop.EAX, 0xFFFFFFFB)
	for _, u := range chainFrame(true).UOps {
		if _, err := uop.Eval(u, ref, uop.MapMemory{}); err != nil {
			t.Fatal(err)
		}
	}
	if res.Regs.Get(uop.EAX) != ref.Get(uop.EAX) || res.Regs.Flags() != ref.Flags() {
		t.Errorf("optimized EAX=%#x flags=%s, reference EAX=%#x flags=%s",
			res.Regs.Get(uop.EAX), res.Regs.Flags(), ref.Get(uop.EAX), ref.Flags())
	}
}

// TestParentsChildren exercises the dependency traversal primitives.
func TestParentsChildren(t *testing.T) {
	f := buildFigure2Frame(t)
	of := Remap(f, ScopeFrame)
	// The OR (index 8 in the unoptimized frame: after 2+2+1+1+1+1 = uop 8
	// counting from 0... find it dynamically).
	var orIdx int32 = -1
	for i := range of.Ops {
		if of.Ops[i].Op == uop.OR {
			orIdx = int32(i)
		}
	}
	if orIdx < 0 {
		t.Fatal("no OR")
	}
	parents := of.Parents(orIdx)
	if len(parents) == 0 {
		t.Fatal("OR has no parents")
	}
	// The assert consumes the OR's flags: OR must list it as a child.
	children := of.Children(orIdx)
	foundAssert := false
	for _, c := range children {
		if of.Ops[c].Op == uop.ASSERT {
			foundAssert = true
		}
	}
	if !foundAssert {
		t.Errorf("OR children = %v, missing assert", children)
	}
}

// TestRemapLiveIn: the first reader of each register sees a live-in ref.
func TestRemapLiveIn(t *testing.T) {
	f := buildFigure2Frame(t)
	of := Remap(f, ScopeFrame)
	// UOp 0: STORE [ESP-4] <- EBP. Both sources are live-ins.
	o := &of.Ops[0]
	if o.SrcA.Kind != RefLiveIn || o.SrcA.Arch != uop.ESP {
		t.Errorf("store base = %s", o.SrcA)
	}
	if o.SrcB.Kind != RefLiveIn || o.SrcB.Arch != uop.EBP {
		t.Errorf("store data = %s", o.SrcB)
	}
}
