package opt

import (
	"time"

	"repro/internal/uop"
	"repro/internal/x86"
)

// Options selects which optimizations run (the Figure 10 ablation
// switches). Dead-code elimination is always enabled, as in the paper —
// every other optimization relies on it.
type Options struct {
	NOP    bool // NOP and internal unconditional-jump removal
	CP     bool // constant and copy propagation
	RA     bool // reassociation
	CSE    bool // common subexpression elimination (incl. redundant loads)
	SF     bool // store forwarding
	Assert bool // value assertion fusion (compare + assert -> CASSERT)

	// Speculative enables memory optimization past may-alias stores that
	// did not alias in the construction profile, marking them unsafe.
	Speculative bool
}

// AllOptions enables every optimization including speculation (the RPO
// configuration).
func AllOptions() Options {
	return Options{NOP: true, CP: true, RA: true, CSE: true, SF: true, Assert: true, Speculative: true}
}

// Stats reports what one optimization run did.
type Stats struct {
	UOpsIn, UOpsOut   int
	LoadsIn, LoadsOut int

	RemovedNOP   int // NOPs and internal jumps removed
	FoldedCP     int // ops folded to constants / asserts discharged
	Reassoc      int // reassociation rewrites
	CSEVals      int // ALU values commoned
	CSELoads     int // redundant loads eliminated
	SFLoads      int // loads forwarded from stores
	FusedAsserts int // compare+assert fusions
	RemovedDCE   int // dead ops removed
	UnsafeStores int // stores marked unsafe by speculation
}

// Removed returns the net micro-op reduction.
func (s Stats) Removed() int { return s.UOpsIn - s.UOpsOut }

// PassRecorder observes individual optimizer pass invocations for
// attribution. Implementations receive the frame id, the pass name
// (see telemetry.PassOrder), uops the pass invalidated, and uops it
// rewrote in place. Only invocations that changed something are
// reported. telemetry.Collector satisfies this structurally; opt
// declares its own interface to stay a leaf package.
type PassRecorder interface {
	RecordPass(frameID uint64, pass string, killed, rewritten int)
}

// TimedPassRecorder is an optional PassRecorder extension for wall-
// clock pass timing. When the recorder passed to OptimizeTraced also
// implements it, RecordPassTimed is called for EVERY pass invocation
// (changed or not — time is spent either way) in addition to the
// changed-only RecordPass calls; the combined memory pass reports its
// timing under the name "mem" since its cse-load/sf split is visible
// only in the rewrite counters. Span tracing aggregates these into
// per-pass child spans of the run.
type TimedPassRecorder interface {
	PassRecorder
	RecordPassTimed(frameID uint64, pass string, killed, rewritten int, d time.Duration)
}

// Optimize runs the configured passes over the frame in place and
// returns the run's statistics. Pass order follows the paper's gateway
// structure: NOP removal first, then a propagate/reassociate/common/
// forward fixpoint, assertion fusion, a final constant pass to discharge
// asserted constants, and dead-code elimination.
func Optimize(of *OptFrame, opts Options) Stats {
	return optimize(of, opts, nil)
}

// OptimizeTraced is Optimize with per-pass attribution: every pass
// invocation that kills or rewrites uops is reported to rec. The
// invariant the attribution conservation test pins down: summed killed
// across all reported passes equals Stats.Removed(), because a uop only
// leaves the frame by a pass flipping Valid inside a traced call.
func OptimizeTraced(of *OptFrame, opts Options, rec PassRecorder) Stats {
	return optimize(of, opts, rec)
}

func optimize(of *OptFrame, opts Options, rec PassRecorder) Stats {
	var s Stats
	s.UOpsIn = of.NumValid()
	s.LoadsIn = of.NumValidLoads()

	var frameID uint64
	if rec != nil && of.Source != nil {
		frameID = of.Source.ID
	}
	// timed is resolved once: the two time.Now calls per pass are paid
	// only when someone consumes wall-clock timing.
	timed, _ := rec.(TimedPassRecorder)
	// traced measures what one pass invocation did: killed is the drop
	// in valid uops (exact — passes only ever invalidate), rewritten the
	// delta of the pass's own rewrite counter.
	traced := func(pass string, rewrites *int, fn func()) {
		if rec == nil {
			fn()
			return
		}
		v0 := of.NumValid()
		r0 := 0
		if rewrites != nil {
			r0 = *rewrites
		}
		var t0 time.Time
		if timed != nil {
			t0 = time.Now()
		}
		fn()
		killed := v0 - of.NumValid()
		rew := 0
		if rewrites != nil {
			rew = *rewrites - r0
		}
		if timed != nil {
			timed.RecordPassTimed(frameID, pass, killed, rew, time.Since(t0))
		}
		if killed != 0 || rew != 0 {
			rec.RecordPass(frameID, pass, killed, rew)
		}
	}

	if opts.NOP {
		traced("nop", nil, func() { of.nopPass(&s) })
	}
	for iter := 0; iter < 4; iter++ {
		changed := false
		if opts.CP {
			traced("cp", &s.FoldedCP, func() { changed = of.cpPass(&s) || changed })
		}
		if opts.RA {
			traced("ra", &s.Reassoc, func() { changed = of.raPass(&s) || changed })
		}
		if opts.CSE {
			traced("cse", &s.CSEVals, func() { changed = of.csePass(&s) || changed })
		}
		if opts.CSE || opts.SF {
			// memPass only rewrites (loads become MOVs; DCE reaps them
			// later), but it moves two counters, one per technique.
			if rec == nil {
				changed = of.memPass(&s, opts) || changed
			} else {
				c0, f0 := s.CSELoads, s.SFLoads
				var t0 time.Time
				if timed != nil {
					t0 = time.Now()
				}
				changed = of.memPass(&s, opts) || changed
				dcse, dsf := s.CSELoads-c0, s.SFLoads-f0
				if timed != nil {
					timed.RecordPassTimed(frameID, "mem", 0, dcse+dsf, time.Since(t0))
				}
				if dcse > 0 {
					rec.RecordPass(frameID, "cse-load", 0, dcse)
				}
				if dsf > 0 {
					rec.RecordPass(frameID, "sf", 0, dsf)
				}
			}
		}
		if !changed {
			break
		}
	}
	if opts.Assert {
		traced("assert", &s.FusedAsserts, func() { of.assertPass(&s) })
	}
	if opts.CP {
		traced("cp", &s.FoldedCP, func() { of.cpPass(&s) })
	}
	traced("dce", nil, func() { of.dcePass(&s) })

	s.UOpsOut = of.NumValid()
	s.LoadsOut = of.NumValidLoads()
	return s
}

// flagsConsumed reports whether any valid op reads op i's flags, or the
// flags are live-out.
func (of *OptFrame) flagsConsumed(i int32) bool {
	if of.Ops[i].FlagsLiveOut {
		return true
	}
	for j := range of.Ops {
		o := &of.Ops[j]
		if o.Valid && o.SrcF.Kind == RefOp && o.SrcF.Idx == i {
			return true
		}
	}
	return false
}

// replaceValueRefs re-points all value references (SrcA/SrcB) from op i to
// ref r.
func (of *OptFrame) replaceValueRefs(i int32, r Ref) {
	for j := range of.Ops {
		o := &of.Ops[j]
		if !o.Valid {
			continue
		}
		if o.SrcA.Kind == RefOp && o.SrcA.Idx == i {
			o.SrcA = r
		}
		if o.SrcB.Kind == RefOp && o.SrcB.Idx == i {
			o.SrcB = r
		}
	}
}

// replaceFlagRefs re-points all flag references from op i to ref r.
func (of *OptFrame) replaceFlagRefs(i int32, r Ref) {
	for j := range of.Ops {
		o := &of.Ops[j]
		if o.Valid && o.SrcF.Kind == RefOp && o.SrcF.Idx == i {
			o.SrcF = r
		}
	}
}

// nopPass removes NOPs and internal unconditional jumps.
func (of *OptFrame) nopPass(s *Stats) {
	for i := range of.Ops {
		o := &of.Ops[i]
		if o.Valid && (o.Op == uop.NOP || o.Op == uop.JMP) {
			o.Valid = false
			s.RemovedNOP++
		}
	}
}

// constState tracks statically known values and flags per op index.
type constState struct {
	val      []uint32
	valKnown []bool
	flg      []x86.Flags
	flgKnown []bool
}

func (of *OptFrame) refConst(r Ref, cs *constState) (uint32, bool) {
	if r.Kind == RefOp && cs.valKnown[r.Idx] {
		return cs.val[r.Idx], true
	}
	return 0, false
}

// evalConst evaluates op i's value (and flags if clean) given constant
// inputs, via the shared micro-op evaluator.
func (of *OptFrame) evalConst(i int32, a, b uint32, cs *constState) (uint32, x86.Flags, bool) {
	o := &of.Ops[i]
	var regs uop.Regs
	regs.Set(uop.Reg(0), a)
	u := uop.UOp{
		Op: o.Op, Cond: o.Cond, Dest: uop.Reg(2),
		SrcA: uop.Reg(0), SrcB: uop.RegNone, Imm: o.Imm, Scale: o.Scale,
		WritesFlags: o.WritesFlags, KeepCF: false,
	}
	if !o.HasImmB() {
		u.SrcB = uop.Reg(1)
		regs.Set(uop.Reg(1), b)
	}
	if _, err := uop.Eval(u, &regs, nil); err != nil {
		return 0, 0, false
	}
	return regs.Get(uop.Reg(2)), regs.Flags(), true
}

// foldable ops for constant propagation.
func cpFoldable(op uop.Op) bool {
	switch op {
	case uop.ADD, uop.SUB, uop.AND, uop.OR, uop.XOR,
		uop.SHL, uop.SHR, uop.SAR, uop.MULLO, uop.MULHIU, uop.MULHIS,
		uop.LEA, uop.MOV:
		return true
	}
	return false
}

// cpPass performs copy propagation, constant folding, memory address
// absolutization, and constant-assert discharge. Returns whether anything
// changed.
func (of *OptFrame) cpPass(s *Stats) bool {
	n := len(of.Ops)
	cs := &constState{
		val: make([]uint32, n), valKnown: make([]bool, n),
		flg: make([]x86.Flags, n), flgKnown: make([]bool, n),
	}
	changed := false

	for i := int32(0); i < int32(n); i++ {
		o := &of.Ops[i]
		if !o.Valid {
			continue
		}
		// Copy propagation: re-point sources through MOV ops.
		for _, src := range []*Ref{&o.SrcA, &o.SrcB} {
			for src.Kind == RefOp {
				p := &of.Ops[src.Idx]
				if p.Valid && p.Op == uop.MOV && p.SrcA.Kind != RefNone && of.sameRegion(i, src.Idx) {
					*src = p.SrcA
					changed = true
					continue
				}
				break
			}
		}

		switch o.Op {
		case uop.LIMM:
			cs.val[i], cs.valKnown[i] = uint32(o.Imm), true
			continue
		case uop.ASSERT:
			if o.SrcF.Kind == RefOp && cs.flgKnown[o.SrcF.Idx] {
				if o.Cond.Eval(cs.flg[o.SrcF.Idx]) {
					o.Valid = false
					s.FoldedCP++
					changed = true
				}
			}
			continue
		case uop.CASSERT:
			a, aok := of.refConst(o.SrcA, cs)
			b, bok := uint32(o.Imm), true
			if !o.HasImmB() {
				b, bok = of.refConst(o.SrcB, cs)
			}
			if aok && bok {
				var regs uop.Regs
				regs.Set(uop.Reg(0), a)
				regs.Set(uop.Reg(1), b)
				u := uop.UOp{Op: uop.CASSERT, Cond: o.Cond, SrcA: uop.Reg(0), SrcB: uop.Reg(1)}
				if out, err := uop.Eval(u, &regs, nil); err == nil && !out.AssertFired {
					o.Valid = false
					s.FoldedCP++
					changed = true
				}
			}
			continue
		case uop.LOAD, uop.STORE:
			// Absolutize a constant base, and (for loads) fold a constant
			// index into the displacement.
			if o.SrcA.Kind == RefOp {
				if base, ok := of.refConst(o.SrcA, cs); ok {
					o.SrcA = Ref{}
					o.Imm += int32(base)
					s.FoldedCP++
					changed = true
				}
			}
			if o.Op == uop.LOAD && o.SrcB.Kind == RefOp {
				if idx, ok := of.refConst(o.SrcB, cs); ok {
					o.SrcB = Ref{}
					o.Imm += int32(idx * uint32(o.Scale))
					o.Scale = 0
					s.FoldedCP++
					changed = true
				}
			}
			continue
		}

		if !cpFoldable(o.Op) {
			continue
		}
		a, aok := of.refConst(o.SrcA, cs)
		if o.Op == uop.MOV && o.SrcA.Kind == RefNone {
			continue
		}
		if o.SrcA.Kind != RefNone && !aok {
			continue
		}
		b, bok := uint32(0), true
		if !o.HasImmB() {
			b, bok = of.refConst(o.SrcB, cs)
		}
		if !bok {
			continue
		}
		if o.Op == uop.LEA && !o.HasImmB() && !bok {
			continue
		}
		if o.KeepCF && o.WritesFlags {
			// Value folds, but the flag result depends on incoming CF.
			if of.flagsConsumed(i) {
				continue
			}
		}
		v, f, ok := of.evalConst(i, a, b, cs)
		if !ok {
			continue
		}
		cs.val[i], cs.valKnown[i] = v, true
		if o.WritesFlags && !o.KeepCF {
			cs.flg[i], cs.flgKnown[i] = f, true
		}
		// Rewrite to LIMM when the flags (if any) are not consumed.
		if o.Op != uop.LIMM && (!o.WritesFlags || !of.flagsConsumed(i)) {
			if o.Op != uop.MOV || o.SrcA.Kind == RefOp {
				// Keep live-in MOVs; fold everything else.
				o.Op = uop.LIMM
				o.SrcA, o.SrcB, o.SrcF = Ref{}, Ref{}, Ref{}
				o.Imm = int32(v)
				o.WritesFlags, o.KeepCF = false, false
				s.FoldedCP++
				changed = true
			}
		}
	}
	return changed
}

// chainDelta reports whether op is an immediate add/subtract (including
// index-free LEA) and returns its signed delta.
func chainDelta(o *FrameOp) (int32, bool) {
	if !o.Valid || !o.HasImmB() {
		return 0, false
	}
	switch o.Op {
	case uop.ADD, uop.LEA:
		return o.Imm, true
	case uop.SUB:
		return -o.Imm, true
	}
	return 0, false
}

// raPass reassociates immediate add/sub chains and folds them into memory
// bases — the paper's gateway optimization that flattens stack-pointer
// manipulation.
func (of *OptFrame) raPass(s *Stats) bool {
	changed := false
	for i := int32(0); i < int32(len(of.Ops)); i++ {
		o := &of.Ops[i]
		if !o.Valid {
			continue
		}
		switch {
		case o.Op == uop.LOAD || o.Op == uop.STORE:
			// Fold an add/sub-immediate parent into the displacement.
			for o.SrcA.Kind == RefOp {
				p := &of.Ops[o.SrcA.Idx]
				d, ok := chainDelta(p)
				if !ok || !of.sameRegion(i, o.SrcA.Idx) {
					break
				}
				o.SrcA = p.SrcA
				o.Imm += d
				s.Reassoc++
				changed = true
			}
		default:
			if _, ok := chainDelta(o); !ok {
				continue
			}
			if o.WritesFlags && of.flagsConsumed(i) {
				continue
			}
			for o.SrcA.Kind == RefOp {
				p := &of.Ops[o.SrcA.Idx]
				d, ok := chainDelta(p)
				if !ok || !of.sameRegion(i, o.SrcA.Idx) {
					break
				}
				// Rewrite as a single ADD from the grandparent.
				self, _ := chainDelta(o)
				o.Op = uop.ADD
				o.Imm = self + d
				o.SrcA = p.SrcA
				o.WritesFlags, o.KeepCF = false, false
				s.Reassoc++
				changed = true
			}
		}
	}
	return changed
}

// cseKey identifies a computation for value numbering.
type cseKey struct {
	op     uop.Op
	cond   x86.Cond
	a, b   Ref
	f      Ref
	imm    int32
	scale  uint8
	keepCF bool
}

// cseEligible ops for ALU value numbering.
func cseEligible(op uop.Op) bool {
	switch op {
	case uop.ADD, uop.ADC, uop.SUB, uop.SBB, uop.AND, uop.OR, uop.XOR,
		uop.SHL, uop.SHR, uop.SAR, uop.MULLO, uop.MULHIU, uop.MULHIS,
		uop.LEA, uop.LIMM, uop.SELECT:
		return true
	}
	return false
}

func refLess(a, b Ref) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Arch != b.Arch {
		return a.Arch < b.Arch
	}
	return a.Idx < b.Idx
}

// csePass commons identical ALU computations.
func (of *OptFrame) csePass(s *Stats) bool {
	seen := make(map[cseKey]int32)
	changed := false
	for i := int32(0); i < int32(len(of.Ops)); i++ {
		o := &of.Ops[i]
		if !o.Valid || !cseEligible(o.Op) {
			continue
		}
		k := cseKey{op: o.Op, cond: o.Cond, a: o.SrcA, b: o.SrcB, f: o.SrcF,
			imm: o.Imm, scale: o.Scale, keepCF: o.KeepCF}
		if o.Op.Commutative() && !o.HasImmB() && refLess(k.b, k.a) {
			k.a, k.b = k.b, k.a
		}
		j, ok := seen[k]
		if !ok || !of.sameRegion(i, j) {
			if !ok {
				seen[k] = i
			}
			continue
		}
		if o.FlagsLiveOut && o.WritesFlags {
			continue // must remain the architectural flag producer
		}
		of.replaceValueRefs(i, opRef(j))
		if o.WritesFlags {
			of.replaceFlagRefs(i, opRef(j))
		}
		if o.LiveOut {
			o.Op = uop.MOV
			o.SrcA, o.SrcB, o.SrcF = opRef(j), Ref{}, Ref{}
			o.Imm, o.WritesFlags, o.KeepCF = 0, false, false
		}
		s.CSEVals++
		changed = true
	}
	return changed
}

// Memory disambiguation helpers. Addresses are word-granular: two
// accesses with the same symbolic base (and, for loads, the same index
// register and scale) conflict only when their literal displacements
// overlap within 4 bytes. A STORE's SrcB is its data, never an index.

func memIndex(o *FrameOp) (Ref, uint8) {
	if o.Op == uop.LOAD {
		return o.SrcB, o.Scale
	}
	return Ref{}, 0
}

func sameAddr(a, b *FrameOp) bool {
	ai, as := memIndex(a)
	bi, bs := memIndex(b)
	if ai != bi || (ai.Kind != RefNone && as != bs) {
		return false
	}
	return a.SrcA == b.SrcA && a.Imm == b.Imm
}

func disjointSameBase(a, b *FrameOp) bool {
	ai, as := memIndex(a)
	bi, bs := memIndex(b)
	if ai != bi || (ai.Kind != RefNone && as != bs) {
		return false
	}
	if a.SrcA != b.SrcA {
		return false
	}
	d := a.Imm - b.Imm
	if d < 0 {
		d = -d
	}
	return d >= 4
}

// profilesDisjoint reports whether two memory ops touched provably
// different words during the construction execution.
func profilesDisjoint(a, b *FrameOp) bool {
	if a.ProfAddr == 0 || b.ProfAddr == 0 {
		return false
	}
	d := int64(a.ProfAddr) - int64(b.ProfAddr)
	if d < 0 {
		d = -d
	}
	return d >= 4
}

// canEliminate reports whether load i may be replaced by value ref r
// under the frame's scope. At frame scope any load can become a move (or
// vanish); in the sub-frame scopes a live-out load is only eliminable
// when the replacement is the destination register's own live-in value
// and nothing else writes that register — the paper's inter-block rule
// that keeps micro-op 12 but eliminates 14 in Figure 2.
func (of *OptFrame) canEliminate(i int32, r Ref) bool {
	o := &of.Ops[i]
	if of.Scope == ScopeFrame || !o.LiveOut {
		return true
	}
	if !(r.Kind == RefLiveIn && r.Arch == o.ArchDest) {
		return false
	}
	for j := range of.Ops {
		p := &of.Ops[j]
		if p.Valid && int32(j) != i && p.ArchDest == o.ArchDest {
			return false
		}
	}
	return true
}

// memPass eliminates loads via store forwarding and redundant-load CSE,
// speculating past non-aliasing stores when enabled.
func (of *OptFrame) memPass(s *Stats, opts Options) bool {
	changed := false
	for i := int32(0); i < int32(len(of.Ops)); i++ {
		ld := &of.Ops[i]
		if !ld.Valid || ld.Op != uop.LOAD {
			continue
		}
		var unsafeCandidates []int32
	scan:
		for k := i - 1; k >= 0; k-- {
			o := &of.Ops[k]
			if !o.Valid || !o.IsMem() {
				continue
			}
			if !of.sameRegion(i, k) {
				break
			}
			switch o.Op {
			case uop.STORE:
				switch {
				case sameAddr(o, ld):
					if !opts.SF || !of.canEliminate(i, o.SrcB) {
						break scan
					}
					of.markUnsafe(unsafeCandidates, ld, s)
					of.eliminateLoad(i, o.SrcB)
					s.SFLoads++
					changed = true
					break scan
				case disjointSameBase(o, ld):
					// Provably different word: keep scanning.
				default:
					if opts.Speculative && profilesDisjoint(o, ld) {
						unsafeCandidates = append(unsafeCandidates, k)
						continue
					}
					break scan
				}
			case uop.LOAD:
				if sameAddr(o, ld) {
					if !opts.CSE || !of.canEliminate(i, opRef(k)) {
						break scan
					}
					of.markUnsafe(unsafeCandidates, ld, s)
					of.eliminateLoad(i, opRef(k))
					s.CSELoads++
					changed = true
					break scan
				}
			}
		}
	}
	return changed
}

// eliminateLoad replaces load i's value with ref r; the load either
// becomes a MOV (when live-out) or is left for DCE.
func (of *OptFrame) eliminateLoad(i int32, r Ref) {
	o := &of.Ops[i]
	of.replaceValueRefs(i, r)
	if o.LiveOut {
		o.Op = uop.MOV
		o.SrcA, o.SrcB = r, Ref{}
		o.Imm = 0
		o.MemSub = -1
	} else {
		// No consumers remain; DCE removes it.
		o.Op = uop.MOV
		o.SrcA, o.SrcB = r, Ref{}
		o.Imm = 0
		o.MemSub = -1
	}
}

// markUnsafe marks the speculated-across stores unsafe, guarding each
// with the eliminated load's addressing (captured before the load is
// rewritten).
func (of *OptFrame) markUnsafe(candidates []int32, ld *FrameOp, s *Stats) {
	for _, k := range candidates {
		if !of.Ops[k].Unsafe {
			of.Ops[k].Unsafe = true
			s.UnsafeStores++
		}
		idx, scale := memIndex(ld)
		of.UnsafeGuards = append(of.UnsafeGuards, UnsafeGuard{
			Store: k, Base: ld.SrcA, Index: idx, Scale: scale, Imm: ld.Imm,
			InstIdx: ld.InstIdx, MemSub: ld.MemSub, ProfAddr: ld.ProfAddr,
		})
	}
}

// assertPass fuses a flag-producing compare with its assertion into a
// single CASSERT micro-op (the paper's value assertion optimization).
func (of *OptFrame) assertPass(s *Stats) {
	for i := int32(0); i < int32(len(of.Ops)); i++ {
		o := &of.Ops[i]
		if !o.Valid || o.Op != uop.ASSERT || o.SrcF.Kind != RefOp {
			continue
		}
		p := &of.Ops[o.SrcF.Idx]
		if !p.Valid || !p.WritesFlags || p.KeepCF || !of.sameRegion(i, o.SrcF.Idx) {
			continue
		}
		switch {
		case p.Op == uop.SUB:
			o.Op = uop.CASSERT
			o.SrcA, o.SrcB, o.Imm = p.SrcA, p.SrcB, p.Imm
			o.SrcF = Ref{}
			s.FusedAsserts++
		case p.Op == uop.AND && !p.HasImmB() && p.SrcA == p.SrcB:
			// TEST r,r followed by an assert: equivalent to comparing r
			// with zero for every modeled condition.
			o.Op = uop.CASSERT
			o.SrcA, o.SrcB, o.Imm = p.SrcA, Ref{}, 0
			o.SrcF = Ref{}
			s.FusedAsserts++
		}
	}
}

// sideEffect ops can never be removed by DCE. Stores are never removed
// (the paper's rule); asserts enforce frame validity; NOPs and internal
// jumps belong to the NOP pass so that the ablation switch is meaningful.
func sideEffect(op uop.Op) bool {
	switch op {
	case uop.STORE, uop.ASSERT, uop.CASSERT, uop.JMP, uop.JR, uop.BR, uop.NOP:
		return true
	}
	return false
}

// dcePass removes ops whose value and flags are unused and not live-out.
func (of *OptFrame) dcePass(s *Stats) {
	n := len(of.Ops)
	for {
		valUse := make([]int, n)
		flgUse := make([]int, n)
		for j := range of.Ops {
			o := &of.Ops[j]
			if !o.Valid {
				continue
			}
			if o.SrcA.Kind == RefOp {
				valUse[o.SrcA.Idx]++
			}
			if o.SrcB.Kind == RefOp {
				valUse[o.SrcB.Idx]++
			}
			if o.SrcF.Kind == RefOp {
				flgUse[o.SrcF.Idx]++
			}
		}
		// writers[r] counts valid ops writing architectural register r,
		// for the identity-move rule below.
		var writers [8]int
		for j := range of.Ops {
			o := &of.Ops[j]
			if o.Valid && o.ArchDest != uop.RegNone && o.ArchDest < 8 {
				writers[o.ArchDest]++
			}
		}
		removed := false
		for i := range of.Ops {
			o := &of.Ops[i]
			if !o.Valid || sideEffect(o.Op) {
				continue
			}
			if valUse[i] > 0 {
				continue
			}
			if o.WritesFlags && (flgUse[i] > 0 || o.FlagsLiveOut) {
				continue
			}
			if o.LiveOut {
				// Identity move: a live-out MOV of a register's own live-in
				// value is architecturally a no-op (the paper's full
				// elimination of store-forwarded loads, e.g. micro-ops 12
				// and 14 in Figure 2). At frame scope intermediate writers
				// are invisible, so only the end state matters; at
				// sub-frame scopes the register must have no other writer,
				// because intermediate exits expose it.
				if o.Op == uop.MOV && o.SrcA.Kind == RefLiveIn &&
					o.SrcA.Arch == o.ArchDest && o.ArchDest < 8 &&
					(of.Scope == ScopeFrame || writers[o.ArchDest] == 1) &&
					of.Final[o.ArchDest] == opRef(int32(i)) {
					o.Valid = false
					s.RemovedDCE++
					removed = true
				}
				continue
			}
			o.Valid = false
			s.RemovedDCE++
			removed = true
		}
		if !removed {
			return
		}
	}
}
