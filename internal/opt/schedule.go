package opt

import "repro/internal/uop"

// Schedule computes a new issue order for the frame using the paper's
// position-field mechanism (Section 4): "the optimization algorithms can
// use the position field to adjust the frame's schedule. The Cleanup
// Logic can use associative lookups to read the frame out of the
// Optimization Buffer in the specified order."
//
// The schedule is a critical-path-first list schedule under two
// constraints: an op is placed after its producers (so the fetch-order
// dataflow of the timing model and executor stays resolvable), and
// memory operations and assertions keep their original relative order
// (the paper: memory ordering must be preserved; assertions gate
// commit). The result is stored in of.Order; an empty Order means
// original buffer order.
func Schedule(of *OptFrame) {
	n := len(of.Ops)

	// Critical-path height: longest consumer chain below each op.
	height := make([]int32, n)
	for i := n - 1; i >= 0; i-- {
		o := &of.Ops[i]
		if !o.Valid {
			continue
		}
		h := height[i] // already raised by consumers processed before
		if h == 0 {
			height[i] = 1
			h = 1
		}
		raise := func(r Ref) {
			if r.Kind == RefOp {
				if height[r.Idx] < h+1 {
					height[r.Idx] = h + 1
				}
			}
		}
		raise(o.SrcA)
		raise(o.SrcB)
		raise(o.SrcF)
	}

	// Ordering constraints.
	prodCount := make([]int32, n) // unscheduled producers
	for i := 0; i < n; i++ {
		o := &of.Ops[i]
		if !o.Valid {
			continue
		}
		for _, r := range []Ref{o.SrcA, o.SrcB, o.SrcF} {
			if r.Kind == RefOp && of.Ops[r.Idx].Valid {
				prodCount[i]++
			}
		}
	}
	// Serial chain of memory/assert ops in original order.
	var serial []int32
	for i := 0; i < n; i++ {
		o := &of.Ops[i]
		if o.Valid && (o.IsMem() || o.Op.IsAssert() || o.Op.IsControl()) {
			serial = append(serial, int32(i))
		}
	}
	nextSerial := 0

	scheduled := make([]bool, n)
	order := make([]int32, 0, n)

	for {
		best := int32(-1)
		for i := 0; i < n; i++ {
			o := &of.Ops[i]
			if !o.Valid || scheduled[i] || prodCount[i] > 0 {
				continue
			}
			if (o.IsMem() || o.Op.IsAssert() || o.Op.IsControl()) &&
				(nextSerial >= len(serial) || serial[nextSerial] != int32(i)) {
				continue // not this mem/assert op's turn
			}
			if best < 0 || height[i] > height[best] ||
				(height[i] == height[best] && i < int(best)) {
				best = int32(i)
			}
		}
		if best < 0 {
			break
		}
		scheduled[best] = true
		order = append(order, best)
		if nextSerial < len(serial) && serial[nextSerial] == best {
			nextSerial++
		}
		// Release consumers.
		for j := 0; j < n; j++ {
			o := &of.Ops[j]
			if !o.Valid || scheduled[j] {
				continue
			}
			for _, r := range []Ref{o.SrcA, o.SrcB, o.SrcF} {
				if r.Kind == RefOp && r.Idx == best {
					prodCount[j]--
				}
			}
		}
	}
	of.Order = order
}

// Iterate visits the frame's valid ops in issue order: the rescheduled
// order when Schedule ran, buffer order otherwise.
func (of *OptFrame) Iterate(fn func(idx int32, o *FrameOp)) {
	if len(of.Order) > 0 {
		for _, i := range of.Order {
			fn(i, &of.Ops[i])
		}
		return
	}
	for i := range of.Ops {
		if of.Ops[i].Valid {
			fn(int32(i), &of.Ops[i])
		}
	}
}

// MaxHeight returns the frame's dataflow critical-path length in valid
// micro-ops (diagnostic; the paper's "computation tree height").
func (of *OptFrame) MaxHeight() int {
	n := len(of.Ops)
	depth := make([]int32, n)
	var max int32
	for i := 0; i < n; i++ {
		o := &of.Ops[i]
		if !o.Valid {
			continue
		}
		d := int32(1)
		for _, r := range []Ref{o.SrcA, o.SrcB, o.SrcF} {
			if r.Kind == RefOp && depth[r.Idx]+1 > d {
				d = depth[r.Idx] + 1
			}
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	_ = uop.NOP
	return int(max)
}
