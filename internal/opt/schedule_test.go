package opt

import (
	"testing"

	"repro/internal/uop"
)

// TestScheduleTopological: every op appears once, after its producers.
func TestScheduleTopological(t *testing.T) {
	f := buildFigure2Frame(t)
	of := Remap(f, ScopeFrame)
	Optimize(of, AllOptions())
	Schedule(of)

	if len(of.Order) != of.NumValid() {
		t.Fatalf("order has %d entries, %d valid ops", len(of.Order), of.NumValid())
	}
	pos := make(map[int32]int)
	for p, idx := range of.Order {
		if _, dup := pos[idx]; dup {
			t.Fatalf("op %d scheduled twice", idx)
		}
		pos[idx] = p
	}
	for _, idx := range of.Order {
		o := &of.Ops[idx]
		for _, r := range []Ref{o.SrcA, o.SrcB, o.SrcF} {
			if r.Kind == RefOp && of.Ops[r.Idx].Valid {
				if pos[r.Idx] >= pos[idx] {
					t.Errorf("op %d scheduled before its producer %d", idx, r.Idx)
				}
			}
		}
	}
}

// TestSchedulePreservesMemoryOrder: memory ops and assertions keep their
// original relative order.
func TestSchedulePreservesMemoryOrder(t *testing.T) {
	f := buildFigure2Frame(t)
	of := Remap(f, ScopeFrame)
	Optimize(of, AllOptions())
	Schedule(of)

	var orig, sched []int32
	for i := range of.Ops {
		o := &of.Ops[i]
		if o.Valid && (o.IsMem() || o.Op.IsAssert() || o.Op.IsControl()) {
			orig = append(orig, int32(i))
		}
	}
	for _, idx := range of.Order {
		o := &of.Ops[idx]
		if o.IsMem() || o.Op.IsAssert() || o.Op.IsControl() {
			sched = append(sched, idx)
		}
	}
	if len(orig) != len(sched) {
		t.Fatalf("memory/assert op count changed: %d vs %d", len(orig), len(sched))
	}
	for i := range orig {
		if orig[i] != sched[i] {
			t.Fatalf("memory order changed at %d: %v vs %v", i, orig, sched)
		}
	}
}

// TestSchedulePreservesSemantics: execution in scheduled order produces
// the same architectural results as buffer order.
func TestSchedulePreservesSemantics(t *testing.T) {
	f := buildFigure2Frame(t)
	of := Remap(f, ScopeFrame)
	Optimize(of, AllOptions())
	base := executeAndCheck(t, of, "buffer-order")

	g := buildFigure2Frame(t)
	og := Remap(g, ScopeFrame)
	Optimize(og, AllOptions())
	Schedule(og)
	sched := executeAndCheck(t, og, "scheduled")

	if base.Regs != sched.Regs {
		t.Errorf("register state differs:\n  %v\n  %v", base.Regs, sched.Regs)
	}
	if len(base.Stores) != len(sched.Stores) {
		t.Fatalf("store counts differ")
	}
	for i := range base.Stores {
		if base.Stores[i] != sched.Stores[i] {
			t.Errorf("store %d differs", i)
		}
	}
}

// TestScheduleCriticalPathFirst: with independent chains, the deeper
// chain's first op schedules before the shallow chain's.
func TestScheduleCriticalPathFirst(t *testing.T) {
	// op0: shallow — ECX <- ECX+1 (height 1, nothing consumes it)
	// op1..3: deep chain on EAX (heights 3,2,1)
	f := chainFrame(false)
	f.UOps = append([]uop.UOp{
		{Op: uop.ADD, Dest: uop.ECX, SrcA: uop.ECX, SrcB: uop.RegNone, Imm: 1},
	}, f.UOps...)
	f.InstIdx = []int32{0, 1, 2, 3, 4}
	f.MemSub = []int8{-1, -1, -1, -1, -1}
	f.MemAddr = []uint32{0, 0, 0, 0, 0}
	f.PCs = append([]uint32{0xF0}, f.PCs...)
	f.NextPCs = append([]uint32{0x100}, f.NextPCs...)
	f.NumX86 = 5

	of := Remap(f, ScopeFrame)
	// No optimization: schedule the raw chain.
	Schedule(of)
	if len(of.Order) != 5 {
		t.Fatalf("order = %v", of.Order)
	}
	// The EAX chain head (index 1) must schedule before the shallow ECX op
	// (index 0).
	posOf := map[int32]int{}
	for p, idx := range of.Order {
		posOf[idx] = p
	}
	if posOf[1] > posOf[0] {
		t.Errorf("critical-path op not prioritized: order %v", of.Order)
	}
}

// TestMaxHeightDropsWithReassociation: the paper's "computation tree
// height" claim — reassociation shortens the critical path.
func TestMaxHeightDropsWithReassociation(t *testing.T) {
	of := Remap(chainFrame(false), ScopeFrame)
	before := of.MaxHeight()
	Optimize(of, AllOptions())
	after := of.MaxHeight()
	if after >= before {
		t.Errorf("tree height %d -> %d; reassociation should shorten it", before, after)
	}
}

// TestIterateBufferOrder: without Schedule, Iterate visits valid ops in
// buffer order.
func TestIterateBufferOrder(t *testing.T) {
	f := buildFigure2Frame(t)
	of := Remap(f, ScopeFrame)
	Optimize(of, AllOptions())
	last := int32(-1)
	of.Iterate(func(idx int32, o *FrameOp) {
		if idx <= last {
			t.Fatalf("buffer order violated: %d after %d", idx, last)
		}
		last = idx
	})
}
