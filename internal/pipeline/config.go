// Package pipeline implements the paper's timing model (Section 5.1.2 and
// Table 2): a deeply pipelined 8-wide fetch/issue/retire processor with a
// 512-entry scheduling window, a 15-cycle minimum branch resolution, an
// 18-bit gshare predictor, the Table 2 cache hierarchy, and the rePLay
// fetch engine (frame cache + sequencer + assertion recovery) or a trace
// cache, selected by Mode.
//
// The model is trace-driven with limited wrong-path support, exactly as
// in the paper: fetch follows the correct path, mispredictions cost
// resolution stalls, and wrong-path behaviour is modeled only on
// asserting frames (whose micro-ops are dispatched and then discarded).
package pipeline

import (
	"repro/internal/frame"
	"repro/internal/opt"
)

// Mode selects the fetch-engine configuration of Figure 6.
type Mode int

// The four evaluated configurations.
const (
	// ModeICache is the reference 64kB instruction-cache machine (IC).
	ModeICache Mode = iota
	// ModeTraceCache adds a 16k micro-op trace cache over an 8kB ICache (TC).
	ModeTraceCache
	// ModeRePLay is basic rePLay: frame cache, no optimization (RP).
	ModeRePLay
	// ModeRePLayOpt is rePLay with the optimizing engine (RPO).
	ModeRePLayOpt
)

func (m Mode) String() string {
	switch m {
	case ModeICache:
		return "IC"
	case ModeTraceCache:
		return "TC"
	case ModeRePLay:
		return "RP"
	default:
		return "RPO"
	}
}

// Config is the processor configuration (Table 2 defaults).
type Config struct {
	Width       int // fetch/issue/retire width in micro-ops
	DecodeWidth int // x86 decoder throughput per cycle (ICache path)
	WindowSize  int // scheduling window in micro-ops

	FrontLatency     int // fetch-to-issue pipeline depth
	MinBranchResolve int // min cycles from branch fetch to execution

	SimpleALUs  int
	ComplexALUs int
	FPUs        int
	LSUs        int

	// Cache hierarchy.
	ICacheBytes int // per-mode: 64kB for IC, 8kB for TC/RP/RPO
	LineBytes   int
	L1DBytes    int
	L1DLat      int
	L2Bytes     int
	L2Lat       int
	MemLat      int

	// Predictors.
	GshareBits uint
	BTBEntries int
	RASDepth   int

	// StoreForwardLat is the store-buffer bypass latency for loads hitting
	// an in-flight store.
	StoreForwardLat int

	// SwitchWait is the idle turnaround when fetch switches between the
	// frame/trace cache and the ICache.
	SwitchWait int

	// rePLay engine.
	FrameCacheUOps  int          // 16k micro-ops
	FrameCfg        frame.Config // constructor parameters
	OptOptions      opt.Options  // optimizations (RPO)
	OptScope        opt.Scope
	OptCyclesPerUOp int // optimizer latency (10 cycles/micro-op)
	OptPipeDepth    int // concurrent frames in the optimizer (3)
	// OptReschedule enables the position-field rescheduling of Section 4
	// (critical-path-first issue order via the Cleanup Logic). Off by
	// default: the paper's frames stay in buffer order.
	OptReschedule bool

	// Trace cache (TC mode).
	TraceCacheUOps   int
	TraceMaxUOps     int
	TraceMaxBranches int
}

// DefaultConfig returns the Table 2 configuration for the given mode.
func DefaultConfig(mode Mode) Config {
	cfg := Config{
		Width:            8,
		DecodeWidth:      4,
		WindowSize:       512,
		FrontLatency:     10,
		MinBranchResolve: 15,
		SimpleALUs:       6,
		ComplexALUs:      2,
		FPUs:             3,
		LSUs:             4,
		ICacheBytes:      8 << 10,
		LineBytes:        64,
		L1DBytes:         32 << 10,
		L1DLat:           2,
		L2Bytes:          512 << 10,
		L2Lat:            10,
		MemLat:           50,
		GshareBits:       18,
		BTBEntries:       4096,
		RASDepth:         16,
		StoreForwardLat:  3,
		SwitchWait:       1,
		FrameCacheUOps:   16 << 10,
		FrameCfg:         frame.DefaultConfig(),
		OptOptions:       opt.AllOptions(),
		OptScope:         opt.ScopeFrame,
		OptCyclesPerUOp:  10,
		OptPipeDepth:     3,
		TraceCacheUOps:   16 << 10,
		TraceMaxUOps:     32,
		TraceMaxBranches: 3,
	}
	if mode == ModeICache {
		cfg.ICacheBytes = 64 << 10
	}
	return cfg
}

// Bin classifies a fetch-stage cycle (Figures 7 and 8), in the paper's
// priority order.
type Bin int

// Fetch-cycle bins.
const (
	BinAssert  Bin = iota // fetched a firing frame; waiting for recovery
	BinMispred            // unresolved mispredicted branch / BTB miss
	BinMiss               // FCache/ICache miss
	BinStall              // downstream buffer (scheduling window) full
	BinWait               // cache switch turnaround
	BinFrame              // fetched from the frame/trace cache
	BinICache             // fetched from the ICache
	NumBins
)

var binNames = [NumBins]string{"assert", "mispred", "miss", "stall", "wait", "frame", "icache"}

func (b Bin) String() string { return binNames[b] }

// Stats accumulates the engine's observable behaviour.
type Stats struct {
	Cycles uint64
	Bins   [NumBins]uint64

	X86Retired  uint64
	UOpsRetired uint64 // micro-ops on the committed path

	// Optimization accounting over the committed stream.
	UOpsBaseline  uint64 // micro-ops the unoptimized decode would execute
	LoadsBaseline uint64
	LoadsRetired  uint64

	// Branch behaviour.
	CondBranches uint64
	Mispredicts  uint64
	BTBMisses    uint64

	// rePLay activity.
	FramesConstructed uint64
	FramesOptimized   uint64
	FramesDropped     uint64 // optimizer busy
	FrameFetches      uint64
	FrameCommits      uint64
	FrameAborts       uint64
	UnsafeAborts      uint64

	// CoveredBaseline counts baseline micro-ops whose instructions were
	// fetched from frames (frame coverage of the dynamic stream).
	CoveredBaseline uint64

	// Frame-construction end reasons (diagnostics).
	EndUnbiased  uint64
	EndUnstable  uint64
	EndMaxSize   uint64
	DroppedSmall uint64

	// Optimizer pass totals.
	Opt opt.Stats
}

// IPC returns retired x86 instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.X86Retired) / float64(s.Cycles)
}

// UOpReduction returns the fraction of dynamic micro-ops removed.
func (s *Stats) UOpReduction() float64 {
	if s.UOpsBaseline == 0 {
		return 0
	}
	return 1 - float64(s.UOpsRetired)/float64(s.UOpsBaseline)
}

// LoadReduction returns the fraction of dynamic loads removed.
func (s *Stats) LoadReduction() float64 {
	if s.LoadsBaseline == 0 {
		return 0
	}
	return 1 - float64(s.LoadsRetired)/float64(s.LoadsBaseline)
}

// FrameCoverage returns the fraction of retired micro-ops fetched from
// frames (measured against the unoptimized count each frame covers).
func (s *Stats) FrameCoverage() float64 {
	if s.UOpsBaseline == 0 {
		return 0
	}
	return float64(s.CoveredBaseline) / float64(s.UOpsBaseline)
}
