package pipeline

import (
	"context"

	"repro/internal/cache"
	"repro/internal/frame"
	"repro/internal/opt"
	"repro/internal/predict"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/uop"
	"repro/internal/x86"
)

// Slot is one retired x86 instruction offered to the timing model: its
// decoded form, micro-op flow, dynamic successor and memory addresses
// (in flow order).
type Slot struct {
	PC       uint32
	Inst     x86.Inst
	UOps     []uop.UOp
	NextPC   uint32
	MemAddrs []uint32
}

// Taken reports whether the instruction redirected control flow.
func (s *Slot) Taken() bool { return s.NextPC != s.PC+uint32(s.Inst.Len) }

// Stream supplies the correct-path instruction stream.
type Stream interface {
	// Next returns the next retired instruction, or ok=false at the end.
	Next() (Slot, bool)
}

// Engine is the cycle-level timing model.
type Engine struct {
	cfg  Config
	mode Mode
	src  Stream

	// Stream lookahead and assertion-replay pushback, kept as a
	// head-indexed deque: consumption advances pendingLo instead of
	// re-slicing, so the backing array is reused instead of reallocated
	// every few fetch groups.
	pending   []Slot
	pendingLo int

	cycle uint64
	stats Stats
	base  Stats // snapshot at ResetStats

	// Dataflow state: availability time of each architectural register.
	archReady [uop.NumRegs]uint64

	// Functional units: next-free cycle per unit, per class.
	fuSimple  []uint64
	fuComplex []uint64
	fuLSU     []uint64

	// In-order retirement: FIFO of retire times of in-flight micro-ops,
	// plus a ring of the last Width retire times for the width constraint.
	inflight   []uint64 // monotonic nondecreasing retire times
	inflightLo int
	retireRing []uint64
	ringPos    int
	lastRetire uint64

	// Caches and predictors.
	icache *cache.Cache
	l1d    *cache.Cache
	l2     *cache.Cache
	gshare *predict.Gshare
	btb    *predict.BTB
	ras    *predict.RAS

	// Store buffer model: address -> completion time of the youngest
	// in-flight store. Entries outside the forwarding window are dead;
	// storeBufSweep tracks the last eviction pass so the map stays
	// bounded over long runs.
	storeBuf      map[uint32]uint64
	storeBufSweep uint64

	// rePLay engine (RP/RPO modes).
	cons       *frame.Constructor
	frames     *cache.UOpCache[*opt.OptFrame]
	optSlots   []uint64 // optimizer pipeline: next-free time per slot
	optPending []pendingFrame
	optQueue   []*frame.Frame // input buffer awaiting a pipeline slot
	// growCap caps frame size per start PC after aborts (abort feedback).
	growCap map[uint32]int
	// abortRuns tracks consecutive aborts per frame start PC.
	abortRuns map[uint32]int
	// recoverSlots counts instructions that must re-execute from the
	// ICache after an assertion recovery (the paper: "the original
	// instructions are executed instead").
	recoverSlots int

	// Trace cache (TC mode).
	traces  *cache.UOpCache[*traceEntry]
	fill    *traceFill
	lastSrc fetchSrc

	// Telemetry (see SetTelemetry). tel is nil unless attached, so the
	// disabled cost on the dispatch hot path is one nil check.
	tel         *telemetry.Collector
	telRun      int
	telInsertAt map[uint32]uint64 // frame-cache insert cycle per PC, for residency

	// Reuse attribution probe (see SetReuse); nil unless attached, so
	// the disabled cost on the retirement path is one nil check.
	reuse ReuseProbe
	// reusePass is the cached ReusePassProbe view of reuse (nil when the
	// probe does not implement the extension), resolved once at SetReuse
	// so the per-frame optimizer call site never asserts.
	reusePass ReusePassProbe

	// Guest-cycle profiler probe (see SetCycleProf); nil unless
	// attached, so the disabled cost at the two cycle-charging sites
	// and at the profAt attribution points is one nil check each.
	cprof CycleProbe
	// profPC is the guest PC the next charged fetch cycles are
	// attributed to; maintained (via profAt) only while cprof is set.
	profPC uint32

	// Wall-clock pass timing (see SetPassRecorder); nil unless a span
	// trace is being assembled for this run.
	passRec opt.TimedPassRecorder

	// fetchFrame scratch, reused across fetches (the engine is
	// single-goroutine, and everything that outlives a fetch — pushback,
	// RetireFrame — copies out of these buffers before returning).
	scratchSlots []Slot
	scratchVals  []uint64
	scratchAddrs []uint32
	// activeSrc is the frame being fetched right now; cache-eviction
	// recycling skips it (an Invalidate mid-fetch must not release
	// buffers the fetch is still reading).
	activeSrc *frame.Frame

	// MispredictHook, when set, is called on every misprediction-style
	// fetch stall (diagnostics).
	MispredictHook func(pc uint32, kind string)
	// AbortHook, when set, is called on every frame abort with the frame
	// start and the PC of the diverging/conflicting instruction.
	AbortHook func(startPC, instPC uint32, unsafe bool)
	// DepositHook observes every frame offered by the constructor.
	DepositHook func(f *frame.Frame)
}

type pendingFrame struct {
	readyAt uint64
	of      *opt.OptFrame
}

type fetchSrc int

const (
	srcNone fetchSrc = iota
	srcIC
	srcFC
)

// New returns an engine in the given mode over the instruction stream.
func New(cfg Config, mode Mode, src Stream) *Engine {
	e := &Engine{
		cfg:        cfg,
		mode:       mode,
		src:        src,
		icache:     cache.New(cfg.ICacheBytes, cfg.LineBytes, 2),
		l1d:        cache.New(cfg.L1DBytes, cfg.LineBytes, 4),
		l2:         cache.New(cfg.L2Bytes, cfg.LineBytes, 8),
		gshare:     predict.NewGshare(cfg.GshareBits),
		btb:        predict.NewBTB(cfg.BTBEntries),
		ras:        predict.NewRAS(cfg.RASDepth),
		storeBuf:   make(map[uint32]uint64),
		fuSimple:   make([]uint64, cfg.SimpleALUs),
		fuComplex:  make([]uint64, cfg.ComplexALUs),
		fuLSU:      make([]uint64, cfg.LSUs),
		retireRing: make([]uint64, cfg.Width),
	}
	switch mode {
	case ModeRePLay, ModeRePLayOpt:
		e.frames = cache.NewUOpCache[*opt.OptFrame](cfg.FrameCacheUOps)
		e.frames.Recycle = e.recycleFrame
		e.optSlots = make([]uint64, cfg.OptPipeDepth)
		e.growCap = make(map[uint32]int)
		e.abortRuns = make(map[uint32]int)
		e.cons = frame.NewConstructor(cfg.FrameCfg, e.depositFrame)
	case ModeTraceCache:
		e.traces = cache.NewUOpCache[*traceEntry](cfg.TraceCacheUOps)
		e.fill = &traceFill{}
	}
	return e
}

// recycleFrame returns a displaced frame-cache entry's buffers to their
// pools (the cache's Recycle hook: capacity eviction, same-PC
// replacement, and invalidation). Recycling is skipped when a
// DepositHook is attached — the hook may have retained the source frame
// — and for the frame currently being fetched, which an Invalidate or
// replacement can displace while the fetch still reads it; that one
// pair is left to the garbage collector.
func (e *Engine) recycleFrame(of *opt.OptFrame) {
	if e.DepositHook != nil || of == nil || of.Source == e.activeSrc {
		return
	}
	src := of.Source
	opt.PutOptFrame(of)
	frame.PutFrame(src)
}

// snapshotStats copies the full running totals, including the clock and
// the counters kept by the frame constructor.
func (e *Engine) snapshotStats() Stats {
	s := e.stats
	s.Cycles = e.cycle
	if e.cons != nil {
		s.EndUnbiased = e.cons.EndUnbiased
		s.EndUnstable = e.cons.EndUnstable
		s.EndMaxSize = e.cons.EndMaxSize
		s.DroppedSmall = e.cons.DroppedSmall
	}
	return s
}

// Stats returns the statistics accumulated since the last ResetStats.
func (e *Engine) Stats() Stats {
	s := e.snapshotStats()
	s.Sub(&e.base)
	return s
}

// ResetStats makes subsequent Stats relative to this point (used to
// exclude warmup). The whole Stats struct is snapshotted, so every
// counter — mispredicts, frame fetches and aborts, optimizer totals —
// is baselined, not just cycles, retirement counts and fetch bins.
func (e *Engine) ResetStats() {
	e.base = e.snapshotStats()
}

// next consumes the next correct-path instruction.
func (e *Engine) next() (Slot, bool) {
	if e.pendingLo < len(e.pending) {
		s := e.pending[e.pendingLo]
		e.pendingLo++
		if e.pendingLo == len(e.pending) {
			// Drained: rewind so the backing array is reused.
			e.pending = e.pending[:0]
			e.pendingLo = 0
		}
		return s, true
	}
	return e.src.Next()
}

// peek returns the next instruction without consuming it.
func (e *Engine) peek() (Slot, bool) {
	if e.pendingLo < len(e.pending) {
		return e.pending[e.pendingLo], true
	}
	s, ok := e.src.Next()
	if !ok {
		return Slot{}, false
	}
	e.pending = append(e.pending, s)
	return s, true
}

// pushback re-queues slots for re-execution (assertion recovery). The
// slots are copied, so callers may reuse their buffer afterwards.
func (e *Engine) pushback(slots []Slot) {
	if len(slots) == 0 {
		return
	}
	if e.pendingLo >= len(slots) {
		// Room in the consumed prefix: slide the slots back in place.
		e.pendingLo -= len(slots)
		copy(e.pending[e.pendingLo:], slots)
		return
	}
	rest := len(e.pending) - e.pendingLo
	need := len(slots) + rest
	if cap(e.pending) < need {
		np := make([]Slot, need, need+2*len(slots))
		copy(np, slots)
		copy(np[len(slots):], e.pending[e.pendingLo:])
		e.pending, e.pendingLo = np, 0
		return
	}
	e.pending = e.pending[:need]
	copy(e.pending[len(slots):], e.pending[e.pendingLo:e.pendingLo+rest])
	copy(e.pending, slots)
	e.pendingLo = 0
}

// stallUntil advances the clock to t, charging the idle fetch cycles to
// the bin in one step. Together with tick these are the only writers of
// Stats.Bins, which is what makes the cycle profiler's attribution
// conservation-exact: every charged cycle passes through here.
func (e *Engine) stallUntil(t uint64, bin Bin) {
	if t > e.cycle {
		n := t - e.cycle
		e.stats.Bins[bin] += n
		e.cycle = t
		if e.cprof != nil {
			e.cprof.CycleCharge(e.profPC, bin, n)
		}
	}
}

// tick charges the current fetch cycle to the bin and advances the clock.
func (e *Engine) tick(bin Bin) {
	e.stats.Bins[bin]++
	e.cycle++
	if e.cprof != nil {
		e.cprof.CycleCharge(e.profPC, bin, 1)
	}
}

// profAt notes the guest PC responsible for subsequently charged fetch
// cycles. One nil check when no profiler is attached.
func (e *Engine) profAt(pc uint32) {
	if e.cprof != nil {
		e.profPC = pc
	}
}

// popRetired drops retired micro-ops from the in-flight window.
func (e *Engine) popRetired() {
	for e.inflightLo < len(e.inflight) && e.inflight[e.inflightLo] <= e.cycle {
		e.inflightLo++
	}
	if e.inflightLo > 4096 && e.inflightLo*2 > len(e.inflight) {
		// Compact in place: the live suffix slides to the front, keeping
		// the backing array instead of reallocating it every window.
		n := copy(e.inflight, e.inflight[e.inflightLo:])
		e.inflight = e.inflight[:n]
		e.inflightLo = 0
	}
}

// windowStall blocks fetch (charging Stall cycles) until the scheduling
// window has room for a fetch group.
func (e *Engine) windowStall() {
	for {
		e.popRetired()
		if len(e.inflight)-e.inflightLo+e.cfg.Width <= e.cfg.WindowSize {
			return
		}
		e.stallUntil(e.inflight[e.inflightLo], BinStall)
	}
}

// fu selects the earliest-available unit of the class and books it at
// issueAt (one issue slot per cycle, pipelined execution).
func fuPick(units []uint64, ready uint64) (int, uint64) {
	best := 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	issue := ready
	if units[best] > issue {
		issue = units[best]
	}
	return best, issue
}

func classUnits(e *Engine, op uop.Op) []uint64 {
	switch op {
	case uop.MULLO, uop.MULHIU, uop.MULHIS, uop.DIVU, uop.REMU, uop.DIVS, uop.REMS:
		return e.fuComplex
	case uop.LOAD, uop.STORE:
		return e.fuLSU
	}
	return e.fuSimple
}

func opLatency(op uop.Op) uint64 {
	switch op {
	case uop.MULLO, uop.MULHIU, uop.MULHIS:
		return 4
	case uop.DIVU, uop.REMU, uop.DIVS, uop.REMS:
		return 20
	}
	return 1
}

// storeForwardWindow is the cycle span within which an in-flight store
// can still forward its data to a later load.
const storeForwardWindow = 256

// evictStaleStores drops store-buffer entries too old to ever forward
// again. Without it the map only grows — an unbounded leak over long
// simulations. Swept every few windows to keep the amortized cost nil.
func (e *Engine) evictStaleStores() {
	if e.cycle < e.storeBufSweep+4*storeForwardWindow {
		return
	}
	e.storeBufSweep = e.cycle
	for addr, done := range e.storeBuf {
		if done+storeForwardWindow <= e.cycle {
			delete(e.storeBuf, addr)
		}
	}
}

// loadLatency models the data-cache hierarchy and store-buffer bypass for
// a load issued at issueAt. It returns the completion time.
func (e *Engine) loadLatency(addr uint32, issueAt uint64) uint64 {
	if done, ok := e.storeBuf[addr]; ok && done+storeForwardWindow > issueAt {
		// Store-buffer bypass: data comes from an in-flight store.
		t := issueAt + uint64(e.cfg.StoreForwardLat)
		if done+1 > t {
			t = done + 1
		}
		return t
	}
	if e.l1d.Access(addr) {
		return issueAt + uint64(e.cfg.L1DLat)
	}
	if e.l2.Access(addr) {
		return issueAt + uint64(e.cfg.L2Lat)
	}
	return issueAt + uint64(e.cfg.MemLat)
}

// dispatch models one micro-op: rename, schedule, execute, retire. ready
// is the dataflow availability of its sources; fetchAt the cycle it was
// fetched. Returns the completion (writeback) time.
func (e *Engine) dispatch(op uop.Op, ready uint64, fetchAt uint64, memAddr uint32, hasAddr bool) uint64 {
	earliest := fetchAt + uint64(e.cfg.FrontLatency)
	if ready < earliest {
		ready = earliest
	}
	units := classUnits(e, op)
	unit, issueAt := fuPick(units, ready)
	if op.IsControl() || op.IsAssert() {
		// Deep pipe: a control micro-op cannot resolve before the minimum
		// branch resolution depth.
		if min := fetchAt + uint64(e.cfg.MinBranchResolve); issueAt < min {
			issueAt = min
		}
	}
	units[unit] = issueAt + 1

	var doneAt uint64
	switch {
	case op == uop.LOAD && hasAddr:
		doneAt = e.loadLatency(memAddr, issueAt)
	case op == uop.STORE:
		doneAt = issueAt + 1
		if hasAddr {
			e.l1d.Access(memAddr)
			e.storeBuf[memAddr] = doneAt
		}
	default:
		doneAt = issueAt + opLatency(op)
	}

	// In-order retirement, Width per cycle.
	retireAt := doneAt
	if retireAt < e.lastRetire {
		retireAt = e.lastRetire
	}
	if w := e.retireRing[e.ringPos] + 1; retireAt < w {
		retireAt = w
	}
	e.retireRing[e.ringPos] = retireAt
	e.ringPos = (e.ringPos + 1) % e.cfg.Width
	e.lastRetire = retireAt
	e.inflight = append(e.inflight, retireAt)
	if e.tel != nil {
		e.tel.FetchRetire(retireAt - fetchAt)
	}
	return doneAt
}

// readyOf computes an arch-register dataflow ready time for a micro-op on
// the decoded (ICache / trace cache) path.
func (e *Engine) readyOf(u uop.UOp) uint64 {
	var r uint64
	if u.UsesSrcA() {
		if t := e.archReady[u.SrcA]; t > r {
			r = t
		}
	}
	if u.UsesSrcB() {
		if t := e.archReady[u.SrcB]; t > r {
			r = t
		}
	}
	if u.ReadsFlags() {
		if t := e.archReady[uop.FLAGS]; t > r {
			r = t
		}
	}
	return r
}

// dispatchDecoded dispatches one decoded-path micro-op, updating the arch
// scoreboard. Returns its completion time.
func (e *Engine) dispatchDecoded(u uop.UOp, fetchAt uint64, memAddr uint32, hasAddr bool) uint64 {
	done := e.dispatch(u.Op, e.readyOf(u), fetchAt, memAddr, hasAddr)
	if d := u.DestReg(); d != uop.RegNone {
		e.archReady[d] = done
	}
	if u.WritesFlags {
		e.archReady[uop.FLAGS] = done
	}
	return done
}

// retireSlot books the committed-path accounting for one instruction.
func (e *Engine) retireSlot(s *Slot, fromFrame bool, uopsExecuted, loadsExecuted int) {
	e.stats.X86Retired++
	e.stats.UOpsRetired += uint64(uopsExecuted)
	e.stats.LoadsRetired += uint64(loadsExecuted)
	base := len(s.UOps)
	loads := 0
	for _, u := range s.UOps {
		if u.Op == uop.LOAD {
			loads++
		}
	}
	e.stats.UOpsBaseline += uint64(base)
	e.stats.LoadsBaseline += uint64(loads)
	if fromFrame {
		e.stats.CoveredBaseline += uint64(base)
	}
}

// feedConstructor offers a retired instruction to the frame constructor.
func (e *Engine) feedConstructor(s *Slot) {
	if e.cons != nil {
		e.cons.Retire(s.PC, s.Inst, s.UOps, s.NextPC, s.MemAddrs)
	}
	if e.fill != nil {
		e.fillTrace(s)
	}
}

// Run drives the engine until the stream ends or maxInsts instructions
// retire. It returns the retired instruction count.
func (e *Engine) Run(maxInsts uint64) uint64 {
	n, _ := e.RunContext(nil, maxInsts)
	return n
}

// cancelCheckMask sets how often RunContext polls the context: once per
// 2^10 fetch iterations, so cancellation lands within microseconds of
// simulated work while the hot loop stays branch-predictable.
const cancelCheckMask = 1<<10 - 1

// RunContext is Run with cooperative cancellation: when ctx is done the
// engine stops at the next fetch-group boundary and reports ctx.Err().
// The engine's state stays consistent — a later RunContext call resumes
// exactly where the canceled one stopped. A nil ctx is allowed and makes
// RunContext equivalent to Run.
func (e *Engine) RunContext(ctx context.Context, maxInsts uint64) (uint64, error) {
	// One span per engine drive (warmup and measured windows each get
	// their own); a no-op nil span unless the request is being traced.
	ctx, span := tracing.Start(ctx, "pipeline.run")
	start := e.stats.X86Retired
	defer func() {
		span.SetAttr("insts", e.stats.X86Retired-start)
		span.SetAttr("mode", e.mode.String())
		span.End()
	}()
	for iter := 0; e.stats.X86Retired-start < maxInsts; iter++ {
		if ctx != nil && iter&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return e.stats.X86Retired - start, err
			}
		}
		s, ok := e.peek()
		if !ok {
			break
		}
		// Drain optimizer completions whose latency has elapsed.
		e.drainOptimizer()
		e.evictStaleStores()

		switch {
		case e.frames != nil:
			if e.recoverSlots > 0 {
				before := e.stats.X86Retired
				e.fetchICache()
				e.recoverSlots -= int(e.stats.X86Retired - before)
				continue
			}
			if of, hit := e.frames.Lookup(s.PC); hit {
				e.fetchFrame(of)
				continue
			}
			e.fetchICache()
		case e.traces != nil:
			if tr, hit := e.traces.Lookup(s.PC); hit {
				e.fetchTraceEntry(tr)
				continue
			}
			e.fetchICache()
		default:
			e.fetchICache()
		}
	}
	return e.stats.X86Retired - start, nil
}

// switchTo charges the cache-switch turnaround when the fetch source
// changes.
func (e *Engine) switchTo(src fetchSrc) {
	if e.lastSrc != srcNone && e.lastSrc != src && e.cfg.SwitchWait > 0 {
		e.stallUntil(e.cycle+uint64(e.cfg.SwitchWait), BinWait)
	}
	e.lastSrc = src
}

// fetchICache performs one ICache-path fetch group: up to DecodeWidth x86
// instructions and Width micro-ops, ending at a taken branch.
func (e *Engine) fetchICache() {
	// The group leader owns the group's switch-turnaround, window-stall,
	// miss, and fetch cycles; mispredict recovery is re-attributed to
	// the branch by handleControl.
	if e.cprof != nil {
		if s, ok := e.peek(); ok {
			e.profPC = s.PC
		}
	}
	e.switchTo(srcIC)
	e.windowStall()

	s, ok := e.peek()
	if !ok {
		return
	}
	// Instruction cache access for this fetch group.
	if !e.icache.Access(s.PC) {
		lat := uint64(e.cfg.L2Lat)
		if !e.l2.Access(s.PC) {
			lat = uint64(e.cfg.MemLat)
		}
		e.stallUntil(e.cycle+lat, BinMiss)
	}

	fetchAt := e.cycle
	e.tick(BinICache)

	instsLeft := e.cfg.DecodeWidth
	uopsLeft := e.cfg.Width
	first := true
	for instsLeft > 0 {
		s, ok := e.peek()
		if !ok {
			return
		}
		if len(s.UOps) > uopsLeft {
			return // next instruction does not fit this group
		}
		// Decode template (4-1-1-1 style): only the leading decoder
		// handles instructions that crack into multiple micro-ops.
		if !first && len(s.UOps) > 1 {
			return
		}
		first = false
		e.next()
		instsLeft--
		uopsLeft -= len(s.UOps)

		mi := 0
		loads := 0
		var brDone uint64
		for _, u := range s.UOps {
			var addr uint32
			hasAddr := false
			if u.Op.IsMem() {
				if mi < len(s.MemAddrs) {
					addr = s.MemAddrs[mi]
					hasAddr = true
				}
				mi++
			}
			done := e.dispatchDecoded(u, fetchAt, addr, hasAddr)
			if u.Op.IsControl() {
				brDone = done
			}
			if u.Op == uop.LOAD {
				loads++
			}
		}
		e.retireSlot(&s, false, len(s.UOps), loads)
		// Hook kept out of retireSlot so it stays inlinable at the
		// retirement sites; the detached cost is this one nil check.
		if e.reuse != nil {
			e.reuse.ReuseSlot(s, false, len(s.UOps))
		}
		e.feedConstructor(&s)

		// Control-flow handling.
		if stop := e.handleControl(&s, brDone); stop {
			return
		}
	}
}

// trainPredictors updates prediction state for an instruction retired
// inside a committed frame. Frame-internal control needs no prediction,
// but training at retirement keeps the predictors consistent for the
// decoded path (as retirement-trained hardware predictors are).
func (e *Engine) trainPredictors(s *Slot) {
	switch s.Inst.Op {
	case x86.OpJCC:
		e.gshare.Update(s.PC, s.Taken())
	case x86.OpCALL:
		e.ras.Push(s.PC + uint32(s.Inst.Len))
		if s.Inst.Dst.Kind != x86.KindImm {
			e.btb.Update(s.PC, s.NextPC)
		}
	case x86.OpJMP:
		if s.Inst.Dst.Kind != x86.KindImm {
			e.btb.Update(s.PC, s.NextPC)
		}
	case x86.OpRET:
		e.ras.Pop()
	}
}

// handleControl models prediction for a decoded-path instruction and
// returns whether the fetch group must end.
func (e *Engine) handleControl(s *Slot, resolveAt uint64) bool {
	e.profAt(s.PC) // mispredict-recovery stalls belong to the branch
	in := s.Inst
	actualTaken := s.Taken()
	switch in.Op {
	case x86.OpJCC:
		e.stats.CondBranches++
		pred := e.gshare.Predict(s.PC)
		e.gshare.Update(s.PC, actualTaken)
		if pred != actualTaken {
			e.stats.Mispredicts++
			if e.MispredictHook != nil {
				e.MispredictHook(s.PC, "cond")
			}
			e.stallUntil(resolveAt, BinMispred)
			return true
		}
		if actualTaken {
			// Correctly predicted taken: need the target from the BTB.
			if tgt, ok := e.btb.Lookup(s.PC); !ok || tgt != s.NextPC {
				e.stats.BTBMisses++
				if e.MispredictHook != nil {
					e.MispredictHook(s.PC, "btb")
				}
				e.btb.Update(s.PC, s.NextPC)
				e.stallUntil(resolveAt, BinMispred)
				return true
			}
			return true // group ends at a taken branch
		}
		return false
	case x86.OpJMP, x86.OpCALL:
		if in.Op == x86.OpCALL {
			e.ras.Push(s.PC + uint32(in.Len))
		}
		if in.Dst.Kind == x86.KindImm {
			return true // direct: target known at decode
		}
		// Indirect: BTB prediction.
		if tgt, ok := e.btb.Lookup(s.PC); !ok || tgt != s.NextPC {
			e.stats.BTBMisses++
			e.btb.Update(s.PC, s.NextPC)
			e.stallUntil(resolveAt, BinMispred)
		}
		return true
	case x86.OpRET:
		if e.ras.Pop() != s.NextPC {
			e.stats.Mispredicts++
			if e.MispredictHook != nil {
				e.MispredictHook(s.PC, "ret")
			}
			e.stallUntil(resolveAt, BinMispred)
		}
		return true
	}
	return false
}
