package pipeline

import "fmt"

// Fingerprint returns a canonical identity string for the configuration:
// two configs with equal fingerprints drive bit-identical simulations
// over the same instruction stream. The experiment driver keys its run
// memoization on it (together with the mode and the workload), which is
// what lets fig6/fig7/fig8/table3/fig9 share their common RP/RPO runs.
//
// Config must stay a plain value struct (bools, integers, nested value
// structs): a pointer, func, map or slice field would make the %#v
// rendering non-canonical. TestFingerprintValueStruct enforces this.
func (c *Config) Fingerprint() string {
	return fmt.Sprintf("%#v", *c)
}
