package pipeline

import (
	"testing"

	"repro/internal/translate"
	"repro/internal/x86"
)

// sliceStream serves a precomputed slot sequence.
type sliceStream struct {
	slots []Slot
	pos   int
}

func (s *sliceStream) Next() (Slot, bool) {
	if s.pos >= len(s.slots) {
		return Slot{}, false
	}
	sl := s.slots[s.pos]
	s.pos++
	return sl, true
}

// slotFor builds a consistent Slot for an instruction at pc with the
// given dynamic successor.
func slotFor(t *testing.T, in x86.Inst, pc, next uint32, addrs ...uint32) Slot {
	t.Helper()
	enc, err := x86.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Len = len(enc)
	us, err := translate.UOps(in, pc)
	if err != nil {
		t.Fatal(err)
	}
	if next == 0 {
		next = pc + uint32(in.Len)
	}
	return Slot{PC: pc, Inst: in, UOps: us, NextPC: next, MemAddrs: addrs}
}

// loopStream builds a simple counted loop: eight ADDs, a CMP, and a
// backward JNE taken (iters-1) times. flipEvery > 0 makes the branch take
// the opposite (fall-through) direction every flipEvery-th iteration, so
// frames covering it abort.
func loopStream(t *testing.T, iters, flipEvery int) *sliceStream {
	t.Helper()
	adds := []x86.Inst{}
	regs := []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX, x86.ESI, x86.EDI, x86.EAX, x86.ECX}
	for _, r := range regs {
		adds = append(adds, x86.Inst{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(r), Src: x86.ImmOp(1)})
	}
	cmp := x86.Inst{Op: x86.OpCMP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(0)}
	// Layout.
	base := uint32(0x1000)
	pcs := make([]uint32, 0, len(adds)+2)
	pc := base
	for i := range adds {
		enc, _ := x86.Encode(adds[i])
		pcs = append(pcs, pc)
		pc += uint32(len(enc))
	}
	encCmp, _ := x86.Encode(cmp)
	cmpPC := pc
	pc += uint32(len(encCmp))
	brPC := pc
	br := x86.Inst{Op: x86.OpJCC, Cond: x86.CondNE, Dst: x86.ImmOp(int32(base) - int32(brPC) - 2)}
	encBr, _ := x86.Encode(br)
	if len(encBr) != 2 {
		t.Fatalf("branch encoding length %d", len(encBr))
	}
	fallPC := brPC + 2

	s := &sliceStream{}
	for it := 0; it < iters; it++ {
		for i, in := range adds {
			s.slots = append(s.slots, slotFor(t, in, pcs[i], 0))
		}
		s.slots = append(s.slots, slotFor(t, cmp, cmpPC, 0))
		taken := it != iters-1
		if flipEvery > 0 && it%flipEvery == flipEvery-1 {
			taken = false
		}
		next := base
		if !taken {
			next = fallPC
		}
		s.slots = append(s.slots, slotFor(t, br, brPC, next))
		if !taken && it != iters-1 {
			// Fall-through block jumps back to the loop head.
			jmp := x86.Inst{Op: x86.OpJMP, Cond: x86.CondNone, Dst: x86.ImmOp(int32(base) - int32(fallPC) - 5)}
			s.slots = append(s.slots, slotFor(t, jmp, fallPC, base))
		}
	}
	return s
}

func TestICachePathRetiresAll(t *testing.T) {
	src := loopStream(t, 50, 0)
	total := uint64(len(src.slots))
	eng := New(DefaultConfig(ModeICache), ModeICache, src)
	got := eng.Run(1 << 20)
	if got != total {
		t.Fatalf("retired %d of %d", got, total)
	}
	s := eng.Stats()
	var binned uint64
	for b := Bin(0); b < NumBins; b++ {
		binned += s.Bins[b]
	}
	if binned != s.Cycles {
		t.Errorf("bins %d != cycles %d", binned, s.Cycles)
	}
	if s.Bins[BinFrame] != 0 || s.FrameFetches != 0 {
		t.Error("IC mode fetched frames")
	}
	if s.UOpsRetired != s.UOpsBaseline {
		t.Error("IC mode shows micro-op reduction")
	}
}

func TestFrameFormationAndCommit(t *testing.T) {
	src := loopStream(t, 400, 0)
	eng := New(DefaultConfig(ModeRePLay), ModeRePLay, src)
	eng.Run(1 << 20)
	s := eng.Stats()
	if s.FramesConstructed == 0 {
		t.Fatal("no frames constructed")
	}
	if s.FrameCommits == 0 {
		t.Fatal("no frames committed")
	}
	if s.FrameCoverage() < 0.5 {
		t.Errorf("coverage %.2f too low for a perfectly biased loop", s.FrameCoverage())
	}
	// The loop's final-iteration exit may fire one assert; anything more
	// would indicate spurious aborts on a perfectly biased loop.
	if s.FrameAborts > 1 {
		t.Errorf("aborts on a stable loop: %d", s.FrameAborts)
	}
}

func TestAssertAbortAndRecovery(t *testing.T) {
	src := loopStream(t, 600, 50)
	total := uint64(len(src.slots))
	eng := New(DefaultConfig(ModeRePLay), ModeRePLay, src)
	got := eng.Run(1 << 20)
	if got != total {
		t.Fatalf("retired %d of %d — aborted instructions must re-execute exactly once", got, total)
	}
	s := eng.Stats()
	if s.FrameAborts == 0 {
		t.Error("no aborts despite periodic contrary branch")
	}
	if s.Bins[BinAssert] == 0 {
		t.Error("no assert cycles charged")
	}
}

func TestOptimizerReducesUOps(t *testing.T) {
	// The loop's ADDs to the same register chain; reassociation collapses
	// them inside frames, so RPO must retire fewer micro-ops.
	src := loopStream(t, 400, 0)
	eng := New(DefaultConfig(ModeRePLayOpt), ModeRePLayOpt, src)
	eng.Run(1 << 20)
	s := eng.Stats()
	if s.UOpReduction() <= 0 {
		t.Errorf("no reduction: %.3f", s.UOpReduction())
	}
	if s.FramesOptimized == 0 {
		t.Error("no frames optimized")
	}
}

func TestOptimizerLatencyDelaysFrames(t *testing.T) {
	mk := func(cyclesPerUOp int) Stats {
		src := loopStream(t, 400, 0)
		cfg := DefaultConfig(ModeRePLayOpt)
		cfg.OptCyclesPerUOp = cyclesPerUOp
		eng := New(cfg, ModeRePLayOpt, src)
		eng.Run(1 << 20)
		return eng.Stats()
	}
	fast := mk(1)
	slow := mk(2000)
	if slow.CoveredBaseline >= fast.CoveredBaseline {
		t.Errorf("slow optimizer should reduce frame coverage: fast=%d slow=%d",
			fast.CoveredBaseline, slow.CoveredBaseline)
	}
}

func TestWaitCyclesOnSwitch(t *testing.T) {
	// Periodic contrary branches force frame<->icache alternation.
	src := loopStream(t, 600, 10)
	eng := New(DefaultConfig(ModeRePLay), ModeRePLay, src)
	eng.Run(1 << 20)
	s := eng.Stats()
	if s.FrameCommits > 0 && s.Bins[BinWait] == 0 {
		t.Error("no wait cycles despite cache switching")
	}
}

func TestTraceCacheMode(t *testing.T) {
	src := loopStream(t, 400, 0)
	eng := New(DefaultConfig(ModeTraceCache), ModeTraceCache, src)
	eng.Run(1 << 20)
	s := eng.Stats()
	if s.Bins[BinFrame] == 0 {
		t.Error("trace cache never supplied fetch")
	}
	if s.UOpsRetired != s.UOpsBaseline {
		t.Error("TC mode shows micro-op reduction")
	}
}

func TestDecodeTemplate(t *testing.T) {
	// A stream of multi-uop instructions (PUSH = 2 uops) is limited to one
	// instruction per decode cycle by the 4-1-1-1 template; single-uop ADDs
	// fetch four per cycle. Compare fetch cycle counts.
	mk := func(multi bool) Stats {
		s := &sliceStream{}
		pc := uint32(0x1000)
		for i := 0; i < 400; i++ {
			var in x86.Inst
			if multi {
				in = x86.Inst{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX)}
			} else {
				in = x86.Inst{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)}
			}
			enc, _ := x86.Encode(in)
			sl := slotFor(t, in, pc, 0)
			if multi {
				sl.MemAddrs = []uint32{0x9000_0000 - uint32(4*i)}
			}
			s.slots = append(s.slots, sl)
			pc += uint32(len(enc))
		}
		eng := New(DefaultConfig(ModeICache), ModeICache, s)
		eng.Run(1 << 20)
		return eng.Stats()
	}
	single := mk(false)
	multi := mk(true)
	if multi.Bins[BinICache] < 3*single.Bins[BinICache] {
		t.Errorf("decode template not limiting: single=%d multi=%d fetch cycles",
			single.Bins[BinICache], multi.Bins[BinICache])
	}
}

func TestStatsReset(t *testing.T) {
	src := loopStream(t, 200, 0)
	eng := New(DefaultConfig(ModeICache), ModeICache, src)
	eng.Run(500)
	eng.ResetStats()
	eng.Run(500)
	s := eng.Stats()
	if s.X86Retired != 500 {
		t.Errorf("post-reset retired = %d", s.X86Retired)
	}
	var binned uint64
	for b := Bin(0); b < NumBins; b++ {
		binned += s.Bins[b]
	}
	if binned != s.Cycles {
		t.Errorf("post-reset bins %d != cycles %d", binned, s.Cycles)
	}
}
