package pipeline

import (
	"repro/internal/frame"
	"repro/internal/opt"
	"repro/internal/uop"
)

// depositFrame receives completed frames from the constructor. In RPO
// mode the frame passes through the optimization engine, which is
// pipelined (OptPipeDepth concurrent frames) with a latency of
// OptCyclesPerUOp per micro-op; frames arriving while every pipeline
// slot is busy are dropped, as in the paper's design discussion.
func (e *Engine) depositFrame(f *frame.Frame) {
	e.stats.FramesConstructed++
	if e.reuse != nil {
		e.reuse.ReuseFrameBuilt()
	}
	if e.DepositHook != nil {
		e.DepositHook(f)
	}
	// Skip when a comparable frame is already cached or in flight; a
	// replacement must grow the frame substantially (50%) to be worth
	// another pass through the optimization engine. Deposit transferred
	// ownership, so dropped frames are recycled (unless a DepositHook
	// may have retained them).
	if ex, ok := e.frames.Lookup(f.StartPC); ok && f.NumX86 < ex.Source.NumX86+ex.Source.NumX86/2 {
		if e.DepositHook == nil {
			frame.PutFrame(f)
		}
		return
	}
	for _, p := range e.optPending {
		if p.of.StartPC == f.StartPC && f.NumX86 < p.of.Source.NumX86+p.of.Source.NumX86/2 {
			if e.DepositHook == nil {
				frame.PutFrame(f)
			}
			return
		}
	}

	// Abort feedback: frames that fired assertions are rebuilt smaller
	// (fast shrink on abort, slow regrowth on commits).
	if cap, ok := e.growCap[f.StartPC]; ok && len(f.UOps) > cap {
		f = f.Truncate(cap)
		if f == nil || len(f.UOps) < e.cfg.FrameCfg.MinUOps {
			return
		}
	}

	if e.mode == ModeRePLay {
		// Basic rePLay: frames go straight to the frame cache.
		of := opt.Remap(f, e.cfg.OptScope)
		e.frames.Insert(f.StartPC, of.NumValid(), of)
		return
	}

	// Buffer the frame for the optimization pipeline; drop when the
	// buffer is full (the paper's policy for a busy optimizer).
	if len(e.optQueue) >= optQueueDepth {
		e.stats.FramesDropped++
		if e.DepositHook == nil {
			frame.PutFrame(f)
		}
		return
	}
	for _, q := range e.optQueue {
		if q.StartPC == f.StartPC && f.NumX86 < q.NumX86+q.NumX86/2 {
			if e.DepositHook == nil {
				frame.PutFrame(f)
			}
			return
		}
	}
	e.optQueue = append(e.optQueue, f)
	e.startOptimizations()
}

// optQueueDepth is the optimizer's input buffer (frames awaiting a
// pipeline slot).
const optQueueDepth = 8

// persistentAborts is the consecutive-abort threshold that invalidates a
// cached frame (fewer are treated as transient contrary outcomes).
const persistentAborts = 4

// startOptimizations assigns buffered frames to free optimizer slots.
func (e *Engine) startOptimizations() {
	for len(e.optQueue) > 0 {
		slot := 0
		for i := 1; i < len(e.optSlots); i++ {
			if e.optSlots[i] < e.optSlots[slot] {
				slot = i
			}
		}
		if e.optSlots[slot] > e.cycle {
			return
		}
		f := e.optQueue[0]
		e.optQueue = e.optQueue[1:]
		of := opt.Remap(f, e.cfg.OptScope)
		st := opt.OptimizeTraced(of, e.cfg.OptOptions, e.optRecorder())
		if e.cfg.OptReschedule {
			opt.Schedule(of)
		}
		e.accumulateOpt(st)
		e.stats.FramesOptimized++
		if e.reuse != nil {
			e.reuse.ReuseOptRemoved(st.UOpsIn - st.UOpsOut)
		}
		dwell := uint64(e.cfg.OptCyclesPerUOp * len(f.UOps))
		done := e.cycle + dwell
		e.optSlots[slot] = done
		e.optPending = append(e.optPending, pendingFrame{readyAt: done, of: of})
		e.tel.FrameOptimized(e.telRun, e.cycle, f.ID, f.StartPC, st.UOpsIn, st.UOpsOut, dwell)
	}
}

func (e *Engine) accumulateOpt(st opt.Stats) {
	o := &e.stats.Opt
	o.UOpsIn += st.UOpsIn
	o.UOpsOut += st.UOpsOut
	o.LoadsIn += st.LoadsIn
	o.LoadsOut += st.LoadsOut
	o.RemovedNOP += st.RemovedNOP
	o.FoldedCP += st.FoldedCP
	o.Reassoc += st.Reassoc
	o.CSEVals += st.CSEVals
	o.CSELoads += st.CSELoads
	o.SFLoads += st.SFLoads
	o.FusedAsserts += st.FusedAsserts
	o.RemovedDCE += st.RemovedDCE
	o.UnsafeStores += st.UnsafeStores
}

// drainOptimizer starts buffered work on free slots and inserts frames
// whose optimization latency has elapsed.
func (e *Engine) drainOptimizer() {
	if e.optSlots != nil {
		e.startOptimizations()
	}
	if len(e.optPending) == 0 {
		return
	}
	kept := e.optPending[:0]
	for _, p := range e.optPending {
		if p.readyAt <= e.cycle {
			e.frames.Insert(p.of.StartPC, p.of.NumValid(), p.of)
		} else {
			kept = append(kept, p)
		}
	}
	e.optPending = kept
}

// fetchFrame fetches one frame from the frame cache: Width micro-ops per
// cycle with explicit (renamed) dataflow, assertion detection against the
// correct path, unsafe-store conflict checking, and the paper's
// pessimistic recovery (initiated only once every frame micro-op is ready
// to retire).
func (e *Engine) fetchFrame(of *opt.OptFrame) {
	src := of.Source
	// Guard the fetched frame against mid-fetch recycling: the abort
	// path's Invalidate and the commit path's RetireFrame (which can
	// re-deposit and displace this very cache entry) both reach the
	// cache's Recycle hook while this fetch still reads of and src.
	e.activeSrc = src
	defer func() { e.activeSrc = nil }()

	// Consume correct-path slots along the frame's construction path.
	// The slot buffer is fetch-local scratch: pushback copies out of it,
	// and nothing else retains it past the fetch.
	consumed := e.scratchSlots[:0]
	defer func() { e.scratchSlots = consumed[:0] }()
	diverged := false
	for k := 0; k < src.NumX86; k++ {
		s, ok := e.peek()
		if !ok || s.PC != src.PCs[k] {
			break
		}
		e.next()
		consumed = append(consumed, s)
		if s.NextPC != src.NextPCs[k] {
			diverged = true
			break
		}
	}
	if !diverged && len(consumed) < src.NumX86 {
		// Stream ended (or path mismatch) mid-frame: re-execute decoded.
		e.pushback(consumed)
		e.fetchICache()
		return
	}

	e.profAt(src.StartPC) // cache-switch turnaround belongs to the frame head
	e.switchTo(srcFC)
	e.stats.FrameFetches++
	if e.reuse != nil {
		e.reuse.ReuseFrameHit()
	}
	fetchStart := e.cycle
	savedArch := e.archReady

	// Dispatch the frame body, Width micro-ops per fetch cycle. The
	// value scoreboard is engine scratch; Iterate skips invalid ops, so
	// it is cleared to match a freshly allocated buffer.
	n := len(of.Ops)
	if cap(e.scratchVals) < n {
		e.scratchVals = make([]uint64, n)
	}
	values := e.scratchVals[:n]
	clear(values)
	unsafeConflict := false
	var maxDone uint64
	fetched := 0
	fetchAt := e.cycle

	addrOf := func(o *opt.FrameOp) (uint32, bool) {
		if o.MemSub < 0 {
			return 0, false
		}
		if int(o.InstIdx) < len(consumed) {
			s := &consumed[o.InstIdx]
			if int(o.MemSub) < len(s.MemAddrs) {
				return s.MemAddrs[o.MemSub], true
			}
		}
		// Beyond the divergence point: approximate with the profile address.
		return o.ProfAddr, o.ProfAddr != 0
	}

	of.Iterate(func(i int32, o *opt.FrameOp) {
		if fetched%e.cfg.Width == 0 {
			// Per-PC attribution inside the frame: the group's cycles
			// belong to the instruction leading it.
			if e.cprof != nil && int(o.InstIdx) < len(src.PCs) {
				e.profPC = src.PCs[o.InstIdx]
			}
			e.windowStall()
			fetchAt = e.cycle
			e.tick(BinFrame)
		}
		fetched++

		ready := e.refReady(o.SrcA, values)
		if t := e.refReady(o.SrcB, values); t > ready {
			ready = t
		}
		if t := e.refReady(o.SrcF, values); t > ready {
			ready = t
		}
		addr, hasAddr := addrOf(o)
		done := e.dispatch(o.Op, ready, fetchAt, addr, hasAddr)
		values[i] = done
		if done > maxDone {
			maxDone = done
		}
	})

	// Unsafe-store conflict check against the speculated-across loads'
	// runtime addresses.
	guardAddr := func(instIdx int32, memSub int8, prof uint32) (uint32, bool) {
		if memSub < 0 {
			return 0, false
		}
		if int(instIdx) < len(consumed) {
			sl := &consumed[instIdx]
			if int(memSub) < len(sl.MemAddrs) {
				return sl.MemAddrs[memSub], true
			}
		}
		return prof, prof != 0
	}
	for _, g := range of.UnsafeGuards {
		st := &of.Ops[g.Store]
		if !st.Valid {
			continue
		}
		sa, ok := addrOf(st)
		if !ok {
			continue
		}
		ga, ok := guardAddr(g.InstIdx, g.MemSub, g.ProfAddr)
		if !ok {
			continue
		}
		d := int64(sa) - int64(ga)
		if d < 0 {
			d = -d
		}
		if d < 4 {
			unsafeConflict = true
		}
	}

	if diverged || unsafeConflict {
		// Assertion recovery: pessimistic — wait for the whole frame to be
		// ready to retire, then roll back and re-execute the original
		// instructions from the ICache.
		e.stats.FrameAborts++
		if unsafeConflict && !diverged {
			e.stats.UnsafeAborts++
		}
		if e.AbortHook != nil {
			pc := uint32(0)
			if len(consumed) > 0 {
				pc = consumed[len(consumed)-1].PC
			}
			e.AbortHook(src.StartPC, pc, unsafeConflict && !diverged)
		}
		e.tel.AssertFired(e.telRun, e.cycle, src.ID, src.StartPC, unsafeConflict && !diverged)
		e.profAt(src.StartPC) // recovery wait belongs to the aborting frame
		e.stallUntil(maxDone, BinAssert)
		// A transient assert (a rare contrary outcome) keeps the frame — it
		// will run cleanly again next fetch. Only a persistent run of
		// aborts (a real behaviour change) invalidates it, capping rebuilt
		// frames at the size that executed cleanly.
		e.abortRuns[src.StartPC]++
		if e.abortRuns[src.StartPC] >= persistentAborts {
			delete(e.abortRuns, src.StartPC)
			e.frames.Invalidate(src.StartPC)
			cap := 0
			if len(consumed) > 1 {
				for i := range src.InstIdx {
					if int(src.InstIdx[i]) < len(consumed)-1 {
						cap++
					}
				}
			}
			if min := 2 * e.cfg.FrameCfg.MinUOps; cap < min {
				cap = min
			}
			if old, ok := e.growCap[src.StartPC]; ok && old < cap {
				cap = old
			}
			e.growCap[src.StartPC] = cap
		}
		e.archReady = savedArch
		e.pushback(consumed)
		e.recoverSlots = len(consumed)
		e.tel.FrameFetch(e.telRun, fetchStart, e.cycle, src.ID, src.StartPC, fetched, false)
		return
	}

	// Commit.
	e.stats.FrameCommits++
	e.tel.FrameFetch(e.telRun, fetchStart, e.cycle, src.ID, src.StartPC, fetched, true)
	delete(e.abortRuns, src.StartPC)
	if cap, ok := e.growCap[src.StartPC]; ok {
		e.growCap[src.StartPC] = cap + 1
	}
	validLoads := of.NumValidLoads()
	validOps := of.NumValid()
	for k := range consumed {
		s := &consumed[k]
		e.stats.X86Retired++
		base, loads := 0, 0
		base = len(s.UOps)
		for _, u := range s.UOps {
			if u.Op == uop.LOAD {
				loads++
			}
		}
		e.stats.UOpsBaseline += uint64(base)
		e.stats.LoadsBaseline += uint64(loads)
		e.stats.CoveredBaseline += uint64(base)
		if e.reuse != nil {
			e.reuse.ReuseSlot(*s, true, 0)
		}
		e.trainPredictors(s)
	}
	// The region is covered: extend the pending frame with this frame's
	// converted content (frame growth toward the size limit), refreshing
	// the aliasing profile with this execution's addresses. The deposit
	// filter (substantial-growth rule) bounds re-optimization churn.
	if e.cons != nil {
		// Scratch likewise; RetireFrame copies the addresses out.
		if cap(e.scratchAddrs) < len(of.Ops) {
			e.scratchAddrs = make([]uint32, len(of.Ops))
		}
		fresh := e.scratchAddrs[:len(of.Ops)]
		clear(fresh)
		for i := range of.Ops {
			o := &of.Ops[i]
			if o.MemSub >= 0 {
				if a, ok := addrOf(o); ok {
					fresh[i] = a
				} else {
					fresh[i] = o.ProfAddr
				}
			}
		}
		e.cons.RetireFrame(src, fresh)
	}
	if e.fill != nil {
		e.fill.insts = e.fill.insts[:0]
		e.fill.nuops, e.fill.branches = 0, 0
	}
	e.stats.UOpsRetired += uint64(validOps)
	e.stats.LoadsRetired += uint64(validLoads)
	if e.reuse != nil {
		e.reuse.ReuseFrameRetired(validOps)
	}

	// Live-out scoreboard updates.
	for r := 0; r < 8; r++ {
		if ref := of.Final[r]; ref.Kind == opt.RefOp && of.Ops[ref.Idx].Valid {
			e.archReady[r] = values[ref.Idx]
		}
	}
	if ref := of.FinalFlags; ref.Kind == opt.RefOp && of.Ops[ref.Idx].Valid {
		e.archReady[uop.FLAGS] = values[ref.Idx]
	}
}

// refReady resolves a renamed source's availability time.
func (e *Engine) refReady(r opt.Ref, values []uint64) uint64 {
	switch r.Kind {
	case opt.RefLiveIn:
		return e.archReady[r.Arch]
	case opt.RefOp:
		return values[r.Idx]
	}
	return 0
}
