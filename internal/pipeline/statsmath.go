package pipeline

import "reflect"

// Add accumulates every counter of o into s: the cycle bins, the plain
// integer counters, and the nested optimizer stats. Coverage is
// structural (reflection over the struct), so counters added to Stats
// later are folded in automatically instead of silently dropped — the
// failure mode that let warmup-phase mispredicts and optimizer totals
// leak past ResetStats.
func (s *Stats) Add(o *Stats) {
	combineStats(reflect.ValueOf(s).Elem(), reflect.ValueOf(o).Elem(), 1)
}

// Sub subtracts every counter of o from s. Engine.Stats uses it to
// remove the warmup baseline uniformly.
func (s *Stats) Sub(o *Stats) {
	combineStats(reflect.ValueOf(s).Elem(), reflect.ValueOf(o).Elem(), -1)
}

func combineStats(dst, src reflect.Value, sign int64) {
	switch dst.Kind() {
	case reflect.Struct:
		for i := 0; i < dst.NumField(); i++ {
			combineStats(dst.Field(i), src.Field(i), sign)
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < dst.Len(); i++ {
			combineStats(dst.Index(i), src.Index(i), sign)
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		// uint64(sign) wraps to 2^64-1 for -1; modular arithmetic makes
		// dst + (2^64-1)*src == dst - src.
		dst.SetUint(dst.Uint() + uint64(sign)*src.Uint())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		dst.SetInt(dst.Int() + sign*src.Int())
	case reflect.Float32, reflect.Float64:
		dst.SetFloat(dst.Float() + float64(sign)*src.Float())
	default:
		panic("pipeline: Stats field of non-counter kind " + dst.Kind().String())
	}
}
