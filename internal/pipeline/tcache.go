package pipeline

import (
	"repro/internal/uop"
	"repro/internal/x86"
)

// traceInst is one instruction of a trace-cache entry.
type traceInst struct {
	PC     uint32
	NextPC uint32 // path successor at fill time
	UOps   []uop.UOp
}

// traceEntry is a trace-cache line: a decoded instruction sequence with
// up to TraceMaxBranches conditional branches (the paper's TC
// configuration). Unlike frames, traces are not atomic: embedded branches
// remain real branches, predicted by gshare, and fetch simply stops where
// the live path leaves the trace.
type traceEntry struct {
	StartPC uint32
	Insts   []traceInst
	NumUOps int
}

// traceFill is the TC fill unit, continuously building traces from the
// retired stream.
type traceFill struct {
	insts    []traceInst
	nuops    int
	branches int
}

// fillTrace offers one retired instruction to the fill unit.
func (e *Engine) fillTrace(s *Slot) {
	f := e.fill
	f.insts = append(f.insts, traceInst{PC: s.PC, NextPC: s.NextPC, UOps: s.UOps})
	f.nuops += len(s.UOps)
	terminate := false
	switch s.Inst.Op {
	case x86.OpJCC:
		f.branches++
		if f.branches >= e.cfg.TraceMaxBranches {
			terminate = true
		}
	case x86.OpRET:
		terminate = true
	case x86.OpJMP, x86.OpCALL:
		if s.Inst.Dst.Kind != x86.KindImm {
			terminate = true
		}
	}
	if f.nuops >= e.cfg.TraceMaxUOps {
		terminate = true
	}
	if !terminate {
		return
	}
	start := f.insts[0].PC
	if !e.traces.Contains(start) && f.nuops >= 4 {
		entry := &traceEntry{StartPC: start, NumUOps: f.nuops}
		entry.Insts = append(entry.Insts, f.insts...)
		e.traces.Insert(start, f.nuops, entry)
	}
	f.insts = f.insts[:0]
	f.nuops = 0
	f.branches = 0
}

// fetchTraceEntry fetches instructions from a trace-cache line: Width
// micro-ops per cycle, decoded dataflow, stopping where the live path
// diverges from the filled path or at a misprediction.
func (e *Engine) fetchTraceEntry(tr *traceEntry) {
	e.profAt(tr.StartPC) // turnaround + first group belong to the line head
	e.switchTo(srcFC)
	if e.tel.Enabled() {
		start := e.cycle
		defer func() {
			e.tel.TraceFetch(e.telRun, start, e.cycle, tr.StartPC, tr.NumUOps)
		}()
	}
	e.windowStall()
	fetchAt := e.cycle
	e.tick(BinFrame)
	uopsLeft := e.cfg.Width

	for k := 0; k < len(tr.Insts); k++ {
		s, ok := e.peek()
		if !ok || s.PC != tr.Insts[k].PC {
			return
		}
		// New dispatch groups and mispredict-recovery stalls below are
		// attributed to the instruction that caused them.
		e.profAt(s.PC)
		if len(s.UOps) > uopsLeft {
			e.windowStall()
			fetchAt = e.cycle
			e.tick(BinFrame)
			uopsLeft = e.cfg.Width
		}
		e.next()
		uopsLeft -= len(s.UOps)

		mi := 0
		loads := 0
		var brDone uint64
		for _, u := range s.UOps {
			var addr uint32
			hasAddr := false
			if u.Op.IsMem() {
				if mi < len(s.MemAddrs) {
					addr = s.MemAddrs[mi]
					hasAddr = true
				}
				mi++
			}
			done := e.dispatchDecoded(u, fetchAt, addr, hasAddr)
			if u.Op.IsControl() {
				brDone = done
			}
			if u.Op == uop.LOAD {
				loads++
			}
		}
		e.retireSlot(&s, true, len(s.UOps), loads)
		if e.reuse != nil {
			e.reuse.ReuseSlot(s, true, len(s.UOps))
		}
		e.feedConstructor(&s)

		// Trace-internal control: unlike the decoded path, a correctly
		// predicted taken branch does not end fetch — the target's code is
		// inline in the trace. Fetch stops at mispredictions and where the
		// live path leaves the filled path.
		switch s.Inst.Op {
		case x86.OpJCC:
			e.stats.CondBranches++
			pred := e.gshare.Predict(s.PC)
			actual := s.Taken()
			e.gshare.Update(s.PC, actual)
			if pred != actual {
				e.stats.Mispredicts++
				e.stallUntil(brDone, BinMispred)
				return
			}
		case x86.OpCALL, x86.OpJMP, x86.OpRET:
			if s.Inst.Op == x86.OpCALL {
				e.ras.Push(s.PC + uint32(s.Inst.Len))
			}
			if s.Inst.Op == x86.OpRET {
				if e.ras.Pop() != s.NextPC {
					e.stats.Mispredicts++
					e.stallUntil(brDone, BinMispred)
					return
				}
			} else if s.Inst.Dst.Kind != x86.KindImm {
				if tgt, ok := e.btb.Lookup(s.PC); !ok || tgt != s.NextPC {
					e.stats.BTBMisses++
					e.btb.Update(s.PC, s.NextPC)
					e.stallUntil(brDone, BinMispred)
					return
				}
			}
		}
		// Fetch discontinuity: the live path left the filled path.
		if s.NextPC != tr.Insts[k].NextPC {
			return
		}
	}
}
