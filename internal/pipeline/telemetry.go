package pipeline

import (
	"time"

	"repro/internal/cache"
	"repro/internal/opt"
	"repro/internal/telemetry"
)

// SetTelemetry attaches a collector to the engine under the given run
// id (from Collector.NewRun). The collector deliberately lives on the
// Engine, not on Config: Config must remain a plain value struct — its
// %#v fingerprint is the memo key (see fingerprint.go) and a pointer
// field would poison it.
//
// Attaching wires the frame constructor, the frame/trace caches, and
// the dispatch path. Detach by passing nil.
func (e *Engine) SetTelemetry(tel *telemetry.Collector, run int) {
	e.tel = tel
	e.telRun = run
	if e.cons != nil {
		e.cons.Tel = tel
		e.cons.TelRun = run
		if tel != nil {
			e.cons.Now = func() uint64 { return e.cycle }
		} else {
			e.cons.Now = nil
		}
	}
	if tel != nil && e.telInsertAt == nil {
		e.telInsertAt = make(map[uint32]uint64)
	}
	wireCacheHooks(e, e.frames)
	wireCacheHooks(e, e.traces)
}

// ReuseProbe observes retirement-ordered slots and frame-lifecycle
// events for loop-structure reuse attribution (see internal/reuse).
// All methods are called on the engine goroutine; attribution is
// conservative — each retired instruction and each event is reported
// exactly once, so probe totals sum to the corresponding Stats
// counters over the same window.
type ReuseProbe interface {
	// ReuseSlot sees every retired x86 instruction in retirement order.
	// fromFrame marks slots covered by a committed frame or trace-cache
	// line; uopsExecuted is the post-optimization micro-op count retired
	// with the slot (0 on the frame path, whose optimized body arrives
	// in bulk via ReuseFrameRetired).
	ReuseSlot(s Slot, fromFrame bool, uopsExecuted int)
	// ReuseFrameBuilt fires once per frame the constructor deposits
	// (sums to Stats.FramesConstructed).
	ReuseFrameBuilt()
	// ReuseFrameHit fires once per frame-cache fetch (sums to
	// Stats.FrameFetches).
	ReuseFrameHit()
	// ReuseFrameRetired reports a committed frame's executed micro-ops
	// (with the decoded paths' uopsExecuted, sums to Stats.UOpsRetired).
	ReuseFrameRetired(uops int)
	// ReuseOptRemoved reports micro-ops an optimizer run removed (sums
	// to Stats.Opt.Removed()).
	ReuseOptRemoved(removed int)
	// ReuseEvict fires once per frame/trace-cache eviction.
	ReuseEvict()
}

// ReusePassProbe is an optional ReuseProbe extension: a probe that
// also wants the per-pass split of the removals ReuseOptRemoved
// reports. When the probe attached via SetReuse implements it, every
// changed optimizer pass invocation is forwarded from the same call
// site (and hence the same loop-stack context) ReuseOptRemoved fires
// in, so over the attached window the per-pass killed sums equal
// Stats.Opt.Removed() exactly — the same invariant opt.OptimizeTraced
// documents for PassRecorder.
type ReusePassProbe interface {
	ReuseProbe
	// ReusePass reports one optimizer pass invocation that changed
	// something: uops it invalidated and uops it rewrote in place.
	ReusePass(pass string, killed, rewritten int)
}

// SetReuse attaches a reuse-attribution probe. Like SetTelemetry it
// lives on the Engine, not Config, so the memo-key fingerprint stays a
// pure value; attach after warmup so the probe covers exactly the
// measured window ResetStats draws. Detach by passing nil.
//
// The ReusePassProbe type assertion is cached here so the optimizer
// call site pays a field check, not an interface assertion, per frame.
func (e *Engine) SetReuse(p ReuseProbe) {
	e.reuse = p
	e.reusePass, _ = p.(ReusePassProbe)
	wireCacheHooks(e, e.frames)
	wireCacheHooks(e, e.traces)
}

// CycleProbe observes every fetch-stage cycle the engine charges, with
// the guest PC held responsible and the bin the cycle landed in. The
// engine's only two cycle-charging paths (tick and stallUntil) call it,
// so over any attached window the probe's per-PC × per-bin totals equal
// Stats.Cycles and Stats.Bins exactly — conservation by construction,
// not by bookkeeping at every charge site. Called on the engine
// goroutine.
type CycleProbe interface {
	// CycleCharge attributes n fetch cycles at guest PC pc to bin.
	CycleCharge(pc uint32, bin Bin, n uint64)
}

// SetCycleProf attaches a guest-cycle profiler probe. Like SetTelemetry
// and SetReuse it lives on the Engine, not Config, so the memo-key
// fingerprint stays a pure value; attach after warmup so the profile
// covers exactly the measured window ResetStats draws. Detach by
// passing nil — when detached, the charge paths pay one nil check.
func (e *Engine) SetCycleProf(p CycleProbe) {
	e.cprof = p
}

// wireCacheHooks installs (or removes) the UOpCache observation hooks
// for whichever of telemetry and the reuse probe is attached. A
// package-level generic function because methods cannot have type
// parameters.
func wireCacheHooks[T any](e *Engine, c *cache.UOpCache[T]) {
	if c == nil {
		return
	}
	if e.tel == nil && e.reuse == nil {
		c.OnInsert, c.OnEvict, c.OnHit = nil, nil, nil
		return
	}
	c.OnInsert = func(pc uint32, size int) {
		if e.tel == nil || !e.tel.Enabled() {
			return
		}
		e.telInsertAt[pc] = e.cycle
		e.tel.CacheInsert(e.telRun, e.cycle, pc, size)
	}
	c.OnEvict = func(pc uint32, size int) {
		if e.reuse != nil {
			e.reuse.ReuseEvict()
		}
		if e.tel == nil || !e.tel.Enabled() {
			return
		}
		var residency uint64
		if t0, ok := e.telInsertAt[pc]; ok {
			residency = e.cycle - t0
			delete(e.telInsertAt, pc)
		}
		e.tel.CacheEvict(e.telRun, e.cycle, pc, size, residency)
	}
	c.OnHit = func(pc uint32) {
		if e.tel != nil {
			e.tel.CacheHit(e.telRun, e.cycle, pc)
		}
	}
}

// SetPassRecorder attaches a wall-clock pass-timing recorder to the
// optimizer path (see opt.TimedPassRecorder). Like SetTelemetry it
// lives on the Engine, not Config, so the memo-key fingerprint stays a
// value. Detach by passing nil. Independent of telemetry attribution:
// the two recorders are fanned out by a dual recorder at the optimize
// call site.
func (e *Engine) SetPassRecorder(r opt.TimedPassRecorder) {
	e.passRec = r
}

// dualRecorder fans one OptimizeTraced recorder out to two consumers:
// changed-only attribution (telemetry) and every-invocation wall-clock
// timing (span tracing). Either side may be nil.
type dualRecorder struct {
	attr  opt.PassRecorder
	timed opt.TimedPassRecorder
}

func (d dualRecorder) RecordPass(frameID uint64, pass string, killed, rewritten int) {
	if d.attr != nil {
		d.attr.RecordPass(frameID, pass, killed, rewritten)
	}
}

func (d dualRecorder) RecordPassTimed(frameID uint64, pass string, killed, rewritten int, dur time.Duration) {
	if d.timed != nil {
		d.timed.RecordPassTimed(frameID, pass, killed, rewritten, dur)
	}
}

// passProbeRecorder forwards changed-only pass invocations to a reuse
// pass probe. It deliberately does not implement TimedPassRecorder, so
// a probe-only recorder never makes the optimizer pay the two time.Now
// calls per pass that the timed extension costs.
type passProbeRecorder struct{ probe ReusePassProbe }

func (r passProbeRecorder) RecordPass(frameID uint64, pass string, killed, rewritten int) {
	r.probe.ReusePass(pass, killed, rewritten)
}

// fanRecorder duplicates changed-only pass invocations to two untimed
// consumers (telemetry attribution and a reuse pass probe).
type fanRecorder struct{ a, b opt.PassRecorder }

func (f fanRecorder) RecordPass(frameID uint64, pass string, killed, rewritten int) {
	f.a.RecordPass(frameID, pass, killed, rewritten)
	f.b.RecordPass(frameID, pass, killed, rewritten)
}

// optRecorder picks the cheapest recorder covering the attached
// consumers: nil when nobody listens, the telemetry collector alone
// when only attribution is on (no time.Now cost), a pass-probe
// forwarder when a ReusePassProbe is attached, and a dual recorder
// when pass timing is attached on top of either.
func (e *Engine) optRecorder() opt.PassRecorder {
	var attr opt.PassRecorder
	switch {
	case e.tel.HasAttribution() && e.reusePass != nil:
		attr = fanRecorder{a: e.tel, b: passProbeRecorder{probe: e.reusePass}}
	case e.tel.HasAttribution():
		attr = e.tel
	case e.reusePass != nil:
		attr = passProbeRecorder{probe: e.reusePass}
	}
	if e.passRec != nil {
		return dualRecorder{attr: attr, timed: e.passRec}
	}
	return attr
}

// CloseTelemetry flushes end-of-run state: frames still resident in
// the cache contribute their residency-so-far to the histogram (no
// eviction event is fabricated — the frames are still cached). Call
// once per run, after the last Run/RunContext.
func (e *Engine) CloseTelemetry() {
	if e.tel == nil {
		return
	}
	for _, t0 := range e.telInsertAt {
		e.tel.CacheResident(e.cycle - t0)
	}
	e.telInsertAt = make(map[uint32]uint64)
}
