package pipeline

import (
	"time"

	"repro/internal/cache"
	"repro/internal/opt"
	"repro/internal/telemetry"
)

// SetTelemetry attaches a collector to the engine under the given run
// id (from Collector.NewRun). The collector deliberately lives on the
// Engine, not on Config: Config must remain a plain value struct — its
// %#v fingerprint is the memo key (see fingerprint.go) and a pointer
// field would poison it.
//
// Attaching wires the frame constructor, the frame/trace caches, and
// the dispatch path. Detach by passing nil.
func (e *Engine) SetTelemetry(tel *telemetry.Collector, run int) {
	e.tel = tel
	e.telRun = run
	if e.cons != nil {
		e.cons.Tel = tel
		e.cons.TelRun = run
		if tel != nil {
			e.cons.Now = func() uint64 { return e.cycle }
		} else {
			e.cons.Now = nil
		}
	}
	if tel != nil && e.telInsertAt == nil {
		e.telInsertAt = make(map[uint32]uint64)
	}
	wireCacheTelemetry(e, e.frames)
	wireCacheTelemetry(e, e.traces)
}

// wireCacheTelemetry installs (or removes) the UOpCache observation
// hooks. A package-level generic function because methods cannot have
// type parameters.
func wireCacheTelemetry[T any](e *Engine, c *cache.UOpCache[T]) {
	if c == nil {
		return
	}
	if e.tel == nil {
		c.OnInsert, c.OnEvict, c.OnHit = nil, nil, nil
		return
	}
	c.OnInsert = func(pc uint32, size int) {
		if !e.tel.Enabled() {
			return
		}
		e.telInsertAt[pc] = e.cycle
		e.tel.CacheInsert(e.telRun, e.cycle, pc, size)
	}
	c.OnEvict = func(pc uint32, size int) {
		if !e.tel.Enabled() {
			return
		}
		var residency uint64
		if t0, ok := e.telInsertAt[pc]; ok {
			residency = e.cycle - t0
			delete(e.telInsertAt, pc)
		}
		e.tel.CacheEvict(e.telRun, e.cycle, pc, size, residency)
	}
	c.OnHit = func(pc uint32) {
		e.tel.CacheHit(e.telRun, e.cycle, pc)
	}
}

// SetPassRecorder attaches a wall-clock pass-timing recorder to the
// optimizer path (see opt.TimedPassRecorder). Like SetTelemetry it
// lives on the Engine, not Config, so the memo-key fingerprint stays a
// value. Detach by passing nil. Independent of telemetry attribution:
// the two recorders are fanned out by a dual recorder at the optimize
// call site.
func (e *Engine) SetPassRecorder(r opt.TimedPassRecorder) {
	e.passRec = r
}

// dualRecorder fans one OptimizeTraced recorder out to two consumers:
// changed-only attribution (telemetry) and every-invocation wall-clock
// timing (span tracing). Either side may be nil.
type dualRecorder struct {
	attr  opt.PassRecorder
	timed opt.TimedPassRecorder
}

func (d dualRecorder) RecordPass(frameID uint64, pass string, killed, rewritten int) {
	if d.attr != nil {
		d.attr.RecordPass(frameID, pass, killed, rewritten)
	}
}

func (d dualRecorder) RecordPassTimed(frameID uint64, pass string, killed, rewritten int, dur time.Duration) {
	if d.timed != nil {
		d.timed.RecordPassTimed(frameID, pass, killed, rewritten, dur)
	}
}

// optRecorder picks the cheapest recorder covering the attached
// consumers: nil when nobody listens, the telemetry collector alone
// when only attribution is on (no time.Now cost), and a dual recorder
// when pass timing is attached.
func (e *Engine) optRecorder() opt.PassRecorder {
	attr := e.tel.HasAttribution()
	switch {
	case e.passRec != nil && attr:
		return dualRecorder{attr: e.tel, timed: e.passRec}
	case e.passRec != nil:
		return dualRecorder{timed: e.passRec}
	case attr:
		return e.tel
	}
	return nil
}

// CloseTelemetry flushes end-of-run state: frames still resident in
// the cache contribute their residency-so-far to the histogram (no
// eviction event is fabricated — the frames are still cached). Call
// once per run, after the last Run/RunContext.
func (e *Engine) CloseTelemetry() {
	if e.tel == nil {
		return
	}
	for _, t0 := range e.telInsertAt {
		e.tel.CacheResident(e.cycle - t0)
	}
	e.telInsertAt = make(map[uint32]uint64)
}
