package pipeline

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/x86"
)

// walkCounters visits every numeric leaf of a Stats-shaped value.
func walkCounters(v reflect.Value, path string, fn func(path string, leaf reflect.Value)) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			walkCounters(v.Field(i), path+"."+v.Type().Field(i).Name, fn)
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			walkCounters(v.Index(i), path, fn)
		}
	default:
		fn(path, v)
	}
}

// TestResetStatsZeroesEveryCounter is the warmup-leak regression test:
// after a warmup run and ResetStats, with zero further instructions
// retired, every Stats counter — including Mispredicts, FrameFetches,
// FrameAborts and the Opt.* totals — must read zero. The pre-fix code
// baselined only cycles, retirement counts and fetch bins, so warmup
// mispredicts and optimizer activity leaked into the measured window.
func TestResetStatsZeroesEveryCounter(t *testing.T) {
	for _, mode := range []Mode{ModeICache, ModeTraceCache, ModeRePLay, ModeRePLayOpt} {
		// flipEvery=50 forces mispredicts and, in rePLay modes, frame
		// aborts during warmup, so the leak-prone counters are nonzero.
		src := loopStream(t, 2000, 50)
		eng := New(DefaultConfig(mode), mode, src)
		eng.Run(16_000)
		warm := eng.Stats()
		if warm.Mispredicts == 0 {
			t.Fatalf("%v: warmup produced no mispredicts; test stream too tame", mode)
		}
		if mode == ModeRePLay || mode == ModeRePLayOpt {
			if warm.FrameFetches == 0 || warm.FrameAborts == 0 {
				t.Fatalf("%v: warmup produced no frame activity (fetches=%d aborts=%d)",
					mode, warm.FrameFetches, warm.FrameAborts)
			}
		}
		if mode == ModeRePLayOpt && warm.Opt.UOpsIn == 0 {
			t.Fatalf("%v: warmup ran no optimizations", mode)
		}

		eng.ResetStats()
		s := eng.Stats()
		walkCounters(reflect.ValueOf(s), "Stats", func(path string, leaf reflect.Value) {
			var nonzero bool
			switch leaf.Kind() {
			case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
				nonzero = leaf.Uint() != 0
			case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
				nonzero = leaf.Int() != 0
			case reflect.Float32, reflect.Float64:
				nonzero = leaf.Float() != 0
			default:
				t.Errorf("%v: unexpected Stats leaf kind %v at %s", mode, leaf.Kind(), path)
			}
			if nonzero {
				t.Errorf("%v: counter %s = %v after ResetStats, want 0", mode, path, leaf)
			}
		})
	}
}

// TestStatsAddSubRoundTrip: Sub is the exact inverse of Add over every
// counter field, so baselining cannot drift.
func TestStatsAddSubRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fill := func(s *Stats) {
		walkCounters(reflect.ValueOf(s).Elem(), "", func(_ string, leaf reflect.Value) {
			switch leaf.Kind() {
			case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
				leaf.SetUint(uint64(rng.Intn(1 << 30)))
			case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
				leaf.SetInt(int64(rng.Intn(1 << 30)))
			case reflect.Float32, reflect.Float64:
				leaf.SetFloat(float64(rng.Intn(1 << 20)))
			}
		})
	}
	var a, b Stats
	fill(&a)
	fill(&b)
	orig := a
	a.Add(&b)
	if reflect.DeepEqual(a, orig) {
		t.Fatal("Add changed nothing")
	}
	a.Sub(&b)
	if !reflect.DeepEqual(a, orig) {
		t.Errorf("Add then Sub is not the identity:\n got %+v\nwant %+v", a, orig)
	}
}

// TestStoreBufferBounded: the store buffer evicts entries older than the
// forwarding window instead of growing without limit.
func TestStoreBufferBounded(t *testing.T) {
	const stores = 20_000
	s := &sliceStream{}
	pc := uint32(0x1000)
	in := x86.Inst{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX)}
	enc, err := x86.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < stores; i++ {
		sl := slotFor(t, in, pc, 0)
		// A fresh address per store: without eviction the map reaches
		// `stores` entries.
		sl.MemAddrs = []uint32{0x9000_0000 - uint32(4*i)}
		s.slots = append(s.slots, sl)
		pc += uint32(len(enc))
	}
	eng := New(DefaultConfig(ModeICache), ModeICache, s)
	eng.Run(1 << 20)
	if got := len(eng.storeBuf); got >= 4096 {
		t.Errorf("store buffer occupancy %d after %d distinct stores; eviction not working", got, stores)
	}
}

// TestFingerprintValueStruct guards the memoization key: Config must
// remain a plain value struct, or Fingerprint's %#v rendering would not
// be canonical.
func TestFingerprintValueStruct(t *testing.T) {
	var check func(ty reflect.Type, path string)
	check = func(ty reflect.Type, path string) {
		switch ty.Kind() {
		case reflect.Struct:
			for i := 0; i < ty.NumField(); i++ {
				f := ty.Field(i)
				check(f.Type, path+"."+f.Name)
			}
		case reflect.Bool, reflect.String,
			reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64:
			// value kinds: fine
		default:
			t.Errorf("Config field %s has non-value kind %v; Fingerprint is no longer canonical", path, ty.Kind())
		}
	}
	check(reflect.TypeOf(Config{}), "Config")
}

// TestFingerprintDistinguishesConfigs: equal configs agree, and edits
// anywhere in the struct (including nested frame and optimizer options)
// change the fingerprint.
func TestFingerprintDistinguishesConfigs(t *testing.T) {
	a := DefaultConfig(ModeRePLayOpt)
	b := DefaultConfig(ModeRePLayOpt)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical configs have different fingerprints")
	}
	b.FrameCfg.MaxUOps = 128
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("nested frame-config edit not reflected in fingerprint")
	}
	c := DefaultConfig(ModeRePLayOpt)
	c.OptOptions.CSE = false
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("nested optimizer-option edit not reflected in fingerprint")
	}
	ic := DefaultConfig(ModeICache)
	if a.Fingerprint() == ic.Fingerprint() {
		t.Error("IC and RPO default configs share a fingerprint")
	}
}
