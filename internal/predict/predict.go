// Package predict implements the branch prediction structures of the
// paper's Table 2 configuration: an 18-bit gshare conditional predictor,
// a branch target buffer, and a return address stack.
package predict

// Gshare is a global-history XOR-indexed table of 2-bit saturating
// counters.
type Gshare struct {
	bits    uint
	mask    uint32
	history uint32
	table   []uint8
}

// NewGshare returns a predictor with 2^bits counters.
func NewGshare(bits uint) *Gshare {
	return &Gshare{
		bits:  bits,
		mask:  (1 << bits) - 1,
		table: make([]uint8, 1<<bits),
	}
}

func (g *Gshare) index(pc uint32) uint32 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict returns the predicted direction for the branch at pc.
func (g *Gshare) Predict(pc uint32) bool {
	return g.table[g.index(pc)] >= 2
}

// Update trains the counter and shifts the outcome into the global
// history.
func (g *Gshare) Update(pc uint32, taken bool) {
	i := g.index(pc)
	c := g.table[i]
	if taken {
		if c < 3 {
			g.table[i] = c + 1
		}
	} else if c > 0 {
		g.table[i] = c - 1
	}
	g.history = (g.history << 1) & g.mask
	if taken {
		g.history |= 1
	}
}

// BTB is a direct-mapped branch target buffer.
type BTB struct {
	mask    uint32
	tags    []uint32
	targets []uint32
	valid   []bool
}

// NewBTB returns a direct-mapped BTB with the given number of entries
// (rounded up to a power of two).
func NewBTB(entries int) *BTB {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &BTB{
		mask:    uint32(n - 1),
		tags:    make([]uint32, n),
		targets: make([]uint32, n),
		valid:   make([]bool, n),
	}
}

// Lookup returns the predicted target for the branch at pc, if present.
func (b *BTB) Lookup(pc uint32) (uint32, bool) {
	i := (pc >> 2) & b.mask
	if b.valid[i] && b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Update records the branch's actual target.
func (b *BTB) Update(pc, target uint32) {
	i := (pc >> 2) & b.mask
	b.tags[i], b.targets[i], b.valid[i] = pc, target, true
}

// RAS is a fixed-depth return address stack with wraparound.
type RAS struct {
	stack []uint32
	top   int
	depth int
}

// NewRAS returns a return address stack of the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{stack: make([]uint32, depth), depth: depth}
}

// Push records a call's return address.
func (r *RAS) Push(addr uint32) {
	r.top = (r.top + 1) % r.depth
	r.stack[r.top] = addr
}

// Pop predicts a return target.
func (r *RAS) Pop() uint32 {
	v := r.stack[r.top]
	r.top = (r.top - 1 + r.depth) % r.depth
	return v
}
