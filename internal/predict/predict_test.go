package predict

import (
	"testing"
	"testing/quick"
)

func TestGshareLearnsBias(t *testing.T) {
	g := NewGshare(10)
	pc := uint32(0x1234)
	for i := 0; i < 40; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Error("did not learn always-taken")
	}
	for i := 0; i < 40; i++ {
		g.Update(pc, false)
	}
	if g.Predict(pc) {
		t.Error("did not learn always-not-taken")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// Alternating T/N is captured by global history after warmup.
	g := NewGshare(12)
	pc := uint32(0x4000)
	taken := false
	for i := 0; i < 200; i++ {
		g.Update(pc, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if correct < 95 {
		t.Errorf("alternating pattern accuracy %d/100", correct)
	}
}

// TestGshareCountersSaturate: property — counters stay within [0,3], so
// predictions remain well-defined under arbitrary update sequences.
func TestGshareCountersSaturate(t *testing.T) {
	g := NewGshare(6)
	f := func(pc uint32, taken bool) bool {
		g.Update(pc, taken)
		for _, c := range g.table {
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(512)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("cold BTB hit")
	}
	b.Update(0x1000, 0x2000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x2000 {
		t.Errorf("lookup = %#x, %v", tgt, ok)
	}
	// Conflicting PC evicts (direct-mapped).
	conflict := uint32(0x1000 + 512*4)
	b.Update(conflict, 0x3000)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("conflicting entry survived")
	}
}

func TestRAS(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x100)
	r.Push(0x200)
	if r.Pop() != 0x200 || r.Pop() != 0x100 {
		t.Error("LIFO order wrong")
	}
	// Overflow wraps without panicking.
	for i := 0; i < 10; i++ {
		r.Push(uint32(i))
	}
	if r.Pop() != 9 {
		t.Error("top after overflow wrong")
	}
}
