package reuse

import (
	"sort"
	"sync"
)

// TopLoopCap bounds the per-report loop list: the heaviest loops by
// retired micro-op mass, which is what the subset selector and the
// report renderers care about.
const TopLoopCap = 12

// BucketReport is one depth bucket with its display label.
type BucketReport struct {
	Label string `json:"label"`
	BucketStat
}

// Report is the aggregated reuse decomposition of one workload: the
// per-depth attribution cells plus the heaviest detected loops.
type Report struct {
	Buckets []BucketReport `json:"buckets"`
	// Loops is the number of distinct loops detected across traces.
	Loops int `json:"loops"`
	// LoopEntries and BackEdges total activations and closed iterations.
	LoopEntries uint64 `json:"loop_entries"`
	BackEdges   uint64 `json:"back_edges"`
	// TotalX86/TotalUOps are the bucket sums (== the pipeline's retired
	// totals for the measured window — the conservation invariant).
	TotalX86  uint64 `json:"total_x86"`
	TotalUOps uint64 `json:"total_uops"`
	// LoopUOps is the baseline micro-op mass retired inside loops
	// (buckets 1+); LoopUOps/TotalUOps is the reuse-mass fraction.
	LoopUOps uint64 `json:"loop_uops"`
	// TopLoops lists the heaviest loops by micro-op mass (capped at
	// TopLoopCap), tagged with their trace index.
	TopLoops []Loop `json:"top_loops,omitempty"`
}

// LoopFrac is the fraction of baseline micro-ops retired inside loops.
func (r *Report) LoopFrac() float64 {
	if r.TotalUOps == 0 {
		return 0
	}
	return float64(r.LoopUOps) / float64(r.TotalUOps)
}

// Bucket returns the stats for a depth bucket (zero value out of range).
func (r *Report) Bucket(i int) BucketStat {
	if i >= 0 && i < len(r.Buckets) {
		return r.Buckets[i].BucketStat
	}
	return BucketStat{}
}

// Collector aggregates per-engine detectors into one workload report.
// Like telemetry.Collector it is handed to the simulation via
// sim.Options and attached per engine after warmup; each trace gets its
// own Probe (single-goroutine, like the engine), and Close folds the
// probe's totals in under the collector's lock.
type Collector struct {
	mu        sync.Mutex
	buckets   [NumBuckets]BucketStat
	loops     []Loop
	entries   uint64
	backEdges uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Probe is the per-engine observer: a Detector plus the fold-back link.
// It implements pipeline.ReuseProbe.
type Probe struct {
	Detector
	c     *Collector
	trace int
}

// Attach returns a fresh probe for one engine run over the given trace
// index. Close it once the run finishes.
func (c *Collector) Attach(trace int) *Probe {
	return &Probe{Detector: *NewDetector(), c: c, trace: trace}
}

// Close folds the probe's totals into its collector. Idempotent calls
// would double-count; call exactly once, after the engine's last run.
func (p *Probe) Close() {
	if p.c == nil {
		return
	}
	c := p.c
	p.c = nil
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.buckets {
		c.buckets[i].Add(&p.buckets[i])
	}
	for _, l := range p.Loops() {
		l.Trace = p.trace
		c.loops = append(c.loops, l)
		c.entries += l.Entries
		c.backEdges += l.BackEdges
	}
}

// Snapshot assembles the report accumulated so far.
func (c *Collector) Snapshot() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := Report{
		Buckets:     make([]BucketReport, NumBuckets),
		Loops:       len(c.loops),
		LoopEntries: c.entries,
		BackEdges:   c.backEdges,
	}
	for i := range c.buckets {
		r.Buckets[i] = BucketReport{Label: BucketLabel(i), BucketStat: c.buckets[i]}
		r.TotalX86 += c.buckets[i].X86
		r.TotalUOps += c.buckets[i].UOps
		if i > 0 {
			r.LoopUOps += c.buckets[i].UOps
		}
	}
	top := make([]Loop, len(c.loops))
	copy(top, c.loops)
	sort.SliceStable(top, func(i, j int) bool { return top[i].UOps > top[j].UOps })
	if len(top) > TopLoopCap {
		top = top[:TopLoopCap]
	}
	r.TopLoops = top
	return r
}

// Signature flattens a report into the reuse-mass vector Select
// consumes: baseline micro-ops per {depth bucket × class} cell, plus
// the per-bucket frame-hit and optimizer-removal masses. Dimensions are
// positional, so signatures from different workloads align.
func Signature(r *Report) []float64 {
	sig := make([]float64, 0, NumBuckets*(NumClasses+2))
	for i := 0; i < NumBuckets; i++ {
		b := r.Bucket(i)
		for _, c := range b.Classes {
			sig = append(sig, float64(c))
		}
		sig = append(sig, float64(b.FrameHits), float64(b.OptRemoved))
	}
	return sig
}
