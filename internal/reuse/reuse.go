// Package reuse makes trace reuse a first-class observable: it detects
// loop structure in the retired instruction stream (back edges on the
// per-PC control-flow graph the interpreter already walks), estimates
// nesting depth and trip counts, and attributes every retired micro-op
// and every frame-lifecycle event — build, hit, optimization removal,
// cache eviction — to a {loop-depth bucket, instruction-class} cell.
//
// The attribution is conservative by construction: each retired
// instruction and each lifecycle event lands in exactly one depth
// bucket, so the bucket sums equal the pipeline's own counters
// (X86Retired, UOpsBaseline, UOpsRetired, FramesConstructed,
// FrameFetches, Opt.Removed). The conservation test in internal/sim
// pins this for every profile, mirroring the per-pass killed==Removed
// invariant from the optimization-attribution telemetry.
//
// On top of the redundancy signal, Select picks a minimal
// representative workload subset (greedy facility-location over the
// reuse signatures, maximizing covered reuse mass per unit simulated
// cost), which benchd's quick suite runs instead of everything.
package reuse

import (
	"repro/internal/pipeline"
	"repro/internal/uop"
	"repro/internal/x86"
)

// Class buckets micro-ops by what kind of work they do; the class mix
// of a loop body is what distinguishes, say, a pointer-chasing loop
// from an arithmetic one with the same trip count.
type Class uint8

const (
	ClassALU Class = iota
	ClassLoad
	ClassStore
	ClassControl
	ClassOther

	// NumClasses is the number of instruction classes.
	NumClasses = int(ClassOther) + 1
)

var classNames = [NumClasses]string{"alu", "load", "store", "control", "other"}

func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return "other"
}

// ClassOf maps a micro-op opcode to its class.
func ClassOf(op uop.Op) Class {
	switch {
	case op == uop.LOAD:
		return ClassLoad
	case op == uop.STORE:
		return ClassStore
	case op.IsControl() || op.IsAssert():
		return ClassControl
	case op.IsALU():
		return ClassALU
	}
	return ClassOther
}

// NumBuckets is the number of loop-depth buckets: straight-line code,
// loop depth 1, depth 2, and depth 3 or deeper.
const NumBuckets = 4

var bucketLabels = [NumBuckets]string{"straight", "loop-d1", "loop-d2", "loop-d3+"}

// BucketOf maps a nesting depth (0 = outside any loop) to its bucket.
func BucketOf(depth int) int {
	if depth >= NumBuckets-1 {
		return NumBuckets - 1
	}
	return depth
}

// BucketLabel names a depth bucket for tables and metrics.
func BucketLabel(b int) string {
	if b >= 0 && b < NumBuckets {
		return bucketLabels[b]
	}
	return "loop-d3+"
}

// BucketStat is the attribution cell for one loop-depth bucket: the
// retired work that happened at that depth and the frame-lifecycle
// events that fired while execution sat at that depth.
type BucketStat struct {
	// X86 is the retired x86 instruction count.
	X86 uint64 `json:"x86"`
	// UOps is the decoded (baseline) micro-op count.
	UOps uint64 `json:"uops"`
	// UOpsRetired is the post-optimization micro-op count actually
	// executed (frame-path slots retire their frame's optimized body).
	UOpsRetired uint64 `json:"uops_retired"`
	// Covered is the baseline micro-op count retired through committed
	// frames (the numerator of frame coverage, split by depth).
	Covered uint64 `json:"covered"`
	// Classes splits UOps by instruction class, indexed by Class.
	Classes [NumClasses]uint64 `json:"classes"`
	// FrameBuilds counts frames offered by the constructor.
	FrameBuilds uint64 `json:"frame_builds"`
	// FrameHits counts frame-cache fetches.
	FrameHits uint64 `json:"frame_hits"`
	// OptRemoved counts micro-ops the optimizer removed.
	OptRemoved uint64 `json:"opt_removed"`
	// Evictions counts frame/trace-cache evictions.
	Evictions uint64 `json:"evictions"`
}

// Add accumulates another cell into b (used when folding per-engine
// detectors into a collector, and per-job reports into server metrics).
func (b *BucketStat) Add(o *BucketStat) {
	b.X86 += o.X86
	b.UOps += o.UOps
	b.UOpsRetired += o.UOpsRetired
	b.Covered += o.Covered
	for i := range b.Classes {
		b.Classes[i] += o.Classes[i]
	}
	b.FrameBuilds += o.FrameBuilds
	b.FrameHits += o.FrameHits
	b.OptRemoved += o.OptRemoved
	b.Evictions += o.Evictions
}

// Loop is one detected loop, identified by its header PC (the target
// of its back edges). Two back edges to the same header are the same
// loop; the body is approximated by the PC interval [Header, Tail].
type Loop struct {
	// Trace is the hot-spot trace the loop was observed in (traces are
	// independent address spaces, so loops never merge across them).
	Trace  int    `json:"trace"`
	Header uint32 `json:"header"`
	Tail   uint32 `json:"tail"`
	// Nest is the deepest nesting level the loop was observed at
	// (1 = outermost).
	Nest int `json:"nest"`
	// Entries counts activations; BackEdges counts iterations closed by
	// a back edge, so a full activation of N body executions contributes
	// N-1 back edges.
	Entries   uint64 `json:"entries"`
	BackEdges uint64 `json:"back_edges"`
	// UOps is the baseline micro-op mass retired while this loop was the
	// innermost active one.
	UOps uint64 `json:"uops"`
}

// TripCount estimates body executions per activation.
func (l *Loop) TripCount() float64 {
	if l.Entries == 0 {
		return 0
	}
	return float64(l.BackEdges+l.Entries) / float64(l.Entries)
}

// activeLoop is one live activation on the detector's loop stack.
type activeLoop struct {
	header, tail uint32
	callDepth    int
	loop         *Loop
}

// Detector is the streaming loop detector and attribution engine for
// one engine run. Feed it every retired instruction in retirement
// order (it implements pipeline.ReuseProbe); it is single-goroutine,
// like the engine that drives it.
//
// A loop is recognized at its first back edge — a taken control
// transfer to a lower or equal PC — so an activation's first body
// execution is attributed to the surrounding depth, the standard cost
// of online detection. An activation stays live while the PC remains
// inside [header, tail] at the call depth the loop was entered at;
// calls made from the body keep it live (the callee's instructions are
// dynamically inside the loop), and returning below that call depth
// ends it.
type Detector struct {
	buckets   [NumBuckets]BucketStat
	loops     map[uint32]*Loop
	order     []uint32 // header insertion order, for deterministic reports
	stack     []activeLoop
	callDepth int
}

// NewDetector returns an empty detector.
func NewDetector() *Detector {
	return &Detector{loops: make(map[uint32]*Loop)}
}

// Depth is the current loop-nesting depth (0 = straight-line).
func (d *Detector) Depth() int { return len(d.stack) }

// Active returns the innermost active loop's identity — its header PC —
// or ok=false when execution is in straight-line code. Consumers that
// need an exact partition of observed events over loops (each event in
// exactly one row, unlike the inclusive interval rollups a nested join
// produces) attribute to the active loop at event time.
func (d *Detector) Active() (header uint32, ok bool) {
	if n := len(d.stack); n > 0 {
		return d.stack[n-1].header, true
	}
	return 0, false
}

// ReuseSlot feeds one retired instruction. fromFrame marks slots
// retired through a committed frame or trace-cache line; uopsExecuted
// is the post-optimization micro-op count retired with the slot
// (frame-path slots pass 0 — their optimized body arrives in bulk via
// ReuseFrameRetired).
func (d *Detector) ReuseSlot(s pipeline.Slot, fromFrame bool, uopsExecuted int) {
	pc := s.PC
	// Leave loops whose body no longer contains the PC at the call depth
	// they were entered at.
	for n := len(d.stack); n > 0; n = len(d.stack) {
		top := &d.stack[n-1]
		if d.callDepth > top.callDepth {
			break // inside a function called from the loop body
		}
		if d.callDepth == top.callDepth && pc >= top.header && pc <= top.tail {
			break
		}
		d.stack = d.stack[:n-1]
	}

	b := &d.buckets[BucketOf(len(d.stack))]
	b.X86++
	n := uint64(len(s.UOps))
	b.UOps += n
	b.UOpsRetired += uint64(uopsExecuted)
	if fromFrame {
		b.Covered += n
	}
	for _, u := range s.UOps {
		b.Classes[ClassOf(u.Op)]++
	}
	if ln := len(d.stack); ln > 0 {
		d.stack[ln-1].loop.UOps += n
	}

	// Control effects happen on the way out: the call depth changes
	// after the instruction retires, and a taken backward branch closes
	// an iteration at the depth the instruction executed at.
	switch s.Inst.Op {
	case x86.OpCALL:
		d.callDepth++
	case x86.OpRET:
		if d.callDepth > 0 {
			d.callDepth--
		}
	default:
		if s.NextPC <= pc && s.Taken() {
			d.backEdge(s.NextPC, pc)
		}
	}
}

// backEdge processes a taken backward control transfer tail -> header.
func (d *Detector) backEdge(header, tail uint32) {
	// Re-iteration of a live activation: find it at the current call
	// depth, unwinding inner activations this iteration did not close.
	for i := len(d.stack) - 1; i >= 0 && d.stack[i].callDepth == d.callDepth; i-- {
		a := &d.stack[i]
		if a.header != header {
			continue
		}
		d.stack = d.stack[:i+1]
		if tail > a.tail {
			a.tail = tail
		}
		a.loop.BackEdges++
		if tail > a.loop.Tail {
			a.loop.Tail = tail
		}
		return
	}
	// First back edge of a new activation.
	l := d.loops[header]
	if l == nil {
		l = &Loop{Header: header, Tail: tail}
		d.loops[header] = l
		d.order = append(d.order, header)
	}
	l.Entries++
	l.BackEdges++
	if tail > l.Tail {
		l.Tail = tail
	}
	d.stack = append(d.stack, activeLoop{header: header, tail: tail, callDepth: d.callDepth, loop: l})
	if nest := len(d.stack); nest > l.Nest {
		l.Nest = nest
	}
}

// ReuseFrameBuilt attributes a constructor frame deposit.
func (d *Detector) ReuseFrameBuilt() { d.buckets[BucketOf(len(d.stack))].FrameBuilds++ }

// ReuseFrameHit attributes a frame-cache fetch.
func (d *Detector) ReuseFrameHit() { d.buckets[BucketOf(len(d.stack))].FrameHits++ }

// ReuseFrameRetired attributes a committed frame's optimized body.
func (d *Detector) ReuseFrameRetired(uops int) {
	d.buckets[BucketOf(len(d.stack))].UOpsRetired += uint64(uops)
}

// ReuseOptRemoved attributes micro-ops removed by an optimizer pass run.
func (d *Detector) ReuseOptRemoved(removed int) {
	d.buckets[BucketOf(len(d.stack))].OptRemoved += uint64(removed)
}

// ReuseEvict attributes a frame/trace-cache eviction.
func (d *Detector) ReuseEvict() { d.buckets[BucketOf(len(d.stack))].Evictions++ }

// Loops returns the detected loops in first-observed order.
func (d *Detector) Loops() []Loop {
	out := make([]Loop, 0, len(d.order))
	for _, h := range d.order {
		out = append(out, *d.loops[h])
	}
	return out
}

// Buckets returns the attribution cells, indexed by depth bucket.
func (d *Detector) Buckets() [NumBuckets]BucketStat { return d.buckets }
