package reuse

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/uop"
	"repro/internal/x86"
)

// slot builds one synthetic retired instruction: a 4-byte instruction
// at pc with dynamic successor next and the given micro-op flow.
func slot(pc, next uint32, op x86.Op, uops ...uop.Op) pipeline.Slot {
	us := make([]uop.UOp, len(uops))
	for i, o := range uops {
		us[i] = uop.UOp{Op: o}
	}
	return pipeline.Slot{PC: pc, Inst: x86.Inst{Op: op, Len: 4}, NextPC: next, UOps: us}
}

// feed retires the slots through a fresh detector.
func feed(slots []pipeline.Slot) *Detector {
	d := NewDetector()
	for i := range slots {
		d.ReuseSlot(slots[i], false, len(slots[i].UOps))
	}
	return d
}

// straight appends a run of fall-through ALU instructions [start, end).
func straight(slots []pipeline.Slot, start, end uint32) []pipeline.Slot {
	for pc := start; pc < end; pc += 4 {
		slots = append(slots, slot(pc, pc+4, x86.OpADD, uop.ADD))
	}
	return slots
}

// TestDetectorStraightLine pins the no-loop golden: every instruction
// lands in the straight bucket and no loop is reported.
func TestDetectorStraightLine(t *testing.T) {
	slots := straight(nil, 0, 40) // 10 instructions
	d := feed(slots)
	if got := d.Loops(); len(got) != 0 {
		t.Fatalf("straight-line stream detected loops: %+v", got)
	}
	b := d.Buckets()
	if b[0].X86 != 10 || b[0].UOps != 10 {
		t.Errorf("straight bucket: x86=%d uops=%d, want 10/10", b[0].X86, b[0].UOps)
	}
	for i := 1; i < NumBuckets; i++ {
		if b[i].X86 != 0 {
			t.Errorf("bucket %s nonempty: %+v", BucketLabel(i), b[i])
		}
	}
	if b[0].Classes[ClassALU] != 10 {
		t.Errorf("alu class = %d, want 10", b[0].Classes[ClassALU])
	}
}

// singleLoop builds: 2 straight instructions, then `trips` executions
// of a 3-instruction body (0x10 alu, 0x14 load, 0x18 jcc back to 0x10;
// the last execution falls through), then 2 straight instructions.
func singleLoop(trips int) []pipeline.Slot {
	slots := straight(nil, 0, 8)
	for i := 0; i < trips; i++ {
		next := uint32(0x10)
		if i == trips-1 {
			next = 0x1c // fall through on the final iteration
		}
		slots = append(slots,
			slot(0x10, 0x14, x86.OpADD, uop.ADD),
			slot(0x14, 0x18, x86.OpMOV, uop.LOAD),
			slot(0x18, next, x86.OpJCC, uop.BR))
	}
	return straight(slots, 0x1c, 0x24)
}

// TestDetectorSingleLoop pins the single-loop golden: one loop at
// header 0x10 with the exact entry/back-edge/trip-count accounting, and
// the online-detection attribution split (the first iteration retires
// before the first back edge, so it counts as straight-line).
func TestDetectorSingleLoop(t *testing.T) {
	const trips = 5
	d := feed(singleLoop(trips))
	loops := d.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1 (%+v)", len(loops), loops)
	}
	l := loops[0]
	if l.Header != 0x10 || l.Tail != 0x18 {
		t.Errorf("loop span [%#x, %#x], want [0x10, 0x18]", l.Header, l.Tail)
	}
	if l.Entries != 1 || l.BackEdges != trips-1 {
		t.Errorf("entries=%d backEdges=%d, want 1/%d", l.Entries, l.BackEdges, trips-1)
	}
	if got := l.TripCount(); got != trips {
		t.Errorf("trip count %.1f, want %d", got, trips)
	}
	if l.Nest != 1 {
		t.Errorf("nest %d, want 1", l.Nest)
	}

	b := d.Buckets()
	// 4 straight instructions outside the loop + the loop's first
	// iteration (3 instructions, retired before its back edge closed).
	if b[0].X86 != 7 {
		t.Errorf("straight x86 = %d, want 7", b[0].X86)
	}
	// Iterations 2..5 attribute at depth 1.
	if b[1].X86 != 3*(trips-1) {
		t.Errorf("loop-d1 x86 = %d, want %d", b[1].X86, 3*(trips-1))
	}
	if b[1].Classes[ClassLoad] != trips-1 || b[1].Classes[ClassControl] != trips-1 {
		t.Errorf("d1 classes = %v, want %d loads and %d controls",
			b[1].Classes, trips-1, trips-1)
	}
	if l.UOps != 3*(trips-1) {
		t.Errorf("loop uop mass %d, want %d", l.UOps, 3*(trips-1))
	}
}

// TestDetectorNestedLoops pins the two-level golden: an outer loop at
// 0x10 iterated 3 times, an inner loop at 0x20 iterated 4 times per
// activation, with pinned nesting depths and trip counts.
func TestDetectorNestedLoops(t *testing.T) {
	const outerTrips, innerTrips = 3, 4
	var slots []pipeline.Slot
	for o := 0; o < outerTrips; o++ {
		slots = append(slots,
			slot(0x10, 0x14, x86.OpADD, uop.ADD),
			slot(0x14, 0x20, x86.OpADD, uop.ADD))
		for i := 0; i < innerTrips; i++ {
			next := uint32(0x20)
			if i == innerTrips-1 {
				next = 0x28
			}
			slots = append(slots,
				slot(0x20, 0x24, x86.OpMOV, uop.LOAD),
				slot(0x24, next, x86.OpJCC, uop.BR))
		}
		next := uint32(0x10)
		if o == outerTrips-1 {
			next = 0x2c
		}
		slots = append(slots, slot(0x28, next, x86.OpJCC, uop.BR))
	}
	slots = straight(slots, 0x2c, 0x34)

	d := feed(slots)
	loops := d.Loops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2 (%+v)", len(loops), loops)
	}
	// Insertion order: the inner loop closes its first back edge before
	// the outer loop does.
	inner, outer := loops[0], loops[1]
	if inner.Header != 0x20 || outer.Header != 0x10 {
		t.Fatalf("headers inner=%#x outer=%#x, want 0x20/0x10", inner.Header, outer.Header)
	}
	if inner.Entries != outerTrips || inner.BackEdges != outerTrips*(innerTrips-1) {
		t.Errorf("inner entries=%d backEdges=%d, want %d/%d",
			inner.Entries, inner.BackEdges, outerTrips, outerTrips*(innerTrips-1))
	}
	if got := inner.TripCount(); got != innerTrips {
		t.Errorf("inner trip count %.1f, want %d", got, innerTrips)
	}
	if outer.Entries != 1 || outer.BackEdges != outerTrips-1 {
		t.Errorf("outer entries=%d backEdges=%d, want 1/%d", outer.Entries, outer.BackEdges, outerTrips-1)
	}
	if got := outer.TripCount(); got != outerTrips {
		t.Errorf("outer trip count %.1f, want %d", got, outerTrips)
	}
	if outer.Nest != 1 || inner.Nest != 2 {
		t.Errorf("nesting outer=%d inner=%d, want 1/2", outer.Nest, inner.Nest)
	}

	b := d.Buckets()
	// Depth-2 work: inner-loop iterations retired while both loops were
	// live. The outer loop activates at its first back edge (end of
	// outer iteration 1), so outer iteration 1's inner iterations 2..4
	// sit at depth 1 and only outer iterations 2..3 contribute depth-2
	// work: 2 outer trips × 3 closed inner iterations × 2 instructions.
	if want := uint64(2 * (innerTrips - 1) * 2); b[2].X86 != want {
		t.Errorf("loop-d2 x86 = %d, want %d", b[2].X86, want)
	}
	if b[3].X86 != 0 {
		t.Errorf("loop-d3+ x86 = %d, want 0", b[3].X86)
	}
}

// TestDetectorEarlyExit pins the early-exit golden: a loop left by a
// taken forward branch mid-body still closes its activation, and the
// instructions after the exit attribute as straight-line.
func TestDetectorEarlyExit(t *testing.T) {
	const fullTrips = 3
	var slots []pipeline.Slot
	for i := 0; i < fullTrips; i++ {
		slots = append(slots,
			slot(0x10, 0x14, x86.OpADD, uop.ADD),
			slot(0x14, 0x18, x86.OpJCC, uop.BR), // not taken: falls through
			slot(0x18, 0x10, x86.OpJCC, uop.BR))
	}
	// Final iteration: the guard at 0x14 fires and exits to 0x30.
	slots = append(slots,
		slot(0x10, 0x14, x86.OpADD, uop.ADD),
		slot(0x14, 0x30, x86.OpJCC, uop.BR))
	slots = straight(slots, 0x30, 0x38)

	d := feed(slots)
	loops := d.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1 (%+v)", len(loops), loops)
	}
	l := loops[0]
	if l.Entries != 1 || l.BackEdges != fullTrips {
		t.Errorf("entries=%d backEdges=%d, want 1/%d", l.Entries, l.BackEdges, fullTrips)
	}
	// 3 closed iterations + the partial exit iteration ≈ 4 trips.
	if got := l.TripCount(); got != fullTrips+1 {
		t.Errorf("trip count %.1f, want %d", got, fullTrips+1)
	}
	if d.Depth() != 0 {
		t.Errorf("detector still %d deep after exit", d.Depth())
	}
	b := d.Buckets()
	// Straight: iteration 1 (3 insts, pre-detection) + 2 tail insts.
	// Depth 1: iterations 2..3 (6 insts) + the partial iteration (2).
	if b[0].X86 != 5 || b[1].X86 != 8 {
		t.Errorf("x86 split straight=%d d1=%d, want 5/8", b[0].X86, b[1].X86)
	}
}

// TestDetectorLoopWithCall pins the call-transparency rule: a loop
// whose body calls a function stays live through the callee (its
// instructions are dynamically inside the loop), and the callee's work
// attributes at the loop's depth.
func TestDetectorLoopWithCall(t *testing.T) {
	const trips = 3
	var slots []pipeline.Slot
	for i := 0; i < trips; i++ {
		next := uint32(0x10)
		if i == trips-1 {
			next = 0x18
		}
		slots = append(slots,
			slot(0x10, 0x100, x86.OpCALL, uop.STORE, uop.JMP), // push return, jump
			slot(0x100, 0x104, x86.OpADD, uop.ADD),            // callee body
			slot(0x104, 0x14, x86.OpRET, uop.LOAD, uop.JR),    // return to loop
			slot(0x14, next, x86.OpJCC, uop.BR))
	}
	slots = straight(slots, 0x18, 0x20)

	d := feed(slots)
	loops := d.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1 (%+v): callee PCs must not split the loop", len(loops), loops)
	}
	l := loops[0]
	if l.Header != 0x10 || l.Entries != 1 || l.BackEdges != trips-1 {
		t.Errorf("loop = %+v, want header 0x10, 1 entry, %d back edges", l, trips-1)
	}
	b := d.Buckets()
	// Iterations 2..3 (4 insts each, callee included) attribute at d1.
	if want := uint64((trips - 1) * 4); b[1].X86 != want {
		t.Errorf("loop-d1 x86 = %d, want %d (callee must attribute inside the loop)", b[1].X86, want)
	}
	if d.Depth() != 0 {
		t.Errorf("detector still %d deep at end", d.Depth())
	}
}

// TestDetectorFrameEvents pins event attribution: lifecycle events land
// in the bucket of the depth live when they fire.
func TestDetectorFrameEvents(t *testing.T) {
	d := NewDetector()
	d.ReuseFrameBuilt() // straight-line: nothing retired yet
	slots := singleLoop(4)
	for i := range slots {
		d.ReuseSlot(slots[i], false, len(slots[i].UOps))
		if slots[i].PC == 0x14 { // inside the loop body
			d.ReuseFrameHit()
			d.ReuseOptRemoved(2)
			d.ReuseEvict()
		}
	}
	b := d.Buckets()
	if b[0].FrameBuilds != 1 {
		t.Errorf("straight frame builds = %d, want 1", b[0].FrameBuilds)
	}
	// The 0x14 slot executes 4 times: once pre-detection (straight),
	// three times at depth 1.
	if b[0].FrameHits != 1 || b[1].FrameHits != 3 {
		t.Errorf("frame hits straight=%d d1=%d, want 1/3", b[0].FrameHits, b[1].FrameHits)
	}
	if b[1].OptRemoved != 6 || b[1].Evictions != 3 {
		t.Errorf("d1 optRemoved=%d evictions=%d, want 6/3", b[1].OptRemoved, b[1].Evictions)
	}
}

// TestCollectorFold checks Attach/Close: per-trace probes fold into one
// report, loops are tagged with their trace index, and Close is
// idempotent.
func TestCollectorFold(t *testing.T) {
	c := NewCollector()
	for trace := 0; trace < 2; trace++ {
		p := c.Attach(trace)
		slots := singleLoop(4)
		for i := range slots {
			p.ReuseSlot(slots[i], false, len(slots[i].UOps))
		}
		p.Close()
		p.Close() // second Close must not double-count
	}
	r := c.Snapshot()
	if r.Loops != 2 {
		t.Fatalf("loops = %d, want 2 (one per trace)", r.Loops)
	}
	seen := map[int]bool{}
	for _, l := range r.TopLoops {
		seen[l.Trace] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("trace tags missing: %+v", r.TopLoops)
	}
	if r.TotalX86 == 0 || r.TotalUOps == 0 {
		t.Errorf("empty totals: %+v", r)
	}
	var sum uint64
	for _, b := range r.Buckets {
		sum += b.X86
	}
	if sum != r.TotalX86 {
		t.Errorf("bucket x86 sum %d != total %d", sum, r.TotalX86)
	}
	if f := r.LoopFrac(); f <= 0 || f >= 1 {
		t.Errorf("loop fraction %f out of (0,1)", f)
	}
	if got, want := len(Signature(&r)), NumBuckets*(NumClasses+2); got != want {
		t.Errorf("signature dims %d, want %d", got, want)
	}
}
