package reuse

import "sort"

// DefaultCoverage is the covered-mass fraction the representative
// subset aims for: enough that every behavior dimension with real mass
// has a proxy in the subset, while the tail of near-duplicate workloads
// is dropped.
const DefaultCoverage = 0.95

// SubsetItem is one candidate workload for representative-subset
// selection: its reuse signature (see Signature) and its simulation
// cost (any consistent unit — simulated instructions or measured wall
// time).
type SubsetItem struct {
	Name string
	Cost float64
	Mass []float64
}

// SubsetPick is one selected workload in rank order.
type SubsetPick struct {
	Rank int    `json:"rank"`
	Name string `json:"name"`
	// Gain is the reuse mass this pick newly covered.
	Gain float64 `json:"gain"`
	// Coverage is the cumulative covered fraction of total reuse mass
	// after this pick.
	Coverage float64 `json:"coverage"`
	Cost     float64 `json:"cost"`
	// CostFrac is the cumulative cost fraction of the full set.
	CostFrac float64 `json:"cost_frac"`
}

// Select greedily picks a representative subset: the facility-location
// objective counts a signature dimension as covered in proportion to
// the best selected workload's share of the dimension's per-workload
// maximum, weighted by the dimension's total mass. Each step takes the
// workload with the best marginal covered mass per unit cost, stopping
// once the cumulative coverage reaches target (clamped to (0, 1]).
// The objective is submodular, so the greedy order is the classic
// (1-1/e)-approximation; ties break toward lower cost, then input
// order, making the ranking deterministic.
func Select(items []SubsetItem, target float64) []SubsetPick {
	if len(items) == 0 {
		return nil
	}
	if target <= 0 || target > 1 {
		target = DefaultCoverage
	}
	dims := 0
	for _, it := range items {
		if len(it.Mass) > dims {
			dims = len(it.Mass)
		}
	}
	mass := func(it *SubsetItem, d int) float64 {
		if d < len(it.Mass) && it.Mass[d] > 0 {
			return it.Mass[d]
		}
		return 0
	}
	// Per-dimension weight (total mass) and per-workload maximum.
	w := make([]float64, dims)
	max := make([]float64, dims)
	for d := 0; d < dims; d++ {
		for i := range items {
			m := mass(&items[i], d)
			w[d] += m
			if m > max[d] {
				max[d] = m
			}
		}
	}
	var total, totalCost float64
	for _, wd := range w {
		total += wd
	}
	for i := range items {
		totalCost += cost(&items[i])
	}
	if total == 0 {
		// No reuse mass anywhere: fall back to the single cheapest item
		// so callers always get a runnable subset.
		best := 0
		for i := range items {
			if cost(&items[i]) < cost(&items[best]) {
				best = i
			}
		}
		return []SubsetPick{{Rank: 1, Name: items[best].Name, Coverage: 1,
			Cost: items[best].Cost, CostFrac: cost(&items[best]) / totalCost}}
	}

	cur := make([]float64, dims) // covered share per dimension, in [0,1]
	picked := make([]bool, len(items))
	var picks []SubsetPick
	var covered, spent float64
	for len(picks) < len(items) {
		best, bestGain, bestRate := -1, 0.0, -1.0
		for i := range items {
			if picked[i] {
				continue
			}
			var gain float64
			for d := 0; d < dims; d++ {
				if max[d] == 0 {
					continue
				}
				if share := mass(&items[i], d) / max[d]; share > cur[d] {
					gain += w[d] * (share - cur[d])
				}
			}
			rate := gain / cost(&items[i])
			if rate > bestRate || (rate == bestRate && best >= 0 && cost(&items[i]) < cost(&items[best])) {
				best, bestGain, bestRate = i, gain, rate
			}
		}
		if best < 0 || bestGain <= 0 {
			break
		}
		picked[best] = true
		it := &items[best]
		for d := 0; d < dims; d++ {
			if max[d] == 0 {
				continue
			}
			if share := mass(it, d) / max[d]; share > cur[d] {
				cur[d] = share
			}
		}
		covered += bestGain
		spent += cost(it)
		picks = append(picks, SubsetPick{
			Rank:     len(picks) + 1,
			Name:     it.Name,
			Gain:     bestGain,
			Coverage: covered / total,
			Cost:     it.Cost,
			CostFrac: spent / totalCost,
		})
		if covered/total >= target {
			break
		}
	}
	return picks
}

func cost(it *SubsetItem) float64 {
	if it.Cost > 0 {
		return it.Cost
	}
	return 1
}

// Names returns the picked workload names in rank order.
func Names(picks []SubsetPick) []string {
	out := make([]string, len(picks))
	for i, p := range picks {
		out[i] = p.Name
	}
	return out
}

// SortItems orders items deterministically by name (stable input for
// Select when callers assemble them from a map).
func SortItems(items []SubsetItem) {
	sort.Slice(items, func(i, j int) bool { return items[i].Name < items[j].Name })
}
