package reuse

import (
	"reflect"
	"testing"
)

// TestSelectOrthogonal: two workloads with disjoint mass dimensions
// both get picked — neither can proxy the other's behavior.
func TestSelectOrthogonal(t *testing.T) {
	items := []SubsetItem{
		{Name: "a", Cost: 100, Mass: []float64{10, 0}},
		{Name: "b", Cost: 100, Mass: []float64{0, 10}},
	}
	picks := Select(items, 0.99)
	if got := Names(picks); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("picks = %v, want [a b]", got)
	}
	if picks[1].Coverage < 0.99 {
		t.Errorf("final coverage %.3f < 0.99", picks[1].Coverage)
	}
}

// TestSelectRedundantDropped: a workload whose signature is a scaled
// copy of a larger one adds no marginal coverage once the larger one is
// in, so the subset stops before it.
func TestSelectRedundantDropped(t *testing.T) {
	items := []SubsetItem{
		{Name: "big", Cost: 100, Mass: []float64{100, 50}},
		{Name: "copy", Cost: 100, Mass: []float64{80, 40}}, // dominated
	}
	picks := Select(items, 0.9)
	if got := Names(picks); !reflect.DeepEqual(got, []string{"big"}) {
		t.Fatalf("picks = %v, want [big]: dominated workload must be dropped", got)
	}
	if picks[0].Coverage < 0.9 {
		t.Errorf("coverage %.3f < target 0.9", picks[0].Coverage)
	}
}

// TestSelectRateNotMass: greedy ranks by covered mass per unit cost,
// so a cheap workload covering most of the mass outranks an expensive
// one covering slightly more.
func TestSelectRateNotMass(t *testing.T) {
	items := []SubsetItem{
		{Name: "expensive", Cost: 1000, Mass: []float64{100}},
		{Name: "cheap", Cost: 10, Mass: []float64{90}},
	}
	picks := Select(items, 0.99)
	if len(picks) == 0 || picks[0].Name != "cheap" {
		t.Fatalf("first pick = %v, want cheap (rate 9.0 vs 0.1)", Names(picks))
	}
}

// TestSelectZeroMassFallback: with no reuse mass anywhere the selector
// still returns a runnable subset — the single cheapest workload.
func TestSelectZeroMassFallback(t *testing.T) {
	items := []SubsetItem{
		{Name: "a", Cost: 300},
		{Name: "b", Cost: 100},
		{Name: "c", Cost: 200},
	}
	picks := Select(items, 0.95)
	if len(picks) != 1 || picks[0].Name != "b" || picks[0].Coverage != 1 {
		t.Fatalf("picks = %+v, want single pick b with coverage 1", picks)
	}
}

// TestSelectDeterministic: equal inputs produce identical rankings.
func TestSelectDeterministic(t *testing.T) {
	items := []SubsetItem{
		{Name: "a", Cost: 50, Mass: []float64{5, 1, 0}},
		{Name: "b", Cost: 50, Mass: []float64{0, 4, 3}},
		{Name: "c", Cost: 50, Mass: []float64{2, 2, 2}},
	}
	first := Select(items, 0.95)
	for i := 0; i < 10; i++ {
		if got := Select(items, 0.95); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d diverged: %+v vs %+v", i, got, first)
		}
	}
}

// TestSelectEmpty: no items, no picks.
func TestSelectEmpty(t *testing.T) {
	if picks := Select(nil, 0.95); picks != nil {
		t.Fatalf("picks = %+v, want nil", picks)
	}
}

// TestSortItems pins the deterministic pre-sort.
func TestSortItems(t *testing.T) {
	items := []SubsetItem{{Name: "c"}, {Name: "a"}, {Name: "b"}}
	SortItems(items)
	if items[0].Name != "a" || items[2].Name != "c" {
		t.Fatalf("sorted order wrong: %+v", items)
	}
}
