package server

import (
	"net/http"
	"sync"

	"repro/internal/api"
	"repro/internal/cycleprof"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
)

// cycleMetrics accumulates cycles-experiment results across finished
// jobs for the /metrics exposition: attributed fetch cycles per bin
// plus loop-join volume. Profiling forces execution — memoization never
// skips a cycles run — so every cycles job contributes samples.
type cycleMetrics struct {
	mu         sync.Mutex
	jobs       uint64
	bins       [pipeline.NumBins]uint64
	loops      uint64
	loopCycles uint64
}

func newCycleMetrics() *cycleMetrics { return &cycleMetrics{} }

// fold merges one finished cycles job's report into the aggregates.
func (m *cycleMetrics) fold(rep *sim.CycleReport) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs++
	for i := range rep.Rows {
		r := &rep.Rows[i].Report
		for b := range r.Bins {
			m.bins[b] += r.Bins[b]
		}
		m.loops += uint64(len(r.Loops))
		for j := range r.Loops {
			m.loopCycles += r.Loops[j].Cycles
		}
	}
}

// render writes the replayd_fetch_cycles_* and replayd_cycleprof_*
// families.
func (m *cycleMetrics) render(p *stats.Prom) {
	m.mu.Lock()
	jobs, bins, loops, loopCycles := m.jobs, m.bins, m.loops, m.loopCycles
	m.mu.Unlock()

	p.Counter("replayd_cycleprof_jobs_total", "Cycles-experiment jobs whose profiles were folded into these aggregates.", float64(jobs))
	samples := make([]stats.LabeledSample, pipeline.NumBins)
	for i := range bins {
		samples[i] = stats.LabeledSample{Label: pipeline.Bin(i).String(), Value: float64(bins[i])}
	}
	p.LabeledCounter("replayd_fetch_cycles_total",
		"Fetch cycles attributed by the guest-cycle profiler to each fetch bin across cycles-experiment runs; summed over bins this equals the measured cycle total of those runs (the conservation invariant).",
		"bin", samples)
	p.Counter("replayd_cycleprof_loops_total", "Loop-joined hotspots across cycles-experiment runs.", float64(loops))
	p.Counter("replayd_cycleprof_loop_cycles_total", "Fetch cycles attributed inside detected loop bodies across cycles-experiment runs (inclusive rollups; nested loops overlap).", float64(loopCycles))
}

// handleProfile serves a finished cycles job's guest profile. The
// format query parameter selects the representation: "json" (default)
// returns the full sim.CycleReport, "pprof" the gzipped pprof protobuf
// (samples = cycles, labels = bin, locations = guest PCs under
// synthetic loop frames), and "text" collapsed flame stacks. The
// profile exists only on jobs submitted with experiment "cycles".
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("job")
	if id == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing job query parameter"})
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json", "pprof", "text":
	default:
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": "unknown format; want json, pprof, or text"})
		return
	}
	j, ok := s.lookup(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	v := j.view()
	switch v.State {
	case api.StateQueued, api.StateRunning:
		writeJSON(w, http.StatusConflict,
			map[string]string{"error": "job has not finished; profile not available yet"})
		return
	}
	if v.Result == nil || v.Result.Cycles == nil {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": "job has no cycle profile; submit it with experiment \"cycles\""})
		return
	}
	switch format {
	case "pprof":
		data, err := cycleprof.Profile(v.Result.Cycles.Profiles())
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="guest.pb.gz"`)
		w.Write(data)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(cycleprof.FlameText(v.Result.Cycles.Profiles()))
	default:
		writeJSON(w, http.StatusOK, v.Result.Cycles)
	}
}
