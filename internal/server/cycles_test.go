package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/cycleprof"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestCyclesEndToEnd runs a cycles job through the full HTTP surface
// and checks the views agree: the job result, the /debug/profile JSON
// and pprof exports (the pprof total must equal the measured cycles —
// conservation at the wire), and the folded metric families.
func TestCyclesEndToEnd(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	env, status := postRun(t, ts.URL+"/v1/run", api.RunRequest{
		Experiment: "cycles", Workloads: []string{"gzip"}, Insts: 20_000})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, env.Error)
	}
	var res api.RunResponse
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Cycles == nil || len(res.Cycles.Rows) != 1 {
		t.Fatalf("cycles result missing or wrong shape: %+v", res.Cycles)
	}
	row := res.Cycles.Rows[0]
	if row.Workload != "gzip" || row.Report.Cycles == 0 || len(row.Report.PCs) == 0 {
		t.Fatalf("implausible cycles row: workload=%s cycles=%d pcs=%d",
			row.Workload, row.Report.Cycles, len(row.Report.PCs))
	}
	if len(row.Report.Loops) == 0 {
		t.Fatal("no loop-joined hotspots")
	}

	// /debug/profile (JSON) serves the same report the job result carries.
	resp, err := http.Get(ts.URL + "/debug/profile?job=" + env.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/profile: status %d", resp.StatusCode)
	}
	var dbg sim.CycleReport
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	direct, _ := json.Marshal(res.Cycles)
	served, _ := json.Marshal(&dbg)
	if !bytes.Equal(direct, served) {
		t.Errorf("/debug/profile diverged from the job result:\n got %s\nwant %s", served, direct)
	}

	// format=pprof decodes, and its total sample value equals the
	// measured-window cycle count.
	presp, err := http.Get(ts.URL + "/debug/profile?job=" + env.ID + "&format=pprof")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("GET format=pprof: status %d", presp.StatusCode)
	}
	data, err := io.ReadAll(presp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, total, err := cycleprof.ProfileTotal(data)
	if err != nil {
		t.Fatalf("pprof did not decode: %v", err)
	}
	if samples == 0 || total != row.Report.Cycles {
		t.Fatalf("pprof total = %d over %d samples, want %d (measured cycles)",
			total, samples, row.Report.Cycles)
	}

	// format=text returns collapsed flame stacks.
	tresp, err := http.Get(ts.URL + "/debug/profile?job=" + env.ID + "&format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	flame, err := io.ReadAll(tresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(flame), "gzip;") {
		t.Errorf("flame text does not open with the workload root: %q", string(flame[:min(len(flame), 60)]))
	}

	// /metrics exposes the per-bin fold and the satellite pipeline
	// family; both must conserve (bins sum to the cycle totals).
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	fams, err := stats.ParseProm(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]stats.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	cf, ok := byName["replayd_fetch_cycles_total"]
	if !ok || len(cf.Labeled) != int(pipeline.NumBins) {
		t.Fatalf("replayd_fetch_cycles_total missing or wrong arity: %+v", cf)
	}
	if uint64(cf.Value) != row.Report.Cycles {
		t.Errorf("folded fetch cycles %v != measured %d", cf.Value, row.Report.Cycles)
	}
	if jf := byName["replayd_cycleprof_jobs_total"]; jf.Value != 1 {
		t.Errorf("replayd_cycleprof_jobs_total = %v, want 1", jf.Value)
	}
	pf, ok := byName["replayd_pipeline_fetch_cycles_total"]
	if !ok || len(pf.Labeled) != int(pipeline.NumBins) {
		t.Fatalf("replayd_pipeline_fetch_cycles_total missing or wrong arity: %+v", pf)
	}
	pc := byName["replayd_pipeline_cycles_total"]
	if pf.Value != pc.Value {
		t.Errorf("pipeline fetch-cycle bins sum to %v, cycles total %v", pf.Value, pc.Value)
	}
}

// TestProfileHandlerErrors pins the /debug/profile error surface:
// missing parameter, bad format, unknown job, running job, and a
// finished job of a different experiment.
func TestProfileHandlerErrors(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, Runner: g.run})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := get("/debug/profile"); got != http.StatusBadRequest {
		t.Errorf("missing job param: status %d, want 400", got)
	}
	if got := get("/debug/profile?job=job-1&format=svg"); got != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", got)
	}
	if got := get("/debug/profile?job=job-999999"); got != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", got)
	}

	// A queued/running job answers 409 until it settles.
	body, _ := json.Marshal(api.RunRequest{Experiment: "fig6"})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var env jobEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor(t, "job to start", func() bool { return g.calls.Load() == 1 })
	if got := get("/debug/profile?job=" + env.ID); got != http.StatusConflict {
		t.Errorf("running job: status %d, want 409", got)
	}
	close(g.release)
	waitFor(t, "job to finish", func() bool {
		j, ok := s.lookup(env.ID)
		return ok && j.view().State == api.StateDone
	})
	// Finished, but not a cycles experiment: no profile to serve.
	if got := get("/debug/profile?job=" + env.ID); got != http.StatusNotFound {
		t.Errorf("non-cycles job: status %d, want 404", got)
	}
}

// TestCycleMetricsFold checks the aggregation directly: two folded
// reports sum per bin and the loop rollups accumulate.
func TestCycleMetricsFold(t *testing.T) {
	m := newCycleMetrics()
	var rep sim.CycleReport
	var r cycleprof.Report
	r.Cycles = 40
	r.Bins[pipeline.BinMispred] = 30
	r.Bins[pipeline.BinFrame] = 10
	r.Loops = []cycleprof.LoopCycles{{Header: 0x10, Cycles: 25}}
	rep.Rows = []sim.CycleRow{{Workload: "w", Report: r}}
	m.fold(&rep)
	m.fold(&rep)

	var buf bytes.Buffer
	p := stats.NewProm(&buf)
	m.render(p)
	out := buf.String()
	for _, want := range []string{
		"replayd_cycleprof_jobs_total 2",
		`replayd_fetch_cycles_total{bin="mispred"} 60`,
		`replayd_fetch_cycles_total{bin="frame"} 20`,
		`replayd_fetch_cycles_total{bin="assert"} 0`,
		"replayd_cycleprof_loops_total 2",
		"replayd_cycleprof_loop_cycles_total 50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered metrics missing %q in:\n%s", want, out)
		}
	}
}
