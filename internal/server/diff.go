package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// The ablation-diff front end: POST /v1/diff compares two
// configurations — given either as two run specs or as two finished
// job IDs — by translating the pair into one canonical diff-experiment
// job, so comparisons share the queue, coalescing, memoization and
// cancellation discipline of every other experiment. GET
// /debug/diff?job=ID serves a finished diff job's report.

// diffMetrics counts comparison traffic for /metrics.
type diffMetrics struct {
	jobs         atomic.Uint64 // finished diff jobs folded
	loops        atomic.Uint64 // per-loop delta rows across folded reports
	regressions  atomic.Uint64 // significance-gated regression verdicts
	improvements atomic.Uint64 // significance-gated improvement verdicts
}

// fold merges one finished diff job's report into the counters.
func (m *diffMetrics) fold(rep *sim.DiffReport) {
	m.jobs.Add(1)
	m.loops.Add(uint64(rep.LoopsCompared()))
	m.regressions.Add(uint64(rep.SignificantRegressions()))
	m.improvements.Add(uint64(rep.SignificantImprovements()))
}

// render writes the replayd_diff_* families.
func (m *diffMetrics) render(p *stats.Prom) {
	p.Counter("replayd_diff_jobs_total",
		"Diff-experiment jobs whose comparison reports were folded into these aggregates.",
		float64(m.jobs.Load()))
	p.Counter("replayd_diff_loops_compared_total",
		"Per-loop delta rows produced across diff-experiment jobs (union of both sides' loop partitions).",
		float64(m.loops.Load()))
	p.Counter("replayd_diff_significant_regressions_total",
		"Top-line metric deltas that cleared the 2-sigma noise gate in the regressing direction across diff-experiment jobs.",
		float64(m.regressions.Load()))
	p.Counter("replayd_diff_significant_improvements_total",
		"Top-line metric deltas that cleared the 2-sigma noise gate in the improving direction across diff-experiment jobs.",
		float64(m.improvements.Load()))
}

// diffPostRequest is the POST /v1/diff body: either two run specs
// (cell-style requests describing each side) or two finished job IDs
// whose stored requests supply the sides.
type diffPostRequest struct {
	Base    *api.RunRequest `json:"base,omitempty"`
	Variant *api.RunRequest `json:"variant,omitempty"`
	BaseJob string          `json:"base_job,omitempty"`
	VarJob  string          `json:"var_job,omitempty"`
	// Repeats is the per-side repeat count feeding the significance
	// gate (default 1).
	Repeats int `json:"repeats,omitempty"`
}

// handleDiff translates the comparison into one canonical diff job and
// runs it synchronously (the handleRun discipline: a client disconnect
// releases its interest). Because the pair reduces to a canonical
// RunRequest, two clients asking for the same comparison — however
// they spelled it — coalesce onto one job.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	var dr diffPostRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&dr); err != nil {
		writeErr(w, &errSubmit{status: http.StatusBadRequest, msg: "bad request body: " + err.Error()})
		return
	}
	req, err := s.diffRunRequest(dr)
	if err != nil {
		writeErr(w, err)
		return
	}
	j, coalesced, err := s.submit(r.Context(), req, false)
	if err != nil {
		writeErr(w, err)
		return
	}
	select {
	case <-j.done:
		s.releaseWaiter(j)
		v := j.view()
		v.Coalesced = coalesced
		status := http.StatusOK
		if v.State == api.StateFailed {
			status = http.StatusInternalServerError
		} else if v.State == api.StateCanceled {
			status = http.StatusConflict
		}
		writeJSON(w, status, v)
	case <-r.Context().Done():
		s.releaseWaiter(j)
	}
}

// diffRunRequest folds the two sides into one diff-experiment request:
// the baseline side becomes the request's own Mode/Config/XTrace, the
// variant side becomes the Diff spec.
func (s *Server) diffRunRequest(dr diffPostRequest) (api.RunRequest, error) {
	base, vari := dr.Base, dr.Variant
	switch {
	case dr.BaseJob != "" || dr.VarJob != "":
		if base != nil || vari != nil {
			return api.RunRequest{}, &errSubmit{status: http.StatusBadRequest,
				msg: "give either two run specs (base, variant) or two job IDs (base_job, var_job), not both"}
		}
		var err error
		if base, err = s.jobSpec(dr.BaseJob); err != nil {
			return api.RunRequest{}, err
		}
		if vari, err = s.jobSpec(dr.VarJob); err != nil {
			return api.RunRequest{}, err
		}
	case base == nil || vari == nil:
		return api.RunRequest{}, &errSubmit{status: http.StatusBadRequest,
			msg: "diff needs both sides: base and variant run specs, or base_job and var_job IDs"}
	}

	b, v := base.Canonical(), vari.Canonical()
	if b.Experiment != api.ExpCell || v.Experiment != api.ExpCell {
		return api.RunRequest{}, &errSubmit{status: http.StatusBadRequest,
			msg: "diff sides must be cell-style run specs (a workload/trace under one configuration)"}
	}
	// The sides must run the same work for the per-loop join to mean
	// anything: same workload set unless the variant replays a different
	// trace, and one instruction budget.
	sameWorkloads := len(b.Workloads) == len(v.Workloads)
	if sameWorkloads {
		for i := range b.Workloads {
			if b.Workloads[i] != v.Workloads[i] {
				sameWorkloads = false
				break
			}
		}
	}
	varXTrace := ""
	if v.XTrace != b.XTrace {
		varXTrace = v.XTrace
	}
	if varXTrace == "" && (!sameWorkloads || v.XTrace != b.XTrace) {
		return api.RunRequest{}, &errSubmit{status: http.StatusBadRequest,
			msg: "diff sides must run the same workloads (or the variant must name its own xtrace)"}
	}
	if varXTrace != "" && b.XTrace == "" && len(b.Workloads) != 1 {
		return api.RunRequest{}, &errSubmit{status: http.StatusBadRequest,
			msg: "a trace-variant diff needs a single-source baseline (an xtrace or exactly one workload)"}
	}
	if b.Insts != v.Insts || b.WarmupFrac != v.WarmupFrac {
		return api.RunRequest{}, &errSubmit{status: http.StatusBadRequest,
			msg: "diff sides must share the instruction budget and warmup fraction"}
	}

	req := api.RunRequest{
		Experiment: api.ExpDiff,
		Workloads:  b.Workloads,
		Insts:      b.Insts,
		WarmupFrac: b.WarmupFrac,
		Mode:       b.Mode,
		Config:     b.Config,
		XTrace:     b.XTrace,
		Diff: &api.DiffSpec{
			Mode:    v.Mode,
			Config:  v.Config,
			XTrace:  varXTrace,
			Repeats: dr.Repeats,
		},
	}
	return req, nil
}

// jobSpec recovers a finished job's canonical request for use as one
// side of a comparison.
func (s *Server) jobSpec(id string) (*api.RunRequest, error) {
	j, ok := s.lookup(id)
	if !ok {
		return nil, &errSubmit{status: http.StatusNotFound, msg: fmt.Sprintf("no such job %q", id)}
	}
	req := j.req
	return &req, nil
}

// handleDiffDebug serves a finished diff job's comparison report.
func (s *Server) handleDiffDebug(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("job")
	if id == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing job query parameter"})
		return
	}
	j, ok := s.lookup(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	v := j.view()
	switch v.State {
	case api.StateQueued, api.StateRunning:
		writeJSON(w, http.StatusConflict,
			map[string]string{"error": "job has not finished; diff report not available yet"})
		return
	}
	if v.Result == nil || v.Result.Diff == nil {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": "job has no diff report; submit it with experiment \"diff\""})
		return
	}
	writeJSON(w, http.StatusOK, v.Result.Diff)
}

// runDiffX is the diff Runner for jobs whose baseline or variant names
// a spooled trace: it adapts the trace(s) and compares through
// sim.DiffPair, producing a one-row report.
func (s *Server) runDiffX(ctx context.Context, req api.RunRequest, progress func(api.Event)) (*api.RunResponse, error) {
	d := req.Diff
	repeats := d.Repeats
	if repeats < 1 {
		repeats = 1
	}
	baseMode, err := api.ParseMode(req.Mode)
	if err != nil {
		return nil, err
	}
	varMode := baseMode
	if d.Mode != "" {
		if varMode, err = api.ParseMode(d.Mode); err != nil {
			return nil, err
		}
	}

	base := sim.DiffSide{Label: "baseline", Mode: baseMode, HasMode: true,
		ConfigMod: configMod(req.Config)}
	if req.XTrace != "" {
		ext, err := s.externalRun(req.XTrace)
		if err != nil {
			return nil, err
		}
		base.External = ext
	} else {
		// Validation guarantees exactly one workload here.
		p, err := profilesFor(req)
		if err != nil {
			return nil, err
		}
		base.Profile = &p[0]
	}

	varLabel := d.Label
	if varLabel == "" {
		varLabel = "variant"
	}
	vari := sim.DiffSide{Label: varLabel, Mode: varMode, HasMode: true,
		ConfigMod: configMod(d.Config)}
	if d.XTrace != "" {
		ext, err := s.externalRun(d.XTrace)
		if err != nil {
			return nil, err
		}
		vari.External = ext
	} else {
		vari.Profile, vari.External = base.Profile, base.External
	}

	opts := s.diffOptions(ctx, req, progress, 2*repeats)
	rep, err := sim.DiffPair(ctx, base, vari, opts, repeats)
	if err != nil {
		return nil, err
	}
	s.xmet.runs.Add(1)
	name, class := "", ""
	if base.External != nil {
		name, class = base.External.Name, sim.ExternalClass
	} else {
		name, class = base.Profile.Name, base.Profile.Class
	}
	return &api.RunResponse{Experiment: api.ExpDiff, Diff: &sim.DiffReport{
		Baseline: "baseline",
		Variant:  varLabel,
		Repeats:  repeats,
		Rows:     []sim.DiffRow{{Workload: name, Class: class, Report: *rep}},
	}}, nil
}

// externalRun loads and adapts one spooled trace.
func (s *Server) externalRun(id string) (*sim.ExternalRun, error) {
	t, err := s.spool.Get(id)
	if err != nil {
		return nil, err
	}
	slots, err := t.Slots()
	if err != nil {
		return nil, err
	}
	name := t.Header.Name
	if name == "" {
		name = "xtrace-" + id[:12]
	}
	return &sim.ExternalRun{
		Name:        name,
		Fingerprint: id,
		Slots:       slots,
		Insts:       int(t.Header.Insts),
	}, nil
}

// diffOptions assembles the sim options one diff job shares across its
// runs: budget and warmup from the request, telemetry from the job
// context, and progress notifications against the known run total.
// Deliberately no ConfigMod — a diff's configuration is per-side.
func (s *Server) diffOptions(ctx context.Context, req api.RunRequest, progress func(api.Event), total int) sim.Options {
	opts := sim.Options{
		MaxInsts:   req.Insts,
		WarmupFrac: req.WarmupFrac,
		Telemetry:  telemetry.FromContext(ctx),
	}
	var done atomic.Int64
	opts.Notify = func(r sim.Result) {
		progress(api.Event{
			Msg:   fmt.Sprintf("%s/%s done", r.Workload, r.Mode),
			Done:  int(done.Add(1)),
			Total: total,
		})
	}
	return opts
}
