package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/sim"
	"repro/internal/stats"
)

// postDiff submits one POST /v1/diff body and decodes the job envelope.
func postDiff(t *testing.T, url string, body any) (jobEnvelope, int) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/diff", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env jobEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return env, resp.StatusCode
}

// decodeDiff unmarshals a finished envelope's diff report.
func decodeDiff(t *testing.T, env jobEnvelope) *sim.DiffReport {
	t.Helper()
	var res api.RunResponse
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Diff == nil {
		t.Fatalf("no diff report in result: %s", env.Result)
	}
	return res.Diff
}

// TestDiffEndToEnd runs an ablation comparison (gzip, all passes vs
// optimizer disabled) through POST /v1/diff and checks the report is
// conservation-exact at the wire, that /debug/diff serves the same
// bytes, and that the folded replayd_diff_* families count it.
func TestDiffEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cell := api.RunRequest{Experiment: "cell", Workloads: []string{"gzip"}, Insts: 20_000}
	vari := cell
	vari.Config = &api.ConfigOverrides{
		DisableOpts: []string{"nop", "cp", "ra", "cse", "sf", "asst", "spec"}}
	env, status := postDiff(t, ts.URL, diffPostRequest{Base: &cell, Variant: &vari, Repeats: 2})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, env.Error)
	}
	rep := decodeDiff(t, env)
	if len(rep.Rows) != 1 || rep.Rows[0].Workload != "gzip" {
		t.Fatalf("wrong report shape: %+v", rep)
	}
	if rep.Repeats != 2 {
		t.Errorf("repeats = %d, want 2", rep.Repeats)
	}
	r := &rep.Rows[0].Report
	if r.ResidualUOpsRemoved != 0 || r.ResidualCycles != 0 {
		t.Errorf("unattributed delta: uops=%d cycles=%d", r.ResidualUOpsRemoved, r.ResidualCycles)
	}
	if len(r.Loops) == 0 {
		t.Error("no per-loop delta rows")
	}
	if len(r.Metrics) == 0 {
		t.Fatal("no gated metrics")
	}
	for _, m := range r.Metrics {
		if m.Verdict == "" {
			t.Errorf("metric %s has no verdict", m.Name)
		}
	}

	// /debug/diff serves the same report the job result carries.
	resp, err := http.Get(ts.URL + "/debug/diff?job=" + env.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/diff: status %d", resp.StatusCode)
	}
	var dbg sim.DiffReport
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	direct, _ := json.Marshal(rep)
	served, _ := json.Marshal(&dbg)
	if !bytes.Equal(direct, served) {
		t.Errorf("/debug/diff diverged from the job result:\n got %s\nwant %s", served, direct)
	}

	// The folded metric families count the finished comparison.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	fams, err := stats.ParseProm(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]stats.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if jf := byName["replayd_diff_jobs_total"]; jf.Value != 1 {
		t.Errorf("replayd_diff_jobs_total = %v, want 1", jf.Value)
	}
	if lf := byName["replayd_diff_loops_compared_total"]; int(lf.Value) != len(r.Loops) {
		t.Errorf("replayd_diff_loops_compared_total = %v, want %d", lf.Value, len(r.Loops))
	}
	wantReg := float64(rep.SignificantRegressions())
	wantImp := float64(rep.SignificantImprovements())
	if rf := byName["replayd_diff_significant_regressions_total"]; rf.Value != wantReg {
		t.Errorf("replayd_diff_significant_regressions_total = %v, want %v", rf.Value, wantReg)
	}
	if impf := byName["replayd_diff_significant_improvements_total"]; impf.Value != wantImp {
		t.Errorf("replayd_diff_significant_improvements_total = %v, want %v", impf.Value, wantImp)
	}
}

// TestDiffJobIDForm records two cell jobs, then compares them by ID.
// The ID form must canonicalize to the same diff job as the equivalent
// spec form (so either spelling coalesces onto one comparison).
func TestDiffJobIDForm(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cell := api.RunRequest{Experiment: "cell", Workloads: []string{"access"}, Insts: 20_000}
	vari := cell
	vari.Config = &api.ConfigOverrides{DisableOpts: []string{"cse"}}
	benv, status := postRun(t, ts.URL+"/v1/run", cell)
	if status != http.StatusOK {
		t.Fatalf("base run: status %d (%s)", status, benv.Error)
	}
	venv, status := postRun(t, ts.URL+"/v1/run", vari)
	if status != http.StatusOK {
		t.Fatalf("variant run: status %d (%s)", status, venv.Error)
	}

	env, status := postDiff(t, ts.URL, diffPostRequest{BaseJob: benv.ID, VarJob: venv.ID})
	if status != http.StatusOK {
		t.Fatalf("diff by job ID: status %d (%s)", status, env.Error)
	}
	rep := decodeDiff(t, env)
	r := &rep.Rows[0].Report
	if r.ResidualUOpsRemoved != 0 || r.ResidualCycles != 0 {
		t.Errorf("unattributed delta: uops=%d cycles=%d", r.ResidualUOpsRemoved, r.ResidualCycles)
	}

	// The spec form of the same comparison canonicalizes to the same job
	// key, so concurrent submissions of either spelling would coalesce.
	env2, status := postDiff(t, ts.URL, diffPostRequest{Base: &cell, Variant: &vari})
	if status != http.StatusOK {
		t.Fatalf("diff by spec: status %d (%s)", status, env2.Error)
	}
	j1, ok1 := s.lookup(env.ID)
	j2, ok2 := s.lookup(env2.ID)
	if !ok1 || !ok2 {
		t.Fatal("diff jobs not found")
	}
	if j1.key != j2.key {
		t.Errorf("ID-form and spec-form diffs keyed differently:\n %s\n %s", j1.key, j2.key)
	}
}

// TestDiffValidation pins the /v1/diff and /debug/diff error surfaces.
func TestDiffValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cell := api.RunRequest{Experiment: "cell", Workloads: []string{"gzip"}, Insts: 20_000}
	other := api.RunRequest{Experiment: "cell", Workloads: []string{"access"}, Insts: 20_000}
	shortBudget := api.RunRequest{Experiment: "cell", Workloads: []string{"gzip"}, Insts: 10_000}
	sweep := api.RunRequest{Experiment: "fig6"}

	cases := []struct {
		name string
		body diffPostRequest
		want int
	}{
		{"no sides", diffPostRequest{}, http.StatusBadRequest},
		{"one side", diffPostRequest{Base: &cell}, http.StatusBadRequest},
		{"mixed forms", diffPostRequest{Base: &cell, Variant: &cell, BaseJob: "job-1"}, http.StatusBadRequest},
		{"unknown job", diffPostRequest{BaseJob: "job-999999", VarJob: "job-999998"}, http.StatusNotFound},
		{"non-cell side", diffPostRequest{Base: &sweep, Variant: &cell}, http.StatusBadRequest},
		{"different workloads", diffPostRequest{Base: &cell, Variant: &other}, http.StatusBadRequest},
		{"different budgets", diffPostRequest{Base: &cell, Variant: &shortBudget}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		env, status := postDiff(t, ts.URL, tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.want, env.Error)
		}
	}

	// Unknown fields in the body are rejected, not ignored.
	resp, err := http.Post(ts.URL+"/v1/diff", "application/json",
		strings.NewReader(`{"bsae":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := get("/debug/diff"); got != http.StatusBadRequest {
		t.Errorf("missing job param: status %d, want 400", got)
	}
	if got := get("/debug/diff?job=job-999999"); got != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", got)
	}
	// A finished non-diff job has no report to serve.
	env, status := postRun(t, ts.URL+"/v1/run", cell)
	if status != http.StatusOK {
		t.Fatalf("cell run: status %d (%s)", status, env.Error)
	}
	if got := get("/debug/diff?job=" + env.ID); got != http.StatusNotFound {
		t.Errorf("non-diff job: status %d, want 404", got)
	}
}

// TestDiffXTraceVsSyntheticClone uploads a captured gzip trace and
// compares the upload against its own workload source — the paper's
// "upload vs synthetic clone" check. Replaying the exported trace is
// bit-exact with the direct run, so every per-loop delta and both
// residuals must be zero and every verdict noise.
func TestDiffXTraceVsSyntheticClone(t *testing.T) {
	const budget = 10_000
	s := New(Config{Workers: 2, SpoolDir: t.TempDir()})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := exportGzip(t, budget)
	out, status := upload(t, ts.URL, body)
	if status != http.StatusCreated {
		t.Fatalf("upload: %d %v", status, out)
	}
	id := out["id"].(string)

	base := api.RunRequest{Experiment: "cell", Workloads: []string{"gzip"}, Insts: budget}
	vari := api.RunRequest{Experiment: "cell", XTrace: id, Insts: budget}
	env, status := postDiff(t, ts.URL, diffPostRequest{Base: &base, Variant: &vari})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, env.Error)
	}
	rep := decodeDiff(t, env)
	if len(rep.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rep.Rows))
	}
	r := &rep.Rows[0].Report
	if r.ResidualUOpsRemoved != 0 || r.ResidualCycles != 0 {
		t.Errorf("unattributed delta: uops=%d cycles=%d", r.ResidualUOpsRemoved, r.ResidualCycles)
	}
	for _, ld := range r.Loops {
		if ld.DCycles != 0 || ld.DOptRemoved != 0 || ld.DUOpsRetired != 0 {
			t.Errorf("loop %#x: non-zero delta against the clone: %+v", ld.Header, ld)
		}
	}
	for _, m := range r.Metrics {
		if m.Delta != 0 {
			t.Errorf("metric %s: delta %v against a bit-exact clone", m.Name, m.Delta)
		}
	}
	if r.SignificantRegressions != 0 || r.SignificantImprovements != 0 {
		t.Errorf("clone diff claims significance: +%d -%d",
			r.SignificantImprovements, r.SignificantRegressions)
	}
}
