package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/logtest"
)

// TestRequestScopedLogging: a request travels through submission,
// execution and completion with every structured log line carrying the
// job ID and coalescing key, and the same job ID appears on every line
// of the NDJSON progress stream — so logs and progress join on it.
func TestRequestScopedLogging(t *testing.T) {
	h := logtest.NewHandler()
	runner := func(ctx context.Context, req api.RunRequest, progress func(api.Event)) (*api.RunResponse, error) {
		progress(api.Event{Msg: "halfway", Done: 1, Total: 2})
		return &api.RunResponse{Experiment: req.Experiment}, nil
	}
	s := New(Config{Workers: 1, Runner: runner, Logger: slog.New(h)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	env, status := postRun(t, ts.URL+"/v1/run", api.RunRequest{Experiment: "summary"})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, env.Error)
	}
	if env.ID == "" {
		t.Fatal("no job id in response")
	}

	// Every lifecycle line must carry the job's ID and coalescing key.
	want := []string{"job accepted", "job started", "job finished"}
	for _, msg := range want {
		recs := h.ByMessage(msg)
		if len(recs) != 1 {
			t.Fatalf("%q logged %d times, want 1", msg, len(recs))
		}
		if !recs[0].Has("job_id", env.ID) {
			t.Errorf("%q record lacks job_id=%s: %v", msg, env.ID, recs[0].Attrs)
		}
		if v, ok := recs[0].Attrs["key"]; !ok || v == "" {
			t.Errorf("%q record lacks the coalescing key: %v", msg, recs[0].Attrs)
		}
	}
	fin := h.ByMessage("job finished")[0]
	if !fin.Has("outcome", api.StateDone) {
		t.Errorf("finish outcome = %v, want done", fin.Attrs["outcome"])
	}
	if _, ok := fin.Attrs["queue_wait_ms"]; !ok {
		t.Errorf("finish record lacks queue_wait_ms: %v", fin.Attrs)
	}

	// The NDJSON progress stream must carry the same job ID on every
	// event, including runner progress lines.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + env.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	events := 0
	sawProgress := false
	for sc.Scan() {
		var e api.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if e.JobID != env.ID {
			t.Errorf("event %d carries job %q, want %q", e.Seq, e.JobID, env.ID)
		}
		if e.Msg == "halfway" {
			sawProgress = true
		}
		events++
	}
	if events == 0 || !sawProgress {
		t.Fatalf("streamed %d events (progress seen: %v)", events, sawProgress)
	}

	// A duplicate of a finished job is a fresh job; a duplicate of an
	// in-flight one logs a coalescing line with the same job id.
	g := newGatedRunner()
	s2 := New(Config{Workers: 1, Runner: g.run, Logger: slog.New(h)})
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	first := make(chan jobEnvelope, 1)
	go func() {
		env, _ := postRunQuiet(ts2.URL+"/v1/run", api.RunRequest{Experiment: "summary"})
		first <- env
	}()
	waitFor(t, "first job running", func() bool { return g.calls.Load() == 1 })
	env2, status := postRun(t, ts2.URL+"/v1/jobs", api.RunRequest{Experiment: "summary"})
	if status != http.StatusAccepted || !env2.Coalesced {
		t.Fatalf("duplicate submit: status %d coalesced %v", status, env2.Coalesced)
	}
	recs := h.ByMessage("request coalesced onto in-flight job")
	if len(recs) != 1 || !recs[0].Has("job_id", env2.ID) {
		t.Fatalf("coalescing log records = %+v, want one with job_id=%s", recs, env2.ID)
	}
	close(g.release)
	<-first
}

// postRunQuiet is postRun without the testing.T plumbing, for use in
// goroutines.
func postRunQuiet(url string, req api.RunRequest) (jobEnvelope, int) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return jobEnvelope{}, 0
	}
	defer resp.Body.Close()
	var env jobEnvelope
	_ = json.NewDecoder(resp.Body).Decode(&env)
	return env, resp.StatusCode
}

// TestQueueFullLoggedWithRetryAfter: a submission rejected by the
// bounded queue is logged (not silently dropped) and the 503 carries a
// Retry-After hint derived from the backlog.
func TestQueueFullLoggedWithRetryAfter(t *testing.T) {
	h := logtest.NewHandler()
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 1, Runner: g.run, Logger: slog.New(h)})
	defer func() {
		close(g.release)
		s.Shutdown(context.Background())
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Fill the worker, then the queue: distinct keys so nothing
	// coalesces. Async submissions keep the jobs alive without waiters.
	if _, status := postRun(t, ts.URL+"/v1/jobs", api.RunRequest{Experiment: "fig6"}); status != http.StatusAccepted {
		t.Fatalf("first submit: status %d", status)
	}
	waitFor(t, "worker occupied", func() bool { return g.calls.Load() == 1 })
	if _, status := postRun(t, ts.URL+"/v1/jobs", api.RunRequest{Experiment: "fig9"}); status != http.StatusAccepted {
		t.Fatalf("second submit: status %d", status)
	}

	body, _ := json.Marshal(api.RunRequest{Experiment: "table3"})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("503 carries no Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 300 {
		t.Fatalf("Retry-After = %q, want an integer in [1,300]", ra)
	}

	recs := h.ByMessage("job queue full, rejecting request")
	if len(recs) != 1 {
		t.Fatalf("rejection logged %d times, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Level != slog.LevelWarn {
		t.Errorf("rejection level = %v, want WARN", rec.Level)
	}
	for _, attr := range []string{"key", "queue_depth", "retry_after_s"} {
		if _, ok := rec.Attrs[attr]; !ok {
			t.Errorf("rejection record lacks %s: %v", attr, rec.Attrs)
		}
	}
}

// TestMetricsRuntimeAndSLO: /metrics exposes the Go runtime gauges and
// the sliding-window request-latency summary after traffic has flowed.
func TestMetricsRuntimeAndSLO(t *testing.T) {
	runner := func(ctx context.Context, req api.RunRequest, progress func(api.Event)) (*api.RunResponse, error) {
		return &api.RunResponse{Experiment: req.Experiment}, nil
	}
	s := New(Config{Workers: 1, Runner: runner})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, status := postRun(t, ts.URL+"/v1/run", api.RunRequest{Experiment: "summary"}); status != http.StatusOK {
		t.Fatalf("run status %d", status)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	out := sb.String()
	for _, want := range []string{
		"replayd_go_heap_objects_bytes",
		"replayd_go_goroutines",
		"replayd_go_gc_pause_seconds_p99",
		"replayd_go_sched_latency_seconds_p50",
		"# TYPE replayd_http_request_seconds histogram",
		`replayd_http_request_seconds_bucket{le="+Inf"}`,
		"replayd_http_request_seconds_count",
		"# TYPE replayd_http_request_window_seconds summary",
		`replayd_http_request_window_seconds{quantile="0.99"}`,
		"replayd_http_request_window_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The /v1/run request above must have fed both the since-boot
	// histogram and the SLO window.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "replayd_http_request_seconds_count ") ||
			strings.HasPrefix(line, "replayd_http_request_window_seconds_count ") {
			n, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil || n < 1 {
				t.Errorf("latency sample count = %q, want >= 1", line)
			}
		}
	}
}
