package server

import (
	"math"
	"net/http"
	"sync/atomic"

	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
)

// serviceMetrics are replayd's own counters; the /metrics endpoint
// combines them with the sim layer's cache counters and the aggregate
// pipeline statistics of every run this process executed.
type serviceMetrics struct {
	requests     atomic.Uint64 // submissions, coalesced ones included
	coalesced    atomic.Uint64 // submissions served by an in-flight job
	rejected     atomic.Uint64 // queue-full rejections
	jobsDone     atomic.Uint64
	jobsFailed   atomic.Uint64
	jobsCanceled atomic.Uint64
	busyWorkers  atomic.Int64
	// execEWMA holds the float64 bits of an exponentially weighted
	// moving average of successful job execution seconds; the queue-full
	// Retry-After hint is derived from it.
	execEWMA atomic.Uint64
}

// observeExec folds one completed execution into the moving average.
// The read-modify-write retries on contention, so concurrent workers
// never drop each other's updates.
func (m *serviceMetrics) observeExec(seconds float64) {
	const alpha = 0.3
	for {
		old := m.execEWMA.Load()
		prev := math.Float64frombits(old)
		next := seconds
		if prev > 0 {
			next = alpha*seconds + (1-alpha)*prev
		}
		if m.execEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// avgExecSeconds returns the current execution-time estimate (0 before
// any job completed).
func (m *serviceMetrics) avgExecSeconds() float64 {
	return math.Float64frombits(m.execEWMA.Load())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued := s.queuedJobs
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := stats.NewProm(w)

	p.Counter("replayd_requests_total", "Experiment submissions accepted for coalescing or queueing.", float64(s.met.requests.Load()))
	p.Counter("replayd_coalesced_hits_total", "Submissions attached to an already in-flight identical job.", float64(s.met.coalesced.Load()))
	p.Counter("replayd_rejected_total", "Submissions rejected because the job queue was full.", float64(s.met.rejected.Load()))
	p.Counter("replayd_jobs_done_total", "Jobs finished successfully.", float64(s.met.jobsDone.Load()))
	p.Counter("replayd_jobs_failed_total", "Jobs finished with an error.", float64(s.met.jobsFailed.Load()))
	p.Counter("replayd_jobs_canceled_total", "Jobs canceled before completion.", float64(s.met.jobsCanceled.Load()))
	p.Gauge("replayd_queue_depth", "Jobs accepted but not yet running.", float64(queued))
	p.Gauge("replayd_queue_capacity", "Bound on jobs accepted but not yet running.", float64(s.cfg.QueueDepth))
	p.Gauge("replayd_workers", "Size of the job worker pool.", float64(s.cfg.Workers))
	p.Gauge("replayd_workers_busy", "Workers currently executing a job.", float64(s.met.busyWorkers.Load()))

	// External-trace upload front end: traffic counters plus spool
	// occupancy (zero gauges when no spool is configured).
	p.Counter("replayd_xtrace_uploads_total", "External traces accepted by POST /v1/traces (deduplicated re-uploads included).", float64(s.xmet.uploads.Load()))
	p.Counter("replayd_xtrace_upload_bytes_total", "Canonical bytes of accepted external-trace uploads.", float64(s.xmet.uploadBytes.Load()))
	p.Counter("replayd_xtrace_decode_errors_total", "Uploads rejected by the trace decoder.", float64(s.xmet.decodeErrors.Load()))
	p.Counter("replayd_xtrace_rejected_oversize_total", "Uploads rejected for exceeding the body cap or spool budget.", float64(s.xmet.oversize.Load()))
	p.Counter("replayd_xtrace_runs_total", "Jobs executed against a spooled external trace.", float64(s.xmet.runs.Load()))
	var spoolEntries int
	var spoolBytes, spoolLimit int64
	var spoolEvictions uint64
	if s.spool != nil {
		spoolEntries, spoolBytes, spoolLimit, spoolEvictions = s.spool.Stats()
	}
	p.Gauge("replayd_xtrace_spool_entries", "External traces currently spooled.", float64(spoolEntries))
	p.Gauge("replayd_xtrace_spool_bytes", "Disk residency of the external-trace spool.", float64(spoolBytes))
	p.Gauge("replayd_xtrace_spool_byte_limit", "Byte budget of the external-trace spool.", float64(spoolLimit))
	p.Counter("replayd_xtrace_spool_evictions_total", "Spooled traces evicted by the byte budget.", float64(spoolEvictions))

	m := sim.SnapshotMetrics()
	p.Counter("replayd_sim_runs_executed_total", "Simulations executed to completion (memo misses).", float64(m.RunsExecuted))
	p.Counter("replayd_sim_memo_hits_total", "Runs served from the run memo.", float64(m.MemoHits))
	p.Counter("replayd_sim_capture_builds_total", "Slot streams interpreted into shared captures.", float64(m.CaptureBuilds))
	p.Counter("replayd_sim_capture_hits_total", "Capture lookups served from a live recording.", float64(m.CaptureHits))
	p.Gauge("replayd_sim_memo_entries", "Run-memo occupancy.", float64(m.MemoEntries))
	p.Gauge("replayd_sim_memo_entry_limit", "Run-memo entry budget.", float64(m.MemoLimit))
	p.Gauge("replayd_sim_capture_entries", "Capture-cache occupancy.", float64(m.CaptureEntries))
	p.Gauge("replayd_sim_capture_bytes", "Approximate capture-cache residency in bytes.", float64(m.CaptureBytes))
	p.Gauge("replayd_sim_capture_entry_limit", "Capture-cache entry budget.", float64(m.CaptureEntryLimit))
	p.Gauge("replayd_sim_capture_byte_limit", "Capture-cache byte budget.", float64(m.CaptureByteLimit))

	// Aggregate pipeline statistics over every executed run, so one
	// scrape shows both how busy the service is and what the simulated
	// machines did.
	agg := &m.Aggregate
	p.Counter("replayd_pipeline_cycles_total", "Simulated cycles across executed runs.", float64(agg.Cycles))
	p.Counter("replayd_pipeline_x86_retired_total", "Retired x86 instructions across executed runs.", float64(agg.X86Retired))
	p.Counter("replayd_pipeline_uops_retired_total", "Retired micro-ops across executed runs.", float64(agg.UOpsRetired))
	p.Counter("replayd_pipeline_uops_baseline_total", "Baseline (unoptimized) micro-ops across executed runs.", float64(agg.UOpsBaseline))
	p.Counter("replayd_pipeline_loads_retired_total", "Retired loads across executed runs.", float64(agg.LoadsRetired))
	p.Counter("replayd_pipeline_loads_baseline_total", "Baseline loads across executed runs.", float64(agg.LoadsBaseline))
	p.Counter("replayd_pipeline_mispredicts_total", "Branch mispredictions across executed runs.", float64(agg.Mispredicts))
	p.Counter("replayd_pipeline_frame_fetches_total", "Frame-cache fetches across executed runs.", float64(agg.FrameFetches))
	p.Counter("replayd_pipeline_frame_commits_total", "Committed frames across executed runs.", float64(agg.FrameCommits))
	p.Counter("replayd_pipeline_frame_aborts_total", "Aborted frames across executed runs.", float64(agg.FrameAborts))
	p.Counter("replayd_pipeline_frames_constructed_total", "Frames constructed across executed runs.", float64(agg.FramesConstructed))
	p.Counter("replayd_pipeline_frames_optimized_total", "Frames optimized across executed runs.", float64(agg.FramesOptimized))

	// Fetch-cycle accounting (the paper's Figure 7/8 bins): every
	// simulated cycle lands in exactly one bin, so the per-bin samples
	// sum to replayd_pipeline_cycles_total.
	binSamples := make([]stats.LabeledSample, pipeline.NumBins)
	for i := range binSamples {
		binSamples[i] = stats.LabeledSample{Label: pipeline.Bin(i).String(), Value: float64(agg.Bins[i])}
	}
	p.LabeledCounter("replayd_pipeline_fetch_cycles_total",
		"Simulated fetch cycles per fetch bin across executed runs; bins sum to replayd_pipeline_cycles_total.",
		"bin", binSamples)

	// Loop-structure reuse attribution, folded from finished reuse-
	// experiment jobs: per-depth-bucket counters plus loop-shape
	// histograms whose exemplars point at contributing jobs' traces.
	s.rmet.render(p)

	// Guest-cycle profiler aggregates, folded from finished cycles-
	// experiment jobs.
	s.cmet.render(p)

	// Ablation-diff comparison counters, folded from finished diff-
	// experiment jobs.
	s.dmet.render(p)

	// Frame-lifecycle histograms from the telemetry layer: every job
	// (traced or not) observes into the same histogram set. Memoized
	// runs execute nothing and so contribute no samples.
	for _, h := range s.hist.All() {
		p.Histogram(h.Snapshot())
	}

	// Since-boot request-latency histogram: its buckets carry OpenMetrics
	// exemplars stamping the trace ID of a recent request per bucket, so
	// a latency outlier on a dashboard links straight to its span trace
	// in /debug/traces.
	p.Histogram(s.httpHist.Snapshot())

	// Rolling SLO view: API request latency quantiles over the sliding
	// window, exposed as a summary so dashboards read "p99 over the last
	// five minutes" rather than a since-boot aggregate.
	_, qv := s.slo.Quantiles(stats.DefaultSLOQuantiles...)
	count, sum := s.slo.Sum()
	qs := make([]stats.SummaryQuantile, len(qv))
	for i, q := range stats.DefaultSLOQuantiles {
		qs[i] = stats.SummaryQuantile{Q: q, V: qv[i]}
	}
	p.Summary("replayd_http_request_window_seconds",
		"API (/v1/*) request latency over the sliding SLO window.",
		qs, sum, count)

	// Tail-sampler accounting for the span-trace store.
	tst := s.traces.Stats()
	p.Counter("replayd_traces_kept_total", "Completed traces retained by the tail sampler.", float64(tst.Kept))
	p.Counter("replayd_traces_kept_error_total", "Traces retained because a span errored.", float64(tst.KeptError))
	p.Counter("replayd_traces_kept_slow_total", "Traces retained because the root span met the slow threshold.", float64(tst.KeptSlow))
	p.Counter("replayd_traces_dropped_total", "Completed traces dropped by the probabilistic gate.", float64(tst.Dropped))
	p.Counter("replayd_traces_evicted_total", "Retained traces evicted by the store's capacity bound.", float64(tst.Evicted))
	p.Gauge("replayd_traces_stored", "Traces currently queryable at /debug/traces.", float64(s.traces.Len()))
	p.Gauge("replayd_traces_active", "Traces still assembling (a request or its job is in flight).", float64(s.tracer.ActiveTraces()))
	p.Gauge("replayd_job_exec_seconds_avg",
		"Moving average of successful job execution time.",
		s.met.avgExecSeconds())

	// Go runtime health: heap, GC pauses, goroutines, scheduler latency.
	p.Runtime("replayd", stats.ReadRuntime())
}
