package server

import (
	"math"
	"sync"
	"testing"
)

// TestObserveExecConcurrent: the EWMA applies every concurrent update
// exactly once. All workers observe the same value, so the updates
// commute and the final average is exactly the serial composition —
// any lost update under the old load/store race would fall short.
func TestObserveExecConcurrent(t *testing.T) {
	const workers = 64
	var m serviceMetrics
	m.execEWMA.Store(math.Float64bits(1.0))

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.observeExec(2.0)
		}()
	}
	wg.Wait()

	want := 1.0
	for i := 0; i < workers; i++ {
		want = 0.3*2.0 + 0.7*want
	}
	if got := m.avgExecSeconds(); got != want {
		t.Errorf("EWMA after %d concurrent updates = %v, want exactly %v (updates dropped?)", workers, got, want)
	}
}

// TestObserveExecSeed: the first observation seeds the average directly.
func TestObserveExecSeed(t *testing.T) {
	var m serviceMetrics
	m.observeExec(4.0)
	if got := m.avgExecSeconds(); got != 4.0 {
		t.Errorf("first observation = %v, want 4.0", got)
	}
	m.observeExec(2.0)
	if got, want := m.avgExecSeconds(), 0.3*2.0+0.7*4.0; got != want {
		t.Errorf("second observation = %v, want %v", got, want)
	}
}
