package server

import (
	"net/http"
	"sync"

	"repro/internal/api"
	"repro/internal/reuse"
	"repro/internal/sim"
	"repro/internal/stats"
)

// reuseMetrics accumulates reuse-experiment results across finished
// jobs for the /metrics exposition: per-loop-depth-bucket counters plus
// loop-shape histograms whose bucket exemplars carry the trace ID of a
// recent contributing job, so a shift visible on a dashboard resolves
// to a stored trace (and from there to the job) in one hop. Memoization
// never skips reuse runs — reuse attribution forces execution — so
// every reuse job contributes samples.
type reuseMetrics struct {
	mu        sync.Mutex
	jobs      uint64
	loops     uint64
	entries   uint64
	backEdges uint64
	buckets   [reuse.NumBuckets]reuse.BucketStat

	// tripHist and uopsHist observe each workload's heaviest loops
	// (Report.TopLoops), not every detected loop: the per-workload
	// report already caps at reuse.TopLoopCap, and the heavy tail is
	// what capacity planning for the frame cache cares about.
	tripHist *stats.Histogram
	uopsHist *stats.Histogram
}

func newReuseMetrics() *reuseMetrics {
	return &reuseMetrics{
		tripHist: stats.NewHistogram("replayd_reuse_loop_trip_count",
			"Estimated trip count of each heaviest-by-uops loop per reuse-experiment workload; bucket exemplars carry the trace ID of a recent contributing job.",
			2, 4, 8, 16, 32, 64, 128, 256, 1024),
		uopsHist: stats.NewHistogram("replayd_reuse_loop_uops",
			"Retired micro-ops attributed to each heaviest loop per reuse-experiment workload; bucket exemplars carry the trace ID of a recent contributing job.",
			100, 1000, 10_000, 100_000, 1_000_000, 10_000_000),
	}
}

// fold merges one finished reuse job's report into the aggregates.
func (m *reuseMetrics) fold(rep *sim.ReuseReport, traceID string) {
	m.mu.Lock()
	m.jobs++
	for _, row := range rep.Rows {
		m.loops += uint64(row.Report.Loops)
		m.entries += row.Report.LoopEntries
		m.backEdges += row.Report.BackEdges
		for i := range row.Report.Buckets {
			m.buckets[i].Add(&row.Report.Buckets[i].BucketStat)
		}
	}
	m.mu.Unlock()
	for _, row := range rep.Rows {
		for _, l := range row.Report.TopLoops {
			m.tripHist.ObserveEx(uint64(l.TripCount()), traceID)
			m.uopsHist.ObserveEx(l.UOps, traceID)
		}
	}
}

// render writes the replayd_reuse_* families.
func (m *reuseMetrics) render(p *stats.Prom) {
	m.mu.Lock()
	jobs, loops, entries, backEdges := m.jobs, m.loops, m.entries, m.backEdges
	buckets := m.buckets
	m.mu.Unlock()

	p.Counter("replayd_reuse_jobs_total", "Reuse-experiment jobs whose reports were folded into these aggregates.", float64(jobs))
	p.Counter("replayd_reuse_loops_total", "Distinct loops detected across reuse-experiment runs.", float64(loops))
	p.Counter("replayd_reuse_loop_entries_total", "Loop activations (entries from outside the loop body) across reuse-experiment runs.", float64(entries))
	p.Counter("replayd_reuse_back_edges_total", "Taken backward control transfers recognized as loop back edges across reuse-experiment runs.", float64(backEdges))

	sample := func(f func(b *reuse.BucketStat) uint64) []stats.LabeledSample {
		out := make([]stats.LabeledSample, reuse.NumBuckets)
		for i := range buckets {
			out[i] = stats.LabeledSample{Label: reuse.BucketLabel(i), Value: float64(f(&buckets[i]))}
		}
		return out
	}
	p.LabeledCounter("replayd_reuse_uops_total",
		"Baseline retired micro-ops attributed to each loop-depth bucket; summed over buckets this equals replayd_pipeline_uops_baseline_total restricted to reuse runs.",
		"bucket", sample(func(b *reuse.BucketStat) uint64 { return b.UOps }))
	p.LabeledCounter("replayd_reuse_covered_uops_total",
		"Micro-ops retired from frames (reuse-covered work) attributed to each loop-depth bucket.",
		"bucket", sample(func(b *reuse.BucketStat) uint64 { return b.Covered }))
	p.LabeledCounter("replayd_reuse_frame_builds_total",
		"Frames constructed while execution sat in each loop-depth bucket.",
		"bucket", sample(func(b *reuse.BucketStat) uint64 { return b.FrameBuilds }))
	p.LabeledCounter("replayd_reuse_frame_hits_total",
		"Frame-cache fetches while execution sat in each loop-depth bucket.",
		"bucket", sample(func(b *reuse.BucketStat) uint64 { return b.FrameHits }))
	p.LabeledCounter("replayd_reuse_opt_removed_total",
		"Micro-ops removed by the frame optimizer, attributed to the loop-depth bucket live when the frame finished optimizing.",
		"bucket", sample(func(b *reuse.BucketStat) uint64 { return b.OptRemoved }))
	p.LabeledCounter("replayd_reuse_evictions_total",
		"Frame/trace-cache evictions while execution sat in each loop-depth bucket.",
		"bucket", sample(func(b *reuse.BucketStat) uint64 { return b.Evictions }))

	p.Histogram(m.tripHist.Snapshot())
	p.Histogram(m.uopsHist.Snapshot())
}

// handleReuse serves a finished reuse job's report — the per-workload
// loop decomposition plus the ranked representative subset — as JSON.
// The report exists only on jobs submitted with experiment "reuse".
func (s *Server) handleReuse(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("job")
	if id == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing job query parameter"})
		return
	}
	j, ok := s.lookup(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	v := j.view()
	switch v.State {
	case api.StateQueued, api.StateRunning:
		writeJSON(w, http.StatusConflict,
			map[string]string{"error": "job has not finished; reuse report not available yet"})
		return
	}
	if v.Result == nil || v.Result.Reuse == nil {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": "job has no reuse report; submit it with experiment \"reuse\""})
		return
	}
	writeJSON(w, http.StatusOK, v.Result.Reuse)
}
