package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/reuse"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestReuseEndToEnd runs a reuse job through the full HTTP surface and
// checks all three reuse views agree: the job result, the /debug/reuse
// report, and the replayd_reuse_* metric families on /metrics.
func TestReuseEndToEnd(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	env, status := postRun(t, ts.URL+"/v1/run", api.RunRequest{
		Experiment: "reuse", Workloads: []string{"gzip"}, Insts: 20_000})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, env.Error)
	}
	var res api.RunResponse
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Reuse == nil || len(res.Reuse.Rows) != 1 {
		t.Fatalf("reuse result missing or wrong shape: %+v", res.Reuse)
	}
	row := res.Reuse.Rows[0]
	if row.Workload != "gzip" || row.Report.Loops == 0 || row.Report.TotalUOps == 0 {
		t.Fatalf("implausible reuse row: %+v", row)
	}
	if len(res.Reuse.Subset) == 0 {
		t.Fatal("empty representative subset")
	}

	// /debug/reuse serves the same report the job result carries.
	resp, err := http.Get(ts.URL + "/debug/reuse?job=" + env.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/reuse: status %d", resp.StatusCode)
	}
	var dbg sim.ReuseReport
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	direct, _ := json.Marshal(res.Reuse)
	served, _ := json.Marshal(&dbg)
	if !bytes.Equal(direct, served) {
		t.Errorf("/debug/reuse diverged from the job result:\n got %s\nwant %s", served, direct)
	}

	// /metrics exposes the folded aggregates with HELP text, per-bucket
	// labels, and the loop-shape histograms.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	b, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	for _, want := range []string{
		"# HELP replayd_reuse_jobs_total",
		"replayd_reuse_jobs_total 1",
		"# HELP replayd_reuse_loops_total",
		"# HELP replayd_reuse_uops_total",
		`replayd_reuse_uops_total{bucket="straight"}`,
		`replayd_reuse_uops_total{bucket="loop-d1"}`,
		`replayd_reuse_frame_hits_total{bucket=`,
		`replayd_reuse_opt_removed_total{bucket=`,
		"# TYPE replayd_reuse_loop_trip_count histogram",
		"replayd_reuse_loop_trip_count_count",
		"# TYPE replayd_reuse_loop_uops histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The per-bucket uop counters must sum to the report totals (the
	// conservation invariant surviving the metrics fold).
	var total uint64
	for i := range row.Report.Buckets {
		total += row.Report.Buckets[i].UOps
	}
	if total != row.Report.TotalUOps {
		t.Errorf("bucket uop sum %d != report total %d", total, row.Report.TotalUOps)
	}
}

// TestReuseHandlerErrors pins the /debug/reuse error surface: missing
// parameter, unknown job, running job, and a finished job of a
// different experiment.
func TestReuseHandlerErrors(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, Runner: g.run})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := get("/debug/reuse"); got != http.StatusBadRequest {
		t.Errorf("missing job param: status %d, want 400", got)
	}
	if got := get("/debug/reuse?job=job-999999"); got != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", got)
	}

	// A queued/running job answers 409 until it settles.
	body, _ := json.Marshal(api.RunRequest{Experiment: "fig6"})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var env jobEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor(t, "job to start", func() bool { return g.calls.Load() == 1 })
	if got := get("/debug/reuse?job=" + env.ID); got != http.StatusConflict {
		t.Errorf("running job: status %d, want 409", got)
	}
	close(g.release)
	waitFor(t, "job to finish", func() bool {
		j, ok := s.lookup(env.ID)
		return ok && j.view().State == api.StateDone
	})
	// Finished, but not a reuse experiment: no report to serve.
	if got := get("/debug/reuse?job=" + env.ID); got != http.StatusNotFound {
		t.Errorf("non-reuse job: status %d, want 404", got)
	}
}

// TestReuseMetricsFold checks the metrics aggregation directly: two
// folded reports sum, and histogram exemplars carry the job trace ID.
func TestReuseMetricsFold(t *testing.T) {
	m := newReuseMetrics()
	rep := &sim.ReuseReport{Rows: []sim.ReuseRow{{
		Workload: "w",
		Report: reuse.Report{
			Buckets: []reuse.BucketReport{
				{Label: "straight", BucketStat: reuse.BucketStat{UOps: 10, FrameHits: 1}},
				{Label: "loop-d1", BucketStat: reuse.BucketStat{UOps: 30, FrameHits: 4}},
			},
			Loops:       2,
			LoopEntries: 3,
			BackEdges:   11,
			TopLoops:    []reuse.Loop{{Header: 0x10, Entries: 1, BackEdges: 9, UOps: 500}},
		},
	}}}
	m.fold(rep, "abc123")
	m.fold(rep, "def456")

	var buf bytes.Buffer
	// Render through a real Prom writer so label quoting is exercised.
	m.render(stats.NewProm(&buf))
	out := buf.String()
	for _, want := range []string{
		"replayd_reuse_jobs_total 2",
		"replayd_reuse_loops_total 4",
		"replayd_reuse_back_edges_total 22",
		`replayd_reuse_uops_total{bucket="straight"} 20`,
		`replayd_reuse_uops_total{bucket="loop-d1"} 60`,
		`replayd_reuse_frame_hits_total{bucket="loop-d1"} 8`,
		`trace_id="def456"`, // last-fold exemplar on the trip histogram
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered metrics missing %q in:\n%s", want, out)
		}
	}
}
