package server

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// SimRunner executes a canonicalized request against the in-process
// simulation driver, streaming one progress event per completed
// (workload, mode) run. It is the production Runner.
func SimRunner(ctx context.Context, req api.RunRequest, progress func(api.Event)) (*api.RunResponse, error) {
	profiles, err := profilesFor(req)
	if err != nil {
		return nil, err
	}
	opts := sim.Options{
		MaxInsts:   req.Insts,
		WarmupFrac: req.WarmupFrac,
		ConfigMod:  configMod(req.Config),
		// The server threads the job's collector (global histogram-only,
		// or the per-job trace collector) through the context.
		Telemetry: telemetry.FromContext(ctx),
	}
	total := runCount(req, len(profiles))
	var done atomic.Int64
	opts.Notify = func(r sim.Result) {
		progress(api.Event{
			Msg:   fmt.Sprintf("%s/%s done", r.Workload, r.Mode),
			Done:  int(done.Add(1)),
			Total: total,
		})
	}

	res := &api.RunResponse{Experiment: req.Experiment}
	switch req.Experiment {
	case api.ExpFig6:
		res.Fig6, err = sim.Fig6(ctx, profiles, opts)
	case api.ExpFig7, api.ExpFig8:
		res.Breakdown, err = sim.CycleBreakdown(ctx, profiles, opts)
	case api.ExpTable3:
		res.Table3, err = sim.Table3(ctx, profiles, opts)
	case api.ExpFig9:
		res.Fig9, err = sim.Fig9(ctx, profiles, opts)
	case api.ExpFig10:
		res.Fig10, err = sim.Fig10(ctx, opts)
	case api.ExpSummary:
		res.Fig6, err = sim.Fig6(ctx, profiles, opts)
		if err == nil {
			res.Table3, err = sim.Table3(ctx, profiles, opts)
		}
	case api.ExpCell:
		mode, merr := api.ParseMode(req.Mode)
		if merr != nil {
			return nil, merr
		}
		res.Cells, err = runCells(ctx, profiles, mode, opts)
	case api.ExpAttr:
		res.Attr, err = sim.Attribution(ctx, profiles, opts)
	case api.ExpReuse:
		res.Reuse, err = sim.Reuse(ctx, profiles, opts)
	case api.ExpCycles:
		res.Cycles, err = sim.CycleProf(ctx, profiles, opts)
	case api.ExpDiff:
		// Each side's mode and config ride its own DiffVariant; the
		// shared options must not also carry the baseline's config or the
		// variant would inherit it.
		opts.ConfigMod = nil
		res.Diff, err = runDiffSweep(ctx, profiles, req, opts)
	default:
		return nil, fmt.Errorf("unknown experiment %q", req.Experiment)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runDiffSweep maps a diff request's two sides onto the sim driver's
// baseline/variant sweep: the request's own Mode/Config describe the
// baseline, the Diff spec the variant (an unset variant mode inherits
// the baseline's).
func runDiffSweep(ctx context.Context, profiles []workload.Profile, req api.RunRequest, opts sim.Options) (*sim.DiffReport, error) {
	d := req.Diff
	baseMode, err := api.ParseMode(req.Mode)
	if err != nil {
		return nil, err
	}
	varMode := baseMode
	if d.Mode != "" {
		if varMode, err = api.ParseMode(d.Mode); err != nil {
			return nil, err
		}
	}
	base := sim.DiffVariant{Label: "baseline", Mode: baseMode, HasMode: true,
		ConfigMod: configMod(req.Config)}
	vs := sim.DiffVariant{Label: d.Label, Mode: varMode, HasMode: true,
		ConfigMod: configMod(d.Config), Repeats: d.Repeats}
	return sim.Diff(ctx, profiles, opts, base, vs)
}

// runCells runs each profile under one mode and returns raw result
// cells in request order.
func runCells(ctx context.Context, profiles []workload.Profile, mode pipeline.Mode, opts sim.Options) ([]api.Cell, error) {
	cells := make([]api.Cell, 0, len(profiles))
	for _, p := range profiles {
		r, err := sim.RunWorkload(ctx, p, mode, opts)
		if err != nil {
			return nil, err
		}
		cells = append(cells, api.Cell{
			Workload: r.Workload,
			Class:    r.Class,
			Mode:     mode.String(),
			IPC:      r.IPC(),
			Stats:    r.Stats,
		})
	}
	return cells, nil
}

// runCount estimates how many (workload, mode) runs the experiment
// executes, for progress totals.
func runCount(req api.RunRequest, profiles int) int {
	switch req.Experiment {
	case api.ExpFig6:
		return 4 * profiles
	case api.ExpFig7, api.ExpFig8, api.ExpTable3:
		return 2 * profiles
	case api.ExpFig9:
		return 3 * profiles
	case api.ExpFig10:
		return 8 * len(sim.Fig10Workloads)
	case api.ExpSummary:
		return 6 * profiles
	case api.ExpCell, api.ExpAttr, api.ExpReuse, api.ExpCycles:
		return profiles
	case api.ExpDiff:
		repeats := 1
		if req.Diff != nil && req.Diff.Repeats > 1 {
			repeats = req.Diff.Repeats
		}
		return 2 * repeats * profiles
	}
	return 0
}

// profilesFor resolves the request's workload set: an explicit list, or
// the experiment's paper-default subset.
func profilesFor(req api.RunRequest) ([]workload.Profile, error) {
	if len(req.Workloads) > 0 {
		ps := make([]workload.Profile, 0, len(req.Workloads))
		for _, name := range req.Workloads {
			p, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			ps = append(ps, p)
		}
		return ps, nil
	}
	switch req.Experiment {
	case api.ExpFig7:
		return byClass("SPECint"), nil
	case api.ExpFig8:
		return append(byClass("Business"), byClass("Content")...), nil
	default:
		return append([]workload.Profile(nil), workload.Profiles...), nil
	}
}

func byClass(class string) []workload.Profile {
	var ps []workload.Profile
	for _, p := range workload.Profiles {
		if p.Class == class {
			ps = append(ps, p)
		}
	}
	return ps
}

// validateWorkloads rejects unknown workload names at submission time,
// so typos fail with 400 instead of a failed job.
func validateWorkloads(req api.RunRequest) error {
	for _, name := range req.Workloads {
		if _, err := workload.ByName(name); err != nil {
			return err
		}
	}
	return nil
}

// configMod translates wire overrides into a Table 2 config edit.
func configMod(o *api.ConfigOverrides) func(*pipeline.Config) {
	return o.Mod()
}

// workloadInfo is the /v1/workloads row.
type workloadInfo struct {
	Name   string `json:"name"`
	Class  string `json:"class"`
	Traces int    `json:"traces"`
	Insts  int    `json:"insts"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	out := make([]workloadInfo, 0, len(workload.Profiles))
	for _, p := range workload.Profiles {
		out = append(out, workloadInfo{Name: p.Name, Class: p.Class, Traces: p.Traces, Insts: p.XInsts})
	}
	writeJSON(w, http.StatusOK, out)
}
