// Package server implements replayd: the paper's experiment harness
// exposed as a long-lived HTTP JSON service. Requests are canonicalized
// to a coalescing key (api.RunRequest.Key), deduplicated singleflight-
// style against in-flight work, queued into a bounded job queue, and
// executed by a fixed worker pool; the process-wide slot-stream capture
// and run-memo layers in internal/sim then make even non-concurrent
// repeats cheap. Jobs stream progress events, cancel when their last
// interested client disconnects, and drain on graceful shutdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/xtrace"
)

// Runner executes one canonicalized request, reporting progress through
// events. The default is SimRunner; tests substitute instrumented
// wrappers.
type Runner func(ctx context.Context, req api.RunRequest, progress func(api.Event)) (*api.RunResponse, error)

// Config sizes the service.
type Config struct {
	// Workers is the number of jobs executed concurrently (each job
	// itself fans out across CPUs through sim's run scheduler).
	// Default 2.
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; submissions
	// beyond it are rejected with 503. Default 64.
	QueueDepth int
	// MaxInsts caps the per-trace instruction budget a request may ask
	// for (0 = no cap).
	MaxInsts int
	// KeepFinished bounds how many finished jobs stay queryable.
	// Default 256.
	KeepFinished int
	// TraceEvents bounds the per-job trace ring for requests with
	// Trace set; the ring keeps the newest events. Default 65536.
	TraceEvents int
	// Runner overrides the execution backend (tests). Default SimRunner.
	Runner Runner
	// Logger receives the daemon's structured log records: every job
	// lifecycle line carries the job ID and coalescing key, so a job can
	// be followed across submission, queueing, execution, and outcome.
	// Default: discard.
	Logger *slog.Logger
	// SLOWindow is the sliding window the request-latency quantiles on
	// /metrics are computed over. Default 5m.
	SLOWindow time.Duration
	// TraceStore bounds how many completed request traces stay
	// queryable at /debug/traces. Default 256.
	TraceStore int
	// TraceSlow is the tail sampler's slow-trace cutoff: a trace whose
	// root span meets it is always retained. Default 1s.
	TraceSlow time.Duration
	// TraceSample is the probability a trace that is neither errored
	// nor slow is retained (0 = keep all; the bounded store makes
	// keep-all safe at replayd's request rates; negative keeps only
	// error and slow traces).
	TraceSample float64
	// SpoolDir roots the external-trace spool (POST /v1/traces). Empty
	// disables the upload front end: uploads and xtrace runs return 503.
	SpoolDir string
	// SpoolBytes bounds the spool's disk residency; least recently used
	// traces are evicted past it. Default 256 MiB.
	SpoolBytes int64
	// MaxUploadBytes caps one upload's request body (and decode
	// consumption); larger uploads are rejected with 413. Default 64 MiB.
	MaxUploadBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.KeepFinished <= 0 {
		c.KeepFinished = 256
	}
	if c.TraceEvents <= 0 {
		c.TraceEvents = 1 << 16
	}
	if c.Runner == nil {
		c.Runner = SimRunner
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 5 * time.Minute
	}
	if c.SpoolBytes <= 0 {
		c.SpoolBytes = 256 << 20
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	return c
}

// job is one unit of queued/running/finished work plus everything the
// HTTP layer observes about it.
type job struct {
	id  string
	key string
	req api.RunRequest
	// log is the job-scoped logger: every line carries the job ID and
	// coalescing key, so one job's lifecycle greps out of mixed output.
	log *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc

	// span is the job's span in the submitting request's trace; qspan
	// is its queue-wait child. Both are nil-safe no-ops when the
	// request was untraced. traceID is span's trace in hex, stamped on
	// the wire view, log lines, and histogram exemplars.
	span    *tracing.Span
	qspan   *tracing.Span
	traceID string

	// waiters counts clients whose disconnect should cancel the job;
	// detached marks jobs somebody wants regardless (async submissions).
	// Both are guarded by the server mutex.
	waiters  int
	detached bool

	mu        sync.Mutex
	events    []api.Event
	notify    chan struct{}        // closed and replaced on every append
	tel       *telemetry.Collector // per-job trace collector, when req.Trace
	state     string
	err       error
	result    *api.RunResponse
	queuedAt  time.Time
	startedAt time.Time
	doneAt    time.Time
	done      chan struct{}
}

func (j *job) appendEvent(e api.Event) {
	j.mu.Lock()
	e.Seq = len(j.events)
	e.JobID = j.id
	j.events = append(j.events, e)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// eventsSince returns the events at index >= from and a channel that
// closes when more arrive.
func (j *job) eventsSince(from int) ([]api.Event, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []api.Event
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, j.notify
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	if state == api.StateRunning {
		j.startedAt = time.Now()
	}
	j.mu.Unlock()
	j.appendEvent(api.Event{State: state})
}

func (j *job) finish(res *api.RunResponse, err error) {
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = api.StateDone
		j.result = res
	case errors.Is(err, context.Canceled):
		j.state = api.StateCanceled
		j.err = err
	default:
		j.state = api.StateFailed
		j.err = err
	}
	j.doneAt = time.Now()
	state := j.state
	j.mu.Unlock()
	j.appendEvent(api.Event{State: state})
	close(j.done)
}

// view renders the job's wire form.
func (j *job) view() api.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := api.Job{
		ID:        j.id,
		Key:       j.key,
		State:     j.state,
		TraceID:   j.traceID,
		Result:    j.result,
		QueuedAt:  j.queuedAt,
		StartedAt: j.startedAt,
		DoneAt:    j.doneAt,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// Server is the replayd service core, independent of the listening
// socket: it exposes an http.Handler and a drain-style Shutdown.
type Server struct {
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu         sync.Mutex
	jobs       map[string]*job
	inflight   map[string]*job // coalescing index: queued or running jobs by key
	finished   []string        // finish order, for KeepFinished eviction
	nextID     int
	draining   bool
	queuedJobs int // accepted but not yet started

	queue    chan *job
	workerWG sync.WaitGroup

	mux *http.ServeMux
	met serviceMetrics
	log *slog.Logger
	// slo tracks API request latency over a sliding window for the
	// /metrics summary quantiles.
	slo *stats.SLOWindow

	// hist backs the /metrics histograms; tel is the process-wide
	// histogram-only collector every untraced job runs under (histogram
	// collection keeps the run memo, so this costs nothing on memo hits).
	// Traced jobs get a private collector that shares hist, so their
	// samples land in the same /metrics families.
	hist *telemetry.HistogramSet
	tel  *telemetry.Collector

	// tracer roots one span trace per API request; completed traces
	// land in traces behind its tail sampler. httpHist is the request
	// latency histogram whose buckets carry trace-ID exemplars.
	tracer   *tracing.Tracer
	traces   *tracing.Store
	httpHist *stats.LatencyHistogram

	// spool holds uploaded external traces (nil when SpoolDir is empty:
	// the upload front end is disabled); xmet counts its traffic.
	spool *xtrace.Spool
	xmet  xtraceMetrics

	// rmet aggregates finished reuse-experiment jobs for the
	// replayd_reuse_* metric families.
	rmet *reuseMetrics

	// cmet aggregates finished cycles-experiment jobs for the
	// replayd_fetch_cycles_* / replayd_cycleprof_* metric families.
	cmet *cycleMetrics

	// dmet aggregates finished diff-experiment jobs for the
	// replayd_diff_* metric families.
	dmet diffMetrics
}

// New starts a server core: the worker pool is live on return.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*job{},
		inflight:   map[string]*job{},
		queue:      make(chan *job, cfg.QueueDepth),
		mux:        http.NewServeMux(),
		hist:       telemetry.NewHistogramSet(),
		log:        cfg.Logger,
		slo:        stats.NewSLOWindow(cfg.SLOWindow, 0),
		rmet:       newReuseMetrics(),
		cmet:       newCycleMetrics(),
	}
	s.tel = telemetry.New(telemetry.Config{Hist: s.hist})
	s.traces = tracing.NewStore(tracing.StoreConfig{
		Capacity:      cfg.TraceStore,
		SlowThreshold: cfg.TraceSlow,
		SampleRate:    cfg.TraceSample,
	})
	s.tracer = tracing.NewTracer(s.traces)
	s.httpHist = stats.NewLatencyHistogram("replayd_http_request_seconds",
		"API (/v1/*) request latency since boot; bucket exemplars carry the trace ID of a recent request.",
		stats.DefaultLatencyBounds...)
	if cfg.SpoolDir != "" {
		spool, err := xtrace.OpenSpool(cfg.SpoolDir, cfg.SpoolBytes)
		if err != nil {
			// The rest of the service works without the upload front end;
			// uploads and xtrace runs answer 503 until a restart fixes it.
			s.log.Warn("trace spool unavailable", "dir", cfg.SpoolDir, "error", err.Error())
		} else {
			s.spool = spool
		}
	}
	s.routes()
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP surface, wrapped so every API
// request opens the root span of a trace (continuing the client's W3C
// traceparent when one was sent), is timed into the latency histogram
// and the sliding-window SLO quantiles, and is access-logged at Debug
// (job lifecycle lines log at Info from the queue and workers).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		isAPI := strings.HasPrefix(r.URL.Path, "/v1/")
		var span *tracing.Span
		if isAPI {
			var tp *tracing.Traceparent
			if hdr := r.Header.Get(tracing.TraceparentHeader); hdr != "" {
				if p, err := tracing.ParseTraceparent(hdr); err == nil {
					tp = &p
				}
			}
			var ctx context.Context
			ctx, span = s.tracer.StartRoot(r.Context(), r.Method+" "+r.URL.Path, tp)
			if span != nil {
				r = r.WithContext(ctx)
				// Expose the trace ID even to clients that sent no
				// traceparent, so any request can be followed into
				// /debug/traces.
				w.Header().Set("X-Trace-Id", span.TraceID().String())
			}
		}
		s.mux.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		var traceID string
		if span != nil {
			traceID = span.TraceID().String()
			span.SetAttr("status", sw.Status())
			if sw.Status() >= http.StatusInternalServerError {
				span.SetError(fmt.Errorf("http %d", sw.Status()))
			}
			span.End()
		}
		if isAPI {
			// Only the API surface feeds the SLO: /metrics scrapes and
			// health probes would drown real request latencies.
			s.slo.Observe(elapsed)
			s.httpHist.ObserveEx(elapsed, traceID)
		}
		s.log.Debug("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.Status(),
			"trace_id", traceID,
			"duration_ms", float64(elapsed)/float64(time.Millisecond))
	})
}

// statusWriter captures the response status for the access log while
// forwarding Flush so NDJSON streaming keeps working through the
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Status returns the written status, defaulting to 200 for handlers
// that never call WriteHeader explicitly.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/diff", s.handleDiff)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceInfo)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/trace", s.handleTrace)
	s.mux.HandleFunc("GET /debug/reuse", s.handleReuse)
	s.mux.HandleFunc("GET /debug/diff", s.handleDiffDebug)
	s.mux.HandleFunc("GET /debug/profile", s.handleProfile)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// errSubmit carries an HTTP status for submission failures, plus an
// optional Retry-After hint (seconds) for load-shedding rejections.
type errSubmit struct {
	status     int
	msg        string
	retryAfter int
}

func (e *errSubmit) Error() string { return e.msg }

// submit canonicalizes, validates and enqueues a request — or attaches
// to an in-flight job with the same key (the coalescing path). detached
// submissions keep the job alive with no waiting client; non-detached
// callers must pair with releaseWaiter. When ctx carries the request's
// span, a fresh job opens its own child spans (job, queue wait) there,
// and a coalescing hit links the request's trace to the leader job's.
func (s *Server) submit(ctx context.Context, req api.RunRequest, detached bool) (*job, bool, error) {
	if err := req.Validate(); err != nil {
		return nil, false, &errSubmit{status: http.StatusBadRequest, msg: err.Error()}
	}
	c := req.Canonical()
	if s.cfg.MaxInsts > 0 && c.Insts > s.cfg.MaxInsts {
		return nil, false, &errSubmit{status: http.StatusBadRequest,
			msg: fmt.Sprintf("insts %d exceeds the server cap %d", c.Insts, s.cfg.MaxInsts)}
	}
	if err := validateWorkloads(c); err != nil {
		return nil, false, &errSubmit{status: http.StatusBadRequest, msg: err.Error()}
	}
	if err := s.checkXTrace(c); err != nil {
		return nil, false, err
	}
	key := c.Key()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.met.requests.Add(1)

	if j, ok := s.inflight[key]; ok {
		// The leader job holds its own pin on the spooled trace; this
		// submission's hold is redundant.
		s.unpinXTrace(c)
		s.met.coalesced.Add(1)
		if detached {
			j.detached = true
		} else {
			j.waiters++
		}
		// The follower's trace doesn't contain the leader's spans (they
		// belong to the leader's trace); a link on the request span
		// connects the two so the flame view points at the job's trace.
		if reqSpan := tracing.FromContext(ctx); reqSpan != nil {
			reqSpan.SetAttr("coalesced_job", j.id)
			if j.span != nil {
				reqSpan.AddLink(j.span.TraceID(), j.span.SpanID())
			}
		}
		j.log.Info("request coalesced onto in-flight job")
		return j, true, nil
	}
	if s.draining {
		s.unpinXTrace(c)
		return nil, false, &errSubmit{status: http.StatusServiceUnavailable, msg: "server is draining"}
	}

	s.nextID++
	jctx, jcancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:       fmt.Sprintf("job-%06d", s.nextID),
		key:      key,
		req:      c,
		ctx:      jctx,
		cancel:   jcancel,
		detached: detached,
		state:    api.StateQueued,
		notify:   make(chan struct{}),
		queuedAt: time.Now(),
		done:     make(chan struct{}),
	}
	// The job's spans parent under the submitting request's root but
	// ride the job's own context: the job (and so its trace) may outlive
	// the HTTP request that created it. The queue-wait span opens now
	// and ends when a worker picks the job up.
	if reqSpan := tracing.FromContext(ctx); reqSpan != nil {
		jctx, j.span = tracing.Start(tracing.ContextWithSpan(jctx, reqSpan), "job")
		j.span.SetAttr("job_id", j.id)
		j.span.SetAttr("experiment", c.Experiment)
		_, j.qspan = tracing.Start(jctx, "queue.wait")
		if j.span != nil {
			j.traceID = j.span.TraceID().String()
		}
		j.ctx = jctx
	}
	j.log = s.log.With("job_id", j.id, "key", j.key)
	if j.traceID != "" {
		j.log = j.log.With("trace_id", j.traceID)
	}
	if !detached {
		j.waiters = 1
	}
	select {
	case s.queue <- j:
	default:
		s.unpinXTrace(c)
		jcancel()
		j.qspan.End()
		j.span.SetError(errors.New("job queue full"))
		j.span.End()
		s.met.rejected.Add(1)
		retry := s.retryAfterLocked()
		s.log.Warn("job queue full, rejecting request",
			"key", key,
			"experiment", c.Experiment,
			"queue_depth", s.queuedJobs,
			"queue_capacity", s.cfg.QueueDepth,
			"retry_after_s", retry)
		return nil, false, &errSubmit{
			status:     http.StatusServiceUnavailable,
			msg:        fmt.Sprintf("job queue full (%d queued)", s.cfg.QueueDepth),
			retryAfter: retry,
		}
	}
	s.jobs[j.id] = j
	s.inflight[key] = j
	s.queuedJobs++
	j.log.Info("job accepted",
		"experiment", c.Experiment,
		"detached", detached,
		"queue_depth", s.queuedJobs)
	j.appendEvent(api.Event{State: api.StateQueued})
	return j, false, nil
}

// retryAfterLocked estimates (under s.mu) how many seconds until queue
// space plausibly frees: the queued backlog divided across the worker
// pool, scaled by the recent average job execution time. Clamped to
// [1, 300] so the header stays a sane hint even on a cold or badly
// backed-up server.
func (s *Server) retryAfterLocked() int {
	avg := s.met.avgExecSeconds()
	if avg <= 0 {
		avg = 1
	}
	est := avg * float64(s.queuedJobs+1) / float64(s.cfg.Workers)
	secs := int(math.Ceil(est))
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

// releaseWaiter drops one waiting client; when the last one leaves a
// job nobody submitted asynchronously, the job is canceled so its
// simulations stop burning cycles for an absent audience.
func (s *Server) releaseWaiter(j *job) {
	s.mu.Lock()
	j.waiters--
	cancel := j.waiters <= 0 && !j.detached
	s.mu.Unlock()
	if cancel {
		select {
		case <-j.done:
			// Finished in the meantime; nothing to stop.
		default:
			j.cancel()
		}
	}
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.execute(j)
	}
}

func (s *Server) execute(j *job) {
	s.mu.Lock()
	s.queuedJobs--
	s.mu.Unlock()

	if err := j.ctx.Err(); err != nil {
		s.settle(j, nil, err)
		return
	}
	j.qspan.End()
	s.met.busyWorkers.Add(1)
	j.setState(api.StateRunning)
	j.log.Info("job started",
		"queue_wait_ms", float64(time.Since(j.queuedAt))/float64(time.Millisecond),
		"trace", j.req.Trace)
	// Every job runs under a collector so its frame-lifecycle histograms
	// feed /metrics. Traced jobs get a private collector (ring buffer,
	// labeled with the coalescing key, tagged with the job ID so ring
	// events join log lines, same histogram set); it stays on the job so
	// /debug/trace can serve it during and after the run. A span-carrying
	// job without an event ring still gets a private histogram-only
	// collector so its samples stamp the request's trace ID as bucket
	// exemplars — histogram-only collection keeps the run memo.
	tel := s.tel
	switch {
	case j.req.Trace:
		tel = telemetry.New(telemetry.Config{
			Hist:        s.hist,
			TraceEvents: s.cfg.TraceEvents,
			Label:       j.key,
			JobID:       j.id,
			TraceID:     j.traceID,
		})
		j.mu.Lock()
		j.tel = tel
		j.mu.Unlock()
	case j.traceID != "":
		tel = telemetry.New(telemetry.Config{Hist: s.hist, TraceID: j.traceID})
	}
	ctx := telemetry.NewContext(j.ctx, tel)
	ctx, espan := tracing.Start(ctx, "job.exec")
	// Jobs naming a spooled external trace run through the xtrace
	// backends (diff comparisons involving a trace get the pair
	// backend); everything else uses the configured Runner (tests
	// substitute it without affecting the upload front end).
	runner := s.cfg.Runner
	switch {
	case j.req.Experiment == api.ExpDiff && j.req.Diff != nil &&
		(j.req.XTrace != "" || j.req.Diff.XTrace != ""):
		runner = s.runDiffX
	case j.req.XTrace != "":
		runner = s.runXTrace
	}
	res, err := runner(ctx, j.req, j.appendEvent)
	espan.SetError(err)
	espan.End()
	s.met.busyWorkers.Add(-1)
	s.settle(j, res, err)
}

// settle finishes the job, removes it from the coalescing index and
// evicts old finished jobs beyond the retention bound.
func (s *Server) settle(j *job, res *api.RunResponse, err error) {
	s.unpinXTrace(j.req)
	j.finish(res, err)
	j.cancel()

	j.mu.Lock()
	state := j.state
	queueWait := j.startedAt.Sub(j.queuedAt)
	var execDur time.Duration
	if !j.startedAt.IsZero() {
		execDur = j.doneAt.Sub(j.startedAt)
	} else {
		queueWait = j.doneAt.Sub(j.queuedAt)
	}
	j.mu.Unlock()
	attrs := []any{
		"outcome", state,
		"queue_wait_ms", float64(queueWait) / float64(time.Millisecond),
		"exec_ms", float64(execDur) / float64(time.Millisecond),
	}
	if err != nil {
		j.log.Warn("job finished", append(attrs, "error", err.Error())...)
	} else {
		j.log.Info("job finished", attrs...)
	}
	if err == nil && execDur > 0 {
		s.met.observeExec(execDur.Seconds())
	}
	if err == nil && res != nil && res.Reuse != nil {
		s.rmet.fold(res.Reuse, j.traceID)
	}
	if err == nil && res != nil && res.Cycles != nil {
		s.cmet.fold(res.Cycles)
	}
	if err == nil && res != nil && res.Diff != nil {
		s.dmet.fold(res.Diff)
	}
	// Close out the job's spans (idempotent: the queue-wait span already
	// ended if a worker picked the job up). An errored or canceled job
	// makes its trace an error trace, which the tail sampler always
	// keeps.
	j.qspan.End()
	j.span.SetAttr("outcome", state)
	j.span.SetError(err)
	j.span.End()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	switch {
	case err == nil:
		s.met.jobsDone.Add(1)
	case errors.Is(err, context.Canceled):
		s.met.jobsCanceled.Add(1)
	default:
		s.met.jobsFailed.Add(1)
	}
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.KeepFinished {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Shutdown drains the service: new submissions are rejected, queued and
// running jobs are given until ctx expires to finish, then everything
// left is canceled. It returns nil on a clean drain and ctx's error
// otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}

	drained := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	var se *errSubmit
	if errors.As(err, &se) {
		if se.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(se.retryAfter))
		}
		writeJSON(w, se.status, map[string]string{"error": se.msg})
		return
	}
	writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
}

func decodeRequest(r *http.Request) (api.RunRequest, error) {
	var req api.RunRequest
	qtrace := r.URL.Query().Get("trace")
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// ?trace=<id> allows a bodyless submission: the trace ID plus
		// defaults (cell experiment, RPO) fully describe the run.
		if !(qtrace != "" && errors.Is(err, io.EOF)) {
			return req, &errSubmit{status: http.StatusBadRequest, msg: "bad request body: " + err.Error()}
		}
	}
	if qtrace != "" {
		req.XTrace = qtrace
	}
	return req, nil
}

// handleSubmit enqueues asynchronously: the job runs to completion even
// if no client ever polls it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	j, coalesced, err := s.submit(r.Context(), req, true)
	if err != nil {
		writeErr(w, err)
		return
	}
	v := j.view()
	v.Coalesced = coalesced
	writeJSON(w, http.StatusAccepted, v)
}

// handleRun is the synchronous path: submit (or coalesce), then wait
// for the result. A client disconnect releases its interest; the last
// one out cancels the job's simulations.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	j, coalesced, err := s.submit(r.Context(), req, false)
	if err != nil {
		writeErr(w, err)
		return
	}
	select {
	case <-j.done:
		s.releaseWaiter(j)
		v := j.view()
		v.Coalesced = coalesced
		status := http.StatusOK
		if v.State == api.StateFailed {
			status = http.StatusInternalServerError
		} else if v.State == api.StateCanceled {
			status = http.StatusConflict
		}
		writeJSON(w, status, v)
	case <-r.Context().Done():
		s.releaseWaiter(j)
		// The client is gone; nothing useful to write.
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	views := make([]api.Job, 0, len(jobs))
	for _, j := range jobs {
		v := j.view()
		v.Result = nil // keep listings light
		views = append(views, v)
	}
	// Deterministic order: by ID (zero-padded, so lexicographic works).
	for i := 1; i < len(views); i++ {
		for k := i; k > 0 && views[k].ID < views[k-1].ID; k-- {
			views[k], views[k-1] = views[k-1], views[k]
		}
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleEvents streams the job's progress as newline-delimited JSON
// until the job finishes or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		evs, more := j.eventsSince(next)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		next += len(evs)
		if fl != nil {
			fl.Flush()
		}
		select {
		case <-j.done:
			// Drain anything appended between the last read and done.
			evs, _ := j.eventsSince(next)
			for _, e := range evs {
				if err := enc.Encode(e); err != nil {
					return
				}
			}
			if fl != nil {
				fl.Flush()
			}
			return
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace serves a traced job's event ring as Chrome trace_event
// JSON (load into chrome://tracing or Perfetto). The snapshot is safe
// to take mid-run; a job submitted without "trace": true has no ring
// and 404s.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("job")
	if id == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing job query parameter"})
		return
	}
	j, ok := s.lookup(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	j.mu.Lock()
	tel := j.tel
	j.mu.Unlock()
	if tel == nil {
		if j.req.Trace {
			// Requested but not started: the collector appears with the run.
			writeJSON(w, http.StatusConflict,
				map[string]string{"error": "job has not started; trace not available yet"})
			return
		}
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": "job has no trace; submit it with \"trace\": true"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = tel.WriteTrace(w)
}

// handleTraces lists the span traces retained by the tail sampler,
// newest first. ?limit=N bounds the listing.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad limit: " + v})
			return
		}
		limit = n
	}
	list := s.traces.List(limit)
	if list == nil {
		list = []tracing.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, list)
}

// handleTraceByID serves one stored trace: raw span JSON by default,
// Chrome trace_event JSON with ?format=chrome (load into Perfetto, or
// feed to cmd/tracecheck), the flame-style text tree with ?format=text
// (what replayctl -trace renders).
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := tracing.ParseTraceID(id); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	tr := s.traces.Get(id)
	if tr == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such trace (evicted, sampled out, or never seen)"})
		return
	}
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
		writeJSON(w, http.StatusOK, tr)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteChrome(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = tr.WriteText(w)
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unknown format " + f + " (want json, chrome or text)"})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
