package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/sim"
	"repro/internal/workload"
)

// postRun POSTs a request to path and decodes the job envelope, keeping
// the result's raw bytes for byte-identity checks.
type jobEnvelope struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	TraceID   string          `json:"trace_id"`
	Coalesced bool            `json:"coalesced"`
	Error     string          `json:"error"`
	Result    json.RawMessage `json:"result"`
}

func postRun(t *testing.T, url string, req api.RunRequest) (jobEnvelope, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env jobEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return env, resp.StatusCode
}

// TestRunEndToEndMatchesDirectSim: a synchronous run through the full
// HTTP surface returns byte-identical JSON to calling the sim driver
// directly and marshaling the same wire type.
func TestRunEndToEndMatchesDirectSim(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	profiles := []workload.Profile{p}
	opts := sim.Options{MaxInsts: 2_000}

	for _, tc := range []struct {
		req  api.RunRequest
		want func() (api.RunResponse, error)
	}{
		{
			req: api.RunRequest{Experiment: "fig6", Workloads: []string{"gzip"}, Insts: 2_000},
			want: func() (api.RunResponse, error) {
				rows, err := sim.Fig6(context.Background(), profiles, opts)
				return api.RunResponse{Experiment: api.ExpFig6, Fig6: rows}, err
			},
		},
		{
			req: api.RunRequest{Experiment: "Table3", Workloads: []string{"GZIP"}, Insts: 2_000},
			want: func() (api.RunResponse, error) {
				rows, err := sim.Table3(context.Background(), profiles, opts)
				return api.RunResponse{Experiment: api.ExpTable3, Table3: rows}, err
			},
		},
	} {
		env, status := postRun(t, ts.URL+"/v1/run", tc.req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", tc.req.Experiment, status, env.Error)
		}
		if env.State != api.StateDone {
			t.Fatalf("%s: state %q, want done", tc.req.Experiment, env.State)
		}
		wantRes, err := tc.want()
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(wantRes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(env.Result, want) {
			t.Errorf("%s: served result differs from direct sim call:\n got %s\nwant %s",
				tc.req.Experiment, env.Result, want)
		}
	}
}

// gatedRunner blocks every execution until release is closed, counting
// invocations, so tests control exactly when jobs finish.
type gatedRunner struct {
	calls   atomic.Int64
	release chan struct{}
}

func newGatedRunner() *gatedRunner {
	return &gatedRunner{release: make(chan struct{})}
}

func (g *gatedRunner) run(ctx context.Context, req api.RunRequest, progress func(api.Event)) (*api.RunResponse, error) {
	g.calls.Add(1)
	select {
	case <-g.release:
		return &api.RunResponse{Experiment: req.Experiment}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescing: K concurrent identical synchronous requests execute
// the underlying sweep exactly once, and every client gets the same job.
func TestCoalescing(t *testing.T) {
	const k = 6
	g := newGatedRunner()
	s := New(Config{Workers: 2, Runner: g.run})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := api.RunRequest{Experiment: "fig6", Workloads: []string{"gzip"}, Insts: 2_000}
	envs := make([]jobEnvelope, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env, status := postRun(t, ts.URL+"/v1/run", req)
			if status != http.StatusOK {
				t.Errorf("request %d: status %d (%s)", i, status, env.Error)
			}
			envs[i] = env
		}(i)
	}
	// Hold the gate until every request has either created the job or
	// attached to it, then let the single execution finish.
	waitFor(t, "all submissions", func() bool { return s.met.requests.Load() == k })
	close(g.release)
	wg.Wait()

	if n := g.calls.Load(); n != 1 {
		t.Errorf("runner executed %d times for %d identical requests, want 1", n, k)
	}
	ids := map[string]bool{}
	fresh := 0
	for i, env := range envs {
		ids[env.ID] = true
		if env.State != api.StateDone {
			t.Errorf("request %d: state %q", i, env.State)
		}
		if !env.Coalesced {
			fresh++
		}
	}
	if len(ids) != 1 {
		t.Errorf("got %d distinct jobs, want 1", len(ids))
	}
	if fresh != 1 {
		t.Errorf("%d submissions created a job, want exactly 1", fresh)
	}
	if n := s.met.coalesced.Load(); n != k-1 {
		t.Errorf("coalesced counter %d, want %d", n, k-1)
	}

	// The /metrics surface must report the same thing.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	want := fmt.Sprintf("replayd_coalesced_hits_total %d", k-1)
	if !strings.Contains(string(b), want) {
		t.Errorf("/metrics missing %q", want)
	}
}

// TestDistinctRequestsDoNotCoalesce: requests differing in canonical
// form each get their own job.
func TestDistinctRequestsDoNotCoalesce(t *testing.T) {
	g := newGatedRunner()
	close(g.release) // run through immediately
	s := New(Config{Workers: 2, Runner: g.run})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a, _ := postRun(t, ts.URL+"/v1/run", api.RunRequest{Experiment: "fig6", Insts: 1_000})
	b, _ := postRun(t, ts.URL+"/v1/run", api.RunRequest{Experiment: "fig6", Insts: 2_000})
	if a.ID == b.ID {
		t.Errorf("different budgets coalesced into one job %s", a.ID)
	}
	// Case and ordering differences canonicalize away: same job key, but
	// the first finished already, so this becomes a fresh job too — the
	// memo layer, not the coalescer, handles completed repeats.
	if g.calls.Load() != 2 {
		t.Errorf("runner executed %d times, want 2", g.calls.Load())
	}
}

// TestQueueFullRejects: submissions beyond Workers+QueueDepth in-flight
// jobs are rejected with 503 and counted.
func TestQueueFullRejects(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 1, Runner: g.run})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A occupies the single worker...
	envA, status := postRun(t, ts.URL+"/v1/jobs", api.RunRequest{Experiment: "fig6", Insts: 1_000})
	if status != http.StatusAccepted {
		t.Fatalf("job A: status %d", status)
	}
	waitFor(t, "worker pickup", func() bool { return g.calls.Load() == 1 })
	// ...B fills the queue...
	if _, status := postRun(t, ts.URL+"/v1/jobs", api.RunRequest{Experiment: "fig6", Insts: 2_000}); status != http.StatusAccepted {
		t.Fatalf("job B: status %d", status)
	}
	// ...C must bounce.
	envC, status := postRun(t, ts.URL+"/v1/jobs", api.RunRequest{Experiment: "fig6", Insts: 3_000})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("job C: status %d, want 503 (%+v)", status, envC)
	}
	if n := s.met.rejected.Load(); n != 1 {
		t.Errorf("rejected counter %d, want 1", n)
	}
	// A resubmission of A still coalesces — rejection only applies to new
	// work.
	envA2, status := postRun(t, ts.URL+"/v1/jobs", api.RunRequest{Experiment: "fig6", Insts: 1_000})
	if status != http.StatusAccepted || !envA2.Coalesced || envA2.ID != envA.ID {
		t.Errorf("duplicate of queued job: status %d coalesced=%v id=%s, want 202 on job %s",
			status, envA2.Coalesced, envA2.ID, envA.ID)
	}
	close(g.release)
}

// TestLastWaiterCancels: when the only synchronous client lets go, the
// job's context cancels and it settles as canceled; detached (async)
// jobs survive the same situation.
func TestLastWaiterCancels(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 2, Runner: g.run})
	defer s.Shutdown(context.Background())

	j, coalesced, err := s.submit(context.Background(), api.RunRequest{Experiment: "fig6"}, false)
	if err != nil || coalesced {
		t.Fatalf("submit: coalesced=%v err=%v", coalesced, err)
	}
	waitFor(t, "worker pickup", func() bool { return g.calls.Load() == 1 })
	s.releaseWaiter(j)
	select {
	case <-j.done:
	case <-time.After(5 * time.Second):
		t.Fatal("job did not settle after its last waiter left")
	}
	if v := j.view(); v.State != api.StateCanceled {
		t.Errorf("state %q, want canceled", v.State)
	}
	if n := s.met.jobsCanceled.Load(); n != 1 {
		t.Errorf("canceled counter %d, want 1", n)
	}

	// An async job with zero waiters keeps running.
	jd, _, err := s.submit(context.Background(), api.RunRequest{Experiment: "table3"}, true)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "detached pickup", func() bool { return g.calls.Load() == 2 })
	close(g.release)
	select {
	case <-jd.done:
	case <-time.After(5 * time.Second):
		t.Fatal("detached job never finished")
	}
	if v := jd.view(); v.State != api.StateDone {
		t.Errorf("detached job state %q, want done", v.State)
	}
}

// TestEventsStream: the NDJSON stream replays queued/running/progress/
// done in order with increasing sequence numbers and then closes.
func TestEventsStream(t *testing.T) {
	runner := func(ctx context.Context, req api.RunRequest, progress func(api.Event)) (*api.RunResponse, error) {
		progress(api.Event{Msg: "step 1", Done: 1, Total: 2})
		progress(api.Event{Msg: "step 2", Done: 2, Total: 2})
		return &api.RunResponse{Experiment: req.Experiment}, nil
	}
	s := New(Config{Workers: 1, Runner: runner})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	env, status := postRun(t, ts.URL+"/v1/jobs", api.RunRequest{Experiment: "fig6"})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + env.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var got []api.Event
	for {
		var e api.Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	var trail []string
	for i, e := range got {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.Msg != "" {
			trail = append(trail, e.Msg)
		} else {
			trail = append(trail, e.State)
		}
	}
	want := []string{api.StateQueued, api.StateRunning, "step 1", "step 2", api.StateDone}
	if strings.Join(trail, ",") != strings.Join(want, ",") {
		t.Errorf("event trail %v, want %v", trail, want)
	}

	// The finished job stays queryable with its result.
	fin, status := postGet(t, ts.URL+"/v1/jobs/"+env.ID)
	if status != http.StatusOK || fin.State != api.StateDone || len(fin.Result) == 0 {
		t.Errorf("finished job: status %d state %q result %q", status, fin.State, fin.Result)
	}
}

func postGet(t *testing.T, url string) (jobEnvelope, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env jobEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return env, resp.StatusCode
}

// TestValidationErrors: malformed requests fail fast with 400, before
// touching the queue.
func TestValidationErrors(t *testing.T) {
	s := New(Config{Workers: 1, MaxInsts: 10_000})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name string
		req  api.RunRequest
	}{
		{"unknown experiment", api.RunRequest{Experiment: "fig99"}},
		{"unknown workload", api.RunRequest{Experiment: "fig6", Workloads: []string{"nosuch"}}},
		{"unknown mode", api.RunRequest{Experiment: "cell", Mode: "XX"}},
		{"unknown opt", api.RunRequest{Experiment: "fig6", Config: &api.ConfigOverrides{DisableOpts: []string{"zap"}}}},
		{"over insts cap", api.RunRequest{Experiment: "fig6", Insts: 20_000}},
	} {
		env, status := postRun(t, ts.URL+"/v1/run", tc.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, status)
		}
		if env.Error == "" {
			t.Errorf("%s: no error message", tc.name)
		}
	}
	if n := s.met.requests.Load(); n != 0 {
		t.Errorf("invalid submissions counted as requests: %d", n)
	}
}

// TestShutdownDrains: draining rejects new work, lets running jobs
// finish, and flips /healthz to 503.
func TestShutdownDrains(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, Runner: g.run})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	env, status := postRun(t, ts.URL+"/v1/jobs", api.RunRequest{Experiment: "fig6"})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	waitFor(t, "worker pickup", func() bool { return g.calls.Load() == 1 })

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(context.Background()) }()
	waitFor(t, "draining flag", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})

	if _, status := postRun(t, ts.URL+"/v1/jobs", api.RunRequest{Experiment: "table3"}); status != http.StatusServiceUnavailable {
		t.Errorf("submission while draining: status %d, want 503", status)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
		}
	}

	close(g.release)
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Errorf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown never drained")
	}
	fin, _ := postGet(t, ts.URL+"/v1/jobs/"+env.ID)
	if fin.State != api.StateDone {
		t.Errorf("in-flight job state after drain: %q, want done", fin.State)
	}
}

// TestCanonicalKeyEquivalence: spelling variants of one request share a
// coalescing key; material differences split it.
func TestCanonicalKeyEquivalence(t *testing.T) {
	base := api.RunRequest{Experiment: "fig6", Workloads: []string{"gzip", "bzip2"}, Insts: 1_000}
	same := []api.RunRequest{
		{Experiment: " FIG6 ", Workloads: []string{"GZIP", " bzip2"}, Insts: 1_000},
		{Experiment: "fig6", Workloads: []string{"gzip", "bzip2"}, Insts: 1_000, Mode: "RPO"},
		{Experiment: "fig6", Workloads: []string{"gzip", "bzip2"}, Insts: 1_000, Config: &api.ConfigOverrides{}},
	}
	for i, r := range same {
		if r.Key() != base.Key() {
			t.Errorf("variant %d has key %s, want %s", i, r.Key(), base.Key())
		}
	}
	diff := []api.RunRequest{
		{Experiment: "fig6", Workloads: []string{"gzip"}, Insts: 1_000},
		{Experiment: "fig6", Workloads: []string{"gzip", "bzip2"}, Insts: 2_000},
		{Experiment: "fig6", Workloads: []string{"gzip", "bzip2"}, Insts: 1_000,
			Config: &api.ConfigOverrides{DisableOpts: []string{"cse"}}},
	}
	for i, r := range diff {
		if r.Key() == base.Key() {
			t.Errorf("materially different request %d collides with base key", i)
		}
	}
	// Disable lists canonicalize order-insensitively.
	a := api.RunRequest{Experiment: "fig6", Config: &api.ConfigOverrides{DisableOpts: []string{"sf", "cse", "cse"}}}
	b := api.RunRequest{Experiment: "fig6", Config: &api.ConfigOverrides{DisableOpts: []string{"cse", "sf"}}}
	if a.Key() != b.Key() {
		t.Error("disable_opts ordering split the coalescing key")
	}
}
