package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// TestRunnerReceivesCollector: the server threads a collector through
// the runner context — a histogram-only one stamping the request's
// trace ID as exemplars for plain jobs, a private tracing one (labeled
// with the coalescing key) when the request asks for an event trace.
func TestRunnerReceivesCollector(t *testing.T) {
	type seen struct {
		tel *telemetry.Collector
		key string
	}
	got := make(chan seen, 2)
	s := New(Config{Workers: 1, Runner: func(ctx context.Context, req api.RunRequest, progress func(api.Event)) (*api.RunResponse, error) {
		got <- seen{telemetry.FromContext(ctx), req.Key()}
		return &api.RunResponse{Experiment: req.Experiment}, nil
	}})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	plain := api.RunRequest{Experiment: "cell", Workloads: []string{"gzip"}, Insts: 1000}
	if _, code := postRun(t, ts.URL+"/v1/run", plain); code != http.StatusOK {
		t.Fatalf("plain run: status %d", code)
	}
	g := <-got
	if g.tel == nil {
		t.Fatal("plain job ran with no collector")
	}
	if g.tel == s.tel {
		// The request opened a trace, so the job must not share the
		// global collector: its histogram samples carry the trace ID.
		t.Errorf("plain job ran under the global collector, want a per-job exemplar one")
	}
	if g.tel.HasTrace() {
		t.Errorf("plain job's collector has a trace ring")
	}
	if g.tel.RequiresExecution() {
		t.Errorf("plain job's collector bypasses the run memo")
	}

	traced := plain
	traced.Trace = true
	if _, code := postRun(t, ts.URL+"/v1/run", traced); code != http.StatusOK {
		t.Fatalf("traced run: status %d", code)
	}
	g = <-got
	if g.tel == s.tel {
		t.Errorf("traced job ran under the global collector, want a private one")
	}
	if !g.tel.HasTrace() {
		t.Errorf("traced job's collector has no trace ring")
	}
	if g.tel.Label() != g.key {
		t.Errorf("trace label %q != coalescing key %q", g.tel.Label(), g.key)
	}
	if plain.Key() == traced.Key() {
		t.Errorf("trace flag does not split the coalescing key")
	}
}

// TestTraceEndToEnd runs a real traced simulation through the HTTP
// surface and checks /debug/trace serves valid Chrome trace_event JSON
// carrying the job's coalescing key.
func TestTraceEndToEnd(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := api.RunRequest{Experiment: "cell", Workloads: []string{"gzip"}, Insts: 20_000, Trace: true}
	env, code := postRun(t, ts.URL+"/v1/run", req)
	if code != http.StatusOK || env.State != api.StateDone {
		t.Fatalf("run: status %d state %s error %q", code, env.State, env.Error)
	}

	resp, err := http.Get(ts.URL + "/debug/trace?job=" + env.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTrace(data); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	spans := 0
	for _, e := range tf.TraceEvents {
		if e.Ph != "M" {
			spans++
		}
	}
	if spans == 0 {
		t.Errorf("trace has no non-metadata events")
	}
	if got, want := tf.OtherData["job"], req.Key(); got != want {
		t.Errorf("otherData.job = %v, want %v", got, want)
	}

	// An untraced job has no ring.
	env2, code := postRun(t, ts.URL+"/v1/run", api.RunRequest{Experiment: "cell", Workloads: []string{"gzip"}, Insts: 20_000})
	if code != http.StatusOK {
		t.Fatalf("untraced run: status %d", code)
	}
	resp2, err := http.Get(ts.URL + "/debug/trace?job=" + env2.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("untraced job trace: status %d, want 404", resp2.StatusCode)
	}
}

// TestMetricsHistograms: after an executed (non-memoized) run, /metrics
// exposes the frame-lifecycle histograms in parseable Prometheus text
// format with samples.
func TestMetricsHistograms(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Trace forces execution, so the run observes into the histogram set
	// even when an identical run is already memoized process-wide. The
	// budget must be large enough that frames reach the optimizer inside
	// the measured (post-warmup) window.
	req := api.RunRequest{Experiment: "cell", Workloads: []string{"gzip"}, Insts: 60_000, Trace: true}
	if env, code := postRun(t, ts.URL+"/v1/run", req); code != http.StatusOK {
		t.Fatalf("run: status %d state %s", code, env.State)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := stats.ParseProm(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	hists := map[string]stats.PromFamily{}
	for _, f := range fams {
		if f.Type == "histogram" {
			hists[f.Name] = f
		}
	}
	for _, name := range []string{
		"replay_frame_uops",
		"replay_opt_dwell_cycles",
		"replay_frame_cache_residency_cycles",
		"replay_fetch_retire_cycles",
	} {
		f, ok := hists[name]
		if !ok {
			t.Errorf("histogram %s missing from /metrics", name)
			continue
		}
		if len(f.Buckets) == 0 {
			t.Errorf("histogram %s has no buckets", name)
		}
		if f.Count == 0 && name != "replay_frame_cache_residency_cycles" {
			// Residency can legitimately be zero if nothing was evicted or
			// resident; the others must have samples after an executed run.
			t.Errorf("histogram %s has no samples", name)
		}
	}
	if len(hists) < 4 {
		t.Errorf("only %d histograms exposed, want >= 4", len(hists))
	}
}

// TestAttrExperimentWire: the attr experiment returns per-pass tables
// over the HTTP surface and the conservation invariant survives the
// JSON round trip.
func TestAttrExperimentWire(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := api.RunRequest{Experiment: "attr", Workloads: []string{"gzip"}, Insts: 60_000}
	env, code := postRun(t, ts.URL+"/v1/run", req)
	if code != http.StatusOK || env.State != api.StateDone {
		t.Fatalf("run: status %d state %s error %q", code, env.State, env.Error)
	}
	var res api.RunResponse
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Attr) != 1 {
		t.Fatalf("attr rows: %d", len(res.Attr))
	}
	row := res.Attr[0]
	if row.Workload != "gzip" || len(row.Passes) == 0 {
		t.Fatalf("bad attr row: %+v", row)
	}
	if got, want := row.KilledTotal(), uint64(row.Opt.Removed()); got != want {
		t.Errorf("killed %d != removed %d after JSON round trip", got, want)
	}
}
