package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// postWithTraceparent posts a run request carrying a client traceparent
// header and decodes the job envelope.
func postWithTraceparent(t *testing.T, url string, req api.RunRequest, tp string) (jobEnvelope, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tp != "" {
		hreq.Header.Set(tracing.TraceparentHeader, tp)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env jobEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return env, resp
}

// TestTracedRunEndToEnd is the acceptance path: one traced /run request
// with a client traceparent yields a stored trace whose spans cover the
// queue wait, the simulation windows, the pipeline engine, and at least
// one optimizer pass; the trace exports as valid Chrome trace_event
// JSON; and its trace ID appears as an exemplar on both the request
// latency histogram and the frame-lifecycle histograms.
func TestTracedRunEndToEnd(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	clientTP := tracing.Traceparent{
		Trace: tracing.NewTraceID(),
		Span:  tracing.NewSpanID(),
		Flags: tracing.FlagSampled,
	}
	tid := clientTP.Trace.String()

	// Trace:true forces execution (memo bypass), so the measured window
	// reaches the optimizer even if an identical run is already memoized
	// by another test in this process.
	req := api.RunRequest{Experiment: "cell", Workloads: []string{"gzip"}, Insts: 60_000, Trace: true}
	env, resp := postWithTraceparent(t, ts.URL+"/v1/run", req, clientTP.String())
	if resp.StatusCode != http.StatusOK || env.State != api.StateDone {
		t.Fatalf("run: status %d state %s error %q", resp.StatusCode, env.State, env.Error)
	}
	if env.TraceID != tid {
		t.Errorf("job trace_id = %q, want the client trace %q", env.TraceID, tid)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != tid {
		t.Errorf("X-Trace-Id = %q, want %q", got, tid)
	}

	// The trace finalizes when its last span ends, which may trail the
	// response by a beat; settle and handler end spans concurrently.
	waitFor(t, "trace stored", func() bool { return s.traces.Get(tid) != nil })
	tr := s.traces.Get(tid)

	byName := map[string]int{}
	var root *tracing.SpanData
	for i, sp := range tr.Spans {
		byName[sp.Name]++
		if sp.Name == "POST /v1/run" {
			root = &tr.Spans[i]
		}
	}
	for _, want := range []string{
		"POST /v1/run", "job", "queue.wait", "job.exec",
		"sim.run", "sim.warmup", "sim.measure", "pipeline.run",
	} {
		if byName[want] == 0 {
			t.Errorf("trace lacks span %q; got %v", want, byName)
		}
	}
	optSpans := 0
	for name := range byName {
		if strings.HasPrefix(name, "opt.") {
			optSpans++
		}
	}
	if optSpans == 0 {
		t.Errorf("trace has no opt.<pass> spans; got %v", byName)
	}
	if root == nil {
		t.Fatal("no root span named POST /v1/run")
	}
	if root.Parent != clientTP.Span.String() {
		t.Errorf("root parent = %q, want the client's span %q", root.Parent, clientTP.Span.String())
	}

	// The trace appears in the listing and exports as Chrome trace_event
	// JSON that passes the same validator as telemetry's cycle-domain
	// exporter.
	lresp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list []tracing.TraceSummary
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	found := false
	for _, sum := range list {
		if sum.TraceID == tid {
			found = true
			if sum.Spans != len(tr.Spans) {
				t.Errorf("summary spans = %d, want %d", sum.Spans, len(tr.Spans))
			}
		}
	}
	if !found {
		t.Errorf("trace %s missing from /debug/traces listing (%d entries)", tid, len(list))
	}
	cresp, err := http.Get(ts.URL + "/debug/traces/" + tid + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	chrome, err := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export: status %d", cresp.StatusCode)
	}
	if err := telemetry.ValidateTrace(chrome); err != nil {
		t.Errorf("chrome export invalid: %v", err)
	}
	tresp, err := http.Get(ts.URL + "/debug/traces/" + tid + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if !strings.Contains(string(text), "sim.measure") {
		t.Errorf("text view lacks sim.measure:\n%s", text)
	}

	// The request latency observation lands after the response is
	// written; wait for the exemplar, then check it round-trips through
	// the Prometheus text format.
	waitFor(t, "latency exemplar", func() bool {
		for _, ex := range s.httpHist.Snapshot().Exemplars {
			if ex.TraceID == tid {
				return true
			}
		}
		return false
	})
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := stats.ParseProm(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exemplarFor := func(name string) string {
		for _, f := range fams {
			if f.Name != name {
				continue
			}
			for _, b := range f.Buckets {
				if b.Exemplar != nil && b.Exemplar.TraceID == tid {
					return b.Exemplar.TraceID
				}
			}
		}
		return ""
	}
	if exemplarFor("replayd_http_request_seconds") != tid {
		t.Errorf("replayd_http_request_seconds carries no exemplar for trace %s", tid)
	}
	// The traced job's collector stamps the same trace ID on the
	// frame-lifecycle histograms it observed into.
	if exemplarFor("replay_frame_uops") != tid {
		t.Errorf("replay_frame_uops carries no exemplar for trace %s", tid)
	}
}

// TestCoalescedFollowerLinksLeader: a request that coalesces onto an
// in-flight job gets its own (short) trace whose root span links to the
// leader job's trace, and its wire view names the leader's trace ID.
func TestCoalescedFollowerLinksLeader(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, Runner: g.run})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := api.RunRequest{Experiment: "fig6", Insts: 1_000}
	leader, lresp := postWithTraceparent(t, ts.URL+"/v1/jobs", req, "")
	if lresp.StatusCode != http.StatusAccepted {
		t.Fatalf("leader submit: status %d", lresp.StatusCode)
	}
	waitFor(t, "leader running", func() bool { return g.calls.Load() == 1 })

	followerTP := tracing.Traceparent{
		Trace: tracing.NewTraceID(),
		Span:  tracing.NewSpanID(),
		Flags: tracing.FlagSampled,
	}
	follower, fresp := postWithTraceparent(t, ts.URL+"/v1/jobs", req, followerTP.String())
	if fresp.StatusCode != http.StatusAccepted || !follower.Coalesced {
		t.Fatalf("follower submit: status %d coalesced %v", fresp.StatusCode, follower.Coalesced)
	}
	if follower.TraceID != leader.TraceID {
		t.Errorf("follower job trace = %q, want the leader's %q", follower.TraceID, leader.TraceID)
	}

	// The follower's own trace (only the request root) finalizes when
	// its handler returns; it must carry a link to the leader's trace.
	ftid := followerTP.Trace.String()
	waitFor(t, "follower trace stored", func() bool { return s.traces.Get(ftid) != nil })
	ftr := s.traces.Get(ftid)
	linked := false
	for _, sp := range ftr.Spans {
		for _, l := range sp.Links {
			if l.TraceID == leader.TraceID {
				linked = true
			}
		}
	}
	if !linked {
		t.Errorf("follower trace has no link to leader trace %s: %+v", leader.TraceID, ftr.Spans)
	}

	close(g.release)
	waitFor(t, "leader trace stored", func() bool { return s.traces.Get(leader.TraceID) != nil })
	ltr := s.traces.Get(leader.TraceID)
	names := map[string]int{}
	for _, sp := range ltr.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"POST /v1/jobs", "job", "queue.wait", "job.exec"} {
		if names[want] == 0 {
			t.Errorf("leader trace lacks span %q; got %v", want, names)
		}
	}
}

// TestFailedJobTraceKeptAsError: a job whose runner fails produces an
// error trace, which the tail sampler must retain even when the
// probabilistic gate would drop everything.
func TestFailedJobTraceKeptAsError(t *testing.T) {
	runner := func(ctx context.Context, req api.RunRequest, progress func(api.Event)) (*api.RunResponse, error) {
		if req.Experiment == "fig6" {
			return nil, context.DeadlineExceeded
		}
		return &api.RunResponse{Experiment: req.Experiment}, nil
	}
	// SampleRate < 0: the gate drops every non-error, non-slow trace.
	s := New(Config{Workers: 1, Runner: runner, TraceSample: -1, TraceSlow: time.Hour})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	env, resp := postWithTraceparent(t, ts.URL+"/v1/run", api.RunRequest{Experiment: "fig6"}, "")
	if resp.StatusCode != http.StatusInternalServerError || env.State != api.StateFailed {
		t.Fatalf("run: status %d state %s", resp.StatusCode, env.State)
	}
	waitFor(t, "error trace stored", func() bool { return s.traces.Get(env.TraceID) != nil })
	tr := s.traces.Get(env.TraceID)
	if !tr.Error || tr.Reason != "error" {
		t.Errorf("trace error=%v reason=%q, want an error-retained trace", tr.Error, tr.Reason)
	}
	st := s.traces.Stats()
	if st.KeptError == 0 {
		t.Errorf("sampler stats: %+v, want KeptError > 0", st)
	}

	// A healthy request on the same server is sampled out entirely.
	g, gresp := postWithTraceparent(t, ts.URL+"/v1/jobs", api.RunRequest{Experiment: "table3"}, "")
	if gresp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", gresp.StatusCode)
	}
	waitFor(t, "healthy trace dropped", func() bool { return s.traces.Stats().Dropped >= 1 })
	if s.traces.Get(g.TraceID) != nil {
		t.Errorf("healthy trace %s retained despite the always-drop gate", g.TraceID)
	}
}

// TestTraceEndpointErrors pins the /debug/traces error surface.
func TestTraceEndpointErrors(t *testing.T) {
	s := New(Config{Workers: 1, Runner: func(ctx context.Context, req api.RunRequest, progress func(api.Event)) (*api.RunResponse, error) {
		return &api.RunResponse{Experiment: req.Experiment}, nil
	}})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/debug/traces/not-hex", http.StatusBadRequest},
		{"/debug/traces/" + tracing.NewTraceID().String(), http.StatusNotFound},
		{"/debug/traces?limit=x", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}
