package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
	"repro/internal/xtrace"
)

// The external-trace front end: POST /v1/traces uploads a trace (binary
// or NDJSON, auto-detected) into a bounded content-addressed disk spool,
// and a run request naming the trace (xtrace field, or ?trace=<id>)
// simulates it through the same queue, coalescing, memo, and telemetry
// path as built-in workloads.

// xtraceMetrics counts the upload front end's traffic for /metrics.
type xtraceMetrics struct {
	uploads      atomic.Uint64 // accepted uploads, deduplicated re-uploads included
	uploadBytes  atomic.Uint64 // request body bytes of accepted uploads
	decodeErrors atomic.Uint64 // uploads rejected by the decoder (400)
	oversize     atomic.Uint64 // uploads rejected for size (413), spool budget included
	runs         atomic.Uint64 // jobs executed against a spooled trace
}

// uploadLimits derives the decode bounds for one upload from the
// server's configured body cap.
func (s *Server) uploadLimits() xtrace.Limits {
	// Records are >= MinRecordBytes encoded bytes each, so the byte cap
	// bounds the count a stream can actually carry; capping MaxRecords
	// the same way keeps a header that merely declares a huge count from
	// commanding a matching allocation.
	maxRecords := uint64(s.cfg.MaxUploadBytes) / xtrace.MinRecordBytes
	if maxRecords == 0 {
		maxRecords = 1
	}
	return xtrace.Limits{
		MaxBytes:     s.cfg.MaxUploadBytes,
		MaxRecords:   maxRecords,
		MaxCodeBytes: 16 << 20,
	}
}

// traceInfo is the wire view of one spooled trace.
type traceInfo struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	Arch      string `json:"arch,omitempty"`
	Records   uint64 `json:"records"`
	Insts     uint32 `json:"insts,omitempty"`
	HasCode   bool   `json:"has_code,omitempty"`
	Bytes     int64  `json:"bytes"`
	Duplicate bool   `json:"duplicate,omitempty"`
}

// handleTraceUpload ingests one external trace. Failures are structured
// and typed: 400 {"kind":"decode"} for malformed streams, 413
// {"kind":"oversize"} for bodies over the upload cap or decode limits,
// 413 {"kind":"spool_budget"} when the trace cannot fit the spool even
// after eviction, 503 {"kind":"disabled"} when no spool is configured.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	if s.spool == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "trace spool disabled (start replayd with -spool-dir)",
			"kind":  "disabled",
		})
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	t, err := xtrace.Decode(body, s.uploadLimits())
	if err != nil {
		s.rejectUpload(w, r, err)
		return
	}
	// Adapt now so a trace that decodes but cannot be simulated (EIP
	// outside its code image, mid-instruction EIP change) fails the
	// upload with a 400 instead of failing every later job.
	if _, err := t.Slots(); err != nil {
		s.rejectUpload(w, r, err)
		return
	}
	id, size, dup, err := s.spool.Put(t)
	if err != nil {
		s.rejectUpload(w, r, err)
		return
	}
	s.xmet.uploads.Add(1)
	s.xmet.uploadBytes.Add(uint64(size))
	s.log.Info("trace uploaded",
		"trace", id,
		"name", t.Header.Name,
		"arch", t.Header.Arch,
		"records", len(t.Records),
		"bytes", size,
		"duplicate", dup)
	writeJSON(w, http.StatusCreated, traceInfo{
		ID:        id,
		Name:      t.Header.Name,
		Arch:      t.Header.Arch,
		Records:   uint64(len(t.Records)),
		Insts:     t.Header.Insts,
		HasCode:   t.Header.HasCode(),
		Bytes:     size,
		Duplicate: dup,
	})
}

// rejectUpload maps an ingestion failure to its status and structured
// body, logging at Warn with job-style fields so rejected uploads are
// greppable next to job lifecycle lines.
func (s *Server) rejectUpload(w http.ResponseWriter, r *http.Request, err error) {
	status, kind := http.StatusBadRequest, "decode"
	var limit int64
	var maxBytesErr *http.MaxBytesError
	switch {
	case errors.Is(err, xtrace.ErrSpoolBudget):
		status, kind = http.StatusRequestEntityTooLarge, "spool_budget"
		_, _, limit, _ = s.spool.Stats()
		s.xmet.oversize.Add(1)
	case errors.As(err, &maxBytesErr), errors.Is(err, xtrace.ErrLimit):
		status, kind = http.StatusRequestEntityTooLarge, "oversize"
		limit = s.cfg.MaxUploadBytes
		s.xmet.oversize.Add(1)
	default:
		s.xmet.decodeErrors.Add(1)
	}
	s.log.Warn("trace upload rejected",
		"kind", kind,
		"status", status,
		"limit_bytes", limit,
		"content_length", r.ContentLength,
		"error", err.Error())
	body := map[string]any{"error": err.Error(), "kind": kind}
	if limit > 0 {
		body["limit_bytes"] = limit
	}
	writeJSON(w, status, body)
}

// handleTraceList lists the spooled traces (LRU first) plus occupancy.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if s.spool == nil {
		writeJSON(w, http.StatusOK, map[string]any{"traces": []string{}, "enabled": false})
		return
	}
	entries, bytes, maxBytes, _ := s.spool.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"traces":     s.spool.List(),
		"enabled":    true,
		"entries":    entries,
		"bytes":      bytes,
		"byte_limit": maxBytes,
	})
}

// handleTraceInfo describes one spooled trace.
func (s *Server) handleTraceInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.spool == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "trace spool disabled", "kind": "disabled"})
		return
	}
	t, err := s.spool.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, traceInfo{
		ID:      id,
		Name:    t.Header.Name,
		Arch:    t.Header.Arch,
		Records: uint64(len(t.Records)),
		Insts:   t.Header.Insts,
		HasCode: t.Header.HasCode(),
		Bytes:   int64(len(xtrace.CanonicalBytes(t))),
	})
}

// reqTraceIDs lists every spooled-trace ID a request names: the main
// xtrace field plus a diff variant's trace. IDs repeat if both sides
// name the same trace; the pin refcount balances either way.
func reqTraceIDs(req api.RunRequest) []string {
	var ids []string
	if req.XTrace != "" {
		ids = append(ids, req.XTrace)
	}
	if req.Diff != nil && req.Diff.XTrace != "" {
		ids = append(ids, req.Diff.XTrace)
	}
	return ids
}

// checkXTrace validates an xtrace-carrying submission against the spool
// at submit time, so a bad trace ID fails with 404 instead of a failed
// job. Each present trace is pinned against eviction — a queued job
// must still find it when a worker picks the job up, however many
// uploads churn the spool in between. Every successful check must be
// balanced by one unpinXTrace (on coalesce, rejection, or job
// settlement).
func (s *Server) checkXTrace(req api.RunRequest) error {
	ids := reqTraceIDs(req)
	if len(ids) == 0 {
		return nil
	}
	if s.spool == nil {
		return &errSubmit{status: http.StatusServiceUnavailable,
			msg: "trace spool disabled (start replayd with -spool-dir)"}
	}
	for i, id := range ids {
		if !s.spool.Pin(id) {
			for _, held := range ids[:i] {
				s.spool.Unpin(held)
			}
			return &errSubmit{status: http.StatusNotFound,
				msg: fmt.Sprintf("no spooled trace %q (upload it to /v1/traces first)", id)}
		}
	}
	return nil
}

// unpinXTrace releases the eviction holds checkXTrace took for req.
func (s *Server) unpinXTrace(req api.RunRequest) {
	if s.spool == nil {
		return
	}
	for _, id := range reqTraceIDs(req) {
		s.spool.Unpin(id)
	}
}

// runXTrace is the Runner for jobs that name a spooled trace: it loads
// and adapts the trace, then simulates it with the same options
// discipline as SimRunner. Cell jobs replay the trace under the
// requested mode (the run memo keys on the trace's content ID, so
// repeats of an uploaded trace cost nothing); reuse jobs decompose the
// trace — alongside any listed workloads — and feed it to the
// representative-subset selector.
func (s *Server) runXTrace(ctx context.Context, req api.RunRequest, progress func(api.Event)) (*api.RunResponse, error) {
	ext, err := s.externalRun(req.XTrace)
	if err != nil {
		return nil, err
	}
	opts := sim.Options{
		MaxInsts:   req.Insts,
		WarmupFrac: req.WarmupFrac,
		ConfigMod:  configMod(req.Config),
		Telemetry:  telemetry.FromContext(ctx),
	}

	if req.Experiment == api.ExpReuse {
		// The trace ranks alongside the explicitly listed workloads; an
		// empty list decomposes the upload alone.
		var profiles []workload.Profile
		if len(req.Workloads) > 0 {
			if profiles, err = profilesFor(req); err != nil {
				return nil, err
			}
		}
		total := len(profiles) + 1
		var done atomic.Int64
		opts.Notify = func(r sim.Result) {
			progress(api.Event{
				Msg:   fmt.Sprintf("%s/%s done", r.Workload, r.Mode),
				Done:  int(done.Add(1)),
				Total: total,
			})
		}
		rep, err := sim.ReuseWithExternal(ctx, profiles, []sim.ExternalRun{*ext}, opts)
		if err != nil {
			return nil, err
		}
		s.xmet.runs.Add(1)
		return &api.RunResponse{Experiment: api.ExpReuse, Reuse: rep}, nil
	}

	mode, err := api.ParseMode(req.Mode)
	if err != nil {
		return nil, err
	}
	opts.Notify = func(r sim.Result) {
		progress(api.Event{Msg: fmt.Sprintf("%s/%s done", r.Workload, r.Mode), Done: 1, Total: 1})
	}
	res, err := sim.RunExternal(ctx, *ext, mode, opts)
	if err != nil {
		return nil, err
	}
	s.xmet.runs.Add(1)
	return &api.RunResponse{Experiment: api.ExpCell, Cells: []api.Cell{{
		Workload: res.Workload,
		Class:    res.Class,
		Mode:     mode.String(),
		IPC:      res.IPC(),
		Stats:    res.Stats,
	}}}, nil
}
