package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/logtest"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xtrace"
)

// exportGzip captures and exports a small gzip trace in the external
// binary encoding.
func exportGzip(t *testing.T, budget int) ([]byte, *xtrace.Trace) {
	t.Helper()
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sim.CaptureSlotStream(p, 0, budget+sim.ReplaySlack)
	if err != nil {
		t.Fatal(err)
	}
	xt, err := xtrace.FromSlotStream(ss, budget)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := xtrace.WriteBinary(&buf, xt); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), xt
}

func upload(t *testing.T, url string, body []byte) (map[string]any, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/traces", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding upload response: %v", err)
	}
	return out, resp.StatusCode
}

// TestXTraceUploadRunMatchesDirect: export -> upload -> run?trace=<id>
// must produce bit-identical stats to the direct interpreter-backed run.
func TestXTraceUploadRunMatchesDirect(t *testing.T) {
	const budget = 10_000
	s := New(Config{Workers: 2, SpoolDir: t.TempDir()})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, xt := exportGzip(t, budget)
	out, status := upload(t, ts.URL, body)
	if status != http.StatusCreated {
		t.Fatalf("upload status %d: %v", status, out)
	}
	id, _ := out["id"].(string)
	if id != xtrace.TraceID(xt) {
		t.Fatalf("upload id %q != content id %q", id, xtrace.TraceID(xt))
	}
	if int(out["records"].(float64)) != len(xt.Records) {
		t.Fatalf("upload records = %v, want %d", out["records"], len(xt.Records))
	}

	// Re-upload deduplicates.
	out2, status2 := upload(t, ts.URL, body)
	if status2 != http.StatusCreated || out2["duplicate"] != true {
		t.Fatalf("re-upload: status %d, %v", status2, out2)
	}

	// Run via the query-parameter form with no body.
	resp, err := http.Post(ts.URL+"/v1/run?trace="+id, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var env jobEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || env.State != api.StateDone {
		t.Fatalf("run status %d state %q error %q", resp.StatusCode, env.State, env.Error)
	}
	var res api.RunResponse
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(res.Cells))
	}
	cell := res.Cells[0]
	// The exported header carries the capture's per-trace name ("gzip.0").
	if !strings.HasPrefix(cell.Workload, "gzip") || cell.Mode != "RPO" || cell.Class != sim.ExternalClass {
		t.Errorf("cell identity = %q/%q/%q", cell.Workload, cell.Class, cell.Mode)
	}

	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt,
		sim.Options{MaxInsts: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cell.Stats, direct.Stats) {
		t.Errorf("uploaded-trace stats differ from direct run:\n served: %+v\n direct: %+v",
			cell.Stats, direct.Stats)
	}

	// The explicit JSON-body form coalesces/keys identically and works too.
	env2, status := postRun(t, ts.URL+"/v1/run", api.RunRequest{XTrace: id})
	if status != http.StatusOK || env2.State != api.StateDone {
		t.Fatalf("xtrace body run: status %d state %q", status, env2.State)
	}
	if !bytes.Equal(env2.Result, env.Result) {
		t.Errorf("body-form result differs from query-form result")
	}
}

// Oversize uploads and spool-budget misses are 413 with a structured
// body and a Warn log line — never a 500.
func TestXTraceUploadOversize413(t *testing.T) {
	h := logtest.NewHandler()
	logger := slog.New(h)
	body, _ := exportGzip(t, 2_000)

	// Body cap: one byte under the upload.
	s := New(Config{Workers: 1, SpoolDir: t.TempDir(),
		MaxUploadBytes: int64(len(body) - 1), Logger: logger})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out, status := upload(t, ts.URL, body)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%v)", status, out)
	}
	if out["kind"] != "oversize" {
		t.Errorf("kind = %v, want oversize", out["kind"])
	}
	if out["limit_bytes"] == nil || out["error"] == nil {
		t.Errorf("unstructured 413 body: %v", out)
	}

	// Spool budget: body fits the request cap but not the spool.
	s2 := New(Config{Workers: 1, SpoolDir: t.TempDir(),
		SpoolBytes: 128, Logger: logger})
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	out2, status2 := upload(t, ts2.URL, body)
	if status2 != http.StatusRequestEntityTooLarge {
		t.Fatalf("spool-budget status = %d, want 413 (%v)", status2, out2)
	}
	if out2["kind"] != "spool_budget" {
		t.Errorf("kind = %v, want spool_budget", out2["kind"])
	}

	found := false
	for _, rec := range h.Records() {
		if rec.Level == slog.LevelWarn && rec.Message == "trace upload rejected" {
			found = true
		}
	}
	if !found {
		t.Error("no Warn log line for the rejected upload")
	}
}

// Malformed uploads are 400 with kind=decode; unknown trace IDs on run
// submission are 404; a server without a spool answers 503.
func TestXTraceUploadErrors(t *testing.T) {
	s := New(Config{Workers: 1, SpoolDir: t.TempDir()})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out, status := upload(t, ts.URL, []byte("this is not a trace"))
	if status != http.StatusBadRequest || out["kind"] != "decode" {
		t.Fatalf("garbage upload: status %d, %v", status, out)
	}

	env, status := postRun(t, ts.URL+"/v1/run", api.RunRequest{XTrace: strings.Repeat("ab", 32)})
	if status != http.StatusNotFound {
		t.Fatalf("unknown trace run: status %d (%s)", status, env.Error)
	}

	noSpool := New(Config{Workers: 1})
	defer noSpool.Shutdown(context.Background())
	ts2 := httptest.NewServer(noSpool.Handler())
	defer ts2.Close()
	out2, status2 := upload(t, ts2.URL, []byte("{}"))
	if status2 != http.StatusServiceUnavailable || out2["kind"] != "disabled" {
		t.Fatalf("spoolless upload: status %d, %v", status2, out2)
	}
}

// The trace listing and info endpoints describe the spool, and the
// xtrace metric families appear on /metrics.
func TestXTraceListInfoAndMetrics(t *testing.T) {
	s := New(Config{Workers: 1, SpoolDir: t.TempDir()})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, xt := exportGzip(t, 2_000)
	out, status := upload(t, ts.URL, body)
	if status != http.StatusCreated {
		t.Fatalf("upload: %d %v", status, out)
	}
	id := out["id"].(string)

	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list map[string]any
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if list["enabled"] != true || int(list["entries"].(float64)) != 1 {
		t.Errorf("listing = %v", list)
	}

	resp, err = http.Get(ts.URL + "/v1/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var info traceInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if !strings.HasPrefix(info.Name, "gzip") || info.Records != uint64(len(xt.Records)) || !info.HasCode {
		t.Errorf("info = %+v", info)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"replayd_xtrace_uploads_total 1",
		"replayd_xtrace_spool_entries 1",
		"replayd_xtrace_decode_errors_total 0",
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
