package sim

import (
	"context"

	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// AttrRow is one workload's per-pass optimization attribution under the
// RPO configuration: which pass killed or rewrote how many micro-ops,
// reproducing the paper's per-optimization breakdown with provenance.
type AttrRow struct {
	Workload string               `json:"workload"`
	Class    string               `json:"class"`
	Passes   []telemetry.PassStat `json:"passes"`
	Opt      opt.Stats            `json:"opt"`
}

// KilledTotal sums killed uops across passes; by construction it equals
// Opt.Removed() (the conservation invariant the attribution test pins).
func (r *AttrRow) KilledTotal() uint64 {
	var n uint64
	for _, ps := range r.Passes {
		n += ps.Killed
	}
	return n
}

// Attribution runs the RPO configuration over each profile with a
// private attribution collector and returns the per-pass tables. Each
// profile gets its own collector so rows are per-workload; attribution
// forces execution (no memo hits), making the tables exact for the
// measured run.
func Attribution(ctx context.Context, profiles []workload.Profile, o Options) ([]AttrRow, error) {
	tels := make([]*telemetry.Collector, len(profiles))
	results := make([]Result, len(profiles))
	errs := make([]error, len(profiles))
	jobs := make([]runJob, len(profiles))
	for i, p := range profiles {
		tels[i] = telemetry.New(telemetry.Config{Attribution: true})
		po := o
		po.Telemetry = tels[i]
		jobs[i] = runJob{profile: p, mode: pipeline.ModeRePLayOpt, opts: po,
			out: &results[i], err: &errs[i]}
	}
	if err := runAll(ctx, jobs); err != nil {
		return nil, err
	}
	rows := make([]AttrRow, len(profiles))
	for i, p := range profiles {
		rows[i] = AttrRow{
			Workload: p.Name,
			Class:    p.Class,
			Passes:   tels[i].AttributionSnapshot(),
			Opt:      results[i].Stats.Opt,
		}
	}
	return rows, nil
}
