package sim

import (
	"context"
	"testing"

	"repro/internal/opt"
	"repro/internal/workload"
)

// countingRecorder tallies per-pass attribution for one Optimize call.
type countingRecorder struct {
	killed    map[string]int
	rewritten map[string]int
}

func (r *countingRecorder) RecordPass(frameID uint64, pass string, killed, rewritten int) {
	if r.killed == nil {
		r.killed = map[string]int{}
		r.rewritten = map[string]int{}
	}
	r.killed[pass] += killed
	r.rewritten[pass] += rewritten
}

func (r *countingRecorder) killedTotal() int {
	n := 0
	for _, k := range r.killed {
		n += k
	}
	return n
}

// TestAttributionConservation pins the attribution invariant for every
// workload profile under every optimization option subset: the summed
// per-pass killed micro-ops equal the aggregate UOpsRemoved of
// opt.Stats. A micro-op only leaves a frame by a pass flipping Valid
// inside a traced invocation, so any drift means a pass mutated the
// frame outside its measurement window.
func TestAttributionConservation(t *testing.T) {
	for _, p := range workload.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			frames := CollectFrames(p, 30_000, 24)
			if len(frames) == 0 {
				t.Fatalf("no frames constructed for %s", p.Name)
			}
			// All 64 subsets of the six switches, speculation off and on.
			for mask := 0; mask < 64; mask++ {
				for _, spec := range []bool{false, true} {
					opts := opt.Options{
						NOP:    mask&1 != 0,
						CP:     mask&2 != 0,
						RA:     mask&4 != 0,
						CSE:    mask&8 != 0,
						SF:     mask&16 != 0,
						Assert: mask&32 != 0,

						Speculative: spec,
					}
					for fi, f := range frames {
						of := opt.Remap(f, opt.ScopeFrame)
						rec := &countingRecorder{}
						st := opt.OptimizeTraced(of, opts, rec)
						if got, want := rec.killedTotal(), st.Removed(); got != want {
							t.Fatalf("frame %d mask=%06b spec=%v: per-pass killed %d != removed %d (passes %v)",
								fi, mask, spec, got, want, rec.killed)
						}
					}
				}
			}
			// The full configuration must also conserve under the weaker
			// scopes (different elimination legality rules).
			for _, scope := range []opt.Scope{opt.ScopeIntraBlock, opt.ScopeInterBlock} {
				for fi, f := range frames {
					of := opt.Remap(f, scope)
					rec := &countingRecorder{}
					st := opt.OptimizeTraced(of, opt.AllOptions(), rec)
					if got, want := rec.killedTotal(), st.Removed(); got != want {
						t.Fatalf("frame %d scope=%v: per-pass killed %d != removed %d",
							fi, scope, got, want)
					}
				}
			}
		})
	}
}

// TestAttributionEndToEnd checks the sim-level driver: a full RPO run's
// attribution table must agree with the aggregate optimizer stats of
// the same measured window, and the tables must be non-trivial.
func TestAttributionEndToEnd(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Attribution(context.Background(), []workload.Profile{p}, Options{MaxInsts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows: %d", len(rows))
	}
	row := rows[0]
	if len(row.Passes) == 0 {
		t.Fatal("no passes attributed")
	}
	if got, want := row.KilledTotal(), uint64(row.Opt.Removed()); got != want {
		t.Errorf("killed %d != removed %d (passes %+v)", got, want, row.Passes)
	}
}
