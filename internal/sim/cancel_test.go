package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestRunWorkloadCanceled: a canceled context fails the run with
// context.Canceled instead of burning the budget.
func TestRunWorkloadCanceled(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunWorkload(ctx, p, pipeline.ModeICache, Options{MaxInsts: 10_000})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

// TestRunWorkloadCancelMidRun: cancellation during a live run returns
// promptly, well before a large budget is exhausted.
func TestRunWorkloadCancelMidRun(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// DisableCache keeps the run on the live interpreter path, where the
	// engine's periodic context poll is the only thing that can stop it.
	_, err = RunWorkload(ctx, p, pipeline.ModeICache, Options{MaxInsts: 50_000_000, DisableCache: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %s, want prompt return", d)
	}
}

// TestEngineRunContext: the engine honors cancellation and keeps its
// state consistent for a resumed run.
func TestEngineRunContext(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := pipeline.New(pipeline.DefaultConfig(pipeline.ModeICache), pipeline.ModeICache, newCPUStream(prog))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := eng.RunContext(ctx, 100_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n >= 100_000 {
		t.Errorf("retired %d under a canceled context", n)
	}
	// Resuming with a live context completes normally.
	m, err := eng.RunContext(context.Background(), 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if m < 5_000 {
		t.Errorf("resumed run retired %d, want >= 5000", m)
	}
}

// TestSweepCanceled: runAll-based sweeps surface cancellation as an
// error rather than returning partial rows.
func TestSweepCanceled(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig6(ctx, []workload.Profile{p}, Options{MaxInsts: 5_000}); !errors.Is(err, context.Canceled) {
		t.Errorf("Fig6: got %v, want context.Canceled", err)
	}
	if _, err := Table3(ctx, []workload.Profile{p}, Options{MaxInsts: 5_000}); !errors.Is(err, context.Canceled) {
		t.Errorf("Table3: got %v, want context.Canceled", err)
	}
}

// TestMemoLRUBound: the run memo holds at most its entry budget, evicts
// least-recently-used first, and a hit refreshes recency.
func TestMemoLRUBound(t *testing.T) {
	ResetCaches()
	t.Cleanup(func() {
		SetMemoLimit(DefaultMemoEntries)
		ResetCaches()
	})
	SetMemoLimit(2)

	k := func(i int) memoKey { return memoKey{profile: "p", mode: pipeline.ModeICache, budget: i} }
	memoPut(k(1), pipeline.Stats{Cycles: 1})
	memoPut(k(2), pipeline.Stats{Cycles: 2})
	if _, ok := memoGet(k(1)); !ok { // refresh 1; 2 becomes LRU
		t.Fatal("entry 1 missing before the budget was reached")
	}
	memoPut(k(3), pipeline.Stats{Cycles: 3}) // must evict 2

	if n, limit := MemoOccupancy(); n != 2 || limit != 2 {
		t.Errorf("occupancy %d/%d, want 2/2", n, limit)
	}
	if _, ok := memoGet(k(2)); ok {
		t.Error("least-recently-used entry 2 survived eviction")
	}
	for _, i := range []int{1, 3} {
		if _, ok := memoGet(k(i)); !ok {
			t.Errorf("recently used entry %d was evicted", i)
		}
	}

	// Shrinking the limit evicts immediately.
	SetMemoLimit(1)
	if n, _ := MemoOccupancy(); n != 1 {
		t.Errorf("occupancy %d after shrinking the limit to 1", n)
	}
}

// TestCaptureEntryBudget: the capture cache respects a one-entry budget
// across distinct workloads.
func TestCaptureEntryBudget(t *testing.T) {
	ResetCaches()
	t.Cleanup(func() {
		SetCaptureLimits(DefaultCaptureEntries, DefaultCaptureBytes)
		ResetCaches()
	})
	SetCaptureLimits(1, DefaultCaptureBytes)

	for _, name := range []string{"gzip", "bzip2", "crafty"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunWorkload(context.Background(), p, pipeline.ModeICache, Options{MaxInsts: 2_000}); err != nil {
			t.Fatal(err)
		}
		if n, _, _, _ := CaptureOccupancy(); n > 1 {
			t.Fatalf("after %s: %d live captures under an entry budget of 1", name, n)
		}
	}
}

// TestCaptureByteBudget: an impossible byte budget degrades to cache-of-
// one (the most recent capture is never evicted) instead of thrashing to
// zero.
func TestCaptureByteBudget(t *testing.T) {
	ResetCaches()
	t.Cleanup(func() {
		SetCaptureLimits(DefaultCaptureEntries, DefaultCaptureBytes)
		ResetCaches()
	})
	SetCaptureLimits(8, 1)

	for _, name := range []string{"gzip", "bzip2"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunWorkload(context.Background(), p, pipeline.ModeICache, Options{MaxInsts: 2_000}); err != nil {
			t.Fatal(err)
		}
	}
	n, b, _, _ := CaptureOccupancy()
	if n != 1 {
		t.Errorf("%d live captures under a 1-byte budget, want exactly the most recent", n)
	}
	if b <= 0 {
		t.Errorf("byte accounting reports %d for a live capture", b)
	}
}
