package sim

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/translate"
	"repro/internal/uop"
	"repro/internal/workload"
	"repro/internal/x86"
)

// The capture layer: the functional IA-32 interpreter runs once per
// (profile, trace index, budget), recording the retired slot stream; all
// four pipeline modes — and every later experiment over the same
// workload — replay the recording instead of re-interpreting. The
// decoded/translated stream is deterministic per (profile, trace), so
// replayed runs are bit-identical to interpreted ones.

// captureSlack is how many slots beyond the instruction budget a capture
// records. The engine consumes past the budget by at most one frame of
// retirement overshoot (<= MaxUOps x86 instructions) plus one frame of
// lookahead, so a couple thousand slots of slack guarantees a replayed
// engine never sees a premature end-of-stream.
const captureSlack = 2048

// slotSource is a correct-path stream that can report a deferred
// interpreter error once the run is over.
type slotSource interface {
	pipeline.Stream
	Err() error
}

// Err surfaces an interpreter failure after a live run.
func (s *cpuStream) Err() error { return s.err }

// recordedStream is one captured retired-slot stream, stored columnar:
// per retired instruction only the PC, the successor PC and the memory
// addresses vary, so those are kept in flat arrays (~12 bytes per slot)
// while the decode and translation are shared per-PC maps. A full-budget
// capture is a few MB instead of the tens of MB a []pipeline.Slot costs,
// which is what lets maxLiveCaptures cover a whole sweep.
type recordedStream struct {
	pcs      []uint32
	nextPCs  []uint32
	memOff   []uint32 // prefix offsets into memAddrs; len = len(pcs)+1
	memAddrs []uint32
	decoded  map[uint32]decodedInst
	err      error // interpreter error hit at the end of the slots, if any
	atEnd    bool  // the program genuinely ended (vs the capture bound)
}

func (rec *recordedStream) len() int { return len(rec.pcs) }

// slot materializes retired slot i. MemAddrs aliases the shared backing
// array (capacity-clipped); the engine only reads it.
func (rec *recordedStream) slot(i int) pipeline.Slot {
	pc := rec.pcs[i]
	var addrs []uint32
	if lo, hi := rec.memOff[i], rec.memOff[i+1]; hi > lo {
		addrs = rec.memAddrs[lo:hi:hi]
	}
	d := rec.decoded[pc]
	return pipeline.Slot{PC: pc, Inst: d.in, UOps: d.uops,
		NextPC: rec.nextPCs[i], MemAddrs: addrs}
}

// errCaptureExhausted reports a replay that consumed the whole recording
// without the underlying program having ended — a would-be silent
// divergence from a live run, turned into a loud failure.
var errCaptureExhausted = errors.New("sim: captured slot stream exhausted before the run finished (captureSlack too small)")

// replayStream serves a recordedStream as a pipeline.Stream. Each engine
// gets its own cursor; the slots themselves are shared read-only.
type replayStream struct {
	rec       *recordedStream
	pos       int
	exhausted bool
}

func (r *replayStream) Next() (pipeline.Slot, bool) {
	if r.pos >= r.rec.len() {
		r.exhausted = true
		return pipeline.Slot{}, false
	}
	s := r.rec.slot(r.pos)
	r.pos++
	return s, true
}

func (r *replayStream) Err() error {
	if !r.exhausted {
		return nil
	}
	if r.rec.err != nil {
		return r.rec.err
	}
	if !r.rec.atEnd {
		return errCaptureExhausted
	}
	return nil
}

// captureRecorded drains the interpreter into a recording of at most max
// slots. An interpreter error is stored positionally: a replay only
// surfaces it if the engine actually consumes that far, exactly like a
// live run. The decode/translation map is taken over from the
// interpreter stream, so every replayed slot shares it.
func captureRecorded(prog *workload.Program, max int) *recordedStream {
	src := newCPUStream(prog)
	rec := &recordedStream{
		pcs:     make([]uint32, 0, max),
		nextPCs: make([]uint32, 0, max),
		memOff:  make([]uint32, 1, max+1),
		decoded: src.decoded,
	}
	for len(rec.pcs) < max {
		s, ok := src.Next()
		if !ok {
			rec.atEnd = true
			rec.err = src.err
			return rec
		}
		rec.pcs = append(rec.pcs, s.PC)
		rec.nextPCs = append(rec.nextPCs, s.NextPC)
		rec.memAddrs = append(rec.memAddrs, s.MemAddrs...)
		rec.memOff = append(rec.memOff, uint32(len(rec.memAddrs)))
	}
	return rec
}

// profileFingerprint canonically identifies a workload profile. Profile
// is a plain value struct, so %#v covers every generator knob — two
// custom workloads sharing a name but differing in shape never collide.
func profileFingerprint(p *workload.Profile) string {
	return fmt.Sprintf("%#v", *p)
}

// Default capture-cache budgets. A full-budget columnar recording is a
// few MB, so the defaults comfortably cover every (workload, trace) of
// the paper's sweep — later figures replay instead of re-interpreting —
// while still capping long-lived custom-workload hosts.
const (
	DefaultCaptureEntries = 32
	DefaultCaptureBytes   = 256 << 20
)

type captureKey struct {
	profile string
	trace   int
	insts   int
}

type captureEntry struct {
	once   sync.Once
	rec    *recordedStream
	genErr error
	bytes  int64 // approximate residency, set once the recording exists
}

// sizeBytes estimates a recording's heap residency: the columnar slot
// arrays exactly, the shared decode/translation maps by per-entry
// constants (an x86.Inst is ~48 bytes, a uop.UOp ~24).
func (rec *recordedStream) sizeBytes() int64 {
	b := int64(4 * (len(rec.pcs) + len(rec.nextPCs) + len(rec.memOff) + len(rec.memAddrs)))
	for _, d := range rec.decoded {
		b += 48 + int64(len(d.uops))*24
	}
	return b
}

// captureCache shares recordings across the concurrent (workload, mode)
// jobs of a sweep. sync.Once per entry collapses the four modes' racing
// requests into one interpretation; LRU eviction bounds residency by
// entry count and by approximate bytes (an evicted entry still in use
// stays alive via its users' references). The most recent entry is
// never evicted, so one oversized capture degrades to cache-of-one
// rather than thrashing.
type captureCache struct {
	mu         sync.Mutex
	entries    map[captureKey]*captureEntry
	order      []captureKey // front = least recently used
	bytes      int64        // sum of completed entries' sizes
	maxEntries int
	maxBytes   int64
}

var captures = &captureCache{
	entries:    map[captureKey]*captureEntry{},
	maxEntries: DefaultCaptureEntries,
	maxBytes:   DefaultCaptureBytes,
}

func (c *captureCache) get(p workload.Profile, traceIdx, budget int) (*recordedStream, error) {
	key := captureKey{profile: profileFingerprint(&p), trace: traceIdx, insts: budget}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &captureEntry{}
		c.entries[key] = e
	}
	c.touch(key)
	c.mu.Unlock()

	built := false
	e.once.Do(func() {
		built = true
		metrics.captureBuilds.Add(1)
		prog, err := workload.Generate(p, traceIdx)
		if err != nil {
			e.genErr = err
			return
		}
		e.rec = captureRecorded(prog, budget+captureSlack)
	})
	if built {
		if e.rec != nil {
			c.mu.Lock()
			// The entry may already have been evicted by a racing insert;
			// only charge residency it still holds.
			if cur, live := c.entries[key]; live && cur == e {
				e.bytes = e.rec.sizeBytes()
				c.bytes += e.bytes
				c.evict()
			}
			c.mu.Unlock()
		}
	} else {
		metrics.captureHits.Add(1)
	}
	return e.rec, e.genErr
}

// touch moves key to the most-recent end and evicts past the budgets.
// Caller holds c.mu.
func (c *captureCache) touch(key captureKey) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, key)
	c.evict()
}

// evict drops least-recently-used entries while either budget is
// exceeded, always retaining the most recent entry. Caller holds c.mu.
func (c *captureCache) evict() {
	for len(c.order) > 1 && (len(c.order) > c.maxEntries || c.bytes > c.maxBytes) {
		old := c.order[0]
		c.order = c.order[1:]
		if e, ok := c.entries[old]; ok {
			c.bytes -= e.bytes
			delete(c.entries, old)
		}
	}
}

func (c *captureCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[captureKey]*captureEntry{}
	c.order = nil
	c.bytes = 0
}

// SetCaptureLimits sets the capture cache's entry and byte budgets
// (values < 1 keep the current setting) and evicts down to them.
func SetCaptureLimits(entries int, bytes int64) {
	captures.mu.Lock()
	defer captures.mu.Unlock()
	if entries >= 1 {
		captures.maxEntries = entries
	}
	if bytes >= 1 {
		captures.maxBytes = bytes
	}
	captures.evict()
}

// CaptureOccupancy reports the capture cache's current and maximum
// entry count and approximate byte residency.
func CaptureOccupancy() (entries int, bytes int64, entryLimit int, byteLimit int64) {
	captures.mu.Lock()
	defer captures.mu.Unlock()
	return len(captures.entries), captures.bytes, captures.maxEntries, captures.maxBytes
}

// CaptureSlotStream interprets one hot-spot trace of the profile and
// returns the retired slot stream in the on-disk format (cmd/tracegen
// dumps these; SlotsFromRecorded reloads them).
func CaptureSlotStream(p workload.Profile, traceIdx, maxInsts int) (*trace.SlotStream, error) {
	prog, err := workload.Generate(p, traceIdx)
	if err != nil {
		return nil, err
	}
	rec := captureRecorded(prog, maxInsts)
	if rec.err != nil {
		return nil, rec.err
	}
	ss := &trace.SlotStream{Name: prog.Name, CodeBase: prog.Base, Code: prog.Code,
		Slots: make([]trace.SlotRec, 0, rec.len())}
	for i := 0; i < rec.len(); i++ {
		s := rec.slot(i)
		ss.Slots = append(ss.Slots, trace.SlotRec{PC: s.PC, NextPC: s.NextPC, MemAddrs: s.MemAddrs})
	}
	return ss, nil
}

// SlotsFromRecorded reconstructs engine-ready slots from an on-disk
// stream, re-decoding and re-translating each PC from the code image
// (decode is deterministic, so the result matches the original capture).
func SlotsFromRecorded(ss *trace.SlotStream) ([]pipeline.Slot, error) {
	insts := make(map[uint32]x86.Inst)
	uops := make(map[uint32][]uop.UOp)
	slots := make([]pipeline.Slot, 0, len(ss.Slots))
	for i := range ss.Slots {
		r := &ss.Slots[i]
		in, ok := insts[r.PC]
		var us []uop.UOp
		if ok {
			us = uops[r.PC]
		} else {
			b := ss.InstBytes(r.PC)
			if b == nil {
				return nil, fmt.Errorf("sim: slot %d PC %#x outside the code image", i, r.PC)
			}
			var err error
			in, err = x86.Decode(b)
			if err != nil {
				return nil, fmt.Errorf("sim: slot %d PC %#x: %w", i, r.PC, err)
			}
			us, err = translate.UOps(in, r.PC)
			if err != nil {
				return nil, fmt.Errorf("sim: slot %d PC %#x: %w", i, r.PC, err)
			}
			insts[r.PC] = in
			uops[r.PC] = us
		}
		slots = append(slots, pipeline.Slot{PC: r.PC, Inst: in, UOps: us, NextPC: r.NextPC, MemAddrs: r.MemAddrs})
	}
	return slots, nil
}

// NewSlotStream wraps a reconstructed slot slice as a correct-path
// stream for pipeline.New (the replay path for on-disk captures).
func NewSlotStream(slots []pipeline.Slot) pipeline.Stream {
	rec := &recordedStream{
		pcs:     make([]uint32, 0, len(slots)),
		nextPCs: make([]uint32, 0, len(slots)),
		memOff:  make([]uint32, 1, len(slots)+1),
		decoded: make(map[uint32]decodedInst, 256),
		atEnd:   true,
	}
	for i := range slots {
		s := &slots[i]
		rec.pcs = append(rec.pcs, s.PC)
		rec.nextPCs = append(rec.nextPCs, s.NextPC)
		rec.memAddrs = append(rec.memAddrs, s.MemAddrs...)
		rec.memOff = append(rec.memOff, uint32(len(rec.memAddrs)))
		rec.decoded[s.PC] = decodedInst{in: s.Inst, uops: s.UOps}
	}
	return &replayStream{rec: rec}
}
