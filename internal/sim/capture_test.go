package sim

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestCachedRunsBitIdentical: with capture+memo enabled, every mode's
// statistics must equal the uncached (live-interpreted) run's exactly —
// the caching layer is a pure wall-time optimization.
func TestCachedRunsBitIdentical(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	p, err := workload.ByName("vortex")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []pipeline.Mode{
		pipeline.ModeICache, pipeline.ModeTraceCache, pipeline.ModeRePLay, pipeline.ModeRePLayOpt,
	} {
		cold, err := RunWorkload(context.Background(), p, mode, Options{MaxInsts: 20_000, DisableCache: true})
		if err != nil {
			t.Fatal(err)
		}
		cached, err := RunWorkload(context.Background(), p, mode, Options{MaxInsts: 20_000})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold.Stats, cached.Stats) {
			t.Errorf("%v: cached stats differ from live run:\n live %+v\ncache %+v",
				mode, cold.Stats, cached.Stats)
		}
		// A repeat must hit the memo and still agree.
		memoed, err := RunWorkload(context.Background(), p, mode, Options{MaxInsts: 20_000})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cached.Stats, memoed.Stats) {
			t.Errorf("%v: memoized stats differ", mode)
		}
	}
}

// TestMemoKeyedByConfig: a config edit must miss the memo and produce a
// different result, while the unmodified run still hits it.
func TestMemoKeyedByConfig(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	p, err := workload.ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, Options{MaxInsts: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	small, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, Options{
		MaxInsts:  20_000,
		ConfigMod: func(c *pipeline.Config) { c.FrameCfg.MaxUOps = 16 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(base.Stats, small.Stats) {
		t.Error("config edit returned the memoized baseline result")
	}
}

// TestCaptureSharedAcrossModes: the four modes of one workload trigger
// exactly one interpretation of its slot stream.
func TestCaptureSharedAcrossModes(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []pipeline.Mode{
		pipeline.ModeICache, pipeline.ModeTraceCache, pipeline.ModeRePLay, pipeline.ModeRePLayOpt,
	} {
		if _, err := RunWorkload(context.Background(), p, mode, Options{MaxInsts: 10_000}); err != nil {
			t.Fatal(err)
		}
	}
	captures.mu.Lock()
	n := len(captures.entries)
	captures.mu.Unlock()
	if n != 1 {
		t.Errorf("capture cache holds %d entries after 4 modes of 1 workload, want 1", n)
	}
}

// TestCaptureCacheBounded: residency never exceeds maxLiveCaptures.
func TestCaptureCacheBounded(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	for i, name := range []string{"bzip2", "crafty", "eon", "gzip", "parser", "twolf", "vortex", "access"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p.Traces = 1
		if _, err := RunWorkload(context.Background(), p, pipeline.ModeICache, Options{MaxInsts: 2_000}); err != nil {
			t.Fatal(err)
		}
		captures.mu.Lock()
		n := len(captures.entries)
		captures.mu.Unlock()
		if n > DefaultCaptureEntries {
			t.Fatalf("after %d workloads: %d live captures > bound %d", i+1, n, DefaultCaptureEntries)
		}
	}
}

// TestSlotStreamDumpReload: the on-disk slot-stream capture reloads into
// the slots the interpreter originally produced, and a timing run over
// the reloaded stream matches a live run exactly.
func TestSlotStreamDumpReload(t *testing.T) {
	p, err := workload.ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	const insts = 8_000
	ss, err := CaptureSlotStream(p, 0, insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Slots) != insts {
		t.Fatalf("captured %d slots, want %d", len(ss.Slots), insts)
	}

	var buf bytes.Buffer
	if err := ss.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadSlots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	slots, err := SlotsFromRecorded(loaded)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: interpret live.
	prog, err := workload.Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := captureRecorded(prog, insts)
	if len(slots) != rec.len() {
		t.Fatalf("reloaded %d slots, captured %d", len(slots), rec.len())
	}
	captured := make([]pipeline.Slot, rec.len())
	for i := range captured {
		captured[i] = rec.slot(i)
	}
	for i := range slots {
		if !reflect.DeepEqual(slots[i], captured[i]) {
			t.Fatalf("slot %d differs after dump/reload:\n got %+v\nwant %+v", i, slots[i], captured[i])
		}
	}

	// And the timing model agrees over both streams.
	run := func(src pipeline.Stream) pipeline.Stats {
		eng := pipeline.New(pipeline.DefaultConfig(pipeline.ModeRePLayOpt), pipeline.ModeRePLayOpt, src)
		eng.Run(insts)
		return eng.Stats()
	}
	live := run(NewSlotStream(captured))
	reloaded := run(NewSlotStream(slots))
	if !reflect.DeepEqual(live, reloaded) {
		t.Error("timing stats differ between live and reloaded streams")
	}
}
