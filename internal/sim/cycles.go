package sim

import (
	"context"

	"repro/internal/cycleprof"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// CycleRow is one workload's guest-cycle profile under the RPO
// configuration: every charged fetch cycle attributed to a guest PC and
// fetch bin, joined against the detected loop structure.
type CycleRow struct {
	Workload string `json:"workload"`
	Class    string `json:"class"`
	// IPC is the measured-window instructions per cycle, so renderers
	// can put the hotspot table next to the headline metric.
	IPC    float64          `json:"ipc"`
	Report cycleprof.Report `json:"report"`
}

// CycleReport is the -experiment cycles result: one profile row per
// workload, in request order.
type CycleReport struct {
	Rows []CycleRow `json:"rows"`
}

// Profiles flattens the rows into the named reports the pprof and
// flame-text exporters consume.
func (r *CycleReport) Profiles() []cycleprof.NamedReport {
	out := make([]cycleprof.NamedReport, len(r.Rows))
	for i := range r.Rows {
		out[i] = cycleprof.NamedReport{Name: r.Rows[i].Workload, Report: &r.Rows[i].Report}
	}
	return out
}

// CycleProf runs the RPO configuration over each profile with a private
// cycle-profiler collector and assembles the per-workload hotspot rows.
// Profiling forces execution (no memo hits) and the serial per-trace
// path, so each row is conservation-exact against its measured run;
// rows come back in profile order, deterministic.
func CycleProf(ctx context.Context, profiles []workload.Profile, o Options) (*CycleReport, error) {
	cols := make([]*cycleprof.Collector, len(profiles))
	results := make([]Result, len(profiles))
	errs := make([]error, len(profiles))
	jobs := make([]runJob, len(profiles))
	for i, p := range profiles {
		cols[i] = cycleprof.NewCollector()
		po := o
		po.CycleProf = cols[i]
		jobs[i] = runJob{profile: p, mode: pipeline.ModeRePLayOpt, opts: po,
			out: &results[i], err: &errs[i]}
	}
	if err := runAll(ctx, jobs); err != nil {
		return nil, err
	}
	rep := &CycleReport{Rows: make([]CycleRow, len(profiles))}
	for i, p := range profiles {
		rep.Rows[i] = CycleRow{
			Workload: p.Name,
			Class:    p.Class,
			IPC:      results[i].IPC(),
			Report:   cols[i].Snapshot(),
		}
	}
	return rep, nil
}
