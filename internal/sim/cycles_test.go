package sim

import (
	"context"
	"testing"

	"repro/internal/cycleprof"
	"repro/internal/pipeline"
	"repro/internal/reuse"
	"repro/internal/workload"
)

// TestCycleConservation pins the tentpole invariant for every workload
// profile under several optimizer subsets: the profiler's per-PC ×
// per-bin cycle sums equal the pipeline's own measured-window counters
// exactly — Stats.Cycles in total and Stats.Bins bin by bin. The probe
// is invoked inside the engine's only two cycle-charging paths (tick
// and stallUntil) and attaches at the same warmup boundary ResetStats
// draws, so any drift means a new charge path bypassed those two
// functions.
func TestCycleConservation(t *testing.T) {
	for _, p := range workload.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, v := range reuseOptVariants {
				col := cycleprof.NewCollector()
				res, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt,
					Options{MaxInsts: 40_000, CycleProf: col, ConfigMod: v.mod, DisableCache: true})
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				rep := col.Snapshot()
				st := &res.Stats
				if rep.Cycles != st.Cycles {
					t.Errorf("%s/%s: attributed cycles %d != pipeline cycles %d",
						p.Name, v.name, rep.Cycles, st.Cycles)
				}
				if rep.Bins != st.Bins {
					t.Errorf("%s/%s: attributed bins %v != pipeline bins %v",
						p.Name, v.name, rep.Bins, st.Bins)
				}
				if rep.X86 != st.X86Retired {
					t.Errorf("%s/%s: per-PC x86 %d != pipeline %d",
						p.Name, v.name, rep.X86, st.X86Retired)
				}
				// The per-PC table must re-sum to the totals (the rollup
				// side of conservation).
				var cycles uint64
				var bins [pipeline.NumBins]uint64
				for i := range rep.PCs {
					cycles += rep.PCs[i].Cycles
					for b := range rep.PCs[i].Bins {
						bins[b] += rep.PCs[i].Bins[b]
					}
				}
				if cycles != rep.Cycles || bins != rep.Bins {
					t.Errorf("%s/%s: per-PC table sums (%d, %v) != report totals (%d, %v)",
						p.Name, v.name, cycles, bins, rep.Cycles, rep.Bins)
				}
				if rep.Cycles == 0 {
					t.Errorf("%s/%s: empty profile", p.Name, v.name)
				}
			}
		})
	}
}

// TestBinConservation is the pipeline-level sum(Bins) == Cycles
// invariant (previously an ad-hoc check inside TestModesSanity),
// promoted to cover every profile, the optimizer subsets, and both
// replay modes. Every cycle the engine advances must be charged to
// exactly one fetch bin — the accounting identity behind the paper's
// Figure 7/8 and behind the cycle profiler's attribution.
func TestBinConservation(t *testing.T) {
	modes := []pipeline.Mode{pipeline.ModeRePLay, pipeline.ModeRePLayOpt}
	for _, p := range workload.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range modes {
				for _, v := range reuseOptVariants {
					res, err := RunWorkload(context.Background(), p, mode,
						Options{MaxInsts: 30_000, ConfigMod: v.mod})
					if err != nil {
						t.Fatalf("%s/%s: %v", mode, v.name, err)
					}
					var binned uint64
					for _, n := range res.Stats.Bins {
						binned += n
					}
					if binned != res.Stats.Cycles {
						t.Errorf("%s/%s/%s: bins sum to %d, cycles %d",
							p.Name, mode, v.name, binned, res.Stats.Cycles)
					}
				}
			}
		})
	}
}

// TestCycleProfEndToEnd checks the experiment driver: rows in profile
// order, loop-joined hotspots present, and the pprof export conserving
// the measured cycle total.
func TestCycleProfEndToEnd(t *testing.T) {
	var ps []workload.Profile
	for _, name := range []string{"gzip", "access"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	rep, err := CycleProf(context.Background(), ps, Options{MaxInsts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(ps) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(ps))
	}
	var total uint64
	for i, r := range rep.Rows {
		if r.Workload != ps[i].Name {
			t.Errorf("row %d = %s, want %s (profile order)", i, r.Workload, ps[i].Name)
		}
		if r.Report.Cycles == 0 || len(r.Report.PCs) == 0 {
			t.Errorf("%s: empty profile", r.Workload)
		}
		if len(r.Report.Loops) == 0 {
			t.Errorf("%s: no loop-joined hotspots", r.Workload)
		}
		if r.IPC == 0 {
			t.Errorf("%s: zero IPC", r.Workload)
		}
		total += r.Report.Cycles
	}
	data, err := cycleprof.Profile(rep.Profiles())
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	_, got, err := cycleprof.ProfileTotal(data)
	if err != nil {
		t.Fatalf("ProfileTotal: %v", err)
	}
	if got != total {
		t.Fatalf("pprof total %d != measured cycles %d", got, total)
	}
}

// TestCycleProfDoesNotPolluteMemo: a profiled run must not poison the
// run memo for subsequent plain runs, a memoized plain run must not
// satisfy a profiling request (which needs execution), and attaching
// the profiler must not change simulation results.
func TestCycleProfDoesNotPolluteMemo(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, Options{MaxInsts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	col := cycleprof.NewCollector()
	withProf, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt,
		Options{MaxInsts: 30_000, CycleProf: col})
	if err != nil {
		t.Fatal(err)
	}
	if col.Snapshot().Cycles == 0 {
		t.Fatal("profiled run served from memo: collector saw nothing")
	}
	if base.Stats != withProf.Stats {
		t.Errorf("profiler attachment changed simulation results")
	}
}

// TestCycleProfWithReuse: both probes on one engine (the retirement
// feed tees) must leave each collector's conservation intact.
func TestCycleProfWithReuse(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	ccol := cycleprof.NewCollector()
	rcol := reuse.NewCollector()
	res, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt,
		Options{MaxInsts: 30_000, CycleProf: ccol, Reuse: rcol})
	if err != nil {
		t.Fatal(err)
	}
	crep := ccol.Snapshot()
	if crep.Cycles != res.Stats.Cycles {
		t.Errorf("cycleprof: %d cycles != pipeline %d", crep.Cycles, res.Stats.Cycles)
	}
	rrep := rcol.Snapshot()
	if rrep.TotalX86 != res.Stats.X86Retired {
		t.Errorf("reuse: %d x86 != pipeline %d", rrep.TotalX86, res.Stats.X86Retired)
	}
}
