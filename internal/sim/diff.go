package sim

import (
	"context"
	"fmt"

	"repro/internal/diff"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// DiffSide describes one side of an A/B comparison: a workload profile
// or an adapted external trace, the fetch-engine mode, and an optional
// configuration override applied after the shared Options.ConfigMod.
type DiffSide struct {
	// Label names this side in the report.
	Label string
	// Profile is the interpreter-backed workload; exactly one of
	// Profile and External must be set.
	Profile *workload.Profile
	// External is an adapted uploaded trace to replay instead.
	External *ExternalRun
	// Mode selects the fetch engine when HasMode is set; the default is
	// the optimizing configuration (RPO).
	Mode    pipeline.Mode
	HasMode bool
	// ConfigMod further narrows this side's configuration (e.g. a
	// disabled optimizer subset). It runs after Options.ConfigMod.
	ConfigMod func(*pipeline.Config)
}

func (s *DiffSide) mode() pipeline.Mode {
	if s.HasMode {
		return s.Mode
	}
	return pipeline.ModeRePLayOpt
}

// DiffVariant describes the variant side of a per-workload ablation
// sweep: the same workloads as the baseline, run under a modified
// configuration.
type DiffVariant struct {
	// Label names the variant in reports (e.g. the optspec it came from).
	Label string
	// ConfigMod applies the variant's configuration delta (runs after
	// Options.ConfigMod).
	ConfigMod func(*pipeline.Config)
	// Mode overrides the variant's fetch engine when HasMode is set.
	Mode    pipeline.Mode
	HasMode bool
	// Repeats is how many runs per side feed the significance gate
	// (minimum 1; the first run of each side carries the diff probe).
	Repeats int
}

// DiffRow is one workload's comparison.
type DiffRow struct {
	Workload string      `json:"workload"`
	Class    string      `json:"class"`
	Report   diff.Report `json:"report"`
}

// DiffReport is the -experiment diff result: one conservation-exact
// comparison per workload, in request order.
type DiffReport struct {
	Baseline string    `json:"baseline"`
	Variant  string    `json:"variant"`
	Repeats  int       `json:"repeats"`
	Rows     []DiffRow `json:"rows"`
}

// SignificantRegressions totals the gated regression verdicts across
// all workloads.
func (r *DiffReport) SignificantRegressions() int {
	n := 0
	for i := range r.Rows {
		n += r.Rows[i].Report.SignificantRegressions
	}
	return n
}

// SignificantImprovements totals the gated improvement verdicts.
func (r *DiffReport) SignificantImprovements() int {
	n := 0
	for i := range r.Rows {
		n += r.Rows[i].Report.SignificantImprovements
	}
	return n
}

// LoopsCompared totals the joined per-loop delta rows.
func (r *DiffReport) LoopsCompared() int {
	n := 0
	for i := range r.Rows {
		n += len(r.Rows[i].Report.Loops)
	}
	return n
}

func chainMod(a, b func(*pipeline.Config)) func(*pipeline.Config) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(c *pipeline.Config) { a(c); b(c) }
}

// sideJobs appends one side's runs to jobs: the first repeat carries
// the diff collector (forcing execution and the serial per-trace path,
// so its partition is conservation-exact), later repeats run plain and
// only feed the significance gate. Returns the result slots.
func sideJobs(jobs *[]runJob, side DiffSide, o Options, col *diff.Collector,
	repeats int) ([]Result, []error) {
	results := make([]Result, repeats)
	errs := make([]error, repeats)
	mode := side.mode()
	for r := 0; r < repeats; r++ {
		po := o
		po.ConfigMod = chainMod(o.ConfigMod, side.ConfigMod)
		if r == 0 {
			po.Diff = col
		}
		j := runJob{mode: mode, opts: po, out: &results[r], err: &errs[r]}
		if side.External != nil {
			j.external = side.External
		} else {
			j.profile = *side.Profile
		}
		*jobs = append(*jobs, j)
	}
	return results, errs
}

// DiffPair compares two fully specified sides: each side runs repeats
// times (the first run of each carries a private diff probe), and the
// two partitions join into one conservation-exact delta report with
// significance-gated top-line verdicts.
func DiffPair(ctx context.Context, base, vari DiffSide, o Options, repeats int) (*diff.Report, error) {
	for _, s := range []*DiffSide{&base, &vari} {
		if (s.Profile == nil) == (s.External == nil) {
			return nil, fmt.Errorf("sim: diff side %q needs exactly one of a workload or an external trace", s.Label)
		}
	}
	if repeats < 1 {
		repeats = 1
	}
	bcol, vcol := diff.NewCollector(), diff.NewCollector()
	var jobs []runJob
	bres, _ := sideJobs(&jobs, base, o, bcol, repeats)
	vres, _ := sideJobs(&jobs, vari, o, vcol, repeats)
	if err := runAll(ctx, jobs); err != nil {
		return nil, err
	}
	return diff.Compare(
		diff.RunSide{Label: base.Label, Profile: bcol.Snapshot(), Runs: statsOf(bres)},
		diff.RunSide{Label: vari.Label, Profile: vcol.Snapshot(), Runs: statsOf(vres)},
	), nil
}

// Diff sweeps the baseline-vs-variant comparison over each profile:
// every workload is run on both sides (first run of each side probed)
// and compared. Each side's mode and config come from its own
// DiffVariant (chained after Options.ConfigMod) — the variant does not
// inherit the baseline's overrides. Rows come back in profile order,
// deterministic.
func Diff(ctx context.Context, profiles []workload.Profile, o Options, base, vs DiffVariant) (*DiffReport, error) {
	repeats := vs.Repeats
	if repeats < 1 {
		repeats = 1
	}
	baseLabel := base.Label
	if baseLabel == "" {
		baseLabel = "baseline"
	}
	varLabel := vs.Label
	if varLabel == "" {
		varLabel = "variant"
	}

	type cell struct {
		bcol, vcol *diff.Collector
		bres, vres []Result
	}
	cells := make([]cell, len(profiles))
	var jobs []runJob
	for i := range profiles {
		p := profiles[i]
		bside := DiffSide{Label: baseLabel, Profile: &p,
			Mode: base.Mode, HasMode: base.HasMode, ConfigMod: base.ConfigMod}
		vside := DiffSide{Label: varLabel, Profile: &p,
			Mode: vs.Mode, HasMode: vs.HasMode, ConfigMod: vs.ConfigMod}
		cells[i].bcol, cells[i].vcol = diff.NewCollector(), diff.NewCollector()
		cells[i].bres, _ = sideJobs(&jobs, bside, o, cells[i].bcol, repeats)
		cells[i].vres, _ = sideJobs(&jobs, vside, o, cells[i].vcol, repeats)
	}
	if err := runAll(ctx, jobs); err != nil {
		return nil, err
	}

	rep := &DiffReport{Baseline: baseLabel, Variant: varLabel, Repeats: repeats,
		Rows: make([]DiffRow, len(profiles))}
	for i, p := range profiles {
		r := diff.Compare(
			diff.RunSide{Label: baseLabel, Profile: cells[i].bcol.Snapshot(), Runs: statsOf(cells[i].bres)},
			diff.RunSide{Label: varLabel, Profile: cells[i].vcol.Snapshot(), Runs: statsOf(cells[i].vres)},
		)
		rep.Rows[i] = DiffRow{Workload: p.Name, Class: p.Class, Report: *r}
	}
	return rep, nil
}

func statsOf(results []Result) []pipeline.Stats {
	out := make([]pipeline.Stats, len(results))
	for i := range results {
		out[i] = results[i].Stats
	}
	return out
}
