package sim

import (
	"context"
	"testing"

	"repro/internal/cycleprof"
	"repro/internal/diff"
	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/reuse"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestDiffProbeConservation pins the tentpole invariant for every
// workload profile under several optimizer subsets: the diff probe's
// per-loop partition re-sums exactly to the pipeline's measured-window
// Stats counters — cycles (total and bin by bin), retired x86 and
// micro-ops, baseline and covered micro-ops, frame fetches, optimizer
// removals — and per row the summed pass kills equal the row's net
// removal (the per-loop form of the opt invariant).
func TestDiffProbeConservation(t *testing.T) {
	for _, p := range workload.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, v := range reuseOptVariants {
				col := diff.NewCollector()
				res, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt,
					Options{MaxInsts: 40_000, Diff: col, ConfigMod: v.mod, DisableCache: true})
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				prof := col.Snapshot()
				st := &res.Stats
				checks := []struct {
					what      string
					got, want uint64
				}{
					{"cycles", prof.Cycles, st.Cycles},
					{"x86 retired", prof.X86, st.X86Retired},
					{"baseline uops", prof.UOps, st.UOpsBaseline},
					{"retired uops", prof.UOpsRetired, st.UOpsRetired},
					{"covered uops", prof.Covered, st.CoveredBaseline},
					{"frame hits", prof.FrameHits, st.FrameFetches},
					{"opt removed", prof.OptRemoved, uint64(st.Opt.Removed())},
				}
				for _, c := range checks {
					if c.got != c.want {
						t.Errorf("%s/%s: partition-summed %s %d != pipeline %d",
							p.Name, v.name, c.what, c.got, c.want)
					}
				}
				if prof.Bins != st.Bins {
					t.Errorf("%s/%s: partition bins %v != pipeline %v",
						p.Name, v.name, prof.Bins, st.Bins)
				}
				// Per-row opt invariant: net removal == summed pass kills.
				for _, r := range prof.Rows {
					var killed uint64
					for _, pc := range r.Passes {
						killed += pc.Killed
					}
					if killed != r.OptRemoved {
						t.Errorf("%s/%s: row %#x pass kills %d != opt removed %d",
							p.Name, v.name, r.Header, killed, r.OptRemoved)
					}
				}
				if prof.Cycles == 0 || len(prof.Rows) == 0 {
					t.Errorf("%s/%s: empty diff profile", p.Name, v.name)
				}
			}
		})
	}
}

// TestDiffPairZeroResidual pins the acceptance invariant end to end:
// comparing a baseline against an ablated variant, the per-loop deltas
// sum exactly to the difference of the two runs' Stats counters — the
// unattributed residual is zero — and the gated metric verdicts are
// present.
func TestDiffPairZeroResidual(t *testing.T) {
	for _, name := range []string{"gzip", "access"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range reuseOptVariants[1:] { // variants that actually differ
			base := DiffSide{Label: "baseline", Profile: &p}
			vari := DiffSide{Label: v.name, Profile: &p, ConfigMod: v.mod}
			r, err := DiffPair(context.Background(), base, vari,
				Options{MaxInsts: 40_000, DisableCache: true}, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, v.name, err)
			}
			if r.ResidualUOpsRemoved != 0 || r.ResidualCycles != 0 {
				t.Errorf("%s/%s: residuals (%d uops, %d cycles), want zero",
					name, v.name, r.ResidualUOpsRemoved, r.ResidualCycles)
			}
			if len(r.Loops) == 0 || len(r.Metrics) == 0 {
				t.Errorf("%s/%s: empty report", name, v.name)
			}
			for _, m := range r.Metrics {
				if m.Verdict == "" {
					t.Errorf("%s/%s: metric %s missing verdict", name, v.name, m.Name)
				}
			}
			// Cross-check: per-loop pass-kill deltas re-sum to the
			// OptRemoved delta of the whole comparison.
			var dKilled, dRemoved int64
			for _, l := range r.Loops {
				dRemoved += l.DOptRemoved
				for _, pd := range l.Passes {
					dKilled += pd.DKilled
				}
			}
			if dKilled != dRemoved {
				t.Errorf("%s/%s: pass-kill delta %d != opt-removed delta %d",
					name, v.name, dKilled, dRemoved)
			}
		}
	}
}

// TestDiffSweep checks the per-workload driver: rows in profile order,
// each row conservation-exact, repeats recorded, and the roll-up
// counters consistent with the rows.
func TestDiffSweep(t *testing.T) {
	var ps []workload.Profile
	for _, name := range []string{"gzip", "access"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	noOpt := func(c *pipeline.Config) { c.OptOptions = opt.Options{} }
	rep, err := Diff(context.Background(), ps, Options{MaxInsts: 40_000},
		DiffVariant{}, DiffVariant{Label: "no-opt", ConfigMod: noOpt, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repeats != 2 || rep.Variant != "no-opt" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Rows) != len(ps) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(ps))
	}
	loops := 0
	sawDelta := false
	for i, r := range rep.Rows {
		if r.Workload != ps[i].Name {
			t.Errorf("row %d = %s, want %s (profile order)", i, r.Workload, ps[i].Name)
		}
		if r.Report.ResidualUOpsRemoved != 0 || r.Report.ResidualCycles != 0 {
			t.Errorf("%s: residuals (%d, %d), want zero", r.Workload,
				r.Report.ResidualUOpsRemoved, r.Report.ResidualCycles)
		}
		// Disabling the optimizer passes can only shrink the measured
		// window's removal (frame construction itself still drops a few
		// micro-ops, so it need not reach zero).
		if r.Report.Variant.UOpsRemoved > r.Report.Baseline.UOpsRemoved {
			t.Errorf("%s: removal grew without passes: base=%d var=%d", r.Workload,
				r.Report.Baseline.UOpsRemoved, r.Report.Variant.UOpsRemoved)
		}
		if r.Report.Variant.UOpsRemoved < r.Report.Baseline.UOpsRemoved {
			sawDelta = true
		}
		loops += len(r.Report.Loops)
	}
	if !sawDelta {
		t.Errorf("no workload showed a removal delta under the ablation")
	}
	if rep.LoopsCompared() != loops {
		t.Errorf("LoopsCompared = %d, want %d", rep.LoopsCompared(), loops)
	}
}

// TestDiffDoesNotPolluteMemo: a diff-probed run must not poison the run
// memo, a memoized plain run must not satisfy a probed request, and the
// probe must not change simulation results.
func TestDiffDoesNotPolluteMemo(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, Options{MaxInsts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	col := diff.NewCollector()
	probed, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt,
		Options{MaxInsts: 30_000, Diff: col})
	if err != nil {
		t.Fatal(err)
	}
	if col.Snapshot().Cycles == 0 {
		t.Fatal("probed run served from memo: collector saw nothing")
	}
	if base.Stats != probed.Stats {
		t.Errorf("diff probe attachment changed simulation results")
	}
}

// TestAllProbesTogether attaches every observer at once — telemetry
// attribution, the reuse collector, the cycle profiler, and the diff
// probe — on one engine and checks each one's conservation held while
// the feeds teed. Run under -race this also proves the fan-out paths
// are data-race-free.
func TestAllProbesTogether(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(telemetry.Config{Attribution: true})
	rcol := reuse.NewCollector()
	ccol := cycleprof.NewCollector()
	dcol := diff.NewCollector()
	res, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt,
		Options{MaxInsts: 30_000, Telemetry: tel, Reuse: rcol, CycleProf: ccol,
			Diff: dcol, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	st := &res.Stats

	rrep := rcol.Snapshot()
	if rrep.TotalX86 != st.X86Retired {
		t.Errorf("reuse: %d x86 != pipeline %d", rrep.TotalX86, st.X86Retired)
	}
	crep := ccol.Snapshot()
	if crep.Cycles != st.Cycles {
		t.Errorf("cycleprof: %d cycles != pipeline %d", crep.Cycles, st.Cycles)
	}
	dprof := dcol.Snapshot()
	if dprof.Cycles != st.Cycles || dprof.X86 != st.X86Retired ||
		dprof.OptRemoved != uint64(st.Opt.Removed()) {
		t.Errorf("diff: (%d cycles, %d x86, %d removed) != pipeline (%d, %d, %d)",
			dprof.Cycles, dprof.X86, dprof.OptRemoved,
			st.Cycles, st.X86Retired, st.Opt.Removed())
	}
	// Telemetry's pass attribution and the diff partition fed from the
	// same recorder fan-out must agree on total kills.
	var telKilled, diffKilled uint64
	for _, ps := range tel.AttributionSnapshot() {
		telKilled += uint64(ps.Killed)
	}
	for _, pc := range dprof.Passes {
		diffKilled += pc.Killed
	}
	if telKilled != diffKilled {
		t.Errorf("telemetry kills %d != diff partition kills %d", telKilled, diffKilled)
	}
}
