package sim

import (
	"context"

	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Fig6Row is one application's bar group in Figure 6.
type Fig6Row struct {
	Workload string
	Class    string
	IPC      [4]float64 // indexed by pipeline.Mode
	Gain     float64    // RPO over RP, percent
}

// Fig6 runs the four processor configurations over every workload
// (Figure 6: estimated x86 instructions retired per cycle).
func Fig6(ctx context.Context, profiles []workload.Profile, o Options) ([]Fig6Row, error) {
	modes := []pipeline.Mode{pipeline.ModeICache, pipeline.ModeTraceCache, pipeline.ModeRePLay, pipeline.ModeRePLayOpt}
	results := make([][4]Result, len(profiles))
	errs := make([][4]error, len(profiles))
	var jobs []runJob
	for i, p := range profiles {
		for m, mode := range modes {
			jobs = append(jobs, runJob{profile: p, mode: mode, opts: o, out: &results[i][m], err: &errs[i][m]})
		}
	}
	if err := runAll(ctx, jobs); err != nil {
		return nil, err
	}
	rows := make([]Fig6Row, len(profiles))
	for i, p := range profiles {
		r := Fig6Row{Workload: p.Name, Class: p.Class}
		for m := range modes {
			r.IPC[m] = results[i][m].IPC()
		}
		if r.IPC[2] > 0 {
			r.Gain = 100 * (r.IPC[3] - r.IPC[2]) / r.IPC[2]
		}
		rows[i] = r
	}
	return rows, nil
}

// BreakdownRow is one application's RP/RPO cycle breakdown (Figures 7-8).
type BreakdownRow struct {
	Workload string
	RP       pipeline.Stats
	RPO      pipeline.Stats
}

// CycleBreakdown runs RP and RPO over the given workloads and returns
// their fetch-cycle bin breakdowns.
func CycleBreakdown(ctx context.Context, profiles []workload.Profile, o Options) ([]BreakdownRow, error) {
	results := make([][2]Result, len(profiles))
	errs := make([][2]error, len(profiles))
	var jobs []runJob
	for i, p := range profiles {
		jobs = append(jobs,
			runJob{profile: p, mode: pipeline.ModeRePLay, opts: o, out: &results[i][0], err: &errs[i][0]},
			runJob{profile: p, mode: pipeline.ModeRePLayOpt, opts: o, out: &results[i][1], err: &errs[i][1]})
	}
	if err := runAll(ctx, jobs); err != nil {
		return nil, err
	}
	rows := make([]BreakdownRow, len(profiles))
	for i, p := range profiles {
		rows[i] = BreakdownRow{Workload: p.Name, RP: results[i][0].Stats, RPO: results[i][1].Stats}
	}
	return rows, nil
}

// Table3Row is one application's row of Table 3, plus the coverage the
// paper quotes in the text.
type Table3Row struct {
	Workload      string
	Class         string
	UOpsRemoved   float64 // percent of dynamic micro-ops removed
	LoadsRemoved  float64 // percent of dynamic loads removed
	IPCIncrease   float64 // percent RPO over RP
	FrameCoverage float64 // fraction of micro-ops fetched from frames
	AssertRate    float64 // fraction of frame fetches that aborted
}

// Table3 reproduces Table 3 (micro-operations and loads removed by the
// optimizer, with the resulting IPC increase).
func Table3(ctx context.Context, profiles []workload.Profile, o Options) ([]Table3Row, error) {
	results := make([][2]Result, len(profiles))
	errs := make([][2]error, len(profiles))
	var jobs []runJob
	for i, p := range profiles {
		jobs = append(jobs,
			runJob{profile: p, mode: pipeline.ModeRePLay, opts: o, out: &results[i][0], err: &errs[i][0]},
			runJob{profile: p, mode: pipeline.ModeRePLayOpt, opts: o, out: &results[i][1], err: &errs[i][1]})
	}
	if err := runAll(ctx, jobs); err != nil {
		return nil, err
	}
	rows := make([]Table3Row, len(profiles))
	for i, p := range profiles {
		rp, rpo := results[i][0], results[i][1]
		row := Table3Row{
			Workload:      p.Name,
			Class:         p.Class,
			UOpsRemoved:   100 * rpo.Stats.UOpReduction(),
			LoadsRemoved:  100 * rpo.Stats.LoadReduction(),
			FrameCoverage: rpo.Stats.FrameCoverage(),
		}
		if rp.IPC() > 0 {
			row.IPCIncrease = 100 * (rpo.IPC() - rp.IPC()) / rp.IPC()
		}
		if rpo.Stats.FrameFetches > 0 {
			row.AssertRate = float64(rpo.Stats.FrameAborts) / float64(rpo.Stats.FrameFetches)
		}
		rows[i] = row
	}
	return rows, nil
}

// Fig9Row is one application's pair of bars in Figure 9.
type Fig9Row struct {
	Workload string
	Block    float64 // % IPC gain over RP, intra-block optimization
	Frame    float64 // % IPC gain over RP, frame-level optimization
}

// Fig9 compares intra-block-only optimization with frame-level
// optimization (Figure 9).
func Fig9(ctx context.Context, profiles []workload.Profile, o Options) ([]Fig9Row, error) {
	blockOpts := o
	blockOpts.ConfigMod = chainMods(o.ConfigMod, func(c *pipeline.Config) { c.OptScope = opt.ScopeIntraBlock })

	results := make([][3]Result, len(profiles))
	errs := make([][3]error, len(profiles))
	var jobs []runJob
	for i, p := range profiles {
		jobs = append(jobs,
			runJob{profile: p, mode: pipeline.ModeRePLay, opts: o, out: &results[i][0], err: &errs[i][0]},
			runJob{profile: p, mode: pipeline.ModeRePLayOpt, opts: blockOpts, out: &results[i][1], err: &errs[i][1]},
			runJob{profile: p, mode: pipeline.ModeRePLayOpt, opts: o, out: &results[i][2], err: &errs[i][2]})
	}
	if err := runAll(ctx, jobs); err != nil {
		return nil, err
	}
	rows := make([]Fig9Row, len(profiles))
	for i, p := range profiles {
		rp := results[i][0].IPC()
		rows[i] = Fig9Row{Workload: p.Name}
		if rp > 0 {
			rows[i].Block = 100 * (results[i][1].IPC() - rp) / rp
			rows[i].Frame = 100 * (results[i][2].IPC() - rp) / rp
		}
	}
	return rows, nil
}

// Fig10Workloads is the subset the paper plots in Figure 10.
var Fig10Workloads = []string{"bzip2", "crafty", "vortex", "dream", "excel"}

// Fig10Variants are the leave-one-out optimizer configurations, in the
// paper's order.
var Fig10Variants = []struct {
	Name string
	Mod  func(*opt.Options)
}{
	{"no ASST", func(o *opt.Options) { o.Assert = false }},
	{"no CP", func(o *opt.Options) { o.CP = false }},
	{"no CSE", func(o *opt.Options) { o.CSE = false }},
	{"no NOP", func(o *opt.Options) { o.NOP = false }},
	{"no RA", func(o *opt.Options) { o.RA = false }},
	{"no SF", func(o *opt.Options) { o.SF = false }},
}

// Fig10Row is one application's bar group in Figure 10: IPC of each
// leave-one-out variant normalized so RP = 0 and RPO = 1.
type Fig10Row struct {
	Workload string
	Relative [6]float64 // indexed like Fig10Variants
	RPIPC    float64
	RPOIPC   float64
}

// Fig10 reproduces the individual-optimization ablation (Figure 10).
func Fig10(ctx context.Context, o Options) ([]Fig10Row, error) {
	var profiles []workload.Profile
	for _, name := range Fig10Workloads {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	const variants = 6
	results := make([][variants + 2]Result, len(profiles))
	errs := make([][variants + 2]error, len(profiles))
	var jobs []runJob
	for i, p := range profiles {
		jobs = append(jobs,
			runJob{profile: p, mode: pipeline.ModeRePLay, opts: o, out: &results[i][0], err: &errs[i][0]},
			runJob{profile: p, mode: pipeline.ModeRePLayOpt, opts: o, out: &results[i][1], err: &errs[i][1]})
		for v := range Fig10Variants {
			mod := Fig10Variants[v].Mod
			vo := o
			vo.ConfigMod = chainMods(o.ConfigMod, func(c *pipeline.Config) { mod(&c.OptOptions) })
			jobs = append(jobs, runJob{profile: p, mode: pipeline.ModeRePLayOpt, opts: vo,
				out: &results[i][2+v], err: &errs[i][2+v]})
		}
	}
	if err := runAll(ctx, jobs); err != nil {
		return nil, err
	}
	rows := make([]Fig10Row, len(profiles))
	for i, p := range profiles {
		rp, rpo := results[i][0].IPC(), results[i][1].IPC()
		row := Fig10Row{Workload: p.Name, RPIPC: rp, RPOIPC: rpo}
		span := rpo - rp
		for v := 0; v < variants; v++ {
			if span != 0 {
				row.Relative[v] = (results[i][2+v].IPC() - rp) / span
			}
		}
		rows[i] = row
	}
	return rows, nil
}

func chainMods(a, b func(*pipeline.Config)) func(*pipeline.Config) {
	return func(c *pipeline.Config) {
		if a != nil {
			a(c)
		}
		if b != nil {
			b(c)
		}
	}
}
