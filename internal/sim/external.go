package sim

import (
	"context"
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/tracing"
)

// ReplaySlack is how many slots beyond the instruction budget a replayed
// stream should carry so the engine's retirement overshoot and frame
// lookahead never hit a premature end-of-stream. Trace exporters pad
// their record streams by this much past the intended budget.
const ReplaySlack = captureSlack

// ExternalRun is an adapted external trace ready to simulate: the
// engine-ready slot stream (package xtrace produces these) plus the
// identity the run memo needs.
type ExternalRun struct {
	// Name labels results, telemetry, and errors.
	Name string
	// Fingerprint is the trace's content ID. Empty disables run
	// memoization (the memo must never alias two different streams).
	Fingerprint string
	// Slots is the retired slot stream.
	Slots []pipeline.Slot
	// Insts is the trace's intended instruction budget; 0 means the
	// whole slot stream.
	Insts int
}

// ExternalClass is the workload class reported for external-trace runs.
const ExternalClass = "external"

// RunExternal simulates an external trace under the mode, with the same
// warmup discipline, memoization, metrics, and span tracing as
// interpreter-backed runs. The run memo keys on the trace fingerprint,
// so a re-run of the same uploaded trace under the same configuration is
// served from memory.
func RunExternal(ctx context.Context, ext ExternalRun, mode pipeline.Mode, o Options) (Result, error) {
	ctx, span := tracing.Start(ctx, "sim.run")
	span.SetAttr("workload", ext.Name)
	span.SetAttr("mode", mode.String())
	span.SetAttr("external", true)
	res, err := runExternal(ctx, ext, mode, o)
	span.SetError(err)
	span.End()
	return res, err
}

func runExternal(ctx context.Context, ext ExternalRun, mode pipeline.Mode, o Options) (Result, error) {
	res := Result{Workload: ext.Name, Class: ExternalClass, Mode: mode}
	if len(ext.Slots) == 0 {
		return res, fmt.Errorf("sim: external trace %q has no slots", ext.Name)
	}
	budget := ext.Insts
	if budget <= 0 || budget > len(ext.Slots) {
		budget = len(ext.Slots)
	}
	if o.MaxInsts > 0 && o.MaxInsts < budget {
		budget = o.MaxInsts
	}
	warmFrac := o.WarmupFrac
	if warmFrac == 0 {
		warmFrac = 0.4
	}
	cfg := pipeline.DefaultConfig(mode)
	if o.ConfigMod != nil {
		o.ConfigMod(&cfg)
	}

	useMemo := ext.Fingerprint != "" && !o.DisableCache && !o.Telemetry.RequiresExecution() &&
		o.Reuse == nil && o.CycleProf == nil && o.Diff == nil
	var key memoKey
	if useMemo {
		key = memoKey{profile: "xtrace:" + ext.Fingerprint, mode: mode,
			budget: budget, warmFrac: warmFrac, config: cfg.Fingerprint()}
		if s, ok := memoGet(key); ok {
			res.Stats = s
			if o.Notify != nil {
				o.Notify(res)
			}
			return res, nil
		}
	}

	stream, ok := NewSlotStream(ext.Slots).(slotSource)
	if !ok {
		return res, fmt.Errorf("sim: external slot stream is not a correct-path source")
	}
	st, err := runStreamStats(ctx, ext.Name, stream, cfg, mode, o, budget, warmFrac, 0)
	if err != nil {
		return res, err
	}
	res.Stats = st
	recordRun(&res.Stats)
	if useMemo {
		memoPut(key, res.Stats)
	}
	if o.Notify != nil {
		o.Notify(res)
	}
	return res, nil
}
