package sim

import (
	"repro/internal/frame"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DecodeCounter tallies micro-op counts over a captured trace (used by
// the Table 1 benchmark to report the micro-op/instruction ratio).
type DecodeCounter struct {
	tr *trace.Trace
}

// NewDecodeCounter returns a counter over the trace.
func NewDecodeCounter(tr *trace.Trace) *DecodeCounter { return &DecodeCounter{tr: tr} }

// TotalUOps decodes and translates every record, returning the total
// micro-op count of the dynamic stream.
func (d *DecodeCounter) TotalUOps() int {
	dec := frame.NewDecoder(d.tr)
	total := 0
	for i := range d.tr.Records {
		_, uops, err := dec.At(d.tr.Records[i].PC)
		if err != nil {
			continue
		}
		total += len(uops)
	}
	return total
}

// CollectFrames constructs up to max frames from a workload's first
// hot-spot trace (used by optimizer micro-benchmarks).
func CollectFrames(p workload.Profile, insts, max int) []*frame.Frame {
	prog, err := workload.Generate(p, 0)
	if err != nil {
		return nil
	}
	tr, err := prog.Capture(insts)
	if err != nil {
		return nil
	}
	var out []*frame.Frame
	cons := frame.NewConstructor(frame.DefaultConfig(), func(f *frame.Frame) {
		if len(out) < max {
			out = append(out, f)
		}
	})
	if err := frame.FeedTrace(cons, tr); err != nil {
		return nil
	}
	return out
}
