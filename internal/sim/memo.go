package sim

import (
	"sync"

	"repro/internal/pipeline"
)

// The run memo: a completed (profile, mode, budget, warmup, config)
// simulation is recorded by the canonical fingerprints of its inputs, so
// the RP/RPO runs that fig6, the fig7/fig8 breakdowns, table3 and fig9
// all repeat execute once per sweep instead of once per figure.
// Simulations are deterministic, so serving the memo is observationally
// identical to re-running.

type memoKey struct {
	profile  string // canonical profile fingerprint
	mode     pipeline.Mode
	budget   int
	warmFrac float64
	config   string // pipeline.Config fingerprint
}

var memo = struct {
	sync.RWMutex
	m map[memoKey]pipeline.Stats
}{m: map[memoKey]pipeline.Stats{}}

func memoGet(k memoKey) (pipeline.Stats, bool) {
	memo.RLock()
	defer memo.RUnlock()
	s, ok := memo.m[k]
	return s, ok
}

func memoPut(k memoKey, s pipeline.Stats) {
	memo.Lock()
	defer memo.Unlock()
	memo.m[k] = s
}

// ResetCaches clears the shared slot-stream captures and the run memo.
// Benchmarks use it to measure cold sweeps; long-lived hosts can use it
// to release capture memory.
func ResetCaches() {
	captures.reset()
	memo.Lock()
	memo.m = map[memoKey]pipeline.Stats{}
	memo.Unlock()
}
