package sim

import (
	"sync"

	"repro/internal/pipeline"
)

// The run memo: a completed (profile, mode, budget, warmup, config)
// simulation is recorded by the canonical fingerprints of its inputs, so
// the RP/RPO runs that fig6, the fig7/fig8 breakdowns, table3 and fig9
// all repeat execute once per sweep instead of once per figure.
// Simulations are deterministic, so serving the memo is observationally
// identical to re-running.
//
// Long-lived hosts (replayd) keep the memo warm across requests, so it
// is LRU-bounded: each hit refreshes the entry, and inserts beyond the
// entry budget evict the least recently used result. A Stats value is a
// few hundred bytes, so the default budget holds every run of the
// paper's full sweep many times over while still capping an adversarial
// stream of distinct custom-workload requests.

// DefaultMemoEntries is the default run-memo entry budget.
const DefaultMemoEntries = 4096

type memoKey struct {
	profile  string // canonical profile fingerprint
	mode     pipeline.Mode
	budget   int
	warmFrac float64
	config   string // pipeline.Config fingerprint
}

var memo = struct {
	sync.Mutex
	m     map[memoKey]pipeline.Stats
	order []memoKey // front = least recently used
	limit int
}{m: map[memoKey]pipeline.Stats{}, limit: DefaultMemoEntries}

func memoGet(k memoKey) (pipeline.Stats, bool) {
	memo.Lock()
	defer memo.Unlock()
	s, ok := memo.m[k]
	if ok {
		memoTouch(k)
		metrics.memoHits.Add(1)
	}
	return s, ok
}

func memoPut(k memoKey, s pipeline.Stats) {
	memo.Lock()
	defer memo.Unlock()
	if _, ok := memo.m[k]; !ok {
		memo.order = append(memo.order, k)
	} else {
		memoTouch(k)
	}
	memo.m[k] = s
	for len(memo.order) > memo.limit {
		old := memo.order[0]
		memo.order = memo.order[1:]
		delete(memo.m, old)
	}
}

// memoTouch moves k to the most-recent end. Caller holds memo.Mutex.
func memoTouch(k memoKey) {
	for i := range memo.order {
		if memo.order[i] == k {
			memo.order = append(memo.order[:i], memo.order[i+1:]...)
			break
		}
	}
	memo.order = append(memo.order, k)
}

// SetMemoLimit sets the run-memo entry budget (minimum 1) and evicts
// down to it immediately.
func SetMemoLimit(entries int) {
	if entries < 1 {
		entries = 1
	}
	memo.Lock()
	defer memo.Unlock()
	memo.limit = entries
	for len(memo.order) > memo.limit {
		old := memo.order[0]
		memo.order = memo.order[1:]
		delete(memo.m, old)
	}
}

// MemoOccupancy reports the run memo's current and maximum entry count.
func MemoOccupancy() (entries, limit int) {
	memo.Lock()
	defer memo.Unlock()
	return len(memo.m), memo.limit
}

// ResetCaches clears the shared slot-stream captures and the run memo.
// Benchmarks use it to measure cold sweeps; long-lived hosts can use it
// to release capture memory. Monotonic service counters (run/hit
// totals) are preserved; only occupancy drops to zero.
func ResetCaches() {
	captures.reset()
	memo.Lock()
	memo.m = map[memoKey]pipeline.Stats{}
	memo.order = nil
	memo.Unlock()
}
