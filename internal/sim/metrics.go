package sim

import (
	"sync"
	"sync/atomic"

	"repro/internal/pipeline"
)

// Service-level observability for long-lived hosts: monotonic counters
// over the caching layers plus an aggregate of every executed run's
// pipeline statistics. replayd's /metrics endpoint snapshots these; the
// CLI can print them after a sweep. Counters never reset (Prometheus
// convention); occupancy gauges live in MemoOccupancy and
// CaptureOccupancy.

var metrics struct {
	runsExecuted  atomic.Uint64 // simulations actually executed (memo misses)
	memoHits      atomic.Uint64 // runs served from the memo
	captureBuilds atomic.Uint64 // slot streams interpreted into captures
	captureHits   atomic.Uint64 // capture lookups served without interpreting

	mu        sync.Mutex
	aggregate pipeline.Stats // sum over executed runs
}

// recordRun accounts one executed (non-memoized) simulation.
func recordRun(s *pipeline.Stats) {
	metrics.runsExecuted.Add(1)
	metrics.mu.Lock()
	metrics.aggregate.Add(s)
	metrics.mu.Unlock()
}

// Metrics is a point-in-time snapshot of the driver's service counters.
type Metrics struct {
	RunsExecuted  uint64 // simulations executed to completion
	MemoHits      uint64 // runs served from the run memo
	CaptureBuilds uint64 // slot streams interpreted
	CaptureHits   uint64 // capture gets served from a live recording

	MemoEntries       int // current run-memo occupancy
	MemoLimit         int
	CaptureEntries    int
	CaptureBytes      int64
	CaptureEntryLimit int
	CaptureByteLimit  int64

	// Aggregate sums the pipeline statistics of every executed run since
	// process start (memo hits excluded — they re-serve already-counted
	// work).
	Aggregate pipeline.Stats
}

// SnapshotMetrics returns the current service counters and occupancy.
func SnapshotMetrics() Metrics {
	m := Metrics{
		RunsExecuted:  metrics.runsExecuted.Load(),
		MemoHits:      metrics.memoHits.Load(),
		CaptureBuilds: metrics.captureBuilds.Load(),
		CaptureHits:   metrics.captureHits.Load(),
	}
	m.MemoEntries, m.MemoLimit = MemoOccupancy()
	m.CaptureEntries, m.CaptureBytes, m.CaptureEntryLimit, m.CaptureByteLimit = CaptureOccupancy()
	metrics.mu.Lock()
	m.Aggregate = metrics.aggregate
	metrics.mu.Unlock()
	return m
}
