package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestParallelTracesBitIdentical: a multi-trace profile run through the
// parallel trace fan-out reports exactly the statistics of the serial
// per-trace loop, for every mode. Stats are integer counters combined
// in trace-index order, so "bit-identical" is literal equality.
func TestParallelTracesBitIdentical(t *testing.T) {
	old := SetParallelism(4)
	defer SetParallelism(old)

	modes := []pipeline.Mode{pipeline.ModeICache, pipeline.ModeTraceCache,
		pipeline.ModeRePLay, pipeline.ModeRePLayOpt}
	for _, name := range []string{"access", "excel"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Traces < 2 {
			t.Fatalf("%s: profile has %d traces, the test needs >= 2", name, p.Traces)
		}
		for _, mode := range modes {
			// DisableCache keeps both computations on the live path (no
			// memo hit can alias them) and is the gate-independent way to
			// force execution.
			o := Options{MaxInsts: 3_000, DisableCache: true}
			budget := o.MaxInsts
			cfg := pipeline.DefaultConfig(mode)

			var serial pipeline.Stats
			for tr := 0; tr < p.Traces; tr++ {
				st, err := runTraceStats(context.Background(), p, mode, cfg, o, budget, 0.4, tr)
				if err != nil {
					t.Fatalf("%s/%s serial trace %d: %v", name, mode, tr, err)
				}
				serial.Add(&st)
			}

			res, err := RunWorkload(context.Background(), p, mode, o)
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", name, mode, err)
			}
			if !reflect.DeepEqual(res.Stats, serial) {
				t.Errorf("%s/%s: parallel stats differ from serial\nparallel: %+v\nserial:   %+v",
					name, mode, res.Stats, serial)
			}
		}
	}
}

// TestParallelRunsSharedMemo: concurrent identical RunWorkload calls
// racing on the run memo (tiny entry budget, so puts and evictions
// interleave) all report the same stats, and the memo stays within its
// bound. Run under -race this also pins the pool and capture-layer
// ownership discipline across concurrently simulating goroutines.
func TestParallelRunsSharedMemo(t *testing.T) {
	ResetCaches()
	t.Cleanup(func() {
		SetMemoLimit(DefaultMemoEntries)
		ResetCaches()
	})
	SetMemoLimit(2)
	old := SetParallelism(4)
	defer SetParallelism(old)

	p, err := workload.ByName("access")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]pipeline.Stats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mode := pipeline.ModeRePLayOpt
			if w%2 == 1 {
				mode = pipeline.ModeRePLay
			}
			r, err := RunWorkload(context.Background(), p, mode, Options{MaxInsts: 2_000})
			results[w], errs[w] = r.Stats, err
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 2; w < workers; w++ {
		if !reflect.DeepEqual(results[w], results[w%2]) {
			t.Errorf("worker %d stats differ from worker %d under a shared memo", w, w%2)
		}
	}
	if n, limit := MemoOccupancy(); n > limit {
		t.Errorf("memo occupancy %d exceeds its limit %d", n, limit)
	}
}

// TestParallelTracesCancelMidFanout: cancelling while a multi-trace
// fan-out is in flight aborts every trace promptly and surfaces
// context.Canceled.
func TestParallelTracesCancelMidFanout(t *testing.T) {
	old := SetParallelism(4)
	defer SetParallelism(old)

	p, err := workload.ByName("excel")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = RunWorkload(ctx, p, pipeline.ModeRePLayOpt,
		Options{MaxInsts: 50_000_000, DisableCache: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %s, want prompt return", d)
	}
}

// TestJobsErrorSelection pins the deterministic error reporting of the
// fan-out layers: earliest real failure by index wins; a failure that
// wraps context.Canceled is real and must not be filtered; a bare
// context.Canceled is an induced abort and loses to both a real error
// and the caller's own cancellation.
func TestJobsErrorSelection(t *testing.T) {
	live := context.Background()
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	real1 := errors.New("boom")
	wrapped := fmt.Errorf("sim photo trace 1: %w", context.Canceled)

	cases := []struct {
		name   string
		errs   []error
		parent context.Context
		want   error
	}{
		{"no errors", []error{nil, nil}, live, nil},
		{"earliest real error wins", []error{nil, real1, wrapped}, live, real1},
		{"wrapped cancel is a real failure", []error{context.Canceled, wrapped, nil}, live, wrapped},
		{"induced cancel alone surfaces", []error{nil, context.Canceled}, live, context.Canceled},
		{"caller cancellation beats induced", []error{context.Canceled}, canceled, context.Canceled},
		{"real failure beats caller cancellation", []error{wrapped}, canceled, wrapped},
	}
	for _, c := range cases {
		if got := jobsError(c.errs, c.parent); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSetParallelism: the bound is clamped to >= 1 and reported back.
func TestSetParallelism(t *testing.T) {
	old := SetParallelism(3)
	defer SetParallelism(old)
	if got := Parallelism(); got != 3 {
		t.Errorf("Parallelism() = %d, want 3", got)
	}
	if prev := SetParallelism(0); prev != 3 {
		t.Errorf("SetParallelism returned %d, want previous bound 3", prev)
	}
	if got := Parallelism(); got != 1 {
		t.Errorf("Parallelism() after SetParallelism(0) = %d, want clamp to 1", got)
	}
}
