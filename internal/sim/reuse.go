package sim

import (
	"context"

	"repro/internal/pipeline"
	"repro/internal/reuse"
	"repro/internal/workload"
)

// ReuseRow is one workload's reuse decomposition under the RPO
// configuration: retired work and frame-lifecycle events attributed to
// {loop-depth bucket, instruction class}, plus the heaviest detected
// loops with trip counts and nesting depths.
type ReuseRow struct {
	Workload string `json:"workload"`
	Class    string `json:"class"`
	// Insts is the measured-window x86 instruction count — the
	// deterministic cost proxy the subset selector divides reuse mass by.
	Insts  uint64       `json:"insts"`
	Report reuse.Report `json:"report"`
}

// ReuseReport is the -experiment reuse result: the per-workload
// decomposition rows plus the ranked representative subset.
type ReuseReport struct {
	Rows []ReuseRow `json:"rows"`
	// Subset is the greedy representative selection in rank order:
	// workloads that together cover reuse.DefaultCoverage of the set's
	// reuse mass at the least simulated cost.
	Subset []reuse.SubsetPick `json:"subset"`
}

// Reuse runs the RPO configuration over each profile with a private
// reuse collector and assembles the decomposition table and the ranked
// representative subset. Reuse attribution forces execution (no memo
// hits), so the rows are exact for the measured runs; rows come back
// in profile order and the subset in greedy rank order, both
// deterministic.
func Reuse(ctx context.Context, profiles []workload.Profile, o Options) (*ReuseReport, error) {
	return ReuseWithExternal(ctx, profiles, nil, o)
}

// ReuseWithExternal is Reuse extended with adapted external traces:
// uploaded traces decompose under the same detector and feed the same
// representative-subset selection as the built-in profiles, so a
// spooled trace can stand in for (or be ranked against) the synthetic
// workload set. External rows follow the profile rows, in request
// order; the subset selector sees them all.
func ReuseWithExternal(ctx context.Context, profiles []workload.Profile,
	exts []ExternalRun, o Options) (*ReuseReport, error) {
	n := len(profiles) + len(exts)
	cols := make([]*reuse.Collector, n)
	results := make([]Result, n)
	errs := make([]error, n)
	jobs := make([]runJob, n)
	for i := range jobs {
		cols[i] = reuse.NewCollector()
		po := o
		po.Reuse = cols[i]
		jobs[i] = runJob{mode: pipeline.ModeRePLayOpt, opts: po,
			out: &results[i], err: &errs[i]}
		if i < len(profiles) {
			jobs[i].profile = profiles[i]
		} else {
			jobs[i].external = &exts[i-len(profiles)]
		}
	}
	if err := runAll(ctx, jobs); err != nil {
		return nil, err
	}
	rep := &ReuseReport{Rows: make([]ReuseRow, n)}
	items := make([]reuse.SubsetItem, n)
	for i := range jobs {
		name, class := results[i].Workload, results[i].Class
		r := ReuseRow{
			Workload: name,
			Class:    class,
			Insts:    results[i].Stats.X86Retired,
			Report:   cols[i].Snapshot(),
		}
		rep.Rows[i] = r
		items[i] = reuse.SubsetItem{
			Name: name,
			Cost: float64(r.Insts),
			Mass: reuse.Signature(&r.Report),
		}
	}
	rep.Subset = reuse.Select(items, reuse.DefaultCoverage)
	return rep, nil
}
