package sim

import (
	"context"
	"testing"

	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/reuse"
	"repro/internal/workload"
)

// reuseOptVariants are the optimizer configurations the conservation
// test exercises per profile: everything on, everything off, and two
// mixed subsets that change frame shapes (and so the attribution
// streams) in different ways.
var reuseOptVariants = []struct {
	name string
	mod  func(*pipeline.Config)
}{
	{"all", nil},
	{"none", func(c *pipeline.Config) { c.OptOptions = opt.Options{} }},
	{"no-spec", func(c *pipeline.Config) {
		c.OptOptions.Speculative = false
		c.OptOptions.SF = false
	}},
	{"block-scope", func(c *pipeline.Config) { c.OptScope = opt.ScopeIntraBlock }},
}

// TestReuseConservation pins the tentpole invariant for every workload
// profile under several optimizer subsets: the reuse decomposition's
// bucket sums equal the pipeline's own measured-window counters exactly
// — retired x86 instructions, baseline and retired micro-ops, frame
// builds, frame fetches, and optimizer removals. The probe hooks sit at
// the same call sites as the Stats increments and attach at the same
// warmup boundary, so any drift means a retirement or lifecycle path
// gained a counter without the matching probe call (the reuse analogue
// of the per-pass killed==Removed invariant).
func TestReuseConservation(t *testing.T) {
	for _, p := range workload.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, v := range reuseOptVariants {
				col := reuse.NewCollector()
				res, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt,
					Options{MaxInsts: 40_000, Reuse: col, ConfigMod: v.mod, DisableCache: true})
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				rep := col.Snapshot()
				var sum reuse.BucketStat
				for i := range rep.Buckets {
					sum.Add(&rep.Buckets[i].BucketStat)
				}
				st := &res.Stats
				checks := []struct {
					what      string
					got, want uint64
				}{
					{"x86 retired", sum.X86, st.X86Retired},
					{"baseline uops", sum.UOps, st.UOpsBaseline},
					{"retired uops", sum.UOpsRetired, st.UOpsRetired},
					{"covered uops", sum.Covered, st.CoveredBaseline},
					{"frame builds", sum.FrameBuilds, st.FramesConstructed},
					{"frame hits", sum.FrameHits, st.FrameFetches},
					{"opt removed", sum.OptRemoved, uint64(st.Opt.Removed())},
				}
				for _, c := range checks {
					if c.got != c.want {
						t.Errorf("%s/%s: bucket-summed %s %d != pipeline %d",
							p.Name, v.name, c.what, c.got, c.want)
					}
				}
				var classes uint64
				for _, n := range sum.Classes {
					classes += n
				}
				if classes != sum.UOps {
					t.Errorf("%s/%s: class sum %d != baseline uops %d",
						p.Name, v.name, classes, sum.UOps)
				}
				if rep.TotalUOps == 0 {
					t.Errorf("%s/%s: empty reuse report", p.Name, v.name)
				}
			}
		})
	}
}

// TestReuseEndToEnd checks the experiment driver: rows come back in
// profile order with non-trivial loop structure, and the ranked subset
// covers the configured mass fraction at less than full-set cost.
func TestReuseEndToEnd(t *testing.T) {
	var ps []workload.Profile
	for _, name := range []string{"gzip", "access", "photo"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	rep, err := Reuse(context.Background(), ps, Options{MaxInsts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(ps) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(ps))
	}
	for i, r := range rep.Rows {
		if r.Workload != ps[i].Name {
			t.Errorf("row %d = %s, want %s (profile order)", i, r.Workload, ps[i].Name)
		}
		if r.Report.Loops == 0 || r.Report.LoopUOps == 0 {
			t.Errorf("%s: no loop structure detected (%d loops, %d loop uops)",
				r.Workload, r.Report.Loops, r.Report.LoopUOps)
		}
		if r.Insts == 0 {
			t.Errorf("%s: zero cost proxy", r.Workload)
		}
		if len(r.Report.TopLoops) == 0 {
			t.Errorf("%s: no top loops", r.Workload)
		}
	}
	if len(rep.Subset) == 0 {
		t.Fatal("empty representative subset")
	}
	last := rep.Subset[len(rep.Subset)-1]
	if last.Coverage < reuse.DefaultCoverage {
		t.Errorf("subset coverage %.3f < %.2f", last.Coverage, reuse.DefaultCoverage)
	}
	for i, p := range rep.Subset {
		if p.Rank != i+1 {
			t.Errorf("rank %d at position %d", p.Rank, i)
		}
	}
	// Determinism: the same inputs must produce the same subset.
	rep2, err := Reuse(context.Background(), ps, Options{MaxInsts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Subset) != len(rep.Subset) {
		t.Fatalf("subset size diverged: %d vs %d", len(rep2.Subset), len(rep.Subset))
	}
	for i := range rep.Subset {
		if rep.Subset[i] != rep2.Subset[i] {
			t.Errorf("subset rank %d diverged: %+v vs %+v", i+1, rep.Subset[i], rep2.Subset[i])
		}
	}
}

// TestReuseDoesNotPolluteMemo: a reuse run must not poison the run memo
// for subsequent plain runs, and a plain memoized run must not satisfy
// a reuse request (which needs execution).
func TestReuseDoesNotPolluteMemo(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, Options{MaxInsts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	col := reuse.NewCollector()
	withReuse, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt,
		Options{MaxInsts: 30_000, Reuse: col})
	if err != nil {
		t.Fatal(err)
	}
	if col.Snapshot().TotalX86 == 0 {
		t.Fatal("reuse run served from memo: collector saw nothing")
	}
	if base.Stats != withReuse.Stats {
		t.Errorf("reuse attachment changed simulation results")
	}
}
