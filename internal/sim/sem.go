package sim

import (
	"context"
	"runtime"
	"sync/atomic"
)

// The process-global CPU semaphore. Every simulation fan-out — runAll's
// per-(workload, mode) jobs, runWorkload's per-trace workers, and any
// nested sweep a server worker starts — draws goroutines from this one
// pool, so concurrent callers compose to at most the machine's CPU
// count instead of multiplying it (the oversubscription bug each
// runAll call's private runtime.NumCPU() semaphore used to cause).
//
// Deadlock discipline: only top-level job dispatch blocks in Acquire;
// everything nested (per-trace fan-out) uses TryAcquire and falls back
// to running on the goroutine it already has. A held token therefore
// never waits on another token.
var cpuSem atomic.Pointer[sem]

func init() {
	cpuSem.Store(newSem(runtime.NumCPU()))
}

// acquireSem returns the current global semaphore. Callers must pair
// Acquire/TryAcquire and Release on the same returned value, so a
// concurrent SetParallelism cannot unbalance the new semaphore.
func acquireSem() *sem { return cpuSem.Load() }

// SetParallelism bounds the number of concurrently executing
// simulation goroutines process-wide (minimum 1). It replaces the
// global semaphore, so it must not be called while runs are in flight
// (tests and process startup are the intended callers). It returns the
// previous bound.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	old := cpuSem.Swap(newSem(n))
	return cap(old.ch)
}

// Parallelism reports the current process-wide simulation concurrency
// bound.
func Parallelism() int { return cap(cpuSem.Load().ch) }

// sem is a counting semaphore with a context-aware blocking acquire
// and a non-blocking acquire for opportunistic nested fan-out.
type sem struct {
	ch chan struct{}
}

func newSem(n int) *sem {
	return &sem{ch: make(chan struct{}, n)}
}

// Acquire blocks until a token is available or ctx is done.
func (s *sem) Acquire(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case s.ch <- struct{}{}:
		return nil
	}
}

// TryAcquire takes a token only if one is free right now.
func (s *sem) TryAcquire() bool {
	select {
	case s.ch <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a token.
func (s *sem) Release() { <-s.ch }
