// Package sim is the experiment driver: it wires workloads, the
// functional reference machine, and the timing model together, runs the
// paper's four processor configurations, and computes the metrics behind
// every table and figure of the evaluation (Section 6).
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cpu"
	"repro/internal/pipeline"
	"repro/internal/translate"
	"repro/internal/uop"
	"repro/internal/workload"
	"repro/internal/x86"
)

// cpuStream adapts the functional interpreter to the timing model's
// correct-path instruction stream (the Micro-Op Injector).
type cpuStream struct {
	c     *cpu.CPU
	insts map[uint32]x86.Inst
	uops  map[uint32][]uop.UOp
	err   error
}

func newCPUStream(prog *workload.Program) *cpuStream {
	return &cpuStream{
		c:     prog.NewCPU(),
		insts: make(map[uint32]x86.Inst),
		uops:  make(map[uint32][]uop.UOp),
	}
}

// Next retires one instruction on the reference machine.
func (s *cpuStream) Next() (pipeline.Slot, bool) {
	if s.c.Halted || s.err != nil {
		return pipeline.Slot{}, false
	}
	pc := s.c.PC
	in, ok := s.insts[pc]
	var us []uop.UOp
	if ok {
		us = s.uops[pc]
	} else {
		var err error
		in, err = x86.Decode(s.c.Mem.ReadBytes(pc, 15))
		if err != nil {
			s.err = err
			return pipeline.Slot{}, false
		}
		us, err = translate.UOps(in, pc)
		if err != nil {
			s.err = err
			return pipeline.Slot{}, false
		}
		s.insts[pc] = in
		s.uops[pc] = us
	}
	if in.Op == x86.OpHLT {
		return pipeline.Slot{}, false
	}
	rec, err := s.c.Step()
	if err != nil {
		s.err = err
		return pipeline.Slot{}, false
	}
	addrs := make([]uint32, 0, len(rec.MemOps))
	for _, m := range rec.MemOps {
		addrs = append(addrs, m.Addr)
	}
	return pipeline.Slot{PC: pc, Inst: in, UOps: us, NextPC: rec.NextPC, MemAddrs: addrs}, true
}

// Options configures a run beyond the processor mode.
type Options struct {
	// ConfigMod edits the Table 2 configuration before the run (ablation
	// hooks: optimization switches, scope, latencies, sizes).
	ConfigMod func(*pipeline.Config)
	// WarmupFrac is the fraction of the instruction budget excluded from
	// measurement while caches, predictors, and the frame cache warm.
	WarmupFrac float64
	// MaxInsts overrides the profile's instruction budget when > 0.
	MaxInsts int
}

// Result is the aggregated outcome of one workload under one mode.
type Result struct {
	Workload string
	Class    string
	Mode     pipeline.Mode
	Stats    pipeline.Stats
}

// IPC is the workload's x86 instructions per cycle.
func (r *Result) IPC() float64 { return r.Stats.IPC() }

// RunWorkload simulates every hot-spot trace of the profile under the
// mode and aggregates the measured statistics.
func RunWorkload(p workload.Profile, mode pipeline.Mode, o Options) (Result, error) {
	res := Result{Workload: p.Name, Class: p.Class, Mode: mode}
	budget := p.XInsts
	if o.MaxInsts > 0 {
		budget = o.MaxInsts
	}
	warmFrac := o.WarmupFrac
	if warmFrac == 0 {
		// The paper's traces run 50-300M instructions, so optimizer and
		// frame-cache fill is negligible; at our scaled trace lengths the
		// fill phase must be excluded explicitly.
		warmFrac = 0.4
	}
	for t := 0; t < p.Traces; t++ {
		prog, err := workload.Generate(p, t)
		if err != nil {
			return res, err
		}
		cfg := pipeline.DefaultConfig(mode)
		if o.ConfigMod != nil {
			o.ConfigMod(&cfg)
		}
		stream := newCPUStream(prog)
		eng := pipeline.New(cfg, mode, stream)

		warm := uint64(float64(budget) * warmFrac)
		eng.Run(warm)
		eng.ResetStats()
		eng.Run(uint64(budget) - warm)
		if stream.err != nil {
			return res, fmt.Errorf("sim %s trace %d: %w", p.Name, t, stream.err)
		}
		addStats(&res.Stats, eng.Stats())
	}
	return res, nil
}

func addStats(dst *pipeline.Stats, s pipeline.Stats) {
	dst.Cycles += s.Cycles
	for b := pipeline.Bin(0); b < pipeline.NumBins; b++ {
		dst.Bins[b] += s.Bins[b]
	}
	dst.X86Retired += s.X86Retired
	dst.UOpsRetired += s.UOpsRetired
	dst.UOpsBaseline += s.UOpsBaseline
	dst.LoadsBaseline += s.LoadsBaseline
	dst.LoadsRetired += s.LoadsRetired
	dst.CoveredBaseline += s.CoveredBaseline
	dst.CondBranches += s.CondBranches
	dst.Mispredicts += s.Mispredicts
	dst.BTBMisses += s.BTBMisses
	dst.FramesConstructed += s.FramesConstructed
	dst.FramesOptimized += s.FramesOptimized
	dst.FramesDropped += s.FramesDropped
	dst.FrameFetches += s.FrameFetches
	dst.FrameCommits += s.FrameCommits
	dst.FrameAborts += s.FrameAborts
	dst.UnsafeAborts += s.UnsafeAborts
	dst.Opt.UOpsIn += s.Opt.UOpsIn
	dst.Opt.UOpsOut += s.Opt.UOpsOut
	dst.Opt.LoadsIn += s.Opt.LoadsIn
	dst.Opt.LoadsOut += s.Opt.LoadsOut
	dst.Opt.RemovedNOP += s.Opt.RemovedNOP
	dst.Opt.FoldedCP += s.Opt.FoldedCP
	dst.Opt.Reassoc += s.Opt.Reassoc
	dst.Opt.CSEVals += s.Opt.CSEVals
	dst.Opt.CSELoads += s.Opt.CSELoads
	dst.Opt.SFLoads += s.Opt.SFLoads
	dst.Opt.FusedAsserts += s.Opt.FusedAsserts
	dst.Opt.RemovedDCE += s.Opt.RemovedDCE
	dst.Opt.UnsafeStores += s.Opt.UnsafeStores
	dst.EndUnbiased += s.EndUnbiased
	dst.EndUnstable += s.EndUnstable
	dst.EndMaxSize += s.EndMaxSize
	dst.DroppedSmall += s.DroppedSmall
}

// runJob is one (workload, mode, options) simulation request.
type runJob struct {
	profile workload.Profile
	mode    pipeline.Mode
	opts    Options
	out     *Result
	err     *error
}

// RunAll executes jobs in parallel across CPUs.
func runAll(jobs []runJob) error {
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(j *runJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := RunWorkload(j.profile, j.mode, j.opts)
			*j.out = r
			*j.err = err
		}(&jobs[i])
	}
	wg.Wait()
	for i := range jobs {
		if *jobs[i].err != nil {
			return *jobs[i].err
		}
	}
	return nil
}
