// Package sim is the experiment driver: it wires workloads, the
// functional reference machine, and the timing model together, runs the
// paper's four processor configurations, and computes the metrics behind
// every table and figure of the evaluation (Section 6).
package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/cycleprof"
	"repro/internal/diff"
	"repro/internal/pipeline"
	"repro/internal/reuse"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/translate"
	"repro/internal/uop"
	"repro/internal/workload"
	"repro/internal/x86"
)

// decodedInst is a per-PC decode-and-translation cache entry: one map
// lookup on the stepping hot path instead of the two that separate
// inst/µop maps cost.
type decodedInst struct {
	in   x86.Inst
	uops []uop.UOp
}

// addrChunk is the arena-chunk size for per-slot memory addresses: one
// allocation per ~16k addresses instead of one per memory instruction.
const addrChunk = 16 << 10

// maxSlotMemOps bounds the memory transactions a single instruction can
// issue (a load-op-store plus stack traffic stays well under this); a
// fresh arena chunk starts when less than this much room remains, so a
// slot's addresses never straddle chunks.
const maxSlotMemOps = 8

// cpuStream adapts the functional interpreter to the timing model's
// correct-path instruction stream (the Micro-Op Injector).
type cpuStream struct {
	c       *cpu.CPU
	decoded map[uint32]decodedInst
	addrs   []uint32 // current arena chunk for slot MemAddrs
	err     error
}

func newCPUStream(prog *workload.Program) *cpuStream {
	return &cpuStream{
		c:       prog.NewCPU(),
		decoded: make(map[uint32]decodedInst),
	}
}

// Next retires one instruction on the reference machine.
func (s *cpuStream) Next() (pipeline.Slot, bool) {
	if s.c.Halted || s.err != nil {
		return pipeline.Slot{}, false
	}
	pc := s.c.PC
	d, ok := s.decoded[pc]
	if !ok {
		in, err := x86.Decode(s.c.Mem.ReadBytes(pc, 15))
		if err != nil {
			s.err = err
			return pipeline.Slot{}, false
		}
		us, err := translate.UOps(in, pc)
		if err != nil {
			s.err = err
			return pipeline.Slot{}, false
		}
		d = decodedInst{in: in, uops: us}
		s.decoded[pc] = d
	}
	if d.in.Op == x86.OpHLT {
		return pipeline.Slot{}, false
	}
	if cap(s.addrs)-len(s.addrs) < maxSlotMemOps {
		s.addrs = make([]uint32, 0, addrChunk)
	}
	base := len(s.addrs)
	grown, nextPC, err := s.c.StepAddrs(s.addrs)
	if err != nil {
		s.err = err
		return pipeline.Slot{}, false
	}
	s.addrs = grown
	// nil (not empty) when the instruction touches no memory, so slots
	// round-trip exactly through the on-disk slot-stream format. The
	// addresses alias the arena chunk, capacity-clipped; slots are
	// read-only downstream.
	var addrs []uint32
	if n := len(grown); n > base {
		addrs = grown[base:n:n]
	}
	return pipeline.Slot{PC: pc, Inst: d.in, UOps: d.uops, NextPC: nextPC, MemAddrs: addrs}, true
}

// Options configures a run beyond the processor mode.
type Options struct {
	// ConfigMod edits the Table 2 configuration before the run (ablation
	// hooks: optimization switches, scope, latencies, sizes).
	ConfigMod func(*pipeline.Config)
	// WarmupFrac is the fraction of the instruction budget excluded from
	// measurement while caches, predictors, and the frame cache warm.
	WarmupFrac float64
	// MaxInsts overrides the profile's instruction budget when > 0.
	MaxInsts int
	// DisableCache turns off the shared slot-stream capture and the run
	// memo: every mode re-interprets the workload and every run executes
	// even if an identical one already did. Results are bit-identical
	// either way (the decoded stream is deterministic per profile and
	// trace); the switch exists for benchmarking the caching layer and
	// as an escape hatch.
	DisableCache bool
	// Notify, when set, is called once per completed run (memo hits
	// included) with its result. Sweep drivers like replayd use it to
	// stream per-(workload, mode) progress; it must be safe for
	// concurrent calls, since runAll completes runs in parallel.
	Notify func(Result)
	// Telemetry, when set, receives frame-lifecycle events from every
	// engine the run creates. A collector with attribution or tracing
	// enabled bypasses the run memo (a memoized run executes nothing, so
	// it would silently produce no events); a histogram-only collector
	// keeps memoization, and memo hits simply contribute no samples.
	Telemetry *telemetry.Collector
	// Reuse, when set, attaches a loop-structure reuse probe to every
	// engine after warmup (see internal/reuse): retired work and
	// frame-lifecycle events are attributed to {loop-depth bucket,
	// instruction class}. Like attribution telemetry it forces execution
	// (no run-memo hits — a memoized run would observe nothing) and
	// keeps the serial per-trace path, so probe totals line up exactly
	// with the measured-window Stats.
	Reuse *reuse.Collector
	// CycleProf, when set, attaches a guest-cycle profiler probe to
	// every engine after warmup (see internal/cycleprof): every charged
	// fetch cycle is attributed to the guest PC responsible, bucketed
	// by fetch bin, and joined against detected loop structure. Like
	// Reuse it forces execution and the serial per-trace path, so the
	// profile totals equal the measured-window Stats.Cycles/Bins
	// exactly (the conservation invariant).
	CycleProf *cycleprof.Collector
	// Diff, when set, attaches the ablation-diff probe to every engine
	// after warmup (see internal/diff): retired work, per-pass optimizer
	// removals, and charged fetch cycles are partitioned over the
	// innermost active loop, so two probed runs can be joined into a
	// conservation-exact delta report. Like Reuse and CycleProf it
	// forces execution and the serial per-trace path.
	Diff *diff.Collector
}

// Result is the aggregated outcome of one workload under one mode.
type Result struct {
	Workload string
	Class    string
	Mode     pipeline.Mode
	Stats    pipeline.Stats
}

// IPC is the workload's x86 instructions per cycle.
func (r *Result) IPC() float64 { return r.Stats.IPC() }

// RunWorkload simulates every hot-spot trace of the profile under the
// mode and aggregates the measured statistics. Cancelling ctx aborts
// the simulation between fetch groups and returns the context's error;
// a nil ctx means run to completion.
//
// Unless o.DisableCache is set, two layers of reuse apply: the retired
// slot stream of each (profile, trace, budget) is captured once and
// replayed for every mode, and a completed (profile, mode, budget,
// warmup, config) run is memoized outright, so experiment sweeps that
// share runs (fig6/fig7/fig8/table3/fig9 all repeat the RP and RPO
// baselines) execute them once. Both layers are observationally
// transparent: the stream is deterministic per (profile, trace).
func RunWorkload(ctx context.Context, p workload.Profile, mode pipeline.Mode, o Options) (Result, error) {
	// One span per (workload, mode) run; a no-op nil span unless the
	// caller's context carries an active trace (replayd requests do).
	ctx, span := tracing.Start(ctx, "sim.run")
	span.SetAttr("workload", p.Name)
	span.SetAttr("mode", mode.String())
	res, err := runWorkload(ctx, p, mode, o, span)
	span.SetError(err)
	span.End()
	return res, err
}

func runWorkload(ctx context.Context, p workload.Profile, mode pipeline.Mode, o Options, span *tracing.Span) (Result, error) {
	res := Result{Workload: p.Name, Class: p.Class, Mode: mode}
	budget := p.XInsts
	if o.MaxInsts > 0 {
		budget = o.MaxInsts
	}
	warmFrac := o.WarmupFrac
	if warmFrac == 0 {
		// The paper's traces run 50-300M instructions, so optimizer and
		// frame-cache fill is negligible; at our scaled trace lengths the
		// fill phase must be excluded explicitly.
		warmFrac = 0.4
	}
	cfg := pipeline.DefaultConfig(mode)
	if o.ConfigMod != nil {
		o.ConfigMod(&cfg)
	}

	useMemo := !o.DisableCache && !o.Telemetry.RequiresExecution() &&
		o.Reuse == nil && o.CycleProf == nil && o.Diff == nil
	var key memoKey
	if useMemo {
		key = memoKey{profile: profileFingerprint(&p), mode: mode,
			budget: budget, warmFrac: warmFrac, config: cfg.Fingerprint()}
		if s, ok := memoGet(key); ok {
			span.SetAttr("memo_hit", true)
			res.Stats = s
			if o.Notify != nil {
				o.Notify(res)
			}
			return res, nil
		}
	}

	// Multi-trace profiles fan their traces out across the global CPU
	// semaphore; aggregation stays in trace-index order, so the result
	// is bit-identical to the serial loop. Telemetry and span-traced
	// runs keep the serial path: both attach per-engine observers whose
	// event interleaving is part of their output.
	if p.Traces > 1 && o.Telemetry == nil && o.Reuse == nil && o.CycleProf == nil &&
		o.Diff == nil && span == nil {
		if err := runTracesParallel(ctx, &res, p, mode, cfg, o, budget, warmFrac); err != nil {
			return res, err
		}
	} else {
		for t := 0; t < p.Traces; t++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return res, err
				}
			}
			st, err := runTraceStats(ctx, p, mode, cfg, o, budget, warmFrac, t)
			if err != nil {
				return res, err
			}
			res.Stats.Add(&st)
		}
	}
	if o.Reuse != nil {
		// Reuse summary on the sim.run span: how much of the retired mass
		// sat inside loops, and how much loop structure was found.
		rep := o.Reuse.Snapshot()
		span.SetAttr("reuse_loops", rep.Loops)
		span.SetAttr("reuse_back_edges", rep.BackEdges)
		span.SetAttr("reuse_loop_uops", rep.LoopUOps)
		span.SetAttr("reuse_loop_uop_frac", rep.LoopFrac())
	}
	if o.CycleProf != nil {
		// Cycle-accounting summary on the sim.run span: the two bins
		// the paper's Figure 7/8 narrative turns on.
		rep := o.CycleProf.Snapshot()
		span.SetAttr("cycles_mispred_frac", rep.BinFrac(pipeline.BinMispred))
		span.SetAttr("cycles_frame_frac", rep.BinFrac(pipeline.BinFrame))
	}
	recordRun(&res.Stats)
	if useMemo {
		memoPut(key, res.Stats)
	}
	if o.Notify != nil {
		o.Notify(res)
	}
	return res, nil
}

// runTracesParallel runs every trace of the profile concurrently, each
// on its own engine over its own stream. Workers are spawned only while
// the global semaphore has free tokens (TryAcquire — a nested fan-out
// never blocks holding a token, which is what makes two-level
// parallelism deadlock-free); the calling goroutine always works too,
// so progress never depends on a token being free. Per-trace stats are
// combined in trace-index order after all traces finish: integer
// counters added in a fixed order make the aggregate bit-identical to
// the serial loop's.
func runTracesParallel(ctx context.Context, res *Result, p workload.Profile, mode pipeline.Mode,
	cfg pipeline.Config, o Options, budget int, warmFrac float64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	stats := make([]pipeline.Stats, p.Traces)
	errs := make([]error, p.Traces)
	var next atomic.Int64
	work := func() {
		for ctx.Err() == nil {
			t := int(next.Add(1)) - 1
			if t >= p.Traces {
				return
			}
			st, err := runTraceStats(ctx, p, mode, cfg, o, budget, warmFrac, t)
			stats[t], errs[t] = st, err
			if err != nil {
				cancel() // abort the remaining traces
			}
		}
	}

	sem := acquireSem()
	var wg sync.WaitGroup
	for w := 1; w < p.Traces && sem.TryAcquire(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sem.Release()
			work()
		}()
	}
	work()
	wg.Wait()

	if err := jobsError(errs, parent); err != nil {
		return err
	}
	for t := range stats {
		res.Stats.Add(&stats[t])
	}
	return nil
}

// jobsError selects the deterministic error for a completed fan-out:
// the failure of the earliest job by index. An error that is exactly
// context.Canceled is the induced abort of a failing sibling (our
// cancel tearing down in-flight jobs), never the root cause, so it is
// reported only when the caller's own context was cancelled or nothing
// better exists. An error that merely wraps context.Canceled, by
// contrast, is a real failure that absorbed a cancellation somewhere
// in its chain and must not be skipped.
func jobsError(errs []error, parent context.Context) error {
	var induced error
	for _, err := range errs {
		switch {
		case err == nil:
		case err != context.Canceled:
			return err
		case induced == nil:
			induced = err
		}
	}
	if err := parent.Err(); err != nil {
		return err
	}
	return induced
}

// runTraceStats simulates one hot-spot trace: warmup window, telemetry
// attach, measured window. When the context carries an active span the
// two windows get child spans and the measured window additionally
// aggregates per-optimizer-pass wall time into opt.<pass> spans.
func runTraceStats(ctx context.Context, p workload.Profile, mode pipeline.Mode,
	cfg pipeline.Config, o Options, budget int, warmFrac float64, t int) (pipeline.Stats, error) {
	var stream slotSource
	if o.DisableCache {
		prog, err := workload.Generate(p, t)
		if err != nil {
			return pipeline.Stats{}, err
		}
		stream = newCPUStream(prog)
	} else {
		rec, err := captures.get(p, t, budget)
		if err != nil {
			return pipeline.Stats{}, err
		}
		stream = &replayStream{rec: rec}
	}
	return runStreamStats(ctx, p.Name, stream, cfg, mode, o, budget, warmFrac, t)
}

// runStreamStats drives one engine over one correct-path stream: warmup
// window, telemetry attach, measured window. It is shared by the
// interpreter/capture path (runTraceStats) and the external-trace path
// (RunExternal); name and t only label telemetry runs, spans, and errors.
func runStreamStats(ctx context.Context, name string, stream slotSource, cfg pipeline.Config,
	mode pipeline.Mode, o Options, budget int, warmFrac float64, t int) (pipeline.Stats, error) {
	eng := pipeline.New(cfg, mode, stream)

	warm := uint64(float64(budget) * warmFrac)
	wctx, wspan := tracing.Start(ctx, "sim.warmup")
	wspan.SetAttr("trace", t)
	_, err := eng.RunContext(wctx, warm)
	wspan.End()
	if err != nil {
		return pipeline.Stats{}, err
	}
	// Telemetry attaches after warmup, so events, histograms, and
	// per-pass attribution cover exactly the measured window — the
	// same boundary ResetStats draws for the counters. Attaching per
	// engine (rather than toggling the collector) keeps a collector
	// shared across parallel runs race-free.
	if o.Telemetry != nil {
		run := o.Telemetry.NewRun(fmt.Sprintf("%s/%s/t%d", name, mode, t))
		eng.SetTelemetry(o.Telemetry, run)
	}
	// The reuse, cycle-profiler, and diff probes attach at the same
	// boundary, so their attribution covers exactly the measured window
	// and their totals equal the window's Stats counters (the
	// conservation invariant). The cycle profiler and the diff probe
	// consume the retired stream too (their loop views ride on the same
	// detector); when several are set, the retirement and cycle-charge
	// feeds tee to each.
	var rprobes []pipeline.ReuseProbe
	var cprobes []pipeline.CycleProbe
	if o.Reuse != nil {
		probe := o.Reuse.Attach(t)
		defer probe.Close()
		rprobes = append(rprobes, probe)
	}
	if o.CycleProf != nil {
		probe := o.CycleProf.Attach(t)
		defer probe.Close()
		rprobes = append(rprobes, probe)
		cprobes = append(cprobes, probe)
	}
	if o.Diff != nil {
		probe := o.Diff.Attach(t)
		defer probe.Close()
		rprobes = append(rprobes, probe)
		cprobes = append(cprobes, probe)
	}
	if p := teeReuse(rprobes); p != nil {
		eng.SetReuse(p)
	}
	if p := teeCycle(cprobes); p != nil {
		eng.SetCycleProf(p)
	}
	eng.ResetStats()
	mctx, mspan := tracing.Start(ctx, "sim.measure")
	mspan.SetAttr("trace", t)
	var agg *passAgg
	if mspan != nil {
		agg = newPassAgg()
		eng.SetPassRecorder(agg)
	}
	_, err = eng.RunContext(mctx, uint64(budget)-warm)
	if err == nil {
		if serr := stream.Err(); serr != nil {
			err = fmt.Errorf("sim %s trace %d: %w", name, t, serr)
		}
	}
	if agg != nil {
		agg.emit(mspan)
	}
	mspan.SetError(err)
	mspan.End()
	if err != nil {
		return pipeline.Stats{}, err
	}
	eng.CloseTelemetry()
	return eng.Stats(), nil
}

// teeReuse fans the retirement feed out to every attached probe. A
// single probe is returned as-is (preserving its optional
// ReusePassProbe extension through the engine's cached assertion); a
// real tee re-exports the extension only when some child implements
// it, so reuse-only runs never pay the optimizer's per-pass
// measurement wrapper.
func teeReuse(probes []pipeline.ReuseProbe) pipeline.ReuseProbe {
	switch len(probes) {
	case 0:
		return nil
	case 1:
		return probes[0]
	}
	t := &reuseTee{probes: probes}
	for _, p := range probes {
		if pp, ok := p.(pipeline.ReusePassProbe); ok {
			t.pass = append(t.pass, pp)
		}
	}
	if len(t.pass) > 0 {
		return reusePassTee{t}
	}
	return t
}

// reuseTee fans the retirement feed out to several probes attached to
// the same engine.
type reuseTee struct {
	probes []pipeline.ReuseProbe
	pass   []pipeline.ReusePassProbe
}

func (t *reuseTee) ReuseSlot(s pipeline.Slot, fromFrame bool, uopsExecuted int) {
	for _, p := range t.probes {
		p.ReuseSlot(s, fromFrame, uopsExecuted)
	}
}
func (t *reuseTee) ReuseFrameBuilt() {
	for _, p := range t.probes {
		p.ReuseFrameBuilt()
	}
}
func (t *reuseTee) ReuseFrameHit() {
	for _, p := range t.probes {
		p.ReuseFrameHit()
	}
}
func (t *reuseTee) ReuseFrameRetired(uops int) {
	for _, p := range t.probes {
		p.ReuseFrameRetired(uops)
	}
}
func (t *reuseTee) ReuseOptRemoved(removed int) {
	for _, p := range t.probes {
		p.ReuseOptRemoved(removed)
	}
}
func (t *reuseTee) ReuseEvict() {
	for _, p := range t.probes {
		p.ReuseEvict()
	}
}

// reusePassTee is a reuseTee whose method set additionally exposes the
// per-pass feed, used only when some child consumes it.
type reusePassTee struct{ *reuseTee }

func (t reusePassTee) ReusePass(pass string, killed, rewritten int) {
	for _, p := range t.pass {
		p.ReusePass(pass, killed, rewritten)
	}
}

// teeCycle fans the cycle-charge feed out to every attached probe.
func teeCycle(probes []pipeline.CycleProbe) pipeline.CycleProbe {
	switch len(probes) {
	case 0:
		return nil
	case 1:
		return probes[0]
	}
	return cycleTee{probes: probes}
}

// cycleTee fans cycle charges out to several probes.
type cycleTee struct{ probes []pipeline.CycleProbe }

func (t cycleTee) CycleCharge(pc uint32, bin pipeline.Bin, n uint64) {
	for _, p := range t.probes {
		p.CycleCharge(pc, bin, n)
	}
}

// runJob is one (workload, mode, options) simulation request. When
// external is set the job replays that adapted trace instead of
// interpreting the workload profile.
type runJob struct {
	profile  workload.Profile
	external *ExternalRun
	mode     pipeline.Mode
	opts     Options
	out      *Result
	err      *error
}

// runAll executes jobs in parallel under the process-global CPU
// semaphore, so nested and concurrent sweeps compose to the machine's
// parallelism instead of multiplying it. A token is acquired before
// each goroutine spawns, so a long job list never materializes more
// goroutines than can run; the first failure (or a cancelled ctx)
// stops dispatching and cancels the jobs already in flight.
//
// The error returned is deterministic: the failure of the earliest
// job by index. A job error that is exactly context.Canceled is the
// induced abort of a failing sibling, not a root cause, and is
// reported only when nothing better exists; an error that merely
// wraps context.Canceled is a real failure that absorbed a
// cancellation somewhere in its chain and is never skipped.
func runAll(ctx context.Context, jobs []runJob) error {
	if ctx == nil {
		ctx = context.Background()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sem := acquireSem()
	var wg sync.WaitGroup
	for i := range jobs {
		if sem.Acquire(ctx) != nil {
			break // cancelled: stop dispatching
		}
		wg.Add(1)
		go func(j *runJob) {
			defer wg.Done()
			defer sem.Release()
			var r Result
			var err error
			if j.external != nil {
				r, err = RunExternal(ctx, *j.external, j.mode, j.opts)
			} else {
				r, err = RunWorkload(ctx, j.profile, j.mode, j.opts)
			}
			*j.out = r
			*j.err = err
			if err != nil {
				cancel()
			}
		}(&jobs[i])
	}
	wg.Wait()

	errs := make([]error, len(jobs))
	for i := range jobs {
		errs[i] = *jobs[i].err
	}
	return jobsError(errs, parent)
}
