package sim

import (
	"context"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

func runOne(t *testing.T, name string, mode pipeline.Mode, insts int) Result {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p.Traces = 1 // keep unit tests fast
	r, err := RunWorkload(context.Background(), p, mode, Options{MaxInsts: insts})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestModesSanity: every configuration produces a plausible IPC and
// internally consistent accounting on a SPEC-like workload.
func TestModesSanity(t *testing.T) {
	insts := 60_000
	if testing.Short() {
		insts = 15_000
	}
	results := map[pipeline.Mode]Result{}
	for _, mode := range []pipeline.Mode{
		pipeline.ModeICache, pipeline.ModeTraceCache, pipeline.ModeRePLay, pipeline.ModeRePLayOpt,
	} {
		r := runOne(t, "bzip2", mode, insts)
		results[mode] = r
		s := r.Stats
		ipc := r.IPC()
		t.Logf("%-3s ipc=%.3f cycles=%d x86=%d uops=%d/%d cover=%.2f aborts=%d mispred=%d",
			mode, ipc, s.Cycles, s.X86Retired, s.UOpsRetired, s.UOpsBaseline,
			s.FrameCoverage(), s.FrameAborts, s.Mispredicts)
		if ipc < 0.1 || ipc > 8 {
			t.Errorf("%s: implausible IPC %.3f", mode, ipc)
		}
		if s.X86Retired == 0 || s.Cycles == 0 {
			t.Errorf("%s: empty run", mode)
		}
		// sum(Bins) == Cycles is pinned across all profiles, optimizer
		// subsets, and replay modes by TestBinConservation.
	}

	// Structural expectations on a high-bias, high-redundancy workload.
	rp, rpo := results[pipeline.ModeRePLay], results[pipeline.ModeRePLayOpt]
	if rpo.Stats.UOpReduction() <= 0 {
		t.Errorf("RPO removed no micro-ops: %.3f", rpo.Stats.UOpReduction())
	}
	if rp.Stats.UOpReduction() != 0 {
		t.Errorf("RP shows micro-op reduction: %.3f", rp.Stats.UOpReduction())
	}
	if rpo.Stats.FrameCoverage() == 0 || rp.Stats.FrameCoverage() == 0 {
		t.Error("no frame coverage in rePLay modes")
	}
	if rpo.IPC() <= rp.IPC() {
		t.Errorf("optimization did not help on bzip2: RP %.3f vs RPO %.3f", rp.IPC(), rpo.IPC())
	}
}

// TestStreamEndsCleanly: the engine stops at the stream end without
// spinning.
func TestStreamEndsCleanly(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := newCPUStream(prog)
	eng := pipeline.New(pipeline.DefaultConfig(pipeline.ModeRePLayOpt), pipeline.ModeRePLayOpt, stream)
	// Ask for more instructions than exist before a reasonable bound; the
	// generator's programs are effectively unbounded, so cap small and
	// ensure Run returns exactly the cap.
	got := eng.Run(5_000)
	// Frame commits retire whole frames, so the budget may overshoot by
	// less than one frame.
	if got < 5_000 || got > 5_000+256 {
		t.Errorf("retired %d, want ~5000", got)
	}
}
