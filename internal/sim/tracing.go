package sim

import (
	"sync"
	"time"

	"repro/internal/tracing"
)

// passAgg accumulates wall-clock optimizer pass timing for one traced
// engine run (opt.TimedPassRecorder). Passes run thousands of times per
// run, far too many for one span each; instead the totals are emitted
// as one synthesized child span per pass when the run's span closes.
type passAgg struct {
	mu     sync.Mutex
	order  []string
	totals map[string]*passTotal
}

type passTotal struct {
	calls     uint64
	killed    uint64
	rewritten uint64
	dur       time.Duration
}

func newPassAgg() *passAgg {
	return &passAgg{totals: map[string]*passTotal{}}
}

// RecordPass satisfies opt.PassRecorder; attribution flows through the
// telemetry side of the dual recorder, so nothing to do here.
func (a *passAgg) RecordPass(frameID uint64, pass string, killed, rewritten int) {}

// RecordPassTimed folds one pass invocation into the totals.
func (a *passAgg) RecordPassTimed(frameID uint64, pass string, killed, rewritten int, d time.Duration) {
	a.mu.Lock()
	t := a.totals[pass]
	if t == nil {
		t = &passTotal{}
		a.totals[pass] = t
		a.order = append(a.order, pass)
	}
	t.calls++
	t.killed += uint64(killed)
	t.rewritten += uint64(rewritten)
	t.dur += d
	a.mu.Unlock()
}

// emit synthesizes one child span per pass under parent, stacked
// back-to-back ending at now. The layout is synthetic (pass work is
// interleaved across the run, not contiguous), but each span's duration
// is the pass's true accumulated wall time, so the flame view reads as
// a per-pass time budget.
func (a *passAgg) emit(parent *tracing.Span) {
	if parent == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cursor := time.Now()
	for i := len(a.order) - 1; i >= 0; i-- {
		pass := a.order[i]
		t := a.totals[pass]
		start := cursor.Add(-t.dur)
		parent.EmitChild("opt."+pass, start, cursor, map[string]any{
			"calls":     t.calls,
			"killed":    t.killed,
			"rewritten": t.rewritten,
		})
		cursor = start
	}
}
