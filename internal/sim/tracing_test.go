package sim

import (
	"context"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/tracing"
	"repro/internal/workload"
)

// TestRunWorkloadSpans pins the span topology one traced run produces:
// sim.run → sim.warmup/sim.measure → pipeline.run, with per-pass
// opt.<pass> children under the measured window.
func TestRunWorkloadSpans(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	store := tracing.NewStore(tracing.StoreConfig{})
	tr := tracing.NewTracer(store)
	ctx, root := tr.StartRoot(context.Background(), "test-root", nil)

	if _, err := RunWorkload(ctx, p, pipeline.ModeRePLayOpt, Options{MaxInsts: 60_000, DisableCache: true}); err != nil {
		t.Fatal(err)
	}
	root.End()

	st := store.Get(root.TraceID().String())
	if st == nil {
		t.Fatal("no trace stored")
	}
	byName := map[string]int{}
	parents := map[string]string{}
	ids := map[string]string{} // span id -> name
	for _, sp := range st.Spans {
		byName[sp.Name]++
		ids[sp.SpanID] = sp.Name
	}
	for _, sp := range st.Spans {
		parents[sp.Name] = ids[sp.Parent]
	}
	for _, want := range []string{"sim.run", "sim.warmup", "sim.measure", "pipeline.run"} {
		if byName[want] == 0 {
			t.Errorf("missing span %q; got %v", want, byName)
		}
	}
	// RPO optimizes frames, so the measured window must report at least
	// one per-pass span (dce always runs).
	optSpans := 0
	for name := range byName {
		if strings.HasPrefix(name, "opt.") {
			optSpans++
		}
	}
	if optSpans == 0 {
		t.Errorf("no opt.<pass> spans; got %v", byName)
	}
	if byName["opt.dce"] == 0 {
		t.Errorf("no opt.dce span; got %v", byName)
	}
	if parents["sim.run"] != "test-root" {
		t.Errorf("sim.run parent = %q", parents["sim.run"])
	}
	if parents["sim.warmup"] != "sim.run" || parents["sim.measure"] != "sim.run" {
		t.Errorf("window parents: warmup=%q measure=%q", parents["sim.warmup"], parents["sim.measure"])
	}
	if parents["opt.dce"] != "sim.measure" {
		t.Errorf("opt.dce parent = %q", parents["opt.dce"])
	}
	// pipeline.run appears under both windows; spot-check one.
	if got := parents["pipeline.run"]; got != "sim.warmup" && got != "sim.measure" {
		t.Errorf("pipeline.run parent = %q", got)
	}
}

// TestRunWorkloadUntracedNoSpans: without an active span in the
// context, the run must not touch the tracer at all.
func TestRunWorkloadUntracedNoSpans(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt, Options{MaxInsts: 20_000}); err != nil {
		t.Fatal(err)
	}
}
