package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramExemplar(t *testing.T) {
	h := NewHistogram("lat", "latency", 1, 4, 16)
	h.Observe(2) // no exemplar
	h.ObserveEx(3, "aaaabbbbccccddddaaaabbbbccccdddd")
	h.ObserveEx(100, "11112222333344441111222233334444")

	s := h.Snapshot()
	if len(s.Exemplars) != 4 {
		t.Fatalf("exemplars len %d, want 4 (3 bounds + inf)", len(s.Exemplars))
	}
	if s.Exemplars[0].TraceID != "" {
		t.Errorf("bucket 0 has unexpected exemplar %+v", s.Exemplars[0])
	}
	if ex := s.Exemplars[1]; ex.TraceID != "aaaabbbbccccddddaaaabbbbccccdddd" || ex.Value != 3 {
		t.Errorf("bucket 1 exemplar %+v", ex)
	}
	if ex := s.Exemplars[3]; ex.TraceID != "11112222333344441111222233334444" || ex.Value != 100 {
		t.Errorf("+Inf exemplar %+v", ex)
	}

	// Last write wins within a bucket.
	h.ObserveEx(4, "ffffeeeeddddccccffffeeeeddddcccc")
	if ex := h.Snapshot().Exemplars[1]; ex.TraceID != "ffffeeeeddddccccffffeeeeddddcccc" {
		t.Errorf("exemplar not replaced: %+v", ex)
	}
}

func TestHistogramWithoutExemplarsOmitsSlice(t *testing.T) {
	h := NewHistogram("x", "", 1, 2)
	h.Observe(1)
	h.ObserveEx(2, "") // empty trace ID records no exemplar
	if s := h.Snapshot(); s.Exemplars != nil {
		t.Fatalf("exemplar slice allocated with no exemplars: %+v", s.Exemplars)
	}
}

func TestLatencyHistogram(t *testing.T) {
	h := NewLatencyHistogram("replayd_http_request_seconds", "request latency", 0.01, 0.1, 1)
	h.Observe(5 * time.Millisecond)
	h.ObserveEx(50*time.Millisecond, "aaaabbbbccccddddaaaabbbbccccdddd")
	h.Observe(2 * time.Second)
	h.Observe(-time.Second) // clamped to 0, lands in first bucket

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count %d", s.Count)
	}
	want := []uint64{2, 1, 0, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if math.Abs(s.Sum-2.055) > 1e-9 {
		t.Errorf("sum = %v seconds, want 2.055", s.Sum)
	}
	if ex := s.Exemplars[1]; ex.TraceID == "" || math.Abs(ex.Value-0.05) > 1e-9 {
		t.Errorf("latency exemplar %+v", ex)
	}
}

func TestPromEmitsExemplars(t *testing.T) {
	h := NewLatencyHistogram("replayd_http_request_seconds", "latency", 0.1, 1)
	h.ObserveEx(50*time.Millisecond, "aaaabbbbccccddddaaaabbbbccccdddd")

	var buf bytes.Buffer
	p := NewProm(&buf)
	p.Histogram(h.Snapshot())
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	out := buf.String()
	wantLine := `replayd_http_request_seconds_bucket{le="0.1"} 1 # {trace_id="aaaabbbbccccddddaaaabbbbccccdddd"} 0.05 `
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, wantLine) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no exemplar annotation on bucket line:\n%s", out)
	}
	// Unannotated buckets stay plain.
	if !strings.Contains(out, "replayd_http_request_seconds_bucket{le=\"1\"} 1\n") {
		t.Fatalf("exemplar leaked onto wrong bucket:\n%s", out)
	}
}

func TestParsePromExemplars(t *testing.T) {
	exposition := `# HELP replayd_http_request_seconds latency
# TYPE replayd_http_request_seconds histogram
replayd_http_request_seconds_bucket{le="0.1"} 3 # {trace_id="aaaabbbbccccddddaaaabbbbccccdddd"} 0.05 1722873600.123
replayd_http_request_seconds_bucket{le="1"} 5
replayd_http_request_seconds_bucket{le="+Inf"} 6 # {trace_id="11112222333344441111222233334444"} 4.2
replayd_http_request_seconds_sum 7.5
replayd_http_request_seconds_count 6
`
	fams, err := ParseProm(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 {
		t.Fatalf("got %d families", len(fams))
	}
	f := fams[0]
	if f.Type != "histogram" || f.Count != 6 || f.Sum != 7.5 {
		t.Fatalf("family mangled: %+v", f)
	}
	if len(f.Buckets) != 3 {
		t.Fatalf("got %d buckets", len(f.Buckets))
	}
	b0 := f.Buckets[0]
	if b0.Exemplar == nil {
		t.Fatal("bucket 0.1 exemplar not parsed")
	}
	if b0.Exemplar.TraceID != "aaaabbbbccccddddaaaabbbbccccdddd" ||
		math.Abs(b0.Exemplar.Value-0.05) > 1e-9 ||
		math.Abs(b0.Exemplar.Ts-1722873600.123) > 1e-6 {
		t.Fatalf("exemplar fields: %+v", b0.Exemplar)
	}
	if b0.Count != 3 {
		t.Fatalf("bucket count corrupted by exemplar suffix: %v", b0.Count)
	}
	if f.Buckets[1].Exemplar != nil {
		t.Fatal("plain bucket grew an exemplar")
	}
	inf := f.Buckets[2]
	if inf.Exemplar == nil || inf.Exemplar.Ts != 0 || inf.Exemplar.Value != 4.2 {
		t.Fatalf("+Inf exemplar (no timestamp form): %+v", inf.Exemplar)
	}
}

func TestParsePromExemplarMalformed(t *testing.T) {
	// Malformed exemplar suffixes degrade to "no exemplar", never to a
	// parse failure or a corrupted bucket count.
	exposition := `h_bucket{le="1"} 2 # not-an-exemplar
h_bucket{le="+Inf"} 3 # {trace_id="x"} notafloat
h_sum 4
h_count 3
`
	fams, err := ParseProm(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || len(fams[0].Buckets) != 2 {
		t.Fatalf("parse degraded wrong: %+v", fams)
	}
	for _, b := range fams[0].Buckets {
		if b.Exemplar != nil {
			t.Fatalf("malformed suffix produced exemplar: %+v", b.Exemplar)
		}
	}
	if fams[0].Buckets[0].Count != 2 || fams[0].Buckets[1].Count != 3 {
		t.Fatalf("bucket counts corrupted: %+v", fams[0].Buckets)
	}
}

func TestRoundTripExemplar(t *testing.T) {
	// What Prom emits, ParseProm reads back — the replayctl -metrics
	// path depends on this closing.
	h := NewLatencyHistogram("rt", "round trip", 0.1, 1)
	h.ObserveEx(300*time.Millisecond, "aaaabbbbccccddddaaaabbbbccccdddd")
	var buf bytes.Buffer
	NewProm(&buf).Histogram(h.Snapshot())

	fams, err := ParseProm(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got *PromExemplar
	for _, b := range fams[0].Buckets {
		if b.Exemplar != nil {
			got = b.Exemplar
		}
	}
	if got == nil {
		t.Fatal("exemplar lost in round trip")
	}
	if got.TraceID != "aaaabbbbccccddddaaaabbbbccccdddd" || math.Abs(got.Value-0.3) > 1e-9 || got.Ts == 0 {
		t.Fatalf("round-tripped exemplar: %+v", got)
	}
}
