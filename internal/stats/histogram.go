package stats

import (
	"fmt"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram safe for concurrent Observe
// calls. Bucket upper bounds are set at construction and never change,
// so the hot path is a binary search plus one atomic increment; there
// is no locking anywhere. Values are unsigned integers (cycles, uop
// counts) because that is what the simulator produces; the Prometheus
// exposition converts to float64 at render time.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // inclusive upper bounds, strictly increasing
	counts []atomic.Uint64
	sum    atomic.Uint64
	total  atomic.Uint64
}

// NewHistogram returns a histogram with the given inclusive upper
// bounds, which must be strictly increasing. An implicit +Inf bucket
// catches everything above the last bound.
func NewHistogram(name, help string, bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram %q bounds not increasing: %v", name, bounds))
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Name returns the metric name given at construction.
func (h *Histogram) Name() string { return h.name }

// Help returns the help text given at construction.
func (h *Histogram) Help() string { return h.help }

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	// Bucket count is small (≲16); a linear scan beats binary search on
	// branch prediction and is simpler.
	i := 0
	f := float64(v)
	for i < len(h.bounds) && f > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (not cumulative); Counts[len(Bounds)] is the
// +Inf bucket. The copy is not atomic across buckets — concurrent
// Observe calls may land between bucket reads — which is fine for
// monitoring output.
type HistogramSnapshot struct {
	Name   string
	Help   string
	Bounds []float64
	Counts []uint64
	Sum    uint64
	Count  uint64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   h.name,
		Help:   h.help,
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the average of all observed samples, or 0 if empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
