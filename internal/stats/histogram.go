package stats

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Exemplar links one recent observation in a histogram bucket to the
// trace that produced it, per the OpenMetrics exemplar model: a latency
// spike visible in /metrics resolves to a stored trace in one hop.
type Exemplar struct {
	TraceID string
	Value   float64
	Ts      time.Time
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe
// calls. Bucket upper bounds are set at construction and never change,
// so the hot path is a binary search plus one atomic increment; there
// is no locking anywhere. Values are unsigned integers (cycles, uop
// counts) because that is what the simulator produces; the Prometheus
// exposition converts to float64 at render time.
//
// Each bucket additionally holds the exemplar of its most recent
// ObserveEx observation (last-write-wins via an atomic pointer).
type Histogram struct {
	name      string
	help      string
	bounds    []float64 // inclusive upper bounds, strictly increasing
	counts    []atomic.Uint64
	exemplars []atomic.Pointer[Exemplar]
	sum       atomic.Uint64
	total     atomic.Uint64
}

// NewHistogram returns a histogram with the given inclusive upper
// bounds, which must be strictly increasing. An implicit +Inf bucket
// catches everything above the last bound.
func NewHistogram(name, help string, bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram %q bounds not increasing: %v", name, bounds))
		}
	}
	return &Histogram{
		name:      name,
		help:      help,
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Name returns the metric name given at construction.
func (h *Histogram) Name() string { return h.name }

// Help returns the help text given at construction.
func (h *Histogram) Help() string { return h.help }

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.counts[h.bucket(float64(v))].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// ObserveEx records one sample and, when traceID is non-empty, stamps
// the bucket's exemplar with it. A bucket already holding an exemplar
// from the same trace is left alone — hot sites (FetchRetire observes
// every uop) then pay one pointer load instead of an allocation per
// sample, while a new trace still replaces a stale exemplar.
func (h *Histogram) ObserveEx(v uint64, traceID string) {
	f := float64(v)
	i := h.bucket(f)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
	if traceID != "" {
		if old := h.exemplars[i].Load(); old == nil || old.TraceID != traceID {
			h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: f, Ts: time.Now()})
		}
	}
}

func (h *Histogram) bucket(f float64) int {
	// Bucket count is small (≲16); a linear scan beats binary search on
	// branch prediction and is simpler.
	i := 0
	for i < len(h.bounds) && f > h.bounds[i] {
		i++
	}
	return i
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (not cumulative); Counts[len(Bounds)] is the
// +Inf bucket. Exemplars is aligned with Counts; an entry with an empty
// TraceID means the bucket has none. The copy is not atomic across
// buckets — concurrent Observe calls may land between bucket reads —
// which is fine for monitoring output.
type HistogramSnapshot struct {
	Name      string
	Help      string
	Bounds    []float64
	Counts    []uint64
	Exemplars []Exemplar
	Sum       float64
	Count     uint64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   h.name,
		Help:   h.help,
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    float64(h.sum.Load()),
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Exemplars = loadExemplars(h.exemplars)
	return s
}

// Mean returns the average of all observed samples, or 0 if empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// LatencyHistogram is Histogram's wall-clock sibling: observations are
// durations, bucket bounds and the exported sum are in seconds (the
// Prometheus convention for *_seconds metrics). Internally it
// accumulates nanoseconds so the hot path stays integer-atomic.
type LatencyHistogram struct {
	name      string
	help      string
	bounds    []float64 // seconds
	counts    []atomic.Uint64
	exemplars []atomic.Pointer[Exemplar]
	sumNS     atomic.Uint64
	total     atomic.Uint64
}

// DefaultLatencyBounds covers the service-latency range replayd sees:
// 1ms through 60s, roughly geometric.
var DefaultLatencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// NewLatencyHistogram returns a duration histogram with the given
// inclusive upper bounds in seconds (strictly increasing; +Inf bucket
// implicit).
func NewLatencyHistogram(name, help string, bounds ...float64) *LatencyHistogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram %q bounds not increasing: %v", name, bounds))
		}
	}
	return &LatencyHistogram{
		name:      name,
		help:      help,
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Name returns the metric name given at construction.
func (h *LatencyHistogram) Name() string { return h.name }

// Observe records one duration.
func (h *LatencyHistogram) Observe(d time.Duration) { h.ObserveEx(d, "") }

// ObserveEx records one duration and, when traceID is non-empty,
// stamps the bucket's exemplar with it.
func (h *LatencyHistogram) ObserveEx(d time.Duration, traceID string) {
	if d < 0 {
		d = 0
	}
	secs := d.Seconds()
	i := 0
	for i < len(h.bounds) && secs > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(uint64(d))
	h.total.Add(1)
	if traceID != "" {
		if old := h.exemplars[i].Load(); old == nil || old.TraceID != traceID {
			h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: secs, Ts: time.Now()})
		}
	}
}

// Snapshot copies the current state; Sum is in seconds.
func (h *LatencyHistogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   h.name,
		Help:   h.help,
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    float64(h.sumNS.Load()) / 1e9,
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Exemplars = loadExemplars(h.exemplars)
	return s
}

func loadExemplars(ptrs []atomic.Pointer[Exemplar]) []Exemplar {
	out := make([]Exemplar, len(ptrs))
	any := false
	for i := range ptrs {
		if e := ptrs[i].Load(); e != nil {
			out[i] = *e
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}
