package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestParsePromNoPreamble: regression for replayctl -metrics choking on
// expositions without HELP/TYPE lines — a bare bucket series must still
// assemble into a histogram family by shape alone.
func TestParsePromNoPreamble(t *testing.T) {
	in := `
lat_bucket{le="10"} 1
lat_bucket{le="100"} 3
lat_bucket{le="+Inf"} 5
lat_sum 777
lat_count 5
plain_gauge 42
`
	fams, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	lat, ok := byName["lat"]
	if !ok || lat.Type != "histogram" {
		t.Fatalf("lat not inferred as histogram: %+v", fams)
	}
	if lat.Sum != 777 || lat.Count != 5 {
		t.Errorf("sum/count not attached: %+v", lat)
	}
	if len(lat.Buckets) != 3 || !math.IsInf(lat.Buckets[2].Le, 1) || lat.Buckets[2].Count != 5 {
		t.Errorf("buckets: %+v", lat.Buckets)
	}
	if g := byName["plain_gauge"]; g.Value != 42 {
		t.Errorf("plain sample mangled: %+v", g)
	}
}

// TestParsePromInfAnyPosition: the +Inf bucket and the _sum/_count lines
// may arrive before the finite buckets; assembly must not depend on line
// order.
func TestParsePromInfAnyPosition(t *testing.T) {
	in := `
lat_count 4
lat_bucket{le="+Inf"} 4
lat_sum 60
lat_bucket{le="5"} 1
lat_bucket{le="50"} 3
`
	fams, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 {
		t.Fatalf("families: %+v", fams)
	}
	f := fams[0]
	if f.Name != "lat" || f.Type != "histogram" || f.Sum != 60 || f.Count != 4 {
		t.Fatalf("family: %+v", f)
	}
	// Buckets must come back sorted by bound with +Inf last.
	if len(f.Buckets) != 3 {
		t.Fatalf("buckets: %+v", f.Buckets)
	}
	if f.Buckets[0].Le != 5 || f.Buckets[1].Le != 50 || !math.IsInf(f.Buckets[2].Le, 1) {
		t.Errorf("bucket order: %+v", f.Buckets)
	}
}

// TestParsePromSummaryShape: a quantile-labeled series with no preamble
// is a summary, and a declared one round-trips through Prom.Summary.
func TestParsePromSummaryShape(t *testing.T) {
	in := `
req{quantile="0.99"} 0.25
req{quantile="0.5"} 0.01
req_sum 12.5
req_count 100
`
	fams, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || fams[0].Type != "summary" {
		t.Fatalf("families: %+v", fams)
	}
	f := fams[0]
	if f.Sum != 12.5 || f.Count != 100 {
		t.Errorf("sum/count: %+v", f)
	}
	if len(f.Quantiles) != 2 || f.Quantiles[0].Q != 0.5 || f.Quantiles[1].V != 0.25 {
		t.Errorf("quantiles (must sort by q): %+v", f.Quantiles)
	}

	// Round-trip through the emitter.
	var sb strings.Builder
	p := NewProm(&sb)
	p.Summary("req", "request latency", []SummaryQuantile{{Q: 0.5, V: 0.01}, {Q: 0.99, V: 0.25}}, 12.5, 100)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Type != "summary" || got[0].Count != 100 || len(got[0].Quantiles) != 2 {
		t.Errorf("round-trip: %+v", got)
	}
}

// TestParsePromMalformedSkipped: garbage lines degrade to being skipped,
// never to an error — replayctl must render whatever it can.
func TestParsePromMalformedSkipped(t *testing.T) {
	in := `
this is not a metric
broken{le= 7
ok_metric 1
`
	fams, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fams {
		if f.Name == "ok_metric" && f.Value == 1 {
			return
		}
	}
	t.Fatalf("ok_metric lost among garbage: %+v", fams)
}

// TestHistogramBucketEdges: a value exactly on a bucket's inclusive
// upper bound must land in that bucket, deterministically — the scan is
// `f > bounds[i]`, so equality stops it.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram("edges", "", 10, 20, 30)
	for _, v := range []uint64{10, 20, 30} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{1, 1, 1, 0} // one per bounded bucket, +Inf empty
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	// One past each bound spills into the next bucket.
	h2 := NewHistogram("past", "", 10, 20, 30)
	for _, v := range []uint64{11, 21, 31} {
		h2.Observe(v)
	}
	if s := h2.Snapshot(); s.Counts[0] != 0 || s.Counts[1] != 1 || s.Counts[2] != 1 || s.Counts[3] != 1 {
		t.Errorf("past-edge counts %v, want [0 1 1 1]", s.Counts)
	}
}

// TestHistogramConcurrentSnapshot exercises Observe racing Snapshot
// under -race: snapshots during load must be internally usable (count
// monotone, never beyond the final total).
func TestHistogramConcurrentSnapshot(t *testing.T) {
	h := NewHistogram("race", "", 10, 100)
	const goroutines, each = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count < prev {
				t.Error("snapshot count went backwards")
				return
			}
			prev = s.Count
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); i < each; i++ {
				h.Observe((seed*each + i) % 300)
			}
		}(uint64(g))
	}
	// Wait for the observers, then stop the snapshotter.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if s := h.Snapshot(); s.Count == goroutines*each {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	s := h.Snapshot()
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != goroutines*each || s.Count != goroutines*each {
		t.Errorf("final counts %d/%d, want %d", bucketTotal, s.Count, goroutines*each)
	}
}

// TestSLOWindow drives the sliding window through a fake clock: samples
// age out, quantiles cover only the live region, and the ring stays
// recent under overload.
func TestSLOWindow(t *testing.T) {
	w := NewSLOWindow(time.Minute, 8)
	clock := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	w.now = func() time.Time { return clock }

	n, qv := w.Quantiles(0.5)
	if n != 0 || qv[0] != 0 {
		t.Fatalf("empty window: n=%d q=%v", n, qv)
	}

	for i := 1; i <= 4; i++ {
		w.Observe(time.Duration(i) * 100 * time.Millisecond)
		clock = clock.Add(10 * time.Second)
	}
	n, qv = w.Quantiles(0.5, 1.0)
	if n != 4 {
		t.Fatalf("live samples = %d, want 4", n)
	}
	if math.Abs(qv[0]-0.25) > 1e-9 || math.Abs(qv[1]-0.4) > 1e-9 {
		t.Errorf("quantiles = %v, want [0.25 0.4]", qv)
	}
	count, sum := w.Sum()
	if count != 4 || math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("sum = %d/%v, want 4/1.0", count, sum)
	}

	// Advance to t=65s: the t=0 sample is now outside the one-minute
	// window, the other three (t=10,20,30) remain.
	clock = clock.Add(25 * time.Second)
	n, _ = w.Quantiles(0.5)
	if n != 3 {
		t.Errorf("after aging: n = %d, want 3 (first sample stale)", n)
	}

	// Overload: more observations than capacity. The ring keeps the most
	// recent 8; all are in-window.
	for i := 0; i < 20; i++ {
		w.Observe(time.Second)
	}
	n, qv = w.Quantiles(0.99)
	if n != 8 || qv[0] != 1 {
		t.Errorf("overload: n=%d q=%v, want 8 samples of 1s", n, qv)
	}
}

// TestReadRuntime: the snapshot must report a live process — nonzero
// heap and at least one goroutine — and render as prefixed gauges.
func TestReadRuntime(t *testing.T) {
	s := ReadRuntime()
	if s.HeapObjectsBytes <= 0 || s.TotalBytes <= 0 {
		t.Errorf("memory gauges empty: %+v", s)
	}
	if s.Goroutines < 1 {
		t.Errorf("goroutines = %v", s.Goroutines)
	}

	var sb strings.Builder
	p := NewProm(&sb)
	p.Runtime("testd", s)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"testd_go_heap_objects_bytes",
		"testd_go_memory_total_bytes",
		"testd_go_goroutines",
		"testd_go_gc_cycles_total",
		"testd_go_gc_pause_seconds_p50",
		"testd_go_sched_latency_seconds_p99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Runtime exposition missing %q", want)
		}
	}
	// And it parses back with the tolerant parser.
	if _, err := ParseProm(strings.NewReader(out)); err != nil {
		t.Errorf("runtime gauges unparseable: %v", err)
	}
}
