package stats

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prom renders metrics in the Prometheus text exposition format
// (version 0.0.4): one HELP and TYPE line per metric followed by its
// sample. It is the minimal subset replayd's /metrics endpoint needs —
// unlabeled counters and gauges — kept here beside the table renderers
// so every output format the harness speaks lives in one package.
type Prom struct {
	w   io.Writer
	err error
}

// NewProm returns a renderer writing to w.
func NewProm(w io.Writer) *Prom { return &Prom{w: w} }

// Counter emits a monotonically increasing metric.
func (p *Prom) Counter(name, help string, value float64) {
	p.metric(name, help, "counter", value)
}

// Gauge emits a point-in-time metric.
func (p *Prom) Gauge(name, help string, value float64) {
	p.metric(name, help, "gauge", value)
}

// Histogram emits a snapshot in the Prometheus histogram exposition:
// cumulative _bucket{le="..."} samples ending at +Inf, then _sum and
// _count. Buckets whose snapshot carries an exemplar get an
// OpenMetrics exemplar annotation — `# {trace_id="..."} value ts` —
// appended to the bucket line, linking the bucket to a stored trace.
func (p *Prom) Histogram(s HistogramSnapshot) {
	if p.err != nil {
		return
	}
	p.header(s.Name, s.Help, "histogram")
	cum := uint64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		p.printf("%s_bucket{le=\"%s\"} %d%s\n", s.Name, formatBound(b), cum, exemplarSuffix(s, i))
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d%s\n", s.Name, s.Count, exemplarSuffix(s, len(s.Bounds)))
	p.printf("%s_sum %s\n", s.Name, strconv.FormatFloat(s.Sum, 'g', -1, 64))
	p.printf("%s_count %d\n", s.Name, s.Count)
}

// exemplarSuffix renders bucket i's exemplar annotation, or "".
func exemplarSuffix(s HistogramSnapshot, i int) string {
	if i >= len(s.Exemplars) || s.Exemplars[i].TraceID == "" {
		return ""
	}
	ex := s.Exemplars[i]
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %.3f",
		ex.TraceID,
		strconv.FormatFloat(ex.Value, 'g', -1, 64),
		float64(ex.Ts.UnixNano())/1e9)
}

// LabeledSample is one sample of a single-label metric family.
type LabeledSample struct {
	Label string
	Value float64
}

// LabeledCounter emits a counter family with one label dimension: one
// sample line per entry, in the given order. replayd uses it for the
// per-loop-depth-bucket reuse counters, where the label set is small
// and fixed.
func (p *Prom) LabeledCounter(name, help, label string, samples []LabeledSample) {
	if p.err != nil {
		return
	}
	p.header(name, help, "counter")
	for _, s := range samples {
		p.printf("%s{%s=%q} %s\n", name, label, s.Label,
			strconv.FormatFloat(s.Value, 'g', -1, 64))
	}
}

// SummaryQuantile is one pre-computed quantile of a Summary.
type SummaryQuantile struct {
	Q float64 // quantile in 0..1
	V float64 // value at that quantile
}

// Summary emits a Prometheus summary: one quantile-labeled sample per
// entry, then _sum and _count. replayd uses it for the sliding-window
// request-latency SLO view.
func (p *Prom) Summary(name, help string, quantiles []SummaryQuantile, sum float64, count int) {
	if p.err != nil {
		return
	}
	p.header(name, help, "summary")
	for _, q := range quantiles {
		p.printf("%s{quantile=\"%s\"} %s\n", name,
			strconv.FormatFloat(q.Q, 'g', -1, 64),
			strconv.FormatFloat(q.V, 'g', -1, 64))
	}
	p.printf("%s_sum %s\n", name, strconv.FormatFloat(sum, 'g', -1, 64))
	p.printf("%s_count %d\n", name, count)
}

func (p *Prom) metric(name, help, kind string, value float64) {
	if p.err != nil {
		return
	}
	p.header(name, help, kind)
	p.printf("%s %s\n", name, strconv.FormatFloat(value, 'g', -1, 64))
}

func (p *Prom) header(name, help, kind string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, kind)
}

func (p *Prom) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// escapeHelp applies the exposition-format escaping for HELP lines:
// backslash first (so escapes we introduce aren't re-escaped), then
// newline. An unescaped newline would terminate the comment mid-text
// and turn the remainder into a garbage sample line.
func escapeHelp(help string) string {
	help = strings.ReplaceAll(help, `\`, `\\`)
	return strings.ReplaceAll(help, "\n", `\n`)
}

// formatBound renders a bucket bound the way Prometheus expects: the
// shortest float representation ("8", "0.5", "1e+06").
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Err reports the first write error, if any.
func (p *Prom) Err() error { return p.err }
