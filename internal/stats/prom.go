package stats

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prom renders metrics in the Prometheus text exposition format
// (version 0.0.4): one HELP and TYPE line per metric followed by its
// sample. It is the minimal subset replayd's /metrics endpoint needs —
// unlabeled counters and gauges — kept here beside the table renderers
// so every output format the harness speaks lives in one package.
type Prom struct {
	w   io.Writer
	err error
}

// NewProm returns a renderer writing to w.
func NewProm(w io.Writer) *Prom { return &Prom{w: w} }

// Counter emits a monotonically increasing metric.
func (p *Prom) Counter(name, help string, value float64) {
	p.metric(name, help, "counter", value)
}

// Gauge emits a point-in-time metric.
func (p *Prom) Gauge(name, help string, value float64) {
	p.metric(name, help, "gauge", value)
}

func (p *Prom) metric(name, help, kind string, value float64) {
	if p.err != nil {
		return
	}
	// Help text is a single line in the exposition format; defang any
	// embedded newlines rather than corrupting the stream.
	help = strings.ReplaceAll(help, "\n", " ")
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, kind, name, strconv.FormatFloat(value, 'g', -1, 64))
}

// Err reports the first write error, if any.
func (p *Prom) Err() error { return p.err }
