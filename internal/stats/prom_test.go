package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestPromHelpEscaping(t *testing.T) {
	var sb strings.Builder
	p := NewProm(&sb)
	p.Counter("x_total", "line one\nline two with \\ backslash", 3)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `# HELP x_total line one\nline two with \\ backslash`
	if !strings.Contains(out, want) {
		t.Errorf("help not escaped:\n%s", out)
	}
	// The exposition must remain line-structured: exactly HELP, TYPE,
	// and one sample line.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("got %d lines, want 3:\n%s", len(lines), out)
	}
	if lines[2] != "x_total 3" {
		t.Errorf("sample line: %q", lines[2])
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram("lat", "latency", 1, 2, 4, 8)
	for _, v := range []uint64{0, 1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 120 {
		t.Errorf("sum = %v", s.Sum)
	}
	// Buckets: ≤1: {0,1}=2, ≤2: {2}=1, ≤4: {3}=1, ≤8: {5}=1, +Inf: {9,100}=2.
	want := []uint64{2, 1, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if got := s.Mean(); math.Abs(got-120.0/7) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("c", "", 10, 100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < 1000; i++ {
				h.Observe(i % 200)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("count = %d", s.Count)
	}
}

func TestPromHistogramExposition(t *testing.T) {
	h := NewHistogram("frame_uops", "frame length", 8, 32, 128)
	for _, v := range []uint64{4, 16, 64, 500} {
		h.Observe(v)
	}
	var sb strings.Builder
	p := NewProm(&sb)
	p.Histogram(h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE frame_uops histogram",
		`frame_uops_bucket{le="8"} 1`,
		`frame_uops_bucket{le="32"} 2`,
		`frame_uops_bucket{le="128"} 3`,
		`frame_uops_bucket{le="+Inf"} 4`,
		"frame_uops_sum 584",
		"frame_uops_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestParsePromRoundTrip(t *testing.T) {
	h := NewHistogram("dwell", "optimizer dwell\nsecond line", 10, 1000)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	var sb strings.Builder
	p := NewProm(&sb)
	p.Counter("jobs_total", "jobs", 42)
	p.Gauge("queue_depth", "depth", 3)
	p.Histogram(h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	fams, err := ParseProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["jobs_total"]; f.Type != "counter" || f.Value != 42 {
		t.Errorf("jobs_total = %+v", f)
	}
	if f := byName["queue_depth"]; f.Type != "gauge" || f.Value != 3 {
		t.Errorf("queue_depth = %+v", f)
	}
	f, ok := byName["dwell"]
	if !ok || f.Type != "histogram" {
		t.Fatalf("dwell family missing: %+v", fams)
	}
	if f.Help != "optimizer dwell\nsecond line" {
		t.Errorf("help round-trip: %q", f.Help)
	}
	if f.Count != 3 || f.Sum != 5055 {
		t.Errorf("sum/count: %+v", f)
	}
	if len(f.Buckets) != 3 {
		t.Fatalf("buckets: %+v", f.Buckets)
	}
	if f.Buckets[0].Le != 10 || f.Buckets[0].Count != 1 {
		t.Errorf("bucket 0: %+v", f.Buckets[0])
	}
	if !math.IsInf(f.Buckets[2].Le, 1) || f.Buckets[2].Count != 3 {
		t.Errorf("+Inf bucket: %+v", f.Buckets[2])
	}
}
