package stats

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromBucket is one cumulative histogram bucket from a parsed
// exposition; Le is math.Inf(1) for the +Inf bucket.
type PromBucket struct {
	Le    float64
	Count float64
}

// PromFamily is one metric family parsed from the Prometheus text
// format. For counters and gauges Value holds the sample; for
// histograms Buckets/Sum/Count hold the decomposed samples.
type PromFamily struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", "histogram", or "" if untyped
	Value   float64
	Buckets []PromBucket
	Sum     float64
	Count   float64
}

// ParseProm parses the subset of the Prometheus text exposition format
// that Prom emits (unlabeled counters/gauges plus histograms whose only
// label is le). It exists so replayctl can pretty-print a scraped
// /metrics without pulling in a client library. Unknown or malformed
// lines are skipped rather than fatal: a monitoring formatter should
// degrade, not refuse.
func ParseProm(r io.Reader) ([]PromFamily, error) {
	byName := map[string]*PromFamily{}
	var order []string
	family := func(name string) *PromFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &PromFamily{Name: name}
		byName[name] = f
		order = append(order, name)
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			switch fields[1] {
			case "HELP":
				text := ""
				if len(fields) == 4 {
					text = unescapeHelp(fields[3])
				}
				family(fields[2]).Help = text
			case "TYPE":
				if len(fields) == 4 {
					family(fields[2]).Type = fields[3]
				}
			}
			continue
		}
		name, labels, value, ok := parseSample(line)
		if !ok {
			continue
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			f := family(base)
			if f.Type == "histogram" {
				le, err := parseLe(labels)
				if err == nil {
					f.Buckets = append(f.Buckets, PromBucket{Le: le, Count: value})
				}
				continue
			}
			family(name).Value = value
		case strings.HasSuffix(name, "_sum") && byName[strings.TrimSuffix(name, "_sum")] != nil &&
			byName[strings.TrimSuffix(name, "_sum")].Type == "histogram":
			byName[strings.TrimSuffix(name, "_sum")].Sum = value
		case strings.HasSuffix(name, "_count") && byName[strings.TrimSuffix(name, "_count")] != nil &&
			byName[strings.TrimSuffix(name, "_count")].Type == "histogram":
			byName[strings.TrimSuffix(name, "_count")].Count = value
		default:
			family(name).Value = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make([]PromFamily, 0, len(order))
	for _, name := range order {
		f := byName[name]
		sort.Slice(f.Buckets, func(i, j int) bool { return f.Buckets[i].Le < f.Buckets[j].Le })
		out = append(out, *f)
	}
	return out, nil
}

// parseSample splits "name{labels} value" or "name value". A trailing
// timestamp, if present, is ignored.
func parseSample(line string) (name, labels string, value float64, ok bool) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", 0, false
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", "", 0, false
		}
		name, rest = fields[0], fields[1]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, false
	}
	return name, labels, v, true
}

func parseLe(labels string) (float64, error) {
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || k != "le" {
			continue
		}
		v = strings.Trim(v, `"`)
		if v == "+Inf" {
			return math.Inf(1), nil
		}
		return strconv.ParseFloat(v, 64)
	}
	return 0, fmt.Errorf("no le label in %q", labels)
}

func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
