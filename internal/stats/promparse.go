package stats

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromExemplar is an OpenMetrics exemplar annotation parsed from a
// bucket line's `# {trace_id="..."} value [timestamp]` suffix. Ts is
// Unix seconds, 0 if absent.
type PromExemplar struct {
	TraceID string
	Value   float64
	Ts      float64
}

// PromBucket is one cumulative histogram bucket from a parsed
// exposition; Le is math.Inf(1) for the +Inf bucket. Exemplar is
// non-nil when the bucket line carried an exemplar annotation.
type PromBucket struct {
	Le       float64
	Count    float64
	Exemplar *PromExemplar
}

// PromQuantile is one quantile sample of a parsed summary.
type PromQuantile struct {
	Q float64
	V float64
}

// PromLabeled is one labeled sample of a counter/gauge family with a
// label dimension (e.g. `replayd_fetch_cycles_total{bin="mispred"}`).
// Labels is the raw label text between the braces.
type PromLabeled struct {
	Labels string
	Value  float64
}

// PromFamily is one metric family parsed from the Prometheus text
// format. For counters and gauges Value holds the sample; for
// histograms Buckets/Sum/Count hold the decomposed samples; for
// summaries Quantiles/Sum/Count do. A labeled counter/gauge family
// keeps its per-label samples in Labeled, with Value their sum.
type PromFamily struct {
	Name      string
	Help      string
	Type      string // "counter", "gauge", "histogram", "summary", or "" if untyped
	Value     float64
	Labeled   []PromLabeled
	Buckets   []PromBucket
	Quantiles []PromQuantile
	Sum       float64
	Count     float64
}

// ParseProm parses the subset of the Prometheus text exposition format
// that Prom emits: unlabeled counters/gauges, histograms whose only
// label is le, and summaries whose only label is quantile. It exists so
// replayctl can pretty-print a scraped /metrics without pulling in a
// client library.
//
// The parser is deliberately tolerant — a monitoring formatter should
// degrade, not refuse. In particular it does not require a HELP/TYPE
// preamble: a bare `x_bucket{le="..."}` series is recognized as a
// histogram (and `x{quantile="..."}` as a summary) from shape alone,
// with _sum/_count lines attached to the family wherever they appear
// relative to the buckets, and the +Inf bucket accepted in any
// position. Unknown or malformed lines are skipped rather than fatal.
func ParseProm(r io.Reader) ([]PromFamily, error) {
	var lines []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Pass 1: find histogram and summary base names, declared (TYPE) or
	// inferred from sample shape, so routing below is independent of the
	// order samples and preamble lines arrive in.
	hist := map[string]bool{}
	summ := map[string]bool{}
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) == 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "histogram":
					hist[fields[2]] = true
				case "summary":
					summ[fields[2]] = true
				}
			}
			continue
		}
		name, labels, _, ok := parseSample(line)
		if !ok {
			continue
		}
		if base, found := strings.CutSuffix(name, "_bucket"); found {
			if _, ok := labelValue(labels, "le"); ok {
				hist[base] = true
			}
		} else if _, ok := labelValue(labels, "quantile"); ok {
			summ[name] = true
		}
	}

	// Pass 2: assemble families in first-reference order.
	byName := map[string]*PromFamily{}
	var order []string
	family := func(name string) *PromFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &PromFamily{Name: name}
		switch {
		case hist[name]:
			f.Type = "histogram"
		case summ[name]:
			f.Type = "summary"
		}
		byName[name] = f
		order = append(order, name)
		return f
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			switch fields[1] {
			case "HELP":
				text := ""
				if len(fields) == 4 {
					text = unescapeHelp(fields[3])
				}
				family(fields[2]).Help = text
			case "TYPE":
				if len(fields) == 4 {
					f := family(fields[2])
					// Shape inference never overrides a declaration.
					f.Type = fields[3]
				}
			}
			continue
		}
		name, labels, value, ok := parseSample(line)
		if !ok {
			continue
		}
		switch {
		case strings.HasSuffix(name, "_bucket") && hist[strings.TrimSuffix(name, "_bucket")]:
			f := family(strings.TrimSuffix(name, "_bucket"))
			if le, ok := labelValue(labels, "le"); ok {
				if v, err := parseBound(le); err == nil {
					f.Buckets = append(f.Buckets, PromBucket{Le: v, Count: value, Exemplar: parseExemplar(line)})
				}
			}
		case summ[name]:
			f := family(name)
			if qs, ok := labelValue(labels, "quantile"); ok {
				if q, err := strconv.ParseFloat(qs, 64); err == nil {
					f.Quantiles = append(f.Quantiles, PromQuantile{Q: q, V: value})
				}
			}
		case strings.HasSuffix(name, "_sum") && isDecomposed(hist, summ, strings.TrimSuffix(name, "_sum")):
			family(strings.TrimSuffix(name, "_sum")).Sum = value
		case strings.HasSuffix(name, "_count") && isDecomposed(hist, summ, strings.TrimSuffix(name, "_count")):
			family(strings.TrimSuffix(name, "_count")).Count = value
		default:
			f := family(name)
			if labels != "" {
				// A labeled counter/gauge family: keep every sample and
				// make Value the sum (the families Prom emits with label
				// dimensions are conservation partitions, so the sum is
				// the meaningful scalar).
				f.Labeled = append(f.Labeled, PromLabeled{Labels: labels, Value: value})
				f.Value += value
			} else {
				f.Value = value
			}
		}
	}

	out := make([]PromFamily, 0, len(order))
	for _, name := range order {
		f := byName[name]
		sort.Slice(f.Buckets, func(i, j int) bool { return f.Buckets[i].Le < f.Buckets[j].Le })
		sort.Slice(f.Quantiles, func(i, j int) bool { return f.Quantiles[i].Q < f.Quantiles[j].Q })
		out = append(out, *f)
	}
	return out, nil
}

func isDecomposed(hist, summ map[string]bool, base string) bool {
	return hist[base] || summ[base]
}

// parseExemplar extracts an OpenMetrics exemplar annotation —
// `# {labels} value [timestamp]` appended after a sample — returning
// nil if the line has none or it is malformed (tolerant, like the rest
// of the parser).
func parseExemplar(line string) *PromExemplar {
	i := strings.Index(line, " # ")
	if i < 0 {
		return nil
	}
	rest := strings.TrimSpace(line[i+3:])
	if !strings.HasPrefix(rest, "{") {
		return nil
	}
	j := strings.IndexByte(rest, '}')
	if j < 0 {
		return nil
	}
	labels := rest[1:j]
	fields := strings.Fields(rest[j+1:])
	if len(fields) == 0 {
		return nil
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil
	}
	ex := &PromExemplar{Value: v}
	ex.TraceID, _ = labelValue(labels, "trace_id")
	if len(fields) > 1 {
		if ts, err := strconv.ParseFloat(fields[1], 64); err == nil {
			ex.Ts = ts
		}
	}
	return ex
}

// parseSample splits "name{labels} value" or "name value". A trailing
// timestamp or exemplar annotation, if present, is ignored.
func parseSample(line string) (name, labels string, value float64, ok bool) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", 0, false
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", "", 0, false
		}
		name, rest = fields[0], fields[1]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, false
	}
	return name, labels, v, true
}

// labelValue extracts one label's (unquoted) value from a label body.
func labelValue(labels, key string) (string, bool) {
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if ok && k == key {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// parseBound parses a bucket bound, accepting the exposition's "+Inf"
// (and "-Inf") spellings.
func parseBound(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
