package stats

import (
	"math"
	runtimemetrics "runtime/metrics"
)

// RuntimeSnapshot is a point-in-time read of the Go runtime's own
// health gauges, the subset replayd exports: memory pressure, GC pause
// behavior, and scheduler load. Quantiles come from the runtime's
// native histograms (/gc/pauses and /sched/latencies).
type RuntimeSnapshot struct {
	HeapObjectsBytes float64 // live heap occupied by objects
	TotalBytes       float64 // all memory mapped by the runtime
	Goroutines       float64
	GCCycles         float64
	GCPauseP50       float64 // seconds
	GCPauseP99       float64 // seconds
	SchedLatencyP50  float64 // seconds goroutines waited to run
	SchedLatencyP99  float64 // seconds
}

// runtimeSamples are the runtime/metrics names ReadRuntime samples.
var runtimeSamples = []string{
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// ReadRuntime samples the runtime. Metrics a future runtime stops
// publishing read as zero rather than failing: monitoring degrades, it
// doesn't refuse.
func ReadRuntime() RuntimeSnapshot {
	samples := make([]runtimemetrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	runtimemetrics.Read(samples)

	var s RuntimeSnapshot
	num := func(i int) float64 {
		switch samples[i].Value.Kind() {
		case runtimemetrics.KindUint64:
			return float64(samples[i].Value.Uint64())
		case runtimemetrics.KindFloat64:
			return samples[i].Value.Float64()
		}
		return 0
	}
	s.HeapObjectsBytes = num(0)
	s.TotalBytes = num(1)
	s.Goroutines = num(2)
	s.GCCycles = num(3)
	if samples[4].Value.Kind() == runtimemetrics.KindFloat64Histogram {
		h := samples[4].Value.Float64Histogram()
		s.GCPauseP50 = histogramQuantile(h, 0.50)
		s.GCPauseP99 = histogramQuantile(h, 0.99)
	}
	if samples[5].Value.Kind() == runtimemetrics.KindFloat64Histogram {
		h := samples[5].Value.Float64Histogram()
		s.SchedLatencyP50 = histogramQuantile(h, 0.50)
		s.SchedLatencyP99 = histogramQuantile(h, 0.99)
	}
	return s
}

// histogramQuantile approximates the q-th quantile of a runtime
// bucketed histogram by the upper bound of the bucket where the
// cumulative count crosses q. Infinite bounds fall back to the nearest
// finite edge.
func histogramQuantile(h *runtimemetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= target {
			// Counts[i] covers Buckets[i] .. Buckets[i+1].
			hi := h.Buckets[i+1]
			if !math.IsInf(hi, 0) {
				return hi
			}
			lo := h.Buckets[i]
			if !math.IsInf(lo, 0) {
				return lo
			}
			return 0
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// Runtime emits the snapshot as prefixed gauges in exposition order.
func (p *Prom) Runtime(prefix string, s RuntimeSnapshot) {
	p.Gauge(prefix+"_go_heap_objects_bytes", "Bytes of live heap occupied by objects.", s.HeapObjectsBytes)
	p.Gauge(prefix+"_go_memory_total_bytes", "All memory mapped by the Go runtime.", s.TotalBytes)
	p.Gauge(prefix+"_go_goroutines", "Live goroutines.", s.Goroutines)
	p.Gauge(prefix+"_go_gc_cycles_total", "Completed GC cycles.", s.GCCycles)
	p.Gauge(prefix+"_go_gc_pause_seconds_p50", "Median stop-the-world GC pause.", s.GCPauseP50)
	p.Gauge(prefix+"_go_gc_pause_seconds_p99", "99th percentile stop-the-world GC pause.", s.GCPauseP99)
	p.Gauge(prefix+"_go_sched_latency_seconds_p50", "Median time goroutines waited runnable before running.", s.SchedLatencyP50)
	p.Gauge(prefix+"_go_sched_latency_seconds_p99", "99th percentile goroutine scheduling latency.", s.SchedLatencyP99)
}
