package stats

import (
	"sort"
	"sync"
	"time"
)

// SLOWindow tracks request latencies over a sliding time window so
// /metrics can expose "p99 over the last five minutes" instead of
// since-process-start aggregates that go stale after the first traffic
// burst. Samples are kept in a bounded ring; when the ring fills, the
// oldest samples fall off early — under overload the window then spans
// less time but stays recent, which is the right bias for an SLO view.
type SLOWindow struct {
	mu     sync.Mutex
	window time.Duration
	now    func() time.Time // test hook

	at   []time.Time // ring of sample times
	val  []float64   // ring of sample values (seconds)
	head int         // next write position
	n    int         // live samples
}

// DefaultSLOQuantiles are the quantiles replayd exposes.
var DefaultSLOQuantiles = []float64{0.5, 0.9, 0.99}

// NewSLOWindow returns a window covering the given duration with at
// most capacity samples. Non-positive arguments fall back to 5 minutes
// and 4096 samples.
func NewSLOWindow(window time.Duration, capacity int) *SLOWindow {
	if window <= 0 {
		window = 5 * time.Minute
	}
	if capacity <= 0 {
		capacity = 4096
	}
	return &SLOWindow{
		window: window,
		now:    time.Now,
		at:     make([]time.Time, capacity),
		val:    make([]float64, capacity),
	}
}

// Observe records one latency sample.
func (w *SLOWindow) Observe(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.at[w.head] = w.now()
	w.val[w.head] = d.Seconds()
	w.head = (w.head + 1) % len(w.at)
	if w.n < len(w.at) {
		w.n++
	}
}

// Quantiles returns the number of samples inside the window and the
// requested quantiles (seconds) over them, in order. With no samples in
// the window the quantiles are all zero.
func (w *SLOWindow) Quantiles(qs ...float64) (int, []float64) {
	w.mu.Lock()
	cutoff := w.now().Add(-w.window)
	live := make([]float64, 0, w.n)
	for i := 0; i < w.n; i++ {
		idx := (w.head - 1 - i + 2*len(w.at)) % len(w.at)
		if w.at[idx].Before(cutoff) {
			// Ring entries are in insertion order walking backwards from
			// head, so the first stale sample ends the live region.
			break
		}
		live = append(live, w.val[idx])
	}
	w.mu.Unlock()

	out := make([]float64, len(qs))
	if len(live) == 0 {
		return 0, out
	}
	sort.Float64s(live)
	for i, q := range qs {
		out[i] = quantileSorted(live, q)
	}
	return len(live), out
}

// Sum returns the count and total seconds of the in-window samples (the
// summary exposition's _count and _sum).
func (w *SLOWindow) Sum() (int, float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cutoff := w.now().Add(-w.window)
	n, sum := 0, 0.0
	for i := 0; i < w.n; i++ {
		idx := (w.head - 1 - i + 2*len(w.at)) % len(w.at)
		if w.at[idx].Before(cutoff) {
			break
		}
		n++
		sum += w.val[idx]
	}
	return n, sum
}

// quantileSorted interpolates the q-th quantile of ascending values.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
