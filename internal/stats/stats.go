// Package stats renders the harness's tables and figure series as text:
// aligned columns for the paper's tables and proportional bar charts for
// its figures.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows for aligned text output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v unless already strings.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// Bar renders a labeled proportional bar: "label |#### value".
func Bar(w io.Writer, label string, value, max float64, width int, format string) {
	n := 0
	if max > 0 {
		n = int(value / max * float64(width))
	}
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	fmt.Fprintf(w, "%-14s |%s%s %s\n", label,
		strings.Repeat("#", n), strings.Repeat(" ", width-n),
		fmt.Sprintf(format, value))
}

// StackedBar renders one row of a stacked composition (Figures 7/8):
// each segment is drawn with its rune, proportional to the total scale.
func StackedBar(w io.Writer, label string, segs []float64, runes []rune, scale float64, width int) {
	var b strings.Builder
	for i, s := range segs {
		n := 0
		if scale > 0 {
			n = int(s / scale * float64(width))
		}
		for k := 0; k < n; k++ {
			b.WriteRune(runes[i%len(runes)])
		}
	}
	fmt.Fprintf(w, "%-14s |%s\n", label, b.String())
}
