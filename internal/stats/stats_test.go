package stats

import (
	"strings"
	"testing"
)

func TestTable(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.Row("alpha", 42)
	tb.Row("b", 3.14159)
	var sb strings.Builder
	tb.Write(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Name") || !strings.Contains(lines[0], "Value") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "42") {
		t.Errorf("row: %q", lines[2])
	}
	if !strings.Contains(lines[3], "3.14") {
		t.Errorf("float formatting: %q", lines[3])
	}
	// Columns align: all lines the same length.
	if len(lines[0]) != len(lines[2]) {
		t.Errorf("misaligned: %d vs %d", len(lines[0]), len(lines[2]))
	}
}

func TestBar(t *testing.T) {
	var sb strings.Builder
	Bar(&sb, "x", 5, 10, 20, "%.1f")
	out := sb.String()
	if strings.Count(out, "#") != 10 {
		t.Errorf("bar length: %q", out)
	}
	sb.Reset()
	Bar(&sb, "x", 50, 10, 20, "%.1f") // clamps
	if strings.Count(sb.String(), "#") != 20 {
		t.Errorf("bar not clamped: %q", sb.String())
	}
	sb.Reset()
	Bar(&sb, "x", -1, 10, 20, "%.1f") // floors at zero
	if strings.Count(sb.String(), "#") != 0 {
		t.Errorf("negative bar: %q", sb.String())
	}
}

func TestStackedBar(t *testing.T) {
	var sb strings.Builder
	StackedBar(&sb, "row", []float64{10, 10}, []rune{'a', 'b'}, 40, 40)
	out := sb.String()
	if strings.Count(out, "a") != 10 || strings.Count(out, "b") != 10 {
		t.Errorf("stacked segments: %q", out)
	}
}
