// Package telemetry is the frame-lifecycle event layer: a nil-safe
// Collector that the constructor, optimizer, frame cache, and pipeline
// engine report into. It has three consumers — per-pass attribution
// tables, fixed-bucket histograms exported from replayd's /metrics, and
// an opt-in ring of Chrome trace_event records — behind one atomic
// enabled gate so the disabled path costs a nil check plus one atomic
// load.
//
// The layer sits below internal/stats on purpose: stats renders
// (tables, bars, Prometheus text), telemetry collects. Producers in the
// pipeline never format anything; consumers (replaysim -attr, replayd
// /metrics, trace export) pull snapshots and choose a renderer.
package telemetry

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Thread (tid) lanes for trace events: one per lifecycle stage so
// Perfetto renders construction, optimization, fetch, and cache
// activity as separate tracks.
const (
	TidConstruct = 1
	TidOptimize  = 2
	TidFetch     = 3
	TidCache     = 4
)

// HistogramSet holds the four lifecycle histograms. It is shared: a
// per-job trace collector in replayd can feed the same set as the
// daemon's global collector, so /metrics aggregates across jobs.
type HistogramSet struct {
	FrameUOps      *stats.Histogram // frame length at construction, in uops
	OptDwell       *stats.Histogram // optimizer occupancy per frame, in cycles
	CacheResidency *stats.Histogram // frame-cache residency at eviction, in cycles
	FetchRetire    *stats.Histogram // per-slot fetch-to-retire latency, in cycles
}

// NewHistogramSet allocates the lifecycle histograms with bucket
// bounds sized to the paper's frame regime (frames of 8..256 uops,
// optimizer dwell of ~10 cycles/uop).
func NewHistogramSet() *HistogramSet {
	return &HistogramSet{
		FrameUOps: stats.NewHistogram("replay_frame_uops",
			"Frame length in micro-ops at construction",
			8, 16, 32, 64, 128, 192, 256),
		OptDwell: stats.NewHistogram("replay_opt_dwell_cycles",
			"Cycles a frame occupies an optimizer slot",
			64, 256, 1024, 2560, 5120, 10240),
		CacheResidency: stats.NewHistogram("replay_frame_cache_residency_cycles",
			"Cycles a frame stayed in the frame cache before eviction",
			1024, 16384, 65536, 262144, 1048576),
		FetchRetire: stats.NewHistogram("replay_fetch_retire_cycles",
			"Per-slot latency from fetch to retirement",
			4, 8, 16, 32, 64, 128, 256),
	}
}

// All returns the histograms in a stable order for exposition.
func (h *HistogramSet) All() []*stats.Histogram {
	return []*stats.Histogram{h.FrameUOps, h.OptDwell, h.CacheResidency, h.FetchRetire}
}

// Config selects which consumers a Collector feeds.
type Config struct {
	// Hist, when non-nil, receives histogram samples. Use
	// NewHistogramSet for a private set or share one across collectors.
	Hist *HistogramSet
	// Attribution enables the per-pass killed/rewritten table.
	Attribution bool
	// TraceEvents, when positive, enables the lifecycle-event ring with
	// that capacity; oldest events are overwritten on overflow.
	TraceEvents int
	// Label tags exported trace events ("job" arg). In daemon mode this
	// is the job's coalescing key, making traces per-request
	// attributable.
	Label string
	// JobID tags exported trace events with the daemon's job id — the
	// same id slog records and NDJSON progress events carry — so the
	// three observability streams join on one key.
	JobID string
	// TraceID, when set, is stamped as the exemplar on every histogram
	// bucket this collector's observations land in, linking /metrics
	// lifecycle histograms back to the request's stored span trace.
	TraceID string
}

// PassStat is one row of the attribution table: what a named optimizer
// pass did across all frames it touched.
type PassStat struct {
	Pass      string // pass name (nop, cp, ra, cse, cse-load, sf, assert, dce)
	Calls     uint64 // invocations that changed something
	Killed    uint64 // uops invalidated by the pass
	Rewritten uint64 // uops rewritten in place (folds, reassociations, load conversions)
}

// PassOrder is the canonical display order for attribution rows; it
// mirrors the sequence Optimize runs the passes in.
var PassOrder = []string{"nop", "cp", "ra", "cse", "cse-load", "sf", "assert", "dce"}

// Collector receives lifecycle events. All methods are safe on a nil
// receiver and cheap when disabled: the hot path is one atomic load.
type Collector struct {
	enabled atomic.Bool
	label   string
	jobID   string
	traceID string
	hist    *HistogramSet

	attrMu sync.Mutex
	attr   map[string]*PassStat // nil when attribution is off

	ring *ring // nil when tracing is off

	runMu    sync.Mutex
	runNames map[int]string
	nextRun  int
}

// New returns an enabled collector for the given configuration.
func New(cfg Config) *Collector {
	c := &Collector{
		label:    cfg.Label,
		jobID:    cfg.JobID,
		traceID:  cfg.TraceID,
		hist:     cfg.Hist,
		runNames: map[int]string{},
	}
	if cfg.Attribution {
		c.attr = map[string]*PassStat{}
	}
	if cfg.TraceEvents > 0 {
		c.ring = newRing(cfg.TraceEvents)
	}
	c.enabled.Store(true)
	return c
}

// Enabled reports whether events are being recorded.
func (c *Collector) Enabled() bool { return c != nil && c.enabled.Load() }

// SetEnabled flips the atomic gate; a disabled collector keeps its
// accumulated state and can be re-enabled.
func (c *Collector) SetEnabled(on bool) {
	if c != nil {
		c.enabled.Store(on)
	}
}

// Label returns the job label (coalescing key in daemon mode).
func (c *Collector) Label() string {
	if c == nil {
		return ""
	}
	return c.label
}

// JobID returns the daemon job id tagged on exported trace events.
func (c *Collector) JobID() string {
	if c == nil {
		return ""
	}
	return c.jobID
}

// RequiresExecution reports whether this collector needs the simulator
// to actually execute (attribution or tracing): runs feeding only
// histograms may still be served from the memo cache, but a memoized
// run produces no per-pass or per-event data.
func (c *Collector) RequiresExecution() bool {
	return c != nil && (c.attr != nil || c.ring != nil)
}

// HasTrace reports whether a trace ring was configured.
func (c *Collector) HasTrace() bool { return c != nil && c.ring != nil }

// HasAttribution reports whether the per-pass table was configured and
// the collector is enabled; callers use it to skip the per-pass
// measurement wrapper (live-count deltas around every pass) entirely
// when nobody consumes it. Unlike RequiresExecution — which reflects
// configuration only, so the memo decision is stable across enable
// toggles — this gate also respects the atomic enabled flag.
func (c *Collector) HasAttribution() bool {
	return c != nil && c.attr != nil && c.enabled.Load()
}

// NewRun registers a named run (one engine execution) and returns its
// id, used as the pid of its trace events so cycle counters that reset
// per run stay monotonic within a track.
func (c *Collector) NewRun(name string) int {
	if c == nil {
		return 0
	}
	c.runMu.Lock()
	defer c.runMu.Unlock()
	c.nextRun++
	c.runNames[c.nextRun] = name
	return c.nextRun
}

// FrameConstructed records a finished frame: length histogram plus a
// construct instant on the construction track.
func (c *Collector) FrameConstructed(run int, cycle, frameID uint64, pc uint32, uops int) {
	if c == nil || !c.enabled.Load() {
		return
	}
	if c.hist != nil {
		c.hist.FrameUOps.ObserveEx(uint64(uops), c.traceID)
	}
	if c.ring != nil {
		c.ring.add(ringEvent{name: "construct", ph: phInstant, ts: cycle,
			pid: run, tid: TidConstruct, frame: frameID, pc: pc, uops: uops})
	}
}

// FeedSpan records one FeedTrace call on the construction track:
// records fed and distinct PCs decoded.
func (c *Collector) FeedSpan(run int, start, end uint64, records, decoded int) {
	if c == nil || !c.enabled.Load() || c.ring == nil {
		return
	}
	c.ring.add(ringEvent{name: "feed", ph: phComplete, ts: start, dur: end - start,
		pid: run, tid: TidConstruct, uops: records, aux: uint64(decoded)})
}

// FrameOptimized records one frame leaving the optimizer: dwell
// histogram plus a complete span on the optimize track.
func (c *Collector) FrameOptimized(run int, start uint64, frameID uint64, pc uint32, uopsIn, uopsOut int, dwell uint64) {
	if c == nil || !c.enabled.Load() {
		return
	}
	if c.hist != nil {
		c.hist.OptDwell.ObserveEx(dwell, c.traceID)
	}
	if c.ring != nil {
		c.ring.add(ringEvent{name: "optimize", ph: phComplete, ts: start, dur: dwell,
			pid: run, tid: TidOptimize, frame: frameID, pc: pc, uops: uopsIn, aux: uint64(uopsOut)})
	}
}

// RecordPass folds one optimizer pass invocation into the attribution
// table. Pass-level events stay out of the trace ring — the per-frame
// "optimize" span already covers them and passes run thousands of
// times per frame-cache fill.
func (c *Collector) RecordPass(frameID uint64, pass string, killed, rewritten int) {
	if c == nil || !c.enabled.Load() || c.attr == nil {
		return
	}
	c.attrMu.Lock()
	ps := c.attr[pass]
	if ps == nil {
		ps = &PassStat{Pass: pass}
		c.attr[pass] = ps
	}
	ps.Calls++
	ps.Killed += uint64(killed)
	ps.Rewritten += uint64(rewritten)
	c.attrMu.Unlock()
}

// AttributionSnapshot returns the per-pass table in canonical pass
// order (unknown passes follow alphabetically). Returns nil when
// attribution is off.
func (c *Collector) AttributionSnapshot() []PassStat {
	if c == nil || c.attr == nil {
		return nil
	}
	c.attrMu.Lock()
	rest := make([]PassStat, 0, len(c.attr))
	known := make(map[string]PassStat, len(c.attr))
	for name, ps := range c.attr {
		known[name] = *ps
	}
	c.attrMu.Unlock()

	out := make([]PassStat, 0, len(known))
	for _, name := range PassOrder {
		if ps, ok := known[name]; ok {
			out = append(out, ps)
			delete(known, name)
		}
	}
	for _, ps := range known {
		rest = append(rest, ps)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Pass < rest[j].Pass })
	return append(out, rest...)
}

// CacheInsert records a frame entering the frame cache.
func (c *Collector) CacheInsert(run int, cycle uint64, pc uint32, uops int) {
	if c == nil || !c.enabled.Load() || c.ring == nil {
		return
	}
	c.ring.add(ringEvent{name: "cache-insert", ph: phInstant, ts: cycle,
		pid: run, tid: TidCache, pc: pc, uops: uops})
}

// CacheEvict records a frame leaving the frame cache after residency
// cycles.
func (c *Collector) CacheEvict(run int, cycle uint64, pc uint32, uops int, residency uint64) {
	if c == nil || !c.enabled.Load() {
		return
	}
	if c.hist != nil {
		c.hist.CacheResidency.ObserveEx(residency, c.traceID)
	}
	if c.ring != nil {
		c.ring.add(ringEvent{name: "cache-evict", ph: phInstant, ts: cycle,
			pid: run, tid: TidCache, pc: pc, uops: uops, aux: residency})
	}
}

// CacheResident folds the residency of a frame still cached at end of
// run into the histogram without fabricating an eviction event.
func (c *Collector) CacheResident(residency uint64) {
	if c == nil || !c.enabled.Load() || c.hist == nil {
		return
	}
	c.hist.CacheResidency.ObserveEx(residency, c.traceID)
}

// CacheHit records a frame-cache lookup hit.
func (c *Collector) CacheHit(run int, cycle uint64, pc uint32) {
	if c == nil || !c.enabled.Load() || c.ring == nil {
		return
	}
	c.ring.add(ringEvent{name: "cache-hit", ph: phInstant, ts: cycle,
		pid: run, tid: TidCache, pc: pc})
}

// FetchRetire records one dispatched slot's fetch-to-retire latency.
// This is the hottest call site (every uop), so it touches only the
// histogram — no ring event.
func (c *Collector) FetchRetire(latency uint64) {
	if c == nil || !c.enabled.Load() || c.hist == nil {
		return
	}
	c.hist.FetchRetire.ObserveEx(latency, c.traceID)
}

// FrameFetch records one frame execution on the fetch track, from
// fetch start to commit or abort.
func (c *Collector) FrameFetch(run int, start, end uint64, frameID uint64, pc uint32, uops int, committed bool) {
	if c == nil || !c.enabled.Load() || c.ring == nil {
		return
	}
	name := "frame-commit"
	if !committed {
		name = "frame-abort"
	}
	c.ring.add(ringEvent{name: name, ph: phComplete, ts: start, dur: end - start,
		pid: run, tid: TidFetch, frame: frameID, pc: pc, uops: uops})
}

// TraceFetch records one trace-cache entry execution on the fetch
// track (TC mode has no frame ids).
func (c *Collector) TraceFetch(run int, start, end uint64, pc uint32, uops int) {
	if c == nil || !c.enabled.Load() || c.ring == nil {
		return
	}
	c.ring.add(ringEvent{name: "trace-fetch", ph: phComplete, ts: start, dur: end - start,
		pid: run, tid: TidFetch, pc: pc, uops: uops})
}

// AssertFired records an assertion firing (frame abort) on the fetch
// track.
func (c *Collector) AssertFired(run int, cycle, frameID uint64, pc uint32, unsafe bool) {
	if c == nil || !c.enabled.Load() || c.ring == nil {
		return
	}
	aux := uint64(0)
	if unsafe {
		aux = 1
	}
	c.ring.add(ringEvent{name: "assert-fire", ph: phInstant, ts: cycle,
		pid: run, tid: TidFetch, frame: frameID, pc: pc, aux: aux})
}

type ctxKey struct{}

// NewContext attaches a collector to ctx; the server uses this to hand
// a per-job collector through the Runner boundary without changing its
// signature.
func NewContext(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext extracts the collector attached by NewContext, or nil.
func FromContext(ctx context.Context) *Collector {
	c, _ := ctx.Value(ctxKey{}).(*Collector)
	return c
}
