package telemetry

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector enabled")
	}
	c.SetEnabled(true)
	c.FrameConstructed(0, 0, 1, 0x10, 8)
	c.FeedSpan(0, 0, 10, 100, 5)
	c.FrameOptimized(0, 0, 1, 0x10, 8, 6, 80)
	c.RecordPass(1, "dce", 2, 0)
	c.CacheInsert(0, 0, 0x10, 8)
	c.CacheEvict(0, 0, 0x10, 8, 100)
	c.CacheResident(5)
	c.CacheHit(0, 0, 0x10)
	c.FetchRetire(12)
	c.FrameFetch(0, 0, 10, 1, 0x10, 8, true)
	c.TraceFetch(0, 0, 10, 0x10, 8)
	c.AssertFired(0, 5, 1, 0x10, false)
	if c.NewRun("x") != 0 {
		t.Fatal("nil NewRun")
	}
	if c.AttributionSnapshot() != nil {
		t.Fatal("nil attribution")
	}
	if c.RequiresExecution() {
		t.Fatal("nil requires execution")
	}
	if err := c.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil WriteTrace should error")
	}
}

func TestDisabledGate(t *testing.T) {
	c := New(Config{Hist: NewHistogramSet(), Attribution: true, TraceEvents: 16})
	c.SetEnabled(false)
	c.FrameConstructed(1, 10, 1, 0x10, 8)
	c.RecordPass(1, "dce", 3, 0)
	c.FetchRetire(9)
	if s := c.hist.FrameUOps.Snapshot(); s.Count != 0 {
		t.Errorf("histogram recorded while disabled: %d", s.Count)
	}
	if len(c.AttributionSnapshot()) != 0 {
		t.Error("attribution recorded while disabled")
	}
	c.SetEnabled(true)
	c.FrameConstructed(1, 10, 1, 0x10, 8)
	if s := c.hist.FrameUOps.Snapshot(); s.Count != 1 {
		t.Errorf("histogram not recorded after re-enable: %d", s.Count)
	}
}

func TestAttributionOrder(t *testing.T) {
	c := New(Config{Attribution: true})
	if !c.RequiresExecution() {
		t.Fatal("attribution collector should require execution")
	}
	c.RecordPass(1, "dce", 5, 0)
	c.RecordPass(1, "cp", 1, 2)
	c.RecordPass(2, "cp", 0, 3)
	c.RecordPass(2, "zz-custom", 1, 0)
	snap := c.AttributionSnapshot()
	if len(snap) != 3 {
		t.Fatalf("rows: %+v", snap)
	}
	if snap[0].Pass != "cp" || snap[1].Pass != "dce" || snap[2].Pass != "zz-custom" {
		t.Errorf("order: %+v", snap)
	}
	if snap[0].Calls != 2 || snap[0].Killed != 1 || snap[0].Rewritten != 5 {
		t.Errorf("cp row: %+v", snap[0])
	}
}

func TestTraceExportValidates(t *testing.T) {
	c := New(Config{TraceEvents: 128, Label: "job-key-1", JobID: "j-00000001"})
	run := c.NewRun("bzip2/RPO/t0")
	c.FeedSpan(run, 0, 50, 1000, 40)
	c.FrameConstructed(run, 30, 1, 0x400, 64)
	c.FrameOptimized(run, 100, 1, 0x400, 64, 50, 640)
	c.CacheInsert(run, 740, 0x400, 50)
	c.CacheHit(run, 800, 0x400)
	c.FrameFetch(run, 805, 850, 1, 0x400, 50, true)
	c.AssertFired(run, 900, 1, 0x400, true)
	c.CacheEvict(run, 1000, 0x400, 50, 260)
	// Out-of-order arrival: a second run's early event after run 1's
	// late ones must not break per-track monotonicity.
	run2 := c.NewRun("bzip2/RPO/t1")
	c.FrameConstructed(run2, 5, 2, 0x500, 32)

	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`"job":"job-key-1"`, `"job_id":"j-00000001"`, "bzip2/RPO/t0",
		"frame-commit", "assert-fire",
		"cache-evict", `"residency":260`, "process_name", "thread_name",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in trace:\n%s", want, out)
		}
	}
}

func TestRingWrap(t *testing.T) {
	c := New(Config{TraceEvents: 4})
	run := c.NewRun("r")
	for i := uint64(0); i < 10; i++ {
		c.FrameConstructed(run, i, i+1, 0x10, 8)
	}
	events, dropped := c.ring.snapshot()
	if len(events) != 4 {
		t.Fatalf("ring kept %d events", len(events))
	}
	if dropped != 6 {
		t.Errorf("dropped = %d", dropped)
	}
	if events[0].ts != 6 || events[3].ts != 9 {
		t.Errorf("ring kept wrong window: %v..%v", events[0].ts, events[3].ts)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{"traceEvents": [}`,
		"empty":         `{"traceEvents": []}`,
		"missing name":  `{"traceEvents": [{"ph":"i","ts":1,"pid":1,"tid":1}]}`,
		"missing ph":    `{"traceEvents": [{"name":"x","ts":1,"pid":1,"tid":1}]}`,
		"missing ts":    `{"traceEvents": [{"name":"x","ph":"i","pid":1,"tid":1}]}`,
		"non-monotonic": `{"traceEvents": [{"name":"a","ph":"i","ts":5,"pid":1,"tid":1},{"name":"b","ph":"i","ts":4,"pid":1,"tid":1}]}`,
	}
	for name, data := range cases {
		if err := ValidateTrace([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := `{"traceEvents": [{"name":"m","ph":"M","pid":1,"tid":1},{"name":"a","ph":"i","ts":5,"pid":1,"tid":1},{"name":"b","ph":"i","ts":5,"pid":1,"tid":2}]}`
	if err := ValidateTrace([]byte(ok)); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context")
	}
	c := New(Config{})
	ctx := NewContext(context.Background(), c)
	if FromContext(ctx) != c {
		t.Fatal("round trip")
	}
}
