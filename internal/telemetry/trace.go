package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event phases from the Chrome trace_event format: complete spans,
// instants, and metadata records.
const (
	phComplete = "X"
	phInstant  = "i"
	phMetadata = "M"
)

// ringEvent is the compact in-memory form of one lifecycle event. The
// human-readable args map is built only at export time.
type ringEvent struct {
	name  string
	ph    string
	ts    uint64 // cycle the event starts at
	dur   uint64 // span length (phComplete only)
	pid   int    // run id (NewRun)
	tid   int    // lifecycle lane (Tid* constants)
	frame uint64 // frame id, 0 if not applicable
	pc    uint32 // frame/entry start PC, 0 if not applicable
	uops  int    // primary size payload (uops, records, killed)
	aux   uint64 // event-specific secondary payload
	seq   uint64 // arrival order, for stable sorting
}

// ring is a bounded overwrite-oldest event buffer. Tracing is opt-in
// and per-job, so a mutex (not a lock-free queue) is plenty; the hot
// path when tracing is off never reaches here.
type ring struct {
	mu      sync.Mutex
	buf     []ringEvent
	next    int
	wrapped bool
	seq     uint64
	dropped uint64
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]ringEvent, capacity)}
}

func (r *ring) add(e ringEvent) {
	r.mu.Lock()
	e.seq = r.seq
	r.seq++
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// snapshot returns the buffered events in arrival order.
func (r *ring) snapshot() (events []ringEvent, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		events = append(events, r.buf[r.next:]...)
		events = append(events, r.buf[:r.next]...)
	} else {
		events = append(events, r.buf[:r.next]...)
	}
	return events, r.dropped
}

// traceEvent is the exported Chrome trace_event JSON shape.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object form of the trace format; viewers also
// accept a bare array, but the object form carries metadata.
type traceFile struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

var tidNames = map[int]string{
	TidConstruct: "construct",
	TidOptimize:  "optimize",
	TidFetch:     "fetch",
	TidCache:     "frame-cache",
}

// WriteTrace serializes the ring as Chrome trace_event JSON, viewable
// in chrome://tracing or Perfetto. Events are sorted by timestamp
// (cycle) so ts is monotonic within every (pid, tid) track even though
// the ring holds arrival order. Returns an error if tracing was not
// enabled.
func (c *Collector) WriteTrace(w io.Writer) error {
	if c == nil || c.ring == nil {
		return fmt.Errorf("telemetry: trace ring not enabled")
	}
	events, dropped := c.ring.snapshot()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		return events[i].seq < events[j].seq
	})

	c.runMu.Lock()
	runs := make(map[int]string, len(c.runNames))
	for id, name := range c.runNames {
		runs[id] = name
	}
	c.runMu.Unlock()

	out := traceFile{OtherData: map[string]any{"dropped_events": dropped}}
	if c.label != "" {
		out.OtherData["job"] = c.label
	}
	if c.jobID != "" {
		out.OtherData["job_id"] = c.jobID
	}

	// Metadata first: name each run's process and each lane's thread.
	runIDs := make([]int, 0, len(runs))
	for id := range runs {
		runIDs = append(runIDs, id)
	}
	sort.Ints(runIDs)
	for _, id := range runIDs {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "process_name", Ph: phMetadata, Pid: id,
			Args: map[string]any{"name": runs[id]},
		})
		for tid := TidConstruct; tid <= TidCache; tid++ {
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "thread_name", Ph: phMetadata, Pid: id, Tid: tid,
				Args: map[string]any{"name": tidNames[tid]},
			})
		}
	}

	for _, e := range events {
		te := traceEvent{
			Name: e.name,
			Cat:  tidNames[e.tid],
			Ph:   e.ph,
			TS:   e.ts,
			Dur:  e.dur,
			Pid:  e.pid,
			Tid:  e.tid,
			Args: map[string]any{},
		}
		if e.ph == phInstant {
			te.S = "t" // thread-scoped instant
		}
		if e.frame != 0 {
			te.Args["frame"] = e.frame
		}
		if e.pc != 0 {
			te.Args["pc"] = fmt.Sprintf("%#x", e.pc)
		}
		switch e.name {
		case "feed":
			te.Args["records"] = e.uops
			te.Args["decoded"] = e.aux
		case "optimize":
			te.Args["uops_in"] = e.uops
			te.Args["uops_out"] = e.aux
		case "cache-evict":
			te.Args["uops"] = e.uops
			te.Args["residency"] = e.aux
		case "assert-fire":
			te.Args["unsafe"] = e.aux == 1
		default:
			if e.uops != 0 {
				te.Args["uops"] = e.uops
			}
		}
		if c.label != "" {
			te.Args["job"] = c.label
		}
		if c.jobID != "" {
			te.Args["job_id"] = c.jobID
		}
		if len(te.Args) == 0 {
			te.Args = nil
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ValidateTrace checks data against the Chrome trace-event shape the
// exporter promises: well-formed JSON, every event carrying name/ph,
// and ts monotonically non-decreasing within each (pid, tid) track.
// CI's trace smoke step and tests share this.
func ValidateTrace(data []byte) error {
	var tf struct {
		TraceEvents []struct {
			Name *string `json:"name"`
			Ph   *string `json:"ph"`
			TS   *int64  `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("trace JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("trace has no events")
	}
	type track struct{ pid, tid int }
	last := map[track]int64{}
	for i, e := range tf.TraceEvents {
		if e.Name == nil || *e.Name == "" {
			return fmt.Errorf("event %d: missing name", i)
		}
		if e.Ph == nil || *e.Ph == "" {
			return fmt.Errorf("event %d: missing ph", i)
		}
		if *e.Ph == phMetadata {
			continue
		}
		if e.TS == nil {
			return fmt.Errorf("event %d (%s): missing ts", i, *e.Name)
		}
		k := track{e.Pid, e.Tid}
		if prev, ok := last[k]; ok && *e.TS < prev {
			return fmt.Errorf("event %d (%s): ts %d < %d on track pid=%d tid=%d",
				i, *e.Name, *e.TS, prev, e.Pid, e.Tid)
		}
		last[k] = *e.TS
	}
	return nil
}
