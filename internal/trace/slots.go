// Slot-stream format: the retired-slot capture the experiment driver
// records so the four pipeline modes (and later runs) replay one
// functional interpretation instead of re-interpreting per mode. It is
// the Record format stripped to what the timing model consumes — control
// flow and memory addresses — plus the code image; decoded instructions
// and micro-op flows are deterministic functions of the code bytes, so a
// reader re-derives them instead of storing them.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// SlotRec is one retired x86 instruction of a captured slot stream: its
// PC, its dynamic successor, and its memory addresses in flow order.
type SlotRec struct {
	PC       uint32
	NextPC   uint32
	MemAddrs []uint32
}

// SlotStream is a captured retired-slot stream with the code image
// needed to re-decode it.
type SlotStream struct {
	Name     string
	CodeBase uint32
	Code     []byte
	Slots    []SlotRec
}

// InstBytes returns the encoded bytes of the instruction at pc, or nil
// if pc is outside the code image.
func (s *SlotStream) InstBytes(pc uint32) []byte {
	if pc < s.CodeBase || pc >= s.CodeBase+uint32(len(s.Code)) {
		return nil
	}
	return s.Code[pc-s.CodeBase:]
}

var slotMagic = [4]byte{'r', 'P', 'S', '1'}

// Write serializes the slot stream.
func (s *SlotStream) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(slotMagic[:]); err != nil {
		return err
	}
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	name := []byte(s.Name)
	writeU32(uint32(len(name)))
	bw.Write(name)
	writeU32(s.CodeBase)
	writeU32(uint32(len(s.Code)))
	bw.Write(s.Code)
	writeU32(uint32(len(s.Slots)))
	for i := range s.Slots {
		r := &s.Slots[i]
		writeU32(r.PC)
		writeU32(r.NextPC)
		bw.WriteByte(uint8(len(r.MemAddrs)))
		for _, a := range r.MemAddrs {
			writeU32(a)
		}
	}
	return bw.Flush()
}

// ReadSlots deserializes a stream written by SlotStream.Write.
func ReadSlots(r io.Reader) (*SlotStream, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != slotMagic {
		return nil, fmt.Errorf("trace: bad slot-stream magic %q", m)
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	s := &SlotStream{}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	s.Name = string(name)
	if s.CodeBase, err = readU32(); err != nil {
		return nil, err
	}
	if n, err = readU32(); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("trace: unreasonable code size %d", n)
	}
	s.Code = make([]byte, n)
	if _, err := io.ReadFull(br, s.Code); err != nil {
		return nil, err
	}
	count, err := readU32()
	if err != nil {
		return nil, err
	}
	s.Slots = make([]SlotRec, 0, count)
	for i := uint32(0); i < count; i++ {
		var rec SlotRec
		if rec.PC, err = readU32(); err != nil {
			return nil, err
		}
		if rec.NextPC, err = readU32(); err != nil {
			return nil, err
		}
		na, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		for j := uint8(0); j < na; j++ {
			a, err := readU32()
			if err != nil {
				return nil, err
			}
			rec.MemAddrs = append(rec.MemAddrs, a)
		}
		s.Slots = append(s.Slots, rec)
	}
	return s, nil
}
