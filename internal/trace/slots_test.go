package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func TestSlotStreamRoundTrip(t *testing.T) {
	in := &SlotStream{
		Name:     "rt",
		CodeBase: 0x40_0000,
		Code:     []byte{0x90, 0x40, 0xC3},
		Slots: []SlotRec{
			{PC: 0x40_0000, NextPC: 0x40_0001},
			{PC: 0x40_0001, NextPC: 0x40_0002, MemAddrs: []uint32{0x1000_0000, 0x1000_0004}},
			{PC: 0x40_0002, NextPC: 0x40_0000},
		},
	}
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSlots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
}

func TestSlotStreamBadMagic(t *testing.T) {
	if _, err := ReadSlots(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestSlotStreamInstBytes(t *testing.T) {
	s := &SlotStream{CodeBase: 0x100, Code: []byte{1, 2, 3}}
	if b := s.InstBytes(0x101); len(b) != 2 || b[0] != 2 {
		t.Errorf("InstBytes(0x101) = %v", b)
	}
	if s.InstBytes(0xFF) != nil || s.InstBytes(0x103) != nil {
		t.Error("out-of-image PC returned bytes")
	}
}
