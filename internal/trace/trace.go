// Package trace defines the instruction trace format of the simulation
// environment — the stand-in for the hardware-generated x86 traces the
// paper obtained from AMD (Section 5.1.1).
//
// A trace is a code image plus one record per retired x86 instruction.
// Each record carries the instruction's register state changes, resulting
// flags, and memory transactions, exactly the information the paper's
// trace reader consumes: load data drives the Micro-Op Injector, store
// data and register changes drive the State Verifier.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MemOp is one memory transaction of an instruction.
type MemOp struct {
	Addr    uint32
	Data    uint32 // value loaded or stored
	IsStore bool
}

// Record describes the architectural effects of one retired x86
// instruction.
type Record struct {
	PC  uint32
	Len uint8 // instruction length in bytes

	// RegMask has bit r set when GPR r changed; bit 8 set when the flags
	// changed.
	RegMask uint16
	// RegVals holds the new values of changed GPRs, in ascending register
	// order.
	RegVals []uint32
	// Flags is the flag state after the instruction (only meaningful bits).
	Flags uint32

	MemOps []MemOp

	// NextPC is the address of the next executed instruction (reflects
	// taken branches).
	NextPC uint32
}

const flagsChangedBit = 1 << 8

// SetReg records a changed register value (must be called in ascending
// register order).
func (r *Record) SetReg(reg uint8, val uint32) {
	r.RegMask |= 1 << reg
	r.RegVals = append(r.RegVals, val)
}

// SetFlagsChanged marks the flags as changed by this instruction.
func (r *Record) SetFlagsChanged() { r.RegMask |= flagsChangedBit }

// FlagsChanged reports whether the instruction modified the flags.
func (r *Record) FlagsChanged() bool { return r.RegMask&flagsChangedBit != 0 }

// ChangedRegs iterates the changed (reg, value) pairs.
func (r *Record) ChangedRegs(fn func(reg uint8, val uint32)) {
	i := 0
	for reg := uint8(0); reg < 8; reg++ {
		if r.RegMask&(1<<reg) != 0 {
			fn(reg, r.RegVals[i])
			i++
		}
	}
}

// Taken reports whether the instruction redirected control flow (its
// successor is not the next sequential instruction).
func (r *Record) Taken() bool { return r.NextPC != r.PC+uint32(r.Len) }

// Trace is a complete captured execution: the code image and the record
// stream. It corresponds to one of the paper's per-"hot spot" trace files.
type Trace struct {
	Name     string
	CodeBase uint32
	Code     []byte
	Records  []Record
}

// InstBytes returns the encoded bytes of the instruction at pc, or nil if
// pc is outside the code image.
func (t *Trace) InstBytes(pc uint32) []byte {
	if pc < t.CodeBase || pc >= t.CodeBase+uint32(len(t.Code)) {
		return nil
	}
	return t.Code[pc-t.CodeBase:]
}

// Stats summarizes a trace.
type Stats struct {
	Insts    int
	Loads    int
	Stores   int
	Branches int // taken control transfers
}

// ComputeStats scans the record stream.
func (t *Trace) ComputeStats() Stats {
	var s Stats
	s.Insts = len(t.Records)
	for i := range t.Records {
		r := &t.Records[i]
		for _, m := range r.MemOps {
			if m.IsStore {
				s.Stores++
			} else {
				s.Loads++
			}
		}
		if r.Taken() {
			s.Branches++
		}
	}
	return s
}

// Binary format: a small header, the code image, then the records.
var magic = [4]byte{'r', 'P', 'L', '1'}

var errBadMagic = errors.New("trace: bad magic")

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	name := []byte(t.Name)
	writeU32(uint32(len(name)))
	bw.Write(name)
	writeU32(t.CodeBase)
	writeU32(uint32(len(t.Code)))
	bw.Write(t.Code)
	writeU32(uint32(len(t.Records)))
	for i := range t.Records {
		r := &t.Records[i]
		writeU32(r.PC)
		bw.WriteByte(r.Len)
		binary.Write(bw, binary.LittleEndian, r.RegMask)
		for _, v := range r.RegVals {
			writeU32(v)
		}
		if r.FlagsChanged() {
			writeU32(r.Flags)
		}
		bw.WriteByte(uint8(len(r.MemOps)))
		for _, m := range r.MemOps {
			writeU32(m.Addr)
			writeU32(m.Data)
			if m.IsStore {
				bw.WriteByte(1)
			} else {
				bw.WriteByte(0)
			}
		}
		writeU32(r.NextPC)
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, errBadMagic
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	t := &Trace{}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	t.Name = string(name)
	if t.CodeBase, err = readU32(); err != nil {
		return nil, err
	}
	if n, err = readU32(); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("trace: unreasonable code size %d", n)
	}
	t.Code = make([]byte, n)
	if _, err := io.ReadFull(br, t.Code); err != nil {
		return nil, err
	}
	count, err := readU32()
	if err != nil {
		return nil, err
	}
	t.Records = make([]Record, 0, count)
	for i := uint32(0); i < count; i++ {
		var rec Record
		if rec.PC, err = readU32(); err != nil {
			return nil, err
		}
		if rec.Len, err = br.ReadByte(); err != nil {
			return nil, err
		}
		if err = binary.Read(br, binary.LittleEndian, &rec.RegMask); err != nil {
			return nil, err
		}
		for reg := uint8(0); reg < 8; reg++ {
			if rec.RegMask&(1<<reg) != 0 {
				v, err := readU32()
				if err != nil {
					return nil, err
				}
				rec.RegVals = append(rec.RegVals, v)
			}
		}
		if rec.FlagsChanged() {
			if rec.Flags, err = readU32(); err != nil {
				return nil, err
			}
		}
		nm, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		for j := uint8(0); j < nm; j++ {
			var mo MemOp
			if mo.Addr, err = readU32(); err != nil {
				return nil, err
			}
			if mo.Data, err = readU32(); err != nil {
				return nil, err
			}
			b, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			mo.IsStore = b != 0
			rec.MemOps = append(rec.MemOps, mo)
		}
		if rec.NextPC, err = readU32(); err != nil {
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
	return t, nil
}
