package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleTrace() *Trace {
	t := &Trace{
		Name:     "sample",
		CodeBase: 0x1000,
		Code:     []byte{0x90, 0xB8, 0x05, 0x00, 0x00, 0x00, 0xF4},
	}
	r1 := Record{PC: 0x1000, Len: 1, NextPC: 0x1001}
	r2 := Record{PC: 0x1001, Len: 5, NextPC: 0x1006}
	r2.SetReg(0, 5)
	r2.SetFlagsChanged()
	r2.Flags = 0x44
	r2.MemOps = []MemOp{{Addr: 0x8000, Data: 0x1234, IsStore: true}, {Addr: 0x8000, Data: 0x1234}}
	t.Records = []Record{r1, r2}
	return t
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.CodeBase != tr.CodeBase || !bytes.Equal(got.Code, tr.Code) {
		t.Errorf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Errorf("records mismatch:\n got %+v\nwant %+v", got.Records, tr.Records)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("expected error on bad magic")
	}
}

func TestTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, n := range []int{5, 10, len(b) - 3} {
		if _, err := Read(bytes.NewReader(b[:n])); err == nil {
			t.Errorf("Read of %d/%d bytes succeeded", n, len(b))
		}
	}
}

func TestRecordHelpers(t *testing.T) {
	var r Record
	r.PC, r.Len, r.NextPC = 0x100, 2, 0x102
	if r.Taken() {
		t.Error("sequential record marked taken")
	}
	r.NextPC = 0x200
	if !r.Taken() {
		t.Error("redirecting record not marked taken")
	}
	r.SetReg(3, 42)
	r.SetReg(5, 43)
	var seen []uint8
	r.ChangedRegs(func(reg uint8, val uint32) {
		seen = append(seen, reg)
		if (reg == 3 && val != 42) || (reg == 5 && val != 43) {
			t.Errorf("reg %d val %d", reg, val)
		}
	})
	if !reflect.DeepEqual(seen, []uint8{3, 5}) {
		t.Errorf("changed regs = %v", seen)
	}
	if r.FlagsChanged() {
		t.Error("flags marked changed")
	}
	r.SetFlagsChanged()
	if !r.FlagsChanged() {
		t.Error("flags not marked changed")
	}
}

func TestComputeStats(t *testing.T) {
	tr := sampleTrace()
	tr.Records[0].NextPC = 0x2000 // make it a taken branch
	s := tr.ComputeStats()
	if s.Insts != 2 || s.Loads != 1 || s.Stores != 1 || s.Branches != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestInstBytes(t *testing.T) {
	tr := sampleTrace()
	if b := tr.InstBytes(0x1001); b == nil || b[0] != 0xB8 {
		t.Errorf("InstBytes(0x1001) = %v", b)
	}
	if tr.InstBytes(0x999) != nil {
		t.Error("out-of-range PC returned bytes")
	}
	if tr.InstBytes(0x1000+uint32(len(tr.Code))) != nil {
		t.Error("end-of-code PC returned bytes")
	}
}
