package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// StoredTrace is one completed, sampled-in trace.
type StoredTrace struct {
	TraceID string `json:"trace_id"`
	// Root is the root span's name ("POST /v1/run" etc).
	Root     string        `json:"root"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Error    bool          `json:"error"`
	// Reason records why the tail sampler kept this trace:
	// "error", "slow", or "sampled".
	Reason string     `json:"reason"`
	Spans  []SpanData `json:"spans"`
}

// TraceSummary is the list-view form served by GET /debug/traces.
type TraceSummary struct {
	TraceID  string        `json:"trace_id"`
	Root     string        `json:"root"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Spans    int           `json:"spans"`
	Error    bool          `json:"error"`
	Reason   string        `json:"reason"`
}

// StoreConfig sizes the trace store and tunes its tail sampler.
type StoreConfig struct {
	// Capacity bounds retained traces; oldest are evicted first.
	// Default 256.
	Capacity int
	// SlowThreshold marks a trace "slow" (always retained) when its
	// root span's duration meets it. Default 1s.
	SlowThreshold time.Duration
	// SampleRate is the probability a trace that is neither errored
	// nor slow is retained. Default 1.0 (keep all — the bounded
	// capacity makes keep-all safe; lower it on high-QPS deployments).
	SampleRate float64
	// Rand overrides the sampling source, for tests. Defaults to the
	// global math/rand source.
	Rand func() float64
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = time.Second
	}
	if c.SampleRate == 0 {
		c.SampleRate = 1.0
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	return c
}

// StoreStats counts the tail sampler's decisions.
type StoreStats struct {
	Kept       uint64 `json:"kept"`
	KeptError  uint64 `json:"kept_error"`
	KeptSlow   uint64 `json:"kept_slow"`
	KeptSample uint64 `json:"kept_sampled"`
	Dropped    uint64 `json:"dropped"`
	Evicted    uint64 `json:"evicted"`
}

// Store holds completed traces with tail-based sampling: error and
// slow-tail traces are always kept, the rest pass a probabilistic
// gate, and retention is FIFO-bounded. Safe for concurrent use.
type Store struct {
	cfg StoreConfig

	mu    sync.Mutex
	order []string // trace IDs, oldest first
	byID  map[string]*StoredTrace
	stats StoreStats
}

// NewStore returns a store with cfg's zero fields defaulted.
func NewStore(cfg StoreConfig) *Store {
	return &Store{cfg: cfg.withDefaults(), byID: map[string]*StoredTrace{}}
}

// SlowThreshold reports the configured slow-trace cutoff.
func (s *Store) SlowThreshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.cfg.SlowThreshold
}

// offer runs the tail-sampling decision on a completed trace.
func (s *Store) offer(tr *StoredTrace) {
	if s == nil || tr == nil {
		return
	}
	switch {
	case tr.Error:
		tr.Reason = "error"
	case tr.Duration >= s.cfg.SlowThreshold:
		tr.Reason = "slow"
	case s.cfg.SampleRate >= 1.0 || s.cfg.Rand() < s.cfg.SampleRate:
		tr.Reason = "sampled"
	default:
		s.mu.Lock()
		s.stats.Dropped++
		s.mu.Unlock()
		return
	}
	// Spans arrive in end order; present them in start order.
	sort.SliceStable(tr.Spans, func(i, j int) bool {
		return tr.Spans[i].Start.Before(tr.Spans[j].Start)
	})
	s.mu.Lock()
	switch tr.Reason {
	case "error":
		s.stats.KeptError++
	case "slow":
		s.stats.KeptSlow++
	default:
		s.stats.KeptSample++
	}
	s.stats.Kept++
	if _, dup := s.byID[tr.TraceID]; !dup {
		s.order = append(s.order, tr.TraceID)
	}
	s.byID[tr.TraceID] = tr
	for len(s.order) > s.cfg.Capacity {
		evict := s.order[0]
		s.order = s.order[1:]
		delete(s.byID, evict)
		s.stats.Evicted++
	}
	s.mu.Unlock()
}

// Get returns the stored trace with the given hex ID, or nil.
func (s *Store) Get(id string) *StoredTrace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// List returns summaries of retained traces, newest first, at most
// limit entries (limit <= 0 means all).
func (s *Store) List(limit int) []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.order)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]TraceSummary, 0, n)
	for i := len(s.order) - 1; i >= 0 && len(out) < n; i-- {
		tr := s.byID[s.order[i]]
		out = append(out, TraceSummary{
			TraceID:  tr.TraceID,
			Root:     tr.Root,
			Start:    tr.Start,
			Duration: tr.Duration,
			Spans:    len(tr.Spans),
			Error:    tr.Error,
			Reason:   tr.Reason,
		})
	}
	return out
}

// Len reports how many traces are retained.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Stats returns a copy of the sampler counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// chromeEvent mirrors telemetry/trace.go's traceEvent shape so both
// exporters produce files the same tooling (cmd/tracecheck, Perfetto)
// accepts. Here ts/dur are microseconds since the trace start.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// WriteChrome serializes the trace as Chrome trace_event JSON
// (complete "X" events, µs since trace start, one tid lane per level
// of concurrency) — the wall-clock counterpart of the cycle-domain
// export in internal/telemetry.
func (tr *StoredTrace) WriteChrome(w io.Writer) error {
	if tr == nil {
		return fmt.Errorf("tracing: no trace")
	}
	out := chromeFile{OtherData: map[string]any{
		"trace_id": tr.TraceID,
		"reason":   tr.Reason,
	}}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "trace " + tr.TraceID},
	})

	// Greedy lane assignment: each span takes the lowest tid whose
	// previous occupant ended before this span starts, so overlapping
	// (concurrent) spans land on separate tracks.
	spans := make([]SpanData, len(tr.Spans))
	copy(spans, tr.Spans)
	sort.SliceStable(spans, func(i, j int) bool {
		return spans[i].Start.Before(spans[j].Start)
	})
	var laneEnd []time.Time
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		tid := -1
		for i, end := range laneEnd {
			if !sp.Start.Before(end) {
				tid = i
				break
			}
		}
		if tid == -1 {
			tid = len(laneEnd)
			laneEnd = append(laneEnd, time.Time{})
		}
		laneEnd[tid] = sp.End
		args := map[string]any{"span_id": sp.SpanID}
		if sp.Parent != "" {
			args["parent_span_id"] = sp.Parent
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		if sp.Error != "" {
			args["error"] = sp.Error
		}
		for _, l := range sp.Links {
			args["link_trace_id"] = l.TraceID
		}
		dur := sp.End.Sub(sp.Start).Microseconds()
		if dur < 1 {
			dur = 1
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  "span",
			Ph:   "X",
			TS:   sp.Start.Sub(tr.Start).Microseconds(),
			Dur:  dur,
			Pid:  1,
			Tid:  tid,
			Args: args,
		})
	}
	// ValidateTrace requires monotonic ts per (pid, tid) track; start
	// order guarantees it globally.
	out.TraceEvents = append(out.TraceEvents, events...)
	return json.NewEncoder(w).Encode(out)
}

// WriteText renders the trace as an indented flame-style tree:
// parent/child nesting, per-span duration, and a bar scaled to the
// root duration. replayctl -trace uses this.
func (tr *StoredTrace) WriteText(w io.Writer) error {
	if tr == nil {
		return fmt.Errorf("tracing: no trace")
	}
	fmt.Fprintf(w, "trace %s  (%s, %d spans, reason=%s)\n",
		tr.TraceID, fmtDuration(tr.Duration), len(tr.Spans), tr.Reason)

	children := map[string][]SpanData{}
	ids := map[string]bool{}
	for _, sp := range tr.Spans {
		ids[sp.SpanID] = true
	}
	var roots []SpanData
	for _, sp := range tr.Spans {
		if sp.Parent != "" && ids[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(s []SpanData) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	total := tr.Duration
	if total <= 0 {
		total = time.Nanosecond
	}
	const barWidth = 30
	var walk func(sp SpanData, depth int)
	walk = func(sp SpanData, depth int) {
		d := sp.End.Sub(sp.Start)
		frac := float64(d) / float64(total)
		if frac > 1 {
			frac = 1
		}
		fill := int(frac*barWidth + 0.5)
		if fill < 1 {
			fill = 1
		}
		bar := strings.Repeat("█", fill) + strings.Repeat("·", barWidth-fill)
		mark := ""
		if sp.Error != "" {
			mark = "  ERROR: " + sp.Error
		}
		for _, l := range sp.Links {
			mark += "  → trace " + l.TraceID
		}
		fmt.Fprintf(w, "%10s  %s  %s%s%s\n",
			fmtDuration(d), bar, strings.Repeat("  ", depth), sp.Name, mark)
		for _, c := range children[sp.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return nil
}
