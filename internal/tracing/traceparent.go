package tracing

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceparentHeader is the W3C propagation header name.
const TraceparentHeader = "traceparent"

// FlagSampled is the sampled bit of the traceparent flags byte.
const FlagSampled byte = 0x01

// Traceparent is the parsed form of a W3C traceparent header:
// version 00, "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
type Traceparent struct {
	Trace TraceID
	Span  SpanID
	Flags byte
}

// Sampled reports the sampled flag bit.
func (tp Traceparent) Sampled() bool { return tp.Flags&FlagSampled != 0 }

// String renders the version-00 header form.
func (tp Traceparent) String() string {
	return fmt.Sprintf("00-%s-%s-%02x", tp.Trace, tp.Span, tp.Flags)
}

// ParseTraceparent parses a version-00 traceparent header value. Per
// the W3C spec it rejects unknown/invalid versions, wrong field widths,
// non-hex digits, and all-zero trace or parent IDs. Surrounding
// whitespace is tolerated (headers arrive trimmed in practice, but the
// check is cheap).
func ParseTraceparent(s string) (Traceparent, error) {
	var tp Traceparent
	s = strings.TrimSpace(s)
	parts := strings.Split(s, "-")
	if len(parts) != 4 {
		return tp, fmt.Errorf("traceparent: want 4 dash-separated fields, got %d", len(parts))
	}
	ver, tid, sid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isHex(ver) {
		return tp, fmt.Errorf("traceparent: bad version field %q", ver)
	}
	if ver == "ff" {
		return tp, fmt.Errorf("traceparent: version ff is forbidden")
	}
	if ver != "00" {
		return tp, fmt.Errorf("traceparent: unsupported version %q", ver)
	}
	if len(tid) != 32 || !isHex(tid) {
		return tp, fmt.Errorf("traceparent: trace-id must be 32 lowercase hex chars")
	}
	if _, err := hex.Decode(tp.Trace[:], []byte(tid)); err != nil {
		return tp, fmt.Errorf("traceparent: bad trace-id: %v", err)
	}
	if tp.Trace.IsZero() {
		return tp, fmt.Errorf("traceparent: all-zero trace-id is invalid")
	}
	if len(sid) != 16 || !isHex(sid) {
		return tp, fmt.Errorf("traceparent: parent-id must be 16 lowercase hex chars")
	}
	if _, err := hex.Decode(tp.Span[:], []byte(sid)); err != nil {
		return tp, fmt.Errorf("traceparent: bad parent-id: %v", err)
	}
	if tp.Span.IsZero() {
		return tp, fmt.Errorf("traceparent: all-zero parent-id is invalid")
	}
	if len(flags) != 2 || !isHex(flags) {
		return tp, fmt.Errorf("traceparent: flags must be 2 hex chars, got %q", flags)
	}
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(flags)); err != nil {
		return tp, fmt.Errorf("traceparent: bad flags: %v", err)
	}
	tp.Flags = fb[0]
	return tp, nil
}

// ParseTraceID parses a bare 32-hex-digit trace ID (the form
// /debug/traces/{id} and replayctl -trace accept).
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("trace id must be 32 hex chars, got %d", len(s))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return t, fmt.Errorf("bad trace id: %v", err)
	}
	if t.IsZero() {
		return t, fmt.Errorf("all-zero trace id is invalid")
	}
	return t, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}
