// Package tracing is a zero-dependency span layer for the serving
// stack: request-scoped traces in the wall-clock domain, complementing
// internal/telemetry's cycle-domain lifecycle events. A Tracer roots a
// trace per API request (continuing a W3C traceparent when the client
// sent one), layers below open child spans through the context, and
// completed traces land in a bounded Store with tail-based sampling —
// error and slow-tail traces are always retained, the rest are
// probabilistically sampled — queryable by trace ID.
//
// The package follows internal/telemetry's conventions: one atomic
// enabled gate, every method safe on a nil receiver, and a disabled
// hot path that costs a nil check (plus one context lookup at span
// creation sites).
package tracing

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is the 8-byte W3C span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is all zeros (invalid per W3C).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is all zeros (invalid per W3C).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random, non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		_, _ = rand.Read(t[:])
	}
	return t
}

// NewSpanID returns a random, non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		_, _ = rand.Read(s[:])
	}
	return s
}

// Link points from a span to another trace — the coalescing path uses
// it to connect a follower request's trace to the leader job's.
type Link struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id,omitempty"`
}

// SpanData is the completed, wire-ready form of one span. IDs are hex
// strings so the JSON served from /debug/traces needs no decoding.
type SpanData struct {
	SpanID string `json:"span_id"`
	// Parent is the parent span ID; for the root span of a trace that
	// continued a client traceparent it names the client's (remote)
	// span, which has no SpanData in the trace.
	Parent string         `json:"parent_span_id,omitempty"`
	Name   string         `json:"name"`
	Start  time.Time      `json:"start"`
	End    time.Time      `json:"end"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	Links  []Link         `json:"links,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// Duration is the span's wall-clock length.
func (d *SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// traceBuf assembles the spans of one in-flight trace. The trace
// finalizes when its root span has ended and no span remains open, so
// asynchronously-submitted jobs whose spans outlive the HTTP request
// still produce complete traces.
type traceBuf struct {
	id     TraceID
	root   SpanID
	remote SpanID // parent from the client's traceparent, zero if locally rooted

	mu        sync.Mutex
	open      int
	rootEnded bool
	spans     []SpanData
	hasError  bool
	start     time.Time
	end       time.Time
}

// Span is one in-flight operation of a trace. The zero of *Span (nil)
// is a valid no-op span: every method is nil-safe, so instrumentation
// sites never branch on whether tracing is on.
type Span struct {
	tracer *Tracer
	buf    *traceBuf
	isRoot bool

	id     SpanID
	parent SpanID

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// TraceID returns the span's trace identity (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.buf.id
}

// SpanID returns the span's identity (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Traceparent returns the propagation header value naming this span as
// the parent, with the sampled flag set.
func (s *Span) Traceparent() Traceparent {
	if s == nil {
		return Traceparent{}
	}
	return Traceparent{Trace: s.buf.id, Span: s.id, Flags: FlagSampled}
}

// SetAttr records one key/value attribute. Values should be plain
// JSON-encodable types (string, int, bool, float).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.data.Attrs == nil {
		s.data.Attrs = map[string]any{}
	}
	s.data.Attrs[key] = value
	s.mu.Unlock()
}

// SetError marks the span failed; any errored span makes the whole
// trace an error trace, which the tail sampler always retains.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.data.Error = err.Error()
	s.mu.Unlock()
}

// AddLink attaches a cross-trace link (e.g. a coalesced follower
// pointing at the leader job's trace).
func (s *Span) AddLink(tid TraceID, sid SpanID) {
	if s == nil {
		return
	}
	l := Link{TraceID: tid.String()}
	if !sid.IsZero() {
		l.SpanID = sid.String()
	}
	s.mu.Lock()
	s.data.Links = append(s.data.Links, l)
	s.mu.Unlock()
}

// End completes the span. Ending the root span (once every child has
// also ended) finalizes the trace and hands it to the store's tail
// sampler. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.End = time.Now()
	data := s.data
	s.mu.Unlock()

	b := s.buf
	b.mu.Lock()
	b.spans = append(b.spans, data)
	if data.Error != "" {
		b.hasError = true
	}
	b.open--
	if s.isRoot {
		b.rootEnded = true
		b.end = data.End
	}
	final := b.rootEnded && b.open <= 0
	b.mu.Unlock()
	if final {
		s.tracer.finalize(b)
	}
}

// EmitChild records an already-completed child span directly — used
// for synthesized spans (per-optimizer-pass aggregates) whose timing
// was measured outside the span lifecycle.
func (s *Span) EmitChild(name string, start, end time.Time, attrs map[string]any) {
	if s == nil {
		return
	}
	data := SpanData{
		SpanID: NewSpanID().String(),
		Parent: s.id.String(),
		Name:   name,
		Start:  start,
		End:    end,
		Attrs:  attrs,
	}
	b := s.buf
	b.mu.Lock()
	b.spans = append(b.spans, data)
	b.mu.Unlock()
}

// child opens a span under s in the same trace.
func (s *Span) child(name string) *Span {
	c := &Span{
		tracer: s.tracer,
		buf:    s.buf,
		id:     NewSpanID(),
		parent: s.id,
	}
	c.data = SpanData{
		SpanID: c.id.String(),
		Parent: s.id.String(),
		Name:   name,
		Start:  time.Now(),
	}
	b := s.buf
	b.mu.Lock()
	b.open++
	b.mu.Unlock()
	return c
}

// Tracer roots traces and assembles their spans until completion. It
// is safe for concurrent use; a nil Tracer is a valid no-op.
type Tracer struct {
	enabled atomic.Bool
	store   *Store

	mu     sync.Mutex
	active map[TraceID]*traceBuf

	// maxActive bounds the in-flight trace map so a span leak (a span
	// that never ends) cannot grow memory without bound; new traces are
	// dropped (not recorded) while the map is full.
	maxActive int
	droppedAt atomic.Uint64
}

// DefaultMaxActive bounds concurrently assembling traces.
const DefaultMaxActive = 1024

// NewTracer returns an enabled tracer delivering completed traces to
// store (which may be nil: spans are then assembled and discarded,
// useful only in tests).
func NewTracer(store *Store) *Tracer {
	t := &Tracer{
		store:     store,
		active:    map[TraceID]*traceBuf{},
		maxActive: DefaultMaxActive,
	}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled flips the atomic gate. Traces already assembling complete
// normally; new roots are refused while disabled.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Store returns the tracer's destination store (nil if none).
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// StartRoot opens the root span of a new trace and attaches it to the
// returned context. When tp is non-nil the trace continues the
// client's identity: same trace ID, the client's span as remote
// parent. Returns (ctx, nil) when the tracer is nil or disabled.
func (t *Tracer) StartRoot(ctx context.Context, name string, tp *Traceparent) (context.Context, *Span) {
	if !t.Enabled() {
		return ctx, nil
	}
	b := &traceBuf{start: time.Now()}
	if tp != nil && !tp.Trace.IsZero() {
		b.id = tp.Trace
		b.remote = tp.Span
	} else {
		b.id = NewTraceID()
	}
	t.mu.Lock()
	if len(t.active) >= t.maxActive {
		t.mu.Unlock()
		t.droppedAt.Add(1)
		return ctx, nil
	}
	if _, dup := t.active[b.id]; dup {
		// A second request reusing the same traceparent: root a fresh
		// trace rather than corrupting the assembling one.
		b.id = NewTraceID()
		b.remote = SpanID{}
	}
	t.active[b.id] = b
	t.mu.Unlock()

	s := &Span{tracer: t, buf: b, isRoot: true, id: NewSpanID(), parent: b.remote}
	b.root = s.id
	s.data = SpanData{
		SpanID: s.id.String(),
		Name:   name,
		Start:  b.start,
	}
	if !b.remote.IsZero() {
		s.data.Parent = b.remote.String()
	}
	b.mu.Lock()
	b.open++
	b.mu.Unlock()
	return ContextWithSpan(ctx, s), s
}

// finalize hands a completed trace to the store's sampler and forgets
// it.
func (t *Tracer) finalize(b *traceBuf) {
	t.mu.Lock()
	delete(t.active, b.id)
	t.mu.Unlock()
	if t.store == nil {
		return
	}
	b.mu.Lock()
	tr := &StoredTrace{
		TraceID:  b.id.String(),
		Start:    b.start,
		Duration: b.end.Sub(b.start),
		Error:    b.hasError,
		Spans:    b.spans,
	}
	for i := range b.spans {
		if b.spans[i].SpanID == b.root.String() {
			tr.Root = b.spans[i].Name
			break
		}
	}
	b.mu.Unlock()
	t.store.offer(tr)
}

// ActiveTraces reports how many traces are currently assembling.
func (t *Tracer) ActiveTraces() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

type ctxKey struct{}

// ContextWithSpan attaches a span to ctx; layers that change the
// cancellation context (e.g. a job outliving its submitting request)
// use it to re-carry the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child of the context's active span and returns a
// context carrying the new span. With no active span (tracing off, or
// a call path outside any traced request) it returns (ctx, nil) — the
// universal cheap no-op that lets sim and pipeline instrument
// unconditionally.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil || !parent.tracer.Enabled() {
		return ctx, nil
	}
	c := parent.child(name)
	return ContextWithSpan(ctx, c), c
}

// fmtDuration renders a duration compactly for the text views.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
