package tracing

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tp := Traceparent{Trace: NewTraceID(), Span: NewSpanID(), Flags: FlagSampled}
	s := tp.String()
	got, err := ParseTraceparent(s)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", s, err)
	}
	if got != tp {
		t.Fatalf("round trip: got %+v want %+v", got, tp)
	}
	if !got.Sampled() {
		t.Fatalf("sampled flag lost in %q", s)
	}
}

func TestTraceparentValid(t *testing.T) {
	const v = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tp, err := ParseTraceparent(v)
	if err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	if tp.Trace.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id mangled: %s", tp.Trace)
	}
	if tp.Span.String() != "b7ad6b7169203331" {
		t.Fatalf("span id mangled: %s", tp.Span)
	}
	// Surrounding whitespace is tolerated.
	if _, err := ParseTraceparent("  " + v + "\t"); err != nil {
		t.Fatalf("whitespace-padded header rejected: %v", err)
	}
}

func TestTraceparentRejects(t *testing.T) {
	tid := "0af7651916cd43dd8448eb211c80319c"
	sid := "b7ad6b7169203331"
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"too few fields", "00-" + tid + "-" + sid},
		{"too many fields", "00-" + tid + "-" + sid + "-01-extra"},
		{"bad version hex", "zz-" + tid + "-" + sid + "-01"},
		{"version ff", "ff-" + tid + "-" + sid + "-01"},
		{"future version", "01-" + tid + "-" + sid + "-01"},
		{"short trace id", "00-" + tid[:30] + "-" + sid + "-01"},
		{"long trace id", "00-" + tid + "ab-" + sid + "-01"},
		{"non-hex trace id", "00-" + strings.Repeat("g", 32) + "-" + sid + "-01"},
		{"uppercase trace id", "00-" + strings.ToUpper(tid) + "-" + sid + "-01"},
		{"all-zero trace id", "00-" + strings.Repeat("0", 32) + "-" + sid + "-01"},
		{"short span id", "00-" + tid + "-" + sid[:14] + "-01"},
		{"all-zero span id", "00-" + tid + "-" + strings.Repeat("0", 16) + "-01"},
		{"short flags", "00-" + tid + "-" + sid + "-1"},
		{"non-hex flags", "00-" + tid + "-" + sid + "-xy"},
	}
	for _, c := range cases {
		if _, err := ParseTraceparent(c.in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want error", c.name, c.in)
		}
	}
}

func TestParseTraceID(t *testing.T) {
	id := NewTraceID()
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("ParseTraceID(%s) = %v, %v", id, got, err)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("x", 32)} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted, want error", bad)
		}
	}
}

func TestSpanAssembly(t *testing.T) {
	store := NewStore(StoreConfig{})
	tr := NewTracer(store)

	ctx, root := tr.StartRoot(context.Background(), "POST /v1/run", nil)
	if root == nil {
		t.Fatal("StartRoot returned nil span on enabled tracer")
	}
	root.SetAttr("experiment", "fig6")

	ctx2, child := Start(ctx, "sim.run")
	child.SetAttr("workload", "gzip")
	_, grand := Start(ctx2, "pipeline.run")
	grand.End()
	child.End()

	if store.Len() != 0 {
		t.Fatalf("trace stored before root ended")
	}
	root.End()
	root.End() // idempotent

	if store.Len() != 1 {
		t.Fatalf("store has %d traces, want 1", store.Len())
	}
	st := store.Get(root.TraceID().String())
	if st == nil {
		t.Fatal("stored trace not fetchable by ID")
	}
	if st.Root != "POST /v1/run" {
		t.Fatalf("root name %q", st.Root)
	}
	if len(st.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(st.Spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range st.Spans {
		byName[sp.Name] = sp
	}
	if byName["sim.run"].Parent != byName["POST /v1/run"].SpanID {
		t.Fatalf("sim.run parent = %q, want root %q", byName["sim.run"].Parent, byName["POST /v1/run"].SpanID)
	}
	if byName["pipeline.run"].Parent != byName["sim.run"].SpanID {
		t.Fatalf("pipeline.run parent = %q, want %q", byName["pipeline.run"].Parent, byName["sim.run"].SpanID)
	}
	if byName["sim.run"].Attrs["workload"] != "gzip" {
		t.Fatalf("attrs lost: %+v", byName["sim.run"].Attrs)
	}
	if tr.ActiveTraces() != 0 {
		t.Fatalf("%d traces still active after finalize", tr.ActiveTraces())
	}
}

func TestTraceContinuesRemoteParent(t *testing.T) {
	store := NewStore(StoreConfig{})
	tr := NewTracer(store)
	tp := Traceparent{Trace: NewTraceID(), Span: NewSpanID(), Flags: FlagSampled}

	_, root := tr.StartRoot(context.Background(), "POST /v1/run", &tp)
	if root.TraceID() != tp.Trace {
		t.Fatalf("trace id %s, want client's %s", root.TraceID(), tp.Trace)
	}
	root.End()

	st := store.Get(tp.Trace.String())
	if st == nil {
		t.Fatal("trace not stored under the client's trace id")
	}
	if st.Spans[0].Parent != tp.Span.String() {
		t.Fatalf("root parent %q, want remote span %q", st.Spans[0].Parent, tp.Span)
	}
}

func TestAsyncChildOutlivesRoot(t *testing.T) {
	// /v1/jobs: the HTTP root span ends at 202, the job span later.
	store := NewStore(StoreConfig{})
	tr := NewTracer(store)
	ctx, root := tr.StartRoot(context.Background(), "POST /v1/jobs", nil)
	_, job := Start(ctx, "job")
	root.End()
	if store.Len() != 0 {
		t.Fatal("trace finalized while job span still open")
	}
	job.End()
	if store.Len() != 1 {
		t.Fatal("trace not finalized after last span ended")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartRoot(context.Background(), "x", nil)
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	// Every Span method must be a safe no-op on nil.
	s.SetAttr("k", 1)
	s.SetError(errors.New("boom"))
	s.AddLink(TraceID{}, SpanID{})
	s.EmitChild("c", time.Now(), time.Now(), nil)
	s.End()
	_ = s.TraceID()
	_ = s.SpanID()
	_ = s.Traceparent()
	if _, c := Start(ctx, "child"); c != nil {
		t.Fatal("Start produced a span without an active parent")
	}
	var st *Store
	st.offer(nil)
	if st.Get("x") != nil || st.List(5) != nil || st.Len() != 0 {
		t.Fatal("nil store not inert")
	}
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetEnabled(true)
}

func TestDisabledTracerRefusesRoots(t *testing.T) {
	tr := NewTracer(NewStore(StoreConfig{}))
	tr.SetEnabled(false)
	_, s := tr.StartRoot(context.Background(), "x", nil)
	if s != nil {
		t.Fatal("disabled tracer produced a span")
	}
}

func TestTailSamplerRetainsErrorAndSlow(t *testing.T) {
	// Soak: with SampleRate 0 nothing ordinary survives, but every
	// error trace and every slow trace must be retained.
	store := NewStore(StoreConfig{
		Capacity:      4096,
		SlowThreshold: 50 * time.Millisecond,
		SampleRate:    -1, // negative: gate always fails, distinct from 0="default"
		Rand:          func() float64 { return 0.5 },
	})
	tr := NewTracer(store)

	const n = 500
	base := time.Now()
	for i := 0; i < n; i++ {
		_, root := tr.StartRoot(context.Background(), "req", nil)
		switch i % 3 {
		case 0: // error trace
			root.SetError(fmt.Errorf("boom %d", i))
			root.End()
		case 1: // slow trace: synthesize the duration
			root.mu.Lock()
			root.data.Start = base.Add(-100 * time.Millisecond)
			root.buf.start = root.data.Start
			root.mu.Unlock()
			root.End()
		default: // fast, clean: must be dropped at rate 0
			root.End()
		}
	}
	st := store.Stats()
	wantErr := uint64((n + 2) / 3)
	wantSlow := uint64((n + 1) / 3)
	if st.KeptError != wantErr {
		t.Errorf("kept %d error traces, want %d (must retain 100%%)", st.KeptError, wantErr)
	}
	if st.KeptSlow != wantSlow {
		t.Errorf("kept %d slow traces, want %d (must retain 100%%)", st.KeptSlow, wantSlow)
	}
	if st.KeptSample != 0 {
		t.Errorf("kept %d ordinary traces at sample rate 0", st.KeptSample)
	}
	if st.Dropped != uint64(n)-wantErr-wantSlow {
		t.Errorf("dropped %d, want %d", st.Dropped, uint64(n)-wantErr-wantSlow)
	}
	for _, sum := range store.List(0) {
		if sum.Reason != "error" && sum.Reason != "slow" {
			t.Fatalf("retained trace with reason %q at sample rate 0", sum.Reason)
		}
	}
}

func TestStoreEviction(t *testing.T) {
	store := NewStore(StoreConfig{Capacity: 3})
	tr := NewTracer(store)
	var ids []string
	for i := 0; i < 5; i++ {
		_, root := tr.StartRoot(context.Background(), "req", nil)
		ids = append(ids, root.TraceID().String())
		root.End()
	}
	if store.Len() != 3 {
		t.Fatalf("store len %d, want capacity 3", store.Len())
	}
	if store.Get(ids[0]) != nil || store.Get(ids[1]) != nil {
		t.Fatal("oldest traces not evicted")
	}
	if store.Get(ids[4]) == nil {
		t.Fatal("newest trace evicted")
	}
	if st := store.Stats(); st.Evicted != 2 {
		t.Fatalf("evicted %d, want 2", st.Evicted)
	}
	// List is newest-first.
	l := store.List(2)
	if len(l) != 2 || l[0].TraceID != ids[4] || l[1].TraceID != ids[3] {
		t.Fatalf("List order wrong: %+v", l)
	}
}

func TestLinksAndEmitChild(t *testing.T) {
	store := NewStore(StoreConfig{})
	tr := NewTracer(store)
	other := NewTraceID()

	_, root := tr.StartRoot(context.Background(), "req", nil)
	root.AddLink(other, SpanID{})
	now := time.Now()
	root.EmitChild("opt.dce", now.Add(-2*time.Millisecond), now, map[string]any{"killed": 7})
	root.End()

	st := store.Get(root.TraceID().String())
	if len(st.Spans) != 2 {
		t.Fatalf("got %d spans, want root + emitted child", len(st.Spans))
	}
	var rootSp, childSp *SpanData
	for i := range st.Spans {
		if st.Spans[i].Name == "req" {
			rootSp = &st.Spans[i]
		} else {
			childSp = &st.Spans[i]
		}
	}
	if len(rootSp.Links) != 1 || rootSp.Links[0].TraceID != other.String() {
		t.Fatalf("link lost: %+v", rootSp.Links)
	}
	if childSp.Name != "opt.dce" || childSp.Parent != rootSp.SpanID {
		t.Fatalf("emitted child wrong: %+v", childSp)
	}
	if childSp.Attrs["killed"] != 7 {
		t.Fatalf("emitted child attrs: %+v", childSp.Attrs)
	}
}

func TestErrorPropagatesToTrace(t *testing.T) {
	store := NewStore(StoreConfig{SampleRate: -1, Rand: func() float64 { return 1 }})
	tr := NewTracer(store)
	ctx, root := tr.StartRoot(context.Background(), "req", nil)
	_, child := Start(ctx, "work")
	child.SetError(errors.New("exec failed"))
	child.End()
	root.End()
	st := store.Get(root.TraceID().String())
	if st == nil {
		t.Fatal("errored trace dropped by sampler")
	}
	if !st.Error || st.Reason != "error" {
		t.Fatalf("error flag lost: error=%v reason=%q", st.Error, st.Reason)
	}
}

func TestChromeExportValidates(t *testing.T) {
	store := NewStore(StoreConfig{})
	tr := NewTracer(store)
	ctx, root := tr.StartRoot(context.Background(), "POST /v1/run", nil)
	ctx2, sim := Start(ctx, "sim.run")
	_, pipe := Start(ctx2, "pipeline.run")
	pipe.End()
	sim.End()
	now := time.Now()
	root.EmitChild("opt.dce", now.Add(-time.Millisecond), now, nil)
	root.End()

	st := store.Get(root.TraceID().String())
	var buf bytes.Buffer
	if err := st.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := telemetry.ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported Chrome trace invalid: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), st.TraceID) {
		t.Fatal("trace id missing from Chrome export")
	}
}

func TestWriteText(t *testing.T) {
	store := NewStore(StoreConfig{})
	tr := NewTracer(store)
	ctx, root := tr.StartRoot(context.Background(), "POST /v1/run", nil)
	_, sim := Start(ctx, "sim.run")
	sim.End()
	root.End()

	st := store.Get(root.TraceID().String())
	var buf bytes.Buffer
	if err := st.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{st.TraceID, "POST /v1/run", "sim.run", "█"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text view missing %q:\n%s", want, out)
		}
	}
	// Child is indented under the root.
	lines := strings.Split(out, "\n")
	var rootLine, simLine string
	for _, l := range lines {
		if strings.Contains(l, "POST /v1/run") {
			rootLine = l
		}
		if strings.Contains(l, "sim.run") {
			simLine = l
		}
	}
	// Rune index: the bar glyphs are multi-byte, so byte offsets lie.
	runeIdx := func(s, sub string) int {
		return len([]rune(s[:strings.Index(s, sub)]))
	}
	rootIdx := runeIdx(rootLine, "POST /v1/run")
	simIdx := runeIdx(simLine, "sim.run")
	if simIdx <= rootIdx {
		t.Fatalf("child not indented under root:\n%s", out)
	}
}

func TestConcurrentSpans(t *testing.T) {
	store := NewStore(StoreConfig{Capacity: 64})
	tr := NewTracer(store)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, root := tr.StartRoot(context.Background(), "req", nil)
			var cwg sync.WaitGroup
			for j := 0; j < 4; j++ {
				cwg.Add(1)
				go func(j int) {
					defer cwg.Done()
					_, c := Start(ctx, fmt.Sprintf("work-%d", j))
					c.SetAttr("j", j)
					c.End()
				}(j)
			}
			cwg.Wait()
			root.End()
		}()
	}
	wg.Wait()
	if store.Len() != 16 {
		t.Fatalf("store has %d traces, want 16", store.Len())
	}
	for _, sum := range store.List(0) {
		if sum.Spans != 5 {
			t.Fatalf("trace %s has %d spans, want 5", sum.TraceID, sum.Spans)
		}
	}
}

func TestActiveTraceBound(t *testing.T) {
	tr := NewTracer(NewStore(StoreConfig{}))
	tr.maxActive = 2
	_, a := tr.StartRoot(context.Background(), "a", nil)
	_, b := tr.StartRoot(context.Background(), "b", nil)
	_, c := tr.StartRoot(context.Background(), "c", nil)
	if a == nil || b == nil {
		t.Fatal("spans under the bound refused")
	}
	if c != nil {
		t.Fatal("span over maxActive accepted")
	}
	a.End()
	if _, d := tr.StartRoot(context.Background(), "d", nil); d == nil {
		t.Fatal("slot not reclaimed after finalize")
	} else {
		d.End()
	}
	b.End()
}
