// Package translate implements the x86-to-rePLay micro-operation decode
// flows (the second stage of the paper's Micro-Op Injector, Section 5.1.1).
//
// Each x86 instruction decodes independently into one or more fixed-format
// micro-ops, using the translator temporaries ET0.. for intermediate
// values. The flows target the paper's reported ~1.4 micro-ops per x86
// instruction. Deviations from exact IA-32 semantics (flag behaviour of
// multiplies/divides, 32-bit dividends) are documented in DESIGN.md and
// implemented consistently here and in the reference interpreter
// (internal/cpu), which the differential tests compare.
package translate

import (
	"fmt"

	"repro/internal/uop"
	"repro/internal/x86"
)

// flow is a helper that accumulates the micro-ops of one instruction and
// hands out translator temporaries.
type flow struct {
	ops      []uop.UOp
	nextTemp uop.Reg
}

func (f *flow) emit(u uop.UOp) {
	f.ops = append(f.ops, u)
}

func (f *flow) temp() uop.Reg {
	if f.nextTemp >= uop.ET0+uop.NumTemps {
		panic("translate: out of temporaries")
	}
	t := f.nextTemp
	f.nextTemp++
	return t
}

// addr reduces an x86 memory reference to a (base, displacement) pair,
// emitting an LEA micro-op for scaled-index forms. Keeping the
// displacement symbolic (rather than folding it into the LEA) gives the
// optimizer's reassociation and memory passes literal offsets to compare.
func (f *flow) addr(m x86.MemRef) (uop.Reg, int32) {
	base := uop.RegNone
	if m.Base != x86.RegNone {
		base = uop.FromX86(m.Base)
	}
	if m.Index == x86.RegNone {
		return base, m.Disp
	}
	t := f.temp()
	f.emit(uop.UOp{
		Op:    uop.LEA,
		Dest:  t,
		SrcA:  base,
		SrcB:  uop.FromX86(m.Index),
		Scale: m.Scale,
		Imm:   0,
	})
	return t, m.Disp
}

// load emits a LOAD micro-op with the reference's full addressing mode.
func (f *flow) load(dest uop.Reg, m x86.MemRef) {
	u := uop.UOp{Op: uop.LOAD, Dest: dest, SrcA: uop.RegNone, SrcB: uop.RegNone, Imm: m.Disp}
	if m.Base != x86.RegNone {
		u.SrcA = uop.FromX86(m.Base)
	}
	if m.Index != x86.RegNone {
		u.SrcB = uop.FromX86(m.Index)
		u.Scale = m.Scale
	}
	f.emit(u)
}

// value materializes an operand into a register, emitting LOAD/LIMM
// micro-ops as needed.
func (f *flow) value(o x86.Operand) uop.Reg {
	switch o.Kind {
	case x86.KindReg:
		return uop.FromX86(o.Reg)
	case x86.KindImm:
		t := f.temp()
		f.emit(uop.UOp{Op: uop.LIMM, Dest: t, Imm: o.Imm})
		return t
	case x86.KindMem:
		t := f.temp()
		f.load(t, o.Mem)
		return t
	}
	panic("translate: bad operand")
}

// aluOp maps an x86 ALU mnemonic to its micro-op opcode.
func aluOp(op x86.Op) (uop.Op, bool) {
	switch op {
	case x86.OpADD:
		return uop.ADD, true
	case x86.OpADC:
		return uop.ADC, true
	case x86.OpSUB, x86.OpCMP:
		return uop.SUB, true
	case x86.OpSBB:
		return uop.SBB, true
	case x86.OpAND, x86.OpTEST:
		return uop.AND, true
	case x86.OpOR:
		return uop.OR, true
	case x86.OpXOR:
		return uop.XOR, true
	case x86.OpSHL:
		return uop.SHL, true
	case x86.OpSHR:
		return uop.SHR, true
	case x86.OpSAR:
		return uop.SAR, true
	}
	return 0, false
}

const wordSize = 4

// UOps translates one decoded x86 instruction located at pc into its
// micro-operation flow. Relative branch targets are resolved to absolute
// addresses (the micro-op Imm field).
func UOps(in x86.Inst, pc uint32) ([]uop.UOp, error) {
	f := &flow{nextTemp: uop.ET0}
	esp := uop.ESP

	// push emits the canonical PUSH flow for a value register.
	push := func(v uop.Reg) {
		f.emit(uop.UOp{Op: uop.STORE, SrcA: esp, SrcB: v, Imm: -wordSize})
		f.emit(uop.UOp{Op: uop.SUB, Dest: esp, SrcA: esp, SrcB: uop.RegNone, Imm: wordSize})
	}

	switch in.Op {
	case x86.OpNOP, x86.OpHLT:
		f.emit(uop.UOp{Op: uop.NOP})

	case x86.OpMOV:
		switch {
		case in.Dst.Kind == x86.KindReg && in.Src.Kind == x86.KindImm:
			f.emit(uop.UOp{Op: uop.LIMM, Dest: uop.FromX86(in.Dst.Reg), Imm: in.Src.Imm})
		case in.Dst.Kind == x86.KindReg && in.Src.Kind == x86.KindReg:
			f.emit(uop.UOp{Op: uop.MOV, Dest: uop.FromX86(in.Dst.Reg), SrcA: uop.FromX86(in.Src.Reg)})
		case in.Dst.Kind == x86.KindReg && in.Src.Kind == x86.KindMem:
			f.load(uop.FromX86(in.Dst.Reg), in.Src.Mem)
		case in.Dst.Kind == x86.KindMem:
			v := f.value(in.Src)
			base, disp := f.addr(in.Dst.Mem)
			f.emit(uop.UOp{Op: uop.STORE, SrcA: base, SrcB: v, Imm: disp})
		default:
			return nil, fmt.Errorf("translate: bad MOV %s", in)
		}

	case x86.OpLEA:
		m := in.Src.Mem
		base := uop.RegNone
		if m.Base != x86.RegNone {
			base = uop.FromX86(m.Base)
		}
		idx := uop.RegNone
		if m.Index != x86.RegNone {
			idx = uop.FromX86(m.Index)
		}
		f.emit(uop.UOp{
			Op: uop.LEA, Dest: uop.FromX86(in.Dst.Reg),
			SrcA: base, SrcB: idx, Scale: m.Scale, Imm: m.Disp,
		})

	case x86.OpXCHG:
		s := uop.FromX86(in.Src.Reg)
		if in.Dst.Kind == x86.KindReg {
			d := uop.FromX86(in.Dst.Reg)
			t := f.temp()
			f.emit(uop.UOp{Op: uop.MOV, Dest: t, SrcA: d})
			f.emit(uop.UOp{Op: uop.MOV, Dest: d, SrcA: s})
			f.emit(uop.UOp{Op: uop.MOV, Dest: s, SrcA: t})
		} else {
			base, disp := f.addr(in.Dst.Mem)
			t := f.temp()
			f.emit(uop.UOp{Op: uop.LOAD, Dest: t, SrcA: base, SrcB: uop.RegNone, Imm: disp})
			f.emit(uop.UOp{Op: uop.STORE, SrcA: base, SrcB: s, Imm: disp})
			f.emit(uop.UOp{Op: uop.MOV, Dest: s, SrcA: t})
		}

	case x86.OpCMOV:
		v := f.value(in.Src)
		d := uop.FromX86(in.Dst.Reg)
		f.emit(uop.UOp{Op: uop.SELECT, Cond: in.Cond, Dest: d, SrcA: v, SrcB: d})

	case x86.OpADD, x86.OpADC, x86.OpSUB, x86.OpSBB, x86.OpAND, x86.OpOR,
		x86.OpXOR, x86.OpCMP, x86.OpTEST, x86.OpSHL, x86.OpSHR, x86.OpSAR:
		op, _ := aluOp(in.Op)
		dest := uop.RegNone // CMP/TEST discard the result
		writeBack := in.Op != x86.OpCMP && in.Op != x86.OpTEST
		switch {
		case in.Dst.Kind == x86.KindReg:
			if writeBack {
				dest = uop.FromX86(in.Dst.Reg)
			}
			u := uop.UOp{Op: op, Dest: dest, SrcA: uop.FromX86(in.Dst.Reg), WritesFlags: true}
			switch in.Src.Kind {
			case x86.KindImm:
				u.SrcB = uop.RegNone
				u.Imm = in.Src.Imm
			case x86.KindReg:
				u.SrcB = uop.FromX86(in.Src.Reg)
			case x86.KindMem:
				u.SrcB = f.value(in.Src)
			}
			f.emit(u)
		case in.Dst.Kind == x86.KindMem:
			base, disp := f.addr(in.Dst.Mem)
			t := f.temp()
			f.emit(uop.UOp{Op: uop.LOAD, Dest: t, SrcA: base, SrcB: uop.RegNone, Imm: disp})
			u := uop.UOp{Op: op, SrcA: t, WritesFlags: true}
			if writeBack {
				u.Dest = t
			}
			switch in.Src.Kind {
			case x86.KindImm:
				u.SrcB = uop.RegNone
				u.Imm = in.Src.Imm
			case x86.KindReg:
				u.SrcB = uop.FromX86(in.Src.Reg)
			}
			f.emit(u)
			if writeBack {
				f.emit(uop.UOp{Op: uop.STORE, SrcA: base, SrcB: t, Imm: disp})
			}
		default:
			return nil, fmt.Errorf("translate: bad ALU %s", in)
		}

	case x86.OpINC, x86.OpDEC:
		op := uop.ADD
		if in.Op == x86.OpDEC {
			op = uop.SUB
		}
		if in.Dst.Kind == x86.KindReg {
			d := uop.FromX86(in.Dst.Reg)
			f.emit(uop.UOp{Op: op, Dest: d, SrcA: d, SrcB: uop.RegNone, Imm: 1, WritesFlags: true, KeepCF: true})
		} else {
			base, disp := f.addr(in.Dst.Mem)
			t := f.temp()
			f.emit(uop.UOp{Op: uop.LOAD, Dest: t, SrcA: base, SrcB: uop.RegNone, Imm: disp})
			f.emit(uop.UOp{Op: op, Dest: t, SrcA: t, SrcB: uop.RegNone, Imm: 1, WritesFlags: true, KeepCF: true})
			f.emit(uop.UOp{Op: uop.STORE, SrcA: base, SrcB: t, Imm: disp})
		}

	case x86.OpNEG:
		if in.Dst.Kind == x86.KindReg {
			d := uop.FromX86(in.Dst.Reg)
			f.emit(uop.UOp{Op: uop.SUB, Dest: d, SrcA: uop.RegNone, SrcB: d, WritesFlags: true})
		} else {
			base, disp := f.addr(in.Dst.Mem)
			t := f.temp()
			f.emit(uop.UOp{Op: uop.LOAD, Dest: t, SrcA: base, SrcB: uop.RegNone, Imm: disp})
			f.emit(uop.UOp{Op: uop.SUB, Dest: t, SrcA: uop.RegNone, SrcB: t, WritesFlags: true})
			f.emit(uop.UOp{Op: uop.STORE, SrcA: base, SrcB: t, Imm: disp})
		}

	case x86.OpNOT:
		if in.Dst.Kind == x86.KindReg {
			d := uop.FromX86(in.Dst.Reg)
			f.emit(uop.UOp{Op: uop.XOR, Dest: d, SrcA: d, SrcB: uop.RegNone, Imm: -1})
		} else {
			base, disp := f.addr(in.Dst.Mem)
			t := f.temp()
			f.emit(uop.UOp{Op: uop.LOAD, Dest: t, SrcA: base, SrcB: uop.RegNone, Imm: disp})
			f.emit(uop.UOp{Op: uop.XOR, Dest: t, SrcA: t, SrcB: uop.RegNone, Imm: -1})
			f.emit(uop.UOp{Op: uop.STORE, SrcA: base, SrcB: t, Imm: disp})
		}

	case x86.OpIMUL:
		switch {
		case in.Src.Kind == x86.KindNone:
			// One-operand: EDX:EAX = EAX * r/m32.
			v := f.value(in.Dst)
			lo := f.temp()
			f.emit(uop.UOp{Op: uop.MULLO, Dest: lo, SrcA: uop.EAX, SrcB: v})
			f.emit(uop.UOp{Op: uop.MULHIS, Dest: uop.EDX, SrcA: uop.EAX, SrcB: v})
			f.emit(uop.UOp{Op: uop.MOV, Dest: uop.EAX, SrcA: lo})
		case in.Imm3 != 0:
			v := f.value(in.Src)
			f.emit(uop.UOp{Op: uop.MULLO, Dest: uop.FromX86(in.Dst.Reg), SrcA: v, SrcB: uop.RegNone, Imm: in.Imm3})
		default:
			v := f.value(in.Src)
			d := uop.FromX86(in.Dst.Reg)
			f.emit(uop.UOp{Op: uop.MULLO, Dest: d, SrcA: d, SrcB: v})
		}

	case x86.OpMUL:
		v := f.value(in.Dst)
		lo := f.temp()
		f.emit(uop.UOp{Op: uop.MULLO, Dest: lo, SrcA: uop.EAX, SrcB: v})
		f.emit(uop.UOp{Op: uop.MULHIU, Dest: uop.EDX, SrcA: uop.EAX, SrcB: v})
		f.emit(uop.UOp{Op: uop.MOV, Dest: uop.EAX, SrcA: lo})

	case x86.OpDIV, x86.OpIDIV:
		divOp, remOp := uop.DIVU, uop.REMU
		if in.Op == x86.OpIDIV {
			divOp, remOp = uop.DIVS, uop.REMS
		}
		v := f.value(in.Dst)
		q := f.temp()
		f.emit(uop.UOp{Op: divOp, Dest: q, SrcA: uop.EAX, SrcB: v})
		f.emit(uop.UOp{Op: remOp, Dest: uop.EDX, SrcA: uop.EAX, SrcB: v})
		f.emit(uop.UOp{Op: uop.MOV, Dest: uop.EAX, SrcA: q})

	case x86.OpCDQ:
		f.emit(uop.UOp{Op: uop.SAR, Dest: uop.EDX, SrcA: uop.EAX, SrcB: uop.RegNone, Imm: 31})

	case x86.OpPUSH:
		push(f.value(in.Dst))

	case x86.OpPOP:
		if in.Dst.Kind == x86.KindReg {
			d := uop.FromX86(in.Dst.Reg)
			if d == esp {
				t := f.temp()
				f.emit(uop.UOp{Op: uop.LOAD, Dest: t, SrcA: esp, SrcB: uop.RegNone, Imm: 0})
				f.emit(uop.UOp{Op: uop.MOV, Dest: esp, SrcA: t})
			} else {
				f.emit(uop.UOp{Op: uop.LOAD, Dest: d, SrcA: esp, SrcB: uop.RegNone, Imm: 0})
				f.emit(uop.UOp{Op: uop.ADD, Dest: esp, SrcA: esp, SrcB: uop.RegNone, Imm: wordSize})
			}
		} else {
			t := f.temp()
			f.emit(uop.UOp{Op: uop.LOAD, Dest: t, SrcA: esp, SrcB: uop.RegNone, Imm: 0})
			f.emit(uop.UOp{Op: uop.ADD, Dest: esp, SrcA: esp, SrcB: uop.RegNone, Imm: wordSize})
			base, disp := f.addr(in.Dst.Mem)
			f.emit(uop.UOp{Op: uop.STORE, SrcA: base, SrcB: t, Imm: disp})
		}

	case x86.OpLEAVE:
		f.emit(uop.UOp{Op: uop.MOV, Dest: esp, SrcA: uop.EBP})
		f.emit(uop.UOp{Op: uop.LOAD, Dest: uop.EBP, SrcA: esp, SrcB: uop.RegNone, Imm: 0})
		f.emit(uop.UOp{Op: uop.ADD, Dest: esp, SrcA: esp, SrcB: uop.RegNone, Imm: wordSize})

	case x86.OpJMP:
		switch in.Dst.Kind {
		case x86.KindImm:
			f.emit(uop.UOp{Op: uop.JMP, Imm: int32(in.TargetPC(pc))})
		case x86.KindReg:
			f.emit(uop.UOp{Op: uop.JR, SrcA: uop.FromX86(in.Dst.Reg)})
		case x86.KindMem:
			v := f.value(in.Dst)
			f.emit(uop.UOp{Op: uop.JR, SrcA: v})
		}

	case x86.OpJCC:
		f.emit(uop.UOp{Op: uop.BR, Cond: in.Cond, Imm: int32(in.TargetPC(pc))})

	case x86.OpCALL:
		ret := f.temp()
		f.emit(uop.UOp{Op: uop.LIMM, Dest: ret, Imm: int32(pc) + int32(in.Len)})
		push(ret)
		switch in.Dst.Kind {
		case x86.KindImm:
			f.emit(uop.UOp{Op: uop.JMP, Imm: int32(in.TargetPC(pc))})
		case x86.KindReg:
			f.emit(uop.UOp{Op: uop.JR, SrcA: uop.FromX86(in.Dst.Reg)})
		case x86.KindMem:
			v := f.value(in.Dst)
			f.emit(uop.UOp{Op: uop.JR, SrcA: v})
		}

	case x86.OpRET:
		t := f.temp()
		f.emit(uop.UOp{Op: uop.LOAD, Dest: t, SrcA: esp, SrcB: uop.RegNone, Imm: 0})
		pop := int32(wordSize)
		if in.Dst.Kind == x86.KindImm {
			pop += in.Dst.Imm
		}
		f.emit(uop.UOp{Op: uop.ADD, Dest: esp, SrcA: esp, SrcB: uop.RegNone, Imm: pop})
		f.emit(uop.UOp{Op: uop.JR, SrcA: t})

	default:
		return nil, fmt.Errorf("translate: unsupported %s", in)
	}
	return f.ops, nil
}
