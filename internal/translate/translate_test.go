package translate

import (
	"testing"

	"repro/internal/uop"
	"repro/internal/x86"
)

func mustUOps(t *testing.T, in x86.Inst, pc uint32) []uop.UOp {
	t.Helper()
	enc, err := x86.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Len = len(enc)
	us, err := UOps(in, pc)
	if err != nil {
		t.Fatal(err)
	}
	return us
}

func ops(us []uop.UOp) []uop.Op {
	out := make([]uop.Op, len(us))
	for i, u := range us {
		out[i] = u.Op
	}
	return out
}

func eqOps(a []uop.Op, b ...uop.Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFlowShapes checks the micro-op decomposition of the key flows,
// matching the paper's Figure 2 flows where shown.
func TestFlowShapes(t *testing.T) {
	cases := []struct {
		name string
		in   x86.Inst
		want []uop.Op
	}{
		{"push reg", x86.Inst{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP)},
			[]uop.Op{uop.STORE, uop.SUB}},
		{"pop reg", x86.Inst{Op: x86.OpPOP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)},
			[]uop.Op{uop.LOAD, uop.ADD}},
		{"mov r,m", x86.Inst{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX), Src: x86.Mem(x86.ESP, 12)},
			[]uop.Op{uop.LOAD}},
		{"mov r,m indexed", x86.Inst{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX), Src: x86.MemIdx(x86.EBX, x86.ESI, 4, 8)},
			[]uop.Op{uop.LOAD}}, // full addressing: no LEA needed
		{"mov m,r indexed", x86.Inst{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.MemIdx(x86.EBX, x86.ESI, 4, 8), Src: x86.RegOp(x86.EAX)},
			[]uop.Op{uop.LEA, uop.STORE}}, // stores need the address materialized
		{"alu r,r", x86.Inst{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EBX)},
			[]uop.Op{uop.ADD}},
		{"alu m,r", x86.Inst{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.Mem(x86.EDI, 0), Src: x86.RegOp(x86.EBX)},
			[]uop.Op{uop.LOAD, uop.ADD, uop.STORE}},
		{"cmp", x86.Inst{Op: x86.OpCMP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(5)},
			[]uop.Op{uop.SUB}},
		{"jcc", x86.Inst{Op: x86.OpJCC, Cond: x86.CondE, Dst: x86.ImmOp(8)},
			[]uop.Op{uop.BR}},
		{"call rel", x86.Inst{Op: x86.OpCALL, Cond: x86.CondNone, Dst: x86.ImmOp(0x40)},
			[]uop.Op{uop.LIMM, uop.STORE, uop.SUB, uop.JMP}},
		{"ret", x86.Inst{Op: x86.OpRET, Cond: x86.CondNone},
			[]uop.Op{uop.LOAD, uop.ADD, uop.JR}},
		{"leave", x86.Inst{Op: x86.OpLEAVE, Cond: x86.CondNone},
			[]uop.Op{uop.MOV, uop.LOAD, uop.ADD}},
		{"mul", x86.Inst{Op: x86.OpMUL, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX)},
			[]uop.Op{uop.MULLO, uop.MULHIU, uop.MOV}},
		{"div", x86.Inst{Op: x86.OpDIV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)},
			[]uop.Op{uop.DIVU, uop.REMU, uop.MOV}},
		{"cdq", x86.Inst{Op: x86.OpCDQ, Cond: x86.CondNone},
			[]uop.Op{uop.SAR}},
		{"nop", x86.Inst{Op: x86.OpNOP, Cond: x86.CondNone},
			[]uop.Op{uop.NOP}},
		{"xchg rr", x86.Inst{Op: x86.OpXCHG, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EBX)},
			[]uop.Op{uop.MOV, uop.MOV, uop.MOV}},
		{"cmov", x86.Inst{Op: x86.OpCMOV, Cond: x86.CondGE, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.ECX)},
			[]uop.Op{uop.SELECT}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			us := mustUOps(t, tt.in, 0x1000)
			if !eqOps(ops(us), tt.want...) {
				t.Errorf("flow = %v, want %v", ops(us), tt.want)
			}
		})
	}
}

// TestPushFlowMatchesPaper: PUSH EBP must produce exactly the paper's
// micro-ops 01-02: store at [ESP-4], then ESP decrement without flags.
func TestPushFlowMatchesPaper(t *testing.T) {
	us := mustUOps(t, x86.Inst{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBP)}, 0)
	st, sub := us[0], us[1]
	if st.SrcA != uop.ESP || st.SrcB != uop.EBP || st.Imm != -4 {
		t.Errorf("store = %s", st)
	}
	if sub.Dest != uop.ESP || sub.Imm != 4 || sub.WritesFlags {
		t.Errorf("esp update = %s", sub)
	}
}

// TestBranchTargetsAbsolute: control-flow micro-ops carry absolute targets.
func TestBranchTargetsAbsolute(t *testing.T) {
	in := x86.Inst{Op: x86.OpJCC, Cond: x86.CondNE, Dst: x86.ImmOp(0x10)}
	us := mustUOps(t, in, 0x2000)
	want := uint32(0x2000) + 2 + 0x10 // rel8 encoding is 2 bytes
	if uint32(us[0].Imm) != want {
		t.Errorf("BR target = %#x, want %#x", uint32(us[0].Imm), want)
	}
	in = x86.Inst{Op: x86.OpCALL, Cond: x86.CondNone, Dst: x86.ImmOp(0x100)}
	us = mustUOps(t, in, 0x3000)
	jmp := us[len(us)-1]
	if uint32(jmp.Imm) != 0x3000+5+0x100 {
		t.Errorf("CALL target = %#x", uint32(jmp.Imm))
	}
	// The pushed return address is the fall-through PC.
	if us[0].Op != uop.LIMM || uint32(us[0].Imm) != 0x3000+5 {
		t.Errorf("return address = %s", us[0])
	}
}

// TestCMPWritesNoRegister: compares produce flags only.
func TestCMPWritesNoRegister(t *testing.T) {
	us := mustUOps(t, x86.Inst{Op: x86.OpCMP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EBX)}, 0)
	if us[0].DestReg() != uop.RegNone || !us[0].WritesFlags {
		t.Errorf("CMP uop = %s", us[0])
	}
}

// TestINCKeepsCF: the INC flow carries the carry-preserving flag-write.
func TestINCKeepsCF(t *testing.T) {
	us := mustUOps(t, x86.Inst{Op: x86.OpINC, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX)}, 0)
	if !us[0].KeepCF || !us[0].WritesFlags {
		t.Errorf("INC uop = %s", us[0])
	}
}

// TestUOpRatio: over a representative instruction mix the flow averages
// close to the paper's reported 1.4 micro-ops per x86 instruction.
func TestUOpRatio(t *testing.T) {
	// Weighted mix approximating compiled integer code.
	mix := []struct {
		in x86.Inst
		w  int
	}{
		{x86.Inst{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.Mem(x86.EBP, -8)}, 16},
		{x86.Inst{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.Mem(x86.EBP, -8), Src: x86.RegOp(x86.EAX)}, 9},
		{x86.Inst{Op: x86.OpMOV, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.ECX)}, 10},
		{x86.Inst{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EBX)}, 18},
		{x86.Inst{Op: x86.OpCMP, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)}, 8},
		{x86.Inst{Op: x86.OpJCC, Cond: x86.CondE, Dst: x86.ImmOp(4)}, 12},
		{x86.Inst{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.RegOp(x86.ESI)}, 5},
		{x86.Inst{Op: x86.OpPOP, Cond: x86.CondNone, Dst: x86.RegOp(x86.ESI)}, 5},
		{x86.Inst{Op: x86.OpCALL, Cond: x86.CondNone, Dst: x86.ImmOp(0x100)}, 3},
		{x86.Inst{Op: x86.OpRET, Cond: x86.CondNone}, 3},
		{x86.Inst{Op: x86.OpLEA, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.MemIdx(x86.EBX, x86.ESI, 4, 4)}, 4},
		{x86.Inst{Op: x86.OpTEST, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.EAX)}, 5},
		{x86.Inst{Op: x86.OpADD, Cond: x86.CondNone, Dst: x86.Mem(x86.EDI, 0), Src: x86.ImmOp(1)}, 2},
	}
	insts, uops := 0, 0
	for _, m := range mix {
		us := mustUOps(t, m.in, 0x1000)
		insts += m.w
		uops += m.w * len(us)
	}
	ratio := float64(uops) / float64(insts)
	if ratio < 1.2 || ratio > 1.6 {
		t.Errorf("micro-op ratio = %.2f, want ~1.4", ratio)
	}
	t.Logf("micro-op ratio = %.2f", ratio)
}

// TestTempDiscipline: flows never exceed the translator temporaries and
// never write a GPR through a temp slot.
func TestTempDiscipline(t *testing.T) {
	all := []x86.Inst{
		{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: x86.Mem(x86.EBX, 4)},
		{Op: x86.OpPOP, Cond: x86.CondNone, Dst: x86.Mem(x86.EBX, 4)},
		{Op: x86.OpCALL, Cond: x86.CondNone, Dst: x86.MemIdx(x86.EBX, x86.ESI, 4, 0)},
		{Op: x86.OpIMUL, Cond: x86.CondNone, Dst: x86.Mem(x86.EBX, 0)},
		{Op: x86.OpXCHG, Cond: x86.CondNone, Dst: x86.Mem(x86.EBX, 0), Src: x86.RegOp(x86.EAX)},
	}
	for _, in := range all {
		us := mustUOps(t, in, 0)
		for _, u := range us {
			if d := u.DestReg(); d != uop.RegNone && !d.IsGPR() && !d.IsTemp() && d != uop.FLAGS {
				t.Errorf("%s: bad dest %s", in, d)
			}
		}
	}
}
