package uop

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/x86"
)

// ErrDivideByZero reports a divide micro-op with a zero divisor.
var ErrDivideByZero = errors.New("uop: divide by zero")

// Outcome describes the externally visible result of evaluating one
// micro-op: control redirection, assertion firing, and memory activity.
type Outcome struct {
	// Redirect is set for a taken JMP/JR/BR; Target is the new PC.
	Redirect bool
	Target   uint32

	// AssertFired is set when an ASSERT/CASSERT condition failed.
	AssertFired bool

	// IsMem/IsStore describe memory activity; MemAddr is the effective
	// address, StoreVal the value written (stores only).
	IsMem    bool
	IsStore  bool
	MemAddr  uint32
	StoreVal uint32
}

// parity returns the x86 parity flag for the low byte of v (set when the
// number of 1 bits is even).
func parity(v uint32) bool { return bits.OnesCount8(uint8(v))%2 == 0 }

// szpFlags computes SF, ZF and PF from a result.
func szpFlags(r uint32) x86.Flags {
	var f x86.Flags
	if r == 0 {
		f |= x86.FlagZ
	}
	if r&0x8000_0000 != 0 {
		f |= x86.FlagS
	}
	if parity(r) {
		f |= x86.FlagP
	}
	return f
}

// addFlags computes the flags of r = a + b + carryIn.
func addFlags(a, b uint32, carryIn bool) x86.Flags {
	c := uint64(0)
	if carryIn {
		c = 1
	}
	wide := uint64(a) + uint64(b) + c
	r := uint32(wide)
	f := szpFlags(r)
	if wide>>32 != 0 {
		f |= x86.FlagC
	}
	if (^(a ^ b) & (a ^ r) & 0x8000_0000) != 0 {
		f |= x86.FlagO
	}
	return f
}

// subFlags computes the flags of r = a - b - borrowIn.
func subFlags(a, b uint32, borrowIn bool) x86.Flags {
	c := uint64(0)
	if borrowIn {
		c = 1
	}
	wide := uint64(a) - uint64(b) - c
	r := uint32(wide)
	f := szpFlags(r)
	if wide>>32 != 0 { // borrow out
		f |= x86.FlagC
	}
	if ((a ^ b) & (a ^ r) & 0x8000_0000) != 0 {
		f |= x86.FlagO
	}
	return f
}

// logicFlags computes the flags of a logical result (CF = OF = 0).
func logicFlags(r uint32) x86.Flags { return szpFlags(r) }

// Eval functionally evaluates one micro-op against register state r and
// memory mem, applying its register and memory effects.
//
// Flag semantics follow the documented reproduction spec (DESIGN.md):
// multiply/divide micro-ops never write flags, shift-by-zero leaves flags
// unchanged, and KeepCF micro-ops (x86 INC/DEC flows) preserve the
// incoming carry.
func Eval(u UOp, r *Regs, mem Memory) (Outcome, error) {
	var out Outcome
	a := r.Get(u.SrcA)
	b := u.operandB(r)

	setResult := func(v uint32, f x86.Flags, haveFlags bool) {
		r.Set(u.Dest, v)
		if u.WritesFlags && haveFlags {
			if u.KeepCF {
				f = (f &^ x86.FlagC) | (r.Flags() & x86.FlagC)
			}
			r.SetFlags(f)
		}
	}

	switch u.Op {
	case NOP:
	case LIMM:
		r.Set(u.Dest, uint32(u.Imm))
	case MOV:
		r.Set(u.Dest, a)
	case ADD:
		setResult(a+b, addFlags(a, b, false), true)
	case ADC:
		cin := r.Flags()&x86.FlagC != 0
		v := a + b
		if cin {
			v++
		}
		setResult(v, addFlags(a, b, cin), true)
	case SUB:
		setResult(a-b, subFlags(a, b, false), true)
	case SBB:
		bin := r.Flags()&x86.FlagC != 0
		v := a - b
		if bin {
			v--
		}
		setResult(v, subFlags(a, b, bin), true)
	case AND:
		v := a & b
		setResult(v, logicFlags(v), true)
	case OR:
		v := a | b
		setResult(v, logicFlags(v), true)
	case XOR:
		v := a ^ b
		setResult(v, logicFlags(v), true)
	case SHL:
		n := b & 31
		if n == 0 {
			r.Set(u.Dest, a)
			break
		}
		v := a << n
		f := szpFlags(v)
		if a&(1<<(32-n)) != 0 {
			f |= x86.FlagC
		}
		if (v&0x8000_0000 != 0) != (f&x86.FlagC != 0) {
			f |= x86.FlagO
		}
		setResult(v, f, true)
	case SHR:
		n := b & 31
		if n == 0 {
			r.Set(u.Dest, a)
			break
		}
		v := a >> n
		f := szpFlags(v)
		if a&(1<<(n-1)) != 0 {
			f |= x86.FlagC
		}
		if a&0x8000_0000 != 0 {
			f |= x86.FlagO
		}
		setResult(v, f, true)
	case SAR:
		n := b & 31
		if n == 0 {
			r.Set(u.Dest, a)
			break
		}
		v := uint32(int32(a) >> n)
		f := szpFlags(v)
		if a&(1<<(n-1)) != 0 {
			f |= x86.FlagC
		}
		setResult(v, f, true)
	case MULLO:
		r.Set(u.Dest, a*b)
	case MULHIU:
		hi, _ := bits.Mul32(a, b)
		r.Set(u.Dest, hi)
	case MULHIS:
		r.Set(u.Dest, uint32((int64(int32(a))*int64(int32(b)))>>32))
	case DIVU:
		if b == 0 {
			return out, fmt.Errorf("%w: %s", ErrDivideByZero, u)
		}
		r.Set(u.Dest, a/b)
	case REMU:
		if b == 0 {
			return out, fmt.Errorf("%w: %s", ErrDivideByZero, u)
		}
		r.Set(u.Dest, a%b)
	case DIVS:
		if b == 0 {
			return out, fmt.Errorf("%w: %s", ErrDivideByZero, u)
		}
		r.Set(u.Dest, uint32(int32(a)/int32(b)))
	case REMS:
		if b == 0 {
			return out, fmt.Errorf("%w: %s", ErrDivideByZero, u)
		}
		r.Set(u.Dest, uint32(int32(a)%int32(b)))
	case LEA:
		v := a + uint32(u.Imm)
		if u.SrcB != RegNone {
			v += r.Get(u.SrcB) * uint32(u.Scale)
		}
		r.Set(u.Dest, v)
	case SELECT:
		v := r.Get(u.SrcB)
		if u.Cond.Eval(r.Flags()) {
			v = a
		}
		r.Set(u.Dest, v)
	case LOAD:
		addr := a + uint32(u.Imm)
		if u.SrcB != RegNone {
			addr += r.Get(u.SrcB) * uint32(u.Scale)
		}
		out.IsMem, out.MemAddr = true, addr
		r.Set(u.Dest, mem.Load32(addr))
	case STORE:
		addr := a + uint32(u.Imm)
		v := r.Get(u.SrcB)
		out.IsMem, out.IsStore, out.MemAddr, out.StoreVal = true, true, addr, v
		mem.Store32(addr, v)
	case JMP:
		out.Redirect, out.Target = true, uint32(u.Imm)
	case JR:
		out.Redirect, out.Target = true, a
	case BR:
		if u.Cond.Eval(r.Flags()) {
			out.Redirect, out.Target = true, uint32(u.Imm)
		}
	case ASSERT:
		if !u.Cond.Eval(r.Flags()) {
			out.AssertFired = true
		}
	case CASSERT:
		f := subFlags(a, b, false)
		if !u.Cond.Eval(f) {
			out.AssertFired = true
		}
	default:
		return out, fmt.Errorf("uop: cannot evaluate op %s", u.Op)
	}
	return out, nil
}

// operandB returns the second operand: srcB if present, else the immediate.
func (u UOp) operandB(r *Regs) uint32 {
	if u.SrcB != RegNone {
		return r.Get(u.SrcB)
	}
	return uint32(u.Imm)
}
