package uop

import "sync"

// Micro-op buffer pooling. Frame construction churns through []UOp
// bodies at a rate that dominates the simulator's allocation profile
// (every pending frame grows one, and most pending frames are dropped
// below the size minimum or replaced). The pool recycles those buffers
// across frames and across engines, so steady-state construction stops
// allocating altogether.
//
// Ownership discipline (enforced by callers, checked by the -race
// suite): a buffer passed to PutBuf must have no other live reference —
// in particular, a buffer whose frame escaped to a Deposit callback or
// was aliased by Frame.Truncate stays with its new owner and is never
// returned here.

// bufCap is the capacity of pooled micro-op buffers: the paper's
// maximum frame size, so a recycled buffer never regrows during
// construction.
const bufCap = 256

var bufPool = sync.Pool{
	New: func() any {
		b := make([]UOp, 0, bufCap)
		return &b
	},
}

// GetBuf returns an empty micro-op buffer with pooled capacity.
func GetBuf() []UOp {
	return (*(bufPool.Get().(*[]UOp)))[:0]
}

// PutBuf recycles a micro-op buffer. The caller must hold the only
// reference. Undersized buffers (capacity-clipped by a Truncate alias)
// are dropped rather than pooled, so pool hits always carry full
// capacity.
func PutBuf(b []UOp) {
	if cap(b) < bufCap {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
