// Package uop defines the rePLay micro-operation ISA: the fixed-format,
// RISC-style control words that x86 instructions decode into inside the
// modeled processor (the paper's Section 5.1.1 "rePLay ISA").
//
// Micro-operations are three-operand: dest <- srcA op srcB, with an
// immediate that substitutes for srcB when srcB is absent. The arithmetic
// flags live in a dedicated architectural register (FLAGS) so that flag
// dataflow is explicit: flag-writing micro-ops set WritesFlags, and
// flag-reading micro-ops (branches, assertions, ADC/SBB, selects,
// carry-preserving INC/DEC flows) are marked by ReadsFlags.
package uop

import (
	"fmt"

	"repro/internal/x86"
)

// Reg is a micro-operation architectural register: the eight x86 GPRs,
// the FLAGS register, and the translator temporaries ET0..ET7.
type Reg uint8

// Register space layout.
const (
	EAX Reg = 0
	ECX Reg = 1
	EDX Reg = 2
	EBX Reg = 3
	ESP Reg = 4
	EBP Reg = 5
	ESI Reg = 6
	EDI Reg = 7

	// FLAGS holds the arithmetic flags as an ordinary dataflow register.
	FLAGS Reg = 8

	// ET0 is the first translator temporary.
	ET0 Reg = 9

	// NumTemps is the number of translator temporaries.
	NumTemps = 8

	// NumRegs is the total architectural register count.
	NumRegs = 9 + NumTemps

	// RegNone marks an absent register operand.
	RegNone Reg = 0xFF
)

// FromX86 converts an x86 GPR number to a micro-op register.
func FromX86(r x86.Reg) Reg { return Reg(r) }

// IsGPR reports whether r is one of the eight x86 GPRs.
func (r Reg) IsGPR() bool { return r < 8 }

// IsTemp reports whether r is a translator temporary.
func (r Reg) IsTemp() bool { return r >= ET0 && r < NumRegs }

func (r Reg) String() string {
	switch {
	case r < 8:
		return x86.Reg(r).String()
	case r == FLAGS:
		return "FLAGS"
	case r.IsTemp():
		return fmt.Sprintf("ET%d", r-ET0)
	case r == RegNone:
		return "-"
	default:
		return fmt.Sprintf("U?%d", uint8(r))
	}
}

// Op is a micro-operation opcode.
type Op uint8

// Micro-operation opcodes.
const (
	NOP Op = iota

	// Data movement.
	LIMM // dest <- imm
	MOV  // dest <- srcA

	// ALU. dest <- srcA op (srcB | imm).
	ADD
	ADC // reads FLAGS (carry in)
	SUB
	SBB // reads FLAGS
	AND
	OR
	XOR
	SHL
	SHR
	SAR
	MULLO  // low 32 bits of product
	MULHIU // high 32 bits of unsigned product
	MULHIS // high 32 bits of signed product
	DIVU
	REMU
	DIVS
	REMS

	// LEA computes dest <- srcA + srcB*Scale + imm without touching flags.
	LEA

	// SELECT is a conditional move: dest <- cond(FLAGS) ? srcA : srcB.
	SELECT

	// Memory. A LOAD has full addressing: srcA + srcB*Scale + imm (either
	// register may be RegNone). A STORE address is srcA + imm only — its
	// srcB carries the data; indexed stores go through an LEA temporary.
	LOAD  // dest <- mem[srcA + srcB*Scale + imm]
	STORE // mem[srcA+imm] <- srcB

	// Control.
	JMP     // unconditional direct; target in Imm (absolute)
	JR      // unconditional indirect; target in srcA
	BR      // conditional direct on cond(FLAGS); target in Imm
	ASSERT  // frame assertion: fires (aborts frame) if cond(FLAGS) is false
	CASSERT // fused compare-and-assert: fires if !(srcA cond srcB/imm)

	numOps
)

var opNames = [numOps]string{
	"NOP", "LIMM", "MOV",
	"ADD", "ADC", "SUB", "SBB", "AND", "OR", "XOR",
	"SHL", "SHR", "SAR",
	"MULLO", "MULHIU", "MULHIS", "DIVU", "REMU", "DIVS", "REMS",
	"LEA", "SELECT", "LOAD", "STORE",
	"JMP", "JR", "BR", "ASSERT", "CASSERT",
}

func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("uop?%d", uint8(o))
}

// IsALU reports whether the op is a plain register-to-register computation.
func (o Op) IsALU() bool { return o >= ADD && o <= SELECT }

// IsMem reports whether the op accesses memory.
func (o Op) IsMem() bool { return o == LOAD || o == STORE }

// IsControl reports whether the op redirects or checks control flow.
func (o Op) IsControl() bool { return o >= JMP && o <= CASSERT }

// IsAssert reports whether the op is a frame assertion.
func (o Op) IsAssert() bool { return o == ASSERT || o == CASSERT }

// Commutative reports whether srcA and srcB can be exchanged.
func (o Op) Commutative() bool {
	switch o {
	case ADD, AND, OR, XOR, MULLO, MULHIU, MULHIS:
		return true
	}
	return false
}

// UOp is one micro-operation in the dynamic stream, using architectural
// register names. The optimizer works on the renamed form (package opt);
// this form is what the translator emits and the ICache fetch path decodes.
type UOp struct {
	Op   Op
	Cond x86.Cond // condition for BR/ASSERT/CASSERT/SELECT

	Dest Reg // RegNone if no GPR/temp result
	SrcA Reg
	SrcB Reg
	Imm  int32
	// Scale is the LEA index scale (1, 2, 4, 8).
	Scale uint8

	// WritesFlags marks micro-ops that produce the FLAGS register.
	WritesFlags bool
	// KeepCF marks flag writes that preserve the incoming carry flag
	// (x86 INC/DEC semantics); such micro-ops also read FLAGS.
	KeepCF bool
}

// DestReg returns the register the micro-op writes, or RegNone for ops
// without a register result regardless of the Dest field's (zero) value.
func (u UOp) DestReg() Reg {
	switch u.Op {
	case NOP, STORE, JMP, JR, BR, ASSERT, CASSERT:
		return RegNone
	}
	return u.Dest
}

// UsesSrcA reports whether the micro-op reads the SrcA field.
func (u UOp) UsesSrcA() bool {
	switch u.Op {
	case NOP, LIMM, JMP, BR, ASSERT:
		return false
	}
	return u.SrcA != RegNone
}

// UsesSrcB reports whether the micro-op reads the SrcB field.
func (u UOp) UsesSrcB() bool {
	switch u.Op {
	case ADD, ADC, SUB, SBB, AND, OR, XOR, SHL, SHR, SAR,
		MULLO, MULHIU, MULHIS, DIVU, REMU, DIVS, REMS,
		LEA, SELECT, STORE, CASSERT, LOAD:
		return u.SrcB != RegNone
	}
	return false
}

// ReadsFlags reports whether the micro-op consumes the FLAGS register.
func (u UOp) ReadsFlags() bool {
	switch u.Op {
	case ADC, SBB, BR, ASSERT, SELECT:
		return true
	}
	return u.WritesFlags && u.KeepCF
}

// HasSrcB reports whether srcB is a register (false means Imm is the
// second operand).
func (u UOp) HasSrcB() bool { return u.SrcB != RegNone }

func (u UOp) String() string {
	switch u.Op {
	case NOP:
		return "NOP"
	case LIMM:
		return fmt.Sprintf("%s <- %#x", u.Dest, uint32(u.Imm))
	case MOV:
		return fmt.Sprintf("%s <- %s", u.Dest, u.SrcA)
	case LEA:
		if u.SrcB != RegNone {
			return fmt.Sprintf("%s <- &[%s+%s*%d%+#x]", u.Dest, u.SrcA, u.SrcB, u.Scale, u.Imm)
		}
		return fmt.Sprintf("%s <- &[%s%+#x]", u.Dest, u.SrcA, u.Imm)
	case SELECT:
		return fmt.Sprintf("%s <- %s ? %s : %s", u.Dest, u.Cond, u.SrcA, u.SrcB)
	case LOAD:
		switch {
		case u.SrcA == RegNone && u.SrcB == RegNone:
			return fmt.Sprintf("%s <- [%#x]", u.Dest, uint32(u.Imm))
		case u.SrcB != RegNone:
			return fmt.Sprintf("%s <- [%s+%s*%d%+#x]", u.Dest, u.SrcA, u.SrcB, u.Scale, u.Imm)
		default:
			return fmt.Sprintf("%s <- [%s%+#x]", u.Dest, u.SrcA, u.Imm)
		}
	case STORE:
		if u.SrcA == RegNone {
			return fmt.Sprintf("[%#x] <- %s", uint32(u.Imm), u.SrcB)
		}
		return fmt.Sprintf("[%s%+#x] <- %s", u.SrcA, u.Imm, u.SrcB)
	case JMP:
		return fmt.Sprintf("jump %#x", uint32(u.Imm))
	case JR:
		return fmt.Sprintf("jump (%s)", u.SrcA)
	case BR:
		return fmt.Sprintf("if (%s) jump %#x", u.Cond, uint32(u.Imm))
	case ASSERT:
		return fmt.Sprintf("assert %s", u.Cond)
	case CASSERT:
		if u.SrcB != RegNone {
			return fmt.Sprintf("assert %s %s %s", u.SrcA, u.Cond, u.SrcB)
		}
		return fmt.Sprintf("assert %s %s %#x", u.SrcA, u.Cond, uint32(u.Imm))
	}
	// Generic ALU rendering.
	fl := ""
	if u.WritesFlags {
		fl = ",flags"
		if u.KeepCF {
			fl = ",flags*"
		}
	}
	if u.HasSrcB() {
		return fmt.Sprintf("%s%s <- %s %s %s", u.Dest, fl, u.SrcA, u.Op, u.SrcB)
	}
	return fmt.Sprintf("%s%s <- %s %s %#x", u.Dest, fl, u.SrcA, u.Op, uint32(u.Imm))
}

// Regs is the architectural register state of the micro-op machine.
type Regs struct {
	R [NumRegs]uint32
}

// Get returns the value of a register; RegNone reads as zero.
func (r *Regs) Get(reg Reg) uint32 {
	if reg == RegNone {
		return 0
	}
	return r.R[reg]
}

// Set writes a register; writes to RegNone are dropped.
func (r *Regs) Set(reg Reg, v uint32) {
	if reg == RegNone {
		return
	}
	r.R[reg] = v
}

// Flags returns the FLAGS register as typed flags.
func (r *Regs) Flags() x86.Flags { return x86.Flags(r.R[FLAGS]) & x86.FlagMask }

// SetFlags writes the FLAGS register.
func (r *Regs) SetFlags(f x86.Flags) { r.R[FLAGS] = uint32(f & x86.FlagMask) }

// GPRs returns a copy of the eight x86 general-purpose registers.
func (r *Regs) GPRs() [8]uint32 {
	var g [8]uint32
	copy(g[:], r.R[:8])
	return g
}

// Memory is the interface micro-op evaluation uses for loads and stores.
type Memory interface {
	Load32(addr uint32) uint32
	Store32(addr uint32, v uint32)
}

// MapMemory is a simple map-backed Memory, useful in tests and the verifier.
type MapMemory map[uint32]uint32

// Load32 returns the word at addr (zero if never written).
func (m MapMemory) Load32(addr uint32) uint32 { return m[addr] }

// Store32 writes the word at addr.
func (m MapMemory) Store32(addr uint32, v uint32) { m[addr] = v }
