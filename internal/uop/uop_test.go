package uop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/x86"
)

func evalOne(t *testing.T, u UOp, setup func(*Regs)) (*Regs, MapMemory, Outcome) {
	t.Helper()
	r := &Regs{}
	if setup != nil {
		setup(r)
	}
	mem := MapMemory{}
	out, err := Eval(u, r, mem)
	if err != nil {
		t.Fatalf("Eval(%s): %v", u, err)
	}
	return r, mem, out
}

func TestEvalBasicALU(t *testing.T) {
	cases := []struct {
		name  string
		u     UOp
		a, b  uint32
		want  uint32
		flags x86.Flags
	}{
		{"add", UOp{Op: ADD, Dest: EAX, SrcA: EBX, SrcB: ECX, WritesFlags: true}, 2, 3, 5, x86.FlagP},
		{"add carry", UOp{Op: ADD, Dest: EAX, SrcA: EBX, SrcB: ECX, WritesFlags: true},
			0xFFFFFFFF, 1, 0, x86.FlagC | x86.FlagZ | x86.FlagP},
		{"add overflow", UOp{Op: ADD, Dest: EAX, SrcA: EBX, SrcB: ECX, WritesFlags: true},
			0x7FFFFFFF, 1, 0x80000000, x86.FlagS | x86.FlagO | x86.FlagP},
		{"sub", UOp{Op: SUB, Dest: EAX, SrcA: EBX, SrcB: ECX, WritesFlags: true}, 5, 3, 2, 0},
		{"sub borrow", UOp{Op: SUB, Dest: EAX, SrcA: EBX, SrcB: ECX, WritesFlags: true},
			3, 5, 0xFFFFFFFE, x86.FlagC | x86.FlagS},
		{"sub zero", UOp{Op: SUB, Dest: EAX, SrcA: EBX, SrcB: ECX, WritesFlags: true},
			7, 7, 0, x86.FlagZ | x86.FlagP},
		{"and", UOp{Op: AND, Dest: EAX, SrcA: EBX, SrcB: ECX, WritesFlags: true}, 0xF0, 0x3C, 0x30, x86.FlagP},
		{"xor self", UOp{Op: XOR, Dest: EAX, SrcA: EBX, SrcB: EBX, WritesFlags: true},
			0xDEADBEEF, 0, 0, x86.FlagZ | x86.FlagP},
		{"or", UOp{Op: OR, Dest: EAX, SrcA: EBX, SrcB: ECX, WritesFlags: true}, 1, 2, 3, x86.FlagP},
		{"mullo", UOp{Op: MULLO, Dest: EAX, SrcA: EBX, SrcB: ECX}, 6, 7, 42, 0},
		{"imm operand", UOp{Op: ADD, Dest: EAX, SrcA: EBX, SrcB: RegNone, Imm: 10, WritesFlags: true}, 5, 0, 15, x86.FlagP},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			r, _, _ := evalOne(t, tt.u, func(r *Regs) {
				r.Set(EBX, tt.a)
				if tt.u.SrcB == ECX {
					r.Set(ECX, tt.b)
				}
			})
			if got := r.Get(EAX); got != tt.want {
				t.Errorf("result = %#x, want %#x", got, tt.want)
			}
			if tt.u.WritesFlags {
				if got := r.Flags(); got != tt.flags {
					t.Errorf("flags = %s, want %s", got, tt.flags)
				}
			}
		})
	}
}

func TestEvalXorSelfIsZeroIdiom(t *testing.T) {
	// XOR EAX, EAX must produce 0 and set ZF regardless of prior value —
	// the canonical x86 zeroing idiom from the paper's Figure 2 (uop 07).
	r, _, _ := evalOne(t, UOp{Op: XOR, Dest: EAX, SrcA: EAX, SrcB: EAX, WritesFlags: true},
		func(r *Regs) { r.Set(EAX, 12345) })
	if r.Get(EAX) != 0 || r.Flags()&x86.FlagZ == 0 {
		t.Errorf("got EAX=%#x flags=%s", r.Get(EAX), r.Flags())
	}
}

func TestEvalADCSBB(t *testing.T) {
	u := UOp{Op: ADC, Dest: EAX, SrcA: EBX, SrcB: ECX, WritesFlags: true}
	r, _, _ := evalOne(t, u, func(r *Regs) {
		r.Set(EBX, 10)
		r.Set(ECX, 20)
		r.SetFlags(x86.FlagC)
	})
	if got := r.Get(EAX); got != 31 {
		t.Errorf("ADC = %d, want 31", got)
	}
	u = UOp{Op: SBB, Dest: EAX, SrcA: EBX, SrcB: ECX, WritesFlags: true}
	r, _, _ = evalOne(t, u, func(r *Regs) {
		r.Set(EBX, 10)
		r.Set(ECX, 3)
		r.SetFlags(x86.FlagC)
	})
	if got := r.Get(EAX); got != 6 {
		t.Errorf("SBB = %d, want 6", got)
	}
}

func TestEvalKeepCF(t *testing.T) {
	// x86 INC semantics: all flags except CF.
	u := UOp{Op: ADD, Dest: EAX, SrcA: EAX, SrcB: RegNone, Imm: 1, WritesFlags: true, KeepCF: true}
	r, _, _ := evalOne(t, u, func(r *Regs) {
		r.Set(EAX, 0xFFFFFFFF)
		r.SetFlags(0) // CF clear
	})
	if r.Get(EAX) != 0 {
		t.Errorf("INC wrapped to %#x", r.Get(EAX))
	}
	if r.Flags()&x86.FlagC != 0 {
		t.Error("INC must not set CF")
	}
	if r.Flags()&x86.FlagZ == 0 {
		t.Error("INC must set ZF on wrap to zero")
	}
	// And it must preserve a set CF.
	r, _, _ = evalOne(t, u, func(r *Regs) {
		r.Set(EAX, 5)
		r.SetFlags(x86.FlagC)
	})
	if r.Flags()&x86.FlagC == 0 {
		t.Error("INC must preserve set CF")
	}
}

func TestEvalShifts(t *testing.T) {
	cases := []struct {
		op    Op
		a     uint32
		n     int32
		want  uint32
		carry bool
	}{
		{SHL, 1, 4, 16, false},
		{SHL, 0x80000000, 1, 0, true},
		{SHR, 16, 4, 1, false},
		{SHR, 3, 1, 1, true},
		{SAR, 0x80000000, 31, 0xFFFFFFFF, false},
		{SAR, 5, 1, 2, true},
	}
	for _, tt := range cases {
		u := UOp{Op: tt.op, Dest: EAX, SrcA: EAX, SrcB: RegNone, Imm: tt.n, WritesFlags: true}
		r, _, _ := evalOne(t, u, func(r *Regs) { r.Set(EAX, tt.a) })
		if got := r.Get(EAX); got != tt.want {
			t.Errorf("%s %#x by %d = %#x, want %#x", tt.op, tt.a, tt.n, got, tt.want)
		}
		if got := r.Flags()&x86.FlagC != 0; got != tt.carry {
			t.Errorf("%s %#x by %d carry = %v, want %v", tt.op, tt.a, tt.n, got, tt.carry)
		}
	}
	// Shift by zero leaves flags unchanged.
	u := UOp{Op: SHL, Dest: EAX, SrcA: EAX, SrcB: RegNone, Imm: 0, WritesFlags: true}
	r, _, _ := evalOne(t, u, func(r *Regs) {
		r.Set(EAX, 7)
		r.SetFlags(x86.FlagC | x86.FlagZ)
	})
	if r.Flags() != x86.FlagC|x86.FlagZ {
		t.Errorf("shift by 0 changed flags to %s", r.Flags())
	}
}

func TestEvalMulDiv(t *testing.T) {
	r, _, _ := evalOne(t, UOp{Op: MULHIU, Dest: EDX, SrcA: EAX, SrcB: EBX}, func(r *Regs) {
		r.Set(EAX, 0xFFFFFFFF)
		r.Set(EBX, 2)
	})
	if got := r.Get(EDX); got != 1 {
		t.Errorf("MULHIU = %d, want 1", got)
	}
	r, _, _ = evalOne(t, UOp{Op: MULHIS, Dest: EDX, SrcA: EAX, SrcB: EBX}, func(r *Regs) {
		r.Set(EAX, ^uint32(1))
		r.Set(EBX, 3)
	})
	if got := int32(r.Get(EDX)); got != -1 {
		t.Errorf("MULHIS = %d, want -1", got)
	}
	r, _, _ = evalOne(t, UOp{Op: DIVS, Dest: EAX, SrcA: EAX, SrcB: EBX}, func(r *Regs) {
		r.Set(EAX, ^uint32(6))
		r.Set(EBX, 2)
	})
	if got := int32(r.Get(EAX)); got != -3 {
		t.Errorf("DIVS = %d, want -3 (truncation toward zero)", got)
	}
	r, _, _ = evalOne(t, UOp{Op: REMS, Dest: EDX, SrcA: EAX, SrcB: EBX}, func(r *Regs) {
		r.Set(EAX, ^uint32(6))
		r.Set(EBX, 2)
	})
	if got := int32(r.Get(EDX)); got != -1 {
		t.Errorf("REMS = %d, want -1", got)
	}
	for _, op := range []Op{DIVU, REMU, DIVS, REMS} {
		u := UOp{Op: op, Dest: EAX, SrcA: EAX, SrcB: EBX}
		regs := &Regs{}
		regs.Set(EAX, 1)
		if _, err := Eval(u, regs, MapMemory{}); err == nil {
			t.Errorf("%s by zero did not error", op)
		}
	}
}

func TestEvalLEA(t *testing.T) {
	u := UOp{Op: LEA, Dest: EAX, SrcA: EBX, SrcB: ECX, Scale: 4, Imm: 8}
	r, _, _ := evalOne(t, u, func(r *Regs) {
		r.Set(EBX, 0x1000)
		r.Set(ECX, 3)
		r.SetFlags(x86.FlagC)
	})
	if got := r.Get(EAX); got != 0x1000+12+8 {
		t.Errorf("LEA = %#x", got)
	}
	if r.Flags() != x86.FlagC {
		t.Error("LEA must not touch flags")
	}
}

func TestEvalSelect(t *testing.T) {
	u := UOp{Op: SELECT, Cond: x86.CondE, Dest: EAX, SrcA: EBX, SrcB: ECX}
	r, _, _ := evalOne(t, u, func(r *Regs) {
		r.Set(EBX, 111)
		r.Set(ECX, 222)
		r.SetFlags(x86.FlagZ)
	})
	if got := r.Get(EAX); got != 111 {
		t.Errorf("SELECT taken = %d, want 111", got)
	}
	r, _, _ = evalOne(t, u, func(r *Regs) {
		r.Set(EBX, 111)
		r.Set(ECX, 222)
	})
	if got := r.Get(EAX); got != 222 {
		t.Errorf("SELECT not taken = %d, want 222", got)
	}
}

func TestEvalMemory(t *testing.T) {
	store := UOp{Op: STORE, SrcA: ESP, SrcB: EBX, Imm: -4}
	r := &Regs{}
	r.Set(ESP, 0x8000)
	r.Set(EBX, 0xCAFE)
	mem := MapMemory{}
	out, err := Eval(store, r, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsMem || !out.IsStore || out.MemAddr != 0x7FFC || out.StoreVal != 0xCAFE {
		t.Errorf("store outcome = %+v", out)
	}
	if mem[0x7FFC] != 0xCAFE {
		t.Errorf("memory = %#x", mem[0x7FFC])
	}
	load := UOp{Op: LOAD, Dest: ECX, SrcA: ESP, SrcB: RegNone, Imm: -4}
	out, err = Eval(load, r, mem)
	if err != nil {
		t.Fatal(err)
	}
	if out.IsStore || out.MemAddr != 0x7FFC {
		t.Errorf("load outcome = %+v", out)
	}
	if r.Get(ECX) != 0xCAFE {
		t.Errorf("loaded %#x", r.Get(ECX))
	}
	// Absolute addressing.
	abs := UOp{Op: LOAD, Dest: EDX, SrcA: RegNone, SrcB: RegNone, Imm: 0x7FFC}
	if _, err := Eval(abs, r, mem); err != nil {
		t.Fatal(err)
	}
	if r.Get(EDX) != 0xCAFE {
		t.Errorf("absolute load = %#x", r.Get(EDX))
	}
}

func TestEvalControl(t *testing.T) {
	r := &Regs{}
	out, _ := Eval(UOp{Op: JMP, Imm: 0x4000}, r, nil)
	if !out.Redirect || out.Target != 0x4000 {
		t.Errorf("JMP outcome = %+v", out)
	}
	r.Set(EAX, 0x5000)
	out, _ = Eval(UOp{Op: JR, SrcA: EAX}, r, nil)
	if !out.Redirect || out.Target != 0x5000 {
		t.Errorf("JR outcome = %+v", out)
	}
	r.SetFlags(x86.FlagZ)
	out, _ = Eval(UOp{Op: BR, Cond: x86.CondE, Imm: 0x6000}, r, nil)
	if !out.Redirect || out.Target != 0x6000 {
		t.Errorf("taken BR outcome = %+v", out)
	}
	out, _ = Eval(UOp{Op: BR, Cond: x86.CondNE, Imm: 0x6000}, r, nil)
	if out.Redirect {
		t.Errorf("not-taken BR redirected: %+v", out)
	}
}

func TestEvalAssert(t *testing.T) {
	r := &Regs{}
	r.SetFlags(x86.FlagZ)
	out, _ := Eval(UOp{Op: ASSERT, Cond: x86.CondE}, r, nil)
	if out.AssertFired {
		t.Error("holding assertion fired")
	}
	out, _ = Eval(UOp{Op: ASSERT, Cond: x86.CondNE}, r, nil)
	if !out.AssertFired {
		t.Error("violated assertion did not fire")
	}
	// CASSERT: assert EBX == 7.
	r.Set(EBX, 7)
	out, _ = Eval(UOp{Op: CASSERT, Cond: x86.CondE, SrcA: EBX, SrcB: RegNone, Imm: 7}, r, nil)
	if out.AssertFired {
		t.Error("CASSERT equal fired")
	}
	out, _ = Eval(UOp{Op: CASSERT, Cond: x86.CondE, SrcA: EBX, SrcB: RegNone, Imm: 8}, r, nil)
	if !out.AssertFired {
		t.Error("CASSERT unequal did not fire")
	}
	// Signed comparison assert.
	r.Set(ECX, ^uint32(0))
	out, _ = Eval(UOp{Op: CASSERT, Cond: x86.CondL, SrcA: ECX, SrcB: RegNone, Imm: 0}, r, nil)
	if out.AssertFired {
		t.Error("-1 < 0 assert fired")
	}
}

func TestReadsFlags(t *testing.T) {
	cases := []struct {
		u    UOp
		want bool
	}{
		{UOp{Op: ADD}, false},
		{UOp{Op: ADC}, true},
		{UOp{Op: SBB}, true},
		{UOp{Op: BR}, true},
		{UOp{Op: ASSERT}, true},
		{UOp{Op: SELECT}, true},
		{UOp{Op: CASSERT}, false}, // compares registers, not flags
		{UOp{Op: ADD, WritesFlags: true, KeepCF: true}, true},
		{UOp{Op: LOAD}, false},
	}
	for _, tt := range cases {
		if got := tt.u.ReadsFlags(); got != tt.want {
			t.Errorf("%s ReadsFlags = %v, want %v", tt.u.Op, got, tt.want)
		}
	}
}

func TestRegStrings(t *testing.T) {
	if EAX.String() != "EAX" || FLAGS.String() != "FLAGS" || ET0.String() != "ET0" {
		t.Error("register names wrong")
	}
	if Reg(ET0+3).String() != "ET3" {
		t.Error("temp naming wrong")
	}
}

// TestEvalDeterministic: evaluating the same micro-op on the same state
// twice produces identical results — required by the replaying verifier.
func TestEvalDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ops := []Op{ADD, SUB, AND, OR, XOR, SHL, SHR, SAR, MULLO, MULHIU, MULHIS, LEA, MOV, LIMM}
	f := func() bool {
		u := UOp{
			Op:          ops[r.Intn(len(ops))],
			Dest:        Reg(r.Intn(8)),
			SrcA:        Reg(r.Intn(8)),
			SrcB:        Reg(r.Intn(8)),
			Imm:         int32(r.Uint32()),
			Scale:       1,
			WritesFlags: r.Intn(2) == 0,
		}
		var init Regs
		for i := range init.R {
			init.R[i] = r.Uint32()
		}
		init.SetFlags(x86.Flags(r.Uint32()) & x86.FlagMask)
		r1, r2 := init, init
		o1, e1 := Eval(u, &r1, MapMemory{})
		o2, e2 := Eval(u, &r2, MapMemory{})
		return (e1 == nil) == (e2 == nil) && o1 == o2 && r1 == r2
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestAddSubInverse: property — ADD then SUB of the same value restores
// the register (flags aside).
func TestAddSubInverse(t *testing.T) {
	f := func(a, b uint32) bool {
		r := &Regs{}
		r.Set(EAX, a)
		r.Set(EBX, b)
		add := UOp{Op: ADD, Dest: EAX, SrcA: EAX, SrcB: EBX, WritesFlags: true}
		sub := UOp{Op: SUB, Dest: EAX, SrcA: EAX, SrcB: EBX, WritesFlags: true}
		if _, err := Eval(add, r, MapMemory{}); err != nil {
			return false
		}
		if _, err := Eval(sub, r, MapMemory{}); err != nil {
			return false
		}
		return r.Get(EAX) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUOpString(t *testing.T) {
	cases := []struct {
		u    UOp
		want string
	}{
		{UOp{Op: STORE, SrcA: ESP, SrcB: EBP, Imm: -4}, "[ESP-0x4] <- EBP"},
		{UOp{Op: LOAD, Dest: ECX, SrcA: ESP, SrcB: RegNone, Imm: 0xC}, "ECX <- [ESP+0xc]"},
		{UOp{Op: ASSERT, Cond: x86.CondE}, "assert E"},
		{UOp{Op: NOP}, "NOP"},
		{UOp{Op: LIMM, Dest: EAX, Imm: 0}, "EAX <- 0x0"},
	}
	for _, tt := range cases {
		if got := tt.u.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}
