// Package verify implements the paper's State Verifier (Section 5.1.3).
//
// Its first role — validating the micro-operation decoder — is the
// differential checker in this file: the functional x86 interpreter
// (internal/cpu) and a micro-op machine driven by the translator
// (internal/translate + internal/uop) execute the same program in
// lockstep, and every instruction's register state, flags, control flow
// and memory transactions must agree.
//
// Its second role — validating the optimizer — is the frame checker in
// frame.go: each optimized frame replays against trace-derived
// architectural state and initial/final memory maps.
package verify

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/translate"
	"repro/internal/uop"
	"repro/internal/workload"
	"repro/internal/x86"
)

// uopMachine executes the micro-op translation of a program, maintaining
// its own architectural state and memory.
type uopMachine struct {
	regs uop.Regs
	mem  *cpu.Memory
	pc   uint32
}

type memEvent struct {
	addr, data uint32
	isStore    bool
}

// step executes the micro-op flow of the instruction at pc. It returns
// the memory events, whether the program halted, and the next PC.
func (m *uopMachine) step() ([]memEvent, bool, error) {
	in, err := x86.Decode(m.mem.ReadBytes(m.pc, 15))
	if err != nil {
		return nil, false, fmt.Errorf("verify: decode at %#x: %w", m.pc, err)
	}
	if in.Op == x86.OpHLT {
		return nil, true, nil
	}
	uops, err := translate.UOps(in, m.pc)
	if err != nil {
		return nil, false, err
	}
	next := m.pc + uint32(in.Len)
	var events []memEvent
	for _, u := range uops {
		out, err := uop.Eval(u, &m.regs, m.mem)
		if err != nil {
			return nil, false, fmt.Errorf("verify: at %#x (%s / %s): %w", m.pc, in, u, err)
		}
		if out.IsMem {
			data := out.StoreVal
			if !out.IsStore {
				data = m.regs.Get(u.Dest)
			}
			events = append(events, memEvent{addr: out.MemAddr, data: data, isStore: out.IsStore})
		}
		if out.Redirect {
			next = out.Target
		}
		if out.AssertFired {
			return nil, false, fmt.Errorf("verify: unexpected assertion in straight translation at %#x", m.pc)
		}
	}
	m.pc = next
	return events, false, nil
}

// Differential runs prog on both machines for up to maxSteps instructions
// and reports the first divergence as an error. It returns the number of
// instructions compared.
func Differential(prog *workload.Program, maxSteps int) (int, error) {
	ref := prog.NewCPU()

	shadow := &uopMachine{mem: cpu.NewMemory(), pc: prog.Entry}
	shadow.mem.WriteBytes(prog.Base, prog.Code)
	for _, s := range prog.Data {
		shadow.mem.WriteBytes(s.Addr, s.Bytes)
	}
	shadow.regs.Set(uop.ESP, workload.StackTop)

	for step := 0; step < maxSteps; step++ {
		if ref.Halted {
			return step, nil
		}
		pc := ref.PC
		rec, err := ref.Step()
		if err != nil {
			return step, fmt.Errorf("reference cpu: %w", err)
		}
		events, halted, err := shadow.step()
		if err != nil {
			return step, err
		}
		if halted != ref.Halted {
			return step, fmt.Errorf("halt disagreement at %#x (step %d)", pc, step)
		}
		if halted {
			return step + 1, nil
		}
		if shadow.pc != ref.PC {
			return step, fmt.Errorf("PC divergence after %#x (step %d): uop %#x vs cpu %#x",
				pc, step, shadow.pc, ref.PC)
		}
		for r := 0; r < 8; r++ {
			if shadow.regs.Get(uop.Reg(r)) != ref.Regs[r] {
				return step, fmt.Errorf("register %s divergence after %#x (step %d): uop %#x vs cpu %#x",
					x86.Reg(r), pc, step, shadow.regs.Get(uop.Reg(r)), ref.Regs[r])
			}
		}
		if shadow.regs.Flags() != ref.Flags {
			return step, fmt.Errorf("flags divergence after %#x (step %d): uop %s vs cpu %s",
				pc, step, shadow.regs.Flags(), ref.Flags)
		}
		if len(events) != len(rec.MemOps) {
			return step, fmt.Errorf("memop count divergence at %#x (step %d): uop %d vs cpu %d",
				pc, step, len(events), len(rec.MemOps))
		}
		for i, e := range events {
			m := rec.MemOps[i]
			if e.addr != m.Addr || e.data != m.Data || e.isStore != m.IsStore {
				return step, fmt.Errorf("memop %d divergence at %#x (step %d): uop %+v vs cpu %+v",
					i, pc, step, e, m)
			}
		}
	}
	return maxSteps, nil
}
