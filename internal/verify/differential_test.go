package verify

import (
	"testing"

	"repro/internal/workload"
)

// TestDifferentialAllProfiles runs the translator/interpreter lockstep
// check over a window of every workload profile — the paper's first
// verifier role, exercised across all 14 applications.
func TestDifferentialAllProfiles(t *testing.T) {
	steps := 20_000
	if testing.Short() {
		steps = 3_000
	}
	for _, p := range workload.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := workload.Generate(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			n, err := Differential(prog, steps)
			if err != nil {
				t.Fatalf("after %d instructions: %v", n, err)
			}
			if n < steps {
				t.Logf("program halted after %d instructions", n)
			}
		})
	}
}

// TestDifferentialSecondTraces covers the additional hot-spot traces of
// the multi-trace applications.
func TestDifferentialSecondTraces(t *testing.T) {
	for _, p := range workload.DesktopProfiles() {
		if p.Traces < 2 {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := workload.Generate(p, 1)
			if err != nil {
				t.Fatal(err)
			}
			if n, err := Differential(prog, 5_000); err != nil {
				t.Fatalf("after %d instructions: %v", n, err)
			}
		})
	}
}
