package verify

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/frame"
	"repro/internal/opt"
	"repro/internal/translate"
	"repro/internal/uop"
	"repro/internal/workload"
	"repro/internal/x86"
)

// FrameCheckStats summarizes an online frame verification run.
type FrameCheckStats struct {
	Insts       int // x86 instructions executed
	Constructed int // frames deposited
	Checked     int // frame executions verified
	Aborted     int // frame executions that aborted (assert/unsafe)
	UOpsIn      int // micro-ops entering the optimizer
	UOpsOut     int // micro-ops surviving optimization
	LoadsIn     int
	LoadsOut    int
}

// CheckFrames runs prog for up to maxInsts instructions with frame
// construction and optimization enabled, and verifies every optimized
// frame execution against the reference interpreter — the paper's second
// State Verifier role:
//
//  1. a frame must abort exactly when the reference path diverges from
//     the frame's construction path (assertions), or on an unsafe-store
//     conflict (spurious but safe);
//  2. a committing frame must produce the reference's register state,
//     flags, and store sequence at the frame boundary.
func CheckFrames(prog *workload.Program, maxInsts int, optsFn func() opt.Options, scope opt.Scope) (FrameCheckStats, error) {
	return checkFrames(prog, maxInsts, optsFn, scope, false)
}

// CheckFramesRescheduled is CheckFrames with the Section 4 position-field
// rescheduling applied to every optimized frame, verifying that the
// scheduled issue order preserves frame semantics.
func CheckFramesRescheduled(prog *workload.Program, maxInsts int, optsFn func() opt.Options, scope opt.Scope) (FrameCheckStats, error) {
	return checkFrames(prog, maxInsts, optsFn, scope, true)
}

func checkFrames(prog *workload.Program, maxInsts int, optsFn func() opt.Options, scope opt.Scope, reschedule bool) (FrameCheckStats, error) {
	var stats FrameCheckStats

	ref := prog.NewCPU()

	frames := make(map[uint32]*opt.OptFrame)
	cons := frame.NewConstructor(frame.DefaultConfig(), func(f *frame.Frame) {
		of := opt.Remap(f, scope)
		s := opt.Optimize(of, optsFn())
		if reschedule {
			opt.Schedule(of)
		}
		stats.UOpsIn += s.UOpsIn
		stats.UOpsOut += s.UOpsOut
		stats.LoadsIn += s.LoadsIn
		stats.LoadsOut += s.LoadsOut
		stats.Constructed++
		if _, dup := frames[f.StartPC]; !dup {
			frames[f.StartPC] = of
		}
	})

	dec := newCPUDecoder(ref)

	for stats.Insts < maxInsts && !ref.Halted {
		pc := ref.PC
		if of, ok := frames[pc]; ok {
			n, err := checkOneFrame(ref, of, cons, dec, &stats)
			stats.Insts += n
			if err != nil {
				return stats, err
			}
			continue
		}
		in, uops, err := dec.at(pc)
		if err != nil {
			return stats, err
		}
		rec, err := ref.Step()
		if err != nil {
			return stats, err
		}
		addrs := make([]uint32, 0, len(rec.MemOps))
		for _, m := range rec.MemOps {
			addrs = append(addrs, m.Addr)
		}
		cons.Retire(pc, in, uops, rec.NextPC, addrs)
		stats.Insts++
	}
	return stats, nil
}

// checkOneFrame executes a frame functionally, steps the reference
// through the frame's path, and cross-checks the two. It returns the
// number of reference instructions consumed.
func checkOneFrame(ref *cpu.CPU, of *opt.OptFrame, cons *frame.Constructor, dec *cpuDecoder, stats *FrameCheckStats) (int, error) {
	src := of.Source
	stats.Checked++

	// Snapshot entry state and execute the frame against live memory
	// (reads only; stores are buffered).
	var entry uop.Regs
	for r := 0; r < 8; r++ {
		entry.Set(uop.Reg(r), ref.Regs[r])
	}
	entry.SetFlags(ref.Flags)
	res, err := opt.Execute(of, &entry, ref.Mem)
	if err != nil {
		return 0, fmt.Errorf("frame %s: %w", src, err)
	}

	// Step the reference along the frame's path, collecting its stores.
	type storeRec struct{ addr, val uint32 }
	var refStores []storeRec
	diverged := -1
	steps := 0
	for k := 0; k < src.NumX86; k++ {
		if ref.PC != src.PCs[k] {
			return steps, fmt.Errorf("frame %s: reference at %#x, path[%d]=%#x", src, ref.PC, k, src.PCs[k])
		}
		pc := ref.PC
		in, uops, err := dec.at(pc)
		if err != nil {
			return steps, err
		}
		rec, err := ref.Step()
		if err != nil {
			return steps, err
		}
		steps++
		// Retired instructions keep feeding the constructor, as in the
		// real machine where construction watches retirement.
		addrs := make([]uint32, 0, len(rec.MemOps))
		for _, m := range rec.MemOps {
			addrs = append(addrs, m.Addr)
		}
		cons.Retire(pc, in, uops, rec.NextPC, addrs)
		for _, m := range rec.MemOps {
			if m.IsStore {
				refStores = append(refStores, storeRec{m.Addr, m.Data})
			}
		}
		if rec.NextPC != src.NextPCs[k] {
			diverged = k
			break
		}
	}

	if diverged >= 0 {
		// The reference left the frame's path: the frame must have fired
		// an assertion (its InstIdx at or before the divergence point).
		if !res.Aborted {
			return steps, fmt.Errorf("frame %s: path diverged at inst %d but frame committed", src, diverged)
		}
		stats.Aborted++
		return steps, nil
	}
	if res.Aborted {
		// Spurious abort is legal only for unsafe-store conflicts.
		if !res.UnsafeConflict {
			return steps, fmt.Errorf("frame %s: assertion fired on matching path (op %d)", src, res.AbortPos)
		}
		stats.Aborted++
		return steps, nil
	}

	// Committed: registers, flags, and stores must match the reference.
	for r := 0; r < 8; r++ {
		if got, want := res.Regs.Get(uop.Reg(r)), ref.Regs[r]; got != want {
			return steps, fmt.Errorf("frame %s: %s = %#x, reference %#x", src, x86.Reg(r), got, want)
		}
	}
	if got, want := res.Regs.Flags(), ref.Flags&x86.FlagMask; got != want {
		return steps, fmt.Errorf("frame %s: flags %s, reference %s", src, got, want)
	}
	if len(res.Stores) != len(refStores) {
		return steps, fmt.Errorf("frame %s: %d stores, reference %d", src, len(res.Stores), len(refStores))
	}
	for i, st := range res.Stores {
		if st.Addr != refStores[i].addr || st.Val != refStores[i].val {
			return steps, fmt.Errorf("frame %s: store %d = [%#x]=%#x, reference [%#x]=%#x",
				src, i, st.Addr, st.Val, refStores[i].addr, refStores[i].val)
		}
	}
	return steps, nil
}

// cpuDecoder caches decode+translate against live CPU memory.
type cpuDecoder struct {
	c     *cpu.CPU
	insts map[uint32]x86.Inst
	uops  map[uint32][]uop.UOp
}

func newCPUDecoder(c *cpu.CPU) *cpuDecoder {
	return &cpuDecoder{c: c, insts: make(map[uint32]x86.Inst), uops: make(map[uint32][]uop.UOp)}
}

func (d *cpuDecoder) at(pc uint32) (x86.Inst, []uop.UOp, error) {
	if in, ok := d.insts[pc]; ok {
		return in, d.uops[pc], nil
	}
	in, err := x86.Decode(d.c.Mem.ReadBytes(pc, 15))
	if err != nil {
		return x86.Inst{}, nil, fmt.Errorf("verify: decode at %#x: %w", pc, err)
	}
	uops, err := translateCached(in, pc)
	if err != nil {
		return x86.Inst{}, nil, err
	}
	d.insts[pc] = in
	d.uops[pc] = uops
	return in, uops, nil
}

func translateCached(in x86.Inst, pc uint32) ([]uop.UOp, error) {
	return translate.UOps(in, pc)
}
