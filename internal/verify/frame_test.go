package verify

import (
	"testing"

	"repro/internal/opt"
	"repro/internal/workload"
)

// TestCheckFramesAllProfiles verifies every optimized frame execution
// against the reference interpreter on all 14 workloads — the strongest
// end-to-end validation of the optimizer: asserts fire exactly on path
// divergence, committed frames reproduce architectural state and stores.
func TestCheckFramesAllProfiles(t *testing.T) {
	insts := 40_000
	if testing.Short() {
		insts = 8_000
	}
	for _, p := range workload.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := workload.Generate(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := CheckFrames(prog, insts, opt.AllOptions, opt.ScopeFrame)
			if err != nil {
				t.Fatalf("%v (stats %+v)", err, stats)
			}
			if stats.Checked == 0 {
				t.Error("no frame executions verified")
			}
			if stats.UOpsOut >= stats.UOpsIn {
				t.Errorf("optimizer removed nothing: %d -> %d", stats.UOpsIn, stats.UOpsOut)
			}
			t.Logf("insts=%d frames=%d checked=%d aborted=%d uops %d->%d (-%0.1f%%) loads %d->%d (-%0.1f%%)",
				stats.Insts, stats.Constructed, stats.Checked, stats.Aborted,
				stats.UOpsIn, stats.UOpsOut,
				100*float64(stats.UOpsIn-stats.UOpsOut)/float64(stats.UOpsIn),
				stats.LoadsIn, stats.LoadsOut,
				100*float64(stats.LoadsIn-stats.LoadsOut)/max1(stats.LoadsIn))
		})
	}
}

func max1(v int) float64 {
	if v < 1 {
		return 1
	}
	return float64(v)
}

// TestCheckFramesScopes verifies frame semantics at the two restricted
// scopes as well (Figure 9's experiment must also be sound).
func TestCheckFramesScopes(t *testing.T) {
	for _, scope := range []opt.Scope{opt.ScopeIntraBlock, opt.ScopeInterBlock} {
		scope := scope
		for _, name := range []string{"crafty", "excel"} {
			name := name
			t.Run(scope.String()+"/"+name, func(t *testing.T) {
				t.Parallel()
				p, err := workload.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := workload.Generate(p, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := CheckFrames(prog, 15_000, opt.AllOptions, scope); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCheckFramesRescheduled verifies that the position-field schedule
// (Section 4's Cleanup Logic order) preserves frame semantics end to end.
func TestCheckFramesRescheduled(t *testing.T) {
	for _, name := range []string{"bzip2", "vortex", "excel"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := workload.Generate(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := CheckFramesRescheduled(prog, 20_000, opt.AllOptions, opt.ScopeFrame)
			if err != nil {
				t.Fatalf("%v (stats %+v)", err, stats)
			}
			if stats.Checked == 0 {
				t.Error("nothing verified")
			}
		})
	}
}

// TestCheckFramesAblations verifies semantics with each optimization
// disabled in turn (the Figure 10 configurations must all be sound).
func TestCheckFramesAblations(t *testing.T) {
	mods := map[string]func(*opt.Options){
		"noASST": func(o *opt.Options) { o.Assert = false },
		"noCP":   func(o *opt.Options) { o.CP = false },
		"noCSE":  func(o *opt.Options) { o.CSE = false },
		"noNOP":  func(o *opt.Options) { o.NOP = false },
		"noRA":   func(o *opt.Options) { o.RA = false },
		"noSF":   func(o *opt.Options) { o.SF = false },
		"noSpec": func(o *opt.Options) { o.Speculative = false },
	}
	p, err := workload.ByName("excel") // exercises aliasing and unsafe stores
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, mod := range mods {
		name, mod := name, mod
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			optsFn := func() opt.Options {
				o := opt.AllOptions()
				mod(&o)
				return o
			}
			if _, err := CheckFrames(prog, 15_000, optsFn, opt.ScopeFrame); err != nil {
				t.Fatal(err)
			}
		})
	}
}
