// Package workload generates the reproduction's synthetic benchmark
// programs: real IA-32 machine code with compiler-like idioms, one
// generator profile per application of the paper's Table 1.
//
// The programs are assembled with Builder, executed by the functional
// interpreter (internal/cpu) and captured as traces (internal/trace) —
// the substitution for the proprietary AMD hardware traces, as described
// in DESIGN.md.
package workload

import (
	"encoding/binary"
	"fmt"

	"repro/internal/x86"
)

// Builder assembles IA-32 programs with symbolic labels. Branches to
// labels are emitted in their long (rel32) forms and patched when the
// label resolves.
type Builder struct {
	base   uint32
	code   []byte
	labels map[string]uint32
	fixups []fixup
	err    error
}

type fixup struct {
	pos   int // offset of the rel32 field within code
	end   int // offset just past the instruction (branch origin)
	label string
}

// NewBuilder returns a Builder assembling at the given base address.
func NewBuilder(base uint32) *Builder {
	return &Builder{base: base, labels: make(map[string]uint32)}
}

// PC returns the address of the next emitted instruction.
func (b *Builder) PC() uint32 { return b.base + uint32(len(b.code)) }

// Label binds a name to the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail(fmt.Errorf("duplicate label %q", name))
		return
	}
	b.labels[name] = b.PC()
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// I emits one instruction.
func (b *Builder) I(in x86.Inst) {
	enc, err := x86.Encode(in)
	if err != nil {
		b.fail(err)
		return
	}
	b.code = append(b.code, enc...)
}

// farSentinel forces the long (rel32) encoding of label branches so the
// displacement can be patched in place.
const farSentinel = 0x0BADBAD

func (b *Builder) emitLabelBranch(in x86.Inst, label string) {
	in.Dst = x86.ImmOp(farSentinel)
	enc, err := x86.Encode(in)
	if err != nil {
		b.fail(err)
		return
	}
	start := len(b.code)
	b.code = append(b.code, enc...)
	b.fixups = append(b.fixups, fixup{pos: start + len(enc) - 4, end: start + len(enc), label: label})
}

// Jmp emits an unconditional jump to a label.
func (b *Builder) Jmp(label string) {
	b.emitLabelBranch(x86.Inst{Op: x86.OpJMP, Cond: x86.CondNone}, label)
}

// Jcc emits a conditional jump to a label.
func (b *Builder) Jcc(cond x86.Cond, label string) {
	b.emitLabelBranch(x86.Inst{Op: x86.OpJCC, Cond: cond}, label)
}

// Call emits a direct call to a label.
func (b *Builder) Call(label string) {
	b.emitLabelBranch(x86.Inst{Op: x86.OpCALL, Cond: x86.CondNone}, label)
}

// Shorthand emitters for common instructions.

// Mov emits MOV dst, src.
func (b *Builder) Mov(dst, src x86.Operand) {
	b.I(x86.Inst{Op: x86.OpMOV, Cond: x86.CondNone, Dst: dst, Src: src})
}

// Lea emits LEA dst, mem.
func (b *Builder) Lea(dst x86.Reg, mem x86.Operand) {
	b.I(x86.Inst{Op: x86.OpLEA, Cond: x86.CondNone, Dst: x86.RegOp(dst), Src: mem})
}

// Alu emits a two-operand ALU instruction.
func (b *Builder) Alu(op x86.Op, dst, src x86.Operand) {
	b.I(x86.Inst{Op: op, Cond: x86.CondNone, Dst: dst, Src: src})
}

// Push emits PUSH op.
func (b *Builder) Push(op x86.Operand) {
	b.I(x86.Inst{Op: x86.OpPUSH, Cond: x86.CondNone, Dst: op})
}

// Pop emits POP op.
func (b *Builder) Pop(op x86.Operand) {
	b.I(x86.Inst{Op: x86.OpPOP, Cond: x86.CondNone, Dst: op})
}

// Ret emits RET.
func (b *Builder) Ret() {
	b.I(x86.Inst{Op: x86.OpRET, Cond: x86.CondNone})
}

// Hlt emits HLT.
func (b *Builder) Hlt() {
	b.I(x86.Inst{Op: x86.OpHLT, Cond: x86.CondNone})
}

// Finalize patches all label branches and returns the program image.
func (b *Builder) Finalize() ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", f.label)
		}
		rel := int32(target) - int32(b.base+uint32(f.end))
		binary.LittleEndian.PutUint32(b.code[f.pos:], uint32(rel))
	}
	return b.code, nil
}

// LabelAddr returns the resolved address of a label.
func (b *Builder) LabelAddr(name string) (uint32, bool) {
	a, ok := b.labels[name]
	return a, ok
}
